package machine

import (
	"testing"

	"repro/internal/isa/arm"
)

// Direct per-instruction semantics tests for the interpreter ops that the
// higher-level tests reach only indirectly.

func execOne(t *testing.T, c *CPU, m *Machine, inst arm.Inst) {
	t.Helper()
	if err := m.exec(c, inst); err != nil {
		t.Fatalf("%v: %v", inst, err)
	}
}

func freshCPU(t *testing.T) (*Machine, *CPU) {
	t.Helper()
	m := New(1 << 16)
	return m, m.CPUs[0]
}

func TestExecALUOps(t *testing.T) {
	m, c := freshCPU(t)
	c.Regs[1] = 100
	c.Regs[2] = 7

	cases := []struct {
		inst arm.Inst
		want uint64
	}{
		{arm.Inst{Op: arm.ADD, Rd: 3, Rn: 1, Rm: 2}, 107},
		{arm.Inst{Op: arm.SUB, Rd: 3, Rn: 1, Rm: 2}, 93},
		{arm.Inst{Op: arm.MUL, Rd: 3, Rn: 1, Rm: 2}, 700},
		{arm.Inst{Op: arm.UDIV, Rd: 3, Rn: 1, Rm: 2}, 14},
		{arm.Inst{Op: arm.UREM, Rd: 3, Rn: 1, Rm: 2}, 2},
		{arm.Inst{Op: arm.AND, Rd: 3, Rn: 1, Rm: 2}, 100 & 7},
		{arm.Inst{Op: arm.ORR, Rd: 3, Rn: 1, Rm: 2}, 100 | 7},
		{arm.Inst{Op: arm.EOR, Rd: 3, Rn: 1, Rm: 2}, 100 ^ 7},
		{arm.Inst{Op: arm.LSL, Rd: 3, Rn: 1, Rm: 2}, 100 << 7},
		{arm.Inst{Op: arm.LSR, Rd: 3, Rn: 1, Rm: 2}, 100 >> 7},
		{arm.Inst{Op: arm.ASR, Rd: 3, Rn: 1, Rm: 2}, 100 >> 7},
		{arm.Inst{Op: arm.MVN, Rd: 3, Rn: 1}, ^uint64(100)},
		{arm.Inst{Op: arm.NEG, Rd: 3, Rn: 1}, ^uint64(100) + 1},
		{arm.Inst{Op: arm.ADDI, Rd: 3, Rn: 1, Imm: 11}, 111},
		{arm.Inst{Op: arm.SUBI, Rd: 3, Rn: 1, Imm: 11}, 89},
		{arm.Inst{Op: arm.ANDI, Rd: 3, Rn: 1, Imm: 0xF}, 100 & 0xF},
		{arm.Inst{Op: arm.ORRI, Rd: 3, Rn: 1, Imm: 0xF}, 100 | 0xF},
		{arm.Inst{Op: arm.EORI, Rd: 3, Rn: 1, Imm: 0xF}, 100 ^ 0xF},
		{arm.Inst{Op: arm.LSLI, Rd: 3, Rn: 1, Imm: 2}, 400},
		{arm.Inst{Op: arm.LSRI, Rd: 3, Rn: 1, Imm: 2}, 25},
		{arm.Inst{Op: arm.ASRI, Rd: 3, Rn: 1, Imm: 2}, 25},
	}
	for _, tc := range cases {
		c.PC = 0
		execOne(t, c, m, tc.inst)
		if c.Regs[3] != tc.want {
			t.Errorf("%v: got %#x want %#x", tc.inst, c.Regs[3], tc.want)
		}
	}
}

func TestExecShiftSaturation(t *testing.T) {
	m, c := freshCPU(t)
	c.Regs[1] = ^uint64(0) // -1
	c.Regs[2] = 200        // shift count ≥ 64
	c.PC = 0
	execOne(t, c, m, arm.Inst{Op: arm.LSL, Rd: 3, Rn: 1, Rm: 2})
	if c.Regs[3] != 0 {
		t.Fatalf("lsl≥64 = %#x", c.Regs[3])
	}
	execOne(t, c, m, arm.Inst{Op: arm.LSR, Rd: 3, Rn: 1, Rm: 2})
	if c.Regs[3] != 0 {
		t.Fatalf("lsr≥64 = %#x", c.Regs[3])
	}
	execOne(t, c, m, arm.Inst{Op: arm.ASR, Rd: 3, Rn: 1, Rm: 2})
	if c.Regs[3] != ^uint64(0) {
		t.Fatalf("asr≥64 of -1 = %#x", c.Regs[3])
	}
	execOne(t, c, m, arm.Inst{Op: arm.ASRI, Rd: 3, Rn: 1, Imm: 63})
	if c.Regs[3] != ^uint64(0) {
		t.Fatalf("asri 63 of -1 = %#x", c.Regs[3])
	}
}

func TestExecDivByZero(t *testing.T) {
	m, c := freshCPU(t)
	c.Regs[1] = 42
	c.Regs[2] = 0
	c.PC = 0
	execOne(t, c, m, arm.Inst{Op: arm.UDIV, Rd: 3, Rn: 1, Rm: 2})
	if c.Regs[3] != 0 {
		t.Fatalf("udiv/0 = %d", c.Regs[3])
	}
	execOne(t, c, m, arm.Inst{Op: arm.UREM, Rd: 3, Rn: 1, Rm: 2})
	if c.Regs[3] != 42 {
		t.Fatalf("urem/0 = %d", c.Regs[3])
	}
}

func TestExecSwpal(t *testing.T) {
	m, c := freshCPU(t)
	if err := m.WriteMem(0x8000, 8, 5); err != nil {
		t.Fatal(err)
	}
	c.Regs[1] = 0x8000
	c.Regs[2] = 99 // new value
	c.PC = 0
	execOne(t, c, m, arm.Inst{Op: arm.SWPAL, Rd: 2, Rm: 3, Rn: 1, Size: 8})
	if c.Regs[3] != 5 {
		t.Fatalf("swpal old = %d", c.Regs[3])
	}
	v, _ := m.ReadMem(0x8000, 8)
	if v != 99 {
		t.Fatalf("swpal mem = %d", v)
	}
	if m.AtomicExec == 0 {
		t.Fatal("atomic execution not counted")
	}
}

func TestExecBranchesAndCBNZ(t *testing.T) {
	m, c := freshCPU(t)
	c.PC = 0x1000
	execOne(t, c, m, arm.Inst{Op: arm.B, Off: 4})
	if c.PC != 0x1010 {
		t.Fatalf("b: pc = %#x", c.PC)
	}
	c.Regs[2] = 0
	execOne(t, c, m, arm.Inst{Op: arm.CBNZ, Rd: 2, Off: 8})
	if c.PC != 0x1014 { // not taken
		t.Fatalf("cbnz zero: pc = %#x", c.PC)
	}
	c.Regs[2] = 1
	execOne(t, c, m, arm.Inst{Op: arm.CBNZ, Rd: 2, Off: 8})
	if c.PC != 0x1034 { // taken
		t.Fatalf("cbnz nonzero: pc = %#x", c.PC)
	}
	c.Regs[5] = 0x4000
	execOne(t, c, m, arm.Inst{Op: arm.BR, Rn: 5})
	if c.PC != 0x4000 {
		t.Fatalf("br: pc = %#x", c.PC)
	}
	execOne(t, c, m, arm.Inst{Op: arm.BL, Off: 2})
	if c.Regs[30] != 0x4004 || c.PC != 0x4008 {
		t.Fatalf("bl: lr=%#x pc=%#x", c.Regs[30], c.PC)
	}
	execOne(t, c, m, arm.Inst{Op: arm.RET})
	if c.PC != 0x4004 {
		t.Fatalf("ret: pc = %#x", c.PC)
	}
}

func TestExecMovkMerges(t *testing.T) {
	m, c := freshCPU(t)
	c.PC = 0
	execOne(t, c, m, arm.Inst{Op: arm.MOVZ, Rd: 1, Imm: 0x1111, Shift: 0})
	execOne(t, c, m, arm.Inst{Op: arm.MOVK, Rd: 1, Imm: 0x2222, Shift: 2})
	if c.Regs[1] != 0x0000_2222_0000_1111 {
		t.Fatalf("movz/movk = %#x", c.Regs[1])
	}
}

func TestExecDMBCountsDynamic(t *testing.T) {
	m, c := freshCPU(t)
	c.PC = 0
	execOne(t, c, m, arm.Inst{Op: arm.DMB, Barrier: arm.BarrierFull})
	execOne(t, c, m, arm.Inst{Op: arm.DMB, Barrier: arm.BarrierLoad})
	execOne(t, c, m, arm.Inst{Op: arm.DMB, Barrier: arm.BarrierLoad})
	execOne(t, c, m, arm.Inst{Op: arm.DMB, Barrier: arm.BarrierStore})
	if m.DMBExec[arm.BarrierFull] != 1 || m.DMBExec[arm.BarrierLoad] != 2 ||
		m.DMBExec[arm.BarrierStore] != 1 {
		t.Fatalf("dynamic dmb counts: %v", m.DMBExec)
	}
}

func TestChargeAtomicAndCounters(t *testing.T) {
	m, c := freshCPU(t)
	before := c.Cycles
	m.ChargeAtomic(c, 0x8000)
	if c.Cycles != before+m.Cost.Atomic {
		t.Fatalf("uncontended charge = %d", c.Cycles-before)
	}
	c2 := m.AddCPU()
	before = c2.Cycles
	m.ChargeAtomic(c2, 0x8000)
	if c2.Cycles != before+m.Cost.Atomic+m.Cost.AtomicTransfer {
		t.Fatalf("contended charge = %d", c2.Cycles-before)
	}
	if m.MaxCycles() != c2.Cycles {
		t.Fatalf("MaxCycles = %d", m.MaxCycles())
	}
	if m.TotalInsts() != 0 {
		t.Fatalf("TotalInsts = %d", m.TotalInsts())
	}
}

func TestDecodeCacheInvalidation(t *testing.T) {
	m, c := freshCPU(t)
	// Place a NOP, execute (cached), patch to MOVZ, invalidate, re-run.
	w, err := arm.Encode(arm.Inst{Op: arm.NOP})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem[0x1000] = byte(w)
	m.Mem[0x1001] = byte(w >> 8)
	m.Mem[0x1002] = byte(w >> 16)
	m.Mem[0x1003] = byte(w >> 24)
	c.PC = 0x1000
	if err := m.Step(c); err != nil {
		t.Fatal(err)
	}
	w2, err := arm.Encode(arm.Inst{Op: arm.MOVZ, Rd: 1, Imm: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Mem[0x1000+i] = byte(w2 >> (8 * i))
	}
	// Without invalidation the stale NOP would execute.
	m.InvalidateDecodeAt(0x1000)
	c.PC = 0x1000
	if err := m.Step(c); err != nil {
		t.Fatal(err)
	}
	if c.Regs[1] != 7 {
		t.Fatalf("patched instruction not executed: %d", c.Regs[1])
	}
	// Full invalidation path.
	m.InvalidateDecodeCache()
	c.PC = 0x1000
	if err := m.Step(c); err != nil {
		t.Fatal(err)
	}
}

func TestWeakEnabledFlag(t *testing.T) {
	m, _ := freshCPU(t)
	if m.WeakEnabled() {
		t.Fatal("weak mode should default off")
	}
	m.EnableWeakMemory(1, 0) // 0 → default drain prob
	if !m.WeakEnabled() {
		t.Fatal("weak mode should be on")
	}
	if err := m.FlushWeak(m.CPUs[0]); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkInterpreter measures raw interpretation speed (host ns per
// simulated instruction) on a tight ALU loop.
func BenchmarkInterpreter(b *testing.B) {
	a := arm.NewAssembler()
	a.MovImm(arm.X0, 0).
		MovImm(arm.X1, 1).
		Label("loop").
		Add(arm.X0, arm.X0, arm.X1).
		Eor(arm.X2, arm.X0, arm.X1).
		LslI(arm.X2, arm.X2, 3).
		CmpI(arm.X0, 4000).
		BCondLabel(arm.NE, "loop").
		Hlt()
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m := New(1 << 16)
		copy(m.Mem[0x1000:], code)
		m.CPUs[0].PC = 0x1000
		if err := m.Run(m.CPUs[0], 1_000_000); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.CPUs[0].Insts), "siminsts/op")
	}
}
