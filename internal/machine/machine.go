// Package machine simulates the multi-core Arm host that Risotto-Go's
// generated code runs on. It interprets the internal/isa/arm instruction
// set over a flat little-endian memory, with:
//
//   - a per-instruction cycle cost model (see cost.go) standing in for the
//     ThunderX2 of the paper's testbed — fence and atomic costs follow the
//     relative magnitudes reported by Liu et al. [51];
//   - per-CPU exclusive monitors for LDXR/STXR;
//   - a cache-line ownership model that charges a transfer penalty to
//     atomics contending on a line another CPU touched last (Figure 15's
//     contention behaviour);
//   - a deterministic round-robin scheduler interleaving the CPUs, so
//     guest threads genuinely race;
//   - SVC and BLR hooks through which the DBT runtime (internal/core)
//     implements guest syscalls and helper calls.
//
// The interpreter executes sequentially consistently; weak-memory
// *ordering* effects are studied axiomatically (internal/models) and
// operationally via the store-buffer mode in weak.go, while this fast mode
// is used for all performance experiments.
package machine

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/isa/arm"
	"repro/internal/obs"
)

// Machine is one simulated host: memory plus a set of CPUs.
type Machine struct {
	// Mem is the flat physical memory, shared by all CPUs.
	Mem []byte
	// CPUs holds every CPU ever started; halted ones stay in place.
	CPUs []*CPU
	// Cost is the cycle cost table.
	Cost CostTable

	// StepBudget, when non-zero, bounds each CPU's executed instruction
	// count: a CPU that reaches it makes RunAll return a structured
	// faults.TrapBudget — the watchdog that halts runaway or livelocked
	// guests instead of spinning forever.
	StepBudget uint64
	// Deadline, when non-zero, is a wall-clock watchdog for RunAll,
	// measured from its invocation.
	Deadline time.Duration
	// Inject, when non-nil, forces traps at instrumented sites (memory
	// accesses, scheduler quanta) for fault-matrix testing.
	Inject *faults.Injector

	// Syscall handles SVC instructions. The PC has already been advanced
	// past the SVC; the handler may rewind it to block.
	Syscall func(m *Machine, c *CPU, imm uint16) error
	// OnBLR, when non-nil, may intercept BLR targets (the DBT uses this
	// for helper calls and host-library dispatch). If it reports handled,
	// the branch is suppressed and execution continues at the link
	// address.
	OnBLR func(m *Machine, c *CPU, target uint64) (handled bool, err error)

	// Output accumulates bytes written via the write syscall.
	Output []byte

	// DMBExec counts executed barriers by flavour (indexed by
	// arm.Barrier) — the *dynamic* fence counts behind the fence-share
	// numbers, complementing the DBT's static per-block statistics.
	DMBExec [3]uint64
	// AtomicExec counts executed single-copy atomics.
	AtomicExec uint64

	// lineOwner tracks which CPU last performed an atomic on each
	// 64-byte line, for the contention penalty.
	lineOwner map[uint64]int

	decodeCache map[uint64]arm.Inst

	// weak, when non-nil, enables the operational weak-memory mode
	// (store buffers with out-of-order drain; see weak.go).
	weak *weakState
	// chooser resolves the machine's nondeterministic choices (scheduler
	// pick, store-buffer drains); see chooser.go. Nil falls back to the
	// deterministic round-robin with no automatic drains.
	chooser Chooser

	// accLog, when enabled, records every memory access executed — the
	// footprint DPOR needs to decide which transitions commute.
	accLog   []MemAccess
	accLogOn bool

	// sc/quanta are the observability hooks installed by SetObs: quanta
	// is bumped once per scheduler quantum (one atomic add per `quantum`
	// instructions, cheap enough for the hot loop), and the dynamic
	// execution counters are published as gauges when RunAll returns.
	sc     *obs.Scope
	quanta *obs.Counter
}

// CPU is one simulated hardware thread.
type CPU struct {
	// ID indexes the CPU in Machine.CPUs.
	ID int
	// Regs are X0..X30; index 31 is XZR and must be read as 0 via reg().
	Regs [arm.NumRegs]uint64
	// PC is the program counter.
	PC uint64
	// NZCV condition flags.
	N, Z, C, V bool
	// Cycles accumulates the cost of executed instructions.
	Cycles uint64
	// Insts counts executed instructions.
	Insts uint64
	// Halted is set by HLT or an exit syscall.
	Halted bool
	// ExitCode is the value passed to the exit syscall.
	ExitCode uint64

	// Exclusive monitor state.
	monAddr  uint64
	monSize  uint8
	monValid bool
}

// New creates a machine with memSize bytes of memory and one CPU.
func New(memSize int) *Machine {
	m := &Machine{
		Mem:         make([]byte, memSize),
		Cost:        DefaultCost(),
		lineOwner:   make(map[uint64]int),
		decodeCache: make(map[uint64]arm.Inst),
	}
	m.AddCPU()
	return m
}

// SetObs points the machine's instrumentation at root's "machine" child
// scope: scheduler quanta are counted under "machine.sched.quanta", and
// RunAll publishes the dynamic execution counters (instructions, atomics,
// per-flavour DMBs, CPU count) as gauges on exit. Nil-scope safe.
func (m *Machine) SetObs(root *obs.Scope) {
	m.sc = root.Child("machine")
	m.quanta = m.sc.Counter("sched.quanta")
}

// publishObs mirrors the dynamic execution counters into gauges.
func (m *Machine) publishObs() {
	if m.sc == nil {
		return
	}
	m.sc.Gauge("insts").Set(int64(m.TotalInsts()))
	m.sc.Gauge("atomics").Set(int64(m.AtomicExec))
	m.sc.Gauge("dmb_exec.full").Set(int64(m.DMBExec[arm.BarrierFull]))
	m.sc.Gauge("dmb_exec.load").Set(int64(m.DMBExec[arm.BarrierLoad]))
	m.sc.Gauge("dmb_exec.store").Set(int64(m.DMBExec[arm.BarrierStore]))
	m.sc.Gauge("cpus").Set(int64(len(m.CPUs)))
}

// AddCPU starts a new (halted=false, PC=0) CPU and returns it.
func (m *Machine) AddCPU() *CPU {
	c := &CPU{ID: len(m.CPUs)}
	m.CPUs = append(m.CPUs, c)
	return c
}

// SetChooser installs (or, with nil, removes) the machine's chooser
// without touching weak mode: useful for randomized scheduling over the
// sequentially consistent interpreter. EnableWeakMemory/EnableWeakMode
// overwrite it.
func (m *Machine) SetChooser(ch Chooser) { m.chooser = ch }

// MemAccess is one executed memory access. Local marks accesses satisfied
// entirely inside a CPU's private store buffer (buffered stores, forwarded
// loads): they are invisible to other CPUs, so dependence analysis ignores
// them. Instruction fetches are never recorded.
type MemAccess struct {
	Addr  uint64
	Size  uint8
	Write bool
	Local bool
}

// RecordAccesses toggles the memory-access log. Enabling clears any
// previous log.
func (m *Machine) RecordAccesses(on bool) {
	m.accLogOn = on
	m.accLog = m.accLog[:0]
}

// TakeAccesses returns the accesses recorded since the last call (or since
// RecordAccesses) and resets the log.
func (m *Machine) TakeAccesses() []MemAccess {
	out := append([]MemAccess(nil), m.accLog...)
	m.accLog = m.accLog[:0]
	return out
}

// record appends to the access log when enabled; free otherwise.
func (m *Machine) record(addr uint64, size uint8, write, local bool) {
	if m.accLogOn {
		m.accLog = append(m.accLog, MemAccess{Addr: addr, Size: size, Write: write, Local: local})
	}
}

// InvalidateDecodeCache drops cached decodes; callers that rewrite already-
// executed code must invoke it. (The DBT only ever appends fresh code, so
// translation never needs it; TB chaining patches single instructions and
// uses InvalidateDecodeAt.)
func (m *Machine) InvalidateDecodeCache() {
	m.decodeCache = make(map[uint64]arm.Inst)
}

// InvalidateDecodeAt drops one address's cached decode after a code patch.
func (m *Machine) InvalidateDecodeAt(addr uint64) {
	delete(m.decodeCache, addr)
}

// reg reads a register, honouring XZR.
func (c *CPU) reg(r arm.Reg) uint64 {
	if r == arm.XZR {
		return 0
	}
	return c.Regs[r]
}

// setReg writes a register, honouring XZR.
func (c *CPU) setReg(r arm.Reg, v uint64) {
	if r != arm.XZR {
		c.Regs[r] = v
	}
}

// --- Memory access ---------------------------------------------------------

func (m *Machine) check(addr uint64, size uint8) error {
	if addr+uint64(size) > uint64(len(m.Mem)) || addr+uint64(size) < addr {
		t := faults.New(faults.TrapUnmapped, "access [%#x,+%d) out of bounds (mem %#x)", addr, size, len(m.Mem))
		t.Addr = addr
		return t
	}
	return nil
}

// injectMem consults the injector's memory site, attributing the forced
// trap to addr. Nil-injector calls are free.
func (m *Machine) injectMem(addr uint64) error {
	if m.Inject == nil {
		return nil
	}
	if t := m.Inject.Hit(faults.SiteMemory); t != nil {
		t.Addr = addr
		return t
	}
	return nil
}

// ReadMem loads size bytes (1/2/4/8) at addr, zero-extended.
func (m *Machine) ReadMem(addr uint64, size uint8) (uint64, error) {
	if err := m.injectMem(addr); err != nil {
		return 0, err
	}
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.Mem[addr+uint64(i)]) << (8 * i)
	}
	m.record(addr, size, false, false)
	return v, nil
}

// WriteMem stores the low size bytes of v at addr.
func (m *Machine) WriteMem(addr uint64, size uint8, v uint64) error {
	if err := m.injectMem(addr); err != nil {
		return err
	}
	if err := m.check(addr, size); err != nil {
		return err
	}
	for i := uint8(0); i < size; i++ {
		m.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	m.clearMonitors(addr, size)
	m.record(addr, size, true, false)
	return nil
}

// clearMonitors invalidates any exclusive monitor overlapping [addr, +size).
func (m *Machine) clearMonitors(addr uint64, size uint8) {
	for _, c := range m.CPUs {
		if c.monValid && overlap(addr, uint64(size), c.monAddr, uint64(c.monSize)) {
			c.monValid = false
		}
	}
}

func overlap(a, alen, b, blen uint64) bool {
	return a < b+blen && b < a+alen
}

// ChargeAtomic charges the base atomic cost plus any contention transfer
// penalty, for runtime helpers that perform atomics outside generated code.
func (m *Machine) ChargeAtomic(c *CPU, addr uint64) {
	c.Cycles += m.Cost.Atomic + m.atomicTouch(c, addr)
}

// atomicTouch charges the contention penalty for an atomic on addr and
// records the new line owner. Returns extra cycles.
func (m *Machine) atomicTouch(c *CPU, addr uint64) uint64 {
	m.AtomicExec++
	line := addr >> 6
	owner, seen := m.lineOwner[line]
	m.lineOwner[line] = c.ID
	if seen && owner != c.ID {
		return m.Cost.AtomicTransfer
	}
	return 0
}

// --- Flags -------------------------------------------------------------------

func (c *CPU) setFlagsSub(a, b uint64) uint64 {
	res := a - b
	c.N = int64(res) < 0
	c.Z = res == 0
	c.C = a >= b
	c.V = (int64(a) < 0) != (int64(b) < 0) && (int64(res) < 0) != (int64(a) < 0)
	return res
}

func (c *CPU) cond(cc arm.Cond) bool {
	switch cc {
	case arm.EQ:
		return c.Z
	case arm.NE:
		return !c.Z
	case arm.LT:
		return c.N != c.V
	case arm.LE:
		return c.Z || c.N != c.V
	case arm.GT:
		return !c.Z && c.N == c.V
	case arm.GE:
		return c.N == c.V
	case arm.LO:
		return !c.C
	case arm.LS:
		return !c.C || c.Z
	case arm.HI:
		return c.C && !c.Z
	case arm.HS:
		return c.C
	}
	return false
}

// --- Scheduling ---------------------------------------------------------------

// Step executes one instruction on c. Halted CPUs are a no-op.
func (m *Machine) Step(c *CPU) error {
	if c.Halted {
		return nil
	}
	inst, ok := m.decodeCache[c.PC]
	if !ok {
		if err := m.check(c.PC, arm.InstBytes); err != nil {
			return cpuErr(c, fmt.Errorf("fetch: %w", err))
		}
		var err error
		inst, err = arm.DecodeAt(m.Mem, int(c.PC))
		if err != nil {
			return cpuErr(c, faults.Wrap(faults.TrapDecode, err, "host instruction decode"))
		}
		m.decodeCache[c.PC] = inst
	}
	if err := m.exec(c, inst); err != nil {
		return err
	}
	if m.weak != nil {
		return m.weakMaybeDrain(c)
	}
	return nil
}

// Run executes a single CPU until it halts or maxSteps elapse.
func (m *Machine) Run(c *CPU, maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if c.Halted {
			return nil
		}
		if err := m.Step(c); err != nil {
			return err
		}
	}
	return budgetTrap(c, maxSteps, "step budget %d exhausted", maxSteps)
}

// RunAll interleaves every live CPU round-robin, quantum instructions at a
// time, until all halt or a budget expires: the per-machine maxSteps, the
// per-CPU StepBudget, or the wall-clock Deadline. Budget expiry returns a
// structured faults.TrapBudget, so a runaway or livelocked guest degrades
// to a typed, reportable halt instead of an unbounded spin. CPUs added
// during execution (spawn) join the rotation. An installed Chooser may
// override each quantum's CPU pick (NextCPU -1 keeps the round-robin).
func (m *Machine) RunAll(quantum int, maxSteps uint64) (err error) {
	if quantum <= 0 {
		quantum = 64
	}
	defer func() {
		m.publishObs()
		if err != nil {
			m.sc.Event("machine.trap", err.Error(), -1, 0, 0)
		}
	}()
	var start time.Time
	if m.Deadline > 0 {
		start = time.Now()
	}
	var total uint64
	var runnable []int
	rr := 0 // round-robin cursor: next CPU ID to consider
	for {
		runnable = runnable[:0]
		for _, c := range m.CPUs {
			if !c.Halted {
				runnable = append(runnable, c.ID)
			}
		}
		if len(runnable) == 0 {
			return nil
		}
		// The chooser may pick any runnable CPU; -1 (or no chooser) falls
		// back to the deterministic round-robin the machine always had.
		var c *CPU
		if m.chooser != nil {
			if id := m.chooser.NextCPU(runnable); id >= 0 {
				if id >= len(m.CPUs) || m.CPUs[id].Halted {
					return fmt.Errorf("machine: chooser picked unrunnable CPU %d", id)
				}
				c = m.CPUs[id]
			}
		}
		if c == nil {
			// First runnable CPU with ID >= rr, wrapping: identical order
			// to the historical pass over m.CPUs, and CPUs spawned
			// mid-run join as the cursor reaches them.
			for _, id := range runnable {
				if id >= rr {
					c = m.CPUs[id]
					break
				}
			}
			if c == nil {
				c = m.CPUs[runnable[0]]
			}
			rr = c.ID + 1
		}
		m.quanta.Inc()
		if t := m.Inject.Hit(faults.SiteStep); t != nil {
			t.Steps = c.Insts
			return t.WithCPU(c.ID).WithHostPC(c.PC)
		}
		for q := 0; q < quantum && !c.Halted; q++ {
			if err := m.Step(c); err != nil {
				return err
			}
			total++
			if total > maxSteps {
				return budgetTrap(c, total, "machine step budget %d exhausted", maxSteps)
			}
			if m.StepBudget != 0 && c.Insts >= m.StepBudget {
				return budgetTrap(c, c.Insts, "per-CPU step budget %d exhausted", m.StepBudget)
			}
			// The wall-clock watchdog is polled every 1024 steps: cheap
			// enough for the hot loop, tight enough to bound a hang.
			if m.Deadline > 0 && total&0x3FF == 0 && time.Since(start) > m.Deadline {
				return budgetTrap(c, total, "wall-clock deadline %v exceeded", m.Deadline)
			}
		}
	}
}

// budgetTrap builds the structured watchdog result for c.
func budgetTrap(c *CPU, steps uint64, format string, args ...any) error {
	t := faults.New(faults.TrapBudget, format, args...)
	t.Steps = steps
	return t.WithCPU(c.ID).WithHostPC(c.PC)
}

// MaxCycles returns the largest per-CPU cycle count — the simulated elapsed
// time of a parallel phase.
func (m *Machine) MaxCycles() uint64 {
	var max uint64
	for _, c := range m.CPUs {
		if c.Cycles > max {
			max = c.Cycles
		}
	}
	return max
}

// TotalInsts returns the instruction count summed over CPUs.
func (m *Machine) TotalInsts() uint64 {
	var n uint64
	for _, c := range m.CPUs {
		n += c.Insts
	}
	return n
}
