package machine

import (
	"testing"

	"repro/internal/isa/arm"
)

// loadProgram assembles a program at base and prepares a machine to run it.
func loadProgram(t *testing.T, base uint64, build func(a *arm.Assembler)) (*Machine, map[string]uint64) {
	t.Helper()
	a := arm.NewAssembler()
	build(a)
	code, syms, err := a.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 20)
	m.Syscall = NativeSyscall
	copy(m.Mem[base:], code)
	m.CPUs[0].PC = base
	return m, syms
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into X0.
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X0, 0).
			MovImm(arm.X1, 1).
			Label("loop").
			Add(arm.X0, arm.X0, arm.X1).
			AddI(arm.X1, arm.X1, 1).
			CmpI(arm.X1, 11).
			BCondLabel(arm.NE, "loop").
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 1000); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUs[0].Regs[0]; got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	if !m.CPUs[0].Halted {
		t.Fatal("CPU should have halted")
	}
}

func TestMemoryAccessSizes(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X1, 0x8000).
			MovImm(arm.X0, 0x1122334455667788).
			Str(arm.X0, arm.X1, 0, 8).
			Ldr(arm.X2, arm.X1, 0, 1). // 0x88
			Ldr(arm.X3, arm.X1, 0, 2). // 0x7788
			Ldr(arm.X4, arm.X1, 0, 4). // 0x55667788
			Ldr(arm.X5, arm.X1, 0, 8).
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	c := m.CPUs[0]
	if c.Regs[2] != 0x88 || c.Regs[3] != 0x7788 || c.Regs[4] != 0x55667788 ||
		c.Regs[5] != 0x1122334455667788 {
		t.Fatalf("loads: %#x %#x %#x %#x", c.Regs[2], c.Regs[3], c.Regs[4], c.Regs[5])
	}
}

func TestXZRSemantics(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X0, 7).
			Raw(arm.Inst{Op: arm.ADD, Rd: arm.XZR, Rn: arm.X0, Rm: arm.X0}). // discarded
			Raw(arm.Inst{Op: arm.ADD, Rd: arm.X1, Rn: arm.XZR, Rm: arm.X0}). // X1 = 7
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	if m.CPUs[0].Regs[31] != 0 {
		t.Fatal("XZR storage must stay zero")
	}
	if m.CPUs[0].Regs[1] != 7 {
		t.Fatalf("X1 = %d, want 7", m.CPUs[0].Regs[1])
	}
}

func TestConditions(t *testing.T) {
	// CSET across signed/unsigned comparisons of -1 and 1.
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X0, ^uint64(0)). // -1
						MovImm(arm.X1, 1).
						Cmp(arm.X0, arm.X1).
						Cset(arm.X2, arm.LT). // signed: -1 < 1 → 1
						Cset(arm.X3, arm.HI). // unsigned: max > 1 → 1
						Cset(arm.X4, arm.EQ). // → 0
						Cmp(arm.X1, arm.X1).
						Cset(arm.X5, arm.EQ). // → 1
						Cset(arm.X6, arm.LE). // → 1
						Cset(arm.X7, arm.LO). // → 0
						Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	c := m.CPUs[0]
	want := []uint64{1, 1, 0, 1, 1, 0}
	got := []uint64{c.Regs[2], c.Regs[3], c.Regs[4], c.Regs[5], c.Regs[6], c.Regs[7]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cset %d: got %v want %v", i, got, want)
		}
	}
}

func TestCasalSemantics(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X1, 0x8000).
			MovImm(arm.X0, 5).
			Str(arm.X0, arm.X1, 0, 8). // [x1] = 5
			MovImm(arm.X2, 5).         // expected
			MovImm(arm.X3, 9).         // new
			Casal(arm.X2, arm.X3, arm.X1, 8).
			Ldr(arm.X4, arm.X1, 0, 8). // should be 9
			MovImm(arm.X5, 100).       // wrong expectation
			MovImm(arm.X6, 77).
			Casal(arm.X5, arm.X6, arm.X1, 8).
			Ldr(arm.X7, arm.X1, 0, 8). // still 9
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	c := m.CPUs[0]
	if c.Regs[2] != 5 {
		t.Fatalf("casal old value = %d, want 5", c.Regs[2])
	}
	if c.Regs[4] != 9 {
		t.Fatalf("after successful casal [x1] = %d, want 9", c.Regs[4])
	}
	if c.Regs[5] != 9 {
		t.Fatalf("failed casal old value = %d, want 9", c.Regs[5])
	}
	if c.Regs[7] != 9 {
		t.Fatalf("failed casal must not write: [x1] = %d", c.Regs[7])
	}
}

func TestExclusivesSucceedUncontended(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X1, 0x8000).
			MovImm(arm.X2, 42).
			Raw(arm.Inst{Op: arm.LDXR, Rd: arm.X3, Rn: arm.X1, Size: 8}).
			Raw(arm.Inst{Op: arm.STXR, Rd: arm.X4, Rm: arm.X2, Rn: arm.X1, Size: 8}).
			Ldr(arm.X5, arm.X1, 0, 8).
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	c := m.CPUs[0]
	if c.Regs[4] != 0 {
		t.Fatalf("stxr status = %d, want 0 (success)", c.Regs[4])
	}
	if c.Regs[5] != 42 {
		t.Fatalf("[x1] = %d, want 42", c.Regs[5])
	}
}

func TestExclusiveFailsAfterInterveningStore(t *testing.T) {
	// CPU1 stores to the monitored address between CPU0's LDXR and STXR.
	// Arrange with the round-robin scheduler: CPU0 does LDXR then spins;
	// simpler: drive the machine manually.
	m := New(1 << 16)
	a := arm.NewAssembler()
	a.MovImm(arm.X1, 0x8000).
		Raw(arm.Inst{Op: arm.LDXR, Rd: arm.X3, Rn: arm.X1, Size: 8}).
		Raw(arm.Inst{Op: arm.STXR, Rd: arm.X4, Rm: arm.X3, Rn: arm.X1, Size: 8}).
		Hlt()
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Mem[0x1000:], code)
	c := m.CPUs[0]
	c.PC = 0x1000
	// Step through MovImm (1 inst) + LDXR.
	for i := 0; i < 2; i++ {
		if err := m.Step(c); err != nil {
			t.Fatal(err)
		}
	}
	// Another CPU writes the monitored address.
	if err := m.WriteMem(0x8000, 8, 7); err != nil {
		t.Fatal(err)
	}
	// STXR must now fail.
	if err := m.Run(c, 10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[4] != 1 {
		t.Fatalf("stxr status = %d, want 1 (failure)", c.Regs[4])
	}
}

func TestSpawnJoin(t *testing.T) {
	// Main spawns a worker that writes 99 to 0x9000, joins it, reads back.
	m, syms := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.Label("main").
			MovImm(arm.X8, SysSpawn).
			MovImm(arm.X0, 0). // patched below via worker label…
			BLabel("setup")
		a.Label("worker").
			MovImm(arm.X2, 0x9000).
			MovImm(arm.X3, 99).
			Str(arm.X3, arm.X2, 0, 8).
			MovImm(arm.X8, SysExit).
			MovImm(arm.X0, 7).
			Svc(0)
		a.Label("setup").
			MovImm(arm.X1, 0).       // worker arg
			MovImm(arm.X2, 0xF0000). // worker stack
			Svc(0).                  // spawn; X0 = cpu id
			MovImm(arm.X8, SysJoin).
			Svc(0). // join; X0 = exit code
			MovImm(arm.X2, 0x9000).
			Ldr(arm.X4, arm.X2, 0, 8).
			Hlt()
	})
	// Patch worker entry into main's X0 (the MovImm(X0, 0) placeholder can't
	// reference a label; rewrite memory after assembly instead).
	// Simpler: set X0 directly before running.
	c := m.CPUs[0]
	c.PC = syms["main"]
	// Execute the first MovImm(X8, spawn).
	if err := m.Step(c); err != nil {
		t.Fatal(err)
	}
	// Skip the placeholder MovImm + B by setting state directly.
	c.Regs[0] = syms["worker"]
	c.PC = syms["setup"]
	if err := m.RunAll(8, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(m.CPUs) != 2 {
		t.Fatalf("expected 2 CPUs, got %d", len(m.CPUs))
	}
	if c.Regs[0] != 7 {
		t.Fatalf("join exit code = %d, want 7", c.Regs[0])
	}
	if c.Regs[4] != 99 {
		t.Fatalf("worker store not visible: %d", c.Regs[4])
	}
}

func TestWriteSyscall(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X1, 0x8000).
			MovImm(arm.X2, 0x6F6C6C65_68). // "hello" little-endian ('h'=0x68 first)
			Str(arm.X2, arm.X1, 0, 8).
			MovImm(arm.X8, SysWrite).
			MovImm(arm.X0, 0x8000).
			MovImm(arm.X1, 5).
			Svc(0).
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err != nil {
		t.Fatal(err)
	}
	if string(m.Output) != "hello" {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestCostAccounting(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.Dmb(arm.BarrierFull).
			Dmb(arm.BarrierLoad).
			Dmb(arm.BarrierStore).
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 10); err != nil {
		t.Fatal(err)
	}
	want := m.Cost.DMBFull + m.Cost.DMBLoad + m.Cost.DMBStore
	if got := m.CPUs[0].Cycles; got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
}

func TestAtomicContentionPenalty(t *testing.T) {
	m := New(1 << 16)
	// Two CPUs hammer the same address with CASAL via direct stepping.
	a := arm.NewAssembler()
	a.MovImm(arm.X1, 0x8000).
		MovImm(arm.X2, 0).
		MovImm(arm.X3, 0).
		Casal(arm.X2, arm.X3, arm.X1, 8).
		Hlt()
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Mem[0x1000:], code)
	c0 := m.CPUs[0]
	c0.PC = 0x1000
	if err := m.Run(c0, 100); err != nil {
		t.Fatal(err)
	}
	base := c0.Cycles

	// Second CPU runs the same code: must pay the transfer penalty.
	c1 := m.AddCPU()
	c1.PC = 0x1000
	if err := m.Run(c1, 100); err != nil {
		t.Fatal(err)
	}
	if c1.Cycles != base+m.Cost.AtomicTransfer {
		t.Fatalf("contended cycles = %d, want %d", c1.Cycles, base+m.Cost.AtomicTransfer)
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.MovImm(arm.X1, 1<<62).
			Ldr(arm.X0, arm.X1, 0, 8).
			Hlt()
	})
	if err := m.Run(m.CPUs[0], 100); err == nil {
		t.Fatal("out-of-bounds load must error")
	}
}

func TestRunAllBudget(t *testing.T) {
	m, _ := loadProgram(t, 0x1000, func(a *arm.Assembler) {
		a.Label("spin").BLabel("spin")
	})
	if err := m.RunAll(16, 1000); err == nil {
		t.Fatal("infinite loop must exhaust the step budget")
	}
}
