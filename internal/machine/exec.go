package machine

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/isa/arm"
)

// exec executes a decoded instruction on c, charging its cost and advancing
// the PC.
func (m *Machine) exec(c *CPU, inst arm.Inst) error {
	c.Insts++
	c.Cycles += m.Cost.Of(inst.Op)
	next := c.PC + arm.InstBytes

	switch inst.Op {
	case arm.NOP:
	case arm.HLT:
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		c.Halted = true
		return nil

	case arm.MOVZ:
		c.setReg(inst.Rd, uint64(inst.Imm)<<(16*inst.Shift))
	case arm.MOVK:
		mask := uint64(0xFFFF) << (16 * inst.Shift)
		v := c.reg(inst.Rd)&^mask | uint64(inst.Imm)<<(16*inst.Shift)
		c.setReg(inst.Rd, v)

	case arm.ADD:
		c.setReg(inst.Rd, c.reg(inst.Rn)+c.reg(inst.Rm))
	case arm.SUB:
		c.setReg(inst.Rd, c.reg(inst.Rn)-c.reg(inst.Rm))
	case arm.MUL:
		c.setReg(inst.Rd, c.reg(inst.Rn)*c.reg(inst.Rm))
	case arm.UDIV:
		d := c.reg(inst.Rm)
		if d == 0 {
			c.setReg(inst.Rd, 0) // Arm semantics: division by zero yields 0
		} else {
			c.setReg(inst.Rd, c.reg(inst.Rn)/d)
		}
	case arm.UREM:
		d := c.reg(inst.Rm)
		if d == 0 {
			c.setReg(inst.Rd, c.reg(inst.Rn))
		} else {
			c.setReg(inst.Rd, c.reg(inst.Rn)%d)
		}
	case arm.AND:
		c.setReg(inst.Rd, c.reg(inst.Rn)&c.reg(inst.Rm))
	case arm.ORR:
		c.setReg(inst.Rd, c.reg(inst.Rn)|c.reg(inst.Rm))
	case arm.EOR:
		c.setReg(inst.Rd, c.reg(inst.Rn)^c.reg(inst.Rm))
	case arm.LSL:
		c.setReg(inst.Rd, shiftL(c.reg(inst.Rn), c.reg(inst.Rm)))
	case arm.LSR:
		c.setReg(inst.Rd, shiftR(c.reg(inst.Rn), c.reg(inst.Rm)))
	case arm.ASR:
		c.setReg(inst.Rd, shiftAR(c.reg(inst.Rn), c.reg(inst.Rm)))
	case arm.SUBS:
		c.setReg(inst.Rd, c.setFlagsSub(c.reg(inst.Rn), c.reg(inst.Rm)))
	case arm.MVN:
		c.setReg(inst.Rd, ^c.reg(inst.Rn))
	case arm.NEG:
		c.setReg(inst.Rd, -c.reg(inst.Rn))

	case arm.ADDI:
		c.setReg(inst.Rd, c.reg(inst.Rn)+uint64(inst.Imm))
	case arm.SUBI:
		c.setReg(inst.Rd, c.reg(inst.Rn)-uint64(inst.Imm))
	case arm.ANDI:
		c.setReg(inst.Rd, c.reg(inst.Rn)&uint64(inst.Imm))
	case arm.ORRI:
		c.setReg(inst.Rd, c.reg(inst.Rn)|uint64(inst.Imm))
	case arm.EORI:
		c.setReg(inst.Rd, c.reg(inst.Rn)^uint64(inst.Imm))
	case arm.LSLI:
		c.setReg(inst.Rd, shiftL(c.reg(inst.Rn), uint64(inst.Imm)))
	case arm.LSRI:
		c.setReg(inst.Rd, shiftR(c.reg(inst.Rn), uint64(inst.Imm)))
	case arm.ASRI:
		c.setReg(inst.Rd, shiftAR(c.reg(inst.Rn), uint64(inst.Imm)))
	case arm.SUBSI:
		c.setReg(inst.Rd, c.setFlagsSub(c.reg(inst.Rn), uint64(inst.Imm)))

	case arm.CSET:
		if c.cond(inst.Cond) {
			c.setReg(inst.Rd, 1)
		} else {
			c.setReg(inst.Rd, 0)
		}

	case arm.LDR:
		addr := c.reg(inst.Rn) + uint64(inst.Imm)
		var v uint64
		var err error
		if m.weak != nil {
			v, err = m.weakLoad(c, addr, inst.Size)
		} else {
			v, err = m.ReadMem(addr, inst.Size)
		}
		if err != nil {
			return cpuErr(c, err)
		}
		c.setReg(inst.Rd, v)
	case arm.STR:
		addr := c.reg(inst.Rn) + uint64(inst.Imm)
		var err error
		if m.weak != nil {
			err = m.weakStore(c, addr, inst.Size, c.reg(inst.Rd))
		} else {
			err = m.WriteMem(addr, inst.Size, c.reg(inst.Rd))
		}
		if err != nil {
			return cpuErr(c, err)
		}

	case arm.LDAR, arm.LDAPR:
		var v uint64
		var err error
		if m.weak != nil {
			v, err = m.weakLoad(c, c.reg(inst.Rn), inst.Size)
		} else {
			v, err = m.ReadMem(c.reg(inst.Rn), inst.Size)
		}
		if err != nil {
			return cpuErr(c, err)
		}
		c.setReg(inst.Rd, v)
	case arm.STLR:
		// Release: order all prior stores before this one.
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		if err := m.WriteMem(c.reg(inst.Rn), inst.Size, c.reg(inst.Rd)); err != nil {
			return cpuErr(c, err)
		}

	case arm.LDXR, arm.LDAXR:
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		addr := c.reg(inst.Rn)
		if err := checkAtomicAlign(addr, inst.Size); err != nil {
			return cpuErr(c, err)
		}
		v, err := m.ReadMem(addr, inst.Size)
		if err != nil {
			return cpuErr(c, err)
		}
		c.setReg(inst.Rd, v)
		c.monAddr, c.monSize, c.monValid = addr, inst.Size, true
	case arm.STXR, arm.STLXR:
		addr := c.reg(inst.Rn)
		if err := checkAtomicAlign(addr, inst.Size); err != nil {
			return cpuErr(c, err)
		}
		if c.monValid && c.monAddr == addr && c.monSize == inst.Size {
			if err := m.WriteMem(addr, inst.Size, c.reg(inst.Rm)); err != nil {
				return cpuErr(c, err)
			}
			c.setReg(inst.Rd, 0) // success
		} else {
			c.setReg(inst.Rd, 1) // failure
		}
		c.monValid = false

	case arm.CAS, arm.CASAL:
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		addr := c.reg(inst.Rn)
		if err := checkAtomicAlign(addr, inst.Size); err != nil {
			return cpuErr(c, err)
		}
		c.Cycles += m.atomicTouch(c, addr)
		old, err := m.ReadMem(addr, inst.Size)
		if err != nil {
			return cpuErr(c, err)
		}
		if old == truncate(c.reg(inst.Rd), inst.Size) {
			if err := m.WriteMem(addr, inst.Size, c.reg(inst.Rm)); err != nil {
				return cpuErr(c, err)
			}
		}
		c.setReg(inst.Rd, old)
	case arm.LDADDAL:
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		addr := c.reg(inst.Rn)
		if err := checkAtomicAlign(addr, inst.Size); err != nil {
			return cpuErr(c, err)
		}
		c.Cycles += m.atomicTouch(c, addr)
		old, err := m.ReadMem(addr, inst.Size)
		if err != nil {
			return cpuErr(c, err)
		}
		if err := m.WriteMem(addr, inst.Size, old+c.reg(inst.Rd)); err != nil {
			return cpuErr(c, err)
		}
		c.setReg(inst.Rm, old)
	case arm.SWPAL:
		if m.weak != nil {
			if err := m.weakFlush(c); err != nil {
				return cpuErr(c, err)
			}
		}
		addr := c.reg(inst.Rn)
		if err := checkAtomicAlign(addr, inst.Size); err != nil {
			return cpuErr(c, err)
		}
		c.Cycles += m.atomicTouch(c, addr)
		old, err := m.ReadMem(addr, inst.Size)
		if err != nil {
			return cpuErr(c, err)
		}
		if err := m.WriteMem(addr, inst.Size, c.reg(inst.Rd)); err != nil {
			return cpuErr(c, err)
		}
		c.setReg(inst.Rm, old)

	case arm.DMB:
		// The table charges 0 for DMB; the flavour-specific cost is here.
		c.Cycles += m.Cost.OfBarrier(inst.Barrier)
		if int(inst.Barrier) < len(m.DMBExec) {
			m.DMBExec[inst.Barrier]++
		}
		if m.weak != nil {
			if err := m.weakBarrier(c, inst.Barrier); err != nil {
				return cpuErr(c, err)
			}
		}

	case arm.B:
		next = branchTarget(c.PC, inst.Off)
	case arm.BL:
		c.setReg(arm.LR, c.PC+arm.InstBytes)
		next = branchTarget(c.PC, inst.Off)
	case arm.BCOND:
		if c.cond(inst.Cond) {
			next = branchTarget(c.PC, inst.Off)
		}
	case arm.CBZ:
		if c.reg(inst.Rd) == 0 {
			next = branchTarget(c.PC, inst.Off)
		}
	case arm.CBNZ:
		if c.reg(inst.Rd) != 0 {
			next = branchTarget(c.PC, inst.Off)
		}
	case arm.BR:
		next = c.reg(inst.Rn)
	case arm.BLR:
		target := c.reg(inst.Rn)
		c.setReg(arm.LR, c.PC+arm.InstBytes)
		if m.OnBLR != nil {
			handled, err := m.OnBLR(m, c, target)
			if err != nil {
				return cpuErr(c, err)
			}
			if handled {
				// Continue at the link address; the hook may have
				// redirected the PC itself (e.g. to halt).
				if c.Halted {
					return nil
				}
				next = c.reg(arm.LR)
				break
			}
		}
		next = target
	case arm.RET:
		next = c.reg(arm.LR)

	case arm.SVC:
		c.PC = next
		if m.Syscall == nil {
			return fmt.Errorf("cpu%d: svc #%d with no syscall handler", c.ID, inst.Imm)
		}
		if err := m.Syscall(m, c, uint16(inst.Imm)); err != nil {
			return cpuErr(c, err)
		}
		return nil

	default:
		return cpuErr(c, faults.New(faults.TrapDecode, "unimplemented op %v", inst.Op))
	}

	c.PC = next
	return nil
}

func cpuErr(c *CPU, err error) error {
	if t, ok := faults.As(err); ok {
		t.WithCPU(c.ID).WithHostPC(c.PC)
	}
	return fmt.Errorf("cpu%d at pc=%#x: %w", c.ID, c.PC, err)
}

// checkAtomicAlign faults exclusives and single-copy atomics on addresses
// that are not naturally aligned — Arm raises an alignment fault for
// these regardless of SCTLR configuration.
func checkAtomicAlign(addr uint64, size uint8) error {
	if size > 1 && addr%uint64(size) != 0 {
		t := faults.New(faults.TrapMisaligned,
			"atomic access [%#x,+%d) not naturally aligned", addr, size)
		t.Addr = addr
		return t
	}
	return nil
}

func branchTarget(pc uint64, off int32) uint64 {
	return uint64(int64(pc) + int64(off)*arm.InstBytes)
}

func shiftL(v, by uint64) uint64 {
	if by >= 64 {
		return 0
	}
	return v << by
}

func shiftR(v, by uint64) uint64 {
	if by >= 64 {
		return 0
	}
	return v >> by
}

// shiftAR saturates like the logical shifts: counts ≥ 64 yield the sign
// fill, matching the IR semantics (foldALU) and the guest ISA spec.
func shiftAR(v, by uint64) uint64 {
	if by >= 64 {
		return uint64(int64(v) >> 63)
	}
	return uint64(int64(v) >> by)
}

func truncate(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}
