package machine

import "fmt"

// Native syscall ABI for Arm programs built with internal/isa/arm's
// assembler (the "native" series of the benchmarks): syscall number in X8,
// arguments in X0..X2, result in X0 — mirroring the Linux arm64 convention.
//
// Translated guest programs do NOT use these numbers: the DBT runtime in
// internal/core installs its own handler that reads the *guest* register
// file (see core's syscall dispatch).
const (
	// SysExit halts the calling CPU; X0 is the exit code.
	SysExit = 93
	// SysWrite appends Mem[X0:X0+X1] to Machine.Output.
	SysWrite = 64
	// SysSpawn starts a new CPU at PC=X0 with X0=arg(X1) and the stack
	// pointer register (X27 by convention) set to X2. Returns the CPU id.
	SysSpawn = 220
	// SysJoin blocks until CPU X0 halts (the scheduler re-executes the
	// SVC until then). Returns the target's exit code.
	SysJoin = 221
)

// NativeSyscall is the Machine.Syscall handler implementing the native ABI.
func NativeSyscall(m *Machine, c *CPU, imm uint16) error {
	switch c.Regs[8] {
	case SysExit:
		c.ExitCode = c.Regs[0]
		c.Halted = true
		return nil
	case SysWrite:
		ptr, n := c.Regs[0], c.Regs[1]
		if err := m.check(ptr, 1); n > 0 && err != nil {
			return err
		}
		if ptr+n > uint64(len(m.Mem)) {
			return fmt.Errorf("write syscall: range [%#x,+%d) out of bounds", ptr, n)
		}
		m.Output = append(m.Output, m.Mem[ptr:ptr+n]...)
		c.Regs[0] = n
		return nil
	case SysSpawn:
		nc := m.AddCPU()
		nc.PC = c.Regs[0]
		nc.Regs[0] = c.Regs[1]
		nc.Regs[27] = c.Regs[2] // stack pointer convention
		c.Regs[0] = uint64(nc.ID)
		return nil
	case SysJoin:
		id := c.Regs[0]
		if id >= uint64(len(m.CPUs)) {
			return fmt.Errorf("join syscall: no cpu %d", id)
		}
		t := m.CPUs[id]
		if !t.Halted {
			// Rewind to the SVC so the scheduler retries. A blocked join
			// models a futex wait: refund the trap cost so the joiner
			// does not accrue simulated time while parked.
			c.PC -= 4
			c.Cycles -= m.Cost.Svc
			return nil
		}
		c.Regs[0] = t.ExitCode
		return nil
	default:
		return fmt.Errorf("native syscall: unknown number %d (svc #%d)", c.Regs[8], imm)
	}
}
