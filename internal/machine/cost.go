package machine

import "repro/internal/isa/arm"

// CostTable assigns a cycle cost to each instruction class. Absolute values
// are synthetic; the *relative* magnitudes follow the barrier study the
// paper relies on (Liu et al., "No Barrier in the Road" [51]): a full DMB
// is several times a one-directional DMB, which in turn is several times a
// plain access, and single-copy atomics sit between a plain access and a
// full barrier, with a large extra penalty when the cache line must be
// transferred from another core.
type CostTable struct {
	// ALU covers register/immediate arithmetic, moves and CSET.
	ALU uint64
	// MulDiv covers MUL; Div covers UDIV/UREM.
	MulDiv uint64
	Div    uint64
	// Load/Store cover plain LDR/STR.
	Load  uint64
	Store uint64
	// AcqRel covers LDAR/LDAPR/STLR.
	AcqRel uint64
	// Exclusive covers LDXR/STXR and their acquire/release forms.
	Exclusive uint64
	// Atomic covers CAS/CASAL/LDADDAL/SWPAL (base, uncontended).
	Atomic uint64
	// AtomicTransfer is the added cost when the line was last owned by
	// another CPU (cache-line ping-pong under contention).
	AtomicTransfer uint64
	// Barriers.
	DMBFull  uint64
	DMBLoad  uint64
	DMBStore uint64
	// Branch covers B/BCOND/CBZ/CBNZ; Call covers BL/BLR/BR/RET.
	Branch uint64
	Call   uint64
	// Svc is the trap cost.
	Svc uint64
}

// DefaultCost returns the calibrated table used by all experiments.
func DefaultCost() CostTable {
	return CostTable{
		ALU:       1,
		MulDiv:    3,
		Div:       12,
		Load:      4,
		Store:     3,
		AcqRel:    8,
		Exclusive: 9,
		Atomic:    20,
		// Transferring a contended line dominates everything else an
		// atomic does, which is why Figure 15's helper-call overhead
		// vanishes under contention.
		AtomicTransfer: 200,
		// Barrier costs are calibrated so that (a) stripping every fence
		// recovers roughly half the runtime of the QEMU mapping on
		// memory-bound kernels and (b) the verified mapping's DMBFF→DMBST
		// store-side demotion plus fence merging yields single-digit mean
		// gains — the two quantitative shapes of §7.2.
		DMBFull:  16,
		DMBLoad:  12,
		DMBStore: 8,
		Branch:   1,
		Call:     2,
		// Svc covers both guest syscalls and translation-block dispatch;
		// the low value approximates QEMU's chained-TB dispatch.
		Svc: 12,
	}
}

// Of returns the base cost of an opcode. DMB returns 0: the flavour-
// specific cost is charged by the interpreter via OfBarrier.
func (t CostTable) Of(op arm.Op) uint64 {
	switch op {
	case arm.NOP, arm.HLT:
		return 0
	case arm.MUL:
		return t.MulDiv
	case arm.UDIV, arm.UREM:
		return t.Div
	case arm.LDR:
		return t.Load
	case arm.STR:
		return t.Store
	case arm.LDAR, arm.LDAPR, arm.STLR:
		return t.AcqRel
	case arm.LDXR, arm.STXR, arm.LDAXR, arm.STLXR:
		return t.Exclusive
	case arm.CAS, arm.CASAL, arm.LDADDAL, arm.SWPAL:
		return t.Atomic
	case arm.DMB:
		return 0
	case arm.B, arm.BCOND, arm.CBZ, arm.CBNZ:
		return t.Branch
	case arm.BL, arm.BLR, arm.BR, arm.RET:
		return t.Call
	case arm.SVC:
		return t.Svc
	default:
		return t.ALU
	}
}

// OfBarrier returns the cost of a DMB flavour.
func (t CostTable) OfBarrier(b arm.Barrier) uint64 {
	switch b {
	case arm.BarrierLoad:
		return t.DMBLoad
	case arm.BarrierStore:
		return t.DMBStore
	default:
		return t.DMBFull
	}
}
