package machine

import (
	"fmt"

	"repro/internal/isa/arm"
)

// Weak-memory mode: an operational approximation of Arm's store-side
// relaxations, complementing the axiomatic models in internal/models.
//
// Each CPU gets a store buffer; plain STRs enter the buffer and drain to
// memory later — possibly out of program order (store-store reordering)
// and after subsequent loads execute (store-load reordering). Loads
// forward from the CPU's own buffer (reading own writes early, like real
// store buffers). Barriers restore order:
//
//   - DMB ISH and DMB ISHST flush the buffer (no store may pass them);
//   - STLR (release) flushes before writing;
//   - exclusives and single-copy atomics flush before operating
//     (Arm atomics are never satisfied from a local buffer).
//
// Load-side relaxations (load-load reordering, speculation past an
// acquire) are NOT modelled operationally; those behaviours are covered
// by the axiomatic checker. The mode exists to demonstrate that the weak
// outcomes predicted by the models actually manifest in execution and
// that the verified mappings' fences suppress them.
//
// Which store drains when is decided by the machine's Chooser (see
// chooser.go): a seeded RandomChooser reproduces the legacy randomized
// schedule, while internal/explore installs enumerating and replaying
// choosers over the same engine. The exact-as-implemented axiomatic
// counterpart of this machine is internal/models/opref.
type weakState struct {
	buffers map[int][]PendingStore
	// nextSeq numbers buffered stores machine-globally (see PendingStore.Seq).
	nextSeq uint64
}

// EnableWeakMemory switches the machine into weak mode driven by a seeded
// RandomChooser — the legacy entry point. drainProb256 is the per-step
// drain probability in 1/256ths (64 ≈ drain every 4 steps).
func (m *Machine) EnableWeakMemory(seed int64, drainProb256 int) {
	m.EnableWeakMode(NewRandomChooser(seed, drainProb256))
}

// EnableWeakMode switches the machine into weak mode with an explicit
// chooser. A nil chooser disables automatic drains entirely: stores buffer
// and forward, but retire only through explicit DrainWeak/FlushWeak calls
// — the regime exploration drivers use to own every drain as a first-class
// transition.
func (m *Machine) EnableWeakMode(ch Chooser) {
	m.weak = &weakState{buffers: make(map[int][]PendingStore)}
	m.chooser = ch
}

// WeakEnabled reports whether weak mode is on.
func (m *Machine) WeakEnabled() bool { return m.weak != nil }

// WeakBuffer returns a copy of cpu's pending-store buffer, oldest first.
func (m *Machine) WeakBuffer(cpuID int) []PendingStore {
	if m.weak == nil {
		return nil
	}
	return append([]PendingStore(nil), m.weak.buffers[cpuID]...)
}

// WeakDrainHeads returns the drainable indices of cpu's buffer that are
// heads of their coherence chain (no older overlapping store). Draining
// any other index is redirected to its chain head, so these are exactly
// the distinct drain transitions an enumerator needs to consider.
func (m *Machine) WeakDrainHeads(cpuID int) []int {
	if m.weak == nil {
		return nil
	}
	buf := m.weak.buffers[cpuID]
	var heads []int
	for i := range buf {
		if oldestOverlap(buf, i) == i {
			heads = append(heads, i)
		}
	}
	return heads
}

// weakStore buffers a plain store.
func (m *Machine) weakStore(c *CPU, addr uint64, size uint8, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	w := m.weak
	w.nextSeq++
	w.buffers[c.ID] = append(w.buffers[c.ID], PendingStore{Addr: addr, Size: size, Val: v, Seq: w.nextSeq})
	m.record(addr, size, true, true)
	return nil
}

// weakLoad reads with store-buffer forwarding: the newest exactly-matching
// buffered store wins; a partially-overlapping buffered store forces a
// flush (real hardware merges; flushing is the simple sound choice).
func (m *Machine) weakLoad(c *CPU, addr uint64, size uint8) (uint64, error) {
	buf := m.weak.buffers[c.ID]
	for i := len(buf) - 1; i >= 0; i-- {
		p := buf[i]
		if p.Addr == addr && p.Size == size {
			m.record(addr, size, false, true)
			return p.Val, nil
		}
		if overlap(addr, uint64(size), p.Addr, uint64(p.Size)) {
			if err := m.weakFlush(c); err != nil {
				return 0, err
			}
			return m.ReadMem(addr, size)
		}
	}
	return m.ReadMem(addr, size)
}

// weakFlush drains the CPU's entire buffer in order.
func (m *Machine) weakFlush(c *CPU) error {
	buf := m.weak.buffers[c.ID]
	m.weak.buffers[c.ID] = nil
	for _, p := range buf {
		if err := m.WriteMem(p.Addr, p.Size, p.Val); err != nil {
			return err
		}
	}
	return nil
}

// weakMaybeDrain consults the chooser after an executed instruction and
// retires at most one buffered store.
func (m *Machine) weakMaybeDrain(c *CPU) error {
	buf := m.weak.buffers[c.ID]
	if len(buf) == 0 || m.chooser == nil {
		return nil
	}
	i := m.chooser.Drain(c.ID, buf)
	if i < 0 {
		return nil
	}
	return m.DrainWeak(c, i)
}

// DrainWeak retires c's i-th buffered store. Coherence: a store may not
// drain before an older buffered store to an overlapping address, so the
// drain is redirected to the head of i's overlap chain — transitively: the
// first older overlap may itself have an older overlap (the historical bug
// here stopped after one hop and could write a middle-of-chain store
// first).
func (m *Machine) DrainWeak(c *CPU, i int) error {
	if m.weak == nil {
		return fmt.Errorf("machine: DrainWeak without weak mode")
	}
	buf := m.weak.buffers[c.ID]
	if i < 0 || i >= len(buf) {
		return fmt.Errorf("machine: drain index %d out of range (cpu %d buffers %d)", i, c.ID, len(buf))
	}
	i = oldestOverlap(buf, i)
	p := buf[i]
	m.weak.buffers[c.ID] = append(append([]PendingStore(nil), buf[:i]...), buf[i+1:]...)
	return m.WriteMem(p.Addr, p.Size, p.Val)
}

// oldestOverlap follows i's coherence chain to its oldest member: while
// some older buffered store overlaps buf[i], move to the first such store
// and repeat. The fixpoint — not a single hop — is what guarantees no
// store drains past an older same-location store anywhere in the chain.
func oldestOverlap(buf []PendingStore, i int) int {
	for {
		j := i
		for k := 0; k < i; k++ {
			if overlap(buf[k].Addr, uint64(buf[k].Size), buf[i].Addr, uint64(buf[i].Size)) {
				j = k
				break
			}
		}
		if j == i {
			return i
		}
		i = j
	}
}

// weakBarrier implements DMB in weak mode. DMB ISH and DMB ISHST order
// buffered stores with later accesses: flush. DMB ISHLD constrains only
// the load side, which this model executes in order anyway.
func (m *Machine) weakBarrier(c *CPU, b arm.Barrier) error {
	if b == arm.BarrierLoad {
		return nil
	}
	return m.weakFlush(c)
}

// FlushWeak drains one CPU's buffer; runtimes call it at thread-exit
// points (thread exit synchronizes with join).
func (m *Machine) FlushWeak(c *CPU) error {
	if m.weak == nil {
		return nil
	}
	return m.weakFlush(c)
}

// FlushAllWeak drains every CPU's buffer (used at join/halt points and by
// tests before inspecting memory).
func (m *Machine) FlushAllWeak() error {
	if m.weak == nil {
		return nil
	}
	for _, c := range m.CPUs {
		if err := m.weakFlush(c); err != nil {
			return err
		}
	}
	return nil
}
