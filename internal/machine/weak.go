package machine

import (
	"math/rand"

	"repro/internal/isa/arm"
)

// Weak-memory mode: an operational approximation of Arm's store-side
// relaxations, complementing the axiomatic models in internal/models.
//
// Each CPU gets a store buffer; plain STRs enter the buffer and drain to
// memory later — possibly out of program order (store-store reordering)
// and after subsequent loads execute (store-load reordering). Loads
// forward from the CPU's own buffer (reading own writes early, like real
// store buffers). Barriers restore order:
//
//   - DMB ISH and DMB ISHST flush the buffer (no store may pass them);
//   - STLR (release) flushes before writing;
//   - exclusives and single-copy atomics flush before operating
//     (Arm atomics are never satisfied from a local buffer).
//
// Load-side relaxations (load-load reordering, speculation past an
// acquire) are NOT modelled operationally; those behaviours are covered
// by the axiomatic checker. The mode exists to demonstrate that the weak
// outcomes predicted by the models actually manifest in execution and
// that the verified mappings' fences suppress them.
//
// The drain schedule is driven by a seeded RNG, so runs are reproducible;
// exploring seeds explores interleavings.
type weakState struct {
	rng *rand.Rand
	// drainProb is the per-step probability (in 1/256ths) that one
	// buffered store drains.
	drainProb int
	buffers   map[int][]pendingStore
}

type pendingStore struct {
	addr uint64
	size uint8
	val  uint64
}

// EnableWeakMemory switches the machine into weak mode with the given
// seed. drainProb256 is the per-step drain probability in 1/256ths
// (64 ≈ drain every 4 steps).
func (m *Machine) EnableWeakMemory(seed int64, drainProb256 int) {
	if drainProb256 <= 0 {
		drainProb256 = 64
	}
	m.weak = &weakState{
		rng:       rand.New(rand.NewSource(seed)),
		drainProb: drainProb256,
		buffers:   make(map[int][]pendingStore),
	}
}

// WeakEnabled reports whether weak mode is on.
func (m *Machine) WeakEnabled() bool { return m.weak != nil }

// weakStore buffers a plain store.
func (m *Machine) weakStore(c *CPU, addr uint64, size uint8, v uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	w := m.weak
	w.buffers[c.ID] = append(w.buffers[c.ID], pendingStore{addr, size, v})
	return nil
}

// weakLoad reads with store-buffer forwarding: the newest exactly-matching
// buffered store wins; a partially-overlapping buffered store forces a
// flush (real hardware merges; flushing is the simple sound choice).
func (m *Machine) weakLoad(c *CPU, addr uint64, size uint8) (uint64, error) {
	buf := m.weak.buffers[c.ID]
	for i := len(buf) - 1; i >= 0; i-- {
		p := buf[i]
		if p.addr == addr && p.size == size {
			return p.val, nil
		}
		if overlap(addr, uint64(size), p.addr, uint64(p.size)) {
			if err := m.weakFlush(c); err != nil {
				return 0, err
			}
			return m.ReadMem(addr, size)
		}
	}
	return m.ReadMem(addr, size)
}

// weakFlush drains the CPU's entire buffer in order.
func (m *Machine) weakFlush(c *CPU) error {
	buf := m.weak.buffers[c.ID]
	m.weak.buffers[c.ID] = nil
	for _, p := range buf {
		if err := m.WriteMem(p.addr, p.size, p.val); err != nil {
			return err
		}
	}
	return nil
}

// weakMaybeDrain possibly retires one buffered store — picked at random,
// giving store-store reordering — after an executed instruction.
func (m *Machine) weakMaybeDrain(c *CPU) error {
	w := m.weak
	buf := w.buffers[c.ID]
	if len(buf) == 0 {
		return nil
	}
	// Bound buffers like hardware does.
	if len(buf) < 8 && w.rng.Intn(256) >= w.drainProb {
		return nil
	}
	i := w.rng.Intn(len(buf))
	// Coherence: a store may not drain before an older buffered store to
	// an overlapping address.
	for j := 0; j < i; j++ {
		if overlap(buf[j].addr, uint64(buf[j].size), buf[i].addr, uint64(buf[i].size)) {
			i = j
			break
		}
	}
	p := buf[i]
	w.buffers[c.ID] = append(append([]pendingStore(nil), buf[:i]...), buf[i+1:]...)
	return m.WriteMem(p.addr, p.size, p.val)
}

// weakBarrier implements DMB in weak mode. DMB ISH and DMB ISHST order
// buffered stores with later accesses: flush. DMB ISHLD constrains only
// the load side, which this model executes in order anyway.
func (m *Machine) weakBarrier(c *CPU, b arm.Barrier) error {
	if b == arm.BarrierLoad {
		return nil
	}
	return m.weakFlush(c)
}

// FlushWeak drains one CPU's buffer; runtimes call it at thread-exit
// points (thread exit synchronizes with join).
func (m *Machine) FlushWeak(c *CPU) error {
	if m.weak == nil {
		return nil
	}
	return m.weakFlush(c)
}

// FlushAllWeak drains every CPU's buffer (used at join/halt points and by
// tests before inspecting memory).
func (m *Machine) FlushAllWeak() error {
	if m.weak == nil {
		return nil
	}
	for _, c := range m.CPUs {
		if err := m.weakFlush(c); err != nil {
			return err
		}
	}
	return nil
}
