// CPU/memory snapshotting for shadow execution: the DBT's -selfcheck mode
// runs each freshly translated block once on a copy of the machine state
// and compares its effects against the TCG interpreter's, so a snapshot
// must capture everything generated code can read or write — including,
// under weak mode, the store buffers and the chooser's cursor.

package machine

import (
	"fmt"

	"repro/internal/isa/arm"
)

// WeakSnapshot captures the weak-memory mode's state: every CPU's pending
// store buffer, the global store sequence counter, and the chooser's
// serialized cursor (present only when a chooser is installed).
type WeakSnapshot struct {
	Buffers map[int][]PendingStore
	NextSeq uint64
	Cursor  []byte
	// HasCursor distinguishes "no chooser installed" from "chooser with an
	// empty cursor".
	HasCursor bool
}

// Snapshot is a deep copy of the machine's memory plus one CPU's state,
// taken at a block boundary.
type Snapshot struct {
	// Mem is a private copy of the full memory (guest data and code cache
	// alike — shadow runs fetch generated code from it).
	Mem []byte
	// CPU is the copied register state. The exclusive monitor is cleared:
	// a block boundary is never inside an exclusive sequence.
	CPU CPU
	// Weak is the weak-memory state, non-nil iff weak mode was enabled at
	// snapshot time. (Earlier revisions silently dropped store buffers
	// here, making weak-mode replay unsound.)
	Weak *WeakSnapshot
}

// SnapshotErr deep-copies the machine memory and c's state. Under weak
// mode it also captures every store buffer and the chooser cursor; a
// chooser that cannot serialize its cursor (not a CursorChooser) makes the
// snapshot unrepresentable and is reported as an error rather than being
// dropped on the floor.
func (m *Machine) SnapshotErr(c *CPU) (*Snapshot, error) {
	s := &Snapshot{Mem: append([]byte(nil), m.Mem...), CPU: *c}
	s.CPU.monValid = false
	if m.weak != nil {
		w := &WeakSnapshot{Buffers: make(map[int][]PendingStore), NextSeq: m.weak.nextSeq}
		for id, buf := range m.weak.buffers {
			if len(buf) > 0 {
				w.Buffers[id] = append([]PendingStore(nil), buf...)
			}
		}
		if m.chooser != nil {
			cc, ok := m.chooser.(CursorChooser)
			if !ok {
				return nil, fmt.Errorf("machine: snapshot under weak mode: chooser %T has no serializable cursor", m.chooser)
			}
			cur, err := cc.Cursor()
			if err != nil {
				return nil, fmt.Errorf("machine: snapshot under weak mode: %w", err)
			}
			w.Cursor, w.HasCursor = cur, true
		}
		s.Weak = w
	}
	return s, nil
}

// Snapshot is SnapshotErr for callers whose machine is known
// snapshot-safe; it panics on un-serializable state (the loud failure the
// silent buffer drop used to hide).
func (m *Machine) Snapshot(c *CPU) *Snapshot {
	s, err := m.SnapshotErr(c)
	if err != nil {
		panic(err)
	}
	return s
}

// ShadowMachine builds a fresh single-CPU machine over the snapshot state,
// for deterministic shadow execution: no injector, no weak-memory mode, no
// observability, no watchdogs — just the sequentially consistent
// interpreter over the copied memory. If the snapshot CPU had buffered
// stores, they are applied (in order) to a private memory copy first: the
// shadow must see that CPU's own view, in which its stores have already
// happened. The caller installs its own Syscall and OnBLR hooks and bounds
// execution via Run's maxSteps.
func (s *Snapshot) ShadowMachine() *Machine {
	cpu := s.CPU
	cpu.ID = 0
	cpu.Halted = false
	mem := s.Mem
	if s.Weak != nil && len(s.Weak.Buffers[s.CPU.ID]) > 0 {
		mem = append([]byte(nil), s.Mem...)
		for _, p := range s.Weak.Buffers[s.CPU.ID] {
			for i := uint8(0); i < p.Size; i++ {
				mem[p.Addr+uint64(i)] = byte(p.Val >> (8 * i))
			}
		}
	}
	return &Machine{
		Mem:         mem,
		CPUs:        []*CPU{&cpu},
		Cost:        DefaultCost(),
		lineOwner:   make(map[uint64]int),
		decodeCache: make(map[uint64]arm.Inst),
	}
}

// Restore writes the snapshot back into m and c — the inverse of Snapshot,
// for callers that executed destructively on the live machine. The CPU's
// identity is preserved; the decode cache is dropped because memory
// (including the code cache) is rewritten wholesale. Weak-mode state
// (buffers, sequence counter, chooser cursor) is restored when the
// snapshot carries it; restoring a weak snapshot onto a machine whose mode
// or chooser cannot accept it is a programming error and panics.
func (m *Machine) Restore(c *CPU, s *Snapshot) {
	copy(m.Mem, s.Mem)
	id := c.ID
	*c = s.CPU
	c.ID = id
	m.decodeCache = make(map[uint64]arm.Inst)
	if s.Weak == nil {
		if m.weak != nil {
			// Snapshot predates weak mode: no store was buffered then.
			m.weak.buffers = make(map[int][]PendingStore)
		}
		return
	}
	if m.weak == nil {
		panic(fmt.Errorf("machine: restoring weak-mode snapshot onto a machine without weak mode"))
	}
	m.weak.buffers = make(map[int][]PendingStore)
	for cid, buf := range s.Weak.Buffers {
		m.weak.buffers[cid] = append([]PendingStore(nil), buf...)
	}
	m.weak.nextSeq = s.Weak.NextSeq
	if s.Weak.HasCursor {
		cc, ok := m.chooser.(CursorChooser)
		if !ok {
			panic(fmt.Errorf("machine: restoring chooser cursor onto chooser %T without one", m.chooser))
		}
		if err := cc.Seek(s.Weak.Cursor); err != nil {
			panic(fmt.Errorf("machine: restoring chooser cursor: %w", err))
		}
	}
}
