// CPU/memory snapshotting for shadow execution: the DBT's -selfcheck mode
// runs each freshly translated block once on a copy of the machine state
// and compares its effects against the TCG interpreter's, so a snapshot
// must capture everything generated code can read or write.

package machine

import "repro/internal/isa/arm"

// Snapshot is a deep copy of the machine's memory plus one CPU's state,
// taken at a block boundary.
type Snapshot struct {
	// Mem is a private copy of the full memory (guest data and code cache
	// alike — shadow runs fetch generated code from it).
	Mem []byte
	// CPU is the copied register state. The exclusive monitor is cleared:
	// a block boundary is never inside an exclusive sequence.
	CPU CPU
}

// Snapshot deep-copies the machine memory and c's state.
func (m *Machine) Snapshot(c *CPU) *Snapshot {
	s := &Snapshot{Mem: append([]byte(nil), m.Mem...), CPU: *c}
	s.CPU.monValid = false
	return s
}

// ShadowMachine builds a fresh single-CPU machine over the snapshot state,
// for deterministic shadow execution: no injector, no weak-memory mode, no
// observability, no watchdogs — just the sequentially consistent
// interpreter over the copied memory. The caller installs its own Syscall
// and OnBLR hooks and bounds execution via Run's maxSteps.
func (s *Snapshot) ShadowMachine() *Machine {
	cpu := s.CPU
	cpu.ID = 0
	cpu.Halted = false
	return &Machine{
		Mem:         s.Mem,
		CPUs:        []*CPU{&cpu},
		Cost:        DefaultCost(),
		lineOwner:   make(map[uint64]int),
		decodeCache: make(map[uint64]arm.Inst),
	}
}

// Restore writes the snapshot back into m and c — the inverse of Snapshot,
// for callers that executed destructively on the live machine. The CPU's
// identity is preserved; the decode cache is dropped because memory
// (including the code cache) is rewritten wholesale.
func (m *Machine) Restore(c *CPU, s *Snapshot) {
	copy(m.Mem, s.Mem)
	id := c.ID
	*c = s.CPU
	c.ID = id
	m.decodeCache = make(map[uint64]arm.Inst)
}
