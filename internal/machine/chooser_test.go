package machine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/isa/arm"
)

// TestDrainOldestOverlapChain is the regression for the weakMaybeDrain
// coherence bug: with three buffered stores A=[0x100,+8), B=[0x104,+8),
// C=[0x108,+8), draining C must retire A. A overlaps B, B overlaps C, but
// A does not overlap C — the historical single-hop redirect stopped at B
// and wrote it to memory before the older overlapping A.
func TestDrainOldestOverlapChain(t *testing.T) {
	m := New(1 << 12)
	m.EnableWeakMode(nil)
	c := m.CPUs[0]
	if err := m.weakStore(c, 0x100, 8, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	if err := m.weakStore(c, 0x104, 8, 0x2222222222222222); err != nil {
		t.Fatal(err)
	}
	if err := m.weakStore(c, 0x108, 8, 0x3333333333333333); err != nil {
		t.Fatal(err)
	}
	if err := m.DrainWeak(c, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadMem(0x100, 8); v != 0x1111111111111111 {
		t.Fatalf("drained store value %#x at 0x100, want A (0x1111...)", v)
	}
	if v, _ := m.ReadMem(0x108, 8); v != 0 {
		t.Fatalf("memory past A written (%#x at 0x108): a younger chain member drained", v)
	}
	buf := m.WeakBuffer(0)
	if len(buf) != 2 || buf[0].Addr != 0x104 || buf[1].Addr != 0x108 {
		t.Fatalf("buffer after drain = %+v, want [B, C]", buf)
	}
}

// TestDrainAnyOrderMatchesProgramOrderPerLocation drains a mixed buffer in
// many randomized orders and checks the final memory always equals the
// in-order flush: coherence redirection must make overlapping stores land
// in program order no matter which indices the chooser picks.
func TestDrainAnyOrderMatchesProgramOrderPerLocation(t *testing.T) {
	stores := []PendingStore{
		{Addr: 0x100, Size: 8, Val: 1},
		{Addr: 0x104, Size: 8, Val: 2},
		{Addr: 0x108, Size: 8, Val: 3},
		{Addr: 0x200, Size: 4, Val: 4},
		{Addr: 0x100, Size: 8, Val: 5},
		{Addr: 0x202, Size: 4, Val: 6},
	}
	ref := New(1 << 12)
	for _, p := range stores {
		if err := ref.WriteMem(p.Addr, p.Size, p.Val); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(0); seed < 64; seed++ {
		m := New(1 << 12)
		m.EnableWeakMode(nil)
		c := m.CPUs[0]
		for _, p := range stores {
			if err := m.weakStore(c, p.Addr, p.Size, p.Val); err != nil {
				t.Fatal(err)
			}
		}
		rng := splitmix{state: uint64(seed)}
		for len(m.weak.buffers[c.ID]) > 0 {
			if err := m.DrainWeak(c, rng.intn(len(m.weak.buffers[c.ID]))); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(m.Mem, ref.Mem) {
			t.Fatalf("seed %d: out-of-order drain diverged from program-order flush", seed)
		}
	}
}

// TestWeakDrainHeads checks head enumeration: only chain heads are
// distinct drain transitions.
func TestWeakDrainHeads(t *testing.T) {
	m := New(1 << 12)
	m.EnableWeakMode(nil)
	c := m.CPUs[0]
	for _, p := range []PendingStore{
		{Addr: 0x100, Size: 8, Val: 1}, // head (chain with B, C)
		{Addr: 0x104, Size: 8, Val: 2},
		{Addr: 0x108, Size: 8, Val: 3},
		{Addr: 0x200, Size: 8, Val: 4}, // head (independent)
	} {
		if err := m.weakStore(c, p.Addr, p.Size, p.Val); err != nil {
			t.Fatal(err)
		}
	}
	heads := m.WeakDrainHeads(0)
	if fmt.Sprint(heads) != "[0 3]" {
		t.Fatalf("drain heads = %v, want [0 3]", heads)
	}
}

// TestWeakSnapshotRestore: snapshotting under weak mode must capture the
// store buffers and the chooser cursor, so a restored machine replays the
// exact continuation — including the random drain schedule.
func TestWeakSnapshotRestore(t *testing.T) {
	run := func(m *Machine, c *CPU) string {
		// Deterministic continuation: a fixed instruction-free drain walk.
		for i := 0; i < 64; i++ {
			if err := m.weakMaybeDrain(c); err != nil {
				t.Fatal(err)
			}
		}
		return fmt.Sprintf("%x %v", m.Mem[0x100:0x120], m.WeakBuffer(c.ID))
	}

	m := New(1 << 12)
	m.EnableWeakMemory(7, 48)
	c := m.CPUs[0]
	for i := 0; i < 6; i++ {
		if err := m.weakStore(c, 0x100+uint64(8*i), 8, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot(c)
	if snap.Weak == nil || len(snap.Weak.Buffers[0]) != 6 || !snap.Weak.HasCursor {
		t.Fatalf("snapshot dropped weak state: %+v", snap.Weak)
	}
	first := run(m, c)
	m.Restore(c, snap)
	if second := run(m, c); second != first {
		t.Fatalf("restored continuation diverged:\n first: %s\nsecond: %s", first, second)
	}
}

// opaqueChooser has no serializable cursor.
type opaqueChooser struct{}

func (opaqueChooser) NextCPU([]int) int             { return -1 }
func (opaqueChooser) Drain(int, []PendingStore) int { return -1 }

// TestSnapshotUnserializableChooserFailsLoudly: weak mode plus a chooser
// without a cursor cannot be represented — SnapshotErr reports it and
// Snapshot panics instead of silently dropping state.
func TestSnapshotUnserializableChooserFailsLoudly(t *testing.T) {
	m := New(1 << 12)
	m.EnableWeakMode(opaqueChooser{})
	if _, err := m.SnapshotErr(m.CPUs[0]); err == nil {
		t.Fatal("SnapshotErr accepted an un-serializable chooser")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot did not panic on un-serializable state")
		}
	}()
	m.Snapshot(m.CPUs[0])
}

// preferChooser always schedules the preferred CPU while it is runnable.
type preferChooser struct{ id int }

func (p preferChooser) NextCPU(runnable []int) int {
	for _, id := range runnable {
		if id == p.id {
			return id
		}
	}
	return -1
}
func (preferChooser) Drain(int, []PendingStore) int { return -1 }

// TestRunAllChooserScheduling: the chooser overrides the round-robin.
// CPU 1 stores a flag and halts; CPU 0 loads it. Preferring CPU 1 makes
// CPU 0 observe the flag; the default round-robin (CPU 0 first) does not.
func TestRunAllChooserScheduling(t *testing.T) {
	build := func() *Machine {
		a := arm.NewAssembler()
		a.Label("t0").MovImm(arm.X9, 0x800).Ldr(arm.X2, arm.X9, 0, 8).Hlt()
		a.Label("t1").MovImm(arm.X9, 0x800).MovImm(arm.X1, 1).Str(arm.X1, arm.X9, 0, 8).Hlt()
		code, syms, err := a.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		m := New(1 << 16)
		copy(m.Mem[0x1000:], code)
		m.CPUs[0].PC = syms["t0"]
		m.AddCPU().PC = syms["t1"]
		return m
	}

	m := build()
	m.SetChooser(preferChooser{id: 1})
	if err := m.RunAll(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if m.CPUs[0].Regs[arm.X2] != 1 {
		t.Fatalf("preferred CPU 1 did not run first: CPU0 loaded %d", m.CPUs[0].Regs[arm.X2])
	}

	m = build()
	if err := m.RunAll(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if m.CPUs[0].Regs[arm.X2] != 0 {
		t.Fatalf("default round-robin changed: CPU0 loaded %d, want 0", m.CPUs[0].Regs[arm.X2])
	}
}

// TestAccessLog: ReadMem/WriteMem record global accesses, buffered stores
// and forwarded loads record local ones, and TakeAccesses drains the log.
func TestAccessLog(t *testing.T) {
	m := New(1 << 12)
	m.EnableWeakMode(nil)
	c := m.CPUs[0]
	m.RecordAccesses(true)
	if err := m.weakStore(c, 0x100, 8, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := m.weakLoad(c, 0x100, 8); err != nil || v != 7 {
		t.Fatalf("forwarded load = %d, %v", v, err)
	}
	if err := m.DrainWeak(c, 0); err != nil {
		t.Fatal(err)
	}
	got := m.TakeAccesses()
	want := []MemAccess{
		{Addr: 0x100, Size: 8, Write: true, Local: true},
		{Addr: 0x100, Size: 8, Write: false, Local: true},
		{Addr: 0x100, Size: 8, Write: true, Local: false},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("access log = %v, want %v", got, want)
	}
	if len(m.TakeAccesses()) != 0 {
		t.Fatal("TakeAccesses did not drain the log")
	}
}
