package machine

import (
	"testing"

	"repro/internal/isa/arm"
)

// sbProgram builds the store-buffering litmus shape as native Arm code:
//
//	T0: X=1; a=Y      T1: Y=1; b=X
//
// with optional DMBs between the store and load. Thread 0 runs on CPU0
// (entry sb0), thread 1 on CPU1 (entry sb1); results land in 0x9000/0x9008.
func sbProgram(t *testing.T, fenced bool) (*Machine, map[string]uint64) {
	t.Helper()
	a := arm.NewAssembler()
	emit := func(label string, myLoc, otherLoc, resultLoc uint64) {
		a.Label(label).
			MovImm(arm.X1, myLoc).
			MovImm(arm.X2, 1).
			Str(arm.X2, arm.X1, 0, 8)
		if fenced {
			a.Dmb(arm.BarrierFull)
		}
		a.MovImm(arm.X3, otherLoc).
			Ldr(arm.X4, arm.X3, 0, 8).
			MovImm(arm.X5, resultLoc).
			Str(arm.X4, arm.X5, 0, 8).
			Hlt()
	}
	emit("sb0", 0x8000, 0x8008, 0x9000)
	emit("sb1", 0x8008, 0x8000, 0x9008)
	code, syms, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 16)
	copy(m.Mem[0x1000:], code)
	return m, syms
}

// runSB executes both threads under the given seed and returns (a, b).
func runSB(t *testing.T, fenced bool, seed int64, quantum int) (uint64, uint64) {
	t.Helper()
	m, syms := sbProgram(t, fenced)
	m.EnableWeakMemory(seed, 32)
	m.CPUs[0].PC = syms["sb0"]
	c1 := m.AddCPU()
	c1.PC = syms["sb1"]
	if err := m.RunAll(quantum, 100000); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushAllWeak(); err != nil {
		t.Fatal(err)
	}
	av, _ := m.ReadMem(0x9000, 8)
	bv, _ := m.ReadMem(0x9008, 8)
	return av, bv
}

func TestWeakModeExhibitsStoreBuffering(t *testing.T) {
	// Without fences the weak outcome a=b=0 must appear for some seed.
	seen := false
	for seed := int64(0); seed < 64 && !seen; seed++ {
		a, b := runSB(t, false, seed, 2)
		if a == 0 && b == 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("store-buffering outcome a=b=0 never observed in weak mode")
	}
}

func TestWeakModeFencesForbidStoreBuffering(t *testing.T) {
	// With DMB ISH between store and load, a=b=0 must never appear.
	for seed := int64(0); seed < 128; seed++ {
		for _, q := range []int{1, 2, 8} {
			a, b := runSB(t, true, seed, q)
			if a == 0 && b == 0 {
				t.Fatalf("seed %d quantum %d: fenced SB exhibited a=b=0", seed, q)
			}
		}
	}
}

// mpProgram builds message passing with optional DMB ISHST on the writer.
func runMP(t *testing.T, fenced bool, seed int64) (uint64, uint64) {
	t.Helper()
	a := arm.NewAssembler()
	a.Label("writer").
		MovImm(arm.X1, 0x8000). // X
		MovImm(arm.X2, 1).
		Str(arm.X2, arm.X1, 0, 8)
	if fenced {
		a.Dmb(arm.BarrierStore)
	}
	a.MovImm(arm.X3, 0x8008). // Y
					Str(arm.X2, arm.X3, 0, 8)
	// Keep the writer busy so its buffer drains on the random schedule
	// rather than the halt-time flush (HLT synchronizes, like thread
	// exit before a join).
	for i := 0; i < 24; i++ {
		a.AddI(arm.X9, arm.X9, 1)
	}
	a.Hlt()
	// The reader spins until it observes Y=1, then immediately reads X —
	// the classic message-passing receive.
	a.Label("reader").
		MovImm(arm.X1, 0x8008).
		MovImm(arm.X7, 0).
		Label("spin").
		AddI(arm.X7, arm.X7, 1).
		MovImm(arm.X8, 4096).
		Cmp(arm.X7, arm.X8).
		BCondLabel(arm.HI, "giveup").
		Ldr(arm.X4, arm.X1, 0, 8). // a = Y
		CbzLabel(arm.X4, "spin").
		Label("giveup").
		MovImm(arm.X2, 0x8000).
		Ldr(arm.X5, arm.X2, 0, 8). // b = X
		MovImm(arm.X6, 0x9000).
		Str(arm.X4, arm.X6, 0, 8).
		Str(arm.X5, arm.X6, 8, 8).
		Hlt()
	code, syms, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 16)
	copy(m.Mem[0x1000:], code)
	m.EnableWeakMemory(seed, 16)
	m.CPUs[0].PC = syms["writer"]
	c1 := m.AddCPU()
	c1.PC = syms["reader"]
	if err := m.RunAll(1, 100000); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushAllWeak(); err != nil {
		t.Fatal(err)
	}
	av, _ := m.ReadMem(0x9000, 8)
	bv, _ := m.ReadMem(0x9008, 8)
	return av, bv
}

func TestWeakModeExhibitsMessagePassingReorder(t *testing.T) {
	// Out-of-order drain lets Y=1 become visible before X=1: a=1, b=0.
	seen := false
	for seed := int64(0); seed < 256 && !seen; seed++ {
		a, b := runMP(t, false, seed)
		if a == 1 && b == 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("MP weak outcome a=1,b=0 never observed in weak mode")
	}
}

func TestWeakModeDMBSTForbidsMPReorder(t *testing.T) {
	for seed := int64(0); seed < 256; seed++ {
		a, b := runMP(t, true, seed)
		if a == 1 && b == 0 {
			t.Fatalf("seed %d: DMB ISHST failed to order the stores", seed)
		}
	}
}

func TestWeakModeForwardsOwnStores(t *testing.T) {
	// A CPU must read its own buffered store (no stale memory value).
	a := arm.NewAssembler()
	a.MovImm(arm.X1, 0x8000).
		MovImm(arm.X2, 7).
		Str(arm.X2, arm.X1, 0, 8).
		Ldr(arm.X3, arm.X1, 0, 8).
		Hlt()
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 16)
	copy(m.Mem[0x1000:], code)
	m.EnableWeakMemory(1, 1) // drain almost never
	m.CPUs[0].PC = 0x1000
	if err := m.Run(m.CPUs[0], 1000); err != nil {
		t.Fatal(err)
	}
	if m.CPUs[0].Regs[3] != 7 {
		t.Fatalf("own store not forwarded: %d", m.CPUs[0].Regs[3])
	}
}

func TestWeakModeCoherentDrainOrder(t *testing.T) {
	// Two buffered stores to the same address must drain in order: the
	// final memory value is the second store's.
	for seed := int64(0); seed < 64; seed++ {
		a := arm.NewAssembler()
		a.MovImm(arm.X1, 0x8000).
			MovImm(arm.X2, 1).
			Str(arm.X2, arm.X1, 0, 8).
			MovImm(arm.X2, 2).
			Str(arm.X2, arm.X1, 0, 8).
			Hlt()
		code, _, err := a.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		m := New(1 << 16)
		copy(m.Mem[0x1000:], code)
		m.EnableWeakMemory(seed, 128)
		m.CPUs[0].PC = 0x1000
		if err := m.Run(m.CPUs[0], 1000); err != nil {
			t.Fatal(err)
		}
		if err := m.FlushAllWeak(); err != nil {
			t.Fatal(err)
		}
		v, _ := m.ReadMem(0x8000, 8)
		if v != 2 {
			t.Fatalf("seed %d: same-address stores drained out of order: %d", seed, v)
		}
	}
}

func TestWeakModeAtomicsFlush(t *testing.T) {
	// A CAS after a buffered store to the same location must see it.
	a := arm.NewAssembler()
	a.MovImm(arm.X1, 0x8000).
		MovImm(arm.X2, 5).
		Str(arm.X2, arm.X1, 0, 8).
		MovImm(arm.X3, 5). // expected
		MovImm(arm.X4, 9).
		Casal(arm.X3, arm.X4, arm.X1, 8).
		Hlt()
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1 << 16)
	copy(m.Mem[0x1000:], code)
	m.EnableWeakMemory(3, 1)
	m.CPUs[0].PC = 0x1000
	if err := m.Run(m.CPUs[0], 1000); err != nil {
		t.Fatal(err)
	}
	if m.CPUs[0].Regs[3] != 5 {
		t.Fatalf("casal read %d, want 5 (flushed store)", m.CPUs[0].Regs[3])
	}
	v, _ := m.ReadMem(0x8000, 8)
	if v != 9 {
		t.Fatalf("casal did not commit: %d", v)
	}
}
