// All nondeterminism in the simulated machine — which CPU runs the next
// quantum, whether a buffered store drains and which one — flows through a
// single Chooser, so the same execution engine serves three masters: the
// seeded random walk that the legacy weak mode always was, the exhaustive
// DPOR enumerator in internal/explore, and byte-identical trace replay.

package machine

import (
	"encoding/json"
	"fmt"
)

// PendingStore is one store sitting in a CPU's store buffer, not yet
// visible to other CPUs. Seq is a machine-global monotonic sequence number
// assigned at buffering time: it names the store stably across drains, so
// exploration transitions ("drain the store with Seq s") keep their
// identity even as buffer indices shift.
type PendingStore struct {
	Addr uint64 `json:"addr"`
	Size uint8  `json:"size"`
	Val  uint64 `json:"val"`
	Seq  uint64 `json:"seq"`
}

// Chooser resolves the machine's nondeterministic choices.
//
// NextCPU picks which runnable CPU executes the next scheduler quantum;
// returning -1 defers to the machine's deterministic round-robin. Drain is
// consulted after each instruction a CPU executes while its store buffer
// is non-empty: it returns the index of the buffered store to retire, or
// -1 to leave the buffer alone. (Coherence may redirect the drain to an
// older overlapping store; see Machine.DrainWeak.)
type Chooser interface {
	NextCPU(runnable []int) int
	Drain(cpu int, buf []PendingStore) int
}

// CursorChooser is a Chooser whose decision stream can be captured and
// restored — the property Snapshot needs to make weak-mode machine state
// fully serializable. Cursor returns an opaque blob; Seek rewinds the
// chooser so the decisions after Seek replay exactly the decisions that
// followed Cursor.
type CursorChooser interface {
	Chooser
	Cursor() ([]byte, error)
	Seek(cursor []byte) error
}

// splitmix64 is the PRNG under RandomChooser. Unlike math/rand, its entire
// state is one word, so a chooser cursor is trivially serializable and a
// restored cursor replays the identical decision stream regardless of how
// many variable-width draws preceded it.
type splitmix struct{ state uint64 }

func (p *splitmix) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (p *splitmix) intn(n int) int {
	return int(p.next() % uint64(n))
}

// RandomChooser is the seeded random-walk chooser: the legacy weak-mode
// drain schedule (drain one random buffered store with probability
// drainProb/256 per step, always once the buffer holds 8 stores) plus an
// optional randomized scheduler. With scheduling off (the default) NextCPU
// returns -1, preserving the machine's deterministic round-robin exactly.
type RandomChooser struct {
	rng       splitmix
	drainProb int
	sched     bool
}

// NewRandomChooser seeds a random-walk chooser. drainProb256 is the
// per-step drain probability in 1/256ths (≤0 selects the default 64,
// ≈ drain every 4 steps).
func NewRandomChooser(seed int64, drainProb256 int) *RandomChooser {
	if drainProb256 <= 0 {
		drainProb256 = 64
	}
	return &RandomChooser{rng: splitmix{state: uint64(seed)}, drainProb: drainProb256}
}

// Scheduling toggles randomized CPU selection and returns the chooser.
func (r *RandomChooser) Scheduling(on bool) *RandomChooser {
	r.sched = on
	return r
}

// NextCPU picks a random runnable CPU when scheduling is enabled, else -1.
func (r *RandomChooser) NextCPU(runnable []int) int {
	if !r.sched || len(runnable) == 0 {
		return -1
	}
	return runnable[r.rng.intn(len(runnable))]
}

// Drain applies the legacy drain gate: buffers under 8 entries drain with
// probability drainProb/256; full buffers always drain (hardware bounds
// its buffers too). The drained index is uniform over the buffer.
func (r *RandomChooser) Drain(cpu int, buf []PendingStore) int {
	if len(buf) == 0 {
		return -1
	}
	if len(buf) < 8 && r.rng.intn(256) >= r.drainProb {
		return -1
	}
	return r.rng.intn(len(buf))
}

// randomCursor is the serialized form of a RandomChooser.
type randomCursor struct {
	State     uint64 `json:"state"`
	DrainProb int    `json:"drain_prob"`
	Sched     bool   `json:"sched"`
}

// Cursor captures the chooser's full state (the splitmix word plus
// configuration) as JSON.
func (r *RandomChooser) Cursor() ([]byte, error) {
	return json.Marshal(randomCursor{State: r.rng.state, DrainProb: r.drainProb, Sched: r.sched})
}

// Seek restores a Cursor, after which the decision stream replays exactly.
func (r *RandomChooser) Seek(cursor []byte) error {
	var cur randomCursor
	if err := json.Unmarshal(cursor, &cur); err != nil {
		return fmt.Errorf("machine: bad RandomChooser cursor: %w", err)
	}
	r.rng.state = cur.State
	r.drainProb = cur.DrainProb
	r.sched = cur.Sched
	return nil
}
