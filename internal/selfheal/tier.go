// Package selfheal implements the policy side of Risotto-Go's self-healing
// execution layer: the translation tier ladder, the per-block quarantine
// registry, and the deterministic crash-triage bundle written when a trap
// survives every recovery attempt. The mechanism side — invalidating
// blocks, retranslating, shadow-executing — lives in internal/core; this
// package stays free of execution dependencies so CLIs and tools can parse
// bundles without linking the DBT.
package selfheal

import (
	"encoding/json"
	"fmt"
)

// Tier is one rung of the optimization backoff ladder. Every translated
// block carries a tier; a quarantined block is retranslated one tier down,
// trading performance for a smaller trusted computing base at each step,
// until the interpreter tier executes the frontend's literal IR with no
// code generation at all.
type Tier uint8

const (
	// TierFull is the variant's full optimization pipeline.
	TierFull Tier = iota
	// TierNoFenceMerge disables fence merging — the pass that moves and
	// coalesces barriers, and therefore the most semantically delicate.
	TierNoFenceMerge
	// TierNoOpt disables every optimizer pass; the backend compiles the
	// frontend's literal IR.
	TierNoOpt
	// TierInterp abandons code generation: the block becomes a stub that
	// the runtime executes through the TCG interpreter.
	TierInterp

	// NumTiers is the ladder length.
	NumTiers = 4
)

var tierNames = [NumTiers]string{"full", "no-fence-merge", "no-opt", "interp"}

func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier?%d", int(t))
}

// ParseTier inverts String.
func ParseTier(s string) (Tier, error) {
	for i, n := range tierNames {
		if n == s {
			return Tier(i), nil
		}
	}
	return 0, fmt.Errorf("selfheal: unknown tier %q", s)
}

// Next returns the rung below t; ok is false at the bottom of the ladder
// (the interpreter tier has nothing to demote to).
func (t Tier) Next() (Tier, bool) {
	if t+1 >= NumTiers {
		return t, false
	}
	return t + 1, true
}

// OptLevel maps the tier to the optimizer backoff level consumed by
// tcg.OptConfig.Degrade. TierInterp also reports full backoff: the
// interpreter runs the frontend's literal IR.
func (t Tier) OptLevel() int {
	switch t {
	case TierFull:
		return 0
	case TierNoFenceMerge:
		return 1
	default:
		return 2
	}
}

// MarshalJSON encodes the tier as its name, keeping bundles readable.
func (t Tier) MarshalJSON() ([]byte, error) {
	if int(t) >= NumTiers {
		return nil, fmt.Errorf("selfheal: cannot encode invalid tier %d", int(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a tier name.
func (t *Tier) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseTier(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}
