package selfheal

import (
	"bytes"
	"testing"
)

// FuzzBundleDecode throws arbitrary bytes at the bundle parser. The
// invariant under fuzzing: DecodeBundle either rejects the input or
// returns a bundle that (a) passes Validate — Decode must never hand back
// an invalid document — and (b) re-encodes to a fixed point: decoding the
// re-encoding yields byte-identical output, the property the -replay
// byte-comparison in check.sh depends on.
func FuzzBundleDecode(f *testing.F) {
	// Seed with a realistic valid bundle and a few near-misses.
	if data, err := testBundle().Encode(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"tool":"risotto"}`))
	f.Add([]byte(`{"version":1,"tool":"t","variant":"risotto","image":"AQI=","mem_size":1,` +
		`"quantum":1,"trap":{"kind":"decode","cpu":0,"pc":16},` +
		`"cpus":[{"id":0,"regs":[0],"pc":0,"cycles":0,"insts":0}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			return
		}
		if verr := b.Validate(); verr != nil {
			t.Fatalf("DecodeBundle returned an invalid bundle: %v", verr)
		}
		enc1, err := b.Encode()
		if err != nil {
			t.Fatalf("decoded bundle does not re-encode: %v", err)
		}
		b2, err := DecodeBundle(enc1)
		if err != nil {
			t.Fatalf("re-encoding does not decode: %v\n%s", err, enc1)
		}
		enc2, err := b2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\n----\n%s", enc1, enc2)
		}
	})
}
