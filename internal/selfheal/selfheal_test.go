package selfheal

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// TestTierLadder pins the ladder's order, names and optimizer mapping: a
// renamed or reordered tier changes bundle documents and demotion policy.
func TestTierLadder(t *testing.T) {
	want := []struct {
		tier Tier
		name string
		opt  int
	}{
		{TierFull, "full", 0},
		{TierNoFenceMerge, "no-fence-merge", 1},
		{TierNoOpt, "no-opt", 2},
		{TierInterp, "interp", 2},
	}
	if len(want) != NumTiers {
		t.Fatalf("ladder has %d rungs, test covers %d", NumTiers, len(want))
	}
	for _, w := range want {
		if got := w.tier.String(); got != w.name {
			t.Errorf("%d.String() = %q, want %q", w.tier, got, w.name)
		}
		if got := w.tier.OptLevel(); got != w.opt {
			t.Errorf("%s.OptLevel() = %d, want %d", w.name, got, w.opt)
		}
		parsed, err := ParseTier(w.name)
		if err != nil || parsed != w.tier {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", w.name, parsed, err, w.tier)
		}
	}
	// Next walks the full ladder then stops at the bottom.
	tier := TierFull
	for i := 0; i < NumTiers-1; i++ {
		next, ok := tier.Next()
		if !ok || next != tier+1 {
			t.Fatalf("%s.Next() = %v, %v; want %v, true", tier, next, ok, tier+1)
		}
		tier = next
	}
	if _, ok := TierInterp.Next(); ok {
		t.Error("interp tier demotes further; the ladder must end there")
	}
	if _, err := ParseTier("turbo"); err == nil {
		t.Error("ParseTier accepted an unknown tier name")
	}
}

// TestTierJSON checks tiers encode as their names and reject junk, so
// bundles stay readable and version-stable.
func TestTierJSON(t *testing.T) {
	for tier := Tier(0); tier < NumTiers; tier++ {
		data, err := json.Marshal(tier)
		if err != nil {
			t.Fatalf("marshal %v: %v", tier, err)
		}
		if string(data) != `"`+tier.String()+`"` {
			t.Errorf("marshal %v = %s, want name string", tier, data)
		}
		var back Tier
		if err := json.Unmarshal(data, &back); err != nil || back != tier {
			t.Errorf("round-trip %v = %v, %v", tier, back, err)
		}
	}
	if _, err := json.Marshal(Tier(NumTiers)); err == nil {
		t.Error("marshal of invalid tier succeeded")
	}
	var tier Tier
	if err := json.Unmarshal([]byte(`"warp"`), &tier); err == nil {
		t.Error("unmarshal of unknown tier name succeeded")
	}
	if err := json.Unmarshal([]byte(`7`), &tier); err == nil {
		t.Error("unmarshal of numeric tier succeeded")
	}
}

// TestQuarantineStateDemotes walks one block down the whole ladder: each
// quarantine demotes exactly one rung, only the first sets First, and the
// bottom rung reports Demoted=false while still recording the event.
func TestQuarantineStateDemotes(t *testing.T) {
	s := NewState()
	const pc = 0x10040
	if got := s.TierOf(pc); got != TierFull {
		t.Fatalf("fresh block tier = %v, want full", got)
	}
	for i := 0; i < NumTiers-1; i++ {
		d := s.Quarantine(pc, "trap")
		if !d.Demoted || d.From != Tier(i) || d.To != Tier(i+1) {
			t.Fatalf("quarantine %d: %+v, want %v->%v demoted", i, d, Tier(i), Tier(i+1))
		}
		if d.First != (i == 0) {
			t.Errorf("quarantine %d: First = %v", i, d.First)
		}
		if got := s.TierOf(pc); got != Tier(i+1) {
			t.Errorf("after quarantine %d: tier = %v, want %v", i, got, Tier(i+1))
		}
	}
	d := s.Quarantine(pc, "still broken")
	if d.Demoted || d.From != TierInterp || d.To != TierInterp {
		t.Errorf("bottom-rung quarantine = %+v, want undemoted interp->interp", d)
	}
	hist := s.History()
	if len(hist) != NumTiers {
		t.Fatalf("history has %d events, want %d", len(hist), NumTiers)
	}
	for i, e := range hist {
		if e.Seq != i+1 || e.GuestPC != pc {
			t.Errorf("event %d = %+v, want seq %d pc %#x", i, e, i+1, pc)
		}
	}
	if s.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", s.Quarantined())
	}
}

// TestQuarantineStateNilSafe pins the nil-receiver contract the runtime
// relies on when self-healing is off.
func TestQuarantineStateNilSafe(t *testing.T) {
	var s *State
	if got := s.TierOf(0x1000); got != TierFull {
		t.Errorf("nil TierOf = %v, want full", got)
	}
	if h := s.History(); h != nil {
		t.Errorf("nil History = %v, want nil", h)
	}
	if n := s.Quarantined(); n != 0 {
		t.Errorf("nil Quarantined = %d, want 0", n)
	}
}

// TestQuarantineHistoryBounded checks the event list truncates at
// maxHistory while the tier map keeps every block.
func TestQuarantineHistoryBounded(t *testing.T) {
	s := NewState()
	n := maxHistory + 17
	for i := 0; i < n; i++ {
		s.Quarantine(uint64(0x1000+i*4), "flood")
	}
	hist := s.History()
	if len(hist) != maxHistory {
		t.Fatalf("history has %d events, want cap %d", len(hist), maxHistory)
	}
	if hist[len(hist)-1].Seq != n {
		t.Errorf("newest event seq = %d, want %d", hist[len(hist)-1].Seq, n)
	}
	if hist[0].Seq != n-maxHistory+1 {
		t.Errorf("oldest kept seq = %d, want %d", hist[0].Seq, n-maxHistory+1)
	}
	if s.Quarantined() != n {
		t.Errorf("Quarantined() = %d, want %d (tier map is never truncated)", s.Quarantined(), n)
	}
}

// testBundle builds a minimal bundle that passes Validate.
func testBundle() *Bundle {
	return &Bundle{
		Version: BundleVersion,
		Tool:    "risotto",
		Variant: "risotto",
		Image:   []byte{1, 2, 3, 4},
		MemSize: 1 << 20,
		Quantum: 64,
		Trap:    TrapInfo{Kind: "decode", CPU: 0, PC: 0x10040, GuestPC: true, Injected: true},
		CPUs: []CPUState{
			{ID: 0, Regs: make([]uint64, 31), PC: 0x40_0080, Cycles: 99, Insts: 42},
			{ID: 1, Regs: make([]uint64, 31), Halted: true},
		},
		Quarantine: []Event{
			{Seq: 1, GuestPC: 0x10040, From: TierFull, To: TierNoFenceMerge, Reason: "trap[decode]"},
		},
		Spans: []SpanRecord{
			{Seq: 3, Phase: "frontend.decode", CPU: 0, GuestPC: 0x10040},
			{Seq: 5, Phase: "backend.emit", CPU: 0, GuestPC: 0x10040, HostPC: 0x40_0000},
		},
		Metrics: map[string]uint64{"core.blocks": 7, "selfheal.quarantines": 1},
	}
}

// TestBundleRoundTrip checks Encode/DecodeBundle is the identity and the
// encoding itself is deterministic byte-for-byte.
func TestBundleRoundTrip(t *testing.T) {
	b := testBundle()
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("two encodings of the same bundle differ")
	}
	back, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, back) {
		t.Errorf("round-trip changed the bundle:\n%+v\n%+v", b, back)
	}
	re, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Error("re-encoding a decoded bundle changed the bytes")
	}
}

// TestBundleValidateRejects walks the schema: each mutation must trip
// Validate with an error mentioning the broken field.
func TestBundleValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Bundle)
		mention string
	}{
		{"version", func(b *Bundle) { b.Version = 99 }, "version"},
		{"tool", func(b *Bundle) { b.Tool = "" }, "tool"},
		{"image", func(b *Bundle) { b.Image = nil }, "image"},
		{"memsize", func(b *Bundle) { b.MemSize = 0 }, "mem_size"},
		{"trap-kind", func(b *Bundle) { b.Trap.Kind = "gremlins" }, "trap kind"},
		{"no-cpus", func(b *Bundle) { b.CPUs = nil }, "CPU"},
		{"cpu-ids", func(b *Bundle) { b.CPUs[1].ID = 7 }, "id"},
		{"cpu-regs", func(b *Bundle) { b.CPUs[0].Regs = nil }, "registers"},
		{"quarantine-seq", func(b *Bundle) { b.Quarantine[0].Seq = 0 }, "seq"},
		{"quarantine-tier", func(b *Bundle) { b.Quarantine[0].To = Tier(9) }, "tier"},
		{"span-phase", func(b *Bundle) { b.Spans[0].Phase = "" }, "phase"},
		{"span-seq", func(b *Bundle) { b.Spans[1].Seq = b.Spans[0].Seq }, "seq"},
		{"metric-name", func(b *Bundle) { b.Metrics["Bad Name"] = 1 }, "metric"},
		{"fault-space", func(b *Bundle) { b.Fault = " decode@2" }, "fault"},
	}
	for _, tc := range cases {
		b := testBundle()
		tc.mutate(b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: mutation passed validation", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.mention)
		}
	}
	if err := testBundle().Validate(); err != nil {
		t.Fatalf("baseline bundle invalid: %v", err)
	}
}

// TestTrapInfoOfAndMatches checks serialization folds the wrapped error
// into Msg and Matches keys on kind+PC+space+CPU only.
func TestTrapInfoOfAndMatches(t *testing.T) {
	tr := faults.New(faults.TrapDecode, "bad opcode").WithCPU(1).WithGuestPC(0x10040)
	ti := TrapInfoOf(tr)
	if ti.Kind != "decode" || ti.CPU != 1 || ti.PC != 0x10040 || !ti.GuestPC {
		t.Fatalf("TrapInfoOf = %+v", ti)
	}
	if !ti.Matches(tr) {
		t.Error("trap does not match its own serialization")
	}
	other := faults.New(faults.TrapDecode, "bad opcode").WithCPU(1).WithGuestPC(0x10044)
	if ti.Matches(other) {
		t.Error("Matches ignored a different PC")
	}
	hostPC := faults.New(faults.TrapDecode, "bad opcode").WithCPU(1).WithHostPC(0x10040)
	if ti.Matches(hostPC) {
		t.Error("Matches ignored the guest/host address-space bit")
	}
	if ti.Matches(nil) {
		t.Error("Matches accepted a nil trap")
	}
}

// TestNormalizeSpans checks the newest-N selection and that no timing
// leaks into the records.
func TestNormalizeSpans(t *testing.T) {
	spans := []obs.Span{
		{Seq: 1, Phase: "a", CPU: -1, StartNS: 100},
		{Seq: 2, Phase: "b", CPU: 0, StartNS: 200, GuestPC: 0x10},
		{Seq: 3, Phase: "c", CPU: 1, StartNS: 300, HostPC: 0x40},
	}
	out := NormalizeSpans(spans, 2)
	if len(out) != 2 || out[0].Seq != 2 || out[1].Seq != 3 {
		t.Fatalf("NormalizeSpans kept %+v, want newest two", out)
	}
	if out[1].Phase != "c" || out[1].CPU != 1 || out[1].HostPC != 0x40 {
		t.Errorf("record fields lost: %+v", out[1])
	}
	if got := NormalizeSpans(spans, 0); len(got) != 3 {
		t.Errorf("max=0 kept %d spans, want all", len(got))
	}
}

// TestDivergenceSummary pins the one-line report format quarantine reasons
// embed.
func TestDivergenceSummary(t *testing.T) {
	d := &Divergence{GuestPC: 0x10040, Tier: TierNoOpt, Kind: "register", Detail: "global 3: host 0x1, interp 0x2"}
	s := d.Summary()
	for _, want := range []string{"0x10040", "no-opt", "register", "global 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
