package selfheal

// Event is one quarantine decision: block GuestPC was demoted From → To
// because of Reason. The history is bounded (maxHistory) and ordered by
// Seq, and is embedded verbatim in crash bundles.
type Event struct {
	// Seq is the 1-based decision sequence number.
	Seq int `json:"seq"`
	// GuestPC identifies the quarantined block.
	GuestPC uint64 `json:"guest_pc"`
	// From and To are the tiers before and after the demotion.
	From Tier `json:"from"`
	To   Tier `json:"to"`
	// Reason is the trap or divergence report that triggered it.
	Reason string `json:"reason"`
}

// Demotion is the outcome of one State.Quarantine call.
type Demotion struct {
	// From and To are the block's tiers before and after.
	From, To Tier
	// First reports whether this is the block's first quarantine.
	First bool
	// Demoted is false when the block was already at the bottom tier —
	// the quarantine could not degrade it further and recovery must fail
	// upward.
	Demoted bool
}

// maxHistory bounds the recorded event list; older events are dropped
// (the tier map itself is never truncated).
const maxHistory = 256

// State is the quarantine registry: which blocks run at which demoted
// tier, and why. It is not safe for concurrent use; the runtime touches it
// only from its single execution loop.
type State struct {
	tiers   map[uint64]Tier
	history []Event
	seq     int
}

// NewState returns an empty registry (every block at TierFull).
func NewState() *State {
	return &State{tiers: make(map[uint64]Tier)}
}

// TierOf returns the tier block pc must be translated at.
func (s *State) TierOf(pc uint64) Tier {
	if s == nil {
		return TierFull
	}
	return s.tiers[pc]
}

// SetTier forces pc's tier — used to seed replay runs from a bundle's
// quarantine history and by tests that pin a block to a rung.
func (s *State) SetTier(pc uint64, t Tier) {
	s.tiers[pc] = t
}

// Quarantine records that pc's current tier failed (reason) and demotes it
// one rung. When the block is already at TierInterp the failure is still
// recorded, but Demoted is false: the ladder is exhausted.
func (s *State) Quarantine(pc uint64, reason string) Demotion {
	from := s.tiers[pc]
	d := Demotion{From: from, To: from, First: false}
	if _, seen := s.tiers[pc]; !seen {
		d.First = true
	}
	to, ok := from.Next()
	if ok {
		d.To, d.Demoted = to, true
		s.tiers[pc] = to
	} else {
		// Exhausted: keep the entry (First stays accurate on repeats).
		s.tiers[pc] = from
	}
	s.seq++
	s.history = append(s.history, Event{
		Seq: s.seq, GuestPC: pc, From: from, To: d.To, Reason: reason,
	})
	if len(s.history) > maxHistory {
		s.history = s.history[len(s.history)-maxHistory:]
	}
	return d
}

// History returns a copy of the recorded quarantine events, oldest first.
func (s *State) History() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.history...)
}

// Quarantined returns the number of distinct quarantined blocks.
func (s *State) Quarantined() int {
	if s == nil {
		return 0
	}
	return len(s.tiers)
}
