package selfheal

// Event is one quarantine decision: block GuestPC was demoted From → To
// because of Reason. The history is bounded (maxHistory) and ordered by
// Seq, and is embedded verbatim in crash bundles.
type Event struct {
	// Seq is the 1-based decision sequence number.
	Seq int `json:"seq"`
	// GuestPC identifies the quarantined block.
	GuestPC uint64 `json:"guest_pc"`
	// From and To are the tiers before and after the demotion.
	From Tier `json:"from"`
	To   Tier `json:"to"`
	// Reason is the trap or divergence report that triggered it.
	Reason string `json:"reason"`
}

// Demotion is the outcome of one State.Quarantine call.
type Demotion struct {
	// From and To are the block's tiers before and after.
	From, To Tier
	// First reports whether this is the block's first quarantine — its
	// first recorded failure, regardless of any earlier promotion pin.
	First bool
	// Demoted is false when the block was already at the bottom tier —
	// the quarantine could not degrade it further and recovery must fail
	// upward.
	Demoted bool
}

// maxHistory bounds the recorded event list; older events are dropped
// (the tier map itself is never truncated).
const maxHistory = 256

// PromotionFailureLimit is the promotion blacklist threshold: a block
// quarantined this many times is never promoted again — the up direction
// of the ladder stops retrying code the down direction keeps rejecting.
const PromotionFailureLimit = 2

// State is the quarantine registry: which blocks run at which pinned
// (demoted or promoted) tier, and why. It is not safe for concurrent use;
// the runtime touches it only from its single execution loop.
type State struct {
	tiers   map[uint64]Tier
	history []Event
	seq     int
	// failures counts quarantines per block — the promotion blacklist
	// input (PromotionAllowed).
	failures map[uint64]int
}

// NewState returns an empty registry (every block at TierFull).
func NewState() *State {
	return &State{tiers: make(map[uint64]Tier), failures: make(map[uint64]int)}
}

// TierOf returns the tier block pc must be translated at.
func (s *State) TierOf(pc uint64) Tier {
	if s == nil {
		return TierFull
	}
	return s.tiers[pc]
}

// Lookup reports pc's explicitly pinned tier, distinguishing "pinned at
// TierFull" from "never touched" (which TierOf cannot). Tier-up runtimes
// need the distinction: an unpinned block starts at the cheap tier, a
// pinned one runs exactly where the ladder put it.
func (s *State) Lookup(pc uint64) (Tier, bool) {
	if s == nil {
		return TierFull, false
	}
	t, ok := s.tiers[pc]
	return t, ok
}

// SetTier forces pc's tier — used to seed replay runs from a bundle's
// quarantine history and by tests that pin a block to a rung.
func (s *State) SetTier(pc uint64, t Tier) {
	s.tiers[pc] = t
}

// Quarantine records that pc's current tier failed (reason) and demotes it
// one rung. When the block is already at TierInterp the failure is still
// recorded, but Demoted is false: the ladder is exhausted.
func (s *State) Quarantine(pc uint64, reason string) Demotion {
	return s.QuarantineAt(pc, s.tiers[pc], reason)
}

// QuarantineAt is Quarantine with the block's actual current tier supplied
// by the caller. A tier-up runtime executes unpinned blocks below TierFull
// (the cheap start tier) and promoted blocks above their pinned rung, so
// the registry's own map may not reflect what was really running when the
// trap hit; the runtime passes the installed translation's tier.
func (s *State) QuarantineAt(pc uint64, cur Tier, reason string) Demotion {
	// First derives from the failure count, not tiers-map presence:
	// Promote also pins entries in tiers, and the first real failure of a
	// previously promoted block must still count as a first quarantine
	// (the distinct-blocks metric would otherwise undercount under
	// tier-up).
	d := Demotion{From: cur, To: cur, First: s.failures[pc] == 0}
	to, ok := cur.Next()
	if ok {
		d.To, d.Demoted = to, true
		s.tiers[pc] = to
	} else {
		// Exhausted: keep the entry pinned at the bottom rung.
		s.tiers[pc] = cur
	}
	s.failures[pc]++
	s.record(Event{GuestPC: pc, From: cur, To: d.To, Reason: reason})
	return d
}

// Promote pins pc at the richer tier `to` and records the up-direction
// event (From > To numerically: the ladder climbed). The runtime calls it
// when a background promotion is installed; a later trap in the promoted
// code demotes back through QuarantineAt.
func (s *State) Promote(pc uint64, from, to Tier, reason string) {
	s.tiers[pc] = to
	s.record(Event{GuestPC: pc, From: from, To: to, Reason: reason})
}

// PromotionAllowed reports whether pc may still be promoted: blocks
// quarantined PromotionFailureLimit times are blacklisted.
func (s *State) PromotionAllowed(pc uint64) bool {
	if s == nil {
		return false
	}
	return s.failures[pc] < PromotionFailureLimit
}

// Failures returns how many times pc has been quarantined.
func (s *State) Failures(pc uint64) int {
	if s == nil {
		return 0
	}
	return s.failures[pc]
}

// record appends a history event, stamping its sequence number.
func (s *State) record(e Event) {
	s.seq++
	e.Seq = s.seq
	s.history = append(s.history, e)
	if len(s.history) > maxHistory {
		s.history = s.history[len(s.history)-maxHistory:]
	}
}

// History returns a copy of the recorded quarantine events, oldest first.
func (s *State) History() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.history...)
}

// Quarantined returns the number of distinct quarantined blocks.
// Promotion pins (Promote) do not count; only blocks that actually failed
// do.
func (s *State) Quarantined() int {
	if s == nil {
		return 0
	}
	return len(s.failures)
}
