package selfheal

import "testing"

// The promotion half of the ladder: Lookup distinguishes pinned from
// untouched, Promote pins a richer tier, QuarantineAt demotes from the
// caller-supplied rung, and repeated failures blacklist the block.

func TestLookupDistinguishesPinnedFromUntouched(t *testing.T) {
	s := NewState()
	if _, pinned := s.Lookup(0x10); pinned {
		t.Fatal("untouched block reported as pinned")
	}
	s.Promote(0x10, TierNoOpt, TierFull, "hot")
	tier, pinned := s.Lookup(0x10)
	if !pinned || tier != TierFull {
		t.Fatalf("after Promote: (%v, %v), want (TierFull, true)", tier, pinned)
	}
	// TierOf cannot make the distinction — both read TierFull.
	if s.TierOf(0x10) != TierFull || s.TierOf(0x99) != TierFull {
		t.Fatal("TierOf changed semantics")
	}
	var nilState *State
	if tier, pinned := nilState.Lookup(0x10); pinned || tier != TierFull {
		t.Fatal("nil state Lookup must report unpinned TierFull")
	}
}

func TestQuarantineAtUsesSuppliedTier(t *testing.T) {
	s := NewState()
	// A tier-up runtime runs unpinned blocks at TierNoOpt; the registry
	// map says TierFull. The demotion must start from what actually ran.
	d := s.QuarantineAt(0x20, TierNoOpt, "trap in cheap copy")
	if d.From != TierNoOpt || d.To != TierInterp || !d.Demoted || !d.First {
		t.Fatalf("demotion %+v, want NoOpt→Interp first", d)
	}
	if got := s.TierOf(0x20); got != TierInterp {
		t.Fatalf("pinned tier %v, want TierInterp", got)
	}
}

func TestPromoteThenQuarantineRoundTrip(t *testing.T) {
	s := NewState()
	s.Promote(0x30, TierNoOpt, TierFull, "hot block promoted")
	// The promoted copy traps: demote from TierFull, the rung it ran at.
	d := s.QuarantineAt(0x30, TierFull, "miscompile in superblock")
	if d.From != TierFull || d.To != TierNoFenceMerge {
		t.Fatalf("demotion %+v, want Full→NoFenceMerge", d)
	}
	if !d.First {
		t.Fatal("first real failure of a promoted block must count as a first quarantine")
	}
	ev := s.History()
	if len(ev) != 2 {
		t.Fatalf("history %d events, want promote + quarantine", len(ev))
	}
	if ev[0].From != TierNoOpt || ev[0].To != TierFull {
		t.Fatalf("promote event %+v", ev[0])
	}
	if ev[1].Seq != ev[0].Seq+1 {
		t.Fatal("events not sequenced")
	}
}

func TestPromotionBlacklist(t *testing.T) {
	s := NewState()
	if !s.PromotionAllowed(0x40) {
		t.Fatal("fresh block must be promotable")
	}
	for i := 0; i < PromotionFailureLimit; i++ {
		if s.Failures(0x40) != i {
			t.Fatalf("failures = %d, want %d", s.Failures(0x40), i)
		}
		s.QuarantineAt(0x40, TierFull, "repeated trap")
	}
	if s.PromotionAllowed(0x40) {
		t.Fatalf("block with %d failures must be blacklisted", PromotionFailureLimit)
	}
	// Promote pins do not count as failures and never blacklist.
	s.Promote(0x41, TierNoOpt, TierFull, "hot")
	if !s.PromotionAllowed(0x41) || s.Failures(0x41) != 0 {
		t.Fatal("Promote must not feed the blacklist")
	}
	var nilState *State
	if nilState.PromotionAllowed(0x40) {
		t.Fatal("nil state must never allow promotion")
	}
	if nilState.Failures(0x40) != 0 {
		t.Fatal("nil state failures must read 0")
	}
}

func TestQuarantinedCountsFailuresNotPins(t *testing.T) {
	s := NewState()
	s.Promote(0x50, TierNoOpt, TierFull, "hot")
	s.Promote(0x51, TierNoOpt, TierFull, "hot")
	if s.Quarantined() != 0 {
		t.Fatalf("Quarantined = %d after pure promotions, want 0", s.Quarantined())
	}
	s.QuarantineAt(0x50, TierFull, "trap")
	s.QuarantineAt(0x50, TierNoFenceMerge, "trap again")
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1 distinct block", s.Quarantined())
	}
}
