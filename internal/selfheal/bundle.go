// Crash-triage bundles: when a trap survives every recovery attempt, the
// runtime serializes everything needed to re-execute the run
// deterministically — config, guest image, fault spec and seed, quarantine
// history, the faulting block's disassembly, CPU state, recent trace spans
// and the counter snapshot — as one JSON document. `risotto -replay
// bundle.json` rebuilds the run from it and must reproduce the identical
// trap; the encoding is deterministic (sorted keys, no wall-clock fields),
// so replaying a bundle and re-bundling yields byte-identical output.

package selfheal

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"repro/internal/faults"
	"repro/internal/obs"
)

// BundleVersion is the current bundle format version.
const BundleVersion = 1

// TrapInfo is the serialized form of a faults.Trap.
type TrapInfo struct {
	Kind     string `json:"kind"`
	CPU      int    `json:"cpu"`
	PC       uint64 `json:"pc"`
	GuestPC  bool   `json:"guest_pc"`
	Addr     uint64 `json:"addr,omitempty"`
	Steps    uint64 `json:"steps,omitempty"`
	Injected bool   `json:"injected,omitempty"`
	Msg      string `json:"msg,omitempty"`
}

// TrapInfoOf serializes t.
func TrapInfoOf(t *faults.Trap) TrapInfo {
	ti := TrapInfo{
		Kind:     t.Kind.String(),
		CPU:      t.CPU,
		PC:       t.PC,
		GuestPC:  t.GuestPC,
		Addr:     t.Addr,
		Steps:    t.Steps,
		Injected: t.Injected,
		Msg:      t.Msg,
	}
	if t.Err != nil {
		if ti.Msg != "" {
			ti.Msg += ": "
		}
		ti.Msg += t.Err.Error()
	}
	return ti
}

// Matches reports whether t reproduces the bundled trap: same kind, same
// faulting PC in the same address space, same CPU.
func (ti TrapInfo) Matches(t *faults.Trap) bool {
	return t != nil &&
		ti.Kind == t.Kind.String() &&
		ti.PC == t.PC && ti.GuestPC == t.GuestPC &&
		ti.CPU == t.CPU
}

// CPUState is one vCPU's architectural state at trap time.
type CPUState struct {
	ID       int      `json:"id"`
	Regs     []uint64 `json:"regs"`
	PC       uint64   `json:"pc"`
	N        bool     `json:"n,omitempty"`
	Z        bool     `json:"z,omitempty"`
	C        bool     `json:"c,omitempty"`
	V        bool     `json:"v,omitempty"`
	Cycles   uint64   `json:"cycles"`
	Insts    uint64   `json:"insts"`
	Halted   bool     `json:"halted,omitempty"`
	ExitCode uint64   `json:"exit_code,omitempty"`
}

// SpanRecord is a timing-normalized obs span: wall-clock fields are
// dropped so two runs of the same deterministic guest bundle identically.
type SpanRecord struct {
	Seq     uint64 `json:"seq"`
	Phase   string `json:"phase"`
	Detail  string `json:"detail,omitempty"`
	CPU     int    `json:"cpu"`
	GuestPC uint64 `json:"guest_pc,omitempty"`
	HostPC  uint64 `json:"host_pc,omitempty"`
}

// NormalizeSpans converts the newest max spans (oldest-first order is
// preserved) into timing-free records.
func NormalizeSpans(spans []obs.Span, max int) []SpanRecord {
	if max > 0 && len(spans) > max {
		spans = spans[len(spans)-max:]
	}
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		out[i] = SpanRecord{
			Seq: s.Seq, Phase: s.Phase, Detail: s.Detail,
			CPU: s.CPU, GuestPC: s.GuestPC, HostPC: s.HostPC,
		}
	}
	return out
}

// Bundle is the crash-triage document. Every field is either part of the
// run's deterministic configuration (enough for ReplayConfig to rebuild
// it) or post-mortem evidence (trap, CPU state, history, disassembly,
// spans, counters).
type Bundle struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`

	// --- replay configuration ---
	Variant       string `json:"variant"`
	Kernel        string `json:"kernel,omitempty"`
	Image         []byte `json:"image"`
	MemSize       int    `json:"mem_size"`
	CodeCacheBase uint64 `json:"code_cache_base"`
	StackSize     uint64 `json:"stack_size"`
	Quantum       int    `json:"quantum"`
	MaxSteps      uint64 `json:"max_steps"`
	StepBudget    uint64 `json:"step_budget,omitempty"`
	DeadlineNS    int64  `json:"deadline_ns,omitempty"`
	Chain         bool   `json:"chain,omitempty"`
	SelfHeal      bool   `json:"self_heal,omitempty"`
	SelfCheck     bool   `json:"self_check,omitempty"`
	MaxHeals      int    `json:"max_heals,omitempty"`
	Fault         string `json:"fault,omitempty"`
	FaultSeed     int64  `json:"fault_seed,omitempty"`
	WeakSeed      *int64 `json:"weak_seed,omitempty"`
	IDL           string `json:"idl,omitempty"`

	// --- post-mortem evidence ---
	Trap       TrapInfo          `json:"trap"`
	CPUs       []CPUState        `json:"cpus"`
	Quarantine []Event           `json:"quarantine,omitempty"`
	Disasm     string            `json:"disasm,omitempty"`
	Spans      []SpanRecord      `json:"spans,omitempty"`
	Metrics    map[string]uint64 `json:"metrics,omitempty"`
}

// Encode serializes the bundle deterministically: json.Marshal sorts map
// keys and struct fields keep declaration order, and no field carries
// wall-clock or host-environment data.
func (b *Bundle) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("selfheal: encoding bundle: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeBundle parses and validates a bundle document.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("selfheal: decoding bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// metricNameRE is the obsvalidate vocabulary: dot-separated lower-case
// segments of letters, digits and underscores.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// Validate performs the schema check obsvalidate applies to snapshots,
// extended to the bundle's own invariants. It reports the first problem.
func (b *Bundle) Validate() error {
	if b.Version != BundleVersion {
		return fmt.Errorf("selfheal: bundle version %d, want %d", b.Version, BundleVersion)
	}
	if b.Tool == "" {
		return fmt.Errorf("selfheal: bundle has no tool")
	}
	if len(b.Image) == 0 {
		return fmt.Errorf("selfheal: bundle has no guest image")
	}
	if b.MemSize <= 0 {
		return fmt.Errorf("selfheal: bundle mem_size %d invalid", b.MemSize)
	}
	kindOK := false
	for _, k := range faults.KindNames() {
		if b.Trap.Kind == k {
			kindOK = true
			break
		}
	}
	if !kindOK {
		return fmt.Errorf("selfheal: bundle trap kind %q unknown", b.Trap.Kind)
	}
	if len(b.CPUs) == 0 {
		return fmt.Errorf("selfheal: bundle has no CPU state")
	}
	for i, c := range b.CPUs {
		if c.ID != i {
			return fmt.Errorf("selfheal: cpu state %d has id %d", i, c.ID)
		}
		if len(c.Regs) == 0 {
			return fmt.Errorf("selfheal: cpu %d has no registers", i)
		}
	}
	for i, e := range b.Quarantine {
		if e.Seq <= 0 {
			return fmt.Errorf("selfheal: quarantine event %d has seq %d", i, e.Seq)
		}
		if int(e.From) >= NumTiers || int(e.To) >= NumTiers {
			return fmt.Errorf("selfheal: quarantine event %d has invalid tier", i)
		}
	}
	var prevSeq uint64
	for i, s := range b.Spans {
		if s.Phase == "" {
			return fmt.Errorf("selfheal: span %d has no phase", i)
		}
		if s.Seq <= prevSeq {
			return fmt.Errorf("selfheal: span %d seq %d not increasing", i, s.Seq)
		}
		prevSeq = s.Seq
	}
	for name := range b.Metrics {
		if !metricNameRE.MatchString(name) {
			return fmt.Errorf("selfheal: metric name %q malformed", name)
		}
	}
	if strings.TrimSpace(b.Fault) != b.Fault {
		return fmt.Errorf("selfheal: fault spec %q has surrounding space", b.Fault)
	}
	return nil
}

// Divergence is a structured selfcheck mismatch report: the effects of a
// freshly emitted block disagreed with the TCG interpreter's on the same
// snapshot.
type Divergence struct {
	// GuestPC identifies the diverging block; Tier is the tier whose
	// emitted code diverged.
	GuestPC uint64
	Tier    Tier
	// Kind is "trap", "exit", "register" or "memory".
	Kind string
	// Detail pinpoints the first disagreement.
	Detail string
}

// Summary renders the divergence as one line.
func (d *Divergence) Summary() string {
	return fmt.Sprintf("selfcheck divergence at %#x (tier %s): %s: %s",
		d.GuestPC, d.Tier, d.Kind, d.Detail)
}
