package sparctso

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/litmus"
)

// TestLitmusFiles runs every testdata/*.lit file's expectations against
// the SPARC-TSO model — end-to-end coverage of the `model sparc`
// directive and the membar fence tokens through the text format.
func TestLitmusFiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.lit")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .lit files found")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := litmus.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if pt.Model != "sparc" {
				t.Fatalf("model directive = %q, want sparc", pt.Model)
			}
			if len(pt.Expectations) == 0 {
				t.Fatal("file declares no expectations")
			}
			for _, failure := range litmus.CheckExpectations(pt, New()) {
				t.Error(failure)
			}
		})
	}
}
