package sparctso

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// checker is the per-skeleton SPARC-TSO consistency predicate. Implied,
// membar and ppo depend only on po, the fence placement and the rmw
// pairing — all fixed per skeleton — so their union is computed once; each
// candidate unions in rfe, fr and co and runs the acyclicity DFS.
type checker struct {
	p *memmodel.Prep
	// base = implied ∪ membar ∪ ppo, the candidate-invariant part of GHB.
	base *rel.Relation
}

// Prepare implements memmodel.PreparedModel.
func (Model) Prepare(sk *memmodel.Skeleton) memmodel.Checker {
	x0 := sk.Exec0()
	return &checker{
		p:    memmodel.NewPrep(sk),
		base: rel.Union(Implied(x0), Membar(x0), Ppo(x0)),
	}
}

// Consistent implements memmodel.Checker.
func (c *checker) Consistent(x *memmodel.Execution) bool {
	d := c.p.Derive(x)
	if !c.p.SCPerLoc(x, d) || !c.p.Atomicity(d) {
		return false
	}
	s := c.p.Scratch()
	s.CopyFrom(c.base)
	s.UnionWith(d.Rfe)
	s.UnionWith(d.Fr)
	s.UnionWith(x.Co)
	return c.p.Arena.Acyclic(s)
}

// Release implements memmodel.ReleasableChecker.
func (c *checker) Release() { c.p.Release() }
