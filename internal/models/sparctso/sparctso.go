// Package sparctso implements the SPARC-TSO axiomatic concurrency model
// (the formalisation line of Hou et al.; axiomatically the Owens-style TSO
// of x86 with SPARC's membar fence taxonomy in place of MFENCE).
//
// Consistency of an execution X requires:
//
//	(sc-per-loc)  (po|loc ∪ rf ∪ co ∪ fr)+ irreflexive
//	(atomicity)   rmw ∩ (fre ; coe) = ∅
//	(GHB)         (implied ∪ membar ∪ ppo ∪ rfe ∪ fr ∪ co)+ irreflexive
//
// where
//
//	ppo     ≜ ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po                — same as x86-TSO
//	membar  ≜ [R];po;[#LoadLoad];po;[R] ∪ [R];po;[#LoadStore];po;[W]
//	        ∪ [W];po;[#StoreLoad];po;[R] ∪ [W];po;[#StoreStore];po;[W]
//	implied ≜ po;[At ∪ F_sync] ∪ [At ∪ F_sync];po
//	At      ≜ dom(rmw) ∪ codom(rmw)
//
// MFENCE is interpreted as membar #Sync (all four directions at once,
// F_sync above), so x86-level programs mean the same thing under SPARC-TSO
// as under x86-TSO — both are TSO, and the differential test in this
// package pins that equivalence over the whole corpus. Under TSO only
// #StoreLoad adds ordering beyond ppo; the other three membar directions
// are provided for fidelity to the ISA and are exercised by the unit
// tests.
package sparctso

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Model is the SPARC-TSO consistency predicate.
type Model struct{}

// New returns the SPARC-TSO model.
func New() Model { return Model{} }

// Name implements memmodel.Model.
func (Model) Name() string { return "SPARC-TSO" }

// Ppo returns TSO's preserved program order: all po pairs except
// write-to-read.
func Ppo(x *memmodel.Execution) *rel.Relation {
	return x.Po.Filter(func(a, b int) bool {
		ea, eb := x.Events[a], x.Events[b]
		if ea.Kind == memmodel.KindFence || eb.Kind == memmodel.KindFence {
			return false
		}
		return !(ea.Kind == memmodel.KindWrite && eb.Kind == memmodel.KindRead)
	})
}

// membarRule is one [dom];po;[F];po;[cod] direction of the membar table.
var membarRules = []struct {
	fence    memmodel.Fence
	domReads bool // [R] if true, [W] otherwise
	codReads bool
}{
	{memmodel.FenceMembarLL, true, true},
	{memmodel.FenceMembarLS, true, false},
	{memmodel.FenceMembarSL, false, true},
	{memmodel.FenceMembarSS, false, false},
}

// Membar returns the directional orderings of the four single-direction
// membar flavours.
func Membar(x *memmodel.Execution) *rel.Relation {
	po := x.Po
	out := rel.New()
	for _, rule := range membarRules {
		f := x.IdFences(rule.fence)
		if f.IsEmpty() {
			continue
		}
		dom, cod := x.IdWrites(), x.IdWrites()
		if rule.domReads {
			dom = x.IdReads()
		}
		if rule.codReads {
			cod = x.IdReads()
		}
		out = out.Union(rel.Seq(dom, po, f, po, cod))
	}
	return out
}

// Implied returns the orderings implied by full fences and successful
// RMWs: po;[At ∪ F_sync] ∪ [At ∪ F_sync];po, where F_sync is MFENCE read
// as membar #Sync.
func Implied(x *memmodel.Execution) *rel.Relation {
	atF := make(map[int]bool)
	for _, id := range x.Rmw.Domain() {
		atF[id] = true
	}
	for _, id := range x.Rmw.Codomain() {
		atF[id] = true
	}
	for _, id := range x.Fences(memmodel.FenceMFENCE) {
		atF[id] = true
	}
	var ids []int
	for id := range atF {
		ids = append(ids, id)
	}
	idAtF := rel.Identity(ids)
	return x.Po.Seq(idAtF).Union(idAtF.Seq(x.Po))
}

// GHB returns the global-happens-before candidate relation whose
// acyclicity the (GHB) axiom demands.
func GHB(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Implied(x), Membar(x), Ppo(x), x.Rfe(), x.Fr(), x.Co)
}

// Consistent implements memmodel.Model.
func (Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() && GHB(x).Acyclic()
}
