package sparctso

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models/x86tso"
)

// TestMatchesX86TSOOverCorpus is the differential pin for the new model:
// SPARC-TSO and x86-TSO are the same consistency model under different
// fence vocabularies, and every x86-level corpus program (MFENCE read as
// membar #Sync) must yield identical outcome sets under both. Any
// divergence is a bug in this package, not a modelling choice.
func TestMatchesX86TSOOverCorpus(t *testing.T) {
	x86 := x86tso.New()
	sparc := New()
	for _, p := range litmus.X86Corpus() {
		want := litmus.Outcomes(p, x86)
		got := litmus.Outcomes(p, sparc)
		if len(want) != len(got) || !got.SubsetOf(want) {
			t.Errorf("%s: SPARC-TSO %d outcomes %v, x86-TSO %d outcomes %v",
				p.Name, len(got), got.Sorted(), len(want), want.Sorted())
		}
	}
}

// sbWith builds store buffering with the given fence flavour between each
// thread's store and load.
func sbWith(k memmodel.Fence) *litmus.Program {
	return &litmus.Program{
		Name: "SB+" + k.String(),
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: k},
				litmus.Load{Dst: "a", Loc: "Y"},
			},
			{
				litmus.Store{Loc: "Y", Val: 1},
				litmus.Fence{K: k},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
}

// TestMembarStoreLoadForbidsSB pins the one membar direction that matters
// under TSO: #StoreLoad restores W→R order and forbids SB's weak outcome.
func TestMembarStoreLoadForbidsSB(t *testing.T) {
	out := litmus.Outcomes(sbWith(memmodel.FenceMembarSL), New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("membar #StoreLoad must forbid SB a=b=0")
	}
}

// TestOtherMembarDirectionsAreTSORedundant: #LoadLoad, #LoadStore and
// #StoreStore order directions ppo already preserves, so SB's weak outcome
// (a W→R reordering) stays allowed through any of them.
func TestOtherMembarDirectionsAreTSORedundant(t *testing.T) {
	for _, k := range []memmodel.Fence{
		memmodel.FenceMembarLL, memmodel.FenceMembarLS, memmodel.FenceMembarSS,
	} {
		out := litmus.Outcomes(sbWith(k), New())
		if !out.Contains("0:a=0", "1:b=0") {
			t.Errorf("membar %s unexpectedly forbids SB a=b=0 (orders W→R?)", k)
		}
	}
}

// TestForeignFencesOrderNothing: TCG and Arm fence flavours are foreign to
// SPARC-TSO and must not restore W→R order.
func TestForeignFencesOrderNothing(t *testing.T) {
	for _, k := range []memmodel.Fence{memmodel.FenceFsc, memmodel.FenceDMBFF} {
		out := litmus.Outcomes(sbWith(k), New())
		if !out.Contains("0:a=0", "1:b=0") {
			t.Errorf("foreign fence %s ordered W→R under SPARC-TSO", k)
		}
	}
}

// TestPreparedMatchesPlain mirrors litmus/prepared_test.go for this model:
// outcome sets through the prepared checker (what Outcomes uses) must
// equal a from-scratch sweep calling Model.Consistent on every candidate.
func TestPreparedMatchesPlain(t *testing.T) {
	m := New()
	corpus := append(litmus.X86Corpus(),
		sbWith(memmodel.FenceMembarSL), sbWith(memmodel.FenceMembarSS))
	for _, p := range corpus {
		plain := make(litmus.OutcomeSet)
		litmus.EnumerateCandidates(p, func(c *litmus.Candidate) bool {
			if m.Consistent(c.X) {
				plain[litmus.OutcomeOf(c)] = true
			}
			return true
		})
		prepared := litmus.Outcomes(p, m)
		if len(plain) != len(prepared) || !prepared.SubsetOf(plain) {
			t.Errorf("%s: prepared %v, plain %v", p.Name, prepared.Sorted(), plain.Sorted())
		}
	}
}
