package tcgmm

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

func TestPlainAccessesUnordered(t *testing.T) {
	// Without fences the IR model is very weak: MP, SB and LB weak
	// outcomes are all allowed.
	if out := litmus.Outcomes(litmus.MP(), New()); !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("IR model must allow MP weak outcome without fences")
	}
	if out := litmus.Outcomes(litmus.SB(), New()); !out.Contains("0:a=0", "1:b=0") {
		t.Fatal("IR model must allow SB weak outcome without fences")
	}
	if out := litmus.Outcomes(litmus.LB(), New()); !out.Contains("0:a=1", "1:b=1") {
		t.Fatal("IR model must allow LB weak outcome without fences")
	}
}

func TestLBIRForbidden(t *testing.T) {
	// Figure 8: trailing Frw after loads forbids a=b=1.
	out := litmus.Outcomes(litmus.LBIR(), New())
	if out.Contains("0:a=1", "1:b=1") {
		t.Fatal("LB-IR must forbid a=b=1 (Frw orders ld-st)")
	}
}

func TestMPIRForbidden(t *testing.T) {
	// Figure 8: Fww before store + Frr after load forbids a=1,b=0.
	out := litmus.Outcomes(litmus.MPIR(), New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("MP-IR must forbid a=1,b=0 (Fww + Frr)")
	}
}

func TestDependenciesOrderNothing(t *testing.T) {
	// Unlike Arm, the IR model has no dependency ordering (§5.3):
	// MP stays weak even with a data dependency chain.
	p := &litmus.Program{
		Name: "MP+dep-ir",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceFww},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.StoreReg{Loc: "Z", Src: "a"}, // data dep — orders nothing in IR
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("IR model must ignore dependencies: MP weak outcome allowed")
	}
}

func TestFMRSourceForbidsTargetAllows(t *testing.T) {
	// §3.2: the RAW transformation is incorrect in the presence of Fmr.
	src := litmus.Outcomes(litmus.FMRSource(), New())
	if src.Contains("0:a=2", "1:c=3") {
		t.Fatal("FMR source must forbid a=2,c=3")
	}
	tgt := litmus.Outcomes(litmus.FMRTarget(), New())
	if !tgt.Contains("0:a=2", "1:c=3") {
		t.Fatal("FMR target (after RAW elimination) must allow a=2,c=3")
	}
	if tgt.SubsetOf(src) {
		t.Fatal("the RAW transformation under Fmr must introduce new behaviour")
	}
}

func TestRMWActsAsFullFence(t *testing.T) {
	// Figure 9 right: RMW; load vs RMW; load — a=b=0 forbidden because IR
	// RMWs follow SC semantics.
	out := litmus.Outcomes(litmus.Fig9b(), New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("Fig9b: IR model must forbid a=b=0")
	}
	// Figure 9 left: store; RMW vs store; RMW — X=Y=1 final forbidden.
	out = litmus.Outcomes(litmus.Fig9a(), New())
	if out.Contains("X=1", "Y=1") {
		t.Fatal("Fig9a: IR model must forbid final X=1,Y=1")
	}
}

func TestFscOrdersEverything(t *testing.T) {
	p := &litmus.Program{
		Name: "SB+fsc",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceFsc},
				litmus.Load{Dst: "a", Loc: "Y"},
			},
			{
				litmus.Store{Loc: "Y", Val: 1},
				litmus.Fence{K: memmodel.FenceFsc},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("Fsc must forbid SB weak outcome")
	}
}

func TestDirectionalFences(t *testing.T) {
	// Fww in the reader thread of MP orders nothing (wrong direction).
	p := &litmus.Program{
		Name: "MP+wrongdir",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceFww},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Fence{K: memmodel.FenceFww},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("Fww between loads orders nothing; MP weak outcome must remain")
	}
	// Frm after the load orders it with both successor kinds.
	p2 := &litmus.Program{
		Name: "MP+frm",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceFww},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Fence{K: memmodel.FenceFrm},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out2 := litmus.Outcomes(p2, New())
	if out2.Contains("1:a=1", "1:b=0") {
		t.Fatal("Fww+Frm (the verified mapping shape) must forbid MP weak outcome")
	}
}

func TestSCPerLocationHolds(t *testing.T) {
	if out := litmus.Outcomes(litmus.CoRR(), New()); out.Contains("1:a=1", "1:b=0") {
		t.Fatal("IR model must preserve coherence (CoRR)")
	}
	if out := litmus.Outcomes(litmus.CoWW(), New()); out.Contains("X=1") {
		t.Fatal("IR model must preserve coherence (CoWW)")
	}
}
