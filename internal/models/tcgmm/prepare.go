package tcgmm

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// checker is the per-skeleton TCG-IR consistency predicate. The ord
// relation of Figure 6 is built entirely from po, fence placement, SC
// access flags and the rmw pairing — nothing candidate-varying — so it is
// computed once per skeleton; each candidate unions in rfe/coe/fre and
// runs the acyclicity DFS.
type checker struct {
	p   *memmodel.Prep
	ord *rel.Relation
}

// Prepare implements memmodel.PreparedModel.
func (Model) Prepare(sk *memmodel.Skeleton) memmodel.Checker {
	return &checker{
		p:   memmodel.NewPrep(sk),
		ord: Ord(sk.Exec0()),
	}
}

// Consistent implements memmodel.Checker.
func (c *checker) Consistent(x *memmodel.Execution) bool {
	d := c.p.Derive(x)
	if !c.p.SCPerLoc(x, d) || !c.p.Atomicity(d) {
		return false
	}
	s := c.p.Scratch()
	s.CopyFrom(c.ord)
	s.UnionWith(d.Rfe)
	s.UnionWith(d.Coe)
	s.UnionWith(d.Fre)
	return c.p.Arena.Acyclic(s)
}

// Release implements memmodel.ReleasableChecker.
func (c *checker) Release() { c.p.Release() }
