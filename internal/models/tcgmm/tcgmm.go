// Package tcgmm implements the TCG IR axiomatic concurrency model proposed
// by the Risotto paper (§5.3, Figure 6) — the paper's first contribution:
// a formal memory model for QEMU's intermediate representation.
//
// Consistency of an execution X requires:
//
//	(sc-per-loc)  (po|loc ∪ rf ∪ co ∪ fr)+ irreflexive
//	(atomicity)   rmw ∩ (fre ; coe) = ∅
//	(GOrd)        ghb ≜ (ord ∪ rfe ∪ coe ∪ fre)+ irreflexive
//
// where ord collects the orderings induced by the nine directional fences
// and by SC-semantics RMW accesses:
//
//	ord ≜ [R];po;[Frr];po;[R] ∪ [R];po;[Frw];po;[W] ∪ [R];po;[Frm];po;[R∪W]
//	    ∪ [W];po;[Fwr];po;[R] ∪ [W];po;[Fww];po;[W] ∪ [W];po;[Fwm];po;[R∪W]
//	    ∪ [R∪W];po;[Fmr];po;[R] ∪ [R∪W];po;[Fmw];po;[W]
//	    ∪ [R∪W];po;[Fmm];po;[R∪W]
//	    ∪ po;[Wsc ∪ dom(rmw)] ∪ [Rsc ∪ codom(rmw)];po
//	    ∪ po;[Fsc] ∪ [Fsc];po
//
// Plain ld/st accesses are unordered unless a fence or an RMW intervenes —
// notably, the IR model orders nothing through dependencies, which is what
// legitimizes TCG's false-dependency elimination (§5.4, §6.1).
package tcgmm

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Model is the TCG IR consistency predicate.
type Model struct{}

// New returns the TCG IR model.
func New() Model { return Model{} }

// Name implements memmodel.Model.
func (Model) Name() string { return "TCG-IR" }

// fenceRule describes one [dom];po;[F];po;[cod] row of the ord table.
type fenceRule struct {
	fence memmodel.Fence
	dom   accessClass
	cod   accessClass
}

type accessClass int

const (
	classR accessClass = iota
	classW
	classRW
)

var ordRules = []fenceRule{
	{memmodel.FenceFrr, classR, classR},
	{memmodel.FenceFrw, classR, classW},
	{memmodel.FenceFrm, classR, classRW},
	{memmodel.FenceFwr, classW, classR},
	{memmodel.FenceFww, classW, classW},
	{memmodel.FenceFwm, classW, classRW},
	{memmodel.FenceFmr, classRW, classR},
	{memmodel.FenceFmw, classRW, classW},
	{memmodel.FenceFmm, classRW, classRW},
}

func classID(x *memmodel.Execution, c accessClass) *rel.Relation {
	switch c {
	case classR:
		return x.IdReads()
	case classW:
		return x.IdWrites()
	default:
		return x.IdMem()
	}
}

// Ord returns the order relation of Figure 6.
func Ord(x *memmodel.Execution) *rel.Relation {
	po := x.Po
	ord := rel.New()
	for _, rule := range ordRules {
		f := x.IdFences(rule.fence)
		if f.IsEmpty() {
			continue
		}
		ord = ord.Union(rel.Seq(classID(x, rule.dom), po, f, po, classID(x, rule.cod)))
	}

	// RMW SC rules: po;[Wsc ∪ dom(rmw)] ∪ [Rsc ∪ codom(rmw)];po.
	before := make(map[int]bool)
	after := make(map[int]bool)
	for _, e := range x.Events {
		if e.SC && e.Kind == memmodel.KindWrite {
			before[e.ID] = true
		}
		if e.SC && e.Kind == memmodel.KindRead {
			after[e.ID] = true
		}
	}
	for _, id := range x.Rmw.Domain() {
		before[id] = true
	}
	for _, id := range x.Rmw.Codomain() {
		after[id] = true
	}
	ord = ord.Union(
		po.RestrictCodomain(before),
		po.RestrictDomain(after),
	)

	// Fsc rules: po;[Fsc] ∪ [Fsc];po.
	fsc := x.IdFences(memmodel.FenceFsc)
	if !fsc.IsEmpty() {
		ord = ord.Union(po.Seq(fsc), fsc.Seq(po))
	}
	return ord
}

// GHB returns the global-happens-before candidate: ord ∪ rfe ∪ coe ∪ fre.
func GHB(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Ord(x), x.Rfe(), x.Coe(), x.Fre())
}

// Consistent implements memmodel.Model.
func (Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() && GHB(x).Acyclic()
}
