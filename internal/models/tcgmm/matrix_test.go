package tcgmm

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// TestFenceDirectionMatrix systematically validates Figure 6's ord table:
// for every fence kind and every access-pair direction (RR, RW, WR, WW),
// the fence forbids the corresponding weak outcome iff its rule covers
// that direction.

// pairProgram builds the canonical two-thread test for a direction with
// fence f between the first thread's accesses:
//
//	RR: MP-reader side weak outcome needs the ld-ld order
//	RW: LB needs ld-st order on both sides (we fence both)
//	WR: SB needs st-ld order on both sides
//	WW: MP-writer side weak outcome needs the st-st order
func pairProgram(dir string, f memmodel.Fence) *litmus.Program {
	fence := litmus.Fence{K: f}
	switch dir {
	case "RR":
		// Writer is fully ordered via RMW-sc stores? Use SC RMWs to pin
		// the writer; the fence under test sits between the reader's
		// loads.
		return &litmus.Program{
			Name: "matrix-RR",
			Threads: [][]litmus.Op{
				{
					litmus.Store{Loc: "X", Val: 1},
					litmus.Fence{K: memmodel.FenceFsc},
					litmus.Store{Loc: "Y", Val: 1},
				},
				{
					litmus.Load{Dst: "a", Loc: "Y"},
					fence,
					litmus.Load{Dst: "b", Loc: "X"},
				},
			},
		}
	case "RW":
		return &litmus.Program{
			Name: "matrix-RW",
			Threads: [][]litmus.Op{
				{litmus.Load{Dst: "a", Loc: "X"}, fence, litmus.Store{Loc: "Y", Val: 1}},
				{litmus.Load{Dst: "b", Loc: "Y"}, fence, litmus.Store{Loc: "X", Val: 1}},
			},
		}
	case "WR":
		return &litmus.Program{
			Name: "matrix-WR",
			Threads: [][]litmus.Op{
				{litmus.Store{Loc: "X", Val: 1}, fence, litmus.Load{Dst: "a", Loc: "Y"}},
				{litmus.Store{Loc: "Y", Val: 1}, fence, litmus.Load{Dst: "b", Loc: "X"}},
			},
		}
	default: // WW
		return &litmus.Program{
			Name: "matrix-WW",
			Threads: [][]litmus.Op{
				{
					litmus.Store{Loc: "X", Val: 1},
					fence,
					litmus.Store{Loc: "Y", Val: 1},
				},
				{
					litmus.Load{Dst: "a", Loc: "Y"},
					litmus.Fence{K: memmodel.FenceFsc},
					litmus.Load{Dst: "b", Loc: "X"},
				},
			},
		}
	}
}

// weakOutcome returns the fragments identifying the direction's weak
// outcome.
func weakOutcome(dir string) []string {
	switch dir {
	case "RR", "WW":
		return []string{"1:a=1", "1:b=0"}
	case "RW":
		return []string{"0:a=1", "1:b=1"}
	default: // WR
		return []string{"0:a=0", "1:b=0"}
	}
}

// covers reports whether fence f's ord rule orders direction dir.
var covers = map[memmodel.Fence]map[string]bool{
	memmodel.FenceFrr: {"RR": true},
	memmodel.FenceFrw: {"RW": true},
	memmodel.FenceFrm: {"RR": true, "RW": true},
	memmodel.FenceFwr: {"WR": true},
	memmodel.FenceFww: {"WW": true},
	memmodel.FenceFwm: {"WR": true, "WW": true},
	memmodel.FenceFmr: {"RR": true, "WR": true},
	memmodel.FenceFmw: {"RW": true, "WW": true},
	memmodel.FenceFmm: {"RR": true, "RW": true, "WR": true, "WW": true},
	memmodel.FenceFsc: {"RR": true, "RW": true, "WR": true, "WW": true},
}

func TestFenceDirectionMatrix(t *testing.T) {
	m := New()
	for f, dirs := range covers {
		for _, dir := range []string{"RR", "RW", "WR", "WW"} {
			p := pairProgram(dir, f)
			out := litmus.Outcomes(p, m)
			weak := out.Contains(weakOutcome(dir)...)
			shouldForbid := dirs[dir]
			if shouldForbid && weak {
				t.Errorf("%v must forbid the %s weak outcome but allows it", f, dir)
			}
			if !shouldForbid && !weak {
				t.Errorf("%v must NOT order %s pairs but the weak outcome vanished", f, dir)
			}
		}
	}
}
