package models

import (
	"testing"

	"repro/internal/memmodel"
)

// TestDefaultCoversEveryLevel: each instruction level has a default model,
// so level-directed lookups (the `model` directive, mapping endpoints)
// always resolve.
func TestDefaultCoversEveryLevel(t *testing.T) {
	for _, l := range memmodel.Levels() {
		if _, ok := Default().ForLevel(l); !ok {
			t.Errorf("no default model for level %q", l)
		}
	}
}

// TestDefaultNamesAndAliases pins the lookup surface the CLIs advertise.
func TestDefaultNamesAndAliases(t *testing.T) {
	for name, want := range map[string]string{
		"x86":                "x86-TSO",
		"x86tso":             "x86-TSO",
		"sparc":              "SPARC-TSO",
		"sparctso":           "SPARC-TSO",
		"imm":                "IMM",
		"tcg":                "TCG-IR",
		"tcgmm":              "TCG-IR",
		"arm":                "Arm-Cats",
		"armcats":            "Arm-Cats",
		"arm-cats(original)": "Arm-Cats(original)",
		"arm-cats-original":  "Arm-Cats(original)",
	} {
		m, err := Default().Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if m.Name() != want {
			t.Errorf("Lookup(%q) = %s, want %s", name, m.Name(), want)
		}
	}
}

// TestDefaultCanonicalSet pins the sweep set: five canonical models, all
// with prepared checkers, variants excluded.
func TestDefaultCanonicalSet(t *testing.T) {
	canon := Default().Canonical()
	want := []string{"x86-TSO", "SPARC-TSO", "IMM", "TCG-IR", "Arm-Cats"}
	if len(canon) != len(want) {
		t.Fatalf("got %d canonical models, want %d", len(canon), len(want))
	}
	for i, m := range canon {
		if m.Name() != want[i] {
			t.Errorf("canonical[%d] = %s, want %s", i, m.Name(), want[i])
		}
	}
	for _, e := range Default().Entries() {
		if !e.Prepared {
			t.Errorf("model %s lacks a prepared checker", e.Name)
		}
	}
}
