// Package opref is the axiomatic twin of the simulated machine's
// operational weak-memory mode (internal/machine/weak.go): a store-buffer
// (PSO-like) model that admits *exactly* the behaviours the machine can
// exhibit, so the exploration engine can demand 100% outcome coverage
// rather than the one-sided soundness check the broader Arm model allows.
//
// The machine executes loads in order and retires buffered stores out of
// order; mapping each event to the real time it takes effect (reads and
// direct accesses at execution, buffered writes at drain) justifies:
//
//	(sc-per-loc)  coherence: drains never pass older overlapping stores
//	(atomicity)   RMWs flush, then read and write memory directly
//	(GHB)         (implied ∪ ppo ∪ rfe ∪ fr ∪ co)+ irreflexive
//
// where
//
//	ppo     ≜ (R×M) ∩ po           — loads execute in order, and a later
//	                                 store's drain follows its execution
//	implied ≜ po;[S] ∪ [S];po
//	S       ≜ store-flushing fences ∪ RMW events ∪ release writes
//	          ∪ SC accesses        — everything the machine performs
//	                                 directly on memory after a flush
//
// Weak behaviours thus come only from W×W and W×R relaxation: MP, SB and
// 2+2W have observable weak outcomes, LB does not (its cycle needs W→R
// speculation the in-order machine cannot produce). The model registers as
// a *variant* (resolvable by name, excluded from canonical sweeps): it
// deliberately describes this machine, not an architecture.
package opref

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Model is the operational-reference consistency predicate.
type Model struct{}

// New returns the operational-reference model.
func New() Model { return Model{} }

// Name implements memmodel.Model.
func (Model) Name() string { return "op-ref" }

// strongIDs collects S: events the machine performs directly on memory at
// execution time, draining the store buffer first. Flushing fences (the
// shared memmodel.Fence.StoreFlush classification), every RMW event (CAS
// and exclusives flush before operating — including the read of a failed
// CAS, which is why S is keyed on the event attribute rather than the rmw
// relation), release writes (STLR), and SC accesses (TCG Rsc/Wsc lower to
// atomics).
func strongIDs(x *memmodel.Execution) []int {
	return x.IDs(func(e memmodel.Event) bool {
		if e.IsInit() {
			return false
		}
		switch {
		case e.Kind == memmodel.KindFence:
			return e.Fence.StoreFlush()
		case e.RMW != memmodel.RMWNone:
			return true
		case e.Kind == memmodel.KindWrite && e.Rel:
			return true
		case e.SC:
			return true
		}
		return false
	})
}

// Ppo returns the machine's preserved program order: everything after a
// read (loads execute in order; a later store executes — and therefore
// drains — after an earlier load). Write-to-write and write-to-read pairs
// are relaxed: that is the store buffer.
func Ppo(x *memmodel.Execution) *rel.Relation {
	return x.Po.Filter(func(a, b int) bool {
		ea, eb := x.Events[a], x.Events[b]
		if ea.Kind == memmodel.KindFence || eb.Kind == memmodel.KindFence {
			return false
		}
		return ea.Kind == memmodel.KindRead
	})
}

// Implied returns po;[S] ∪ [S];po — full ordering at every strong event.
func Implied(x *memmodel.Execution) *rel.Relation {
	idS := rel.Identity(strongIDs(x))
	return x.Po.Seq(idS).Union(idS.Seq(x.Po))
}

// GHB returns the global-happens-before candidate relation whose
// acyclicity the (GHB) axiom demands.
func GHB(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Implied(x), Ppo(x), x.Rfe(), x.Fr(), x.Co)
}

// Consistent implements memmodel.Model.
func (Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() && GHB(x).Acyclic()
}
