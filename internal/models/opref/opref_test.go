package opref_test

import (
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models/opref"
	"repro/internal/models/x86tso"
)

// enumerate is Enumerate with a fatal on error.
func enumerate(t *testing.T, p *litmus.Program, m memmodel.Model) litmus.OutcomeSet {
	t.Helper()
	out, err := litmus.Enumerate(p, m)
	if err != nil {
		t.Fatalf("enumerate %s under %s: %v", p.Name, m.Name(), err)
	}
	return out
}

// has reports whether some outcome contains every given fragment.
func has(set litmus.OutcomeSet, frags ...string) bool {
	for o := range set {
		ok := true
		for _, f := range frags {
			if !strings.Contains(string(o), f) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestShapePinning pins the four canonical shapes: the store buffer
// relaxes W×W and W×R, so MP, SB and 2+2W gain their weak outcome while
// LB (whose cycle needs load speculation) does not.
func TestShapePinning(t *testing.T) {
	m := opref.New()

	mp := enumerate(t, litmus.MP(), m)
	if len(mp) != 4 || !has(mp, "1:a=1", "1:b=0") {
		t.Fatalf("MP under op-ref = %v, want 4 outcomes incl. a=1,b=0", mp.Sorted())
	}

	sb := enumerate(t, litmus.SB(), m)
	if len(sb) != 4 || !has(sb, "0:a=0", "1:b=0") {
		t.Fatalf("SB under op-ref = %v, want 4 outcomes incl. a=b=0", sb.Sorted())
	}

	lb := enumerate(t, litmus.LB(), m)
	if len(lb) != 3 || has(lb, "0:a=1", "1:b=1") {
		t.Fatalf("LB under op-ref = %v, want 3 outcomes and no a=b=1 (loads execute in order)", lb.Sorted())
	}

	ww := enumerate(t, litmus.TwoPlusTwoW(), m)
	if len(ww) != 4 || !has(ww, "X=1", "Y=1") {
		t.Fatalf("2+2W under op-ref = %v, want 4 outcomes incl. X=Y=1", ww.Sorted())
	}
}

// TestFencedShapesCollapseToSC: store-flushing fences on both sides
// restore the SC outcome set — the verified-mapping variants must show no
// weak outcome.
func TestFencedShapesCollapseToSC(t *testing.T) {
	m := opref.New()
	sbf := enumerate(t, litmus.SBFenced(), m)
	if len(sbf) != 3 || has(sbf, "0:a=0", "1:b=0") {
		t.Fatalf("SB+mfences under op-ref = %v, want a=b=0 forbidden", sbf.Sorted())
	}
	mpd := enumerate(t, litmus.MPArmDMB(), m)
	if len(mpd) != 3 || has(mpd, "1:a=1", "1:b=0") {
		t.Fatalf("MP+dmbs under op-ref = %v, want a=1,b=0 forbidden", mpd.Sorted())
	}
}

// TestWeakerThanTSO: op-ref keeps all of TSO's relaxations and adds W×W,
// so over the whole x86 corpus every TSO-allowed outcome stays allowed.
func TestWeakerThanTSO(t *testing.T) {
	for _, p := range litmus.X86Corpus() {
		tso := enumerate(t, p, x86tso.New())
		op := enumerate(t, p, opref.New())
		if !tso.SubsetOf(op) {
			t.Errorf("%s: TSO ⊄ op-ref; TSO-only outcomes: %v", p.Name, tso.Minus(op))
		}
	}
}

// TestPreparedMatchesPlain mirrors litmus/prepared_test.go for this model:
// outcome sets through the prepared checker (what Outcomes uses) must
// equal a from-scratch sweep calling Model.Consistent on every candidate.
func TestPreparedMatchesPlain(t *testing.T) {
	m := opref.New()
	for _, p := range litmus.X86Corpus() {
		plain := make(litmus.OutcomeSet)
		litmus.EnumerateCandidates(p, func(c *litmus.Candidate) bool {
			if m.Consistent(c.X) {
				plain[litmus.OutcomeOf(c)] = true
			}
			return true
		})
		prepared := litmus.Outcomes(p, m)
		if len(plain) != len(prepared) || !prepared.SubsetOf(plain) {
			t.Errorf("%s: prepared %v, plain %v", p.Name, prepared.Sorted(), plain.Sorted())
		}
	}
}
