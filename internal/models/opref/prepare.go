package opref

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// checker is the per-skeleton op-ref consistency predicate. The strong set
// S, implied and ppo depend only on po and per-event attributes — all fixed
// per skeleton — so base = implied ∪ ppo is computed once; each candidate
// only unions in rfe, fr and co and runs the acyclicity DFS.
type checker struct {
	p *memmodel.Prep
	// base = implied ∪ ppo, the candidate-invariant part of GHB.
	base *rel.Relation
}

// Prepare implements memmodel.PreparedModel.
func (Model) Prepare(sk *memmodel.Skeleton) memmodel.Checker {
	x0 := sk.Exec0()
	return &checker{
		p:    memmodel.NewPrep(sk),
		base: Implied(x0).Union(Ppo(x0)),
	}
}

// Consistent implements memmodel.Checker.
func (c *checker) Consistent(x *memmodel.Execution) bool {
	d := c.p.Derive(x)
	if !c.p.SCPerLoc(x, d) || !c.p.Atomicity(d) {
		return false
	}
	s := c.p.Scratch()
	s.CopyFrom(c.base)
	s.UnionWith(d.Rfe)
	s.UnionWith(d.Fr)
	s.UnionWith(x.Co)
	return c.p.Arena.Acyclic(s)
}

// Release implements memmodel.ReleasableChecker.
func (c *checker) Release() { c.p.Release() }
