// Package models assembles the built-in memory models into the default
// memmodel.Registry. It is the one place that knows every concrete model
// package; everything else — CLIs, the campaign driver, the fault matrix,
// the mapping matrix — resolves models by name or level through the
// registry, so admitting a new model means one package plus one
// registration line here.
package models

import (
	"sync"

	"repro/internal/memmodel"
	"repro/internal/models/armcats"
	"repro/internal/models/imm"
	"repro/internal/models/opref"
	"repro/internal/models/sparctso"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

var (
	defaultOnce sync.Once
	defaultReg  *memmodel.Registry
)

// Default returns the process-wide registry of built-in models: the five
// canonical models in guest→host level order (x86-TSO, SPARC-TSO, IMM,
// TCG-IR, Arm-Cats) plus the pre-fix Arm-Cats variant, registered as a
// variant so it resolves by name but stays out of corpus sweeps.
func Default() *memmodel.Registry {
	defaultOnce.Do(func() {
		r := memmodel.NewRegistry()
		r.MustRegister(x86tso.New(), memmodel.LevelX86, "x86")
		r.MustRegister(sparctso.New(), memmodel.LevelSPARC, "sparc")
		r.MustRegister(imm.New(), memmodel.LevelIMM)
		r.MustRegister(tcgmm.New(), memmodel.LevelTCG, "tcg", "tcgmm")
		r.MustRegister(armcats.New(), memmodel.LevelArm, "arm")
		r.MustRegisterVariant(armcats.NewVariant(armcats.Original), memmodel.LevelArm)
		// The operational-reference model mirrors the simulated machine's
		// store-buffer mode exactly (internal/explore measures coverage
		// against it); a variant because it describes the machine, not an
		// architecture.
		r.MustRegisterVariant(opref.New(), memmodel.LevelArm, "machine-ref")
		defaultReg = r
	})
	return defaultReg
}

// ByLevel returns the default registry's model for a level, panicking on
// unpopulated levels — every Level constant has a default model here, so
// a panic means a programming error, not bad user input.
func ByLevel(l memmodel.Level) memmodel.Model {
	m, ok := Default().ForLevel(l)
	if !ok {
		panic("models: no model registered for level " + string(l))
	}
	return m
}

// MustLookup resolves a name through the default registry, panicking on
// unknown names (for call sites where the name is a literal).
func MustLookup(name string) memmodel.Model {
	return Default().MustLookup(name)
}
