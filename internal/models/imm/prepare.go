package imm

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// checker is the per-skeleton IMM consistency predicate. The TCG fence
// order and every depord term except (addr ∪ data);rfi are skeleton-fixed,
// so Ord on the skeleton's pseudo-execution (empty rf makes rfi vanish)
// yields the static part; each candidate adds the rfi composition, the
// external communication edges, and the thin-air check over deps ∪ rf.
type checker struct {
	p *memmodel.Prep
	// ordStatic = ord_tcg ∪ depord|static.
	ordStatic *rel.Relation
	// deps = data ∪ addr ∪ ctrl (for no-thin-air), addrData = addr ∪ data
	// (left factor of the rfi term).
	deps, addrData *rel.Relation
	// Per-candidate scratch.
	rfi, comp *rel.Relation
}

// Prepare implements memmodel.PreparedModel.
func (Model) Prepare(sk *memmodel.Skeleton) memmodel.Checker {
	p := memmodel.NewPrep(sk)
	x0 := sk.Exec0()
	return &checker{
		p:         p,
		ordStatic: Ord(x0),
		deps:      rel.Union(sk.Data, sk.Addr, sk.Ctrl),
		addrData:  sk.Addr.Union(sk.Data),
		rfi:       p.Arena.Get(),
		comp:      p.Arena.Get(),
	}
}

// Consistent implements memmodel.Checker.
func (c *checker) Consistent(x *memmodel.Execution) bool {
	d := c.p.Derive(x)
	if !c.p.SCPerLoc(x, d) || !c.p.Atomicity(d) {
		return false
	}
	s := c.p.Scratch()
	// (no-thin-air) deps ∪ rf acyclic.
	s.CopyFrom(c.deps)
	s.UnionWith(x.Rf)
	if !c.p.Arena.Acyclic(s) {
		return false
	}
	// (GOrd) ordStatic ∪ (addr ∪ data);rfi ∪ rfe ∪ coe ∪ fre acyclic.
	c.rfi.CopyFrom(x.Rf)
	c.rfi.IntersectWith(c.p.PoSym)
	c.comp.SeqOf(c.addrData, c.rfi)
	s.CopyFrom(c.ordStatic)
	s.UnionWith(c.comp)
	s.UnionWith(d.Rfe)
	s.UnionWith(d.Coe)
	s.UnionWith(d.Fre)
	return c.p.Arena.Acyclic(s)
}

// Release implements memmodel.ReleasableChecker.
func (c *checker) Release() {
	if c.p.Arena != nil {
		c.p.Arena.Put(c.rfi)
		c.p.Arena.Put(c.comp)
	}
	c.p.Release()
}
