// Package imm implements an intermediate memory model in the spirit of
// IMM (Podkopaev, Lahav, Vafeiadis — "Bridging the gap between programming
// languages and hardware weak memory models"): a model sitting between
// guest architectures and the TCG IR that is fence-compatible with the IR
// model but additionally preserves syntactic dependencies and forbids
// thin-air values.
//
// Consistency of an execution X requires:
//
//	(sc-per-loc)   (po|loc ∪ rf ∪ co ∪ fr)+ irreflexive
//	(atomicity)    rmw ∩ (fre ; coe) = ∅
//	(no-thin-air)  (deps ∪ rf)+ irreflexive,  deps ≜ data ∪ addr ∪ ctrl
//	(GOrd)         (ord ∪ rfe ∪ coe ∪ fre)+ irreflexive
//
// where ord extends the TCG IR model's fence/SC-RMW order (tcgmm.Ord)
// with dependency-ordered-before edges:
//
//	ord    ≜ ord_tcg ∪ depord
//	depord ≜ addr ∪ data ∪ ctrl;[W] ∪ addr;po;[W] ∪ (addr ∪ data);rfi
//
// depord is chosen as a subset of Armed-Cats' dob (dob minus the
// (ctrl ∪ data);coi term), so lowering an IMM-level program to Arm with
// the verified fence scheme preserves every IMM ordering — the N×N matrix
// checks that containment by construction. Conversely ord ⊇ ord_tcg means
// IMM admits no behaviour the IR model forbids, so the verified guest
// fence placements stay sound when retargeted at IMM.
package imm

import (
	"repro/internal/memmodel"
	"repro/internal/models/tcgmm"
	"repro/internal/rel"
)

// Model is the IMM consistency predicate.
type Model struct{}

// New returns the IMM model.
func New() Model { return Model{} }

// Name implements memmodel.Model.
func (Model) Name() string { return "IMM" }

// Deps returns the full syntactic dependency relation data ∪ addr ∪ ctrl.
func Deps(x *memmodel.Execution) *rel.Relation {
	return rel.Union(x.Data, x.Addr, x.Ctrl)
}

// DepOrd returns dependency-ordered-before: the dependency edges IMM
// promotes into the global order. rfi (internal reads-from) vanishes on
// skeleton pseudo-executions, which is what lets the prepared checker
// precompute everything else.
func DepOrd(x *memmodel.Execution) *rel.Relation {
	rfi := x.Rf.Filter(func(a, b int) bool {
		return x.Po.Has(a, b) || x.Po.Has(b, a)
	})
	w := x.IdWrites()
	return rel.Union(
		x.Addr,
		x.Data,
		x.Ctrl.Seq(w),
		x.Addr.Seq(x.Po).Seq(w),
		x.Addr.Union(x.Data).Seq(rfi),
	)
}

// Ord returns the IMM order relation: the TCG IR fence/SC-RMW order plus
// dependency ordering.
func Ord(x *memmodel.Execution) *rel.Relation {
	return tcgmm.Ord(x).Union(DepOrd(x))
}

// GHB returns the global-happens-before candidate: ord ∪ rfe ∪ coe ∪ fre.
func GHB(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Ord(x), x.Rfe(), x.Coe(), x.Fre())
}

// Consistent implements memmodel.Model.
func (Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() &&
		Deps(x).Union(x.Rf).Acyclic() && GHB(x).Acyclic()
}
