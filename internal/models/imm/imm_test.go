package imm

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// TestContainsX86TSOOverCorpus is the containment sanity pin: IMM sits
// below the guest models, so on every x86-level corpus program each
// x86-TSO-allowed outcome must be IMM-allowed. (IMM interprets neither
// MFENCE nor TSO's implicit W→W/R→R order, so it is strictly weaker on
// most of these programs; containment, not equality, is the invariant.)
func TestContainsX86TSOOverCorpus(t *testing.T) {
	x86 := x86tso.New()
	m := New()
	for _, p := range litmus.X86Corpus() {
		tso := litmus.Outcomes(p, x86)
		imm := litmus.Outcomes(p, m)
		if !tso.SubsetOf(imm) {
			t.Errorf("%s: x86-TSO outcomes %v not contained in IMM outcomes %v",
				p.Name, tso.Sorted(), imm.Sorted())
		}
	}
}

// TestWithinTCGIROverCorpus pins the other half of the sandwich: IMM's
// order relation extends the TCG IR model's, so IMM admits no outcome the
// IR model forbids. This is what keeps the verified guest fence placements
// sound when their target model is IMM instead of TCG-IR.
func TestWithinTCGIROverCorpus(t *testing.T) {
	ir := tcgmm.New()
	m := New()
	corpus := append(litmus.X86Corpus(), litmus.LBIR(), litmus.MPIR(), litmus.LBAddr(), litmus.MPAddr())
	for _, p := range corpus {
		imm := litmus.Outcomes(p, m)
		tcg := litmus.Outcomes(p, ir)
		if !imm.SubsetOf(tcg) {
			t.Errorf("%s: IMM outcomes %v not contained in TCG-IR outcomes %v",
				p.Name, imm.Sorted(), tcg.Sorted())
		}
	}
}

// TestDependenciesOrder pins IMM's defining difference from the IR model:
// load buffering with address dependencies into the stores is allowed by
// TCG-IR (which orders nothing through dependencies) but forbidden by IMM.
func TestDependenciesOrder(t *testing.T) {
	lb := litmus.LBAddr()
	if litmus.Outcomes(lb, New()).Contains("0:a=1", "1:b=1") {
		t.Fatal("IMM must forbid LB+addrs a=b=1 (dependency cycle)")
	}
	if !litmus.Outcomes(lb, tcgmm.New()).Contains("0:a=1", "1:b=1") {
		t.Fatal("TCG-IR should allow LB+addrs a=b=1 (the contrast this test pins)")
	}
}

// sbWith builds store buffering with the given fence between each store
// and load.
func sbWith(k memmodel.Fence) *litmus.Program {
	return &litmus.Program{
		Name: "SB+" + k.String(),
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: k},
				litmus.Load{Dst: "a", Loc: "Y"},
			},
			{
				litmus.Store{Loc: "Y", Val: 1},
				litmus.Fence{K: k},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
}

// TestFenceVocabulary: IMM speaks the IR fence vocabulary (Fwr forbids
// SB's weak outcome) and treats guest fences as foreign (MFENCE orders
// nothing).
func TestFenceVocabulary(t *testing.T) {
	if litmus.Outcomes(sbWith(memmodel.FenceFwr), New()).Contains("0:a=0", "1:b=0") {
		t.Fatal("Fwr must forbid SB a=b=0 under IMM")
	}
	if !litmus.Outcomes(sbWith(memmodel.FenceMFENCE), New()).Contains("0:a=0", "1:b=0") {
		t.Fatal("MFENCE is foreign to IMM and must not forbid SB a=b=0")
	}
}

// TestPreparedMatchesPlain mirrors litmus/prepared_test.go for this model:
// outcome sets through the prepared checker must equal a from-scratch
// sweep calling Model.Consistent on every candidate.
func TestPreparedMatchesPlain(t *testing.T) {
	m := New()
	corpus := append(litmus.X86Corpus(),
		litmus.LBAddr(), litmus.MPAddr(), litmus.LBIR(), litmus.MPIR(),
		litmus.Fig9a(), litmus.Fig9b())
	for _, p := range corpus {
		plain := make(litmus.OutcomeSet)
		litmus.EnumerateCandidates(p, func(c *litmus.Candidate) bool {
			if m.Consistent(c.X) {
				plain[litmus.OutcomeOf(c)] = true
			}
			return true
		})
		prepared := litmus.Outcomes(p, m)
		if len(plain) != len(prepared) || !prepared.SubsetOf(plain) {
			t.Errorf("%s: prepared %v, plain %v", p.Name, prepared.Sorted(), plain.Sorted())
		}
	}
}
