package x86tso

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/models/armcats"
)

func TestIRIWForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.IRIW(), New())
	// The readers disagreeing on the writes' order is forbidden in x86.
	if out.Contains("2:a=1", "2:b=0", "3:c=1", "3:d=0") {
		t.Fatal("x86 forbids IRIW disagreement")
	}
	// The agreeing outcomes exist.
	if !out.Contains("2:a=1", "2:b=1", "3:c=1", "3:d=1") {
		t.Fatal("x86 allows both readers seeing both writes")
	}
}

func TestIRIWOnArm(t *testing.T) {
	// Plain IRIW is allowed on Arm (reader-side load reordering)…
	out := litmus.Outcomes(litmus.IRIW(), armcats.New())
	if !out.Contains("2:a=1", "2:b=0", "3:c=1", "3:d=0") {
		t.Fatal("Arm allows plain IRIW disagreement")
	}
	// …and forbidden with DMBFF between the loads (ARMv8 is
	// other-multi-copy-atomic: rfe edges enter ob).
	out = litmus.Outcomes(litmus.IRIWFenced(), armcats.New())
	if out.Contains("2:a=1", "2:b=0", "3:c=1", "3:d=0") {
		t.Fatal("Arm forbids IRIW disagreement across full fences")
	}
}

func TestWRCForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.WRC(), New())
	if out.Contains("1:a=1", "2:b=1", "2:c=0") {
		t.Fatal("x86 forbids WRC weak outcome")
	}
	if !out.Contains("1:a=1", "2:b=1", "2:c=1") {
		t.Fatal("x86 allows the causal chain outcome")
	}
}

func TestISA2Forbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.ISA2(), New())
	if out.Contains("1:a=1", "2:b=1", "2:c=0") {
		t.Fatal("x86 forbids ISA2 weak outcome")
	}
}

func TestRWCPlainAllowedFencedForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.RWC(), New())
	if !out.Contains("1:a=1", "1:b=0", "2:c=0") {
		t.Fatal("x86 allows plain RWC weak outcome (store-load relaxation)")
	}
	out = litmus.Outcomes(litmus.RWCFenced(), New())
	if out.Contains("1:a=1", "1:b=0", "2:c=0") {
		t.Fatal("MFENCE must forbid the RWC weak outcome")
	}
}
