package x86tso

import (
	"testing"

	"repro/internal/litmus"
)

func TestMPForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.MP(), New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("x86 must forbid MP weak outcome a=1,b=0")
	}
	// Sanity: other outcomes exist.
	for _, frag := range [][]string{
		{"1:a=0", "1:b=0"}, {"1:a=1", "1:b=1"}, {"1:a=0", "1:b=1"},
	} {
		if !out.Contains(frag...) {
			t.Fatalf("x86 should allow %v", frag)
		}
	}
}

func TestSBWeakAllowed(t *testing.T) {
	out := litmus.Outcomes(litmus.SB(), New())
	if !out.Contains("0:a=0", "1:b=0") {
		t.Fatal("x86 allows SB a=b=0 (store buffering)")
	}
}

func TestSBFencedForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.SBFenced(), New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("MFENCE must forbid SB a=b=0")
	}
}

func TestLBForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.LB(), New())
	if out.Contains("0:a=1", "1:b=1") {
		t.Fatal("x86 forbids LB a=b=1")
	}
}

func TestSForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.S(), New())
	if out.Contains("1:a=1", "X=2") {
		t.Fatal("x86 forbids S weak outcome a=1,X=2")
	}
}

func TestRAllowedPlainForbiddenFenced(t *testing.T) {
	out := litmus.Outcomes(litmus.R(), New())
	if !out.Contains("1:a=0", "X=1", "Y=2") {
		t.Fatal("x86 allows plain R weak outcome (W→R is the TSO relaxation)")
	}
	out = litmus.Outcomes(litmus.RFenced(), New())
	if out.Contains("1:a=0", "X=1", "Y=2") {
		t.Fatal("x86 forbids R weak outcome once T1 has an MFENCE")
	}
}

func TestTwoPlusTwoWForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.TwoPlusTwoW(), New())
	if out.Contains("X=1", "Y=1") {
		t.Fatal("x86 forbids 2+2W X=1,Y=1")
	}
}

func TestCoherence(t *testing.T) {
	if out := litmus.Outcomes(litmus.CoRR(), New()); out.Contains("1:a=1", "1:b=0") {
		t.Fatal("CoRR violation allowed")
	}
	if out := litmus.Outcomes(litmus.CoWW(), New()); out.Contains("X=1") {
		t.Fatal("CoWW: X=1 final would reorder same-location writes")
	}
	if out := litmus.Outcomes(litmus.CoWR(), New()); !out.Contains("0:a=1") {
		t.Fatal("CoWR: thread must be able to read own write")
	} else if out.Contains("0:a=0") {
		t.Fatal("CoWR: a=0 would read overwritten init past own write")
	}
}

func TestMPQForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.MPQ(), New())
	if out.Contains("1:a=1", "X=1") {
		t.Fatal("x86 forbids MPQ a=1,X=1 (§3.2)")
	}
	if !out.Contains("1:a=1", "X=2") {
		t.Fatal("x86 allows a=1 with successful RMW (X=2)")
	}
	if !out.Contains("1:a=0", "X=1") {
		t.Fatal("x86 allows a=0 (RMW not executed)")
	}
}

func TestSBQForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.SBQ(), New())
	if out.Contains("0:a=0", "1:b=0", "Z=1", "U=1") {
		t.Fatal("x86 forbids SBQ a=b=0 with successful RMWs (§3.2)")
	}
}

func TestSBALForbidden(t *testing.T) {
	out := litmus.Outcomes(litmus.SBAL(), New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("x86 forbids SBAL a=b=0 (§3.3): successful RMWs are full fences")
	}
	if !out.Contains("0:a=1", "1:b=0") {
		t.Fatal("x86 allows SBAL a=1,b=0")
	}
}

func TestRMWAtomicity(t *testing.T) {
	// Two CASes on the same location starting at 0: exactly one succeeds.
	p := &litmus.Program{
		Name: "2CAS",
		Threads: [][]litmus.Op{
			{litmus.CAS{Loc: "X", Expect: 0, New: 1, Dst: "a"}},
			{litmus.CAS{Loc: "X", Expect: 0, New: 2, Dst: "b"}},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("atomicity: both CASes succeeded reading 0")
	}
	if !out.Contains("0:a=0", "1:b=1", "X=1") {
		t.Fatal("expected outcome: T0 wins (a=0), T1 fails reading 1, X=1")
	}
	if !out.Contains("0:a=2", "1:b=0", "X=2") {
		t.Fatal("expected outcome: T1 wins (b=0), T0 fails reading 2, X=2")
	}
}
