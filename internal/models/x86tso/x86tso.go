// Package x86tso implements the x86-TSO axiomatic concurrency model as
// presented in §5.2 of the Risotto paper (following Owens et al. [64, 65]
// and Alglave et al. [10]).
//
// Consistency of an execution X requires:
//
//	(sc-per-loc)  (po|loc ∪ rf ∪ co ∪ fr)+ irreflexive
//	(atomicity)   rmw ∩ (fre ; coe) = ∅
//	(GHB)         (implied ∪ ppo ∪ rfe ∪ fr ∪ co)+ irreflexive
//
// where
//
//	ppo     ≜ ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
//	implied ≜ po;[At ∪ F] ∪ [At ∪ F];po
//	At      ≜ dom(rmw) ∪ codom(rmw)
package x86tso

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Model is the x86-TSO consistency predicate.
type Model struct{}

// New returns the x86-TSO model.
func New() Model { return Model{} }

// Name implements memmodel.Model.
func (Model) Name() string { return "x86-TSO" }

// Ppo returns x86's preserved program order: all po pairs except
// write-to-read (store-load reordering is the one relaxation TSO allows).
func Ppo(x *memmodel.Execution) *rel.Relation {
	return x.Po.Filter(func(a, b int) bool {
		ea, eb := x.Events[a], x.Events[b]
		if ea.Kind == memmodel.KindFence || eb.Kind == memmodel.KindFence {
			return false
		}
		// Keep W×W, R×W, R×R; drop W×R.
		return !(ea.Kind == memmodel.KindWrite && eb.Kind == memmodel.KindRead)
	})
}

// Implied returns the orderings implied by fences and successful RMWs:
// po;[At ∪ F] ∪ [At ∪ F];po.
func Implied(x *memmodel.Execution) *rel.Relation {
	atF := make(map[int]bool)
	for _, id := range x.Rmw.Domain() {
		atF[id] = true
	}
	for _, id := range x.Rmw.Codomain() {
		atF[id] = true
	}
	for _, id := range x.Fences(memmodel.FenceMFENCE) {
		atF[id] = true
	}
	var ids []int
	for id := range atF {
		ids = append(ids, id)
	}
	idAtF := rel.Identity(ids)
	return x.Po.Seq(idAtF).Union(idAtF.Seq(x.Po))
}

// GHB returns the global-happens-before candidate relation whose acyclicity
// the (GHB) axiom demands.
func GHB(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Implied(x), Ppo(x), x.Rfe(), x.Fr(), x.Co)
}

// Consistent implements memmodel.Model.
func (Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() && GHB(x).Acyclic()
}
