package armcats

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// Address-dependency (dob addr) coverage.

func TestMPAddrForbiddenOnArm(t *testing.T) {
	out := litmus.Outcomes(litmus.MPAddr(), New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("Arm must forbid MP+addr's weak outcome (dob addr)")
	}
	if !out.Contains("1:a=1", "1:b=1") {
		t.Fatal("the strong outcome must exist")
	}
}

func TestMPWithoutDepStaysWeakOnArm(t *testing.T) {
	// Control: the same shape with a plain (non-dependent) second load is
	// weak — the dependency is what forbids it above.
	p := &litmus.Program{
		Name: "MP+noaddr",
		Threads: [][]litmus.Op{
			litmus.MPAddr().Threads[0],
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Load{Dst: "b", Loc: "X0"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("without the dependency the weak outcome must be allowed")
	}
}

func TestLBAddrForbiddenOnArmAllowedInIR(t *testing.T) {
	// Arm: dob addr into the stores forbids a=b=1.
	out := litmus.Outcomes(litmus.LBAddr(), New())
	if out.Contains("0:a=1", "1:b=1") {
		t.Fatal("Arm must forbid LB+addrs a=b=1")
	}
	// The TCG IR model ignores dependencies (§5.3): a=b=1 is admitted.
	out = litmus.Outcomes(litmus.LBAddr(), tcgmm.New())
	if !out.Contains("0:a=1", "1:b=1") {
		t.Fatal("TCG IR must allow LB+addrs a=b=1 (no dependency ordering)")
	}
}

func TestAddrDependencySelectsLocation(t *testing.T) {
	// A genuine two-location indexed load: reads Z0 when the index is
	// even, Z1 when odd; the enumerator must bind the location to the
	// index value.
	p := &litmus.Program{
		Name: "idx-select",
		Threads: [][]litmus.Op{
			{litmus.Store{Loc: "Z0", Val: 10}, litmus.Store{Loc: "Z1", Val: 20}},
			{
				litmus.Load{Dst: "i", Loc: "SEL"},
				litmus.LoadIdx{Dst: "v", Idx: "i", Loc0: "Z0", Loc1: "Z1"},
			},
			{litmus.Store{Loc: "SEL", Val: 1}},
		},
	}
	out := litmus.Outcomes(p, New())
	// i=1 must read Z1 (20 or its init 0), never Z0's values.
	if out.Contains("1:i=1", "1:v=10") {
		t.Fatal("odd index must not read Z0")
	}
	if !out.Contains("1:i=1", "1:v=20") {
		t.Fatal("odd index reading Z1=20 must be possible")
	}
	if !out.Contains("1:i=0", "1:v=10") {
		t.Fatal("even index reading Z0=10 must be possible")
	}
}

func TestX86OrdersIndexedLoads(t *testing.T) {
	// At the x86 level indexed loads are ordered like any load pair (ppo
	// covers R×R), dependency or not.
	src := &litmus.Program{
		Name: "MP+addr-x86",
		Threads: [][]litmus.Op{
			{litmus.Store{Loc: "X0", Val: 1}, litmus.Store{Loc: "Y", Val: 1}},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.LoadIdx{Dst: "b", Idx: "a", Loc0: "X0", Loc1: "X0"},
			},
		},
	}
	out := litmus.Outcomes(src, x86tso.New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("x86 forbids MP+addr weak outcome (ppo covers all load pairs)")
	}
}
