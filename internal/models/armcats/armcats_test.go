package armcats

import (
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

func TestMPWeakAllowedPlain(t *testing.T) {
	out := litmus.Outcomes(litmus.MPArm(), New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("plain Arm MP must allow a=1,b=0 (§2.1)")
	}
}

func TestMPForbiddenWithDMB(t *testing.T) {
	out := litmus.Outcomes(litmus.MPArmDMB(), New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("DMBFF-fenced MP must forbid a=1,b=0")
	}
}

func TestMPForbiddenWithRelAcq(t *testing.T) {
	// STLR / LDAR also restore MP ordering.
	p := &litmus.Program{
		Name: "MP+relacq",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Store{Loc: "Y", Val: 1, Attr: litmus.Attr{Rel: true}},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y", Attr: litmus.Attr{Acq: true}},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("release/acquire MP must forbid a=1,b=0")
	}
}

func TestMPAddressDependencyOrders(t *testing.T) {
	// Data dependency via dob: a=Y; X2=a ordering the store after the load.
	p := &litmus.Program{
		Name: "MP+dep",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.StoreReg{Loc: "Z", Src: "a"},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	// The plain load b=X is still unordered w.r.t. a=Y, so the weak
	// outcome survives a data dependency to an unrelated store.
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("data dep to Z does not order the independent load of X")
	}
}

func TestCtrlDependencyOrdersStoresOnly(t *testing.T) {
	// MP with a control dependency into a *store*: ctrl;[W] orders it.
	p := &litmus.Program{
		Name: "MP+ctrl-store",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.If{Reg: "a", Eq: true, Val: 1, Body: []litmus.Op{
					litmus.Store{Loc: "Z", Val: 1},
				}},
			},
		},
	}
	// a=1 with Z=1 is the only way Z gets written; the dependency means
	// the Z write cannot be seen before a=Y reads 1 — an observer thread
	// would be needed to test visibility, so here just check consistency
	// machinery doesn't blow up and both outcomes exist.
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "Z=1") || !out.Contains("1:a=0", "Z=0") {
		t.Fatalf("expected both branch outcomes, got %v", out.Sorted())
	}
	// Ctrl-dep to a *load* does not order it: LB+ctrl on one side only
	// still forbids... actually LB needs deps on both sides; skip.
}

func TestLBDataDepsForbidden(t *testing.T) {
	// LB with data dependencies on both sides is forbidden in Arm (dob).
	p := &litmus.Program{
		Name: "LB+datas",
		Threads: [][]litmus.Op{
			{
				litmus.Load{Dst: "a", Loc: "X"},
				litmus.StoreReg{Loc: "Y", Src: "a"},
			},
			{
				litmus.Load{Dst: "b", Loc: "Y"},
				litmus.StoreReg{Loc: "X", Src: "b"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("0:a=1", "1:b=1") {
		t.Fatal("LB+data+data must be forbidden in Arm")
	}
	// The plain-store variant is allowed.
	out = litmus.Outcomes(litmus.LB(), New())
	if !out.Contains("0:a=1", "1:b=1") {
		t.Fatal("plain LB must be allowed in Arm")
	}
}

func TestSBALOriginalVsCorrected(t *testing.T) {
	p := litmus.SBALArm()
	orig := litmus.Outcomes(p, NewVariant(Original))
	if !orig.Contains("0:a=0", "1:b=0") {
		t.Fatal("original Armed-Cats must allow SBAL a=b=0 (§3.3 error)")
	}
	fixed := litmus.Outcomes(p, New())
	if fixed.Contains("0:a=0", "1:b=0") {
		t.Fatal("corrected Armed-Cats must forbid SBAL a=b=0 (§5.2 fix)")
	}
	// The fix strictly strengthens: corrected ⊆ original.
	if !fixed.SubsetOf(orig) {
		t.Fatal("corrected model admitted an outcome the original forbids")
	}
}

func TestSBPlainAllowed(t *testing.T) {
	out := litmus.Outcomes(litmus.SB(), New())
	if !out.Contains("0:a=0", "1:b=0") {
		t.Fatal("Arm allows SB a=b=0")
	}
}

func TestSBWithDMBForbidden(t *testing.T) {
	p := &litmus.Program{
		Name: "SB+dmbs",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Load{Dst: "a", Loc: "Y"},
			},
			{
				litmus.Store{Loc: "Y", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("DMBFF must forbid SB a=b=0 on Arm")
	}
}

func TestDMBLDOrdersLoadDown(t *testing.T) {
	// MP with DMBST between stores and DMBLD after first load:
	// the verified Risotto mapping shape. Weak outcome forbidden.
	p := &litmus.Program{
		Name: "MP+st+ld",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBST},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Fence{K: memmodel.FenceDMBLD},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("1:a=1", "1:b=0") {
		t.Fatal("DMBST/DMBLD mapping must forbid MP weak outcome")
	}
}

func TestDMBSTDoesNotOrderLoads(t *testing.T) {
	// DMBST only orders W-W: using it in the reader thread leaves MP weak.
	p := &litmus.Program{
		Name: "MP+st-wrong",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBST},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Fence{K: memmodel.FenceDMBST},
				litmus.Load{Dst: "b", Loc: "X"},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "1:b=0") {
		t.Fatal("DMBST between loads orders nothing; weak outcome must remain")
	}
}

func TestExclusivePairAtomicity(t *testing.T) {
	// Two lxsx CASes on one location: both cannot succeed reading 0.
	attr := litmus.Attr{Class: memmodel.RMWLxSx}
	p := &litmus.Program{
		Name: "2LXSX",
		Threads: [][]litmus.Op{
			{litmus.CAS{Loc: "X", Expect: 0, New: 1, Dst: "a", Attr: attr}},
			{litmus.CAS{Loc: "X", Expect: 0, New: 2, Dst: "b", Attr: attr}},
		},
	}
	out := litmus.Outcomes(p, New())
	if out.Contains("0:a=0", "1:b=0") {
		t.Fatal("atomicity: both exclusive CASes succeeded")
	}
}

func TestMPQArmShapeAllowedWithoutTrailingFence(t *testing.T) {
	// The Arm-level shape of QEMU-translated MPQ (§3.2): DMBFF-ordered
	// stores, DMBLD *before* the load (QEMU's placement), then casal.
	// The plain load and the casal acquire-read may still reorder, so
	// a=1 ∧ X=1 (failed RMW) must be allowed — the QEMU bug.
	amoAL := litmus.Attr{Acq: true, Rel: true, Class: memmodel.RMWAmo}
	p := &litmus.Program{
		Name: "MPQ-arm-qemu",
		Threads: [][]litmus.Op{
			{
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBFF},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Fence{K: memmodel.FenceDMBLD},
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.If{Reg: "a", Eq: true, Val: 1, Body: []litmus.Op{
					litmus.CAS{Loc: "X", Expect: 1, New: 2, Attr: amoAL},
				}},
			},
		},
	}
	out := litmus.Outcomes(p, New())
	if !out.Contains("1:a=1", "X=1") {
		t.Fatal("QEMU-shaped MPQ must exhibit the erroneous outcome a=1,X=1 on Arm")
	}
	// Risotto's placement (trailing DMBLD after the load) forbids it.
	p2 := &litmus.Program{
		Name: "MPQ-arm-risotto",
		Threads: [][]litmus.Op{
			{
				litmus.Store{Loc: "X", Val: 1},
				litmus.Fence{K: memmodel.FenceDMBST},
				litmus.Store{Loc: "Y", Val: 1},
			},
			{
				litmus.Load{Dst: "a", Loc: "Y"},
				litmus.Fence{K: memmodel.FenceDMBLD},
				litmus.If{Reg: "a", Eq: true, Val: 1, Body: []litmus.Op{
					litmus.CAS{Loc: "X", Expect: 1, New: 2, Attr: amoAL},
				}},
			},
		},
	}
	out2 := litmus.Outcomes(p2, New())
	if out2.Contains("1:a=1", "X=1") {
		t.Fatal("Risotto-shaped MPQ must forbid a=1,X=1 on Arm")
	}
}
