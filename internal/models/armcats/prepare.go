package armcats

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// checker is the per-skeleton Armed-Cats consistency predicate.
//
// Of lob's components, lws, aob, bob and most of dob are fixed by the
// skeleton (po, po|loc, fences, acquire/release flags, rmw, syntactic
// dependencies); only dob's (ctrl ∪ data);coi and (addr ∪ data);rfi terms
// vary with the candidate. The static union is computed once by running
// the exported builders on the skeleton's pseudo-execution (empty rf/co
// makes coi and rfi vanish, leaving exactly the static part of dob).
//
// The (external) axiom asks for acyclicity of rfe ∪ coe ∪ fre ∪ lob with
// lob = (lws ∪ dob ∪ aob ∪ bob)+. A union with a transitive closure is
// acyclic iff the union with the unclosed relation is — every closure edge
// expands to a path of base edges — so the checker skips the closure
// entirely. The exported Lob keeps closure semantics for direct callers.
type checker struct {
	p *memmodel.Prep
	// lobStatic = lws ∪ dob|static ∪ aob ∪ bob (unclosed).
	lobStatic *rel.Relation
	// ctrlData = ctrl ∪ data, addrData = addr ∪ data: the left factors of
	// dob's candidate-varying terms.
	ctrlData, addrData *rel.Relation
	// Per-candidate scratch.
	coi, rfi, comp *rel.Relation
}

// Prepare implements memmodel.PreparedModel.
func (m Model) Prepare(sk *memmodel.Skeleton) memmodel.Checker {
	p := memmodel.NewPrep(sk)
	x0 := sk.Exec0()
	return &checker{
		p:         p,
		lobStatic: rel.Union(Lws(x0), Dob(x0), Aob(x0), Bob(x0, m.variant)),
		ctrlData:  sk.Ctrl.Union(sk.Data),
		addrData:  sk.Addr.Union(sk.Data),
		coi:       p.Arena.Get(),
		rfi:       p.Arena.Get(),
		comp:      p.Arena.Get(),
	}
}

// Consistent implements memmodel.Checker.
func (c *checker) Consistent(x *memmodel.Execution) bool {
	d := c.p.Derive(x)
	if !c.p.SCPerLoc(x, d) || !c.p.Atomicity(d) {
		return false
	}
	// coi = co ∩ (po ∪ po⁻¹), rfi = rf ∩ (po ∪ po⁻¹).
	c.coi.CopyFrom(x.Co)
	c.coi.IntersectWith(c.p.PoSym)
	c.rfi.CopyFrom(x.Rf)
	c.rfi.IntersectWith(c.p.PoSym)

	s := c.p.Scratch()
	s.CopyFrom(c.lobStatic)
	c.comp.SeqOf(c.ctrlData, c.coi)
	s.UnionWith(c.comp)
	c.comp.SeqOf(c.addrData, c.rfi)
	s.UnionWith(c.comp)
	s.UnionWith(d.Rfe)
	s.UnionWith(d.Coe)
	s.UnionWith(d.Fre)
	return c.p.Arena.Acyclic(s)
}

// Release implements memmodel.ReleasableChecker. The checker's own arena
// relations go back first so the prep can recycle the whole arena.
func (c *checker) Release() {
	if c.p.Arena != nil {
		c.p.Arena.Put(c.coi)
		c.p.Arena.Put(c.rfi)
		c.p.Arena.Put(c.comp)
	}
	c.p.Release()
}
