// Package armcats implements the Armed-Cats axiomatic model of Arm
// concurrency (Alglave, Deacon, Grisenthwaite, Hacquard, Maranget [6]),
// in the form used by the Risotto paper's Figure 5.
//
// Consistency of an execution X requires:
//
//	(internal)  (po|loc ∪ rf ∪ co ∪ fr)+ irreflexive   — SC per location
//	(atomic)    rmw ∩ (fre ; coe) = ∅
//	(external)  ob irreflexive
//
// where
//
//	ob  ≜ (rfe ∪ coe ∪ fre ∪ lob)+
//	lob ≜ (lws ∪ dob ∪ aob ∪ bob)+
//	lws ≜ po|loc ; [W]                              — local write successor
//	aob ≜ rmw ∪ [codom(rmw)];lrs;[A ∪ Q]
//	dob ≜ addr ∪ data ∪ ctrl;[W] ∪ addr;po;[W]
//	      ∪ (ctrl ∪ data);coi ∪ (addr ∪ data);rfi
//	bob ≜ po;[F];po ∪ [R];po;[Fld];po ∪ [W];po;[Fst];po;[W]
//	      ∪ [L];po;[A] ∪ [A ∪ Q];po ∪ po;[L]
//	      ∪ ⟨amo rule⟩
//
// The ⟨amo rule⟩ is where Risotto found and fixed an error (§3.3, §5.2):
//
//   - Original model:  po;[A];amo;[L];po — a single-instruction acquire-
//     release RMW (casal) orders its po-predecessors with its po-successors
//     but not with its own accesses, so SBAL admits the x86-forbidden
//     outcome.
//   - Corrected model: po;[dom([A];amo;[L])] ∪ [codom([A];amo;[L])];po —
//     casal behaves like a full fence anchored at its own read and write.
//     This is the strengthening accepted upstream [39].
//
// Both variants are provided so the error is demonstrable.
package armcats

import (
	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Variant selects the amo rule in bob.
type Variant int

const (
	// Original is the pre-fix Armed-Cats model where casal fails to act
	// as a full barrier (admits SBAL's weak outcome).
	Original Variant = iota
	// Corrected is the strengthened model proposed by Risotto and
	// accepted into Armed-Cats.
	Corrected
)

// Model is the Armed-Cats consistency predicate.
type Model struct {
	variant Variant
}

// New returns the corrected Armed-Cats model (the one Risotto's mappings
// are verified against).
func New() Model { return Model{variant: Corrected} }

// NewVariant returns the model with an explicit amo-rule variant.
func NewVariant(v Variant) Model { return Model{variant: v} }

// Name implements memmodel.Model.
func (m Model) Name() string {
	if m.variant == Original {
		return "Arm-Cats(original)"
	}
	return "Arm-Cats"
}

func idSet(ids []int) *rel.Relation { return rel.Identity(ids) }

// acquires returns [A], acquirePCs [Q], releases [L].
func acquires(x *memmodel.Execution) *rel.Relation {
	return idSet(x.IDs(func(e memmodel.Event) bool { return e.Acq }))
}
func acquirePCs(x *memmodel.Execution) *rel.Relation {
	return idSet(x.IDs(func(e memmodel.Event) bool { return e.AcqPC }))
}
func releases(x *memmodel.Execution) *rel.Relation {
	return idSet(x.IDs(func(e memmodel.Event) bool { return e.Rel }))
}

// Amo returns the rmw edges contributed by single-instruction RMWs.
func Amo(x *memmodel.Execution) *rel.Relation {
	return x.Rmw.Filter(func(a, b int) bool {
		return x.Events[a].RMW == memmodel.RMWAmo
	})
}

// LxSx returns the rmw edges contributed by exclusive pairs.
func LxSx(x *memmodel.Execution) *rel.Relation {
	return x.Rmw.Filter(func(a, b int) bool {
		return x.Events[a].RMW == memmodel.RMWLxSx
	})
}

// Lws returns local write successor: po|loc ; [W].
func Lws(x *memmodel.Execution) *rel.Relation {
	return x.PoLoc().Seq(x.IdWrites())
}

// lrs is the local read successor: a write to the same-location po-later
// reads with no intervening same-location write ([W]; po|loc-without-
// intervening-W; [R]).
func lrs(x *memmodel.Execution) *rel.Relation {
	poloc := x.PoLoc()
	return poloc.Filter(func(w, r int) bool {
		if x.Events[w].Kind != memmodel.KindWrite || x.Events[r].Kind != memmodel.KindRead {
			return false
		}
		for _, e := range x.Events {
			if e.Kind == memmodel.KindWrite && poloc.Has(w, e.ID) && poloc.Has(e.ID, r) {
				return false
			}
		}
		return true
	})
}

// Aob returns atomic-ordered-before: rmw ∪ [codom(rmw)];lrs;[A ∪ Q].
func Aob(x *memmodel.Execution) *rel.Relation {
	aq := acquires(x).Union(acquirePCs(x))
	return x.Rmw.Union(idSet(x.Rmw.Codomain()).Seq(lrs(x)).Seq(aq))
}

// internalOf keeps the po-related (same-thread) edges of r.
func internalOf(x *memmodel.Execution, r *rel.Relation) *rel.Relation {
	return r.Filter(func(a, b int) bool {
		return x.Po.Has(a, b) || x.Po.Has(b, a)
	})
}

// Dob returns dependency-ordered-before.
func Dob(x *memmodel.Execution) *rel.Relation {
	coi := internalOf(x, x.Co)
	rfi := internalOf(x, x.Rf)
	w := x.IdWrites()
	return rel.Union(
		x.Addr,
		x.Data,
		x.Ctrl.Seq(w),
		x.Addr.Seq(x.Po).Seq(w),
		x.Ctrl.Union(x.Data).Seq(coi),
		x.Addr.Union(x.Data).Seq(rfi),
	)
}

// Bob returns barrier-ordered-before for the model's variant.
func Bob(x *memmodel.Execution, v Variant) *rel.Relation {
	po := x.Po
	r := x.IdReads()
	w := x.IdWrites()
	full := x.IdFences(memmodel.FenceDMBFF)
	ld := x.IdFences(memmodel.FenceDMBLD)
	st := x.IdFences(memmodel.FenceDMBST)
	a := acquires(x)
	q := acquirePCs(x)
	l := releases(x)

	bob := rel.Union(
		rel.Seq(po, full, po),
		rel.Seq(r, po, ld, po),
		rel.Seq(w, po, st, po, w),
		rel.Seq(l, po, a),
		a.Union(q).Seq(po),
		po.Seq(l),
	)

	// amo rule: [A];amo;[L] picks successful acquire-release amo pairs.
	aAmoL := rel.Seq(a, Amo(x), l)
	switch v {
	case Original:
		bob = bob.Union(rel.Seq(po, aAmoL, po))
	case Corrected:
		bob = bob.Union(
			po.Seq(idSet(aAmoL.Domain())),
			idSet(aAmoL.Codomain()).Seq(po),
		)
	}
	return bob
}

// Lob returns locally-ordered-before: (lws ∪ dob ∪ aob ∪ bob)+.
func (m Model) Lob(x *memmodel.Execution) *rel.Relation {
	return rel.Union(Lws(x), Dob(x), Aob(x), Bob(x, m.variant)).TransitiveClosure()
}

// Ob returns ordered-before: (rfe ∪ coe ∪ fre ∪ lob)+ (left unclosed; the
// axiom only needs acyclicity of the union).
func (m Model) Ob(x *memmodel.Execution) *rel.Relation {
	return rel.Union(x.Rfe(), x.Coe(), x.Fre(), m.Lob(x))
}

// Consistent implements memmodel.Model.
func (m Model) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity() && m.Ob(x).Acyclic()
}
