package litmus

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/models/x86tso"
)

// TestFaultShardPanicFallsBackToSerial injects a panic into a parallel
// worker shard and checks the enumeration degrades to the serial path: no
// error, and the result equals the reference serial set.
func TestFaultShardPanicFallsBackToSerial(t *testing.T) {
	for _, p := range []*Program{MP(), SBQ()} {
		m := x86tso.New()
		in := faults.NewInjector(1)
		in.Arm(faults.SiteLitmusShard, 1, faults.TrapWorkerPanic)

		out, err := Enumerate(p, m, WithWorkers(4), WithInjector(in))
		if err != nil {
			t.Fatalf("%s: fallback did not absorb injected panic: %v", p.Name, err)
		}
		if in.Count(faults.SiteLitmusShard) == 0 {
			t.Fatalf("%s: injection site never hit", p.Name)
		}
		assertSameOutcomes(t, p.Name, m.Name(), "degraded", Outcomes(p, m), out)
	}
}

// TestFaultShardPanicBecomesError checks the per-shard recover() directly:
// an injected panic must surface as a faults.TrapWorkerPanic naming the
// program, marked Injected, never as a live panic.
func TestFaultShardPanicBecomesError(t *testing.T) {
	p, m := MP(), x86tso.New()
	shards := buildShards(p, 4)
	in := faults.NewInjector(1)
	in.Arm(faults.SiteLitmusShard, 1, faults.TrapWorkerPanic)

	out, err := runShard(p, m, shards[0], 0, in)
	if out != nil || err == nil {
		t.Fatalf("runShard = %v, %v; want nil set and error", out, err)
	}
	tr, ok := faults.As(err)
	if !ok {
		t.Fatalf("error %v is not a trap", err)
	}
	if tr.Kind != faults.TrapWorkerPanic || !tr.Injected {
		t.Errorf("trap = %+v; want injected worker-panic", tr)
	}
}

// TestFaultShardPanicSerialPathSurfaces pins the unrecovered path: with
// -workers 1 the serial reference runs directly and there is no further
// fallback below it, so an injected shard fault must surface as a
// structured, injected trap instead of being silently absorbed.
func TestFaultShardPanicSerialPathSurfaces(t *testing.T) {
	p, m := MP(), x86tso.New()
	in := faults.NewInjector(1)
	in.Arm(faults.SiteLitmusShard, 1, faults.TrapWorkerPanic)

	out, err := Enumerate(p, m, WithWorkers(1), WithInjector(in))
	if err == nil {
		t.Fatalf("serial run absorbed the injected fault: %v", out)
	}
	tr, ok := faults.As(err)
	if !ok {
		t.Fatalf("error %v is not a trap", err)
	}
	if tr.Kind != faults.TrapWorkerPanic || !tr.Injected {
		t.Errorf("trap = %+v; want injected worker-panic", tr)
	}
}

// TestFaultCacheSurvivesInjectedPanic checks the memoization path: a first
// enumeration that needed the serial fallback must still populate the cache
// with the correct set (historically a panic inside once.Do left the entry
// done-but-nil), and later hits must return it.
func TestFaultCacheSurvivesInjectedPanic(t *testing.T) {
	p, m := SBQ(), x86tso.New()
	c := NewCache()
	in := faults.NewInjector(1)
	in.Arm(faults.SiteLitmusShard, 1, faults.TrapWorkerPanic)

	first, err := Enumerate(p, m, WithCache(c), WithWorkers(4), WithInjector(in))
	if err != nil {
		t.Fatalf("first enumeration: %v", err)
	}
	assertSameOutcomes(t, p.Name, m.Name(), "cache-first", Outcomes(p, m), first)

	again, err := Enumerate(p, m, WithCache(c), WithWorkers(4))
	if err != nil {
		t.Fatalf("cached re-read: %v", err)
	}
	if len(again) == 0 {
		t.Fatal("cache entry poisoned: empty set on re-read")
	}
	assertSameOutcomes(t, p.Name, m.Name(), "cache-again", first, again)
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}
