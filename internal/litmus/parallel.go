// Parallel candidate-execution enumeration.
//
// The search space of EnumerateCandidates factors into independent shards:
// the outer Cartesian product over per-thread skeletons (control path ×
// choice bits) partitions the space exactly, and within one skeleton the
// reads-from enumeration is a tree whose first levels partition it further.
// A shard is therefore (skeletonJob, rf prefix); two distinct shards can
// never produce the same candidate, and the union over all shards is the
// full space. Shards are fanned out to a bounded worker pool and the
// per-shard OutcomeSets are merged in shard order, so Enumerate is equal to
// the serial Outcomes for every worker count — set union is
// order-insensitive and consistency checks are pure functions of each
// candidate.

package litmus

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Options configures outcome computation; build it through the Option
// funcs passed to Enumerate.
type Options struct {
	// Workers bounds enumeration parallelism: 0 (or negative) uses
	// runtime.NumCPU(); 1 selects the serial enumeration path (useful when
	// debugging the enumerator itself).
	Workers int
	// Cache, when non-nil, memoizes outcome sets keyed by (program
	// fingerprint, model name). Sets returned through a cache are shared
	// between callers and must be treated as read-only.
	Cache *Cache
	// Inject, when non-nil, arms deterministic fault injection in the
	// parallel enumerator (faults.SiteLitmusShard fires inside a worker
	// shard, exercising the panic-capture and serial-fallback paths).
	Inject *faults.Injector
	// Obs, when non-nil, receives enumeration metrics and trace spans
	// under its "litmus" child scope. Nil disables instrumentation at the
	// cost of a pointer check.
	Obs *obs.Scope
}

func (o Options) workerCount() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// shardsPerWorker oversubscribes the shard list relative to the pool so that
// uneven shards (rf subtrees prune at very different depths) still balance.
const shardsPerWorker = 4

// outcomesSerial runs the reference serial enumerator with panic capture.
// The injector's shard site guards this path too, so a -workers 1 run can
// surface an unrecovered structured trap (there is no further fallback
// below the serial reference); one-shot plans already consumed by the
// sharded path do not re-fire on the fallback call.
func outcomesSerial(p *Program, m memmodel.Model, in *faults.Injector) (out OutcomeSet, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = faults.New(faults.TrapWorkerPanic,
				"litmus %q: serial enumeration panicked: %v", p.Name, r)
		}
	}()
	if t := in.Hit(faults.SiteLitmusShard); t != nil {
		return nil, t
	}
	return Outcomes(p, m), nil
}

// outcomesSharded fans the shard list out to a bounded worker pool. Each
// shard runs under its own recover(), so one faulty shard poisons only its
// slot; the first captured panic is reported after the pool drains.
func outcomesSharded(p *Program, m memmodel.Model, opt Options, workers int, sc *obs.Scope) (OutcomeSet, error) {
	shards := buildShards(p, workers*shardsPerWorker)
	if workers > len(shards) {
		workers = len(shards)
	}
	sc.Counter("shards").Add(uint64(len(shards)))

	// Workers claim shard indices from an atomic cursor; each writes only
	// its own results/errs slot, so the merge below needs no locking.
	results := make([]OutcomeSet, len(shards))
	errs := make([]error, len(shards))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				results[i], errs[i] = runShard(p, m, shards[i], i, opt.Inject)
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make(OutcomeSet)
	for _, r := range results {
		for o := range r {
			merged[o] = true
		}
	}
	return merged, nil
}

// runShard enumerates one shard, converting a panic (including injected
// ones) into a faults.TrapWorkerPanic that names the program and shard.
func runShard(p *Program, m memmodel.Model, s shard, idx int, inj *faults.Injector) (out OutcomeSet, err error) {
	defer func() {
		if r := recover(); r != nil {
			t := faults.New(faults.TrapWorkerPanic,
				"litmus %q: worker shard %d panicked: %v", p.Name, idx, r)
			if tr, ok := r.(*faults.Trap); ok {
				t.Injected = tr.Injected
			}
			out, err = nil, t
		}
	}()
	if t := inj.Hit(faults.SiteLitmusShard); t != nil {
		panic(t)
	}
	// Each shard gets its own prepared checker: checkers carry reusable
	// scratch state and must not be shared across goroutines, but shards
	// over the same job still share the job's immutable skeleton. The
	// checker's arena returns to the shared pool when the shard finishes
	// (deferred so the panic path releases too).
	ck := memmodel.NewChecker(m, s.job.skel)
	defer memmodel.ReleaseChecker(ck)
	out = make(OutcomeSet)
	s.job.enumerate(s.rfPrefix, func(c *Candidate) bool {
		if ck.Consistent(c.X) {
			out[outcomeOf(c)] = true
		}
		return true
	})
	return out, nil
}

// shard is one independent slice of the candidate-execution search space:
// a fixed skeleton combination plus a fixed writer choice for the first
// len(rfPrefix) reads. The job pointer may be shared between shards; it is
// read-only during enumeration.
type shard struct {
	job      *skeletonJob
	rfPrefix []int
}

// buildShards partitions p's search space into at least target shards where
// possible. It starts from the skeleton combinations (the outer loop of
// EnumerateCandidates) and, while too coarse, refines every shard one rf
// level deeper:
// a shard with prefix length d splits into one child per candidate writer of
// read d. Programs whose space is genuinely smaller than target (few
// skeletons, few reads) yield fewer shards.
func buildShards(p *Program, target int) []shard {
	var shards []shard
	forEachJob(p, func(j *skeletonJob) bool {
		shards = append(shards, shard{job: j})
		return true
	})

	for len(shards) < target {
		refined := make([]shard, 0, len(shards))
		progress := false
		for _, s := range shards {
			d := len(s.rfPrefix)
			if d == len(s.job.reads) {
				refined = append(refined, s)
				continue
			}
			progress = true
			for _, w := range s.job.writersOf[s.job.events[s.job.reads[d]].Loc] {
				prefix := make([]int, d+1)
				copy(prefix, s.rfPrefix)
				prefix[d] = w
				refined = append(refined, shard{job: s.job, rfPrefix: prefix})
			}
		}
		shards = refined
		if !progress {
			break
		}
	}
	return shards
}
