package litmus

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden outcome files")

// goldenFileName maps a program name to its snapshot file, replacing
// characters that are awkward in filenames.
func goldenFileName(prog string) string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, prog)
	return filepath.Join("testdata", "golden", sanitized+".txt")
}

// goldenRender computes the canonical snapshot of one program: its sorted
// outcome set under each of the four models, in testModels order.
func goldenRender(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — admitted outcomes per model.\n", p.Name)
	fmt.Fprintf(&b, "# Regenerate: go test ./internal/litmus -run TestGoldenOutcomes -update\n")
	for _, m := range testModels() {
		fmt.Fprintf(&b, "\n[%s]\n", m.Name())
		for _, o := range Outcomes(p, m).Sorted() {
			fmt.Fprintln(&b, string(o))
		}
	}
	return b.String()
}

// TestGoldenOutcomes pins the exact outcome set of every corpus program
// under every model. Any enumerator or model refactor that silently changes
// admitted behaviours fails here; run with -update to bless intended changes.
func TestGoldenOutcomes(t *testing.T) {
	seen := make(map[string]string)
	for _, p := range testCorpus() {
		path := goldenFileName(p.Name)
		if prev, dup := seen[path]; dup {
			t.Fatalf("golden file collision: %q and %q both map to %s", prev, p.Name, path)
		}
		seen[path] = p.Name

		got := goldenRender(p)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: missing golden file (run with -update): %v", p.Name, err)
			continue
		}
		if string(want) != got {
			t.Errorf("%s: outcome set diverges from %s\n--- golden ---\n%s\n--- current ---\n%s",
				p.Name, path, want, got)
		}
	}
}
