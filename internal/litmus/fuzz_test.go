package litmus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusLitFiles returns every .lit file shipped as model test data, the
// natural seed corpus for the parser fuzzers.
func corpusLitFiles(t testing.TB) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.FromSlash("../models/*/testdata/*.lit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus .lit files found; did testdata move?")
	}
	return paths
}

// FuzzParse throws mutated litmus-test text at the parser. The property is
// total safety plus round-trip sanity: Parse never panics, and whenever it
// accepts an input, the resulting program is well-formed enough for the
// structural walkers (Locations, Fingerprint, skeleton construction) to run
// without panicking — the rest of the pipeline trusts parser output.
func FuzzParse(f *testing.F) {
	for _, path := range corpusLitFiles(f) {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Hand-picked seeds poking parser corners the corpus doesn't: nesting,
	// cas arrows, attribute stacking, comments, malformed directives.
	f.Add("test T\nthread 0\nif a == 1\nif b != 0\nstore X 1\nendif\nendif\nallow X=1")
	f.Add("test T\nthread 0\ncas X 0 1 -> r amo acq rel sc\nforbid r@0=1")
	f.Add("test T\nmodel arm\nthread 0\nloadidx a i X Y acqpc\nstoreidx i X Y 2 rel")
	f.Add("test T # trailing\nthread 0\n# full-line comment\nmov r 0x10\nstorereg X r sc")
	f.Add("thread 0\nstore X 1")
	f.Add("test T\nthread 1\nstore X 1")

	f.Fuzz(func(t *testing.T, src string) {
		pt, err := Parse(src)
		if err != nil {
			if pt != nil {
				t.Fatalf("Parse returned both a test and error %v", err)
			}
			return
		}
		if pt.Program.Name == "" {
			t.Fatal("accepted program has no name")
		}
		if len(pt.Program.Threads) == 0 {
			t.Fatal("accepted program has no threads")
		}
		// Structural walkers must handle anything the parser accepts.
		pt.Program.Locations()
		pt.Program.Fingerprint()
		for _, e := range pt.Expectations {
			if len(e.Fragments) == 0 {
				t.Fatal("accepted expectation with no fragments")
			}
			for _, frag := range e.Fragments {
				if frag == "" || strings.ContainsAny(frag, " \t\n") {
					t.Fatalf("fragment %q is not a single outcome token", frag)
				}
			}
		}
	})
}

// FuzzContainsToken checks the allocation-free token scanner against an
// obvious split-on-space reference on arbitrary inputs. (Outcome strings
// are space-joined, so the scanner deliberately treats only ' ' as a
// delimiter — strings.Fields would disagree on tabs/newlines.)
func FuzzContainsToken(f *testing.F) {
	f.Add("0:a=1 1:b=0 X=2", "1:b=0")
	f.Add("0:a=1 1:b=0", "b=0")
	f.Add("11:a=1", "1:a=1")
	f.Add("a=10", "a=1")
	f.Add("  a=1   b=2  ", "b=2")
	f.Add("", "")
	f.Add("a=1", "a=1 b=2")
	f.Fuzz(func(t *testing.T, s, tok string) {
		got := containsToken(s, tok)
		want := false
		if tok != "" && !strings.Contains(tok, " ") {
			for _, field := range strings.Split(s, " ") {
				if field == tok {
					want = true
					break
				}
			}
		}
		if got != want {
			t.Fatalf("containsToken(%q, %q) = %v, want %v", s, tok, got, want)
		}
	})
}

// TestFuzzSeedsParse pins that every corpus seed actually parses — the
// fuzzers above only require non-panic, so a silently broken corpus file
// would otherwise go unnoticed.
func TestFuzzSeedsParse(t *testing.T) {
	for _, path := range corpusLitFiles(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(string(src)); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
