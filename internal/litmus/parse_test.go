package litmus

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// x86 model stand-ins are not importable here (cycle), so parse tests use
// the permissive/coherent models plus structural assertions; model-level
// file tests live in internal/models/x86tso.

func TestParseMP(t *testing.T) {
	pt, err := Parse(`
test MP
thread 0
  store X 1
  store Y 1
thread 1
  load a Y
  load b X
forbid a@1=1 b@1=0
allow  a@1=1 b@1=1
`)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Program.Name != "MP" || len(pt.Program.Threads) != 2 {
		t.Fatalf("program: %+v", pt.Program)
	}
	if len(pt.Program.Threads[0]) != 2 || len(pt.Program.Threads[1]) != 2 {
		t.Fatalf("thread ops: %+v", pt.Program.Threads)
	}
	if len(pt.Expectations) != 2 || pt.Expectations[0].Allow || !pt.Expectations[1].Allow {
		t.Fatalf("expectations: %+v", pt.Expectations)
	}
	if pt.Expectations[0].Fragments[0] != "1:a=1" {
		t.Fatalf("fragment: %q", pt.Expectations[0].Fragments[0])
	}
	// Equivalent to the built-in MP: same outcome sets under coherence.
	got := Outcomes(pt.Program, coherentModel{})
	want := Outcomes(MP(), coherentModel{})
	if !got.SubsetOf(want) || !want.SubsetOf(got) {
		t.Fatalf("parsed MP differs from built-in:\n%v\nvs\n%v", got.Sorted(), want.Sorted())
	}
}

// TestParseModelDirectiveLevels: the `model` directive accepts every
// instruction level (not just the original three) and rejects unknown
// levels with the level list in the error.
func TestParseModelDirectiveLevels(t *testing.T) {
	for _, l := range memmodel.Levels() {
		pt, err := Parse("test T\nmodel " + string(l) + "\nthread 0\n  store X 1\n")
		if err != nil {
			t.Errorf("model %s: %v", l, err)
			continue
		}
		if pt.Model != string(l) {
			t.Errorf("model %s: parsed as %q", l, pt.Model)
		}
	}
	_, err := Parse("test T\nmodel vax\nthread 0\n  store X 1\n")
	if err == nil || !strings.Contains(err.Error(), `unknown model "vax"`) ||
		!strings.Contains(err.Error(), "sparc") {
		t.Errorf("unknown level error = %v", err)
	}
}

// TestParseMembarFences: the SPARC membar tokens round-trip through the
// parser into the directional fence kinds.
func TestParseMembarFences(t *testing.T) {
	pt, err := Parse(`
test MEMBARS
thread 0
  fence membarll
  fence membarls
  fence membarsl
  fence membarss
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []memmodel.Fence{memmodel.FenceMembarLL, memmodel.FenceMembarLS,
		memmodel.FenceMembarSL, memmodel.FenceMembarSS}
	for i, k := range want {
		if f := pt.Program.Threads[0][i].(Fence); f.K != k {
			t.Errorf("op %d = %v, want %v", i, f.K, k)
		}
	}
}

func TestParseAttributesAndCAS(t *testing.T) {
	pt, err := Parse(`
test SBAL-arm
thread 0
  cas X 0 1 amo acq rel
  load a Y acqpc
thread 1
  cas Y 0 1 -> old lxsx
  storereg Z old rel sc
  fence dmbff
forbid a@0=9
`)
	if err != nil {
		t.Fatal(err)
	}
	t0 := pt.Program.Threads[0]
	cas0 := t0[0].(CAS)
	if cas0.Class != memmodel.RMWAmo || !cas0.Acq || !cas0.Rel || cas0.Dst != "" {
		t.Fatalf("cas0: %+v", cas0)
	}
	ld := t0[1].(Load)
	if !ld.AcqPC || ld.Dst != "a" || ld.Loc != "Y" {
		t.Fatalf("load: %+v", ld)
	}
	t1 := pt.Program.Threads[1]
	cas1 := t1[0].(CAS)
	if cas1.Class != memmodel.RMWLxSx || cas1.Dst != "old" {
		t.Fatalf("cas1: %+v", cas1)
	}
	sr := t1[1].(StoreReg)
	if !sr.Rel || !sr.SC || sr.Src != "old" {
		t.Fatalf("storereg: %+v", sr)
	}
	f := t1[2].(Fence)
	if f.K != memmodel.FenceDMBFF {
		t.Fatalf("fence: %+v", f)
	}
}

func TestParseIfNesting(t *testing.T) {
	pt, err := Parse(`
test nested
thread 0
  store X 1
thread 1
  load a X
  if a == 1
    load b X
    if b != 0
      store Y 7
    endif
  endif
allow a@1=1 Y=7
allow a@1=0 Y=0
`)
	if err != nil {
		t.Fatal(err)
	}
	outer := pt.Program.Threads[1][1].(If)
	if outer.Reg != "a" || !outer.Eq || outer.Val != 1 || len(outer.Body) != 2 {
		t.Fatalf("outer if: %+v", outer)
	}
	inner := outer.Body[1].(If)
	if inner.Reg != "b" || inner.Eq || inner.Val != 0 {
		t.Fatalf("inner if: %+v", inner)
	}
	if fails := CheckExpectations(pt, coherentModel{}); len(fails) != 0 {
		t.Fatalf("expectations failed: %v", fails)
	}
}

func TestParseMovAndHexValues(t *testing.T) {
	pt, err := Parse(`
test movs
thread 0
  mov a 0x10
  storereg X a
allow X=16
`)
	if err != nil {
		t.Fatal(err)
	}
	if fails := CheckExpectations(pt, coherentModel{}); len(fails) != 0 {
		t.Fatalf("%v", fails)
	}
}

func TestCheckExpectationsFailures(t *testing.T) {
	pt, err := Parse(`
test wrong
thread 0
  store X 1
forbid X=1
allow X=9
`)
	if err != nil {
		t.Fatal(err)
	}
	fails := CheckExpectations(pt, coherentModel{})
	if len(fails) != 2 {
		t.Fatalf("expected both expectations to fail: %v", fails)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"thread 0\n store X 1",               // missing test name
		"test t\nstore X 1",                  // statement outside thread
		"test t\nthread 1\n",                 // threads out of order
		"test t\nthread 0\n frobnicate",      // unknown statement
		"test t\nthread 0\n store X",         // missing operand
		"test t\nthread 0\n store X q",       // bad value
		"test t\nthread 0\n fence dmbxx",     // unknown fence
		"test t\nthread 0\n if a == 1",       // unterminated if
		"test t\nthread 0\n endif",           // endif without if
		"test t\nthread 0\n load a X\nallow", // empty expectation
		"test t\nthread 0\nallow a=b",        // bad expectation value
		"test t\nthread 0\nallow a@x=1",      // bad thread index
		"test t\nthread 0\nallow a1",         // missing '='
		"test t",                             // no threads
		"test t\nthread 0\n cas X 0 1 -> ",   // malformed cas
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
