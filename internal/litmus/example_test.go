package litmus_test

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/models/armcats"
	"repro/internal/models/x86tso"
)

// ExampleOutcomes computes MP's outcome sets under the strong and weak
// models — the paper's §2.1 example, executable.
func ExampleOutcomes() {
	mp := litmus.MP()
	x86 := litmus.Outcomes(mp, x86tso.New())
	arm := litmus.Outcomes(mp, armcats.New())
	fmt.Println("x86 allows a=1,b=0:", x86.Contains("1:a=1", "1:b=0"))
	fmt.Println("Arm allows a=1,b=0:", arm.Contains("1:a=1", "1:b=0"))
	// Output:
	// x86 allows a=1,b=0: false
	// Arm allows a=1,b=0: true
}

// ExampleParse runs a text-format litmus test against a model.
func ExampleParse() {
	pt, err := litmus.Parse(`
test SB
thread 0
  store X 1
  load a Y
thread 1
  store Y 1
  load b X
allow a@0=0 b@1=0
`)
	if err != nil {
		panic(err)
	}
	failures := litmus.CheckExpectations(pt, x86tso.New())
	fmt.Println("expectation failures:", len(failures))
	// Output:
	// expectation failures: 0
}

// ExampleEnumerate counts MP's candidate executions.
func ExampleEnumerateCandidates() {
	n := 0
	litmus.EnumerateCandidates(litmus.MP(), func(c *litmus.Candidate) bool {
		n++
		return true
	})
	fmt.Println("candidates:", n)
	// Output:
	// candidates: 4
}
