package litmus

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/memmodel"
)

// Fingerprint returns a canonical structural rendering of p: two programs
// have the same fingerprint iff they have the same threads, ops, operands and
// attributes. The program name is deliberately excluded — outcome sets depend
// only on structure, and keying caches by name would make two distinct
// programs that happen to share a name collide.
func (p *Program) Fingerprint() string {
	var b strings.Builder
	for t, ops := range p.Threads {
		if t > 0 {
			b.WriteByte('|')
		}
		appendOpsFingerprint(&b, ops)
	}
	return b.String()
}

func appendOpsFingerprint(b *strings.Builder, ops []Op) {
	for i, op := range ops {
		if i > 0 {
			b.WriteByte(';')
		}
		switch o := op.(type) {
		case Store:
			fmt.Fprintf(b, "st(%s,%d,%s)", o.Loc, o.Val, attrFingerprint(o.Attr))
		case StoreReg:
			fmt.Fprintf(b, "str(%s,%s,%s)", o.Loc, o.Src, attrFingerprint(o.Attr))
		case Load:
			fmt.Fprintf(b, "ld(%s,%s,%s)", o.Dst, o.Loc, attrFingerprint(o.Attr))
		case LoadIdx:
			fmt.Fprintf(b, "ldi(%s,%s,%s,%s,%s)", o.Dst, o.Idx, o.Loc0, o.Loc1, attrFingerprint(o.Attr))
		case StoreIdx:
			fmt.Fprintf(b, "sti(%s,%s,%s,%d,%s)", o.Idx, o.Loc0, o.Loc1, o.Val, attrFingerprint(o.Attr))
		case CAS:
			fmt.Fprintf(b, "cas(%s,%d,%d,%s,%s)", o.Loc, o.Expect, o.New, o.Dst, attrFingerprint(o.Attr))
		case Fence:
			fmt.Fprintf(b, "f(%d)", int(o.K))
		case MovImm:
			fmt.Fprintf(b, "mov(%s,%d)", o.Dst, o.Val)
		case If:
			fmt.Fprintf(b, "if(%s,%t,%d){", o.Reg, o.Eq, o.Val)
			appendOpsFingerprint(b, o.Body)
			b.WriteByte('}')
		default:
			fmt.Fprintf(b, "?%T", op)
		}
	}
}

func attrFingerprint(a Attr) string {
	var b [5]byte
	n := 0
	if a.Acq {
		b[n] = 'a'
		n++
	}
	if a.AcqPC {
		b[n] = 'q'
		n++
	}
	if a.Rel {
		b[n] = 'l'
		n++
	}
	if a.SC {
		b[n] = 's'
		n++
	}
	b[n] = byte('0' + int(a.Class))
	n++
	return string(b[:n])
}

// Cache memoizes outcome sets across repeated enumerations of the same
// program under the same model, as happens in Theorem-1 sweeps (the same
// source program is re-checked against several targets) and in operational
// soundness checks. It is safe for concurrent use: racing callers for one
// key block until the single enumeration finishes, so each (program, model)
// pair is enumerated at most once per cache.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	// onEnumerate, when non-nil, is invoked once per actual enumeration
	// (i.e. per cache miss), before the enumeration runs. Test hook.
	onEnumerate func(fingerprint, model string)
}

type cacheKey struct {
	prog  string // Program.Fingerprint()
	model string // memmodel.Model.Name()
}

type cacheEntry struct {
	once sync.Once
	out  OutcomeSet
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// DefaultCache is the process-wide outcome cache used by the mapping and
// opcheck packages and by litmusctl.
var DefaultCache = NewCache()

// outcomes is the memoizing path behind Enumerate(..., WithCache(c)). The
// body of the once.Do never panics (enumerate captures worker panics), so
// a failed first enumeration memoizes its error rather than silently
// marking the entry done with a nil set; racing callers for the same key
// all observe the same (set, error) pair. A call counts as a cache miss
// when it performed the enumeration itself and a hit otherwise — racing
// callers that block on the once are hits.
func (c *Cache) outcomes(p *Program, m memmodel.Model, opt Options) (OutcomeSet, error) {
	key := cacheKey{prog: p.Fingerprint(), model: m.Name()}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	enumerated := false
	e.once.Do(func() {
		enumerated = true
		if c.onEnumerate != nil {
			c.onEnumerate(key.prog, key.model)
		}
		uncached := opt
		uncached.Cache = nil
		e.out, e.err = enumerate(p, m, uncached)
	})
	sc := opt.Obs.Child("litmus")
	if enumerated {
		sc.Counter("cache.misses").Inc()
	} else {
		sc.Counter("cache.hits").Inc()
	}
	return e.out, e.err
}

// Len reports how many (program, model) pairs the cache holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
