package litmus

import "repro/internal/memmodel"

// This file collects the named litmus programs used throughout the Risotto
// paper, at each of the three levels (x86 guest, TCG IR, Arm host), plus
// the classic coherence/ordering family used to widen mapping verification.

// ---- x86-level programs (source programs of §2.1, §3.2, §3.3) ----------

// MP is the message-passing test of §2.1: the weak outcome a=1,b=0 is
// forbidden in x86 and allowed in (fenceless) Arm.
func MP() *Program {
	return &Program{
		Name: "MP",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "Y"}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// SB is store buffering: a=b=0 is allowed even in x86 (the one TSO
// relaxation), and must remain allowed after translation.
func SB() *Program {
	return &Program{
		Name: "SB",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Load{Dst: "a", Loc: "Y"}},
			{Store{Loc: "Y", Val: 1}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// SBFenced is SB with MFENCEs: a=b=0 becomes forbidden in x86.
func SBFenced() *Program {
	return &Program{
		Name: "SB+mfences",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Fence{K: memmodel.FenceMFENCE}, Load{Dst: "a", Loc: "Y"}},
			{Store{Loc: "Y", Val: 1}, Fence{K: memmodel.FenceMFENCE}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// LB is load buffering: a=b=1 is forbidden in x86 (loads are not reordered
// with later stores).
func LB() *Program {
	return &Program{
		Name: "LB",
		Threads: [][]Op{
			{Load{Dst: "a", Loc: "X"}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "b", Loc: "Y"}, Store{Loc: "X", Val: 1}},
		},
	}
}

// S: W-W on one side against R-then-same-loc-W; a=1 ∧ final X=2 forbidden
// in x86.
func S() *Program {
	return &Program{
		Name: "S",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 2}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "Y"}, Store{Loc: "X", Val: 1}},
		},
	}
}

// R: two writers racing with a read. The weak outcome X=1∧Y=2∧a=0 is
// allowed in plain x86 (the W→R pair in T1 is the TSO relaxation).
func R() *Program {
	return &Program{
		Name: "R",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
			{Store{Loc: "Y", Val: 2}, Load{Dst: "a", Loc: "X"}},
		},
	}
}

// RFenced is R with an MFENCE in the second thread, which forbids the weak
// outcome in x86.
func RFenced() *Program {
	return &Program{
		Name: "R+mfence",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
			{Store{Loc: "Y", Val: 2}, Fence{K: memmodel.FenceMFENCE}, Load{Dst: "a", Loc: "X"}},
		},
	}
}

// TwoPlusTwoW is 2+2W: final X=1 ∧ Y=1 forbidden in x86.
func TwoPlusTwoW() *Program {
	return &Program{
		Name: "2+2W",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 2}},
			{Store{Loc: "Y", Val: 1}, Store{Loc: "X", Val: 2}},
		},
	}
}

// CoRR checks read-read coherence: one thread writes X=1, the other reads
// X twice; a=1,b=0 forbidden everywhere (SC per location).
func CoRR() *Program {
	return &Program{
		Name: "CoRR",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// CoWW checks write-write coherence within a thread.
func CoWW() *Program {
	return &Program{
		Name: "CoWW",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "X", Val: 2}},
			{Load{Dst: "a", Loc: "X"}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// CoWR checks a thread reads its own most recent write.
func CoWR() *Program {
	return &Program{
		Name: "CoWR",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Load{Dst: "a", Loc: "X"}},
			{Store{Loc: "X", Val: 2}},
		},
	}
}

// MPAddr is message passing with an address dependency in the reader: the
// second load's location is selected by the first load's value. On Arm the
// dependency orders the loads (dob), so the weak outcome is forbidden even
// without reader-side fences; the TCG IR model ignores dependencies
// entirely (§5.3), so at the IR level only fences can restore the order.
func MPAddr() *Program {
	return &Program{
		Name: "MP+addr",
		Threads: [][]Op{
			{
				Store{Loc: "X0", Val: 1},
				Fence{K: memmodel.FenceDMBST},
				Store{Loc: "Y", Val: 1},
			},
			{
				Load{Dst: "a", Loc: "Y"},
				// Both index selections hit X0 — a *false* address
				// dependency, the classic eor-based idiom: the value
				// cannot change the address, but the syntactic dependency
				// still orders the access on Arm.
				LoadIdx{Dst: "b", Idx: "a", Loc0: "X0", Loc1: "X0"},
			},
		},
	}
}

// LBAddr is load buffering with (false) address dependencies into the
// stores on both sides — forbidden on Arm via dob's addr rule, yet allowed
// by the TCG IR model, which orders nothing through dependencies.
func LBAddr() *Program {
	return &Program{
		Name: "LB+addrs",
		Threads: [][]Op{
			{
				Load{Dst: "a", Loc: "X"},
				StoreIdx{Idx: "a", Loc0: "Y", Loc1: "Y", Val: 1},
			},
			{
				Load{Dst: "b", Loc: "Y"},
				StoreIdx{Idx: "b", Loc0: "X", Loc1: "X", Val: 1},
			},
		},
	}
}

// IRIW is independent-reads-independent-writes: two writers, two readers
// observing them in opposite orders. Forbidden in x86; on Arm the plain
// version is allowed (reader-side load reordering) while DMB-fenced
// readers restore multi-copy-atomic agreement.
func IRIW() *Program {
	return &Program{
		Name: "IRIW",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Load{Dst: "b", Loc: "Y"}},
			{Load{Dst: "c", Loc: "Y"}, Load{Dst: "d", Loc: "X"}},
		},
	}
}

// IRIWFenced is IRIW with full fences between the readers' loads.
func IRIWFenced() *Program {
	return &Program{
		Name: "IRIW+dmbs",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Fence{K: memmodel.FenceDMBFF}, Load{Dst: "b", Loc: "Y"}},
			{Load{Dst: "c", Loc: "Y"}, Fence{K: memmodel.FenceDMBFF}, Load{Dst: "d", Loc: "X"}},
		},
	}
}

// WRC is write-to-read causality: x86 forbids a=1 ∧ b=1 ∧ c=0.
func WRC() *Program {
	return &Program{
		Name: "WRC",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "b", Loc: "Y"}, Load{Dst: "c", Loc: "X"}},
		},
	}
}

// ISA2 chains message passing across three threads: x86 forbids
// a=1 ∧ b=1 ∧ c=0.
func ISA2() *Program {
	return &Program{
		Name: "ISA2",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "Y"}, Store{Loc: "Z", Val: 1}},
			{Load{Dst: "b", Loc: "Z"}, Load{Dst: "c", Loc: "X"}},
		},
	}
}

// RWC is read-to-write causality: the weak outcome a=1 ∧ b=0 ∧ c=0 is
// allowed in plain x86 (T2's store-load pair is the TSO relaxation) and
// forbidden once T2 carries an MFENCE.
func RWC() *Program {
	return &Program{
		Name: "RWC",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Load{Dst: "b", Loc: "Y"}},
			{Store{Loc: "Y", Val: 1}, Load{Dst: "c", Loc: "X"}},
		},
	}
}

// RWCFenced is RWC with an MFENCE in the writing-then-reading thread.
func RWCFenced() *Program {
	return &Program{
		Name: "RWC+mfence",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}},
			{Load{Dst: "a", Loc: "X"}, Load{Dst: "b", Loc: "Y"}},
			{Store{Loc: "Y", Val: 1}, Fence{K: memmodel.FenceMFENCE}, Load{Dst: "c", Loc: "X"}},
		},
	}
}

// MPQ is §3.2's first error witness: in x86, a=1 implies the RMW sees X=1
// and updates it to 2, so a=1 ∧ X=1 is forbidden. QEMU's Arm translation
// with RMW1^AL admits it.
func MPQ() *Program {
	return &Program{
		Name: "MPQ",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
			{
				Load{Dst: "a", Loc: "Y"},
				If{Reg: "a", Eq: true, Val: 1, Body: []Op{
					CAS{Loc: "X", Expect: 1, New: 2, Attr: Attr{Class: memmodel.RMWAmo}},
				}},
			},
		},
	}
}

// SBQ is §3.2's second error witness: Z=U=1 ∧ a=b=0 is forbidden in x86
// (successful RMWs act as full fences) but allowed by QEMU's RMW2^AL
// translation.
func SBQ() *Program {
	return &Program{
		Name: "SBQ",
		Threads: [][]Op{
			{
				Store{Loc: "X", Val: 1},
				CAS{Loc: "Z", Expect: 0, New: 1, Attr: Attr{Class: memmodel.RMWAmo}},
				Load{Dst: "a", Loc: "Y"},
			},
			{
				Store{Loc: "Y", Val: 1},
				CAS{Loc: "U", Expect: 0, New: 1, Attr: Attr{Class: memmodel.RMWAmo}},
				Load{Dst: "b", Loc: "X"},
			},
		},
	}
}

// SBAL is §3.3's witness against the original Armed-Cats casal rule:
// X=Y=1 ∧ a=b=0 is forbidden in x86.
func SBAL() *Program {
	return &Program{
		Name: "SBAL",
		Threads: [][]Op{
			{
				CAS{Loc: "X", Expect: 0, New: 1, Attr: Attr{Class: memmodel.RMWAmo}},
				Load{Dst: "a", Loc: "Y"},
			},
			{
				CAS{Loc: "Y", Expect: 0, New: 1, Attr: Attr{Class: memmodel.RMWAmo}},
				Load{Dst: "b", Loc: "X"},
			},
		},
	}
}

// Fig9a is the left example of Figure 9 (IR-level): X=2; RMW(Y,0,1) vs
// Y=2; RMW(X,0,1); the outcome where both RMWs succeed (final X=Y=1) is
// forbidden in the IR model.
func Fig9a() *Program {
	return &Program{
		Name: "Fig9a",
		Threads: [][]Op{
			{
				Store{Loc: "X", Val: 2},
				CAS{Loc: "Y", Expect: 0, New: 1, Attr: Attr{SC: true, Class: memmodel.RMWAmo}},
			},
			{
				Store{Loc: "Y", Val: 2},
				CAS{Loc: "X", Expect: 0, New: 1, Attr: Attr{SC: true, Class: memmodel.RMWAmo}},
			},
		},
	}
}

// Fig9b is the right example of Figure 9 (IR-level): RMW(X,0,1); a=Y vs
// RMW(Y,0,1); b=X; a=b=0 is forbidden in the IR model.
func Fig9b() *Program {
	return &Program{
		Name: "Fig9b",
		Threads: [][]Op{
			{
				CAS{Loc: "X", Expect: 0, New: 1, Attr: Attr{SC: true, Class: memmodel.RMWAmo}},
				Load{Dst: "a", Loc: "Y"},
			},
			{
				CAS{Loc: "Y", Expect: 0, New: 1, Attr: Attr{SC: true, Class: memmodel.RMWAmo}},
				Load{Dst: "b", Loc: "X"},
			},
		},
	}
}

// ---- TCG IR-level programs (§5.4, Figure 8; §3.2 FMR) ------------------

// LBIR is LB-IR of Figure 8: trailing Frw fences after loads forbid
// a=b=1 in the IR model.
func LBIR() *Program {
	return &Program{
		Name: "LB-IR",
		Threads: [][]Op{
			{Load{Dst: "a", Loc: "X"}, Fence{K: memmodel.FenceFrw}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "b", Loc: "Y"}, Fence{K: memmodel.FenceFrw}, Store{Loc: "X", Val: 1}},
		},
	}
}

// MPIR is MP-IR of Figure 8: Fww before the second store and Frr after the
// first load forbid a=1,b=0 in the IR model.
func MPIR() *Program {
	return &Program{
		Name: "MP-IR",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Fence{K: memmodel.FenceFww}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "Y"}, Fence{K: memmodel.FenceFrr}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// FMRSource is the source program of §3.2's FMR example: the Fmr fence and
// the Frw fences establish orderings that forbid a=2 ∧ c=3.
func FMRSource() *Program {
	return &Program{
		Name: "FMR-src",
		Threads: [][]Op{
			{
				Store{Loc: "X", Val: 3},
				Fence{K: memmodel.FenceFmr},
				Store{Loc: "Y", Val: 2},
				Load{Dst: "a", Loc: "Y"},
				Fence{K: memmodel.FenceFrw},
				Store{Loc: "Z", Val: 2},
			},
			{
				Load{Dst: "z", Loc: "Z"},
				If{Reg: "z", Eq: true, Val: 2, Body: []Op{
					Fence{K: memmodel.FenceFrw},
					Store{Loc: "X", Val: 4},
					Load{Dst: "c", Loc: "X"},
				}},
			},
		},
	}
}

// FMRTarget is FMRSource after the RAW transformation (a = 2 replaces the
// load of Y): the transformation is incorrect in the presence of Fmr — the
// target admits a=2 ∧ c=3, which the source forbids.
func FMRTarget() *Program {
	return &Program{
		Name: "FMR-tgt",
		Threads: [][]Op{
			{
				Store{Loc: "X", Val: 3},
				Fence{K: memmodel.FenceFmr},
				Store{Loc: "Y", Val: 2},
				MovImm{Dst: "a", Val: 2},
				Fence{K: memmodel.FenceFrw},
				Store{Loc: "Z", Val: 2},
			},
			{
				Load{Dst: "z", Loc: "Z"},
				If{Reg: "z", Eq: true, Val: 2, Body: []Op{
					Fence{K: memmodel.FenceFrw},
					Store{Loc: "X", Val: 4},
					Load{Dst: "c", Loc: "X"},
				}},
			},
		},
	}
}

// ---- Arm-level programs (§3.3, Figure 3) --------------------------------

// SBALArm is Figure 3's intended Armed-Cats mapping of SBAL: casal
// (acquire-release amo) RMWs followed by LDAPR (Q) loads. Under the
// original model the weak outcome a=b=0 ∧ X=Y=1 is allowed; under the
// corrected model it is forbidden.
func SBALArm() *Program {
	amoAL := Attr{Acq: true, Rel: true, Class: memmodel.RMWAmo}
	q := Attr{AcqPC: true}
	return &Program{
		Name: "SBAL-arm",
		Threads: [][]Op{
			{
				CAS{Loc: "X", Expect: 0, New: 1, Attr: amoAL},
				Load{Dst: "a", Loc: "Y", Attr: q},
			},
			{
				CAS{Loc: "Y", Expect: 0, New: 1, Attr: amoAL},
				Load{Dst: "b", Loc: "X", Attr: q},
			},
		},
	}
}

// MPArm is plain MP at the Arm level (no fences): the weak outcome is
// allowed, demonstrating Arm's relative weakness.
func MPArm() *Program {
	p := MP()
	p.Name = "MP-arm"
	return p
}

// MPArmDMB is MP with DMBFF fences: the weak outcome is forbidden.
func MPArmDMB() *Program {
	return &Program{
		Name: "MP-arm+dmbs",
		Threads: [][]Op{
			{Store{Loc: "X", Val: 1}, Fence{K: memmodel.FenceDMBFF}, Store{Loc: "Y", Val: 1}},
			{Load{Dst: "a", Loc: "Y"}, Fence{K: memmodel.FenceDMBFF}, Load{Dst: "b", Loc: "X"}},
		},
	}
}

// X86Corpus returns the x86-level programs used for mapping verification.
func X86Corpus() []*Program {
	return []*Program{
		MP(), SB(), SBFenced(), LB(), S(), R(), RFenced(), TwoPlusTwoW(),
		CoRR(), CoWW(), CoWR(), MPQ(), SBQ(), SBAL(),
		IRIW(), WRC(), ISA2(), RWC(), RWCFenced(),
	}
}
