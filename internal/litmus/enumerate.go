// The canonical outcome-enumeration entrypoint. Earlier revisions grew
// three near-identical entrypoints (OutcomesParallel, OutcomesOpt,
// OutcomesChecked); Enumerate collapses them into one functional-options
// API, and the old names are gone.

package litmus

import (
	"repro/internal/faults"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// Option configures Enumerate.
type Option func(*Options)

// WithWorkers bounds enumeration parallelism: 0 (or negative) uses
// runtime.NumCPU(); 1 selects the serial reference path.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithCache memoizes outcome sets in c, keyed by (program fingerprint,
// model name). Sets returned through a cache are shared between callers
// and must be treated as read-only.
func WithCache(c *Cache) Option {
	return func(o *Options) { o.Cache = c }
}

// WithInjector arms deterministic fault injection in the parallel
// enumerator (faults.SiteLitmusShard fires inside a worker shard).
func WithInjector(in *faults.Injector) Option {
	return func(o *Options) { o.Inject = in }
}

// WithObs reports enumeration metrics (enumerations, shards dispatched,
// serial fallbacks, outcomes, cache hits/misses, wall time) and
// litmus.enumerate trace spans into the given scope's "litmus" child.
func WithObs(s *obs.Scope) Option {
	return func(o *Options) { o.Obs = s }
}

// Enumerate computes the set of outcomes of p admitted by model m. It is
// the canonical enumeration entrypoint: with no options it runs the
// parallel sharded enumerator on every CPU; WithWorkers(1) selects the
// serial reference path. A panic in any parallel worker shard is
// recovered into a faults.TrapWorkerPanic naming the program and shard,
// and the enumeration is retried once on the serial path (whose result
// is the definition of correctness for the parallel one); an error is
// returned only when the serial retry fails too.
func Enumerate(p *Program, m memmodel.Model, opts ...Option) (OutcomeSet, error) {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return enumerate(p, m, o)
}

// enumerate is the single shared implementation behind Enumerate and the
// deprecated Outcomes* wrappers.
func enumerate(p *Program, m memmodel.Model, o Options) (OutcomeSet, error) {
	if o.Cache != nil {
		return o.Cache.outcomes(p, m, o)
	}
	sc := o.Obs.Child("litmus")
	sc.Counter("enumerations").Inc()
	start := sc.Begin()

	out, err := enumerateUninstrumented(p, m, o, sc)

	dur := sc.Span("litmus.enumerate", p.Name, -1, 0, 0, start)
	sc.Histogram("enumerate_ns", obs.DurationBuckets).Observe(uint64(dur))
	sc.Counter("outcomes").Add(uint64(len(out)))
	return out, err
}

func enumerateUninstrumented(p *Program, m memmodel.Model, o Options, sc *obs.Scope) (OutcomeSet, error) {
	workers := o.workerCount()
	if workers == 1 {
		return outcomesSerial(p, m, o.Inject)
	}
	out, perr := outcomesSharded(p, m, o, workers, sc)
	if perr == nil {
		return out, nil
	}
	sc.Counter("serial_fallbacks").Inc()
	sc.Event("litmus.serial_fallback", p.Name, -1, 0, 0)
	out, serr := outcomesSerial(p, m, o.Inject)
	if serr != nil {
		t := faults.Wrap(faults.TrapWorkerPanic, serr,
			"litmus %q: parallel enumeration failed (%v) and serial fallback also failed",
			p.Name, perr)
		return nil, t
	}
	return out, nil
}
