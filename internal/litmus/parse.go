package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/memmodel"
)

// Text format for litmus tests, inspired by herd's .litmus files but
// line-based for easy authoring:
//
//	test MP
//	thread 0
//	  store X 1
//	  store Y 1
//	thread 1
//	  load a Y
//	  load b X
//	forbid a@1=1 b@1=0
//	allow  a@1=0 b@1=0
//
// Statements (one per line, '#' starts a comment):
//
//	store LOC VAL [rel] [sc]
//	storereg LOC REG [rel] [sc]
//	load REG LOC [acq] [acqpc] [sc]
//	loadidx REG IDXREG LOC0 LOC1   — address-dependent load (low bit of
//	                                 IDXREG selects the location)
//	storeidx IDXREG LOC0 LOC1 VAL  — address-dependent store
//	mov REG VAL
//	cas LOC EXPECT NEW [-> REG] [amo] [lxsx] [acq] [rel] [sc]
//	fence KIND          — mfence, frr…fsc, dmbff, dmbld, dmbst
//	if REG == VAL … endif     (also !=; nesting allowed)
//
// Expectations ('forbid'/'allow' lines) list conjuncts of the form
// REG@THREAD=VAL (final register value) or LOC=VAL (final memory value);
// CheckExpectations evaluates them against a model's outcome set.

// Expectation is one allow/forbid line.
type Expectation struct {
	// Allow is true for 'allow' lines (the outcome must be present) and
	// false for 'forbid' lines (it must be absent).
	Allow bool
	// Fragments are outcome tokens in the canonical "t:reg=v" / "loc=v"
	// form used by OutcomeSet.Contains.
	Fragments []string
}

// ParsedTest is a program plus its expectations.
type ParsedTest struct {
	Program      *Program
	Expectations []Expectation
	// Model optionally names the instruction level the expectations
	// target (a memmodel.Level string from a `model` directive); empty
	// means unspecified and callers decide.
	Model string
}

var fenceNamesByString = map[string]memmodel.Fence{
	"mfence": memmodel.FenceMFENCE,
	"frr":    memmodel.FenceFrr, "frw": memmodel.FenceFrw, "frm": memmodel.FenceFrm,
	"fww": memmodel.FenceFww, "fwr": memmodel.FenceFwr, "fwm": memmodel.FenceFwm,
	"fmr": memmodel.FenceFmr, "fmw": memmodel.FenceFmw, "fmm": memmodel.FenceFmm,
	"facq": memmodel.FenceFacq, "frel": memmodel.FenceFrel, "fsc": memmodel.FenceFsc,
	"dmbff": memmodel.FenceDMBFF, "dmbld": memmodel.FenceDMBLD, "dmbst": memmodel.FenceDMBST,
	"membarll": memmodel.FenceMembarLL, "membarls": memmodel.FenceMembarLS,
	"membarsl": memmodel.FenceMembarSL, "membarss": memmodel.FenceMembarSS,
}

// Parse reads a litmus test in the text format.
func Parse(src string) (*ParsedTest, error) {
	pt := &ParsedTest{Program: &Program{}}
	// Per-thread op stacks to support nested ifs: the innermost slice is
	// where ops are appended.
	var curThread int = -1
	type frame struct {
		ifOp If
	}
	var stack []frame
	// dest returns the op slice to append to.
	appendOp := func(op Op) error {
		if curThread < 0 {
			return fmt.Errorf("statement outside a thread")
		}
		if len(stack) > 0 {
			f := &stack[len(stack)-1]
			f.ifOp.Body = append(f.ifOp.Body, op)
			return nil
		}
		pt.Program.Threads[curThread] = append(pt.Program.Threads[curThread], op)
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("litmus: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		switch fields[0] {
		case "test":
			if len(fields) != 2 {
				return nil, errf("usage: test NAME")
			}
			pt.Program.Name = fields[1]
		case "model":
			if len(fields) != 2 {
				return nil, errf("usage: model LEVEL")
			}
			l, ok := memmodel.ParseLevel(fields[1])
			if !ok {
				return nil, errf("unknown model %q (want one of %s)",
					fields[1], strings.Join(levelNames(), ", "))
			}
			pt.Model = string(l)
		case "thread":
			if len(stack) > 0 {
				return nil, errf("unterminated if before new thread")
			}
			if len(fields) != 2 {
				return nil, errf("usage: thread N")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n != len(pt.Program.Threads) {
				return nil, errf("threads must be declared in order starting at 0")
			}
			pt.Program.Threads = append(pt.Program.Threads, nil)
			curThread = n
		case "store", "storereg", "load", "loadidx", "storeidx", "mov", "cas", "fence":
			op, err := parseStmt(fields)
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := appendOp(op); err != nil {
				return nil, errf("%v", err)
			}
		case "if":
			// if REG == VAL   |   if REG != VAL
			if len(fields) != 4 || (fields[2] != "==" && fields[2] != "!=") {
				return nil, errf("usage: if REG ==|!= VAL")
			}
			v, err := strconv.ParseInt(fields[3], 0, 64)
			if err != nil {
				return nil, errf("bad value %q", fields[3])
			}
			if curThread < 0 {
				return nil, errf("if outside a thread")
			}
			stack = append(stack, frame{ifOp: If{
				Reg: Reg(fields[1]), Eq: fields[2] == "==", Val: v,
			}})
		case "endif":
			if len(stack) == 0 {
				return nil, errf("endif without if")
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := appendOp(f.ifOp); err != nil {
				return nil, errf("%v", err)
			}
		case "allow", "forbid":
			exp := Expectation{Allow: fields[0] == "allow"}
			for _, tok := range fields[1:] {
				frag, err := parseFragment(tok)
				if err != nil {
					return nil, errf("%v", err)
				}
				exp.Fragments = append(exp.Fragments, frag)
			}
			if len(exp.Fragments) == 0 {
				return nil, errf("%s needs at least one condition", fields[0])
			}
			pt.Expectations = append(pt.Expectations, exp)
		default:
			return nil, errf("unknown statement %q", fields[0])
		}
	}
	if len(stack) > 0 {
		return nil, fmt.Errorf("litmus: unterminated if")
	}
	if pt.Program.Name == "" {
		return nil, fmt.Errorf("litmus: missing 'test NAME'")
	}
	if len(pt.Program.Threads) == 0 {
		return nil, fmt.Errorf("litmus: no threads")
	}
	return pt, nil
}

// parseStmt parses one op statement.
func parseStmt(fields []string) (Op, error) {
	attr, rest, err := parseAttrs(fields)
	if err != nil {
		return nil, err
	}
	switch rest[0] {
	case "store":
		if len(rest) != 3 {
			return nil, fmt.Errorf("usage: store LOC VAL [attrs]")
		}
		v, err := strconv.ParseInt(rest[2], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[2])
		}
		return Store{Loc: Loc(rest[1]), Val: v, Attr: attr}, nil
	case "storereg":
		if len(rest) != 3 {
			return nil, fmt.Errorf("usage: storereg LOC REG [attrs]")
		}
		return StoreReg{Loc: Loc(rest[1]), Src: Reg(rest[2]), Attr: attr}, nil
	case "load":
		if len(rest) != 3 {
			return nil, fmt.Errorf("usage: load REG LOC [attrs]")
		}
		return Load{Dst: Reg(rest[1]), Loc: Loc(rest[2]), Attr: attr}, nil
	case "loadidx":
		if len(rest) != 5 {
			return nil, fmt.Errorf("usage: loadidx REG IDXREG LOC0 LOC1 [attrs]")
		}
		return LoadIdx{Dst: Reg(rest[1]), Idx: Reg(rest[2]),
			Loc0: Loc(rest[3]), Loc1: Loc(rest[4]), Attr: attr}, nil
	case "storeidx":
		if len(rest) != 5 {
			return nil, fmt.Errorf("usage: storeidx IDXREG LOC0 LOC1 VAL [attrs]")
		}
		v, err := strconv.ParseInt(rest[4], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[4])
		}
		return StoreIdx{Idx: Reg(rest[1]), Loc0: Loc(rest[2]), Loc1: Loc(rest[3]),
			Val: v, Attr: attr}, nil
	case "mov":
		if len(rest) != 3 {
			return nil, fmt.Errorf("usage: mov REG VAL")
		}
		v, err := strconv.ParseInt(rest[2], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[2])
		}
		return MovImm{Dst: Reg(rest[1]), Val: v}, nil
	case "cas":
		// cas LOC EXPECT NEW [-> REG] [attrs]
		if len(rest) < 4 {
			return nil, fmt.Errorf("usage: cas LOC EXPECT NEW [-> REG] [attrs]")
		}
		exp, err1 := strconv.ParseInt(rest[2], 0, 64)
		nv, err2 := strconv.ParseInt(rest[3], 0, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad cas values")
		}
		op := CAS{Loc: Loc(rest[1]), Expect: exp, New: nv, Attr: attr}
		if op.Class == memmodel.RMWNone {
			op.Class = memmodel.RMWAmo
		}
		if len(rest) == 6 && rest[4] == "->" {
			op.Dst = Reg(rest[5])
		} else if len(rest) != 4 {
			return nil, fmt.Errorf("usage: cas LOC EXPECT NEW [-> REG] [attrs]")
		}
		return op, nil
	case "fence":
		if len(rest) != 2 {
			return nil, fmt.Errorf("usage: fence KIND")
		}
		k, ok := fenceNamesByString[strings.ToLower(rest[1])]
		if !ok {
			return nil, fmt.Errorf("unknown fence %q", rest[1])
		}
		return Fence{K: k}, nil
	}
	return nil, fmt.Errorf("unknown statement %q", rest[0])
}

// parseAttrs strips trailing attribute keywords and returns them plus the
// remaining fields.
func parseAttrs(fields []string) (Attr, []string, error) {
	var attr Attr
	end := len(fields)
	for end > 0 {
		switch strings.ToLower(fields[end-1]) {
		case "acq":
			attr.Acq = true
		case "acqpc":
			attr.AcqPC = true
		case "rel":
			attr.Rel = true
		case "sc":
			attr.SC = true
		case "amo":
			attr.Class = memmodel.RMWAmo
		case "lxsx":
			attr.Class = memmodel.RMWLxSx
		default:
			return attr, fields[:end], nil
		}
		end--
	}
	return attr, fields[:end], nil
}

// parseFragment converts "a@1=1" or "X=2" into the canonical outcome token.
func parseFragment(tok string) (string, error) {
	eq := strings.IndexByte(tok, '=')
	if eq < 0 {
		return "", fmt.Errorf("expectation %q lacks '='", tok)
	}
	lhs, rhs := tok[:eq], tok[eq+1:]
	if _, err := strconv.ParseInt(rhs, 0, 64); err != nil {
		return "", fmt.Errorf("bad expectation value %q", rhs)
	}
	if at := strings.IndexByte(lhs, '@'); at >= 0 {
		reg, thr := lhs[:at], lhs[at+1:]
		if _, err := strconv.Atoi(thr); err != nil {
			return "", fmt.Errorf("bad thread in %q", tok)
		}
		return fmt.Sprintf("%s:%s=%s", thr, reg, rhs), nil
	}
	return fmt.Sprintf("%s=%s", lhs, rhs), nil
}

// levelNames lists the accepted `model` directive values.
func levelNames() []string {
	var out []string
	for _, l := range memmodel.Levels() {
		out = append(out, string(l))
	}
	return out
}

// CheckExpectations evaluates a parsed test's expectations against a
// model, returning one failure message per violated expectation.
func CheckExpectations(pt *ParsedTest, m memmodel.Model) []string {
	out := Outcomes(pt.Program, m)
	var failures []string
	for _, e := range pt.Expectations {
		has := out.Contains(e.Fragments...)
		if e.Allow && !has {
			failures = append(failures,
				fmt.Sprintf("%s: expected ALLOWED outcome %v is absent under %s",
					pt.Program.Name, e.Fragments, m.Name()))
		}
		if !e.Allow && has {
			failures = append(failures,
				fmt.Sprintf("%s: FORBIDDEN outcome %v is present under %s",
					pt.Program.Name, e.Fragments, m.Name()))
		}
	}
	return failures
}
