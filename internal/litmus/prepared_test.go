package litmus

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/rel"
)

// TestPreparedMatchesPlain is the differential test for the prepared-checker
// fast path: for every corpus program under every model, outcome sets
// computed through per-skeleton prepared checkers (what Outcomes and the
// sharded enumerator use) must equal a from-scratch evaluation calling
// Model.Consistent on every candidate. This pins both the invariant/varying
// relation split and the checkers' closure-elision acyclicity rewrites.
func TestPreparedMatchesPlain(t *testing.T) {
	for _, p := range testCorpus() {
		for _, m := range testModels() {
			plain := make(OutcomeSet)
			EnumerateCandidates(p, func(c *Candidate) bool {
				if m.Consistent(c.X) {
					plain[outcomeOf(c)] = true
				}
				return true
			})
			assertSameOutcomes(t, p.Name, m.Name(), "prepared", plain, Outcomes(p, m))
		}
	}
}

// TestPreparedConsistentPerCandidate sharpens the outcome-set test to a
// per-candidate verdict comparison: the prepared checker must agree with the
// plain predicate on every single candidate, consistent or not (outcome sets
// alone could mask compensating disagreements).
func TestPreparedConsistentPerCandidate(t *testing.T) {
	for _, p := range testCorpus() {
		for _, m := range testModels() {
			forEachJob(p, func(j *skeletonJob) bool {
				ck := memmodel.NewChecker(m, j.skel)
				ok := true
				j.enumerate(nil, func(c *Candidate) bool {
					got, want := ck.Consistent(c.X), m.Consistent(c.X)
					if got != want {
						t.Errorf("%s under %s: prepared=%v plain=%v for\n%v",
							p.Name, m.Name(), got, want, c.X)
						ok = false
					}
					return ok
				})
				return ok
			})
		}
	}
}

// TestDepsMatchReplay checks the dependency-hoisting invariant buildDeps
// relies on: the structural data/addr/ctrl relations computed once per
// skeleton must equal the relations value replay would have extracted for
// every accepted candidate. A reference replay-based extraction is
// reconstructed here from each candidate's resolved execution by re-walking
// provenance with the candidate's values in hand.
func TestDepsMatchReplay(t *testing.T) {
	for _, p := range testCorpus() {
		EnumerateCandidates(p, func(c *Candidate) bool {
			// The shared relations on the candidate are the hoisted ones;
			// recompute deps independently per candidate and compare.
			data, addrRel, ctrl := replayDeps(p, c)
			for label, pair := range map[string][2]*rel.Relation{
				"data": {c.X.Data, data},
				"addr": {c.X.Addr, addrRel},
				"ctrl": {c.X.Ctrl, ctrl},
			} {
				if !pair[0].Equal(pair[1]) {
					t.Fatalf("%s: hoisted %s = %v, replay %s = %v\n%v",
						p.Name, label, pair[0], label, pair[1], c.X)
				}
			}
			return true
		})
	}
}

// replayDeps re-derives the dependency relations for one accepted candidate
// by simulating each thread against the candidate's final event values —
// the pre-hoist algorithm, kept here as the test oracle.
func replayDeps(p *Program, c *Candidate) (data, addrRel, ctrl *rel.Relation) {
	data, addrRel, ctrl = rel.New(), rel.New(), rel.New()
	x := c.X
	// Group the candidate's non-init events by thread, in ID (= po) order.
	byThread := map[int][]memmodel.Event{}
	for _, e := range x.Events {
		if !e.IsInit() {
			byThread[e.Thread] = append(byThread[e.Thread], e)
		}
	}
	for t, ops := range p.Threads {
		evs := byThread[t]
		pos := 0
		next := func() memmodel.Event {
			e := evs[pos]
			pos++
			return e
		}
		prov := map[Reg][]int{}
		regs := map[Reg]int64{}
		var ctrlSrcs []int
		addCtrl := func(id int) {
			for _, s := range ctrlSrcs {
				ctrl.Add(s, id)
			}
		}
		var walk func(ops []Op) bool
		walk = func(ops []Op) bool {
			for _, op := range ops {
				switch o := op.(type) {
				case Store:
					addCtrl(next().ID)
				case StoreReg:
					id := next().ID
					addCtrl(id)
					for _, s := range prov[o.Src] {
						data.Add(s, id)
					}
				case Load:
					e := next()
					addCtrl(e.ID)
					regs[o.Dst] = e.Val
					prov[o.Dst] = []int{e.ID}
				case LoadIdx:
					e := next()
					addCtrl(e.ID)
					for _, s := range prov[o.Idx] {
						addrRel.Add(s, e.ID)
					}
					regs[o.Dst] = e.Val
					prov[o.Dst] = []int{e.ID}
				case StoreIdx:
					id := next().ID
					addCtrl(id)
					for _, s := range prov[o.Idx] {
						addrRel.Add(s, id)
					}
				case CAS:
					e := next()
					addCtrl(e.ID)
					if o.Dst != "" {
						regs[o.Dst] = e.Val
						prov[o.Dst] = []int{e.ID}
					}
					if e.Val == o.Expect {
						addCtrl(next().ID) // the rmw write
					}
				case Fence:
					addCtrl(next().ID)
				case MovImm:
					regs[o.Dst] = o.Val
					prov[o.Dst] = nil
				case If:
					taken := (regs[o.Reg] == o.Val) == o.Eq
					ctrlSrcs = append(ctrlSrcs, prov[o.Reg]...)
					if taken {
						if !walk(o.Body) {
							return false
						}
					}
				}
			}
			return true
		}
		walk(ops)
	}
	return data, addrRel, ctrl
}
