package litmus

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// TestCacheEnumeratesOnce is the concurrency property test: N goroutines
// racing on the same (program, model) key all receive the identical outcome
// set, and the underlying enumeration runs exactly once.
func TestCacheEnumeratesOnce(t *testing.T) {
	c := NewCache()
	var enumerations atomic.Int32
	c.onEnumerate = func(_, _ string) { enumerations.Add(1) }

	p, m := SBQ(), x86tso.New()
	want := Outcomes(p, m).Sorted()

	const goroutines = 16
	results := make([]OutcomeSet, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // line everyone up on the same cold entry
			r, err := Enumerate(p, m, WithCache(c))
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	start.Done()
	done.Wait()

	if n := enumerations.Load(); n != 1 {
		t.Fatalf("cache enumerated %d times; want exactly 1", n)
	}
	for i, r := range results {
		fresh, err := Enumerate(p, m)
		if err != nil {
			t.Fatalf("fresh enumeration: %v", err)
		}
		assertSameOutcomes(t, p.Name, m.Name(), "cached", fresh, r)
		if len(r.Sorted()) != len(want) {
			t.Fatalf("goroutine %d: wrong outcome count", i)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries; want 1", c.Len())
	}
}

// TestCacheKeying checks that cache keys separate models and program
// structure — and that the program *name* plays no part, so a renamed
// structural twin hits, while a same-named different program misses.
func TestCacheKeying(t *testing.T) {
	c := NewCache()
	var enumerations atomic.Int32
	c.onEnumerate = func(_, _ string) { enumerations.Add(1) }

	mustEnumerate := func(p *Program, m memmodel.Model) OutcomeSet {
		t.Helper()
		out, err := Enumerate(p, m, WithCache(c))
		if err != nil {
			t.Fatalf("%s/%s: %v", p.Name, m.Name(), err)
		}
		return out
	}
	mp := MP()
	outX86 := mustEnumerate(mp, x86tso.New())
	outIR := mustEnumerate(mp, tcgmm.New())
	if enumerations.Load() != 2 {
		t.Fatalf("same program under two models must enumerate twice; got %d", enumerations.Load())
	}
	// MP's weak outcome separates the models, so colliding keys would be
	// observable, not just wasteful.
	if !outIR.Contains("1:a=1", "1:b=0") || outX86.Contains("1:a=1", "1:b=0") {
		t.Fatalf("model keying returned the wrong set: x86=%v ir=%v",
			outX86.Sorted(), outIR.Sorted())
	}

	// Same name, different structure: must be distinct entries.
	sbAlias := SB()
	sbAlias.Name = mp.Name
	outSB := mustEnumerate(sbAlias, x86tso.New())
	if enumerations.Load() != 3 {
		t.Fatalf("structurally different program with a shared name must miss; got %d enumerations",
			enumerations.Load())
	}
	if !outSB.Contains("0:a=0", "1:b=0") {
		t.Fatalf("cache returned MP's set for SB: %v", outSB.Sorted())
	}

	// Different name, same structure: must hit.
	mpTwin := MP()
	mpTwin.Name = "MP-renamed"
	mustEnumerate(mpTwin, x86tso.New())
	if enumerations.Load() != 3 {
		t.Fatalf("structural twin should hit the cache; got %d enumerations", enumerations.Load())
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries; want 3", c.Len())
	}
}

// TestFingerprintDistinguishesStructure spot-checks the fingerprint on
// details that matter to enumeration: values, attributes, fence kinds,
// conditional bodies.
func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := MP()
	if base.Fingerprint() != MP().Fingerprint() {
		t.Fatal("identical programs must share a fingerprint")
	}
	renamed := MP()
	renamed.Name = "other"
	if base.Fingerprint() != renamed.Fingerprint() {
		t.Fatal("fingerprint must ignore the program name")
	}
	distinct := []*Program{
		SB(), SBFenced(), MPQ(), SBAL(), SBALArm(), FMRSource(), FMRTarget(),
	}
	seen := map[string]string{base.Fingerprint(): base.Name}
	for _, p := range distinct {
		fp := p.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s and %s share fingerprint %q", prev, p.Name, fp)
		}
		seen[fp] = p.Name
	}
}

// TestDefaultCacheConsistency ensures the shared DefaultCache (used by the
// mapping and opcheck packages) serves sets equal to fresh enumeration.
func TestDefaultCacheConsistency(t *testing.T) {
	p, m := SBAL(), x86tso.New()
	got, err := Enumerate(p, m, WithCache(DefaultCache))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcomes(t, p.Name, m.Name(), "DefaultCache", Outcomes(p, m), got)
	// A second call must return the identical shared set.
	again, err := Enumerate(p, m, WithCache(DefaultCache))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got) {
		t.Fatal("repeated cached call diverged")
	}
}
