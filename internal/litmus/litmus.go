// Package litmus represents small concurrent programs (litmus tests) and
// exhaustively enumerates their candidate executions, so that axiomatic
// memory models (internal/models/*) can be evaluated on them.
//
// This machinery is the executable counterpart of the Risotto paper's Agda
// proofs: mapping correctness (Theorem 1 — every behaviour of the translated
// program is a behaviour of the source program) is checked by computing the
// full outcome sets of source and target programs under their respective
// models and testing containment, over a corpus that includes every example
// in the paper plus the classic litmus family.
//
// # Programs
//
// A program is a list of threads; each thread is a list of Ops: plain
// stores/loads (with optional Arm acquire/release/acquirePC or TCG SC
// attributes), compare-and-swap RMWs, fences, and if-conditionals over
// previously loaded registers. All shared locations are implicitly
// initialized to zero by per-location init writes.
//
// # Enumeration
//
// Candidate executions are produced by enumerating (1) each thread's
// control path through its conditionals, (2) success/failure of each RMW on
// the path, (3) a reads-from source for every read, and (4) a coherence
// order per location; then replaying each thread's register dataflow to a
// fixpoint to compute values, rejecting candidates whose branch decisions,
// RMW success bits, or read values are inconsistent. Dependency relations
// (data, ctrl, addr) are recorded during replay from load provenance.
//
// Candidates whose values would require cyclic (out-of-thin-air)
// justification are not generated; none of the models studied here admit
// them for the corpus used.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
	"repro/internal/rel"
)

// Reg names a thread-local register.
type Reg string

// Loc names a shared memory location.
type Loc string

// Attr carries the model-relevant access attributes.
type Attr struct {
	// Acq marks Arm acquire loads (LDAR/LDAXR and the read of casal).
	Acq bool
	// AcqPC marks Arm acquirePC loads (LDAPR).
	AcqPC bool
	// Rel marks Arm release stores (STLR/STLXR and the write of casal).
	Rel bool
	// SC marks TCG IR RMW accesses (Rsc/Wsc).
	SC bool
	// Class distinguishes Arm RMW families (amo vs lxsx) for CAS ops.
	Class memmodel.RMWClass
}

// Op is one statement of a litmus thread.
type Op interface{ isOp() }

// Store writes the constant Val to Loc.
type Store struct {
	Loc Loc
	Val int64
	Attr
}

// StoreReg writes the current value of Src to Loc (creating a data
// dependency from the loads that produced Src).
type StoreReg struct {
	Loc Loc
	Src Reg
	Attr
}

// Load reads Loc into Dst.
type Load struct {
	Dst Reg
	Loc Loc
	Attr
}

// LoadIdx reads into Dst from one of two locations selected by the low bit
// of Idx — Loc0 when even, Loc1 when odd — creating an *address dependency*
// from the loads that produced Idx (Arm's dob orders it; the TCG IR model
// does not).
type LoadIdx struct {
	Dst        Reg
	Idx        Reg
	Loc0, Loc1 Loc
	Attr
}

// StoreIdx stores the constant Val to Loc0/Loc1 selected by the low bit of
// Idx — an address dependency into a write.
type StoreIdx struct {
	Idx        Reg
	Loc0, Loc1 Loc
	Val        int64
	Attr
}

// CAS is a compare-and-swap RMW: atomically, if [Loc] == Expect then
// [Loc] = New. The value read is stored into Dst when Dst is non-empty.
// A successful CAS generates an rmw-related read/write pair; a failed CAS
// generates only the read (§2.4, §5.3).
type CAS struct {
	Loc    Loc
	Expect int64
	New    int64
	Dst    Reg
	Attr
}

// Fence emits a fence event of the given flavour.
type Fence struct {
	K memmodel.Fence
}

// MovImm sets Dst to a constant. It generates no event and clears the
// register's load provenance — which is exactly what a read-after-write
// or read-after-read elimination does to the eliminated load's destination,
// so transformation tests (FMR, Fig. 10) are expressed with it.
type MovImm struct {
	Dst Reg
	Val int64
}

// If executes Body only when the condition over Reg holds. The condition
// reads a previously loaded register, creating a control dependency from
// the loads that produced it to every later event of the thread.
type If struct {
	Reg  Reg
	Eq   bool // true: Reg == Val; false: Reg != Val
	Val  int64
	Body []Op
}

func (Store) isOp()    {}
func (StoreReg) isOp() {}
func (Load) isOp()     {}
func (LoadIdx) isOp()  {}
func (StoreIdx) isOp() {}
func (CAS) isOp()      {}
func (Fence) isOp()    {}
func (MovImm) isOp()   {}
func (If) isOp()       {}

// Program is a named litmus test.
type Program struct {
	Name    string
	Threads [][]Op
}

// Locations returns every shared location mentioned by the program, sorted.
func (p *Program) Locations() []Loc {
	seen := make(map[Loc]bool)
	var walk func(ops []Op)
	walk = func(ops []Op) {
		for _, op := range ops {
			switch o := op.(type) {
			case Store:
				seen[o.Loc] = true
			case StoreReg:
				seen[o.Loc] = true
			case Load:
				seen[o.Loc] = true
			case LoadIdx:
				seen[o.Loc0] = true
				seen[o.Loc1] = true
			case StoreIdx:
				seen[o.Loc0] = true
				seen[o.Loc1] = true
			case CAS:
				seen[o.Loc] = true
			case If:
				walk(o.Body)
			}
		}
	}
	for _, t := range p.Threads {
		walk(t)
	}
	locs := make([]Loc, 0, len(seen))
	for l := range seen {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// ---- Path linearization ----------------------------------------------

// linOp is one element of a linearized thread path: either a concrete op
// or a branch assumption that replay must validate.
type linOp struct {
	op     Op          // nil for assumptions
	assume *assumption // nil for ops
}

type assumption struct {
	reg Reg
	eq  bool
	val int64
}

// linearize enumerates all control paths of a thread.
func linearize(ops []Op) [][]linOp {
	paths := [][]linOp{nil}
	for _, op := range ops {
		ifOp, isIf := op.(If)
		if !isIf {
			for i := range paths {
				paths[i] = append(paths[i], linOp{op: op})
			}
			continue
		}
		bodyPaths := linearize(ifOp.Body)
		var next [][]linOp
		for _, p := range paths {
			// Taken branch(es).
			for _, bp := range bodyPaths {
				taken := make([]linOp, 0, len(p)+1+len(bp))
				taken = append(taken, p...)
				taken = append(taken, linOp{assume: &assumption{ifOp.Reg, ifOp.Eq, ifOp.Val}})
				taken = append(taken, bp...)
				next = append(next, taken)
			}
			// Not-taken branch.
			notTaken := make([]linOp, 0, len(p)+1)
			notTaken = append(notTaken, p...)
			notTaken = append(notTaken, linOp{assume: &assumption{ifOp.Reg, !ifOp.Eq, ifOp.Val}})
			next = append(next, notTaken)
		}
		paths = next
	}
	return paths
}

// countChoices returns how many binary choice points a path contains:
// each CAS contributes a success/failure bit, each LoadIdx/StoreIdx a
// location-selection bit.
func countChoices(path []linOp) int {
	n := 0
	for _, lo := range path {
		switch lo.op.(type) {
		case CAS, LoadIdx, StoreIdx:
			n++
		}
	}
	return n
}

// ---- Skeletons ---------------------------------------------------------

// skelEvent is an event before value resolution.
type skelEvent struct {
	ev memmodel.Event
	// source describes how the event's value is produced during replay.
	srcReg   Reg  // for StoreReg writes
	constVal bool // value already known (constant stores, CAS writes)
}

// threadSkel is one thread's event skeleton for a fixed path and fixed
// choice bits (CAS success, indexed-access location selection), consumed
// in path order.
type threadSkel struct {
	path []linOp
	bits []bool
}

// Candidate executions carry their final register files so outcomes can
// observe registers (the paper observes thread-local variables by
// augmenting with shared locations; recording registers is equivalent and
// keeps the graphs small).
type Candidate struct {
	X *memmodel.Execution
	// Regs[t][r] is thread t's final value of register r.
	Regs []map[Reg]int64
}

// EnumerateCandidates produces every well-formed candidate execution of
// p. fn is called for each; enumeration stops if fn returns false. (The
// name Enumerate belongs to the model-level outcome API in enumerate.go.)
func EnumerateCandidates(p *Program, fn func(*Candidate) bool) {
	forEachJob(p, func(j *skeletonJob) bool {
		return j.enumerate(nil, fn)
	})
}

// forEachJob builds the skeleton job for every skeleton combination (the
// Cartesian product of per-thread control paths × choice bits) and invokes
// fn on each, stopping early if fn returns false.
func forEachJob(p *Program, fn func(*skeletonJob) bool) {
	locs := p.Locations()
	perThread := skeletonsPerThread(p)

	choice := make([]int, len(p.Threads))
	var rec func(t int) bool
	rec = func(t int) bool {
		if t == len(p.Threads) {
			skels := make([]threadSkel, len(p.Threads))
			for i, c := range choice {
				skels[i] = perThread[i][c]
			}
			return fn(newSkeletonJob(locs, skels))
		}
		for i := range perThread[t] {
			choice[t] = i
			if !rec(t + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// skeletonsPerThread computes, per thread, every (path, choiceBits) skeleton.
func skeletonsPerThread(p *Program) [][]threadSkel {
	perThread := make([][]threadSkel, len(p.Threads))
	for t, ops := range p.Threads {
		for _, path := range linearize(ops) {
			n := countChoices(path)
			for mask := 0; mask < 1<<n; mask++ {
				bits := make([]bool, n)
				for i := 0; i < n; i++ {
					bits[i] = mask&(1<<i) != 0
				}
				perThread[t] = append(perThread[t], threadSkel{path, bits})
			}
		}
	}
	return perThread
}

// skeletonJob is the prepared event structure for one skeleton combination
// (fixed control paths and choice bits across all threads). It is immutable
// once built: enumerate may be called concurrently from several goroutines
// with disjoint rf prefixes, which is how Enumerate shards the search.
type skeletonJob struct {
	locs      []Loc
	skels     []threadSkel
	events    []memmodel.Event
	sev       []skelEvent
	po, rmw   *rel.Relation
	eventIDs  [][]int
	reads     []int
	writersOf map[string][]int
	// rfSlot[id] is the index into reads of read event id, -1 otherwise.
	rfSlot []int
	// data, addr, ctrl are the syntactic dependency relations. They are
	// structural: provenance tracking depends only on the fixed path and
	// choice bits, never on resolved values, so the relations are computed
	// once here instead of per candidate.
	data, addr, ctrl *rel.Relation
	// skel is the candidate-invariant part shared by every Execution this
	// job emits; prepared model checkers hoist per-skeleton work off it.
	skel *memmodel.Skeleton
}

// newSkeletonJob builds the event set for fixed paths/success bits and
// precomputes the read list and per-location writer candidates.
func newSkeletonJob(locs []Loc, skels []threadSkel) *skeletonJob {
	var events []memmodel.Event
	var sev []skelEvent
	po := rel.New()
	rmw := rel.New()

	addEvent := func(e memmodel.Event, src Reg, constVal bool) int {
		e.ID = len(events)
		events = append(events, e)
		sev = append(sev, skelEvent{ev: e, srcReg: src, constVal: constVal})
		return e.ID
	}

	// Init writes.
	initOf := make(map[Loc]int)
	for _, l := range locs {
		id := addEvent(memmodel.Event{
			Thread: memmodel.InitThread,
			Kind:   memmodel.KindWrite,
			Loc:    string(l),
			Val:    0,
		}, "", true)
		initOf[l] = id
	}

	// Thread events: eventIDs[t] lists thread t's events in program order.
	eventIDs := make([][]int, len(skels))
	for t, sk := range skels {
		choiceIdx := 0
		nextBit := func() bool {
			b := sk.bits[choiceIdx]
			choiceIdx++
			return b
		}
		var ids []int
		for _, lo := range sk.path {
			if lo.assume != nil {
				continue
			}
			switch o := lo.op.(type) {
			case Store:
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindWrite, Loc: string(o.Loc),
					Val: o.Val, Acq: o.Acq, AcqPC: o.AcqPC, Rel: o.Rel, SC: o.SC,
				}, "", true)
				ids = append(ids, id)
			case StoreReg:
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindWrite, Loc: string(o.Loc),
					Acq: o.Acq, AcqPC: o.AcqPC, Rel: o.Rel, SC: o.SC,
				}, o.Src, false)
				ids = append(ids, id)
			case Load:
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindRead, Loc: string(o.Loc),
					Acq: o.Acq, AcqPC: o.AcqPC, SC: o.SC,
				}, "", false)
				ids = append(ids, id)
			case LoadIdx:
				loc := o.Loc0
				if nextBit() {
					loc = o.Loc1
				}
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindRead, Loc: string(loc),
					Acq: o.Acq, AcqPC: o.AcqPC, SC: o.SC,
				}, "", false)
				ids = append(ids, id)
			case StoreIdx:
				loc := o.Loc0
				if nextBit() {
					loc = o.Loc1
				}
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindWrite, Loc: string(loc),
					Val: o.Val, Rel: o.Rel, SC: o.SC,
				}, "", true)
				ids = append(ids, id)
			case CAS:
				ok := nextBit()
				rid := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindRead, Loc: string(o.Loc),
					Acq: o.Acq, AcqPC: o.AcqPC, SC: o.SC, RMW: o.Class,
				}, "", false)
				ids = append(ids, rid)
				if ok {
					wid := addEvent(memmodel.Event{
						Thread: t, Kind: memmodel.KindWrite, Loc: string(o.Loc),
						Val: o.New, Rel: o.Rel, SC: o.SC, RMW: o.Class,
					}, "", true)
					ids = append(ids, wid)
					rmw.Add(rid, wid)
				}
			case Fence:
				id := addEvent(memmodel.Event{
					Thread: t, Kind: memmodel.KindFence, Fence: o.K,
				}, "", true)
				ids = append(ids, id)
			case MovImm:
				// No event.
			}
		}
		eventIDs[t] = ids
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				po.Add(ids[i], ids[j])
			}
		}
	}

	// Precompute rf enumeration inputs: the reads, and for each location the
	// candidate writers.
	reads := make([]int, 0)
	for _, e := range events {
		if e.Kind == memmodel.KindRead {
			reads = append(reads, e.ID)
		}
	}
	writersOf := make(map[string][]int)
	for _, e := range events {
		if e.Kind == memmodel.KindWrite {
			writersOf[e.Loc] = append(writersOf[e.Loc], e.ID)
		}
	}
	rfSlot := make([]int, len(events))
	for i := range rfSlot {
		rfSlot[i] = -1
	}
	for i, r := range reads {
		rfSlot[r] = i
	}

	data, addrRel, ctrl := buildDeps(skels, eventIDs)
	j := &skeletonJob{
		locs:      locs,
		skels:     skels,
		events:    events,
		sev:       sev,
		po:        po,
		rmw:       rmw,
		eventIDs:  eventIDs,
		reads:     reads,
		writersOf: writersOf,
		rfSlot:    rfSlot,
		data:      data,
		addr:      addrRel,
		ctrl:      ctrl,
	}
	j.skel = &memmodel.Skeleton{
		Events: events,
		Po:     po,
		Rmw:    rmw,
		Data:   data,
		Addr:   addrRel,
		Ctrl:   ctrl,
	}
	return j
}

// buildDeps extracts the data/addr/ctrl dependency relations by walking
// each thread's path tracking load provenance only — no values. Replay
// performs the identical provenance updates (MovImm clears, loads
// overwrite), so the dependency edges of every accepted candidate equal
// this structural set; see TestDepsMatchReplay.
func buildDeps(skels []threadSkel, eventIDs [][]int) (data, addrRel, ctrl *rel.Relation) {
	data, addrRel, ctrl = rel.New(), rel.New(), rel.New()
	for t := range skels {
		prov := make(map[Reg][]int)
		var ctrlSrcs []int
		choiceIdx := 0
		nextBit := func() bool {
			b := skels[t].bits[choiceIdx]
			choiceIdx++
			return b
		}
		evPos := 0
		nextEvent := func() int {
			id := eventIDs[t][evPos]
			evPos++
			return id
		}
		addCtrl := func(id int) {
			for _, s := range ctrlSrcs {
				ctrl.Add(s, id)
			}
		}
		for _, lo := range skels[t].path {
			if lo.assume != nil {
				ctrlSrcs = append(ctrlSrcs, prov[lo.assume.reg]...)
				continue
			}
			switch o := lo.op.(type) {
			case Store:
				addCtrl(nextEvent())
			case StoreReg:
				id := nextEvent()
				addCtrl(id)
				for _, s := range prov[o.Src] {
					data.Add(s, id)
				}
			case Load:
				id := nextEvent()
				addCtrl(id)
				prov[o.Dst] = []int{id}
			case LoadIdx:
				nextBit()
				id := nextEvent()
				addCtrl(id)
				for _, s := range prov[o.Idx] {
					addrRel.Add(s, id)
				}
				prov[o.Dst] = []int{id}
			case StoreIdx:
				nextBit()
				id := nextEvent()
				addCtrl(id)
				for _, s := range prov[o.Idx] {
					addrRel.Add(s, id)
				}
			case CAS:
				success := nextBit()
				rid := nextEvent()
				addCtrl(rid)
				if o.Dst != "" {
					prov[o.Dst] = []int{rid}
				}
				if success {
					addCtrl(nextEvent())
				}
			case Fence:
				addCtrl(nextEvent())
			case MovImm:
				prov[o.Dst] = nil
			}
		}
	}
	return data, addrRel, ctrl
}

// enumerate walks every rf assignment extending the fixed prefix (rfPrefix[i]
// is the chosen writer for reads[i]), then every coherence order, invoking fn
// per candidate. Returns false to stop the overall enumeration. Safe for
// concurrent use with disjoint prefixes: all job state is read-only here.
func (j *skeletonJob) enumerate(rfPrefix []int, fn func(*Candidate) bool) bool {
	rfChoice := make([]int, len(j.reads))
	copy(rfChoice, rfPrefix)
	var recRF func(i int) bool
	recRF = func(i int) bool {
		if i == len(j.reads) {
			return j.enumerateCO(rfChoice, fn)
		}
		for _, w := range j.writersOf[j.events[j.reads[i]].Loc] {
			rfChoice[i] = w
			if !recRF(i + 1) {
				return false
			}
		}
		return true
	}
	return recRF(len(rfPrefix))
}

// enumerateCO resolves values for the chosen rf, validates the candidate,
// then enumerates coherence orders. Dependency relations are not touched
// here: they are structural and already hoisted onto the job.
func (j *skeletonJob) enumerateCO(rfChoice []int, fn func(*Candidate) bool) bool {
	events, sev, skels := j.events, j.sev, j.skels
	eventIDs := j.eventIDs
	reads, locs := j.reads, j.locs

	rfOf := make([]int, len(events)) // read event ID -> writer event ID
	for i, r := range reads {
		rfOf[r] = rfChoice[i]
	}

	// Value resolution to fixpoint + validation.
	vals := make([]int64, len(events))
	known := make([]bool, len(events))
	nKnown := 0
	setKnown := func(id int, v int64) {
		vals[id] = v
		if !known[id] {
			known[id] = true
			nKnown++
		}
	}
	for _, se := range sev {
		if se.constVal {
			setKnown(se.ev.ID, se.ev.Val)
		}
	}

	type replayResult struct {
		ok       bool // assumptions/choice bits hold so far
		complete bool // all values resolved
		regs     map[Reg]int64
	}

	replayThread := func(t int) replayResult {
		res := replayResult{ok: true, complete: true, regs: make(map[Reg]int64)}
		prov := make(map[Reg][]int) // load provenance per register
		choiceIdx := 0
		nextBit := func() bool {
			b := skels[t].bits[choiceIdx]
			choiceIdx++
			return b
		}
		evPos := 0
		nextEvent := func() int {
			id := eventIDs[t][evPos]
			evPos++
			return id
		}
		for _, lo := range skels[t].path {
			if lo.assume != nil {
				a := lo.assume
				v, haveVal := res.regs[a.reg]
				srcsKnown := true
				for _, s := range prov[a.reg] {
					if !known[s] {
						srcsKnown = false
					}
				}
				if !haveVal || !srcsKnown {
					res.complete = false
					return res
				}
				if (v == a.val) != a.eq {
					res.ok = false
					return res
				}
				continue
			}
			switch o := lo.op.(type) {
			case Store:
				nextEvent()
			case StoreReg:
				id := nextEvent()
				v, haveVal := res.regs[o.Src]
				allKnown := haveVal
				for _, s := range prov[o.Src] {
					if !known[s] {
						allKnown = false
					}
				}
				if allKnown {
					setKnown(id, v)
				} else {
					res.complete = false
				}
			case Load:
				id := nextEvent()
				w := rfOf[id]
				if known[w] {
					setKnown(id, vals[w])
					res.regs[o.Dst] = vals[w]
				} else {
					res.complete = false
				}
				prov[o.Dst] = []int{id}
			case LoadIdx:
				chosen := nextBit()
				id := nextEvent()
				idxVal, haveIdx := res.regs[o.Idx]
				idxKnown := haveIdx
				for _, s := range prov[o.Idx] {
					if !known[s] {
						idxKnown = false
					}
				}
				if !idxKnown {
					res.complete = false
				} else if (idxVal&1 == 1) != chosen {
					res.ok = false
					return res
				}
				w := rfOf[id]
				if known[w] {
					setKnown(id, vals[w])
					res.regs[o.Dst] = vals[w]
				} else {
					res.complete = false
				}
				prov[o.Dst] = []int{id}
			case StoreIdx:
				chosen := nextBit()
				nextEvent()
				idxVal, haveIdx := res.regs[o.Idx]
				idxKnown := haveIdx
				for _, s := range prov[o.Idx] {
					if !known[s] {
						idxKnown = false
					}
				}
				if !idxKnown {
					res.complete = false
				} else if (idxVal&1 == 1) != chosen {
					res.ok = false
					return res
				}
			case CAS:
				success := nextBit()
				rid := nextEvent()
				w := rfOf[rid]
				if known[w] {
					setKnown(rid, vals[w])
					if (vals[w] == o.Expect) != success {
						res.ok = false
						return res
					}
					if o.Dst != "" {
						res.regs[o.Dst] = vals[w]
					}
				} else {
					res.complete = false
				}
				if o.Dst != "" {
					prov[o.Dst] = []int{rid}
				}
				if success {
					// Write value is the constant o.New, already known.
					nextEvent()
				}
			case Fence:
				nextEvent()
			case MovImm:
				res.regs[o.Dst] = o.Val
				prov[o.Dst] = nil
			}
		}
		return res
	}

	// Fixpoint: replay until value knowledge stabilizes.
	var results []replayResult
	for iter := 0; ; iter++ {
		results = results[:0]
		allOK, allComplete := true, true
		knownBefore := nKnown
		for t := range skels {
			r := replayThread(t)
			results = append(results, r)
			if !r.ok {
				allOK = false
			}
			if !r.complete {
				allComplete = false
			}
		}
		if !allOK {
			return true // inconsistent candidate; skip, continue enumeration
		}
		if allComplete {
			break
		}
		if nKnown == knownBefore {
			// Cyclic value dependency (thin air) — not generated.
			return true
		}
		if iter > len(events)+2 {
			return true
		}
	}

	// Materialize values into events.
	resolved := make([]memmodel.Event, len(events))
	copy(resolved, events)
	for id := range resolved {
		resolved[id].Val = vals[id]
	}

	// rf relation (value consistency holds by construction).
	rf := rel.NewSized(len(events))
	for i, r := range reads {
		rf.Add(rfChoice[i], r)
	}

	regs := make([]map[Reg]int64, len(results))
	for t, rr := range results {
		regs[t] = rr.regs
	}

	// co enumeration: per-location total orders over non-init writes with
	// the init write first.
	var locList []string
	for _, l := range locs {
		locList = append(locList, string(l))
	}
	perLocWriters := make(map[string][]int)
	initWriter := make(map[string]int)
	for _, e := range resolved {
		if e.Kind != memmodel.KindWrite {
			continue
		}
		if e.IsInit() {
			initWriter[e.Loc] = e.ID
		} else {
			perLocWriters[e.Loc] = append(perLocWriters[e.Loc], e.ID)
		}
	}

	co := rel.New()
	var recCO func(li int) bool
	recCO = func(li int) bool {
		if li == len(locList) {
			// Candidate-invariant relations are shared from the job; only
			// the events (values), rf and co are per-candidate.
			x := &memmodel.Execution{
				Events: resolved,
				Po:     j.po,
				Rf:     rf,
				Co:     co.Clone(),
				Rmw:    j.rmw,
				Data:   j.data,
				Addr:   j.addr,
				Ctrl:   j.ctrl,
			}
			return fn(&Candidate{X: x, Regs: regs})
		}
		loc := locList[li]
		ws := perLocWriters[loc]
		init := initWriter[loc]
		cont := true
		rel.TotalOrders(ws, func(order *rel.Relation) bool {
			saved := co
			co = co.Union(order)
			for _, w := range ws {
				co.Add(init, w)
			}
			cont = recCO(li + 1)
			co = saved
			return cont
		})
		return cont
	}
	return recCO(0)
}

// ---- Outcomes -----------------------------------------------------------

// Outcome is a canonical rendering of one observable result: final register
// values per thread followed by final memory values.
type Outcome string

// OutcomeOf renders a candidate's observable state: final register values
// per thread followed by final memory values. Exported so external
// packages (generator tests, differential harnesses) can compute outcome
// sets through EnumerateCandidates and compare them against Enumerate's.
func OutcomeOf(c *Candidate) Outcome { return outcomeOf(c) }

// outcomeOf renders a candidate's observable state.
func outcomeOf(c *Candidate) Outcome {
	var parts []string
	for t, regs := range c.Regs {
		keys := make([]string, 0, len(regs))
		for r := range regs {
			keys = append(keys, string(r))
		}
		sort.Strings(keys)
		for _, r := range keys {
			parts = append(parts, fmt.Sprintf("%d:%s=%d", t, r, regs[Reg(r)]))
		}
	}
	parts = append(parts, memmodel.BehavKey(c.X.Behav()))
	return Outcome(strings.Join(parts, " "))
}

// OutcomeSet is a set of observable outcomes.
type OutcomeSet map[Outcome]bool

// Outcomes computes the set of outcomes of p admitted by model m. Each
// skeleton job gets a model checker prepared once (hoisting the
// candidate-invariant relations) and reused across its whole rf×co
// product.
func Outcomes(p *Program, m memmodel.Model) OutcomeSet {
	out := make(OutcomeSet)
	forEachJob(p, func(j *skeletonJob) bool {
		ck := memmodel.NewChecker(m, j.skel)
		cont := j.enumerate(nil, func(c *Candidate) bool {
			if ck.Consistent(c.X) {
				out[outcomeOf(c)] = true
			}
			return true
		})
		memmodel.ReleaseChecker(ck)
		return cont
	})
	return out
}

// Contains reports whether s contains an outcome matching every given
// "t:reg=val" or "loc=val" fragment (all fragments must appear in the same
// outcome).
func (s OutcomeSet) Contains(fragments ...string) bool {
	for o := range s {
		all := true
		for _, f := range fragments {
			if !containsToken(string(o), f) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// containsToken reports whether tok occurs in s as a whole space-delimited
// token. Matching whole tokens (never substrings) is what keeps fragments
// like "1:a=1" from matching inside "11:a=1", or "a=1" inside "a=10". The
// scan is allocation-free: Contains sits on the hot path of expectation
// checking over full outcome sets.
func containsToken(s, tok string) bool {
	if tok == "" || strings.IndexByte(tok, ' ') >= 0 {
		// Outcome tokens are never empty and never contain spaces; a
		// fragment that does can only be a malformed query.
		return false
	}
	for i := 0; i < len(s); {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		start := i
		for i < len(s) && s[i] != ' ' {
			i++
		}
		if s[start:i] == tok {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every outcome of s is in t — the executable form
// of Theorem 1's behaviour containment.
func (s OutcomeSet) SubsetOf(t OutcomeSet) bool {
	for o := range s {
		if !t[o] {
			return false
		}
	}
	return true
}

// Minus returns outcomes in s but not in t (the "new behaviours" a broken
// mapping introduces).
func (s OutcomeSet) Minus(t OutcomeSet) []Outcome {
	var out []Outcome
	for o := range s {
		if !t[o] {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sorted returns the outcomes in deterministic order.
func (s OutcomeSet) Sorted() []Outcome {
	out := make([]Outcome, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
