package litmus

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/models/armcats"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

// testCorpus returns every named program of corpus.go, across all three
// levels (x86, TCG IR, Arm).
func testCorpus() []*Program {
	ps := X86Corpus()
	ps = append(ps,
		MPAddr(), LBAddr(), IRIWFenced(),
		Fig9a(), Fig9b(),
		LBIR(), MPIR(), FMRSource(), FMRTarget(),
		SBALArm(), MPArm(), MPArmDMB(),
	)
	return ps
}

// testModels returns the four models the differential and golden tests sweep:
// x86-TSO, the TCG IR model, and both Armed-Cats variants.
func testModels() []memmodel.Model {
	return []memmodel.Model{
		x86tso.New(),
		tcgmm.New(),
		armcats.New(),
		armcats.NewVariant(armcats.Original),
	}
}

func assertSameOutcomes(t *testing.T, prog, model, label string, want, got OutcomeSet) {
	t.Helper()
	ws, gs := want.Sorted(), got.Sorted()
	if len(ws) != len(gs) {
		t.Errorf("%s under %s: %s yields %d outcomes, serial %d",
			prog, model, label, len(gs), len(ws))
		return
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Errorf("%s under %s: %s outcome[%d] = %q, serial %q",
				prog, model, label, i, gs[i], ws[i])
			return
		}
	}
}

// TestParallelMatchesSerial is the differential equivalence test: for every
// corpus program under every model, the sharded parallel enumeration must
// produce exactly the serial outcome set, for several worker counts.
func TestParallelMatchesSerial(t *testing.T) {
	workerCounts := []int{0, 2, 3, 7}
	if testing.Short() {
		workerCounts = []int{0}
	}
	for _, p := range testCorpus() {
		for _, m := range testModels() {
			serial := Outcomes(p, m)
			for _, w := range workerCounts {
				par, err := Enumerate(p, m, WithWorkers(w))
				if err != nil {
					t.Fatalf("%s under %s: %v", p.Name, m.Name(), err)
				}
				assertSameOutcomes(t, p.Name, m.Name(),
					workersLabel(w), serial, par)
			}
		}
	}
}

func workersLabel(w int) string {
	if w <= 0 {
		return "parallel(NumCPU)"
	}
	return fmt.Sprintf("parallel(%d)", w)
}

// TestEnumerateDefault exercises the no-option entrypoint on a couple of
// representative programs.
func TestEnumerateDefault(t *testing.T) {
	for _, p := range []*Program{MPQ(), SBQ()} {
		for _, m := range testModels() {
			got, err := Enumerate(p, m)
			if err != nil {
				t.Fatalf("%s under %s: %v", p.Name, m.Name(), err)
			}
			assertSameOutcomes(t, p.Name, m.Name(), "Enumerate",
				Outcomes(p, m), got)
		}
	}
}

// TestBuildShardsPartition checks the sharding invariants directly: shards
// meet the requested target when the space is large enough, and enumerating
// every shard visits each candidate exactly once (counted against the serial
// enumerator).
func TestBuildShardsPartition(t *testing.T) {
	for _, p := range []*Program{MP(), SBQ(), MPQ(), IRIW()} {
		var serialCount int
		EnumerateCandidates(p, func(*Candidate) bool { serialCount++; return true })

		for _, target := range []int{1, 4, 16, 64} {
			shards := buildShards(p, target)
			if len(shards) == 0 {
				t.Fatalf("%s: no shards for target %d", p.Name, target)
			}
			var shardCount int
			for _, s := range shards {
				s.job.enumerate(s.rfPrefix, func(*Candidate) bool {
					shardCount++
					return true
				})
			}
			if shardCount != serialCount {
				t.Errorf("%s target %d: shards visit %d candidates, serial %d",
					p.Name, target, shardCount, serialCount)
			}
		}
	}
}

// TestShardTargetReached checks refinement actually multiplies shards for a
// program with a non-trivial rf tree.
func TestShardTargetReached(t *testing.T) {
	target := 4 * runtime.NumCPU() * shardsPerWorker
	shards := buildShards(SBQ(), target)
	if len(shards) < 2 {
		t.Fatalf("SBQ refined into %d shards; expected several", len(shards))
	}
	// SBQ: 2 CAS bits → 4 skeleton combos, and 6 reads below each; the
	// refinement loop must beat the skeleton-only count once target exceeds
	// it.
	if len(shards) <= 4 {
		t.Errorf("refinement did not split below skeleton level: %d shards", len(shards))
	}
}
