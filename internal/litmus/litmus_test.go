package litmus

import (
	"testing"

	"repro/internal/memmodel"
)

// scAll is a maximally permissive model: every well-formed candidate that
// satisfies per-location coherence is consistent. Handy for testing the
// enumerator itself.
type anyModel struct{}

func (anyModel) Name() string                          { return "any" }
func (anyModel) Consistent(x *memmodel.Execution) bool { return true }

// coherentModel only requires SC-per-location and atomicity.
type coherentModel struct{}

func (coherentModel) Name() string { return "coherent" }
func (coherentModel) Consistent(x *memmodel.Execution) bool {
	return x.SCPerLoc() && x.Atomicity()
}

func countCandidates(p *Program) int {
	n := 0
	EnumerateCandidates(p, func(*Candidate) bool { n++; return true })
	return n
}

func TestSingleThreadSingleStore(t *testing.T) {
	p := &Program{Name: "w", Threads: [][]Op{{Store{Loc: "X", Val: 1}}}}
	if n := countCandidates(p); n != 1 {
		t.Fatalf("one store: %d candidates, want 1", n)
	}
	out := Outcomes(p, anyModel{})
	if !out.Contains("X=1") || len(out) != 1 {
		t.Fatalf("outcomes: %v", out.Sorted())
	}
}

func TestSingleLoadReadsInit(t *testing.T) {
	p := &Program{Name: "r", Threads: [][]Op{{Load{Dst: "a", Loc: "X"}}}}
	out := Outcomes(p, anyModel{})
	if !out.Contains("0:a=0") || len(out) != 1 {
		t.Fatalf("load from init: %v", out.Sorted())
	}
}

func TestMPEnumeration(t *testing.T) {
	// MP: 2 reads × 2 writers each = 4 rf combos; 1 co order per loc.
	if n := countCandidates(MP()); n != 4 {
		t.Fatalf("MP candidates = %d, want 4", n)
	}
	// Under the anything-goes model all 4 outcomes appear.
	out := Outcomes(MP(), anyModel{})
	if len(out) != 4 {
		t.Fatalf("MP outcomes = %d, want 4: %v", len(out), out.Sorted())
	}
}

func TestCoEnumeration(t *testing.T) {
	// Two writers to one location: 2 coherence orders.
	p := &Program{Name: "ww", Threads: [][]Op{
		{Store{Loc: "X", Val: 1}},
		{Store{Loc: "X", Val: 2}},
	}}
	if n := countCandidates(p); n != 2 {
		t.Fatalf("2 writers: %d candidates, want 2", n)
	}
	out := Outcomes(p, anyModel{})
	if !out.Contains("X=1") || !out.Contains("X=2") {
		t.Fatalf("both final values expected: %v", out.Sorted())
	}
}

func TestIfBothPathsEnumerated(t *testing.T) {
	p := &Program{Name: "if", Threads: [][]Op{
		{Store{Loc: "X", Val: 1}},
		{
			Load{Dst: "a", Loc: "X"},
			If{Reg: "a", Eq: true, Val: 1, Body: []Op{Store{Loc: "Y", Val: 1}}},
		},
	}}
	out := Outcomes(p, coherentModel{})
	if !out.Contains("1:a=1", "Y=1") {
		t.Fatal("taken path missing")
	}
	if !out.Contains("1:a=0", "Y=0") {
		t.Fatal("not-taken path missing")
	}
	// Inconsistent combos must not appear.
	if out.Contains("1:a=0", "Y=1") || out.Contains("1:a=1", "Y=0") {
		t.Fatalf("branch decision inconsistent with value: %v", out.Sorted())
	}
}

func TestNestedIf(t *testing.T) {
	p := &Program{Name: "nested", Threads: [][]Op{
		{Store{Loc: "X", Val: 1}, Store{Loc: "Y", Val: 1}},
		{
			Load{Dst: "a", Loc: "X"},
			If{Reg: "a", Eq: true, Val: 1, Body: []Op{
				Load{Dst: "b", Loc: "Y"},
				If{Reg: "b", Eq: true, Val: 1, Body: []Op{
					Store{Loc: "Z", Val: 7},
				}},
			}},
		},
	}}
	out := Outcomes(p, coherentModel{})
	if !out.Contains("1:a=1", "1:b=1", "Z=7") {
		t.Fatal("doubly-taken path missing")
	}
	if !out.Contains("1:a=0", "Z=0") {
		t.Fatal("outer not-taken path missing")
	}
	if out.Contains("1:a=0", "Z=7") {
		t.Fatal("Z written on untaken path")
	}
}

func TestCASSuccessSemantics(t *testing.T) {
	p := &Program{Name: "cas", Threads: [][]Op{
		{CAS{Loc: "X", Expect: 0, New: 5, Dst: "old"}},
	}}
	out := Outcomes(p, coherentModel{})
	// Only writer besides the CAS is init(0): CAS must succeed.
	if !out.Contains("0:old=0", "X=5") || len(out) != 1 {
		t.Fatalf("lone CAS must succeed: %v", out.Sorted())
	}

	// CAS with wrong expectation always fails.
	p = &Program{Name: "casfail", Threads: [][]Op{
		{CAS{Loc: "X", Expect: 9, New: 5, Dst: "old"}},
	}}
	out = Outcomes(p, coherentModel{})
	if !out.Contains("0:old=0", "X=0") || len(out) != 1 {
		t.Fatalf("mismatched CAS must fail: %v", out.Sorted())
	}
}

func TestStoreRegDataFlow(t *testing.T) {
	p := &Program{Name: "flow", Threads: [][]Op{
		{Store{Loc: "X", Val: 3}},
		{Load{Dst: "a", Loc: "X"}, StoreReg{Loc: "Y", Src: "a"}},
	}}
	out := Outcomes(p, coherentModel{})
	if !out.Contains("1:a=3", "Y=3") {
		t.Fatal("register value must flow into store")
	}
	if !out.Contains("1:a=0", "Y=0") {
		t.Fatal("reading init must store 0")
	}
	if out.Contains("1:a=3", "Y=0") {
		t.Fatal("store value inconsistent with register")
	}
}

func TestMovImmClearsProvenance(t *testing.T) {
	p := &Program{Name: "mov", Threads: [][]Op{
		{MovImm{Dst: "a", Val: 42}, StoreReg{Loc: "X", Src: "a"}},
	}}
	out := Outcomes(p, coherentModel{})
	if !out.Contains("X=42") || len(out) != 1 {
		t.Fatalf("MovImm value must flow: %v", out.Sorted())
	}
	// No data dependency should be produced.
	EnumerateCandidates(p, func(c *Candidate) bool {
		if !c.X.Data.IsEmpty() {
			t.Fatal("MovImm must not create data dependencies")
		}
		return true
	})
}

func TestDependencyExtraction(t *testing.T) {
	p := &Program{Name: "deps", Threads: [][]Op{
		{
			Load{Dst: "a", Loc: "X"},
			StoreReg{Loc: "Y", Src: "a"},
			If{Reg: "a", Eq: true, Val: 0, Body: []Op{Store{Loc: "Z", Val: 1}}},
		},
	}}
	sawData, sawCtrl := false, false
	EnumerateCandidates(p, func(c *Candidate) bool {
		if !c.X.Data.IsEmpty() {
			sawData = true
		}
		if !c.X.Ctrl.IsEmpty() {
			sawCtrl = true
		}
		return true
	})
	if !sawData {
		t.Fatal("expected a data dependency from load to StoreReg")
	}
	if !sawCtrl {
		t.Fatal("expected a control dependency from load into branch body")
	}
}

func TestThinAirRejected(t *testing.T) {
	// LB with data deps both ways: values form a cycle; only init-reading
	// candidates are generated.
	p := &Program{Name: "oota", Threads: [][]Op{
		{Load{Dst: "a", Loc: "X"}, StoreReg{Loc: "Y", Src: "a"}},
		{Load{Dst: "b", Loc: "Y"}, StoreReg{Loc: "X", Src: "b"}},
	}}
	out := Outcomes(p, anyModel{})
	for o := range out {
		if containsToken(string(o), "0:a=1") || containsToken(string(o), "X=1") {
			t.Fatalf("thin-air value appeared: %v", o)
		}
	}
	if !out.Contains("0:a=0", "1:b=0") {
		t.Fatal("init-reading candidate missing")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	EnumerateCandidates(MP(), func(*Candidate) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop: n=%d, want 2", n)
	}
}

func TestOutcomeSetHelpers(t *testing.T) {
	a := OutcomeSet{"x": true, "y": true}
	b := OutcomeSet{"x": true, "y": true, "z": true}
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	d := b.Minus(a)
	if len(d) != 1 || d[0] != "z" {
		t.Fatalf("Minus wrong: %v", d)
	}
	if got := b.Sorted(); len(got) != 3 || got[0] != "x" {
		t.Fatalf("Sorted wrong: %v", got)
	}
}

func TestLocations(t *testing.T) {
	p := MPQ()
	locs := p.Locations()
	if len(locs) != 2 || locs[0] != "X" || locs[1] != "Y" {
		t.Fatalf("Locations = %v", locs)
	}
}

func TestFenceEventsGenerated(t *testing.T) {
	p := SBFenced()
	EnumerateCandidates(p, func(c *Candidate) bool {
		fences := c.X.Fences(memmodel.FenceMFENCE)
		if len(fences) != 2 {
			t.Fatalf("expected 2 MFENCE events, got %d", len(fences))
		}
		return false
	})
}
