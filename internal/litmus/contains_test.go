package litmus

import "testing"

// TestContainsTokenBoundaries pins token matching to whole space-delimited
// tokens: a fragment must never match as a substring of a longer token
// (prefix, suffix, or interior).
func TestContainsTokenBoundaries(t *testing.T) {
	cases := []struct {
		s, tok string
		want   bool
	}{
		// Exact whole-token hits at every position.
		{"1:a=1 X=2 Y=0", "1:a=1", true},
		{"1:a=1 X=2 Y=0", "X=2", true},
		{"1:a=1 X=2 Y=0", "Y=0", true},
		{"1:a=1", "1:a=1", true},

		// Thread-prefix boundary: "1:a=1" must not match inside "11:a=1".
		{"11:a=1 X=2", "1:a=1", false},
		{"1:a=1 X=2", "11:a=1", false},
		{"0:r11=1", "0:r1=1", false},

		// Value-suffix boundary: "a=1" must not match "a=10" (or vice versa).
		{"0:a=10 X=0", "0:a=1", false},
		{"0:a=1 X=0", "0:a=10", false},
		{"a=10", "a=1", false},
		{"a=1", "a=10", false},
		{"X=10 Y=1", "X=1", false},
		{"X=1 Y=10", "Y=1", false},

		// Location-name boundary.
		{"XY=1", "X=1", false},
		{"X=1", "XY=1", false},

		// Negative-looking values still match exactly.
		{"0:a=-1 X=0", "0:a=-1", true},
		{"0:a=-1 X=0", "0:a=1", false},

		// Fragments spanning a token boundary must not match even though
		// the substring occurs verbatim.
		{"0:a=1 X=2", "1 X", false},
		{"0:a=1 X=2", "0:a=1 X=2", false},

		// Degenerate inputs.
		{"", "X=1", false},
		{"X=1", "", false},
		{"  X=1  Y=2 ", "X=1", true},
		{"  X=1  Y=2 ", "Y=2", true},
	}
	for _, c := range cases {
		if got := containsToken(c.s, c.tok); got != c.want {
			t.Errorf("containsToken(%q, %q) = %v, want %v", c.s, c.tok, got, c.want)
		}
	}
}

// TestOutcomeSetContains exercises the set-level API over realistic outcome
// strings, including the multi-fragment conjunction semantics.
func TestOutcomeSetContains(t *testing.T) {
	s := OutcomeSet{
		"0:a=1 1:b=0 X=1 Y=1":   true,
		"0:a=10 1:b=1 X=1 Y=10": true,
	}
	if !s.Contains("0:a=1") || !s.Contains("0:a=10") {
		t.Fatal("whole-token lookups failed")
	}
	if s.Contains("0:a=") || s.Contains(":a=1") || s.Contains("b=0") {
		t.Fatal("partial tokens must not match")
	}
	// Conjunction must hold within a single outcome, not across outcomes.
	if !s.Contains("0:a=1", "1:b=0") {
		t.Fatal("fragments of the same outcome must match together")
	}
	if s.Contains("0:a=1", "1:b=1") {
		t.Fatal("fragments from different outcomes must not combine")
	}
	// Y=1 appears as a token only in the first outcome; Y=10 only in the
	// second — prefix confusion across the set would pass the wrong one.
	if !s.Contains("Y=1", "0:a=1") || s.Contains("Y=1", "0:a=10") {
		t.Fatal("value-suffix confusion across outcomes")
	}
	if s.Contains() != true {
		t.Fatal("empty fragment list matches any outcome of a non-empty set")
	}
	empty := OutcomeSet{}
	if empty.Contains() {
		t.Fatal("empty set contains nothing, even the empty conjunction")
	}
}
