package transcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

func testBlock(pc uint64, n int) *tcg.Block {
	b := tcg.NewBlock()
	b.GuestPC = pc
	b.GuestEnd = pc + uint64(4*n)
	for i := 0; i < n; i++ {
		b.MovI(b.Temp(), int64(i)*7)
	}
	b.Exit(b.GuestEnd)
	return b
}

func blocksEqual(a, b *tcg.Block) bool {
	if a.NumTemps != b.NumTemps || a.NumLabels != b.NumLabels ||
		a.GuestPC != b.GuestPC || a.GuestEnd != b.GuestEnd ||
		len(a.Insts) != len(b.Insts) {
		return false
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			return false
		}
	}
	return true
}

func TestStoreLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blk := testBlock(0x1000, 3)
	if err := c.Store("img-a", 0x1000, selfheal.TierFull, blk); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load("img-a", 0x1000, selfheal.TierFull)
	if !ok || !blocksEqual(got, blk) {
		t.Fatalf("Load = (%v, %v), want stored block", got, ok)
	}
	// Misses: wrong image, wrong pc, wrong tier.
	if _, ok := c.Load("img-b", 0x1000, selfheal.TierFull); ok {
		t.Fatal("hit on wrong image")
	}
	if _, ok := c.Load("img-a", 0x2000, selfheal.TierFull); ok {
		t.Fatal("hit on wrong pc")
	}
	if _, ok := c.Load("img-a", 0x1000, selfheal.TierNoOpt); ok {
		t.Fatal("hit on wrong tier")
	}
	// Load must return an independent copy.
	got.Insts[0].Imm = 999
	again, _ := c.Load("img-a", 0x1000, selfheal.TierFull)
	if again.Insts[0].Imm == 999 {
		t.Fatal("Load aliases cache-internal block")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenRecoversEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]*tcg.Block{}
	for pc := uint64(0x1000); pc < 0x1000+8*4; pc += 4 {
		blk := testBlock(pc, int(pc%5)+1)
		want[pc] = blk
		if err := c.Store("img", pc, selfheal.TierFull, blk); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	c2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.Loaded != len(want) || st.CorruptSkipped != 0 {
		t.Fatalf("reopen stats = %+v, want %d loaded, 0 corrupt", st, len(want))
	}
	for pc, blk := range want {
		got, ok := c2.Load("img", pc, selfheal.TierFull)
		if !ok || !blocksEqual(got, blk) {
			t.Fatalf("pc %#x: reopened entry mismatch", pc)
		}
	}
}

// TestCorruptEntrySkipped flips bytes inside a journaled entry: reopen
// must drop exactly that entry (checksum failure), keep the rest, and a
// Load of the dropped key must miss (degrade to retranslation).
func TestCorruptEntrySkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint64{0x1000, 0x2000, 0x3000} {
		if err := c.Store("img", pc, selfheal.TierFull, testBlock(pc, 4)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Flip bytes in the middle line (the 0x2000 entry) without touching
	// its framing: corrupt a digit inside the JSON body.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	mid := lines[1]
	idx := bytes.Index(mid, []byte(`"pc":8192`))
	if idx < 0 {
		t.Fatalf("middle line is not the 0x2000 entry: %s", mid)
	}
	// Change the PC value: checksum no longer matches.
	corrupted := bytes.Replace(mid, []byte(`"pc":8192`), []byte(`"pc":8193`), 1)
	lines[1] = corrupted
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	if st.Loaded != 2 {
		t.Fatalf("Loaded = %d, want 2", st.Loaded)
	}
	if _, ok := c2.Load("img", 0x2000, selfheal.TierFull); ok {
		t.Fatal("corrupted entry served from cache")
	}
	for _, pc := range []uint64{0x1000, 0x3000} {
		if _, ok := c2.Load("img", pc, selfheal.TierFull); !ok {
			t.Fatalf("intact entry %#x lost", pc)
		}
	}
	// The dropped entry can be re-stored (retranslation path).
	if err := c2.Store("img", 0x2000, selfheal.TierFull, testBlock(0x2000, 4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Load("img", 0x2000, selfheal.TierFull); !ok {
		t.Fatal("re-stored entry not served")
	}
}

// TestTornTailTruncated cuts the journal mid-line: reopen must drop the
// fragment, truncate the file, and appends must produce a parseable
// journal.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint64{0x1000, 0x2000} {
		if err := c.Store("img", pc, selfheal.TierFull, testBlock(pc, 4)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - len(raw)/4 // mid-final-line
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Loaded != 1 {
		t.Fatalf("Loaded = %d after tear, want 1", st.Loaded)
	}
	if err := c2.Store("img", 0x3000, selfheal.TierFull, testBlock(0x3000, 2)); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	c3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	st := c3.Stats()
	if st.Loaded != 2 || st.CorruptSkipped != 0 {
		t.Fatalf("final reopen stats = %+v, want 2 loaded, 0 corrupt", st)
	}
}

// TestInjectedCorruption arms SiteCacheCorrupt: the Nth store journals a
// bad checksum; reopen must skip exactly that entry.
func TestInjectedCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	inj := faults.NewInjector(1)
	inj.Arm(faults.SiteCacheCorrupt, 2, faults.TrapMiscompile)
	c, err := Open(path, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint64{0x1000, 0x2000, 0x3000} {
		if err := c.Store("img", pc, selfheal.TierFull, testBlock(pc, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// In-memory copies stay good even for the corrupted journal line.
	for _, pc := range []uint64{0x1000, 0x2000, 0x3000} {
		if _, ok := c.Load("img", pc, selfheal.TierFull); !ok {
			t.Fatalf("in-memory entry %#x lost to injection", pc)
		}
	}
	c.Close()

	c2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.CorruptSkipped != 1 || st.Loaded != 2 {
		t.Fatalf("stats after injected corruption = %+v, want 1 corrupt / 2 loaded", st)
	}
	if _, ok := c2.Load("img", 0x2000, selfheal.TierFull); ok {
		t.Fatal("injected-corrupt entry served after reopen")
	}
}

func TestDuplicateStoreIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := testBlock(0x1000, 3)
	if err := c.Store("img", 0x1000, selfheal.TierFull, first); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("img", 0x1000, selfheal.TierFull, testBlock(0x1000, 9)); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Load("img", 0x1000, selfheal.TierFull)
	if !blocksEqual(got, first) {
		t.Fatal("duplicate store replaced the original")
	}
	if st := c.Stats(); st.Stores != 1 {
		t.Fatalf("Stores = %d, want 1", st.Stores)
	}
	c.Close()

	c2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.Loaded != 1 {
		t.Fatalf("journal has %d entries for one key, want 1", st.Loaded)
	}
}

func TestForImageView(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := c.ForImage("fp/risotto")
	v.StoreBlock(0x1000, selfheal.TierFull, testBlock(0x1000, 2))
	if _, ok := v.LoadBlock(0x1000, selfheal.TierFull); !ok {
		t.Fatal("view miss on stored block")
	}
	if _, ok := v.LoadBlock(0x2000, selfheal.TierFull); ok {
		t.Fatal("view hit on absent block")
	}
	// Another image's view must not see it.
	other := c.ForImage("fp/qemu")
	if _, ok := other.LoadBlock(0x1000, selfheal.TierFull); ok {
		t.Fatal("cross-image hit")
	}
	h, m := v.Counts()
	if h != 1 || m != 1 {
		t.Fatalf("view counts = (%d, %d), want (1, 1)", h, m)
	}
}

func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			img := fmt.Sprintf("img-%d", g%2)
			for i := 0; i < 50; i++ {
				pc := uint64(0x1000 + 4*(i%10))
				c.Store(img, pc, selfheal.TierFull, testBlock(pc, 2))
				c.Load(img, pc, selfheal.TierFull)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries != 20 {
		t.Fatalf("Entries = %d, want 20", st.Entries)
	}
}
