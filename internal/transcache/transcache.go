// Package transcache is the daemon's content-addressed persistent
// translation cache: optimized TCG IR blocks keyed by (image fingerprint,
// block PC, tier), journaled to disk as checksummed JSONL so repeat
// traffic skips the frontend and optimizer entirely. The cache stores IR
// rather than host code because emitted code is position-dependent (branch
// displacements are relative to the code-cache base); the IR is the
// expensive, position-independent artifact.
//
// Crash-safety is the same discipline as campaign results files
// (internal/journal): every append is flushed through before Store
// returns, a reopen drops the torn final line, and the file is truncated
// back to its valid prefix before new entries are appended. On top of the
// framing, every entry carries an FNV-64a checksum over its canonical
// JSON; an entry whose checksum does not verify on load is skipped and
// counted, so a corrupt journal degrades to retranslation instead of
// poisoning execution. faults.SiteCacheCorrupt injects exactly that
// corruption to prove the path.
package transcache

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

// Fingerprint content-addresses a guest image: the first 16 hex digits of
// the SHA-256 of its serialized form. Two byte-identical images share
// cached translations regardless of how they were submitted.
func Fingerprint(img *guestimg.Image) string {
	sum := sha256.Sum256(img.Encode())
	return fmt.Sprintf("%x", sum[:8])
}

// Entry is one journaled cache line.
type Entry struct {
	// Image identifies the guest image (and any translation-affecting
	// config the caller folds in — the daemon uses fingerprint/variant).
	Image string `json:"image"`
	// PC is the guest PC the block was translated from.
	PC uint64 `json:"pc"`
	// Tier is the selfheal tier the block was optimized at.
	Tier selfheal.Tier `json:"tier"`
	// IR is the post-optimization TCG block.
	IR *tcg.Block `json:"ir"`
	// Sum is the FNV-64a checksum (hex) of the entry's canonical JSON
	// with Sum itself cleared. Verified on load.
	Sum string `json:"sum"`
}

// checksum computes e's checksum over its canonical JSON with Sum cleared.
func checksum(e Entry) (string, error) {
	e.Sum = ""
	raw, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

type key struct {
	image string
	pc    uint64
	tier  selfheal.Tier
}

// Cache is a persistent translation cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[key]*tcg.Block
	f       *os.File
	w       *journal.Writer
	inj     *faults.Injector

	hits      *obs.Counter
	misses    *obs.Counter
	stores    *obs.Counter
	corrupt   *obs.Counter
	loaded    *obs.Counter
	entriesGa *obs.Gauge
}

// Options configures Open.
type Options struct {
	// Obs is the parent scope; the cache registers its metrics under a
	// "transcache" child. Nil disables instrumentation.
	Obs *obs.Scope
	// Injector arms faults.SiteCacheCorrupt (corrupt the journaled
	// checksum of the Nth store). Nil injects nothing.
	Injector *faults.Injector
}

// Stats is a point-in-time summary of cache activity.
type Stats struct {
	// Entries is the live entry count.
	Entries int
	// Loaded counts entries recovered from the journal at Open.
	Loaded int
	// CorruptSkipped counts journal entries dropped at Open because
	// their checksum or structure did not verify.
	CorruptSkipped int
	// Hits and Misses count Load outcomes (including ForImage views).
	Hits, Misses uint64
	// Stores counts accepted (non-duplicate) Store calls.
	Stores uint64
}

// Open opens (creating if absent) the journal at path and replays it into
// memory. Entries that fail structural decode or checksum verification
// are skipped and counted; the file is truncated back to its last valid
// line so the journal heals on reopen rather than accreting damage.
func Open(path string, opts Options) (*Cache, error) {
	sc := opts.Obs.Child("transcache")
	if sc == nil {
		// A private scope keeps Stats() working without instrumentation.
		sc = obs.NewScope("transcache")
	}
	c := &Cache{
		entries:   make(map[key]*tcg.Block),
		inj:       opts.Injector,
		hits:      sc.Counter("hits"),
		misses:    sc.Counter("misses"),
		stores:    sc.Counter("stores"),
		corrupt:   sc.Counter("corrupt_skipped"),
		loaded:    sc.Counter("loaded"),
		entriesGa: sc.Gauge("entries"),
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	valid, err := journal.Scan(f, func(line []byte) error {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			// Structurally broken but newline-terminated: real damage,
			// not a tear. Checksummed entries are independently
			// verifiable, so skip it rather than abandoning the rest.
			c.corrupt.Inc()
			return nil
		}
		want, err := checksum(e)
		if err != nil || e.Sum != want || e.IR == nil {
			c.corrupt.Inc()
			return nil
		}
		c.entries[key{e.Image, e.PC, e.Tier}] = e.IR
		c.loaded.Inc()
		return nil
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("transcache: replaying %s: %w", path, err)
	}
	// Heal the tail: drop any torn fragment so appends start on a clean
	// line boundary. Corrupt-but-complete lines stay (they are inert and
	// rewriting history is not worth the complexity); only the tear goes.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, err
	}
	c.f = f
	c.w = journal.NewWriter(f)
	c.entriesGa.Set(int64(len(c.entries)))
	return c, nil
}

// Load returns a clone of the cached block for (image, pc, tier), or
// (nil, false) on miss. The clone keeps callers from mutating the cache's
// copy (the backend appends no insts, but translators own their blocks).
func (c *Cache) Load(image string, pc uint64, tier selfheal.Tier) (*tcg.Block, bool) {
	c.mu.Lock()
	blk, ok := c.entries[key{image, pc, tier}]
	c.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return blk.Clone(), true
}

// Store journals and caches blk for (image, pc, tier). Duplicate keys are
// ignored (first write wins — translation is deterministic per key, so
// later copies carry no new information). Journal write failures leave
// the in-memory entry in place: the cache degrades to session-local.
func (c *Cache) Store(image string, pc uint64, tier selfheal.Tier, blk *tcg.Block) error {
	if blk == nil {
		return nil
	}
	k := key{image, pc, tier}
	cl := blk.Clone()

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return nil
	}
	c.entries[k] = cl
	c.stores.Inc()
	c.entriesGa.Set(int64(len(c.entries)))

	e := Entry{Image: image, PC: pc, Tier: tier, IR: cl}
	sum, err := checksum(e)
	if err != nil {
		return err
	}
	e.Sum = sum
	if t := c.inj.Hit(faults.SiteCacheCorrupt); t != nil {
		// Corrupt the journaled checksum (the in-memory copy stays
		// good): this entry must be detected and dropped on reopen.
		e.Sum = "deadbeef" + sum[8:]
	}
	if c.w == nil {
		return nil
	}
	return c.w.Encode(e)
}

// Stats returns a point-in-time activity summary.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Entries:        n,
		Loaded:         int(c.loaded.Load()),
		CorruptSkipped: int(c.corrupt.Load()),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Stores:         c.stores.Load(),
	}
}

// Close syncs and closes the journal. The in-memory cache stays usable
// (further Stores become session-local no-ops on the journal side).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	c.w = nil
	return err
}

// ImageCache is a single-image view of a Cache, implementing
// core.TranslationCache for one run. It pins the image key so the
// runtime's per-block lookups need no image plumbing.
type ImageCache struct {
	c     *Cache
	image string

	mu           sync.Mutex
	hits, misses uint64
}

// ForImage returns a view of c scoped to image (typically
// "fingerprint/variant": cached IR depends on the translation variant,
// not just the guest bytes).
func (c *Cache) ForImage(image string) *ImageCache {
	return &ImageCache{c: c, image: image}
}

// LoadBlock implements core.TranslationCache.
func (v *ImageCache) LoadBlock(pc uint64, tier selfheal.Tier) (*tcg.Block, bool) {
	blk, ok := v.c.Load(v.image, pc, tier)
	v.mu.Lock()
	if ok {
		v.hits++
	} else {
		v.misses++
	}
	v.mu.Unlock()
	return blk, ok
}

// StoreBlock implements core.TranslationCache. Journal errors are
// swallowed: a failed persist must not fail the translation that
// produced the block.
func (v *ImageCache) StoreBlock(pc uint64, tier selfheal.Tier, blk *tcg.Block) {
	_ = v.c.Store(v.image, pc, tier, blk)
}

// Counts returns this view's hit/miss totals.
func (v *ImageCache) Counts() (hits, misses uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hits, v.misses
}
