package guestimg

import (
	"testing"

	"repro/internal/isa/x86"
)

func TestBuildAndLoad(t *testing.T) {
	b := NewBuilder(0x1000, 0x8000)
	blob := b.Data([]byte{1, 2, 3})
	zeros := b.Zeros(16)
	b.Asm.Label("main").MovRI(x86.RAX, 7).Ret()

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0x1000 {
		t.Fatalf("entry = %#x", img.Entry)
	}
	if blob != 0x8000 {
		t.Fatalf("first data blob at %#x", blob)
	}
	if zeros <= blob || zeros%8 != 0 {
		t.Fatalf("zeros at %#x", zeros)
	}

	mem := make([]byte, 1<<16)
	if err := img.Load(mem); err != nil {
		t.Fatal(err)
	}
	if mem[blob] != 1 || mem[blob+2] != 3 {
		t.Fatal("data not loaded")
	}
	// Text decodes back.
	inst, _, err := x86.Decode(mem[0x1000:])
	if err != nil || inst.Op != x86.MOVri || inst.Imm != 7 {
		t.Fatalf("text decode: %v %v", inst, err)
	}
	if img.MaxAddr() < zeros+16 {
		t.Fatalf("MaxAddr = %#x", img.MaxAddr())
	}
}

func TestImportsGeneratePLT(t *testing.T) {
	b := NewBuilder(0x1000, 0x8000)
	b.Import("sin")
	b.Import("cos")
	a := b.Asm
	a.Label("main").Call("sin@plt").Call("cos@plt").Ret()
	a.Label("sin").Ret()
	a.Label("cos").Ret()

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(img.DynSyms) != 2 {
		t.Fatalf("dynsyms: %+v", img.DynSyms)
	}
	for _, d := range img.DynSyms {
		if d.PLT == 0 || d.GuestImpl == 0 {
			t.Fatalf("incomplete dynsym %+v", d)
		}
		if d.PLT == d.GuestImpl {
			t.Fatal("PLT entry must differ from implementation")
		}
		// The PLT entry must be a JMP whose target is the guest impl.
		mem := make([]byte, 1<<16)
		if err := img.Load(mem); err != nil {
			t.Fatal(err)
		}
		inst, n, err := x86.Decode(mem[d.PLT:])
		if err != nil || inst.Op != x86.JMP {
			t.Fatalf("PLT entry not a JMP: %v %v", inst, err)
		}
		if got := d.PLT + uint64(n) + uint64(inst.Rel); got != d.GuestImpl {
			t.Fatalf("PLT jmp lands at %#x, impl at %#x", got, d.GuestImpl)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	b := NewBuilder(0x1000, 0x8000)
	b.Asm.Label("main").Ret()
	if _, err := b.Build("nope"); err == nil {
		t.Fatal("unknown entry must error")
	}

	b = NewBuilder(0x1000, 0x8000)
	b.Import("ghost")
	b.Asm.Label("main").Ret()
	if _, err := b.Build("main"); err == nil {
		t.Fatal("import without guest implementation must error")
	}
}

func TestLoadOutOfBounds(t *testing.T) {
	img := &Image{Segments: []Segment{{Addr: 1 << 20, Data: []byte{1}}}}
	if err := img.Load(make([]byte, 1024)); err == nil {
		t.Fatal("segment past memory must error")
	}
}
