package guestimg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// On-disk format for guest images (the reproduction's stand-in for ELF):
//
//	magic   "RISO"        4 bytes
//	version u32           currently 1
//	entry   u64
//	#segments u32, then per segment: addr u64, len u64, bytes
//	#symbols  u32, then per symbol:  nameLen u16, name, addr u64
//	#dynsyms  u32, then per dynsym:  nameLen u16, name, plt u64, impl u64
//
// All integers little-endian. Symbols are sorted by name so encoding is
// deterministic.

var magic = [4]byte{'R', 'I', 'S', 'O'}

// formatVersion is the current encoding version.
const formatVersion = 1

// Encode serializes the image.
func (img *Image) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	put32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	put64 := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	putStr := func(s string) {
		var b [2]byte
		le.PutUint16(b[:], uint16(len(s)))
		buf.Write(b[:])
		buf.WriteString(s)
	}

	put32(formatVersion)
	put64(img.Entry)

	put32(uint32(len(img.Segments)))
	for _, s := range img.Segments {
		put64(s.Addr)
		put64(uint64(len(s.Data)))
		buf.Write(s.Data)
	}

	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	put32(uint32(len(names)))
	for _, n := range names {
		putStr(n)
		put64(img.Symbols[n])
	}

	put32(uint32(len(img.DynSyms)))
	for _, d := range img.DynSyms {
		putStr(d.Name)
		put64(d.PLT)
		put64(d.GuestImpl)
	}
	return buf.Bytes()
}

// Decode parses a serialized image.
func Decode(data []byte) (*Image, error) {
	r := &reader{data: data}
	var m [4]byte
	if err := r.bytes(m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("guestimg: bad magic")
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("guestimg: unsupported version %d", ver)
	}
	img := &Image{Symbols: make(map[string]uint64)}
	if img.Entry, err = r.u64(); err != nil {
		return nil, err
	}

	nseg, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nseg; i++ {
		addr, err := r.u64()
		if err != nil {
			return nil, err
		}
		n, err := r.u64()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.data)-r.off) {
			return nil, fmt.Errorf("guestimg: segment %d truncated", i)
		}
		seg := Segment{Addr: addr, Data: make([]byte, n)}
		if err := r.bytes(seg.Data); err != nil {
			return nil, err
		}
		img.Segments = append(img.Segments, seg)
	}

	nsym, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nsym; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		addr, err := r.u64()
		if err != nil {
			return nil, err
		}
		img.Symbols[name] = addr
	}

	ndyn, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ndyn; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		plt, err := r.u64()
		if err != nil {
			return nil, err
		}
		impl, err := r.u64()
		if err != nil {
			return nil, err
		}
		img.DynSyms = append(img.DynSyms, DynSym{Name: name, PLT: plt, GuestImpl: impl})
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("guestimg: %d trailing bytes", len(r.data)-r.off)
	}
	return img, nil
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) bytes(dst []byte) error {
	if r.off+len(dst) > len(r.data) {
		return fmt.Errorf("guestimg: truncated input at offset %d", r.off)
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) u32() (uint32, error) {
	var b [4]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *reader) u64() (uint64, error) {
	var b [8]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r *reader) str() (string, error) {
	var b [2]byte
	if err := r.bytes(b[:]); err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b[:]))
	s := make([]byte, n)
	if err := r.bytes(s); err != nil {
		return "", err
	}
	return string(s), nil
}
