// Package guestimg defines Risotto-Go's ELF-like guest binary image: code
// and data segments, a symbol table, and the dynamic-linking metadata the
// host linker consumes — imported dynamic symbols (.dynsym) and their PLT
// entries (§6.2 of the paper). A Builder assembles images from code and
// data; Load places an image into machine memory.
package guestimg

import (
	"fmt"
	"sort"

	"repro/internal/isa/x86"
)

// Segment is a contiguous byte range to map at Addr.
type Segment struct {
	Addr uint64
	Data []byte
}

// DynSym is one imported shared-library function: its name, the address of
// its PLT entry in the image, and the address of the guest fallback
// implementation the PLT jumps to when not host-linked.
type DynSym struct {
	Name string
	// PLT is the address of the function's PLT entry.
	PLT uint64
	// GuestImpl is the guest implementation's entry point (the "guest
	// shared library" function the PLT tail-calls when the host linker
	// is off).
	GuestImpl uint64
}

// Image is a loadable guest binary.
type Image struct {
	// Entry is the initial guest PC.
	Entry uint64
	// Segments to map.
	Segments []Segment
	// Symbols maps label names to absolute guest addresses.
	Symbols map[string]uint64
	// DynSyms lists imported shared-library functions with PLT entries.
	DynSyms []DynSym
}

// Load copies every segment into mem.
func (img *Image) Load(mem []byte) error {
	for _, s := range img.Segments {
		if s.Addr+uint64(len(s.Data)) > uint64(len(mem)) {
			return fmt.Errorf("guestimg: segment [%#x,+%d) exceeds memory %#x",
				s.Addr, len(s.Data), len(mem))
		}
		copy(mem[s.Addr:], s.Data)
	}
	return nil
}

// MaxAddr returns the end of the highest segment, for placing stacks/heap.
func (img *Image) MaxAddr() uint64 {
	var max uint64
	for _, s := range img.Segments {
		if end := s.Addr + uint64(len(s.Data)); end > max {
			max = end
		}
	}
	return max
}

// Builder assembles an image from one text assembler plus data blobs.
// Imported functions are declared with Import: the builder synthesizes a
// PLT entry (a single JMP to the guest implementation) and records the
// dynamic symbol. Call sites use the "<name>@plt" label.
type Builder struct {
	// Asm is the program text; the builder owns label placement for PLT
	// entries, so callers append their code and data first.
	Asm      *x86.Assembler
	textBase uint64
	imports  []string // import order
	data     []Segment
	dataCur  uint64
}

// NewBuilder returns a builder whose text starts at textBase and whose
// data area starts at dataBase.
func NewBuilder(textBase, dataBase uint64) *Builder {
	return &Builder{
		Asm:      x86.NewAssembler(),
		textBase: textBase,
		dataCur:  dataBase,
	}
}

// Import declares a shared-library function. The guest implementation must
// be assembled under the label "<name>" (in this image); call sites should
// call "<name>@plt".
func (b *Builder) Import(name string) {
	b.imports = append(b.imports, name)
}

// Data places a blob in the data area and returns its guest address.
func (b *Builder) Data(blob []byte) uint64 {
	addr := b.dataCur
	b.data = append(b.data, Segment{Addr: addr, Data: append([]byte(nil), blob...)})
	b.dataCur += uint64(len(blob))
	// Keep 8-byte alignment for subsequent blobs.
	if rem := b.dataCur % 8; rem != 0 {
		b.dataCur += 8 - rem
	}
	return addr
}

// Zeros reserves n zeroed data bytes and returns their guest address.
func (b *Builder) Zeros(n int) uint64 {
	return b.Data(make([]byte, n))
}

// Build emits PLT entries, assembles the text, and produces the image with
// entry point at the given label.
func (b *Builder) Build(entryLabel string) (*Image, error) {
	// PLT entries: one JMP per import, placed after user code.
	sort.Strings(b.imports)
	for _, name := range b.imports {
		b.Asm.Label(name + "@plt")
		b.Asm.Jmp(name)
	}
	code, syms, err := b.Asm.Assemble(b.textBase)
	if err != nil {
		return nil, fmt.Errorf("guestimg: %w", err)
	}
	entry, ok := syms[entryLabel]
	if !ok {
		return nil, fmt.Errorf("guestimg: entry label %q undefined", entryLabel)
	}
	img := &Image{
		Entry:    entry,
		Segments: append([]Segment{{Addr: b.textBase, Data: code}}, b.data...),
		Symbols:  syms,
	}
	for _, name := range b.imports {
		impl, ok := syms[name]
		if !ok {
			return nil, fmt.Errorf("guestimg: import %q has no guest implementation label", name)
		}
		img.DynSyms = append(img.DynSyms, DynSym{
			Name:      name,
			PLT:       syms[name+"@plt"],
			GuestImpl: impl,
		})
	}
	return img, nil
}
