package guestimg

import (
	"testing"

	"repro/internal/isa/x86"
)

func buildSample(t *testing.T) *Image {
	t.Helper()
	b := NewBuilder(0x1000, 0x8000)
	b.Import("sin")
	b.Data([]byte{9, 8, 7})
	a := b.Asm
	a.Label("main").Call("sin@plt").Ret()
	a.Label("sin").MovRI(x86.RAX, 1).Ret()
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := buildSample(t)
	data := img.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != img.Entry {
		t.Fatalf("entry %#x != %#x", got.Entry, img.Entry)
	}
	if len(got.Segments) != len(img.Segments) {
		t.Fatalf("segments %d != %d", len(got.Segments), len(img.Segments))
	}
	for i := range img.Segments {
		if got.Segments[i].Addr != img.Segments[i].Addr ||
			string(got.Segments[i].Data) != string(img.Segments[i].Data) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
	if len(got.Symbols) != len(img.Symbols) {
		t.Fatalf("symbols %d != %d", len(got.Symbols), len(img.Symbols))
	}
	for n, a := range img.Symbols {
		if got.Symbols[n] != a {
			t.Fatalf("symbol %q: %#x != %#x", n, got.Symbols[n], a)
		}
	}
	if len(got.DynSyms) != 1 || got.DynSyms[0] != img.DynSyms[0] {
		t.Fatalf("dynsyms: %+v vs %+v", got.DynSyms, img.DynSyms)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	img := buildSample(t)
	a := img.Encode()
	b := img.Encode()
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	img := buildSample(t)
	good := img.Encode()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("ELF!"), good[4:]...),
		"truncated": good[:len(good)/2],
		"trailing":  append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Bad version.
	bad := append([]byte(nil), good...)
	bad[4] = 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("bad version: expected decode error")
	}
	// Absurd segment length must not allocate/crash.
	bad = append([]byte(nil), good...)
	// Segment count field sits right after magic+version+entry = 16; the
	// first segment length at 16+4+8 = 28.
	for i := 28; i < 36 && i < len(bad); i++ {
		bad[i] = 0xFF
	}
	if _, err := Decode(bad); err == nil {
		t.Error("huge segment length: expected decode error")
	}
}
