// Package faults is the failure model of the Risotto-Go stack: a typed
// trap taxonomy shared by the DBT runtime (internal/core), the simulated
// host machine (internal/machine), the guest frontend (internal/frontend)
// and the litmus enumeration engine (internal/litmus), plus a seeded,
// deterministic fault injector used by the fault-matrix differential
// tests and the CLIs' -fault flag.
//
// Following "Sound Transpilation from Binary to Machine-Independent Code"
// (Metere et al.), decoder and translation failure is a first-class,
// *recoverable* outcome rather than a process abort: every hard failure
// in the execution stack surfaces as a *Trap that callers can classify
// with errors.As and either recover from (code-cache exhaustion triggers
// a flush-and-retranslate cycle; a litmus shard panic degrades to the
// serial enumerator) or report as a structured one-line trap.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// TrapKind classifies a structured runtime trap.
type TrapKind int

const (
	// TrapDecode is a guest (or generated-host) instruction decode fault,
	// including unexpected trap instructions reaching the runtime.
	TrapDecode TrapKind = iota
	// TrapUnmapped is a memory access outside the simulated physical
	// memory.
	TrapUnmapped
	// TrapMisaligned is an atomic or exclusive access whose address is
	// not naturally aligned for its size (Arm faults these).
	TrapMisaligned
	// TrapCacheExhausted is code-cache exhaustion that survived the
	// flush-and-retranslate degradation path (a single block larger than
	// the whole cache, or injected twice).
	TrapCacheExhausted
	// TrapBudget is a step/cycle budget or wall-clock watchdog expiry —
	// the structured halt of a runaway (or livelocked) guest.
	TrapBudget
	// TrapHostCall is a failure inside the host-linked library call path
	// (marshaling, missing function, host fault).
	TrapHostCall
	// TrapWorkerPanic is a captured panic in a parallel worker (litmus
	// enumeration shard); the degraded path re-runs serially.
	TrapWorkerPanic
	// TrapMiscompile is a translation whose emitted host code diverged
	// from its IR oracle — detected either by executing a corrupted block
	// (its first word is rewritten into a trapping marker) or by the
	// -selfcheck shadow run comparing host effects against the TCG
	// interpreter. The self-healing tier ladder recovers it by
	// quarantining the block and retranslating one tier down.
	TrapMiscompile
)

var kindNames = [...]string{
	TrapDecode:         "decode",
	TrapUnmapped:       "unmapped",
	TrapMisaligned:     "misaligned",
	TrapCacheExhausted: "cache-exhausted",
	TrapBudget:         "step-budget",
	TrapHostCall:       "host-call",
	TrapWorkerPanic:    "worker-panic",
	TrapMiscompile:     "miscompile",
}

// KindNames lists every trap kind's wire name, indexed by TrapKind — the
// vocabulary crash-bundle validation checks embedded kinds against.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames[:])
	return out
}

func (k TrapKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("trap?%d", int(k))
}

// Trap is a structured, errors.As-able runtime fault. Fields that do not
// apply to a kind are left at their zero value (CPU: -1 means unknown).
type Trap struct {
	// Kind classifies the trap.
	Kind TrapKind
	// CPU is the faulting vCPU id, or -1 when not attributable.
	CPU int
	// PC is the faulting program counter. GuestPC distinguishes guest
	// addresses (frontend/translation traps) from host addresses
	// (machine traps); see the Msg for context.
	PC uint64
	// GuestPC reports whether PC is a guest address.
	GuestPC bool
	// Addr is the faulting data address, when the trap is memory-related.
	Addr uint64
	// Steps is the executed-instruction count, for budget traps.
	Steps uint64
	// Injected marks traps forced by an Injector rather than organic.
	Injected bool
	// Msg is the human-readable description.
	Msg string
	// Err is the wrapped cause, when the trap decorates a lower error.
	Err error
}

// Error renders the trap as a single line.
func (t *Trap) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trap[%s]", t.Kind)
	if t.CPU >= 0 {
		fmt.Fprintf(&b, " cpu=%d", t.CPU)
	}
	if t.PC != 0 || t.GuestPC {
		space := "host"
		if t.GuestPC {
			space = "guest"
		}
		fmt.Fprintf(&b, " pc=%#x(%s)", t.PC, space)
	}
	if t.Kind == TrapUnmapped || t.Kind == TrapMisaligned {
		fmt.Fprintf(&b, " addr=%#x", t.Addr)
	}
	if t.Steps != 0 {
		fmt.Fprintf(&b, " steps=%d", t.Steps)
	}
	if t.Injected {
		b.WriteString(" injected")
	}
	if t.Msg != "" {
		b.WriteString(": ")
		b.WriteString(t.Msg)
	}
	if t.Err != nil {
		b.WriteString(": ")
		b.WriteString(t.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the wrapped cause to errors.Is/As chains.
func (t *Trap) Unwrap() error { return t.Err }

// New builds a trap of the given kind with a formatted message.
func New(kind TrapKind, format string, args ...any) *Trap {
	return &Trap{Kind: kind, CPU: -1, Msg: fmt.Sprintf(format, args...)}
}

// Wrap builds a trap of the given kind around a cause.
func Wrap(kind TrapKind, err error, format string, args ...any) *Trap {
	t := New(kind, format, args...)
	t.Err = err
	return t
}

// WithCPU attaches the faulting vCPU (and leaves an already-set id alone,
// so the innermost attribution wins). Returns t for chaining.
func (t *Trap) WithCPU(id int) *Trap {
	if t.CPU < 0 {
		t.CPU = id
	}
	return t
}

// WithGuestPC attaches a guest program counter if none is set.
func (t *Trap) WithGuestPC(pc uint64) *Trap {
	if t.PC == 0 && !t.GuestPC {
		t.PC, t.GuestPC = pc, true
	}
	return t
}

// WithHostPC attaches a host program counter if none is set.
func (t *Trap) WithHostPC(pc uint64) *Trap {
	if t.PC == 0 && !t.GuestPC {
		t.PC = pc
	}
	return t
}

// As extracts the innermost *Trap from err's chain.
func As(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// IsKind reports whether err carries a trap of kind k.
func IsKind(err error, k TrapKind) bool {
	t, ok := As(err)
	return ok && t.Kind == k
}

// ---- Injection --------------------------------------------------------

// Site names a fault-injection point in the execution stack. Each site is
// hit once per occurrence of the guarded operation; an armed plan fires at
// its Nth hit.
type Site string

const (
	// SiteDecode guards each guest instruction decode in the frontend.
	SiteDecode Site = "decode"
	// SiteMemory guards each simulated memory access.
	SiteMemory Site = "memory"
	// SiteCacheAlloc guards each code-cache block allocation.
	SiteCacheAlloc Site = "cache-alloc"
	// SiteStep guards each scheduler quantum of each vCPU.
	SiteStep Site = "step"
	// SiteHostCall guards each host-linked library call.
	SiteHostCall Site = "host-call"
	// SiteLitmusShard guards each parallel litmus enumeration shard; an
	// armed plan panics the worker (exercising panic capture + serial
	// fallback) rather than returning a trap through the normal path.
	// With -workers 1 the same site guards the serial enumeration, where
	// a fired plan has no fallback and surfaces as an unrecovered trap.
	SiteLitmusShard Site = "litmus-shard"
	// SiteCacheCorrupt guards each persistent translation-cache append;
	// an armed plan corrupts the journaled entry's checksum so the
	// reopen path must detect it and degrade to retranslation.
	SiteCacheCorrupt Site = "cache-corrupt"
	// SiteServeJob guards each daemon job attempt in internal/serve; an
	// armed plan panics the worker goroutine mid-job, exercising the
	// recover-into-typed-trap path.
	SiteServeJob Site = "serve-job"
	// SiteMiscompile guards each emitted translation block; an armed plan
	// corrupts the block's host code in place (its first word becomes a
	// trapping marker) instead of returning a trap through the normal
	// path, so detection is up to the self-healing layer.
	SiteMiscompile Site = "miscompile"
)

// plan is one armed injection: fire kind at the nth hit of the site.
type plan struct {
	nth   uint64
	kind  TrapKind
	fired bool
}

// Injector deterministically forces traps at chosen occurrences of
// instrumented sites. It is safe for concurrent use (litmus shards hit it
// from worker goroutines) and nil-receiver safe, so call sites can be
// guarded with a plain `if t := inj.Hit(site); t != nil` even when no
// injector is configured.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	counts map[Site]uint64
	plans  map[Site][]*plan

	// observability: fired injections are counted under "faults.injected"
	// and emit a faults.inject trace event naming the site.
	sc       *obs.Scope
	injected *obs.Counter
}

// SetObs points the injector's instrumentation at root's "faults" child
// scope. Nil-receiver and nil-scope safe; the last scope set wins when an
// injector is shared across runtimes.
func (in *Injector) SetObs(root *obs.Scope) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sc = root.Child("faults")
	in.injected = in.sc.Counter("injected")
}

// NewInjector returns an injector whose auto-armed occurrence choices are
// driven by seed (explicit Arm calls are fully deterministic regardless).
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[Site]uint64),
		plans:  make(map[Site][]*plan),
	}
}

// Arm schedules a one-shot trap of the given kind at the nth (1-based)
// hit of site.
func (in *Injector) Arm(site Site, nth uint64, kind TrapKind) {
	if nth == 0 {
		nth = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[site] = append(in.plans[site], &plan{nth: nth, kind: kind})
}

// ArmAuto schedules a one-shot trap at a seed-chosen occurrence in
// [1, within] (within <= 0 defaults to 16). The choice is deterministic
// for a given injector seed and Arm/ArmAuto call sequence.
func (in *Injector) ArmAuto(site Site, kind TrapKind, within int) uint64 {
	if within <= 0 {
		within = 16
	}
	in.mu.Lock()
	nth := uint64(1 + in.rng.Intn(within))
	in.plans[site] = append(in.plans[site], &plan{nth: nth, kind: kind})
	in.mu.Unlock()
	return nth
}

// Hit records one occurrence of site and returns a trap if an armed plan
// fires at this occurrence. Nil-receiver safe.
func (in *Injector) Hit(site Site) *Trap {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[site]++
	n := in.counts[site]
	for _, p := range in.plans[site] {
		if !p.fired && p.nth == n {
			p.fired = true
			t := New(p.kind, "injected at site %q occurrence %d", site, n)
			t.Injected = true
			in.injected.Inc()
			in.sc.Event("faults.inject", fmt.Sprintf("%s@%d:%s", site, n, p.kind), -1, 0, 0)
			return t
		}
	}
	return nil
}

// Count returns how many times site has been hit. Nil-receiver safe.
func (in *Injector) Count(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// Pending returns descriptions of armed-but-unfired plans, sorted — a run
// that was supposed to inject a fault but never reached the site reports
// these rather than silently passing.
func (in *Injector) Pending() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []string
	for site, ps := range in.plans {
		for _, p := range ps {
			if !p.fired {
				out = append(out, fmt.Sprintf("%s@%d:%s", site, p.nth, p.kind))
			}
		}
	}
	sort.Strings(out)
	return out
}

// ---- CLI fault specs --------------------------------------------------

// Spec is a parsed CLI fault specification: which site to arm, with which
// trap kind, at which occurrence.
type Spec struct {
	Name string
	Site Site
	Kind TrapKind
	Nth  uint64
}

// specTable maps CLI fault names to their (site, kind).
var specTable = map[string]Spec{
	"decode":        {Site: SiteDecode, Kind: TrapDecode},
	"unmapped":      {Site: SiteMemory, Kind: TrapUnmapped},
	"misaligned":    {Site: SiteMemory, Kind: TrapMisaligned},
	"cache-exhaust": {Site: SiteCacheAlloc, Kind: TrapCacheExhausted},
	"step-budget":   {Site: SiteStep, Kind: TrapBudget},
	"host-call":     {Site: SiteHostCall, Kind: TrapHostCall},
	"shard-panic":   {Site: SiteLitmusShard, Kind: TrapWorkerPanic},
	"miscompile":    {Site: SiteMiscompile, Kind: TrapMiscompile},
	"cache-corrupt": {Site: SiteCacheCorrupt, Kind: TrapMiscompile},
	"job-panic":     {Site: SiteServeJob, Kind: TrapWorkerPanic},
}

// SpecNames lists the accepted -fault names, sorted.
func SpecNames() []string {
	names := make([]string, 0, len(specTable))
	for n := range specTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses a -fault argument: a name from SpecNames, optionally
// suffixed with "@N" to select the Nth occurrence (default 1), e.g.
// "cache-exhaust" or "decode@3". Multiple specs may be comma-separated
// through ParseSpecs.
func ParseSpec(s string) (Spec, error) {
	name, nthStr, hasNth := strings.Cut(strings.TrimSpace(s), "@")
	sp, ok := specTable[name]
	if !ok {
		return Spec{}, fmt.Errorf("faults: unknown fault %q (want one of %s)",
			name, strings.Join(SpecNames(), ", "))
	}
	sp.Name = name
	sp.Nth = 1
	if hasNth {
		n, err := strconv.ParseUint(nthStr, 10, 64)
		if err != nil || n == 0 {
			return Spec{}, fmt.Errorf("faults: bad occurrence in %q (want name@N, N >= 1)", s)
		}
		sp.Nth = n
	}
	return sp, nil
}

// ParseSpecs parses a comma-separated list of fault specs; an empty
// string yields nil.
func ParseSpecs(s string) ([]Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []Spec
	for _, part := range strings.Split(s, ",") {
		sp, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Arm arms sp on in.
func (sp Spec) Arm(in *Injector) { in.Arm(sp.Site, sp.Nth, sp.Kind) }
