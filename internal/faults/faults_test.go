package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTrapErrorsAs(t *testing.T) {
	base := New(TrapUnmapped, "access out of bounds")
	base.Addr = 0x1234
	wrapped := fmt.Errorf("cpu3 at pc=%#x: %w", 0x40, base)

	tr, ok := As(wrapped)
	if !ok {
		t.Fatal("As failed to find trap in wrapped chain")
	}
	if tr.Kind != TrapUnmapped || tr.Addr != 0x1234 {
		t.Fatalf("trap = %+v", tr)
	}
	if !IsKind(wrapped, TrapUnmapped) {
		t.Error("IsKind(TrapUnmapped) = false")
	}
	if IsKind(wrapped, TrapDecode) {
		t.Error("IsKind(TrapDecode) = true")
	}
	var target *Trap
	if !errors.As(wrapped, &target) {
		t.Error("errors.As directly = false")
	}
}

func TestTrapUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	tr := Wrap(TrapDecode, cause, "decoding failed")
	if !errors.Is(tr, cause) {
		t.Error("errors.Is(trap, cause) = false")
	}
	if !strings.Contains(tr.Error(), "root cause") {
		t.Errorf("Error() = %q, missing cause", tr.Error())
	}
}

func TestTrapRendering(t *testing.T) {
	tr := New(TrapBudget, "runaway guest")
	tr.CPU = 2
	tr.PC = 0x1000
	tr.Steps = 5000
	s := tr.Error()
	for _, want := range []string{"trap[step-budget]", "cpu=2", "pc=0x1000", "steps=5000", "runaway guest"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
}

func TestWithCPUInnermostWins(t *testing.T) {
	tr := New(TrapDecode, "x").WithCPU(1).WithCPU(2)
	if tr.CPU != 1 {
		t.Errorf("CPU = %d, want 1 (first attribution wins)", tr.CPU)
	}
	tr2 := New(TrapDecode, "y").WithGuestPC(0x40).WithGuestPC(0x80)
	if tr2.PC != 0x40 || !tr2.GuestPC {
		t.Errorf("PC = %#x guest=%v, want 0x40 guest", tr2.PC, tr2.GuestPC)
	}
}

func TestInjectorFiresAtNth(t *testing.T) {
	in := NewInjector(1)
	in.Arm(SiteDecode, 3, TrapDecode)
	for i := 1; i <= 5; i++ {
		tr := in.Hit(SiteDecode)
		if (i == 3) != (tr != nil) {
			t.Fatalf("hit %d: trap = %v", i, tr)
		}
		if tr != nil {
			if tr.Kind != TrapDecode || !tr.Injected {
				t.Fatalf("hit %d: trap = %+v", i, tr)
			}
		}
	}
	if got := in.Count(SiteDecode); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestInjectorOneShot(t *testing.T) {
	in := NewInjector(1)
	in.Arm(SiteMemory, 1, TrapUnmapped)
	if in.Hit(SiteMemory) == nil {
		t.Fatal("first hit should fire")
	}
	for i := 0; i < 10; i++ {
		if in.Hit(SiteMemory) != nil {
			t.Fatal("plan fired twice")
		}
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Hit(SiteStep) != nil {
		t.Error("nil injector fired")
	}
	if in.Count(SiteStep) != 0 {
		t.Error("nil injector counted")
	}
	if in.Pending() != nil {
		t.Error("nil injector has pending plans")
	}
}

func TestInjectorPending(t *testing.T) {
	in := NewInjector(1)
	in.Arm(SiteHostCall, 2, TrapHostCall)
	in.Hit(SiteHostCall) // occurrence 1: not fired
	p := in.Pending()
	if len(p) != 1 || !strings.Contains(p[0], "host-call@2") {
		t.Errorf("Pending = %v", p)
	}
	in.Hit(SiteHostCall) // fires
	if len(in.Pending()) != 0 {
		t.Errorf("Pending after fire = %v", in.Pending())
	}
}

func TestArmAutoDeterministic(t *testing.T) {
	a := NewInjector(42)
	b := NewInjector(42)
	na := a.ArmAuto(SiteStep, TrapBudget, 8)
	nb := b.ArmAuto(SiteStep, TrapBudget, 8)
	if na != nb {
		t.Errorf("same seed chose different occurrences: %d vs %d", na, nb)
	}
	if na < 1 || na > 8 {
		t.Errorf("occurrence %d outside [1,8]", na)
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("cache-exhaust")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Site != SiteCacheAlloc || sp.Kind != TrapCacheExhausted || sp.Nth != 1 {
		t.Errorf("spec = %+v", sp)
	}

	sp, err = ParseSpec("decode@7")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Site != SiteDecode || sp.Nth != 7 {
		t.Errorf("spec = %+v", sp)
	}

	for _, bad := range []string{"nope", "decode@0", "decode@x", "@3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("decode@2, step-budget")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Nth != 2 || specs[1].Site != SiteStep {
		t.Errorf("specs = %+v", specs)
	}
	if specs, err := ParseSpecs(""); err != nil || specs != nil {
		t.Errorf("empty = %v, %v", specs, err)
	}
	// Every advertised name parses.
	for _, n := range SpecNames() {
		if _, err := ParseSpec(n); err != nil {
			t.Errorf("SpecNames entry %q does not parse: %v", n, err)
		}
	}
}

func TestSpecArmFires(t *testing.T) {
	in := NewInjector(1)
	sp, _ := ParseSpec("misaligned@2")
	sp.Arm(in)
	if in.Hit(SiteMemory) != nil {
		t.Fatal("fired at occurrence 1")
	}
	tr := in.Hit(SiteMemory)
	if tr == nil || tr.Kind != TrapMisaligned {
		t.Fatalf("occurrence 2: trap = %+v", tr)
	}
}
