// Package portasm is a small portable assembly DSL used to write each
// benchmark kernel once and emit it both as a guest (x86) image — executed
// under the Risotto DBT — and as a native host (Arm) image — executed
// directly, giving Figure 12's "native" series a real instruction stream
// rather than a fudge factor.
//
// The DSL exposes ten virtual registers, the guest ISA's memory/ALU
// operations, flag-based conditional branches, one-level calls, the
// concurrency primitives (MFENCE, flag-setting CAS, XADD), and portable
// pseudo-ops for the runtime interface (Exit/Write/Spawn/Join/Arg).
// Shared data is placed at target-independent addresses so pointer
// immediates are identical in both emissions.
package portasm

import (
	"fmt"

	"repro/internal/guestimg"
)

// Reg is a virtual register, v0–v9.
type Reg int

// NumRegs is the virtual register count.
const NumRegs = 10

// Cond is a portable branch condition (signed LT/LE/GT/GE; unsigned
// LO/LS/HI/HS).
type Cond int

// Conditions.
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
	LO
	LS
	HI
	HS
)

// ALU operation kinds.
type AluKind int

// ALU kinds.
const (
	Add AluKind = iota
	Sub
	Mul
	UDiv
	URem
	And
	Or
	Xor
	Shl
	Shr
)

// op is one portable instruction.
type op struct {
	kind opKind
	alu  AluKind
	cond Cond
	rd   Reg
	rs   Reg
	r2   Reg
	imm  int64
	size uint8
	name string
	scl  uint8
}

type opKind int

const (
	opLabel opKind = iota
	opMovI
	opMovSym
	opMov
	opAluRR
	opAluRI
	opLd
	opSt
	opLdIdx
	opStIdx
	opCmp
	opCmpI
	opJcc
	opJmp
	opCall
	opCallPLT
	opRet
	opMFence
	opCASFlag
	opXAdd
	opArg
	opExit
	opWrite
	opSpawn
	opJoin
	opSetCArg
	opGetCRet
	opCArg
	opSetCRet
)

// Default layout shared by both targets.
const (
	// TextBase is where code is placed.
	TextBase = 0x10000
	// DataBase is where shared data is placed (identical addresses in
	// guest and native images).
	DataBase = 0x100000
)

// Builder accumulates a portable program plus its data.
type Builder struct {
	ops     []op
	data    []guestimg.Segment
	dataCur uint64
	imports map[string]bool
	// stackCell is the native spawn-stack cursor cell (0 = not needed).
	stackCell uint64
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{dataCur: DataBase, imports: make(map[string]bool)}
}

// Data places a blob at a target-independent address.
func (b *Builder) Data(blob []byte) uint64 {
	addr := b.dataCur
	b.data = append(b.data, guestimg.Segment{Addr: addr, Data: append([]byte(nil), blob...)})
	b.dataCur += uint64(len(blob))
	if r := b.dataCur % 8; r != 0 {
		b.dataCur += 8 - r
	}
	return addr
}

// Zeros reserves n zeroed bytes.
func (b *Builder) Zeros(n int) uint64 { return b.Data(make([]byte, n)) }

func (b *Builder) emit(o op) *Builder { b.ops = append(b.ops, o); return b }

// Label defines a label.
func (b *Builder) Label(name string) *Builder { return b.emit(op{kind: opLabel, name: name}) }

// MovI sets rd = imm.
func (b *Builder) MovI(rd Reg, imm int64) *Builder {
	return b.emit(op{kind: opMovI, rd: rd, imm: imm})
}

// MovSym sets rd = address of label.
func (b *Builder) MovSym(rd Reg, label string) *Builder {
	return b.emit(op{kind: opMovSym, rd: rd, name: label})
}

// Mov sets rd = rs.
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.emit(op{kind: opMov, rd: rd, rs: rs}) }

// Alu applies rd = rd ∘ rs.
func (b *Builder) Alu(k AluKind, rd, rs Reg) *Builder {
	return b.emit(op{kind: opAluRR, alu: k, rd: rd, rs: rs})
}

// AluI applies rd = rd ∘ imm.
func (b *Builder) AluI(k AluKind, rd Reg, imm int64) *Builder {
	return b.emit(op{kind: opAluRI, alu: k, rd: rd, imm: imm})
}

// Convenience ALU wrappers.
func (b *Builder) AddR(rd, rs Reg) *Builder        { return b.Alu(Add, rd, rs) }
func (b *Builder) AddI(rd Reg, imm int64) *Builder { return b.AluI(Add, rd, imm) }
func (b *Builder) SubR(rd, rs Reg) *Builder        { return b.Alu(Sub, rd, rs) }
func (b *Builder) SubI(rd Reg, imm int64) *Builder { return b.AluI(Sub, rd, imm) }
func (b *Builder) MulR(rd, rs Reg) *Builder        { return b.Alu(Mul, rd, rs) }
func (b *Builder) MulI(rd Reg, imm int64) *Builder { return b.AluI(Mul, rd, imm) }
func (b *Builder) XorR(rd, rs Reg) *Builder        { return b.Alu(Xor, rd, rs) }
func (b *Builder) AndI(rd Reg, imm int64) *Builder { return b.AluI(And, rd, imm) }
func (b *Builder) OrR(rd, rs Reg) *Builder         { return b.Alu(Or, rd, rs) }
func (b *Builder) ShlI(rd Reg, imm int64) *Builder { return b.AluI(Shl, rd, imm) }
func (b *Builder) ShrI(rd Reg, imm int64) *Builder { return b.AluI(Shr, rd, imm) }

// Ld loads size bytes from [base+disp] into rd (disp < 4096).
func (b *Builder) Ld(rd, base Reg, disp int64, size uint8) *Builder {
	return b.emit(op{kind: opLd, rd: rd, rs: base, imm: disp, size: size})
}

// St stores size bytes of rs to [base+disp].
func (b *Builder) St(base Reg, disp int64, rs Reg, size uint8) *Builder {
	return b.emit(op{kind: opSt, rd: base, rs: rs, imm: disp, size: size})
}

// LdIdx loads from [base + idx*scale] (scale ∈ {1,2,4,8}).
func (b *Builder) LdIdx(rd, base, idx Reg, scale uint8, size uint8) *Builder {
	return b.emit(op{kind: opLdIdx, rd: rd, rs: base, r2: idx, scl: scale, size: size})
}

// StIdx stores rs to [base + idx*scale].
func (b *Builder) StIdx(base, idx Reg, scale uint8, rs Reg, size uint8) *Builder {
	return b.emit(op{kind: opStIdx, rd: base, r2: idx, scl: scale, rs: rs, size: size})
}

// Cmp compares two registers, setting flags.
func (b *Builder) Cmp(a, c Reg) *Builder { return b.emit(op{kind: opCmp, rd: a, rs: c}) }

// CmpI compares a register with an immediate.
func (b *Builder) CmpI(a Reg, imm int64) *Builder {
	return b.emit(op{kind: opCmpI, rd: a, imm: imm})
}

// J branches to label when cond holds.
func (b *Builder) J(c Cond, label string) *Builder {
	return b.emit(op{kind: opJcc, cond: c, name: label})
}

// Jmp branches unconditionally.
func (b *Builder) Jmp(label string) *Builder { return b.emit(op{kind: opJmp, name: label}) }

// Call invokes a one-level leaf function defined in this program.
func (b *Builder) Call(label string) *Builder { return b.emit(op{kind: opCall, name: label}) }

// CallPLT invokes an imported shared-library function (guest target only;
// the guest fallback implementation must be assembled under label name).
func (b *Builder) CallPLT(name string) *Builder {
	b.imports[name] = true
	return b.emit(op{kind: opCallPLT, name: name})
}

// Ret returns from a leaf function.
func (b *Builder) Ret() *Builder { return b.emit(op{kind: opRet}) }

// MFence emits a full fence.
func (b *Builder) MFence() *Builder { return b.emit(op{kind: opMFence}) }

// CASFlag performs CAS([base], expect→new) and sets flags: EQ on success.
// The expect register is preserved.
func (b *Builder) CASFlag(base, expect, new Reg) *Builder {
	return b.emit(op{kind: opCASFlag, rd: base, rs: expect, r2: new, size: 8})
}

// XAdd atomically adds src to [base]; src receives the old value.
func (b *Builder) XAdd(base, src Reg) *Builder {
	return b.emit(op{kind: opXAdd, rd: base, rs: src, size: 8})
}

// Arg moves the thread argument into rd (must be the first op of a thread
// entry function).
func (b *Builder) Arg(rd Reg) *Builder { return b.emit(op{kind: opArg, rd: rd}) }

// Exit terminates the thread with the code in rd.
func (b *Builder) Exit(rd Reg) *Builder { return b.emit(op{kind: opExit, rd: rd}) }

// Write appends guest memory [ptr, ptr+len) to the runtime output.
func (b *Builder) Write(ptr, length Reg) *Builder {
	return b.emit(op{kind: opWrite, rd: ptr, rs: length})
}

// Spawn starts a thread at fnLabel with argument arg; rd receives the
// thread id. Only the main thread may spawn.
func (b *Builder) Spawn(rd Reg, fnLabel string, arg Reg) *Builder {
	if b.stackCell == 0 {
		b.stackCell = b.Zeros(8)
	}
	return b.emit(op{kind: opSpawn, rd: rd, rs: arg, name: fnLabel})
}

// Join blocks until thread id (in idReg) halts; rd receives its exit code.
func (b *Builder) Join(rd, idReg Reg) *Builder {
	return b.emit(op{kind: opJoin, rd: rd, rs: idReg})
}

// SetCArg places rs into C-ABI argument slot i (0–2) before a CallPLT, so
// the host linker can marshal it from the guest calling convention.
// Guest-target only.
func (b *Builder) SetCArg(i int, rs Reg) *Builder {
	return b.emit(op{kind: opSetCArg, imm: int64(i), rs: rs})
}

// GetCRet moves the C-ABI return value into rd after a CallPLT.
// Guest-target only.
func (b *Builder) GetCRet(rd Reg) *Builder { return b.emit(op{kind: opGetCRet, rd: rd}) }

// CArg reads C-ABI argument slot i inside a PLT-callable guest fallback
// implementation. Guest-target only.
func (b *Builder) CArg(rd Reg, i int) *Builder {
	return b.emit(op{kind: opCArg, rd: rd, imm: int64(i)})
}

// SetCRet sets the C-ABI return value inside a guest fallback
// implementation (before Ret). Guest-target only.
func (b *Builder) SetCRet(rs Reg) *Builder { return b.emit(op{kind: opSetCRet, rs: rs}) }

func log2scale(s uint8) (int64, error) {
	switch s {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("portasm: scale %d not a power of two ≤ 8", s)
}
