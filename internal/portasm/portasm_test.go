package portasm

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/guestimg"
)

// runBoth builds a program for both targets, runs the guest under the DBT
// (Risotto variant) and the native image directly, and returns both exit
// codes.
func runBoth(t *testing.T, b *Builder) (guest, native uint64, grt *core.Runtime, nm interface{ MaxCycles() uint64 }) {
	t.Helper()
	gimg, err := b.BuildGuest("main")
	if err != nil {
		t.Fatalf("BuildGuest: %v", err)
	}
	rt, err := core.New(gimg, core.WithVariant(core.VariantRisotto))
	if err != nil {
		t.Fatal(err)
	}
	gcode, err := rt.Run()
	if err != nil {
		t.Fatalf("guest run: %v", err)
	}

	nimg, err := b.BuildNative("main")
	if err != nil {
		t.Fatalf("BuildNative: %v", err)
	}
	m, err := RunNative(nimg, 0)
	if err != nil {
		t.Fatalf("native run: %v", err)
	}
	return gcode, m.CPUs[0].ExitCode, rt, m
}

// sumProgram computes the sum of n data values.
func sumProgram(n int) (*Builder, uint64) {
	b := NewBuilder()
	data := make([]byte, n*8)
	want := uint64(0)
	for i := 0; i < n; i++ {
		v := uint64(i*3 + 7)
		binary.LittleEndian.PutUint64(data[i*8:], v)
		want += v
	}
	arr := b.Data(data)
	b.Label("main").
		MovI(0, int64(arr)). // base
		MovI(1, 0).          // i
		MovI(2, 0).          // sum
		Label("loop").
		LdIdx(3, 0, 1, 8, 8).
		AddR(2, 3).
		AddI(1, 1).
		CmpI(1, int64(n)).
		J(NE, "loop").
		Exit(2)
	return b, want
}

func TestSumBothTargets(t *testing.T) {
	b, want := sumProgram(20)
	g, n, _, _ := runBoth(t, b)
	if g != want || n != want {
		t.Fatalf("guest=%d native=%d want=%d", g, n, want)
	}
}

func TestNativeFasterThanGuest(t *testing.T) {
	b, _ := sumProgram(500)
	_, _, rt, m := runBoth(t, b)
	g := rt.M.MaxCycles()
	n := m.MaxCycles()
	if n*2 >= g {
		t.Fatalf("native (%d cycles) should be well under half of emulated (%d)", n, g)
	}
}

func TestAluAndShifts(t *testing.T) {
	b := NewBuilder()
	b.Label("main").
		MovI(0, 100).
		AddI(0, 23). // 123
		MulI(0, 2).  // 246
		SubI(0, 6).  // 240
		ShrI(0, 4).  // 15
		ShlI(0, 2).  // 60
		MovI(1, 7).
		AluI(URem, 0, 7). // 60 % 7 = 4
		AddI(0, 96).      // 100
		AluI(UDiv, 0, 3). // 33
		MovI(2, 5).
		XorR(0, 2). // 33^5 = 36
		Exit(0)
	g, n, _, _ := runBoth(t, b)
	if g != 36 || n != 36 {
		t.Fatalf("guest=%d native=%d want=36", g, n)
	}
}

func TestConditions(t *testing.T) {
	// Count how many of the 10 conditions hold for (3, 5), accumulate a
	// bitmask: EQ=0, NE=1, LT=1, LE=1, GT=0, GE=0, LO=1, LS=1, HI=0, HS=0
	// → mask 0b0011_0111_0? Compute with branches.
	b := NewBuilder()
	b.Label("main").
		MovI(0, 3).
		MovI(1, 5).
		MovI(2, 0) // mask
	conds := []Cond{EQ, NE, LT, LE, GT, GE, LO, LS, HI, HS}
	for i, c := range conds {
		set := "set" + string(rune('a'+i))
		done := "done" + string(rune('a'+i))
		b.Cmp(0, 1).
			J(c, set).
			Jmp(done).
			Label(set).
			AluI(Or, 2, int64(1)<<uint(i)).
			Label(done)
	}
	b.Exit(2)
	want := uint64(0)
	for i, hold := range []bool{false, true, true, true, false, false, true, true, false, false} {
		if hold {
			want |= 1 << uint(i)
		}
	}
	g, n, _, _ := runBoth(t, b)
	if g != want || n != want {
		t.Fatalf("guest=%#x native=%#x want=%#x", g, n, want)
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder()
	b.Label("main").
		MovI(0, 10).
		Call("double").
		Call("double").
		Exit(0).
		Label("double").
		AddR(0, 0).
		Ret()
	g, n, _, _ := runBoth(t, b)
	if g != 40 || n != 40 {
		t.Fatalf("guest=%d native=%d want=40", g, n)
	}
}

func TestSpawnJoinThreads(t *testing.T) {
	// Two workers each xadd 50 into a counter; main joins and reads it.
	b := NewBuilder()
	counter := b.Zeros(8)
	b.Label("main").
		MovI(0, 0).
		Spawn(1, "worker", 0).
		Spawn(2, "worker", 0).
		Join(3, 1).
		Join(3, 2).
		MovI(4, int64(counter)).
		Ld(5, 4, 0, 8).
		Exit(5)
	b.Label("worker").
		Arg(0).
		MovI(1, int64(counter)).
		MovI(2, 0).
		Label("wloop").
		MovI(3, 1).
		XAdd(1, 3).
		AddI(2, 1).
		CmpI(2, 50).
		J(NE, "wloop").
		MovI(0, 0).
		Exit(0)
	g, n, _, _ := runBoth(t, b)
	if g != 100 || n != 100 {
		t.Fatalf("guest=%d native=%d want=100", g, n)
	}
}

func TestCASFlag(t *testing.T) {
	b := NewBuilder()
	cell := b.Zeros(8)
	b.Label("main").
		MovI(0, int64(cell)).
		MovI(1, 0). // expect
		MovI(2, 9). // new
		CASFlag(0, 1, 2).
		J(NE, "fail").
		// Second CAS must fail (cell is 9, expect 0).
		CASFlag(0, 1, 2).
		J(EQ, "bad").
		Ld(3, 0, 0, 8). // 9
		Exit(3).
		Label("fail").
		MovI(3, 111).
		Exit(3).
		Label("bad").
		MovI(3, 222).
		Exit(3)
	g, n, _, _ := runBoth(t, b)
	if g != 9 || n != 9 {
		t.Fatalf("guest=%d native=%d want=9", g, n)
	}
}

func TestWriteOutput(t *testing.T) {
	b := NewBuilder()
	msg := b.Data([]byte("portable!"))
	b.Label("main").
		MovI(0, int64(msg)).
		MovI(1, 9).
		Write(0, 1).
		MovI(2, 0).
		Exit(2)

	gimg, err := b.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(gimg, core.WithVariant(core.VariantQemu))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if string(rt.M.Output) != "portable!" {
		t.Fatalf("guest output = %q", rt.M.Output)
	}

	nimg, err := b.BuildNative("main")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunNative(nimg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Output) != "portable!" {
		t.Fatalf("native output = %q", m.Output)
	}
}

func TestImportsRejectNative(t *testing.T) {
	b := NewBuilder()
	b.Label("main").CallPLT("sin").Exit(0).
		Label("sin").Ret()
	if _, err := b.BuildNative("main"); err == nil {
		t.Fatal("native build with imports must fail")
	}
	if _, err := b.BuildGuest("main"); err != nil {
		t.Fatalf("guest build should work: %v", err)
	}
}

func TestDataAddressesAgree(t *testing.T) {
	b := NewBuilder()
	a1 := b.Data([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	a2 := b.Zeros(16)
	if a1 != DataBase {
		t.Fatalf("first blob at %#x, want %#x", a1, DataBase)
	}
	if a2 <= a1 {
		t.Fatal("data addresses must grow")
	}
	b.Label("main").MovI(0, 0).Exit(0)
	gimg, _ := b.BuildGuest("main")
	nimg, _ := b.BuildNative("main")
	find := func(img *guestimg.Image, addr uint64) []byte {
		for _, s := range img.Segments {
			if s.Addr == addr {
				return s.Data
			}
		}
		return nil
	}
	g := find(gimg, a1)
	n := find(nimg, a1)
	if g == nil || n == nil || g[0] != 1 || n[0] != 1 {
		t.Fatal("data segment mismatch between targets")
	}
}
