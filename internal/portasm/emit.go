package portasm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/guestimg"
	"repro/internal/isa/arm"
	"repro/internal/isa/x86"
	"repro/internal/machine"
)

// Native memory layout constants.
const (
	// NativeMemSize is the machine size RunNative allocates.
	NativeMemSize = 32 << 20
	// NativeMainSP is the main thread's initial stack pointer (X27).
	NativeMainSP = 23 << 20
	// nativeStackInit seeds the spawn-stack cursor cell.
	nativeStackInit = 22 << 20
	// nativeStackSize is carved per spawned thread.
	nativeStackSize = 256 << 10
)

// --- Guest (x86) emission ---------------------------------------------------

var x86VRegs = [NumRegs]x86.Reg{
	x86.RBX, x86.RCX, x86.RBP, x86.R8, x86.R9,
	x86.R10, x86.R11, x86.R12, x86.R13, x86.R14,
}

const x86Scratch = x86.R15

// x86CArgRegs are the guest C-ABI argument registers (System-V order) the
// host linker marshals from.
var x86CArgRegs = [3]x86.Reg{x86.RDI, x86.RSI, x86.RDX}

var x86Conds = [...]x86.Cond{
	EQ: x86.CondEQ, NE: x86.CondNE, LT: x86.CondLT, LE: x86.CondLE,
	GT: x86.CondGT, GE: x86.CondGE, LO: x86.CondB, LS: x86.CondBE,
	HI: x86.CondA, HS: x86.CondAE,
}

var x86AluRR = map[AluKind]func(*x86.Assembler, x86.Reg, x86.Reg) *x86.Assembler{
	Add: (*x86.Assembler).AddRR, Sub: (*x86.Assembler).SubRR,
	Mul: (*x86.Assembler).MulRR, UDiv: (*x86.Assembler).UDivRR,
	URem: (*x86.Assembler).URemRR, And: (*x86.Assembler).AndRR,
	Or: (*x86.Assembler).OrRR, Xor: (*x86.Assembler).XorRR,
	Shl: (*x86.Assembler).ShlRR, Shr: (*x86.Assembler).ShrRR,
}

// BuildGuest emits the program as a guest image for the DBT.
func (b *Builder) BuildGuest(entry string) (*guestimg.Image, error) {
	gb := guestimg.NewBuilder(TextBase, 0x7000000 /* unused data area */)
	var names []string
	for n := range b.imports {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gb.Import(n)
	}
	a := gb.Asm

	for _, o := range b.ops {
		switch o.kind {
		case opLabel:
			a.Label(o.name)
		case opMovI:
			a.MovRI(x86VRegs[o.rd], o.imm)
		case opMovSym:
			a.MovSym(x86VRegs[o.rd], o.name)
		case opMov:
			a.MovRR(x86VRegs[o.rd], x86VRegs[o.rs])
		case opAluRR:
			x86AluRR[o.alu](a, x86VRegs[o.rd], x86VRegs[o.rs])
		case opAluRI:
			b.x86AluRI(a, o)
		case opLd:
			a.Load(x86VRegs[o.rd], x86.MemD(x86VRegs[o.rs], int32(o.imm)), o.size)
		case opSt:
			a.Store(x86.MemD(x86VRegs[o.rd], int32(o.imm)), x86VRegs[o.rs], o.size)
		case opLdIdx:
			a.Load(x86VRegs[o.rd], x86.MemIdx(x86VRegs[o.rs], x86VRegs[o.r2], o.scl, 0), o.size)
		case opStIdx:
			a.Store(x86.MemIdx(x86VRegs[o.rd], x86VRegs[o.r2], o.scl, 0), x86VRegs[o.rs], o.size)
		case opCmp:
			a.CmpRR(x86VRegs[o.rd], x86VRegs[o.rs])
		case opCmpI:
			if o.imm >= math.MinInt32 && o.imm <= math.MaxInt32 {
				a.CmpRI(x86VRegs[o.rd], int32(o.imm))
			} else {
				a.MovRI(x86Scratch, o.imm)
				a.CmpRR(x86VRegs[o.rd], x86Scratch)
			}
		case opJcc:
			a.Jcc(x86Conds[o.cond], o.name)
		case opJmp:
			a.Jmp(o.name)
		case opCall:
			a.Call(o.name)
		case opCallPLT:
			a.Call(o.name + "@plt")
		case opRet:
			a.Ret()
		case opMFence:
			a.MFence()
		case opCASFlag:
			a.MovRR(x86.RAX, x86VRegs[o.rs])
			a.CmpXchg(x86.Mem0(x86VRegs[o.rd]), x86VRegs[o.r2], o.size)
		case opXAdd:
			a.XAdd(x86.Mem0(x86VRegs[o.rd]), x86VRegs[o.rs], o.size)
		case opArg:
			a.MovRR(x86VRegs[o.rd], x86.RDI)
		case opExit:
			a.MovRR(x86.RDI, x86VRegs[o.rd])
			a.MovRI(x86.RAX, 93)
			a.Syscall()
		case opWrite:
			a.MovRR(x86.RDI, x86VRegs[o.rd])
			a.MovRR(x86.RSI, x86VRegs[o.rs])
			a.MovRI(x86.RAX, 64)
			a.Syscall()
		case opSpawn:
			a.MovSym(x86.RDI, o.name)
			a.MovRR(x86.RSI, x86VRegs[o.rs])
			a.MovRI(x86.RAX, 220)
			a.Syscall()
			a.MovRR(x86VRegs[o.rd], x86.RAX)
		case opJoin:
			a.MovRR(x86.RDI, x86VRegs[o.rs])
			a.MovRI(x86.RAX, 221)
			a.Syscall()
			a.MovRR(x86VRegs[o.rd], x86.RAX)
		case opSetCArg:
			a.MovRR(x86CArgRegs[o.imm], x86VRegs[o.rs])
		case opGetCRet:
			a.MovRR(x86VRegs[o.rd], x86.RAX)
		case opCArg:
			a.MovRR(x86VRegs[o.rd], x86CArgRegs[o.imm])
		case opSetCRet:
			a.MovRR(x86.RAX, x86VRegs[o.rs])
		default:
			return nil, fmt.Errorf("portasm: x86 emitter: unknown op %d", o.kind)
		}
	}

	img, err := gb.Build(entry)
	if err != nil {
		return nil, err
	}
	img.Segments = append(img.Segments, b.data...)
	return img, nil
}

func (b *Builder) x86AluRI(a *x86.Assembler, o op) {
	rd := x86VRegs[o.rd]
	in32 := o.imm >= math.MinInt32 && o.imm <= math.MaxInt32
	if !in32 || o.alu == UDiv || o.alu == URem {
		a.MovRI(x86Scratch, o.imm)
		x86AluRR[o.alu](a, rd, x86Scratch)
		return
	}
	imm := int32(o.imm)
	switch o.alu {
	case Add:
		a.AddRI(rd, imm)
	case Sub:
		a.SubRI(rd, imm)
	case Mul:
		a.MulRI(rd, imm)
	case And:
		a.AndRI(rd, imm)
	case Or:
		a.OrRI(rd, imm)
	case Xor:
		a.XorRI(rd, imm)
	case Shl:
		a.ShlRI(rd, imm)
	case Shr:
		a.ShrRI(rd, imm)
	}
}

// --- Native (Arm) emission ----------------------------------------------------

var armVRegs = [NumRegs]arm.Reg{
	arm.X9, arm.X10, arm.X11, arm.X12, arm.X13,
	arm.X14, arm.X15, arm.X16, arm.X17, arm.X18,
}

const (
	armS1 = arm.X21
	armS2 = arm.X22
)

var armConds = [...]arm.Cond{
	EQ: arm.EQ, NE: arm.NE, LT: arm.LT, LE: arm.LE, GT: arm.GT, GE: arm.GE,
	LO: arm.LO, LS: arm.LS, HI: arm.HI, HS: arm.HS,
}

var armAluRR = map[AluKind]arm.Op{
	Add: arm.ADD, Sub: arm.SUB, Mul: arm.MUL, UDiv: arm.UDIV, URem: arm.UREM,
	And: arm.AND, Or: arm.ORR, Xor: arm.EOR, Shl: arm.LSL, Shr: arm.LSR,
}

// BuildNative emits the program as a native host image.
func (b *Builder) BuildNative(entry string) (*guestimg.Image, error) {
	if len(b.imports) > 0 {
		return nil, fmt.Errorf("portasm: host-linked imports have no native lowering (imports: %d)", len(b.imports))
	}
	a := arm.NewAssembler()

	for _, o := range b.ops {
		switch o.kind {
		case opLabel:
			a.Label(o.name)
		case opMovI:
			a.MovImm(armVRegs[o.rd], uint64(o.imm))
		case opMovSym:
			a.MovSym(armVRegs[o.rd], o.name)
		case opMov:
			a.Mov(armVRegs[o.rd], armVRegs[o.rs])
		case opAluRR:
			a.Raw(arm.Inst{Op: armAluRR[o.alu], Rd: armVRegs[o.rd],
				Rn: armVRegs[o.rd], Rm: armVRegs[o.rs]})
		case opAluRI:
			armAluRI(a, o)
		case opLd:
			if o.imm >= 0 && o.imm <= 0xFFF {
				a.Ldr(armVRegs[o.rd], armVRegs[o.rs], o.imm, o.size)
			} else {
				a.MovImm(armS1, uint64(o.imm))
				a.Add(armS1, armVRegs[o.rs], armS1)
				a.Ldr(armVRegs[o.rd], armS1, 0, o.size)
			}
		case opSt:
			if o.imm >= 0 && o.imm <= 0xFFF {
				a.Str(armVRegs[o.rs], armVRegs[o.rd], o.imm, o.size)
			} else {
				a.MovImm(armS1, uint64(o.imm))
				a.Add(armS1, armVRegs[o.rd], armS1)
				a.Str(armVRegs[o.rs], armS1, 0, o.size)
			}
		case opLdIdx:
			lg, err := log2scale(o.scl)
			if err != nil {
				return nil, err
			}
			a.LslI(armS1, armVRegs[o.r2], lg)
			a.Add(armS1, armVRegs[o.rs], armS1)
			a.Ldr(armVRegs[o.rd], armS1, 0, o.size)
		case opStIdx:
			lg, err := log2scale(o.scl)
			if err != nil {
				return nil, err
			}
			a.LslI(armS1, armVRegs[o.r2], lg)
			a.Add(armS1, armVRegs[o.rd], armS1)
			a.Str(armVRegs[o.rs], armS1, 0, o.size)
		case opCmp:
			a.Cmp(armVRegs[o.rd], armVRegs[o.rs])
		case opCmpI:
			if o.imm >= 0 && o.imm <= 0xFFF {
				a.CmpI(armVRegs[o.rd], o.imm)
			} else {
				a.MovImm(armS1, uint64(o.imm))
				a.Cmp(armVRegs[o.rd], armS1)
			}
		case opJcc:
			a.BCondLabel(armConds[o.cond], o.name)
		case opJmp:
			a.BLabel(o.name)
		case opCall:
			a.BlLabel(o.name)
		case opRet:
			a.Ret()
		case opMFence:
			a.Dmb(arm.BarrierFull)
		case opCASFlag:
			a.Mov(armS1, armVRegs[o.rs])
			a.Casal(armS1, armVRegs[o.r2], armVRegs[o.rd], o.size)
			a.Cmp(armS1, armVRegs[o.rs])
		case opXAdd:
			a.Mov(armS1, armVRegs[o.rs])
			a.Raw(arm.Inst{Op: arm.LDADDAL, Rd: armS1, Rm: armVRegs[o.rs],
				Rn: armVRegs[o.rd], Size: o.size})
		case opArg:
			a.Mov(armVRegs[o.rd], arm.X0)
		case opExit:
			a.Mov(arm.X0, armVRegs[o.rd])
			a.MovImm(arm.X8, machine.SysExit)
			a.Svc(0)
		case opWrite:
			a.Mov(arm.X0, armVRegs[o.rd])
			a.Mov(arm.X1, armVRegs[o.rs])
			a.MovImm(arm.X8, machine.SysWrite)
			a.Svc(0)
		case opSpawn:
			// Carve a stack from the cursor cell, then spawn.
			a.MovImm(armS1, b.stackCell)
			a.Ldr(arm.X2, armS1, 0, 8)
			a.MovImm(armS2, nativeStackSize)
			a.Sub(arm.X2, arm.X2, armS2)
			a.Str(arm.X2, armS1, 0, 8)
			a.MovSym(arm.X0, o.name)
			a.Mov(arm.X1, armVRegs[o.rs])
			a.MovImm(arm.X8, machine.SysSpawn)
			a.Svc(0)
			a.Mov(armVRegs[o.rd], arm.X0)
		case opJoin:
			a.Mov(arm.X0, armVRegs[o.rs])
			a.MovImm(arm.X8, machine.SysJoin)
			a.Svc(0)
			a.Mov(armVRegs[o.rd], arm.X0)
		case opSetCArg, opGetCRet, opCArg, opSetCRet:
			return nil, fmt.Errorf("portasm: C-ABI ops have no native lowering")
		default:
			return nil, fmt.Errorf("portasm: arm emitter: unknown op %d", o.kind)
		}
	}

	code, syms, err := a.Assemble(TextBase)
	if err != nil {
		return nil, err
	}
	ent, ok := syms[entry]
	if !ok {
		return nil, fmt.Errorf("portasm: entry label %q undefined", entry)
	}

	// Seed the spawn-stack cursor.
	data := make([]guestimg.Segment, len(b.data))
	for i, s := range b.data {
		data[i] = guestimg.Segment{Addr: s.Addr, Data: append([]byte(nil), s.Data...)}
		if b.stackCell != 0 && s.Addr <= b.stackCell && b.stackCell+8 <= s.Addr+uint64(len(s.Data)) {
			binary.LittleEndian.PutUint64(data[i].Data[b.stackCell-s.Addr:], nativeStackInit)
		}
	}

	return &guestimg.Image{
		Entry:    ent,
		Segments: append([]guestimg.Segment{{Addr: TextBase, Data: code}}, data...),
		Symbols:  syms,
	}, nil
}

func armAluRI(a *arm.Assembler, o op) {
	rd := armVRegs[o.rd]
	imm := o.imm
	switch o.alu {
	case Add:
		if imm >= 0 && imm <= 0xFFF {
			a.AddI(rd, rd, imm)
			return
		}
		if imm < 0 && -imm <= 0xFFF {
			a.SubI(rd, rd, -imm)
			return
		}
	case Sub:
		if imm >= 0 && imm <= 0xFFF {
			a.SubI(rd, rd, imm)
			return
		}
		if imm < 0 && -imm <= 0xFFF {
			a.AddI(rd, rd, -imm)
			return
		}
	case And:
		if imm >= 0 && imm <= 0xFFF {
			a.AndI(rd, rd, imm)
			return
		}
	case Or:
		if imm >= 0 && imm <= 0xFFF {
			a.Raw(arm.Inst{Op: arm.ORRI, Rd: rd, Rn: rd, Imm: imm})
			return
		}
	case Xor:
		if imm >= 0 && imm <= 0xFFF {
			a.Raw(arm.Inst{Op: arm.EORI, Rd: rd, Rn: rd, Imm: imm})
			return
		}
	case Shl:
		a.LslI(rd, rd, imm&63)
		return
	case Shr:
		a.LsrI(rd, rd, imm&63)
		return
	}
	a.MovImm(armS1, uint64(imm))
	a.Raw(arm.Inst{Op: armAluRR[o.alu], Rd: rd, Rn: rd, Rm: armS1})
}

// RunNative loads a native image into a fresh machine and runs it to
// completion, returning the machine for inspection.
func RunNative(img *guestimg.Image, maxSteps uint64) (*machine.Machine, error) {
	return RunNativeQuantum(img, 64, maxSteps)
}

// RunNativeQuantum is RunNative with an explicit round-robin quantum
// (small quanta interleave threads finely, letting CAS loops genuinely
// contend).
func RunNativeQuantum(img *guestimg.Image, quantum int, maxSteps uint64) (*machine.Machine, error) {
	m := machine.New(NativeMemSize)
	m.Syscall = machine.NativeSyscall
	if err := img.Load(m.Mem); err != nil {
		return nil, err
	}
	c := m.CPUs[0]
	c.PC = img.Entry
	c.Regs[27] = NativeMainSP
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	if err := m.RunAll(quantum, maxSteps); err != nil {
		return nil, err
	}
	return m, nil
}
