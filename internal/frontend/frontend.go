// Package frontend translates guest (x86) code into TCG IR, one
// translation block at a time, applying a selectable x86→IR mapping scheme
// for memory ordering (Figure 2 vs Figure 7a of the Risotto paper) and a
// selectable RMW strategy (QEMU-style helper call vs Risotto's inline CAS
// IR instruction, §6.3).
package frontend

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/isa/x86"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/tcg"
)

// CASStrategy selects how guest RMW instructions are translated.
type CASStrategy int

const (
	// CASInline emits the IR's atomic ops directly (Risotto, §6.3).
	CASInline CASStrategy = iota
	// CASHelper emits a helper call (QEMU's scheme, §2.3).
	CASHelper
)

// HelperSyscall is the runtime helper implementing guest syscalls.
const HelperSyscall tcg.Helper = 100

// Config parameterizes translation.
type Config struct {
	// Scheme is the x86→IR fence mapping.
	Scheme mapping.X86Scheme
	// CAS selects RMW translation.
	CAS CASStrategy
	// MaxInsts bounds guest instructions per block (default 64).
	MaxInsts int
	// SyscallBarrier isolates each SYSCALL into its own block: a block
	// that would contain a SYSCALL after earlier instructions ends before
	// it instead, so the syscall is always the first (and only) guest
	// instruction of its block. The interpreter execution tier needs
	// this: a blocked syscall (futex-style join) is retried by re-entering
	// the block, which must therefore carry no prior side effects.
	SyscallBarrier bool
	// Inject, when non-nil, forces decode traps at instrumented decode
	// sites (fault-matrix testing).
	Inject *faults.Injector
	// Obs, when non-nil, counts decoded blocks and guest instructions
	// under its "frontend" child scope.
	Obs *obs.Scope
}

// translator carries per-block state.
type translator struct {
	cfg  Config
	b    *tcg.Block
	pool []tcg.Temp // recycled locals
}

func (tr *translator) tmp() tcg.Temp {
	if n := len(tr.pool); n > 0 {
		t := tr.pool[n-1]
		tr.pool = tr.pool[:n-1]
		return t
	}
	return tr.b.Temp()
}

func (tr *translator) release(ts ...tcg.Temp) {
	tr.pool = append(tr.pool, ts...)
}

// guestReg maps a guest register to its global temp.
func guestReg(r x86.Reg) tcg.Temp { return tcg.Temp(r) }

// condOf maps an x86 condition to the IR condition over (CCDst, CCSrc).
func condOf(c x86.Cond) tcg.Cond {
	switch c {
	case x86.CondEQ:
		return tcg.CondEQ
	case x86.CondNE:
		return tcg.CondNE
	case x86.CondLT:
		return tcg.CondLT
	case x86.CondLE:
		return tcg.CondLE
	case x86.CondGT:
		return tcg.CondGT
	case x86.CondGE:
		return tcg.CondGE
	case x86.CondB:
		return tcg.CondLTU
	case x86.CondBE:
		return tcg.CondLEU
	case x86.CondA:
		return tcg.CondGTU
	default:
		return tcg.CondGEU
	}
}

// Translate decodes guest code at pc (reading from mem) and produces one
// translation block, ending at the first branch or after cfg.MaxInsts
// instructions.
func Translate(mem []byte, pc uint64, cfg Config) (*tcg.Block, error) {
	if cfg.MaxInsts <= 0 {
		cfg.MaxInsts = 64
	}
	tr := &translator{cfg: cfg, b: tcg.NewBlock()}
	tr.b.GuestPC = pc

	decoded := 0
	done := func() {
		sc := cfg.Obs.Child("frontend")
		sc.Counter("blocks").Inc()
		sc.Counter("insts").Add(uint64(decoded))
	}

	cur := pc
	for n := 0; n < cfg.MaxInsts; n++ {
		if cur >= uint64(len(mem)) {
			t := faults.New(faults.TrapUnmapped, "frontend: guest pc outside memory")
			t.Addr = cur
			return nil, t.WithGuestPC(cur)
		}
		if t := cfg.Inject.Hit(faults.SiteDecode); t != nil {
			return nil, t.WithGuestPC(cur)
		}
		inst, size, err := x86.Decode(mem[cur:])
		if err != nil {
			return nil, faults.Wrap(faults.TrapDecode, err, "frontend: guest decode").WithGuestPC(cur)
		}
		if cfg.SyscallBarrier && inst.Op == x86.SYSCALL && n > 0 {
			// End the block before the syscall; the dispatcher re-enters
			// at cur and translates the syscall as its own block.
			tr.b.Exit(cur)
			tr.b.GuestEnd = cur
			done()
			return tr.b, nil
		}
		next := cur + uint64(size)
		if err := tr.emit(inst, next); err != nil {
			return nil, fmt.Errorf("frontend: at %#x (%v): %w", cur, inst, err)
		}
		cur = next
		decoded++
		if inst.IsBranch() {
			tr.b.GuestEnd = cur
			done()
			return tr.b, nil
		}
	}
	// Block limit reached: fall through to the next guest pc.
	tr.b.Exit(cur)
	tr.b.GuestEnd = cur
	done()
	return tr.b, nil
}

// address computes a memory operand's effective address into a fresh temp.
func (tr *translator) address(m x86.Mem) tcg.Temp {
	b := tr.b
	addr := tr.tmp()
	b.Mov(addr, guestReg(m.Base))
	if m.Index != x86.RegNone {
		idx := tr.tmp()
		if m.Scale > 1 {
			sc := tr.tmp()
			b.MovI(sc, int64(m.Scale))
			b.Alu(tcg.OpMul, idx, guestReg(m.Index), sc)
			tr.release(sc)
		} else {
			b.Mov(idx, guestReg(m.Index))
		}
		b.Alu(tcg.OpAdd, addr, addr, idx)
		tr.release(idx)
	}
	if m.Disp != 0 {
		d := tr.tmp()
		b.MovI(d, int64(m.Disp))
		b.Alu(tcg.OpAdd, addr, addr, d)
		tr.release(d)
	}
	return addr
}

// emitLoad emits a guest load with the scheme's fences (Figure 7a: ld;Frm —
// Figure 2: Frr;ld, QEMU's Fmr demoted for x86 guests).
func (tr *translator) emitLoad(dst, addr tcg.Temp, size uint8) {
	switch tr.cfg.Scheme {
	case mapping.X86Qemu:
		tr.b.Mb(memmodel.FenceFrr)
		tr.b.Ld(dst, addr, 0, size)
	case mapping.X86Verified:
		tr.b.Ld(dst, addr, 0, size)
		tr.b.Mb(memmodel.FenceFrm)
	default:
		tr.b.Ld(dst, addr, 0, size)
	}
}

// emitStore emits a guest store with the scheme's fences (Fww;st verified,
// Fmw;st QEMU).
func (tr *translator) emitStore(addr, src tcg.Temp, size uint8) {
	switch tr.cfg.Scheme {
	case mapping.X86Qemu:
		tr.b.Mb(memmodel.FenceFmw)
	case mapping.X86Verified:
		tr.b.Mb(memmodel.FenceFww)
	}
	tr.b.St(addr, 0, src, size)
}

var aluOps = map[x86.Op]tcg.Opcode{
	x86.ADDrr: tcg.OpAdd, x86.ADDri: tcg.OpAdd,
	x86.SUBrr: tcg.OpSub, x86.SUBri: tcg.OpSub,
	x86.IMULrr: tcg.OpMul, x86.IMULri: tcg.OpMul,
	x86.ANDrr: tcg.OpAnd, x86.ANDri: tcg.OpAnd,
	x86.ORrr: tcg.OpOr, x86.ORri: tcg.OpOr,
	x86.XORrr: tcg.OpXor, x86.XORri: tcg.OpXor,
	x86.SHLri: tcg.OpShl, x86.SHLrr: tcg.OpShl,
	x86.SHRri: tcg.OpShr, x86.SHRrr: tcg.OpShr,
	x86.SARri:  tcg.OpSar,
	x86.UDIVrr: tcg.OpUDiv, x86.UREMrr: tcg.OpURem,
}

func (tr *translator) emit(in x86.Inst, next uint64) error {
	b := tr.b
	switch in.Op {
	case x86.NOP:

	case x86.MOVri:
		b.MovI(guestReg(in.Dst), in.Imm)
	case x86.MOVrr:
		b.Mov(guestReg(in.Dst), guestReg(in.Src))

	case x86.LOAD:
		addr := tr.address(in.Mem)
		tr.emitLoad(guestReg(in.Dst), addr, in.Size)
		tr.release(addr)
	case x86.STORE:
		addr := tr.address(in.Mem)
		tr.emitStore(addr, guestReg(in.Src), in.Size)
		tr.release(addr)
	case x86.STOREi:
		addr := tr.address(in.Mem)
		v := tr.tmp()
		b.MovI(v, in.Imm)
		tr.emitStore(addr, v, in.Size)
		tr.release(addr, v)
	case x86.LEA:
		addr := tr.address(in.Mem)
		b.Mov(guestReg(in.Dst), addr)
		tr.release(addr)

	case x86.ADDrr, x86.SUBrr, x86.IMULrr, x86.ANDrr, x86.ORrr, x86.XORrr,
		x86.SHLrr, x86.SHRrr, x86.UDIVrr, x86.UREMrr:
		b.Alu(aluOps[in.Op], guestReg(in.Dst), guestReg(in.Dst), guestReg(in.Src))
	case x86.ADDri, x86.SUBri, x86.IMULri, x86.ANDri, x86.ORri, x86.XORri,
		x86.SHLri, x86.SHRri, x86.SARri:
		t := tr.tmp()
		b.MovI(t, in.Imm)
		b.Alu(aluOps[in.Op], guestReg(in.Dst), guestReg(in.Dst), t)
		tr.release(t)
	case x86.NEGr:
		b.Emit(tcg.Inst{Op: tcg.OpNeg, Dst: guestReg(in.Dst), A: guestReg(in.Dst)})
	case x86.NOTr:
		b.Emit(tcg.Inst{Op: tcg.OpNot, Dst: guestReg(in.Dst), A: guestReg(in.Dst)})

	case x86.CMPrr:
		b.Mov(tcg.TempCCDst, guestReg(in.Dst))
		b.Mov(tcg.TempCCSrc, guestReg(in.Src))
	case x86.CMPri:
		b.Mov(tcg.TempCCDst, guestReg(in.Dst))
		b.MovI(tcg.TempCCSrc, in.Imm)
	case x86.TESTrr:
		t := tr.tmp()
		b.Alu(tcg.OpAnd, t, guestReg(in.Dst), guestReg(in.Src))
		b.Mov(tcg.TempCCDst, t)
		b.MovI(tcg.TempCCSrc, 0)
		tr.release(t)
	case x86.TESTri:
		t, imm := tr.tmp(), tr.tmp()
		b.MovI(imm, in.Imm)
		b.Alu(tcg.OpAnd, t, guestReg(in.Dst), imm)
		b.Mov(tcg.TempCCDst, t)
		b.MovI(tcg.TempCCSrc, 0)
		tr.release(t, imm)

	case x86.JMP:
		b.Exit(uint64(int64(next) + int64(in.Rel)))
	case x86.JCC:
		l := b.NewLabel()
		b.Brcond(condOf(in.Cond), tcg.TempCCDst, tcg.TempCCSrc, l)
		b.Exit(next)
		b.SetLabel(l)
		b.Exit(uint64(int64(next) + int64(in.Rel)))
	case x86.CALL:
		tr.push(next) // return address
		b.Exit(uint64(int64(next) + int64(in.Rel)))
	case x86.CALLr:
		// The callee address must be captured before the push in case the
		// register is RSP-relative... it is a plain register; push first
		// is fine unless Dst is RSP itself, which we reject.
		if in.Dst == x86.RSP {
			return fmt.Errorf("call through rsp unsupported")
		}
		tr.push(next)
		b.ExitInd(guestReg(in.Dst))
	case x86.RET:
		rsp := guestReg(x86.RSP)
		t := tr.tmp()
		tr.emitLoad(t, rsp, 8)
		eight := tr.tmp()
		b.MovI(eight, 8)
		b.Alu(tcg.OpAdd, rsp, rsp, eight)
		b.ExitInd(t)
		tr.release(t, eight)

	case x86.PUSH:
		tr.pushReg(guestReg(in.Dst))
	case x86.POP:
		rsp := guestReg(x86.RSP)
		tr.emitLoad(guestReg(in.Dst), rsp, 8)
		eight := tr.tmp()
		b.MovI(eight, 8)
		b.Alu(tcg.OpAdd, rsp, rsp, eight)
		tr.release(eight)

	case x86.MFENCE:
		b.Mb(memmodel.FenceFsc)

	case x86.CMPXCHG:
		addr := tr.address(in.Mem)
		rax := guestReg(x86.RAX)
		old := tr.tmp()
		if tr.cfg.CAS == CASInline {
			b.Emit(tcg.Inst{Op: tcg.OpCAS, Dst: old, A: addr,
				B: rax, C: guestReg(in.Src), Size: in.Size})
		} else {
			b.Emit(tcg.Inst{Op: tcg.OpCall, Helper: tcg.HelperCmpXchg,
				Dst: old, A: addr, B: guestReg(in.Src), Size: in.Size})
		}
		// ZF reflects old == RAX(before), both at access width (the
		// atomic itself compares truncated values); RAX = old is correct
		// in both outcomes (on success old == truncated RAX already).
		b.Mov(tcg.TempCCDst, old)
		if in.Size < 8 {
			mask := tr.tmp()
			b.MovI(mask, int64(uint64(1)<<(8*in.Size)-1))
			b.Alu(tcg.OpAnd, tcg.TempCCSrc, rax, mask)
			tr.release(mask)
		} else {
			b.Mov(tcg.TempCCSrc, rax)
		}
		b.Mov(rax, old)
		tr.release(addr, old)

	case x86.XADD:
		addr := tr.address(in.Mem)
		old := tr.tmp()
		if tr.cfg.CAS == CASInline {
			b.Emit(tcg.Inst{Op: tcg.OpXAdd, Dst: old, A: addr,
				B: guestReg(in.Src), Size: in.Size})
		} else {
			b.Emit(tcg.Inst{Op: tcg.OpCall, Helper: tcg.HelperXAdd,
				Dst: old, A: addr, B: guestReg(in.Src), Size: in.Size})
		}
		b.Mov(guestReg(in.Src), old)
		tr.release(addr, old)

	case x86.XCHGmr:
		addr := tr.address(in.Mem)
		old := tr.tmp()
		if tr.cfg.CAS == CASInline {
			b.Emit(tcg.Inst{Op: tcg.OpXchg, Dst: old, A: addr,
				B: guestReg(in.Src), Size: in.Size})
		} else {
			b.Emit(tcg.Inst{Op: tcg.OpCall, Helper: tcg.HelperXchg,
				Dst: old, A: addr, B: guestReg(in.Src), Size: in.Size})
		}
		b.Mov(guestReg(in.Src), old)
		tr.release(addr, old)

	case x86.SYSCALL:
		b.Emit(tcg.Inst{Op: tcg.OpCall, Helper: HelperSyscall})
		b.Exit(next)

	default:
		return fmt.Errorf("unsupported guest opcode %v", in.Op)
	}
	return nil
}

// push emits an x86 push of a constant (return address).
func (tr *translator) push(value uint64) {
	b := tr.b
	rsp := guestReg(x86.RSP)
	eight := tr.tmp()
	b.MovI(eight, 8)
	b.Alu(tcg.OpSub, rsp, rsp, eight)
	v := tr.tmp()
	b.MovI(v, int64(value))
	tr.emitStore(rsp, v, 8)
	tr.release(eight, v)
}

// pushReg emits an x86 push of a register. PUSH RSP stores the
// pre-decrement value, so the source is captured first.
func (tr *translator) pushReg(src tcg.Temp) {
	b := tr.b
	rsp := guestReg(x86.RSP)
	val := tr.tmp()
	b.Mov(val, src)
	eight := tr.tmp()
	b.MovI(eight, 8)
	b.Alu(tcg.OpSub, rsp, rsp, eight)
	tr.emitStore(rsp, val, 8)
	tr.release(eight, val)
}
