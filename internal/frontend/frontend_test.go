package frontend

import (
	"testing"

	"repro/internal/isa/x86"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/tcg"
)

// assemble builds guest code at 0x1000 inside a 64 KiB memory image.
func assemble(t *testing.T, build func(a *x86.Assembler)) []byte {
	t.Helper()
	a := x86.NewAssembler()
	build(a)
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<16)
	copy(mem[0x1000:], code)
	return mem
}

// run translates at 0x1000 and executes the block on the reference
// interpreter with the given initial guest registers.
func run(t *testing.T, mem []byte, cfg Config, init map[x86.Reg]uint64) *tcg.Interp {
	t.Helper()
	blk, err := Translate(mem, 0x1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	it := tcg.NewInterp(blk, len(mem))
	copy(it.Mem, mem)
	for r, v := range init {
		it.Temps[r] = v
	}
	if err := it.Run(blk); err != nil {
		t.Fatalf("%v\n%s", err, blk)
	}
	return it
}

func countFences(blk *tcg.Block, k memmodel.Fence) int {
	n := 0
	for _, in := range blk.Insts {
		if in.Op == tcg.OpMb && in.Fence == k {
			n++
		}
	}
	return n
}

func TestALUAndMoves(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RAX, 10).
			MovRI(x86.RBX, 3).
			AddRR(x86.RAX, x86.RBX). // 13
			ShlRI(x86.RAX, 2).       // 52
			SubRI(x86.RAX, 2).       // 50
			MovRR(x86.RCX, x86.RAX).
			Ret()
	})
	it := run(t, mem, Config{Scheme: mapping.X86Verified}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RAX] != 50 || it.Temps[x86.RCX] != 50 {
		t.Fatalf("rax=%d rcx=%d", it.Temps[x86.RAX], it.Temps[x86.RCX])
	}
}

func TestLoadStoreAddressing(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RSI, 0x4000).
			MovRI(x86.RCX, 3).
			MovRI(x86.RAX, 0xAB).
			Store(x86.MemIdx(x86.RSI, x86.RCX, 8, 16), x86.RAX, 8).
			Load(x86.RBX, x86.MemIdx(x86.RSI, x86.RCX, 8, 16), 8).
			Lea(x86.RDX, x86.MemIdx(x86.RSI, x86.RCX, 4, -4)).
			Ret()
	})
	it := run(t, mem, Config{}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RBX] != 0xAB {
		t.Fatalf("load-back = %#x", it.Temps[x86.RBX])
	}
	if it.Temps[x86.RDX] != 0x4000+3*4-4 {
		t.Fatalf("lea = %#x", it.Temps[x86.RDX])
	}
	// The store landed at base+idx*scale+disp.
	if v, _ := it.Temps[x86.RBX], 0; v != 0xAB {
		_ = v
	}
}

func TestSubByteAccesses(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RSI, 0x4000).
			MovRI(x86.RAX, 0x1122334455667788).
			Store(x86.Mem0(x86.RSI), x86.RAX, 8).
			Load(x86.RBX, x86.Mem0(x86.RSI), 1).
			Load(x86.RCX, x86.Mem0(x86.RSI), 2).
			Load(x86.RDX, x86.Mem0(x86.RSI), 4).
			Ret()
	})
	it := run(t, mem, Config{}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RBX] != 0x88 || it.Temps[x86.RCX] != 0x7788 || it.Temps[x86.RDX] != 0x55667788 {
		t.Fatalf("got %#x %#x %#x", it.Temps[x86.RBX], it.Temps[x86.RCX], it.Temps[x86.RDX])
	}
}

func TestConditionCodes(t *testing.T) {
	// For (a, b) pairs, check each condition's branch outcome matches Go.
	type tc struct {
		a, b uint64
		cond x86.Cond
		want bool
	}
	cases := []tc{
		{5, 5, x86.CondEQ, true},
		{5, 6, x86.CondNE, true},
		{^uint64(0), 1, x86.CondLT, true}, // -1 < 1 signed
		{^uint64(0), 1, x86.CondA, true},  // max > 1 unsigned
		{^uint64(0), 1, x86.CondB, false}, // not below unsigned
		{2, 3, x86.CondLE, true},
		{3, 3, x86.CondGE, true},
		{4, 3, x86.CondGT, true},
		{3, 4, x86.CondBE, true},
		{4, 3, x86.CondAE, true},
	}
	for i, c := range cases {
		mem := assemble(t, func(a *x86.Assembler) {
			a.MovRI(x86.RDX, 0).
				CmpRR(x86.RAX, x86.RBX).
				Jcc(c.cond, "taken").
				Jmp("out").
				Label("taken").
				MovRI(x86.RDX, 1).
				Label("out").
				Ret()
		})
		// Translation stops at the first branch; run block-by-block via
		// the interpreter until the Ret's indirect exit.
		blkMem := mem
		it := runUntilRet(t, blkMem, Config{}, map[x86.Reg]uint64{
			x86.RAX: c.a, x86.RBX: c.b, x86.RSP: 0x8000,
		})
		got := it.Temps[x86.RDX] == 1
		if got != c.want {
			t.Errorf("case %d (%v): got %v want %v", i, c.cond, got, c.want)
		}
	}
}

// runUntilRet chains translation blocks (the Translate API stops at each
// branch) until the block exits through RET's indirect target 0 or a halt.
func runUntilRet(t *testing.T, mem []byte, cfg Config, init map[x86.Reg]uint64) *tcg.Interp {
	t.Helper()
	pc := uint64(0x1000)
	var it *tcg.Interp
	regs := make([]uint64, tcg.NumGlobals)
	for r, v := range init {
		regs[r] = v
	}
	memory := append([]byte(nil), mem...)
	for steps := 0; steps < 64; steps++ {
		blk, err := Translate(memory, pc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		it = tcg.NewInterp(blk, len(memory))
		copy(it.Mem, memory)
		copy(it.Temps[:tcg.NumGlobals], regs)
		if err := it.Run(blk); err != nil {
			t.Fatalf("%v\n%s", err, blk)
		}
		copy(regs, it.Temps[:tcg.NumGlobals])
		copy(memory, it.Mem)
		if it.Halted || it.NextPC == 0 || it.NextPC >= uint64(len(memory)) {
			return it
		}
		pc = it.NextPC
	}
	t.Fatal("block chain did not terminate")
	return nil
}

func TestFencePlacementPerScheme(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RSI, 0x4000).
			Load(x86.RAX, x86.Mem0(x86.RSI), 8).
			Store(x86.MemD(x86.RSI, 8), x86.RAX, 8).
			MFence().
			Ret()
	})

	// Verified (Figure 7a): ld;Frm and Fww;st, MFENCE→Fsc. The trailing
	// Frm must come after the ld; the Fww before the st.
	blk, err := Translate(mem, 0x1000, Config{Scheme: mapping.X86Verified})
	if err != nil {
		t.Fatal(err)
	}
	// Two Frm fences: one for the guest load, one for RET's stack load.
	if countFences(blk, memmodel.FenceFrm) != 2 || countFences(blk, memmodel.FenceFww) != 1 ||
		countFences(blk, memmodel.FenceFsc) != 1 {
		t.Fatalf("verified fences wrong:\n%s", blk)
	}
	// Order check: first Frm after the first OpLd, Fww before the OpSt.
	ldIdx, frmIdx, fwwIdx, stIdx := -1, -1, -1, -1
	for i, in := range blk.Insts {
		switch {
		case in.Op == tcg.OpLd && ldIdx < 0:
			ldIdx = i
		case in.Op == tcg.OpMb && in.Fence == memmodel.FenceFrm && frmIdx < 0:
			frmIdx = i
		case in.Op == tcg.OpMb && in.Fence == memmodel.FenceFww && fwwIdx < 0:
			fwwIdx = i
		case in.Op == tcg.OpSt && stIdx < 0:
			stIdx = i
		}
	}
	if !(ldIdx < frmIdx && frmIdx < fwwIdx && fwwIdx < stIdx) {
		t.Fatalf("fence order wrong: ld=%d frm=%d fww=%d st=%d\n%s",
			ldIdx, frmIdx, fwwIdx, stIdx, blk)
	}

	// QEMU (Figure 2): Frr;ld and Fmw;st.
	blk, err = Translate(mem, 0x1000, Config{Scheme: mapping.X86Qemu})
	if err != nil {
		t.Fatal(err)
	}
	// Two Frr (guest load + RET's stack load), one Fmw for the store.
	if countFences(blk, memmodel.FenceFrr) != 2 || countFences(blk, memmodel.FenceFmw) != 1 {
		t.Fatalf("qemu fences wrong:\n%s", blk)
	}

	// No-fences: only the explicit MFENCE survives.
	blk, err = Translate(mem, 0x1000, Config{Scheme: mapping.X86NoFences})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, k := range []memmodel.Fence{memmodel.FenceFrr, memmodel.FenceFrm,
		memmodel.FenceFww, memmodel.FenceFmw} {
		total += countFences(blk, k)
	}
	if total != 0 || countFences(blk, memmodel.FenceFsc) != 1 {
		t.Fatalf("no-fences scheme emitted access fences:\n%s", blk)
	}
}

func TestPushPopCallRet(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RAX, 5).
			Push(x86.RAX).
			MovRI(x86.RAX, 9).
			Pop(x86.RBX).
			Ret()
	})
	it := runUntilRet(t, mem, Config{}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RBX] != 5 {
		t.Fatalf("pop = %d", it.Temps[x86.RBX])
	}
	if it.Temps[x86.RSP] != 0x8000+8 { // ret popped the (empty) frame
		t.Fatalf("rsp = %#x", it.Temps[x86.RSP])
	}
}

func TestPushRSPStoresPreDecrement(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.Push(x86.RSP).
			Pop(x86.RBX).
			Ret()
	})
	it := runUntilRet(t, mem, Config{}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RBX] != 0x8000 {
		t.Fatalf("push rsp stored %#x, want pre-decrement 0x8000", it.Temps[x86.RBX])
	}
}

func TestCmpXchgSemantics(t *testing.T) {
	for _, cas := range []CASStrategy{CASInline, CASHelper} {
		mem := assemble(t, func(a *x86.Assembler) {
			a.MovRI(x86.RSI, 0x4000).
				MovRI(x86.RAX, 0). // expected (matches zeroed memory)
				MovRI(x86.RBX, 7).
				CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8).
				Jcc(x86.CondNE, "fail").
				MovRI(x86.RCX, 1).
				Jmp("out").
				Label("fail").
				MovRI(x86.RCX, 2).
				Label("out").
				Ret()
		})
		it := runUntilRetWithHelpers(t, mem, Config{CAS: cas}, map[x86.Reg]uint64{x86.RSP: 0x8000})
		if it.Temps[x86.RCX] != 1 {
			t.Fatalf("cas=%v: ZF path = %d, want success", cas, it.Temps[x86.RCX])
		}
		if it.Temps[x86.RAX] != 0 {
			t.Fatalf("cas=%v: rax = %d, want old value 0", cas, it.Temps[x86.RAX])
		}
	}
}

// runUntilRetWithHelpers is runUntilRet with a helper emulation for the
// interpreter (the machine-level helpers live in internal/core; tests here
// emulate them at the IR level).
func runUntilRetWithHelpers(t *testing.T, mem []byte, cfg Config, init map[x86.Reg]uint64) *tcg.Interp {
	t.Helper()
	pc := uint64(0x1000)
	regs := make([]uint64, tcg.NumGlobals)
	for r, v := range init {
		regs[r] = v
	}
	memory := append([]byte(nil), mem...)
	var it *tcg.Interp
	for steps := 0; steps < 64; steps++ {
		blk, err := Translate(memory, pc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		it = tcg.NewInterp(blk, len(memory))
		copy(it.Mem, memory)
		copy(it.Temps[:tcg.NumGlobals], regs)
		interp := it
		it.OnCall = func(h tcg.Helper, a, b uint64) uint64 {
			switch h {
			case tcg.HelperCmpXchg:
				old := uint64(0)
				for i := 0; i < 8; i++ {
					old |= uint64(interp.Mem[a+uint64(i)]) << (8 * i)
				}
				if old == interp.Temps[0] { // guest RAX
					for i := 0; i < 8; i++ {
						interp.Mem[a+uint64(i)] = byte(b >> (8 * i))
					}
				}
				return old
			}
			t.Fatalf("unexpected helper %d", h)
			return 0
		}
		if err := it.Run(blk); err != nil {
			t.Fatalf("%v\n%s", err, blk)
		}
		copy(regs, it.Temps[:tcg.NumGlobals])
		copy(memory, it.Mem)
		if it.Halted || it.NextPC == 0 {
			return it
		}
		pc = it.NextPC
	}
	t.Fatal("did not terminate")
	return nil
}

func TestXAddAndXchg(t *testing.T) {
	mem := assemble(t, func(a *x86.Assembler) {
		a.MovRI(x86.RSI, 0x4000).
			MovRI(x86.RAX, 100).
			Store(x86.Mem0(x86.RSI), x86.RAX, 8).
			MovRI(x86.RBX, 5).
			XAdd(x86.Mem0(x86.RSI), x86.RBX, 8). // mem=105, rbx=100
			MovRI(x86.RCX, 42).
			Xchg(x86.Mem0(x86.RSI), x86.RCX, 8). // mem=42, rcx=105
			Load(x86.RDX, x86.Mem0(x86.RSI), 8).
			Ret()
	})
	it := run(t, mem, Config{CAS: CASInline}, map[x86.Reg]uint64{x86.RSP: 0x8000})
	if it.Temps[x86.RBX] != 100 || it.Temps[x86.RCX] != 105 || it.Temps[x86.RDX] != 42 {
		t.Fatalf("rbx=%d rcx=%d rdx=%d", it.Temps[x86.RBX], it.Temps[x86.RCX], it.Temps[x86.RDX])
	}
}

func TestBlockBoundaries(t *testing.T) {
	// A block ends at the first branch; a long straight-line run ends at
	// MaxInsts with a fall-through exit.
	mem := assemble(t, func(a *x86.Assembler) {
		for i := 0; i < 10; i++ {
			a.AddRI(x86.RAX, 1)
		}
		a.Ret()
	})
	blk, err := Translate(mem, 0x1000, Config{MaxInsts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blk.GuestEnd-blk.GuestPC != 4*uint64(x86.EncodedLen(x86.ADDri)) {
		t.Fatalf("block spans %d bytes", blk.GuestEnd-blk.GuestPC)
	}
	last := blk.Insts[len(blk.Insts)-1]
	if last.Op != tcg.OpExit || uint64(last.Imm) != blk.GuestEnd {
		t.Fatalf("fall-through exit wrong: %v", last)
	}
}

func TestDecodeErrorsSurface(t *testing.T) {
	mem := make([]byte, 0x2000)
	mem[0x1000] = 0xFF // invalid opcode
	if _, err := Translate(mem, 0x1000, Config{}); err == nil {
		t.Fatal("invalid guest opcode must error")
	}
	if _, err := Translate(mem, uint64(len(mem))+8, Config{}); err == nil {
		t.Fatal("pc outside memory must error")
	}
}
