package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export, mirroring the paper artifact's workflow (its scripts write
// raw results as CSV files into results/ for the plotting notebooks).

// WriteFig12CSV writes fig12.csv: one row per benchmark with the relative
// runtimes and QEMU's absolute seconds.
func WriteFig12CSV(dir string, rows []Fig12Row) error {
	records := [][]string{{
		"benchmark", "suite", "qemu_secs",
		"rel_no_fences", "rel_tcg_ver", "rel_risotto", "rel_native",
		"checksums_agree",
	}}
	for _, r := range rows {
		records = append(records, []string{
			r.Kernel, r.Suite,
			fmtF(r.QemuSecs),
			fmtF(r.Relative["no-fences"]), fmtF(r.Relative["tcg-ver"]),
			fmtF(r.Relative["risotto"]), fmtF(r.Relative["native"]),
			strconv.FormatBool(r.Checksums),
		})
	}
	return writeCSV(dir, "fig12.csv", records)
}

// WriteFig12JSON writes BENCH_fig12.json: the same rows as fig12.csv plus
// the per-workload metric columns from the risotto run's observability
// snapshot, for tooling that wants structured results.
func WriteFig12JSON(dir string, rows []Fig12Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_fig12.json"), append(data, '\n'), 0o644)
}

// WriteLinkCSV writes a Figure-13/14-style speedup table.
func WriteLinkCSV(dir, name string, rows []LinkRow) error {
	records := [][]string{{"benchmark", "qemu_ops_per_sec", "risotto_speedup", "native_speedup"}}
	for _, r := range rows {
		records = append(records, []string{
			r.Name, fmtF(r.QemuOps), fmtF(r.RisottoSpeedup), fmtF(r.NativeSpeedup),
		})
	}
	return writeCSV(dir, name, records)
}

// WriteFig15CSV writes the CAS-contention sweep.
func WriteFig15CSV(dir string, rows []Fig15Row) error {
	records := [][]string{{"threads", "vars", "qemu_ops_per_sec", "risotto_ops_per_sec", "native_ops_per_sec"}}
	for _, r := range rows {
		records = append(records, []string{
			strconv.Itoa(r.Threads), strconv.Itoa(r.Vars),
			fmtF(r.Qemu), fmtF(r.Risotto), fmtF(r.Native),
		})
	}
	return writeCSV(dir, "fig15.csv", records)
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func writeCSV(dir, name string, records [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(records); err != nil {
		f.Close()
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
