package bench

import (
	"fmt"
	"strings"

	"repro/internal/litmus"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/models"
)

// MotivationReport reproduces the §3 correctness findings as an executable
// check: QEMU's translation errors on MPQ and SBQ, the original
// Armed-Cats casal error on SBAL and its fix, and the FMR counterexample
// against RAW elimination under Fmr. opts tune every enumeration the sweep
// performs (workers, cache, observability, fault injection).
func MotivationReport(opts ...litmus.Option) string {
	var sb strings.Builder
	sb.WriteString("§3 motivation — translation errors found by the model checker\n\n")

	report := func(title string, v mapping.Verification, expectError bool) {
		status := "correct"
		if !v.Correct() {
			status = fmt.Sprintf("ERROR: %d new behaviour(s), e.g. %v",
				len(v.NewBehaviours), v.NewBehaviours[0])
		}
		check := "✓ matches paper"
		if v.Correct() == expectError {
			check = "✗ DOES NOT match paper"
		}
		fmt.Fprintf(&sb, "%-58s %s\n    %s → %s [%s → %s]\n\n",
			title, check, v.Source, v.Target, v.SourceModel, v.TargetModel)
		fmt.Fprintf(&sb, "    %s\n\n", status)
	}

	// QEMU's MPQ error (RMW1^AL helper, GCC ≥ 10).
	mpq := mapping.X86ToArm(litmus.MPQ(), mapping.X86Qemu, mapping.ArmQemu, mapping.RMWHelperCasal)
	report("QEMU x86→Arm of MPQ (casal helper): expected erroneous",
		mapping.VerifyTheorem1(litmus.MPQ(), models.ByLevel(memmodel.LevelX86), mpq, models.ByLevel(memmodel.LevelArm), opts...), true)

	// QEMU's SBQ error (RMW2^AL helper, GCC 9).
	sbq := mapping.X86ToArm(litmus.SBQ(), mapping.X86Qemu, mapping.ArmQemu, mapping.RMWHelperExclusiveAL)
	report("QEMU x86→Arm of SBQ (ldaxr/stlxr helper): expected erroneous",
		mapping.VerifyTheorem1(litmus.SBQ(), models.ByLevel(memmodel.LevelX86), sbq, models.ByLevel(memmodel.LevelArm), opts...), true)

	// Armed-Cats original-model SBAL error (Figure 3 mapping).
	report("Figure-3 mapping of SBAL under ORIGINAL Arm-Cats: expected erroneous",
		mapping.VerifyTheorem1(litmus.SBAL(), models.ByLevel(memmodel.LevelX86), litmus.SBALArm(),
			models.MustLookup("arm-cats-original"), opts...), true)
	report("Figure-3 mapping of SBAL under CORRECTED Arm-Cats: expected correct",
		mapping.VerifyTheorem1(litmus.SBAL(), models.ByLevel(memmodel.LevelX86), litmus.SBALArm(),
			models.ByLevel(memmodel.LevelArm), opts...), false)

	// FMR: RAW transformation under Fmr.
	report("RAW elimination under Fmr (FMR example): expected erroneous",
		mapping.VerifyTheorem1(litmus.FMRSource(), models.ByLevel(memmodel.LevelTCG), litmus.FMRTarget(),
			models.ByLevel(memmodel.LevelTCG), opts...), true)

	// Risotto's verified end-to-end translations of the same programs.
	for _, p := range []*litmus.Program{litmus.MPQ(), litmus.SBQ(), litmus.SBAL()} {
		arm := mapping.X86ToArm(p, mapping.X86Verified, mapping.ArmVerified, mapping.RMWCasal)
		report(fmt.Sprintf("Risotto verified x86→Arm of %s: expected correct", p.Name),
			mapping.VerifyTheorem1(p, models.ByLevel(memmodel.LevelX86), arm, models.ByLevel(memmodel.LevelArm), opts...), false)
	}
	return sb.String()
}

// VerifyReport runs Theorem 1 for the verified mapping schemes over the
// whole corpus — the executable form of §5.4's mechanized proofs. opts
// tune every enumeration the sweep performs.
func VerifyReport(opts ...litmus.Option) string {
	var sb strings.Builder
	sb.WriteString("§5.4 verified mappings — Theorem 1 over the litmus corpus\n\n")
	styles := []struct {
		name  string
		style mapping.RMWStyle
	}{
		{"RMW1^AL (casal)", mapping.RMWCasal},
		{"DMBFF;RMW2;DMBFF", mapping.RMWExclusiveFenced},
	}
	allOK := true
	for _, st := range styles {
		fmt.Fprintf(&sb, "RMW lowering: %s\n", st.name)
		for _, p := range litmus.X86Corpus() {
			ir := mapping.X86ToTCG(p, mapping.X86Verified)
			v1 := mapping.VerifyTheorem1(p, models.ByLevel(memmodel.LevelX86), ir, models.ByLevel(memmodel.LevelTCG), opts...)
			arm := mapping.TCGToArm(ir, mapping.ArmVerified, st.style)
			v2 := mapping.VerifyTheorem1(ir, models.ByLevel(memmodel.LevelTCG), arm, models.ByLevel(memmodel.LevelArm), opts...)
			v3 := mapping.VerifyTheorem1(p, models.ByLevel(memmodel.LevelX86), arm, models.ByLevel(memmodel.LevelArm), opts...)
			ok := v1.Correct() && v2.Correct() && v3.Correct()
			if !ok {
				allOK = false
			}
			fmt.Fprintf(&sb, "  %-12s x86→IR %-5v IR→Arm %-5v x86→Arm %-5v\n",
				p.Name, v1.Correct(), v2.Correct(), v3.Correct())
		}
	}
	fmt.Fprintf(&sb, "\nall correct: %v\n", allOK)
	return sb.String()
}
