// Package bench regenerates the Risotto paper's evaluation (§7): Figure 12
// (PARSEC+Phoenix runtime relative to QEMU), Figure 13 (OpenSSL/sqlite
// speedups via the host linker), Figure 14 (libm speedups), and Figure 15
// (CAS throughput under contention), plus the §3 motivation results
// (litmus-level translation errors). Results are simulated cycle counts
// converted to time at a nominal 2 GHz (the paper's fixed ThunderX2
// frequency); only relative shapes are meaningful.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hostlib"
	"repro/internal/obs"
	"repro/internal/portasm"
	"repro/internal/workloads"
)

// ClockHz converts simulated cycles to seconds.
const ClockHz = 2e9

// Variants evaluated in Figure 12, in display order.
var Variants = []core.Variant{
	core.VariantNoFences, core.VariantTCGVer, core.VariantRisotto,
}

// RunGuest executes a built guest program under a variant and returns
// (cycles, exitCode, stats).
func RunGuest(b *portasm.Builder, v core.Variant, idl string) (uint64, uint64, core.Stats, error) {
	return RunGuestQuantum(b, v, idl, 0)
}

// RunGuestQuantum is RunGuest with an explicit scheduling quantum.
func RunGuestQuantum(b *portasm.Builder, v core.Variant, idl string, quantum int) (uint64, uint64, core.Stats, error) {
	return RunGuestScoped(b, v, idl, quantum, nil)
}

// RunGuestScoped is RunGuestQuantum with an observability scope threaded
// into the runtime, so callers can read the full metric/span snapshot of
// the run rather than only the Stats façade. extra options append after
// the standard ones (last wins) — the tier-up benchmarks use this to turn
// promotion on without a parallel set of entry points.
func RunGuestScoped(b *portasm.Builder, v core.Variant, idl string, quantum int, sc *obs.Scope, extra ...core.Option) (uint64, uint64, core.Stats, error) {
	img, err := b.BuildGuest("main")
	if err != nil {
		return 0, 0, core.Stats{}, err
	}
	opts := []core.Option{
		core.WithVariant(v),
		core.WithHostLinker(idl, nil),
		core.WithQuantum(quantum),
		core.WithObs(sc),
	}
	rt, err := core.New(img, append(opts, extra...)...)
	if err != nil {
		return 0, 0, core.Stats{}, err
	}
	code, err := rt.Run()
	if err != nil {
		return 0, 0, core.Stats{}, err
	}
	return rt.M.MaxCycles(), code, rt.Stats(), nil
}

// RunNative executes a built program natively and returns (cycles, code).
func RunNative(b *portasm.Builder) (uint64, uint64, error) {
	img, err := b.BuildNative("main")
	if err != nil {
		return 0, 0, err
	}
	m, err := portasm.RunNative(img, 0)
	if err != nil {
		return 0, 0, err
	}
	return m.MaxCycles(), m.CPUs[0].ExitCode, nil
}

// --- Figure 12 ---------------------------------------------------------------

// Fig12Row is one benchmark's result: runtime of each setup relative to
// QEMU (lower is better), plus QEMU's absolute simulated seconds and the
// per-workload metric columns sampled from the risotto variant's
// observability snapshot.
type Fig12Row struct {
	Kernel    string             `json:"kernel"`
	Suite     string             `json:"suite"`
	QemuSecs  float64            `json:"qemu_secs"`
	Relative  map[string]float64 `json:"relative"` // variant name (or "native") → runtime/qemu
	Checksums bool               `json:"checksums_agree"`
	Metrics   map[string]uint64  `json:"metrics,omitempty"`
}

// Fig12 runs every requested kernel (all registered kernels if names is
// empty) under all setups. extra options (e.g. core.WithTierUp from the
// -tierup flag) apply to every translated run — QEMU baseline included —
// so the relative columns stay an apples-to-apples comparison.
func Fig12(threads, scale int, names []string, extra ...core.Option) ([]Fig12Row, error) {
	var kernels []workloads.Kernel
	if len(names) == 0 {
		kernels = workloads.Registry()
	} else {
		for _, n := range names {
			k, err := workloads.KernelByName(n)
			if err != nil {
				return nil, err
			}
			kernels = append(kernels, k)
		}
	}

	var rows []Fig12Row
	for _, k := range kernels {
		row := Fig12Row{Kernel: k.Name, Suite: k.Suite,
			Relative: make(map[string]float64), Checksums: true}

		build := func() (*portasm.Builder, error) { return k.Build(threads, scale) }

		b, err := build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		qemuCycles, qemuSum, _, err := RunGuestScoped(b, core.VariantQemu, "", 0, nil, extra...)
		if err != nil {
			return nil, fmt.Errorf("%s/qemu: %w", k.Name, err)
		}
		row.QemuSecs = float64(qemuCycles) / ClockHz

		for _, v := range Variants {
			b, err := build()
			if err != nil {
				return nil, err
			}
			// The risotto run carries a scope so its snapshot becomes the
			// row's metric columns; other variants stay uninstrumented.
			var sc *obs.Scope
			if v == core.VariantRisotto {
				sc = obs.NewScope("")
			}
			cyc, sum, _, err := RunGuestScoped(b, v, "", 0, sc, extra...)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", k.Name, v, err)
			}
			if sum != qemuSum {
				row.Checksums = false
			}
			row.Relative[v.String()] = float64(cyc) / float64(qemuCycles)
			if sc != nil {
				row.Metrics = MetricColumns(sc.Snapshot())
			}
		}

		b, err = build()
		if err != nil {
			return nil, err
		}
		ncyc, nsum, err := RunNative(b)
		if err != nil {
			return nil, fmt.Errorf("%s/native: %w", k.Name, err)
		}
		if nsum != qemuSum {
			row.Checksums = false
		}
		row.Relative["native"] = float64(ncyc) / float64(qemuCycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Summary reports the paper's headline quantities over a Fig12 run.
type Fig12Summary struct {
	// FenceShareMax/Avg: fraction of QEMU runtime attributable to fences
	// (1 − no-fences relative runtime), §7.2's "up to 75%, 48% average".
	FenceShareMax, FenceShareAvg float64
	// TCGVerGainMax/Avg: improvement of the verified mappings over QEMU,
	// §7.2's "up to 19.7%, 6.7% on average".
	TCGVerGainMax, TCGVerGainAvg float64
	// LinkerOverheadAvg: |risotto − tcg-ver| mean relative difference —
	// §7.3's "no impact when no host function is linked".
	LinkerOverheadAvg float64
}

// Summarize computes Fig12Summary from rows.
func Summarize(rows []Fig12Row) Fig12Summary {
	var s Fig12Summary
	if len(rows) == 0 {
		return s
	}
	for _, r := range rows {
		fence := 1 - r.Relative["no-fences"]
		gain := 1 - r.Relative["tcg-ver"]
		if fence > s.FenceShareMax {
			s.FenceShareMax = fence
		}
		if gain > s.TCGVerGainMax {
			s.TCGVerGainMax = gain
		}
		s.FenceShareAvg += fence
		s.TCGVerGainAvg += gain
		d := r.Relative["risotto"] - r.Relative["tcg-ver"]
		if d < 0 {
			d = -d
		}
		s.LinkerOverheadAvg += d
	}
	n := float64(len(rows))
	s.FenceShareAvg /= n
	s.TCGVerGainAvg /= n
	s.LinkerOverheadAvg /= n
	return s
}

// RenderFig12 formats rows as the paper's Figure 12 (runtime relative to
// QEMU, lower is better).
func RenderFig12(rows []Fig12Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12: run time relative to QEMU (lower is better); raw QEMU seconds in last column\n")
	fmt.Fprintf(&sb, "%-18s %-8s %10s %10s %10s %10s %12s %s\n",
		"benchmark", "suite", "no-fences", "tcg-ver", "risotto", "native", "qemu-secs", "agree")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-8s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12.4f %v\n",
			r.Kernel, r.Suite,
			100*r.Relative["no-fences"], 100*r.Relative["tcg-ver"],
			100*r.Relative["risotto"], 100*r.Relative["native"],
			r.QemuSecs, r.Checksums)
	}
	s := Summarize(rows)
	fmt.Fprintf(&sb, "\nfence share of QEMU runtime: avg %.1f%%, max %.1f%% (paper: 48%%, 75%%)\n",
		100*s.FenceShareAvg, 100*s.FenceShareMax)
	fmt.Fprintf(&sb, "tcg-ver improvement over QEMU: avg %.1f%%, max %.1f%% (paper: 6.7%%, 19.7%%)\n",
		100*s.TCGVerGainAvg, 100*s.TCGVerGainMax)
	fmt.Fprintf(&sb, "risotto vs tcg-ver (unused linker overhead): avg %.2f%% (paper: none)\n",
		100*s.LinkerOverheadAvg)
	return sb.String()
}

// --- Figures 13 and 14 --------------------------------------------------------

// LinkRow is one library benchmark: QEMU-translated throughput and the
// speedups of the linked and native executions.
type LinkRow struct {
	Name           string
	QemuOps        float64 // ops/s under QEMU (translated guest library)
	RisottoSpeedup float64 // linked / qemu
	NativeSpeedup  float64 // native / qemu
}

// libBench describes one fig13/fig14 entry.
type libBench struct {
	name  string
	build func(calls int) (*portasm.Builder, error)
	calls int
	// nativeCostPerCall is the pure host cost of one call (hostlib cost
	// model), giving the "native" series.
	nativeCostPerCall func() (uint64, error)
}

func hostCost(fn string, args ...uint64) func() (uint64, error) {
	return func() (uint64, error) {
		lib := hostlib.Default()
		f, ok := lib.Lookup(fn)
		if !ok {
			return 0, fmt.Errorf("bench: host library lacks %q", fn)
		}
		mem := make([]byte, 1<<20)
		_, cycles := f(mem, args)
		return cycles, nil
	}
}

func runLinkRow(lb libBench) (LinkRow, error) {
	b, err := lb.build(lb.calls)
	if err != nil {
		return LinkRow{}, err
	}
	qemuCycles, _, _, err := RunGuest(b, core.VariantQemu, "")
	if err != nil {
		return LinkRow{}, fmt.Errorf("%s/qemu: %w", lb.name, err)
	}
	b, err = lb.build(lb.calls)
	if err != nil {
		return LinkRow{}, err
	}
	linkedCycles, _, st, err := RunGuest(b, core.VariantRisotto, workloads.IDLAll)
	if err != nil {
		return LinkRow{}, fmt.Errorf("%s/risotto: %w", lb.name, err)
	}
	if st.HostCalls == 0 {
		return LinkRow{}, fmt.Errorf("%s: linker did not engage", lb.name)
	}
	nativePerCall, err := lb.nativeCostPerCall()
	if err != nil {
		return LinkRow{}, err
	}

	perQemu := float64(qemuCycles) / float64(lb.calls)
	perLinked := float64(linkedCycles) / float64(lb.calls)
	perNative := float64(nativePerCall)
	return LinkRow{
		Name:           lb.name,
		QemuOps:        ClockHz / perQemu,
		RisottoSpeedup: perQemu / perLinked,
		NativeSpeedup:  perQemu / perNative,
	}, nil
}

// Fig13 runs the OpenSSL and sqlite benchmarks. calls scales the per-bench
// invocation count (0 = defaults).
func Fig13(calls int) ([]LinkRow, error) {
	def := func(n int) int {
		if calls > 0 {
			return calls
		}
		return n
	}
	benches := []libBench{
		{"md5-1024", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("md5", 1024, c) },
			def(8), hostCost("md5", 0x100, 1024)},
		{"md5-8192", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("md5", 8192, c) },
			def(3), hostCost("md5", 0x100, 8192)},
		{"rsa1024-sign", func(c int) (*portasm.Builder, error) { return workloads.RSAProgram(1024, true, c) },
			def(4), hostCost("rsa1024_sign", 7)},
		{"rsa1024-verify", func(c int) (*portasm.Builder, error) { return workloads.RSAProgram(1024, false, c) },
			def(16), hostCost("rsa1024_verify", 7)},
		{"rsa2048-sign", func(c int) (*portasm.Builder, error) { return workloads.RSAProgram(2048, true, c) },
			def(2), hostCost("rsa2048_sign", 7)},
		{"rsa2048-verify", func(c int) (*portasm.Builder, error) { return workloads.RSAProgram(2048, false, c) },
			def(16), hostCost("rsa2048_verify", 7)},
		{"sha1-1024", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("sha1", 1024, c) },
			def(8), hostCost("sha1", 0x100, 1024)},
		{"sha1-8192", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("sha1", 8192, c) },
			def(3), hostCost("sha1", 0x100, 8192)},
		{"sha256-1024", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("sha256", 1024, c) },
			def(8), hostCost("sha256", 0x100, 1024)},
		{"sha256-8192", func(c int) (*portasm.Builder, error) { return workloads.DigestProgram("sha256", 8192, c) },
			def(3), hostCost("sha256", 0x100, 8192)},
		{"sqlite", func(c int) (*portasm.Builder, error) { return workloads.SqliteProgram(512, c) },
			def(4), hostCost("sqlite_exec", 0x100, 512, 1)},
	}
	var rows []LinkRow
	for _, lb := range benches {
		row, err := runLinkRow(lb)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig14 runs the math-library benchmarks.
func Fig14(calls int) ([]LinkRow, error) {
	if calls <= 0 {
		calls = 24
	}
	var rows []LinkRow
	for _, fn := range workloads.MathNames() {
		fn := fn
		row, err := runLinkRow(libBench{
			name: fn,
			build: func(c int) (*portasm.Builder, error) {
				return workloads.MathProgram(fn, c)
			},
			calls:             calls,
			nativeCostPerCall: hostCost(fn, 0x28F5C), // some Q16.16-ish bits
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderLinkRows formats Figure 13/14-style speedup tables.
func RenderLinkRows(title string, rows []LinkRow, unit string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (speedup vs QEMU, higher is better; raw QEMU values in %s)\n", title, unit)
	fmt.Fprintf(&sb, "%-16s %12s %12s %14s\n", "benchmark", "risotto", "native", "qemu-"+unit)
	for _, r := range rows {
		q := r.QemuOps
		if unit == "ops/ms" {
			q /= 1000
		}
		fmt.Fprintf(&sb, "%-16s %11.1fx %11.1fx %14.1f\n",
			r.Name, r.RisottoSpeedup, r.NativeSpeedup, q)
	}
	return sb.String()
}

// --- Figure 15 ---------------------------------------------------------------

// Fig15Row is one (threads, vars) configuration's CAS throughput.
type Fig15Row struct {
	Threads, Vars int
	// Throughput in CAS ops/s for each setup.
	Qemu, Risotto, Native float64
}

// Fig15 runs the CAS contention sweep. opsPerThread scales work
// (0 = default).
func Fig15(opsPerThread int) ([]Fig15Row, error) {
	if opsPerThread <= 0 {
		opsPerThread = 400
	}
	// Contention costs come from the machine's cache-line transfer model;
	// the default quantum keeps retry dynamics comparable across the
	// helper and inline CAS paths (the helper path's longer load-to-CAS
	// window would otherwise retry disproportionately).
	const quantum = 64
	var rows []Fig15Row
	for _, cfg := range workloads.Fig15Configs() {
		threads, vars := cfg[0], cfg[1]
		totalOps := float64(threads * opsPerThread)

		run := func(v core.Variant) (float64, error) {
			b, err := workloads.CASBench(threads, vars, opsPerThread)
			if err != nil {
				return 0, err
			}
			cyc, sum, _, err := RunGuestQuantum(b, v, "", quantum)
			if err != nil {
				return 0, err
			}
			if sum != uint64(threads*opsPerThread) {
				return 0, fmt.Errorf("casbench %d-%d/%v: bad checksum %d", threads, vars, v, sum)
			}
			return totalOps / (float64(cyc) / ClockHz), nil
		}

		q, err := run(core.VariantQemu)
		if err != nil {
			return nil, err
		}
		r, err := run(core.VariantRisotto)
		if err != nil {
			return nil, err
		}
		b, err := workloads.CASBench(threads, vars, opsPerThread)
		if err != nil {
			return nil, err
		}
		nimg, err := b.BuildNative("main")
		if err != nil {
			return nil, err
		}
		nm, err := portasm.RunNativeQuantum(nimg, quantum, 0)
		if err != nil {
			return nil, err
		}
		ncyc, nsum := nm.MaxCycles(), nm.CPUs[0].ExitCode
		if nsum != uint64(threads*opsPerThread) {
			return nil, fmt.Errorf("casbench %d-%d/native: bad checksum %d", threads, vars, nsum)
		}
		rows = append(rows, Fig15Row{
			Threads: threads, Vars: vars,
			Qemu: q, Risotto: r,
			Native: totalOps / (float64(ncyc) / ClockHz),
		})
	}
	return rows, nil
}

// RenderFig15 formats the CAS sweep.
func RenderFig15(rows []Fig15Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 15: CAS throughput (Mops/s) under contention (higher is better)\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %12s\n", "cfg(T-V)", "qemu", "risotto", "native", "riso/qemu")
	var uncontended, all []float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10.1f %10.1f %10.1f %11.1f%%\n",
			fmt.Sprintf("%d-%d", r.Threads, r.Vars),
			r.Qemu/1e6, r.Risotto/1e6, r.Native/1e6,
			100*(r.Risotto/r.Qemu-1))
		gain := r.Risotto/r.Qemu - 1
		all = append(all, gain)
		if r.Threads == r.Vars {
			uncontended = append(uncontended, gain)
		}
	}
	fmt.Fprintf(&sb, "\nuncontended (T==V) risotto gain: avg %.1f%% (paper: up to 48%%, avg 14.5%% over all configs)\n",
		100*mean(uncontended))
	fmt.Fprintf(&sb, "all-config risotto gain: avg %.1f%%\n", 100*mean(all))
	return sb.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MetricColumns flattens a snapshot into the per-workload metric columns
// exported to BENCH_fig12.json: every counter verbatim, every non-negative
// gauge under a "gauge." prefix.
func MetricColumns(snap obs.Snapshot) map[string]uint64 {
	out := make(map[string]uint64, len(snap.Counters)+len(snap.Gauges))
	for name, v := range snap.Counters {
		out[name] = v
	}
	for name, v := range snap.Gauges {
		if v >= 0 {
			out["gauge."+name] = uint64(v)
		}
	}
	return out
}

// SortedVariantNames lists fig12 column names for stable output.
func SortedVariantNames(rows []Fig12Row) []string {
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.Relative {
			seen[k] = true
		}
	}
	var out []string
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
