package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFig12SubsetShapes(t *testing.T) {
	rows, err := Fig12(2, 1, []string{"freqmine", "swaptions"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if !r.Checksums {
			t.Errorf("%s: checksums disagreed", r.Kernel)
		}
		for _, name := range []string{"no-fences", "tcg-ver", "risotto", "native"} {
			if r.Relative[name] <= 0 {
				t.Errorf("%s: missing %s", r.Kernel, name)
			}
		}
		if r.Relative["native"] >= r.Relative["no-fences"] {
			t.Errorf("%s: native (%v) should beat no-fences (%v)",
				r.Kernel, r.Relative["native"], r.Relative["no-fences"])
		}
		if r.Relative["tcg-ver"] > 1.001 {
			t.Errorf("%s: tcg-ver slower than qemu: %v", r.Kernel, r.Relative["tcg-ver"])
		}
	}
	// freqmine is memory-bound: its fence share must exceed swaptions'.
	var fm, sw Fig12Row
	for _, r := range rows {
		if r.Kernel == "freqmine" {
			fm = r
		} else {
			sw = r
		}
	}
	if fm.Relative["no-fences"] >= sw.Relative["no-fences"] {
		t.Errorf("freqmine should be more fence-bound than swaptions: %v vs %v",
			fm.Relative["no-fences"], sw.Relative["no-fences"])
	}

	out := RenderFig12(rows)
	if !strings.Contains(out, "freqmine") || !strings.Contains(out, "fence share") {
		t.Fatalf("render missing content:\n%s", out)
	}
	s := Summarize(rows)
	if s.FenceShareAvg <= 0 || s.FenceShareMax < s.FenceShareAvg {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestFig12UnknownKernel(t *testing.T) {
	if _, err := Fig12(2, 1, []string{"nope"}); err == nil {
		t.Fatal("unknown kernel must error")
	}
}

func TestFig14Shapes(t *testing.T) {
	rows, err := Fig14(4)
	if err != nil {
		t.Fatal(err)
	}
	bySpeed := map[string]float64{}
	for _, r := range rows {
		if r.RisottoSpeedup <= 1 {
			t.Errorf("%s: linked must beat translated (%.2fx)", r.Name, r.RisottoSpeedup)
		}
		if r.NativeSpeedup < r.RisottoSpeedup {
			t.Errorf("%s: native (%.1fx) must be ≥ linked (%.1fx) — marshaling overhead",
				r.Name, r.NativeSpeedup, r.RisottoSpeedup)
		}
		bySpeed[r.Name] = r.RisottoSpeedup
	}
	// §7.3: short functions (sqrt) benefit least.
	if bySpeed["sqrt"] >= bySpeed["cos"] {
		t.Errorf("sqrt (%.1fx) should gain less than cos (%.1fx)", bySpeed["sqrt"], bySpeed["cos"])
	}
	out := RenderLinkRows("Figure 14", rows, "ops/ms")
	if !strings.Contains(out, "sqrt") {
		t.Fatal("render missing sqrt")
	}
}

func TestFig15Shapes(t *testing.T) {
	rows, err := Fig15(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows: %d", len(rows))
	}
	var unconGain, conGain float64
	var nUncon, nCon int
	for _, r := range rows {
		if r.Risotto <= 0 || r.Qemu <= 0 || r.Native <= 0 {
			t.Fatalf("%d-%d: zero throughput", r.Threads, r.Vars)
		}
		gain := r.Risotto/r.Qemu - 1
		if r.Threads == r.Vars {
			unconGain += gain
			nUncon++
		} else {
			conGain += gain
			nCon++
		}
	}
	unconGain /= float64(nUncon)
	conGain /= float64(nCon)
	// §7.4: the gain is concentrated in uncontended configurations.
	if unconGain <= conGain {
		t.Errorf("uncontended gain (%.1f%%) should exceed contended (%.1f%%)",
			100*unconGain, 100*conGain)
	}
	if unconGain <= 0.10 {
		t.Errorf("uncontended gain too small: %.1f%%", 100*unconGain)
	}
	out := RenderFig15(rows)
	if !strings.Contains(out, "16-16") {
		t.Fatal("render missing configs")
	}
}

func TestMotivationReportMatchesPaper(t *testing.T) {
	out := MotivationReport()
	if strings.Contains(out, "DOES NOT match paper") {
		t.Fatalf("motivation mismatch:\n%s", out)
	}
	if !strings.Contains(out, "MPQ") || !strings.Contains(out, "SBAL") {
		t.Fatal("motivation report incomplete")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	rows, err := Fig12(2, 1, []string{"swaptions"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig12CSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("fig12.csv lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,suite,qemu_secs") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "swaptions,parsec,") {
		t.Fatalf("row: %q", lines[1])
	}

	link := []LinkRow{{Name: "md5-1024", QemuOps: 100, RisottoSpeedup: 2, NativeSpeedup: 3}}
	if err := WriteLinkCSV(dir, "fig13.csv", link); err != nil {
		t.Fatal(err)
	}
	f15 := []Fig15Row{{Threads: 4, Vars: 2, Qemu: 1, Risotto: 2, Native: 3}}
	if err := WriteFig15CSV(dir, f15); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig13.csv", "fig15.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVerifyReportAllCorrect(t *testing.T) {
	out := VerifyReport()
	if !strings.Contains(out, "all correct: true") {
		t.Fatalf("verification sweep failed:\n%s", out)
	}
}
