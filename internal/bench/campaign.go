package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/campaign"
	"repro/internal/litmusgen"
)

// CampaignRun executes a campaign with records discarded — the bench view
// cares about throughput and verdict counts, not the JSONL artifact.
func CampaignRun(cfg campaign.Config) (campaign.Summary, error) {
	return campaign.Run(cfg, io.Discard, nil)
}

// RenderCampaign formats a campaign summary as the evaluation-style table
// risobench prints: corpus composition, verdict partition and throughput.
func RenderCampaign(cfg campaign.Config, sum campaign.Summary) string {
	var sb strings.Builder
	gen := cfg.Gen.Defaults()
	sb.WriteString("Litmus campaign: generated corpus through Theorem-1 + soundness checks\n")
	fmt.Fprintf(&sb, "%-22s %v (threads %d..%d, levels %v)\n",
		"generator space", gen.Shapes, gen.MinThreads, gen.MaxThreads, levelNames(gen.Levels))
	fmt.Fprintf(&sb, "%-22s enumerated %d, sampled out %d, duplicates %d, emitted %d\n",
		"corpus", sum.Gen.Enumerated, sum.Gen.Sampled, sum.Gen.Duplicates, sum.Gen.Emitted)
	fmt.Fprintf(&sb, "%-22s %d pass, %d fail, %d skip (of %d tests)\n",
		"verdicts", sum.Pass, sum.Fail, sum.Skip, sum.Tests)
	fmt.Fprintf(&sb, "%-22s %d run, %d skipped\n", "checks", sum.ChecksRun, sum.ChecksSkipped)
	fmt.Fprintf(&sb, "%-22s %.1f tests/s over %s (%d workers)\n",
		"throughput", sum.TestsPerSec, sum.Elapsed.Round(1e6), cfgWorkers(cfg))
	for _, f := range sum.Failures {
		fmt.Fprintf(&sb, "  FAIL #%d %s (%s): %s\n", f.Idx, f.Name, f.Level, f.Detail)
	}
	fmt.Fprintf(&sb, "\nall verdicts pass: %v\n", sum.Fail == 0)
	return sb.String()
}

func levelNames(ls []litmusgen.Level) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.String()
	}
	return out
}

func cfgWorkers(cfg campaign.Config) int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}
