package tcg

import (
	"errors"
	"fmt"
)

// Typed interpreter failure causes, exposed so embedders (the interpreter
// execution tier in internal/core) can classify errors.Is-style instead of
// string-matching.
var (
	// ErrInterpOOB marks a memory access outside the interpreter's memory.
	ErrInterpOOB = errors.New("access out of bounds")
	// ErrInterpBudget marks interpreter step-budget exhaustion (a runaway
	// intra-block loop).
	ErrInterpBudget = errors.New("step budget exhausted")
)

// Interp is a single-threaded reference interpreter for IR blocks. Tests
// use it to differential-test the optimizer (same final state before and
// after passes) and the frontend (IR semantics match guest semantics); the
// DBT runtime uses it as the executable oracle of -selfcheck shadow runs
// and as the bottom rung of the self-healing tier ladder.
type Interp struct {
	// Temps holds every temp's value.
	Temps []uint64
	// Mem is the flat memory.
	Mem []byte
	// NextPC receives the exit target of OpExit/OpExitInd.
	NextPC uint64
	// Halted is set by OpExitHalt.
	Halted bool
	// Steps accumulates executed op counts across Run calls, so embedders
	// can charge interpreted work against instruction budgets.
	Steps int
	// Calls records helper invocations (helper, a, b) for inspection;
	// helper results are produced by OnCall when set.
	Calls [][3]uint64
	// OnCall, when set, provides helper results. The result is written to
	// the call's Dst unconditionally (the historical test contract).
	OnCall func(h Helper, a, b uint64) uint64
	// OnCallEx, when set, takes precedence over OnCall and may fail. Its
	// result follows the backend's register convention instead: it is
	// written to Dst only when Dst is a local temp (globals are updated by
	// the handler itself, exactly like the compiled helper path).
	OnCallEx func(in Inst, a, b uint64) (uint64, error)
}

// NewInterp returns an interpreter with memSize bytes of memory.
func NewInterp(b *Block, memSize int) *Interp {
	return &Interp{
		Temps: make([]uint64, b.NumTemps),
		Mem:   make([]byte, memSize),
	}
}

func (it *Interp) load(addr uint64, size uint8) (uint64, error) {
	if addr+uint64(size) > uint64(len(it.Mem)) || addr+uint64(size) < addr {
		return 0, fmt.Errorf("tcg interp: load [%#x,+%d): %w", addr, size, ErrInterpOOB)
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(it.Mem[addr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

func (it *Interp) store(addr uint64, size uint8, v uint64) error {
	if addr+uint64(size) > uint64(len(it.Mem)) || addr+uint64(size) < addr {
		return fmt.Errorf("tcg interp: store [%#x,+%d): %w", addr, size, ErrInterpOOB)
	}
	for i := uint8(0); i < size; i++ {
		it.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// Run executes the block from its first instruction to an exit (or to the
// end of the op list).
func (it *Interp) Run(b *Block) error {
	labelPos := make(map[int]int)
	for i, in := range b.Insts {
		if in.Op == OpSetLabel {
			labelPos[in.Label] = i
		}
	}
	steps := 0
	defer func() { it.Steps += steps }()
	for pc := 0; pc < len(b.Insts); pc++ {
		if steps++; steps > 1_000_000 {
			return fmt.Errorf("tcg interp: %w", ErrInterpBudget)
		}
		in := b.Insts[pc]
		t := it.Temps
		switch in.Op {
		case OpNop, OpSetLabel, OpMb:
		case OpMovI:
			t[in.Dst] = uint64(in.Imm)
		case OpMov:
			t[in.Dst] = t[in.A]
		case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpSar:
			t[in.Dst] = uint64(foldALU(in.Op, int64(t[in.A]), int64(t[in.B])))
		case OpNeg:
			t[in.Dst] = -t[in.A]
		case OpNot:
			t[in.Dst] = ^t[in.A]
		case OpSetcond:
			if in.Cond.Eval(t[in.A], t[in.B]) {
				t[in.Dst] = 1
			} else {
				t[in.Dst] = 0
			}
		case OpLd:
			v, err := it.load(t[in.A]+uint64(in.Imm), in.Size)
			if err != nil {
				return err
			}
			t[in.Dst] = v
		case OpSt:
			if err := it.store(t[in.A]+uint64(in.Imm), in.Size, t[in.B]); err != nil {
				return err
			}
		case OpCAS:
			old, err := it.load(t[in.A], in.Size)
			if err != nil {
				return err
			}
			if old == trunc(t[in.B], in.Size) {
				if err := it.store(t[in.A], in.Size, t[in.C]); err != nil {
					return err
				}
			}
			t[in.Dst] = old
		case OpXAdd:
			old, err := it.load(t[in.A], in.Size)
			if err != nil {
				return err
			}
			if err := it.store(t[in.A], in.Size, old+t[in.B]); err != nil {
				return err
			}
			t[in.Dst] = old
		case OpXchg:
			old, err := it.load(t[in.A], in.Size)
			if err != nil {
				return err
			}
			if err := it.store(t[in.A], in.Size, t[in.B]); err != nil {
				return err
			}
			t[in.Dst] = old
		case OpBr:
			pos, ok := labelPos[in.Label]
			if !ok {
				return fmt.Errorf("tcg interp: undefined label L%d", in.Label)
			}
			pc = pos
		case OpBrcond:
			if in.Cond.Eval(t[in.A], t[in.B]) {
				pos, ok := labelPos[in.Label]
				if !ok {
					return fmt.Errorf("tcg interp: undefined label L%d", in.Label)
				}
				pc = pos
			}
		case OpCall:
			it.Calls = append(it.Calls, [3]uint64{uint64(in.Helper), t[in.A], t[in.B]})
			if it.OnCallEx != nil {
				res, err := it.OnCallEx(in, t[in.A], t[in.B])
				if err != nil {
					return err
				}
				if in.Dst >= NumGlobals {
					t[in.Dst] = res
				}
			} else if it.OnCall != nil {
				t[in.Dst] = it.OnCall(in.Helper, t[in.A], t[in.B])
			}
		case OpExit:
			it.NextPC = uint64(in.Imm)
			return nil
		case OpExitInd:
			it.NextPC = t[in.A]
			return nil
		case OpExitHalt:
			it.Halted = true
			return nil
		default:
			return fmt.Errorf("tcg interp: unimplemented op %v", in.Op)
		}
	}
	return nil
}

func trunc(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}
