package tcg_test

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/tcg"
)

// ExampleOptimize shows the paper's §6.1 fence-merging example: the
// trailing Frm of a load and the leading Fww of the next store merge into
// one full-strength fence at the earlier position.
func ExampleOptimize() {
	b := tcg.NewBlock()
	addr := b.Temp()
	val := b.Temp()
	b.MovI(addr, 0x100)
	b.Ld(val, addr, 0, 8)
	b.Mov(0, val) // keep the load's result live in a global
	b.Mb(memmodel.FenceFrm)
	b.Mb(memmodel.FenceFww)
	b.St(addr, 8, val, 8)
	b.Exit(0)

	tcg.Optimize(b, tcg.DefaultOpt())

	for _, in := range b.Insts {
		if in.Op == tcg.OpMb {
			fmt.Println("fence:", in.Fence)
		}
	}
	// Output:
	// fence: Fmm
}

// ExampleInterp runs a block on the reference interpreter.
func ExampleInterp() {
	b := tcg.NewBlock()
	x, y := b.Temp(), b.Temp()
	b.MovI(x, 6)
	b.MovI(y, 7)
	b.Alu(tcg.OpMul, 0, x, y) // global 0
	b.Exit(0x42)

	it := tcg.NewInterp(b, 64)
	if err := it.Run(b); err != nil {
		panic(err)
	}
	fmt.Println("global0 =", it.Temps[0], "next pc =", it.NextPC)
	// Output:
	// global0 = 42 next pc = 66
}
