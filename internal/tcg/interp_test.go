package tcg

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

func TestInterpAtomicsAndControlFlow(t *testing.T) {
	b := NewBlock()
	addr, exp, nv, old := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	l := b.NewLabel()
	b.MovI(addr, 0x80)
	b.MovI(exp, 0)
	b.MovI(nv, 5)
	b.Emit(Inst{Op: OpCAS, Dst: old, A: addr, B: exp, C: nv, Size: 8})
	b.Emit(Inst{Op: OpXAdd, Dst: old, A: addr, B: nv, Size: 8})  // mem 10, old 5
	b.Emit(Inst{Op: OpXchg, Dst: old, A: addr, B: exp, Size: 8}) // mem 0, old 10
	b.Brcond(CondEQ, old, old, l)
	b.MovI(0, 111) // skipped
	b.SetLabel(l)
	b.Mov(1, old)
	l2 := b.NewLabel()
	b.Br(l2)
	b.MovI(1, 999) // skipped by the unconditional branch
	b.SetLabel(l2)
	b.ExitInd(old)

	it := NewInterp(b, 0x100)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.Temps[1] != 10 {
		t.Fatalf("xchg old = %d", it.Temps[1])
	}
	if it.NextPC != 10 {
		t.Fatalf("exit_ind pc = %d", it.NextPC)
	}
	v, _ := it.load(0x80, 8)
	if v != 0 {
		t.Fatalf("final mem = %d", v)
	}
}

func TestInterpNegNotSetcondFences(t *testing.T) {
	b := NewBlock()
	x := b.Temp()
	b.MovI(x, 5)
	b.Emit(Inst{Op: OpNeg, Dst: 0, A: x})
	b.Emit(Inst{Op: OpNot, Dst: 1, A: x})
	b.Emit(Inst{Op: OpSetcond, Cond: CondLTU, Dst: 2, A: x, B: x})
	b.Mb(memmodel.FenceFsc) // no-op in the sequential interpreter
	b.Emit(Inst{Op: OpExitHalt})
	it := NewInterp(b, 16)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.Temps[0] != ^uint64(5)+1 || it.Temps[1] != ^uint64(5) || it.Temps[2] != 0 {
		t.Fatalf("neg/not/setcond: %#x %#x %d", it.Temps[0], it.Temps[1], it.Temps[2])
	}
	if !it.Halted {
		t.Fatal("exit_halt must halt")
	}
}

func TestInterpHelperRecording(t *testing.T) {
	b := NewBlock()
	a1, a2, res := b.Temp(), b.Temp(), b.Temp()
	b.MovI(a1, 3)
	b.MovI(a2, 4)
	b.Emit(Inst{Op: OpCall, Helper: HelperXchg, Dst: res, A: a1, B: a2})
	b.Mov(0, res)
	b.Exit(0)
	it := NewInterp(b, 16)
	it.OnCall = func(h Helper, x, y uint64) uint64 { return x*10 + y }
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.Temps[0] != 34 {
		t.Fatalf("helper result = %d", it.Temps[0])
	}
	if len(it.Calls) != 1 || it.Calls[0] != [3]uint64{uint64(HelperXchg), 3, 4} {
		t.Fatalf("calls = %v", it.Calls)
	}
}

func TestInterpErrors(t *testing.T) {
	// Undefined label.
	b := NewBlock()
	b.Br(7)
	it := NewInterp(b, 16)
	if err := it.Run(b); err == nil {
		t.Fatal("undefined label must error")
	}
	// Out-of-bounds access.
	b = NewBlock()
	addr := b.Temp()
	b.MovI(addr, 1<<40)
	b.Ld(0, addr, 0, 8)
	it = NewInterp(b, 16)
	if err := it.Run(b); err == nil {
		t.Fatal("oob load must error")
	}
	// Runaway loop.
	b = NewBlock()
	l := b.NewLabel()
	b.SetLabel(l)
	b.Br(l)
	it = NewInterp(b, 16)
	if err := it.Run(b); err == nil {
		t.Fatal("infinite loop must exhaust budget")
	}
}

func TestFoldALUFullCoverage(t *testing.T) {
	cases := []struct {
		op      Opcode
		a, b, w int64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, -1},
		{OpMul, 3, 4, 12},
		{OpUDiv, 12, 4, 3},
		{OpUDiv, 12, 0, 0},
		{OpURem, 13, 4, 1},
		{OpURem, 13, 0, 13},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 10, 1024},
		{OpShl, 1, 64, 0},
		{OpShr, 1024, 10, 1},
		{OpShr, 1024, 64, 0},
		{OpSar, -8, 2, -2},
		{OpSar, -8, 100, -1},
	}
	for _, c := range cases {
		if got := foldALU(c.op, c.a, c.b); got != c.w {
			t.Errorf("fold %v(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestInstStrings(t *testing.T) {
	b := NewBlock()
	x := b.Temp()
	b.MovI(x, 3)
	b.Ld(0, x, 8, 4)
	b.St(x, 0, 0, 8)
	b.Mb(memmodel.FenceFrm)
	b.Emit(Inst{Op: OpCAS, Dst: 0, A: x, B: x, C: x, Size: 8})
	b.Emit(Inst{Op: OpXAdd, Dst: 0, A: x, B: x, Size: 8})
	b.Brcond(CondGEU, x, x, 0)
	b.SetLabel(0)
	b.Emit(Inst{Op: OpCall, Helper: HelperCmpXchg, Dst: 0, A: x, B: x})
	b.ExitInd(x)
	s := b.String()
	for _, frag := range []string{"movi", "ld t0", "st [", "mb Frm", "cas",
		"xadd", "brcond.geu", "L0:", "call", "exit_tb_ind"} {
		if !strings.Contains(s, frag) {
			t.Errorf("block dump missing %q:\n%s", frag, s)
		}
	}
}

// BenchmarkOptimize measures optimizer throughput on a frontend-shaped
// block.
func BenchmarkOptimize(b *testing.B) {
	mk := func() *Block {
		blk := NewBlock()
		addr := blk.Temp()
		blk.MovI(addr, 0x100)
		for i := 0; i < 30; i++ {
			v := blk.Temp()
			blk.MovI(v, int64(i))
			blk.Ld(v, addr, int64(i%4)*8, 8)
			blk.Mb(memmodel.FenceFrm)
			blk.Mb(memmodel.FenceFww)
			blk.St(addr, int64(i%4)*8, v, 8)
		}
		blk.Exit(0)
		return blk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(mk(), DefaultOpt())
	}
}
