package tcg

import (
	"math/rand"
	"testing"

	"repro/internal/memmodel"
)

func fenceKinds(b *Block) []memmodel.Fence {
	var out []memmodel.Fence
	for _, in := range b.Insts {
		if in.Op == OpMb {
			out = append(out, in.Fence)
		}
	}
	return out
}

func TestConstFolding(t *testing.T) {
	b := NewBlock()
	t1, t2, t3 := b.Temp(), b.Temp(), b.Temp()
	b.MovI(t1, 6)
	b.MovI(t2, 7)
	b.Alu(OpMul, t3, t1, t2)
	b.Mov(0, t3) // into a global so DCE keeps it
	Optimize(b, DefaultOpt())
	// Everything should fold to a single movi into the global.
	if n := countOp(b, OpMul); n != 0 {
		t.Fatalf("mul not folded: %s", b)
	}
	it := NewInterp(b, 16)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.Temps[0] != 42 {
		t.Fatalf("global0 = %d, want 42", it.Temps[0])
	}
}

func TestFalseDependencyElimination(t *testing.T) {
	// X = a * 0 { X = 0 (§6.1): the multiply disappears even though a is
	// unknown.
	b := NewBlock()
	zero, prod, addr := b.Temp(), b.Temp(), b.Temp()
	b.MovI(zero, 0)
	b.Alu(OpMul, prod, 0 /* unknown global */, zero)
	b.MovI(addr, 0x100)
	b.St(addr, 0, prod, 8)
	b.Exit(0)
	Optimize(b, DefaultOpt())
	if countOp(b, OpMul) != 0 {
		t.Fatalf("x*0 not eliminated:\n%s", b)
	}
}

func TestRAWElimination(t *testing.T) {
	// st [X] = v; ld t = [X]  →  the load becomes a mov.
	b := NewBlock()
	addr, v, out := b.Temp(), b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.MovI(v, 9)
	b.St(addr, 0, v, 8)
	b.Ld(out, addr, 0, 8)
	b.Mov(0, out)
	b.Exit(0)
	Optimize(b, OptConfig{AccessElim: true})
	if countOp(b, OpLd) != 0 {
		t.Fatalf("RAW load not eliminated:\n%s", b)
	}
	if countOp(b, OpSt) != 1 {
		t.Fatalf("store must remain:\n%s", b)
	}
}

func TestRAWAcrossAllowedFences(t *testing.T) {
	// F-RAW permits Fww and Fsc in between (Figure 10).
	for _, f := range []memmodel.Fence{memmodel.FenceFww, memmodel.FenceFsc} {
		b := NewBlock()
		addr, v, out := b.Temp(), b.Temp(), b.Temp()
		b.MovI(addr, 0x100)
		b.MovI(v, 9)
		b.St(addr, 0, v, 8)
		b.Mb(f)
		b.Ld(out, addr, 0, 8)
		b.Mov(0, out)
		b.Exit(0)
		Optimize(b, OptConfig{AccessElim: true})
		if countOp(b, OpLd) != 0 {
			t.Fatalf("RAW across %v should be allowed:\n%s", f, b)
		}
	}
}

func TestRAWBlockedByFmr(t *testing.T) {
	// The FMR example (§3.2): RAW elimination across Fmr is incorrect and
	// must not happen.
	for _, f := range []memmodel.Fence{memmodel.FenceFmr, memmodel.FenceFwr, memmodel.FenceFrm} {
		b := NewBlock()
		addr, v, out := b.Temp(), b.Temp(), b.Temp()
		b.MovI(addr, 0x100)
		b.MovI(v, 9)
		b.St(addr, 0, v, 8)
		b.Mb(f)
		b.Ld(out, addr, 0, 8)
		b.Mov(0, out)
		b.Exit(0)
		Optimize(b, DefaultOpt())
		if countOp(b, OpLd) != 1 {
			t.Fatalf("RAW across %v must be blocked:\n%s", f, b)
		}
	}
}

func TestRARElimination(t *testing.T) {
	b := NewBlock()
	addr, a1, a2 := b.Temp(), b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.Ld(a1, addr, 0, 8)
	b.Mb(memmodel.FenceFrm) // allowed for RAR
	b.Ld(a2, addr, 0, 8)
	b.Mov(0, a1)
	b.Mov(1, a2)
	b.Exit(0)
	Optimize(b, OptConfig{AccessElim: true})
	if countOp(b, OpLd) != 1 {
		t.Fatalf("RAR not eliminated across Frm:\n%s", b)
	}
}

func TestRARBlockedByFsc(t *testing.T) {
	// F-RAR allows only Frm and Fww; Fsc between two loads must block it
	// (an SC fence makes the second load observable distinctly).
	b := NewBlock()
	addr, a1, a2 := b.Temp(), b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.Ld(a1, addr, 0, 8)
	b.Mb(memmodel.FenceFsc)
	b.Ld(a2, addr, 0, 8)
	b.Mov(0, a1)
	b.Mov(1, a2)
	b.Exit(0)
	Optimize(b, OptConfig{AccessElim: true})
	if countOp(b, OpLd) != 2 {
		t.Fatalf("RAR across Fsc must be blocked:\n%s", b)
	}
}

func TestWAWElimination(t *testing.T) {
	b := NewBlock()
	addr, v1, v2 := b.Temp(), b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.MovI(v1, 1)
	b.MovI(v2, 2)
	b.St(addr, 0, v1, 8)
	b.St(addr, 0, v2, 8)
	b.Exit(0)
	Optimize(b, OptConfig{AccessElim: true})
	if countOp(b, OpSt) != 1 {
		t.Fatalf("WAW not eliminated:\n%s", b)
	}
	// The surviving store must be the second one (value 2).
	it := NewInterp(b, 0x200)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if got, _ := it.load(0x100, 8); got != 2 {
		t.Fatalf("[0x100] = %d, want 2", got)
	}
}

func TestWAWBlockedByInterveningLoad(t *testing.T) {
	// st; ld(same loc, not eliminated because elimination disabled);
	// st — with AccessElim on, the intervening load is itself eliminated
	// to a mov, so WAW still fires. Use different aliasing base to keep
	// the load: st [A]; ld [B] (possible alias); st [A] — first store
	// must survive.
	b := NewBlock()
	addrA, addrB, v1, v2, out := b.Temp(), b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(addrA, 0x100)
	b.MovI(addrB, 0x180)
	b.MovI(v1, 1)
	b.MovI(v2, 2)
	b.St(addrA, 0, v1, 8)
	b.Ld(out, addrB, 0, 8) // possible alias: invalidates tracking
	b.Mov(0, out)
	b.St(addrA, 0, v2, 8)
	b.Exit(0)
	Optimize(b, OptConfig{AccessElim: true})
	if countOp(b, OpSt) != 2 {
		t.Fatalf("WAW across possibly-aliasing load must be blocked:\n%s", b)
	}
}

func TestFenceMergePaperExample(t *testing.T) {
	// §6.1: a = X; Frm; Fww; Y = 1 — the two fences merge into one full
	// fence at the earlier position.
	b := NewBlock()
	addrX, addrY, a, one := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(addrX, 0x100)
	b.Ld(a, addrX, 0, 8)
	b.Mov(0, a)
	b.Mb(memmodel.FenceFrm)
	b.Mb(memmodel.FenceFww)
	b.MovI(addrY, 0x108)
	b.MovI(one, 1)
	b.St(addrY, 0, one, 8)
	b.Exit(0)
	Optimize(b, OptConfig{FenceMerge: true})
	ks := fenceKinds(b)
	if len(ks) != 1 {
		t.Fatalf("fences not merged: %v\n%s", ks, b)
	}
	// The merged fence must cover rr, rw and ww — Fmm (≡ DMBFF at the Arm
	// level, matching the paper's Fsc strengthening).
	if ks[0] != memmodel.FenceFmm && ks[0] != memmodel.FenceFsc {
		t.Fatalf("merged fence %v does not cover Frm+Fww", ks[0])
	}
}

func TestFenceMergeBlockedByMemoryAccess(t *testing.T) {
	b := NewBlock()
	addr, a := b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.Mb(memmodel.FenceFrm)
	b.Ld(a, addr, 0, 8)
	b.Mov(0, a)
	b.Mb(memmodel.FenceFww)
	b.Exit(0)
	Optimize(b, OptConfig{FenceMerge: true})
	if ks := fenceKinds(b); len(ks) != 2 {
		t.Fatalf("fences across a memory access must not merge: %v", ks)
	}
}

func TestFenceMergeIdempotentKinds(t *testing.T) {
	// Frm + Frm → Frm, Fsc + anything → Fsc.
	b := NewBlock()
	b.Mb(memmodel.FenceFrm)
	b.Mb(memmodel.FenceFrm)
	b.Exit(0)
	Optimize(b, OptConfig{FenceMerge: true})
	if ks := fenceKinds(b); len(ks) != 1 || ks[0] != memmodel.FenceFrm {
		t.Fatalf("Frm+Frm: %v", ks)
	}
	b = NewBlock()
	b.Mb(memmodel.FenceFsc)
	b.Mb(memmodel.FenceFrr)
	b.Exit(0)
	Optimize(b, OptConfig{FenceMerge: true})
	if ks := fenceKinds(b); len(ks) != 1 || ks[0] != memmodel.FenceFsc {
		t.Fatalf("Fsc+Frr: %v", ks)
	}
}

func TestDeadCodeKeepsMemoryAndGlobals(t *testing.T) {
	b := NewBlock()
	dead, addr, v := b.Temp(), b.Temp(), b.Temp()
	b.MovI(dead, 123) // dead: never used
	b.MovI(addr, 0x100)
	b.MovI(v, 5)
	b.St(addr, 0, v, 8)
	b.MovI(0, 7) // global: always live
	b.Exit(0)
	Optimize(b, OptConfig{DeadCode: true})
	if countOp(b, OpSt) != 1 {
		t.Fatal("store must never be dead")
	}
	movis := countOp(b, OpMovI)
	if movis != 3 { // addr, v, global — dead one removed
		t.Fatalf("movi count = %d, want 3:\n%s", movis, b)
	}
}

func TestDeadCodeGlobalsLiveAtSideExits(t *testing.T) {
	// A global overwritten later in the block is still live at every exit
	// in between — the dispatcher reads full guest state wherever the
	// block is left. Superblock seams put real code between a side exit
	// and the final exit, which is where a linear scan that only seeds
	// liveness at the end goes wrong.
	b := NewBlock()
	c1, c2 := b.Temp(), b.Temp()
	l := b.NewLabel()
	b.MovI(0, 1) // live at the side exit below, overwritten after it
	b.MovI(c1, 0)
	b.MovI(c2, 1)
	b.Brcond(CondEQ, c1, c2, l) // 0 != 1: falls through to the side exit
	b.Exit(0x100)               // side exit: must observe global 0 == 1
	b.SetLabel(l)
	b.MovI(0, 2)
	b.Exit(0x200)
	Optimize(b, OptConfig{DeadCode: true})

	it := NewInterp(b, 16)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.NextPC != 0x100 || it.Temps[0] != 1 {
		t.Fatalf("side exit sees global 0 = %d at %#x, want 1 at 0x100:\n%s",
			it.Temps[0], it.NextPC, b)
	}
}

func TestDeadCodeNeverRemovesLoads(t *testing.T) {
	b := NewBlock()
	addr, unused := b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.Ld(unused, addr, 0, 8) // result unused, but R event must remain
	b.Exit(0)
	Optimize(b, OptConfig{DeadCode: true})
	if countOp(b, OpLd) != 1 {
		t.Fatalf("DCE must not remove shared-memory loads:\n%s", b)
	}
}

func TestBrcondLiveness(t *testing.T) {
	// A temp used only on the branch-taken path must stay live across the
	// brcond.
	b := NewBlock()
	l := b.NewLabel()
	x, c1, c2 := b.Temp(), b.Temp(), b.Temp()
	b.MovI(x, 42)
	b.MovI(c1, 0)
	b.MovI(c2, 0)
	b.Brcond(CondEQ, c1, c2, l)
	b.MovI(0, 1)
	b.Exit(0)
	b.SetLabel(l)
	b.Mov(1, x) // x used only here
	b.Exit(0)
	Optimize(b, DefaultOpt())
	it := NewInterp(b, 16)
	if err := it.Run(b); err != nil {
		t.Fatal(err)
	}
	if it.Temps[1] != 42 {
		t.Fatalf("taken-path value lost: global1 = %d\n%s", it.Temps[1], b)
	}
}

// randomBlock builds a random straight-line block over a few temps with
// loads, stores, ALU ops and fences, for differential testing.
func randomBlock(rng *rand.Rand) *Block {
	b := NewBlock()
	temps := []Temp{0, 1, 2, 3} // globals as sources
	for i := 0; i < 4; i++ {
		temps = append(temps, b.Temp())
	}
	addr := b.Temp()
	b.MovI(addr, 0x100)
	nInst := 5 + rng.Intn(20)
	for i := 0; i < nInst; i++ {
		pick := func() Temp { return temps[rng.Intn(len(temps))] }
		switch rng.Intn(8) {
		case 0:
			b.MovI(pick(), int64(rng.Intn(100)))
		case 1:
			b.Mov(pick(), pick())
		case 2:
			ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
			b.Alu(ops[rng.Intn(len(ops))], pick(), pick(), pick())
		case 3:
			b.Ld(pick(), addr, int64(rng.Intn(4))*8, 8)
		case 4:
			b.St(addr, int64(rng.Intn(4))*8, pick(), 8)
		case 5:
			fences := []memmodel.Fence{
				memmodel.FenceFrm, memmodel.FenceFww, memmodel.FenceFsc,
				memmodel.FenceFmr, memmodel.FenceFrr,
			}
			b.Mb(fences[rng.Intn(len(fences))])
		case 6:
			b.Emit(Inst{Op: OpSetcond, Cond: Cond(rng.Intn(10)), Dst: pick(), A: pick(), B: pick()})
		case 7:
			b.Emit(Inst{Op: OpNot, Dst: pick(), A: pick()})
		}
	}
	b.Exit(0x1234)
	return b
}

// TestOptimizerPreservesSemantics differential-tests the full pipeline on
// random straight-line blocks: globals and memory must match after
// optimization (single-threaded semantics — the concurrent-semantics
// argument is the Figure-10 verification in internal/models/tcgmm).
func TestOptimizerPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		orig := randomBlock(rng)

		run := func(b *Block) *Interp {
			it := NewInterp(b, 0x200)
			for g := 0; g < NumGlobals; g++ {
				it.Temps[g] = uint64(g * 1000003)
			}
			for i := range it.Mem {
				it.Mem[i] = byte(i * 37)
			}
			if err := it.Run(b); err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, b)
			}
			return it
		}

		ref := run(orig)

		opt := &Block{Insts: append([]Inst(nil), orig.Insts...),
			NumTemps: orig.NumTemps, NumLabels: orig.NumLabels}
		Optimize(opt, DefaultOpt())
		got := run(opt)

		for g := 0; g < NumGlobals; g++ {
			if ref.Temps[g] != got.Temps[g] {
				t.Fatalf("seed %d: global %d: %d != %d\nbefore:\n%s\nafter:\n%s",
					seed, g, ref.Temps[g], got.Temps[g], orig, opt)
			}
		}
		for i := range ref.Mem {
			if ref.Mem[i] != got.Mem[i] {
				t.Fatalf("seed %d: mem[%#x]: %d != %d\nbefore:\n%s\nafter:\n%s",
					seed, i, ref.Mem[i], got.Mem[i], orig, opt)
			}
		}
		if ref.NextPC != got.NextPC {
			t.Fatalf("seed %d: next pc %#x != %#x", seed, ref.NextPC, got.NextPC)
		}
	}
}

func TestOptimizerShrinks(t *testing.T) {
	// Sanity: on a typical frontend-shaped block, optimization reduces
	// instruction count.
	b := NewBlock()
	addr, v1, v2, x := b.Temp(), b.Temp(), b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.MovI(v1, 10)
	b.MovI(v2, 0)
	b.Alu(OpAdd, x, v1, v2) // x = 10
	b.St(addr, 0, x, 8)
	b.Mb(memmodel.FenceFrm)
	b.Mb(memmodel.FenceFww)
	b.St(addr, 8, x, 8)
	b.Exit(0)
	before := len(b.Insts)
	Optimize(b, DefaultOpt())
	if len(b.Insts) >= before {
		t.Fatalf("no shrink: %d → %d\n%s", before, len(b.Insts), b)
	}
}
