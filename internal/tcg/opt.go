package tcg

import (
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// OptConfig selects optimizer passes. The zero value disables everything;
// DefaultOpt enables the full verified pipeline.
type OptConfig struct {
	// ConstProp enables constant propagation and folding (which subsumes
	// false-dependency elimination such as x*0 → 0, §6.1).
	ConstProp bool
	// AccessElim enables the Figure-10 redundant shared-memory access
	// eliminations (RAR/RAW/WAW and their fence-aware forms).
	AccessElim bool
	// FenceMerge enables merging of adjacent fences into one stronger
	// fence placed at the earliest position (§6.1).
	FenceMerge bool
	// DeadCode enables dead code elimination (never removes memory
	// accesses or fences; see Inst.HasSideEffects).
	DeadCode bool
	// Obs, when non-nil, receives per-pass effect counters under its
	// "tcg" child scope (const_folds, accesses_forwarded,
	// stores_eliminated, fences_merged, dead_insts). Nil skips the
	// bookkeeping entirely.
	Obs *obs.Scope
}

// DefaultOpt enables every verified pass.
func DefaultOpt() OptConfig {
	return OptConfig{ConstProp: true, AccessElim: true, FenceMerge: true, DeadCode: true}
}

// Degrade returns a copy of cfg with optimization backed off by level —
// the per-tier pass selection of the self-healing ladder. Level 0 keeps
// cfg unchanged; level 1 disables fence merging (the pass that moves and
// coalesces barriers); level 2 and beyond disable every pass, yielding
// the frontend's literal IR. The Obs hook is preserved at every level.
func (cfg OptConfig) Degrade(level int) OptConfig {
	switch {
	case level <= 0:
		return cfg
	case level == 1:
		cfg.FenceMerge = false
		return cfg
	default:
		return OptConfig{Obs: cfg.Obs}
	}
}

// Optimize runs the configured passes in order. All passes assume the
// frontend's invariant that intra-block branches only jump forward.
func Optimize(b *Block, cfg OptConfig) {
	if cfg.Obs == nil {
		if cfg.ConstProp {
			constProp(b)
		}
		if cfg.AccessElim {
			accessElim(b)
		}
		if cfg.FenceMerge {
			mergeFences(b)
		}
		if cfg.DeadCode {
			deadCode(b)
		}
		removeNops(b)
		return
	}
	// Instrumented path: every pass rewrites b.Insts in place (length is
	// only changed by the final removeNops), so each pass's effect is the
	// diff of the instruction stream around it.
	sc := cfg.Obs.Child("tcg")
	if cfg.ConstProp {
		before := opcodesOf(b)
		constProp(b)
		sc.Counter("const_folds").Add(rewriteCount(before, b))
	}
	if cfg.AccessElim {
		lds, sts := countOp(b, OpLd), countOp(b, OpSt)
		accessElim(b)
		sc.Counter("accesses_forwarded").Add(lds - countOp(b, OpLd))
		sc.Counter("stores_eliminated").Add(sts - countOp(b, OpSt))
	}
	if cfg.FenceMerge {
		fences := countOp(b, OpMb)
		mergeFences(b)
		sc.Counter("fences_merged").Add(fences - countOp(b, OpMb))
	}
	if cfg.DeadCode {
		nops := countOp(b, OpNop)
		deadCode(b)
		sc.Counter("dead_insts").Add(countOp(b, OpNop) - nops)
	}
	removeNops(b)
}

// countOp counts instructions with the given opcode.
func countOp(b *Block, op Opcode) uint64 { return b.CountOp(op) }

// opcodesOf snapshots the opcode stream for rewriteCount.
func opcodesOf(b *Block) []Opcode {
	ops := make([]Opcode, len(b.Insts))
	for i := range b.Insts {
		ops[i] = b.Insts[i].Op
	}
	return ops
}

// rewriteCount counts instructions whose opcode a length-preserving pass
// changed.
func rewriteCount(before []Opcode, b *Block) uint64 {
	var n uint64
	for i := range before {
		if i < len(b.Insts) && b.Insts[i].Op != before[i] {
			n++
		}
	}
	return n
}

// --- Constant propagation and folding --------------------------------------

func constProp(b *Block) {
	known := make(map[Temp]int64)
	kill := func(t Temp) { delete(known, t) }

	for idx := range b.Insts {
		in := &b.Insts[idx]
		switch in.Op {
		case OpSetLabel:
			// Join point: a branch may arrive with different values.
			known = make(map[Temp]int64)
			continue
		case OpCall:
			// Helpers may rewrite guest state.
			for t := Temp(0); t < NumGlobals; t++ {
				kill(t)
			}
			kill(in.Dst)
			continue
		}

		av, aok := known[in.A]
		bv, bok := known[in.B]

		switch in.Op {
		case OpMovI:
			known[in.Dst] = in.Imm
			continue
		case OpMov:
			if aok {
				*in = Inst{Op: OpMovI, Dst: in.Dst, Imm: av}
				known[in.Dst] = av
			} else {
				kill(in.Dst)
			}
			continue
		case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpSar:
			if aok && bok {
				v := foldALU(in.Op, av, bv)
				*in = Inst{Op: OpMovI, Dst: in.Dst, Imm: v}
				known[in.Dst] = v
				continue
			}
			if simplifyALU(in, aok, av, bok, bv) {
				// Simplified to MovI or Mov; reprocess knowledge.
				if in.Op == OpMovI {
					known[in.Dst] = in.Imm
				} else if v, ok := known[in.A]; in.Op == OpMov && ok {
					known[in.Dst] = v
				} else {
					kill(in.Dst)
				}
				continue
			}
			kill(in.Dst)
		case OpNeg:
			if aok {
				*in = Inst{Op: OpMovI, Dst: in.Dst, Imm: -av}
				known[in.Dst] = -av
				continue
			}
			kill(in.Dst)
		case OpNot:
			if aok {
				*in = Inst{Op: OpMovI, Dst: in.Dst, Imm: ^av}
				known[in.Dst] = ^av
				continue
			}
			kill(in.Dst)
		case OpSetcond:
			if aok && bok {
				var v int64
				if in.Cond.Eval(uint64(av), uint64(bv)) {
					v = 1
				}
				*in = Inst{Op: OpMovI, Dst: in.Dst, Imm: v}
				known[in.Dst] = v
				continue
			}
			kill(in.Dst)
		case OpBrcond:
			if aok && bok {
				if in.Cond.Eval(uint64(av), uint64(bv)) {
					*in = Inst{Op: OpBr, Label: in.Label}
				} else {
					*in = Inst{Op: OpNop}
				}
			}
		default:
			if in.HasDst() {
				kill(in.Dst)
			}
		}
	}
}

func foldALU(op Opcode, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpUDiv:
		if b == 0 {
			return 0
		}
		return int64(uint64(a) / uint64(b))
	case OpURem:
		if b == 0 {
			return a
		}
		return int64(uint64(a) % uint64(b))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return int64(shiftFold(uint64(a), uint64(b), false))
	case OpShr:
		return int64(shiftFold(uint64(a), uint64(b), true))
	case OpSar:
		if uint64(b) >= 64 {
			return a >> 63
		}
		return a >> uint64(b)
	}
	return 0
}

func shiftFold(v, by uint64, right bool) uint64 {
	if by >= 64 {
		return 0
	}
	if right {
		return v >> by
	}
	return v << by
}

// simplifyALU applies single-operand identities; returns true if the
// instruction was rewritten. This includes the false-dependency
// eliminations the paper calls out (x*0 → 0), which are trivially correct
// under the IR model because it orders nothing through dependencies.
func simplifyALU(in *Inst, aok bool, av int64, bok bool, bv int64) bool {
	mov := func(src Temp) { *in = Inst{Op: OpMov, Dst: in.Dst, A: src} }
	movi := func(v int64) { *in = Inst{Op: OpMovI, Dst: in.Dst, Imm: v} }
	switch in.Op {
	case OpMul:
		if (aok && av == 0) || (bok && bv == 0) {
			movi(0)
			return true
		}
		if aok && av == 1 {
			mov(in.B)
			return true
		}
		if bok && bv == 1 {
			mov(in.A)
			return true
		}
	case OpAnd:
		if (aok && av == 0) || (bok && bv == 0) {
			movi(0)
			return true
		}
	case OpAdd, OpOr, OpXor:
		if aok && av == 0 {
			mov(in.B)
			return true
		}
		if bok && bv == 0 {
			mov(in.A)
			return true
		}
	case OpSub, OpShl, OpShr, OpSar:
		if bok && bv == 0 {
			mov(in.A)
			return true
		}
	}
	return false
}

// --- Redundant access elimination (Figure 10) -------------------------------

// accessKey identifies a definitely-same memory location within a block.
type accessKey struct {
	base Temp
	off  int64
	size uint8
}

type accessEntry struct {
	key      accessKey
	valTemp  Temp // temp holding the location's current value
	wasStore bool
	instIdx  int // index of the access instruction (for WAW removal)
	fences   []memmodel.Fence
	valid    bool
}

// fenceAllowed reports whether every fence crossed is in the allowed set.
func fenceAllowed(fences []memmodel.Fence, allowed ...memmodel.Fence) bool {
	for _, f := range fences {
		ok := false
		for _, a := range allowed {
			if f == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func overlapKeys(a, b accessKey) bool {
	if a.base != b.base {
		return true // different bases: possible alias, conservatively overlap
	}
	return a.off < b.off+int64(b.size) && b.off < a.off+int64(a.size)
}

func accessElim(b *Block) {
	var entries []*accessEntry
	var removed []bool = make([]bool, len(b.Insts))

	find := func(k accessKey) *accessEntry {
		for _, e := range entries {
			if e.valid && e.key == k {
				return e
			}
		}
		return nil
	}
	invalidateAliasing := func(k accessKey) {
		for _, e := range entries {
			if e.valid && e.key != k && overlapKeys(e.key, k) {
				e.valid = false
			}
		}
	}
	invalidateAll := func() {
		for _, e := range entries {
			e.valid = false
		}
	}
	invalidateTemp := func(t Temp) {
		for _, e := range entries {
			if e.valid && (e.key.base == t || e.valTemp == t) {
				e.valid = false
			}
		}
	}

	for idx := range b.Insts {
		in := &b.Insts[idx]
		switch in.Op {
		case OpLd:
			k := accessKey{in.A, in.Imm, in.Size}
			if e := find(k); e != nil {
				if e.wasStore {
					// (RAW)/(F-RAW): allowed across Fsc and Fww only.
					// Forwarding is restricted to full-width accesses: a
					// sub-8-byte load zero-extends the stored low bytes,
					// which a register copy would not reproduce.
					if k.size == 8 && fenceAllowed(e.fences, memmodel.FenceFsc, memmodel.FenceFww) {
						*in = Inst{Op: OpMov, Dst: in.Dst, A: e.valTemp}
						invalidateTemp(in.Dst)
						continue
					}
				} else {
					// (RAR)/(F-RAR): allowed across Frm and Fww.
					if fenceAllowed(e.fences, memmodel.FenceFrm, memmodel.FenceFww) {
						*in = Inst{Op: OpMov, Dst: in.Dst, A: e.valTemp}
						invalidateTemp(in.Dst)
						continue
					}
				}
			}
			invalidateTemp(in.Dst)
			invalidateAliasing(k)
			if e := find(k); e != nil {
				e.valid = false
			}
			// A load clobbering its own address base cannot be recorded:
			// the key would describe a different location afterwards.
			if in.Dst != in.A {
				entries = append(entries, &accessEntry{
					key: k, valTemp: in.Dst, wasStore: false, instIdx: idx, valid: true,
				})
			}
		case OpSt:
			k := accessKey{in.A, in.Imm, in.Size}
			if e := find(k); e != nil && e.wasStore {
				// (WAW)/(F-WAW): remove the earlier store, allowed across
				// Frm and Fww.
				if fenceAllowed(e.fences, memmodel.FenceFrm, memmodel.FenceFww) {
					removed[e.instIdx] = true
				}
			}
			invalidateAliasing(k)
			if e := find(k); e != nil {
				e.valid = false
			}
			entries = append(entries, &accessEntry{
				key: k, valTemp: in.B, wasStore: true, instIdx: idx, valid: true,
			})
		case OpMb:
			if in.Fence == memmodel.FenceFacq || in.Fence == memmodel.FenceFrel {
				continue
			}
			for _, e := range entries {
				if e.valid {
					e.fences = append(e.fences, in.Fence)
				}
			}
		case OpCAS, OpXAdd, OpXchg, OpCall:
			invalidateAll()
			if in.HasDst() {
				invalidateTemp(in.Dst)
			}
		case OpSetLabel, OpBr, OpBrcond, OpExit, OpExitInd, OpExitHalt:
			invalidateAll()
		default:
			if in.HasDst() {
				invalidateTemp(in.Dst)
			}
		}
	}

	// Drop removed stores.
	for idx, r := range removed {
		if r {
			b.Insts[idx] = Inst{Op: OpNop}
		}
	}
}

// --- Fence merging ----------------------------------------------------------

// Fence ordering sets: bit 0 = rr, 1 = rw, 2 = wr, 3 = ww, 4 = sc.
const (
	fRR = 1 << iota
	fRW
	fWR
	fWW
	fSC
)

var fenceSets = map[memmodel.Fence]int{
	memmodel.FenceFrr: fRR,
	memmodel.FenceFrw: fRW,
	memmodel.FenceFrm: fRR | fRW,
	memmodel.FenceFwr: fWR,
	memmodel.FenceFww: fWW,
	memmodel.FenceFwm: fWR | fWW,
	memmodel.FenceFmr: fRR | fWR,
	memmodel.FenceFmw: fRW | fWW,
	memmodel.FenceFmm: fRR | fRW | fWR | fWW,
	memmodel.FenceFsc: fRR | fRW | fWR | fWW | fSC,
}

// setToFence returns the weakest fence kind covering the set.
func setToFence(set int) memmodel.Fence {
	best := memmodel.FenceFsc
	bestSize := 6
	for f, s := range fenceSets {
		if s&set == set {
			size := popcount(s)
			if size < bestSize {
				best, bestSize = f, size
			}
		}
	}
	return best
}

func popcount(v int) int {
	n := 0
	for v != 0 {
		n += v & 1
		v >>= 1
	}
	return n
}

func mergeFences(b *Block) {
	pending := -1 // index of the fence we may merge into
	for idx := range b.Insts {
		in := &b.Insts[idx]
		switch in.Op {
		case OpMb:
			set, mergeable := fenceSets[in.Fence]
			if !mergeable {
				pending = -1 // Facq/Frel are not merged
				continue
			}
			if pending >= 0 {
				prev := &b.Insts[pending]
				merged := fenceSets[prev.Fence] | set
				prev.Fence = setToFence(merged)
				*in = Inst{Op: OpNop}
				continue
			}
			pending = idx
		case OpNop, OpMovI, OpMov, OpAdd, OpSub, OpMul, OpUDiv, OpURem,
			OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpNeg, OpNot, OpSetcond:
			// Non-memory ops do not separate fences.
		default:
			pending = -1
		}
	}
}

// --- Dead code elimination ----------------------------------------------------

func deadCode(b *Block) {
	live := make(map[Temp]bool)
	for t := Temp(0); t < NumGlobals; t++ {
		live[t] = true
	}
	liveAtLabel := make(map[int]map[Temp]bool)

	cloneLive := func(m map[Temp]bool) map[Temp]bool {
		c := make(map[Temp]bool, len(m))
		for k, v := range m {
			if v {
				c[k] = true
			}
		}
		return c
	}

	for idx := len(b.Insts) - 1; idx >= 0; idx-- {
		in := &b.Insts[idx]
		switch in.Op {
		case OpCall:
			// Helpers read guest state beyond their explicit arguments
			// (the cmpxchg helper reads guest RAX, the syscall helper the
			// guest argument registers), so every global is live across a
			// call — even one the block overwrites just below it. Only a
			// local result temp is defined by the call.
			if in.Dst >= NumGlobals {
				delete(live, in.Dst)
			}
			for t := Temp(0); t < NumGlobals; t++ {
				live[t] = true
			}
			for _, u := range in.Uses() {
				live[u] = true
			}
			continue
		case OpExit, OpExitInd, OpExitHalt:
			// Every global is live at an exit — the dispatcher reads the
			// full guest state there. The end-of-block exit matches the
			// scan's initial state, but a mid-block side exit (a
			// superblock seam, or the not-taken arm of a conditional)
			// must restore globals the scan has since consumed.
			for t := Temp(0); t < NumGlobals; t++ {
				live[t] = true
			}
			for _, u := range in.Uses() {
				live[u] = true
			}
			continue
		case OpSetLabel:
			liveAtLabel[in.Label] = cloneLive(live)
			continue
		case OpBr:
			if l, ok := liveAtLabel[in.Label]; ok {
				live = cloneLive(l)
			}
			continue
		case OpBrcond:
			if l, ok := liveAtLabel[in.Label]; ok {
				for t := range l {
					live[t] = true
				}
			}
			live[in.A] = true
			live[in.B] = true
			continue
		}
		if in.HasDst() && !in.HasSideEffects() && !live[in.Dst] {
			*in = Inst{Op: OpNop}
			continue
		}
		if in.HasDst() {
			delete(live, in.Dst)
		}
		for _, u := range in.Uses() {
			live[u] = true
		}
	}
}

func removeNops(b *Block) {
	out := b.Insts[:0]
	for _, in := range b.Insts {
		if in.Op != OpNop {
			out = append(out, in)
		}
	}
	b.Insts = out
}
