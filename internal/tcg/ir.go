// Package tcg implements Risotto-Go's analogue of QEMU's Tiny Code
// Generator intermediate representation: an assembly-like op list over
// typed temporaries, with the concurrency primitives formalized in
// internal/models/tcgmm (plain ld/st, the directional fence family, and
// SC-semantics atomic RMWs), plus the optimizer passes whose correctness
// §5.4 of the paper establishes — constant propagation and folding (which
// subsumes false-dependency elimination), dead code elimination, the
// fence-aware redundant-access eliminations of Figure 10, and fence
// merging.
package tcg

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// Temp identifies an IR temporary. Temps below NumGlobals are globals
// carrying guest state across translation blocks; the rest are
// block-local.
type Temp int32

// Global temporaries: guest GPRs plus the two comparison-flag slots the
// frontend uses to materialize x86 flags.
const (
	// TempGuestReg0 is the first guest GPR; guest register i is Temp(i).
	TempGuestReg0 Temp = 0
	// TempCCDst and TempCCSrc hold the operands of the most recent
	// flag-setting guest instruction.
	TempCCDst Temp = 16
	TempCCSrc Temp = 17
	// NumGlobals is the number of global temps.
	NumGlobals = 18
)

// Cond is an IR comparison condition.
type Cond uint8

// IR conditions; LTU/LEU/GTU/GEU are unsigned.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondLTU
	CondLEU
	CondGTU
	CondGEU
)

var condNames = []string{"eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Eval applies the condition to two values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return int64(a) < int64(b)
	case CondLE:
		return int64(a) <= int64(b)
	case CondGT:
		return int64(a) > int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	case CondLTU:
		return a < b
	case CondLEU:
		return a <= b
	case CondGTU:
		return a > b
	case CondGEU:
		return a >= b
	}
	return false
}

// Helper identifies a runtime helper reached through the helper-call
// mechanism (QEMU-style RMW emulation, guest syscalls).
type Helper uint16

// Helpers provided by the Risotto runtime (internal/core).
const (
	// HelperCmpXchg: old = cmpxchg(addr=arg0, new=arg1, expected=guest
	// RAX). QEMU's RMW path (§2.3, §3.1).
	HelperCmpXchg Helper = iota
	// HelperXAdd: old = xadd(addr=arg0, add=arg1).
	HelperXAdd
	// HelperXchg: old = xchg(addr=arg0, new=arg1).
	HelperXchg
)

// Opcode is an IR operation.
type Opcode uint8

// IR opcodes. ALU ops are three-address over temps; constants enter via
// OpMovI.
const (
	OpNop Opcode = iota
	// OpMovI: Dst = Imm.
	OpMovI
	// OpMov: Dst = A.
	OpMov
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	OpNeg
	OpNot
	// OpSetcond: Dst = Cond(A, B) ? 1 : 0.
	OpSetcond

	// OpLd: Dst = mem[A + Imm], Size bytes, zero-extended. Generates an R
	// event in the IR model.
	OpLd
	// OpSt: mem[A + Imm] = B, Size bytes. Generates a W event.
	OpSt
	// OpMb: fence of flavour Fence.
	OpMb
	// OpCAS: Dst = old value of mem[A]; if old == B then mem[A] = C.
	// SC semantics (Rsc/Wsc events). Risotto's new IR instruction (§6.3).
	OpCAS
	// OpXAdd: Dst = old; mem[A] += B. SC semantics.
	OpXAdd
	// OpXchg: Dst = old; mem[A] = B. SC semantics.
	OpXchg

	// OpBr: unconditional branch to Label.
	OpBr
	// OpBrcond: branch to Label if Cond(A, B).
	OpBrcond
	// OpSetLabel: defines Label at this position.
	OpSetLabel

	// OpCall: invoke helper Helper with args A (and B); result in Dst.
	OpCall

	// OpExit: end the translation block; the next guest PC is Imm.
	OpExit
	// OpExitInd: end the block; the next guest PC is in A.
	OpExitInd
	// OpExitHalt: end the block and halt the vCPU (guest exit).
	OpExitHalt

	numOpcodes
)

var opNames = [numOpcodes]string{
	"nop", "movi", "mov",
	"add", "sub", "mul", "udiv", "urem", "and", "or", "xor",
	"shl", "shr", "sar", "neg", "not", "setcond",
	"ld", "st", "mb", "cas", "xadd", "xchg",
	"br", "brcond", "label",
	"call",
	"exit_tb", "exit_tb_ind", "exit_halt",
}

// Inst is one IR operation.
type Inst struct {
	Op      Opcode
	Dst     Temp
	A, B, C Temp
	Imm     int64
	Size    uint8
	Cond    Cond
	Fence   memmodel.Fence
	Label   int
	Helper  Helper
}

// Block is one translation block's worth of IR.
type Block struct {
	// Insts is the op list.
	Insts []Inst
	// NumTemps is the total temp count (globals + locals).
	NumTemps int
	// NumLabels is the label count.
	NumLabels int
	// GuestPC and GuestEnd delimit the guest code this block translates.
	GuestPC, GuestEnd uint64
}

// NewBlock returns an empty block with the globals allocated.
func NewBlock() *Block {
	return &Block{NumTemps: NumGlobals}
}

// Clone returns a deep copy of the block, so a caller can keep the
// frontend's unoptimized IR (the selfcheck oracle) while Optimize rewrites
// the original in place.
func (b *Block) Clone() *Block {
	nb := *b
	nb.Insts = append([]Inst(nil), b.Insts...)
	return &nb
}

// Temp allocates a fresh local temp.
func (b *Block) Temp() Temp {
	t := Temp(b.NumTemps)
	b.NumTemps++
	return t
}

// NewLabel allocates a fresh label.
func (b *Block) NewLabel() int {
	l := b.NumLabels
	b.NumLabels++
	return l
}

// Emit appends an instruction.
func (b *Block) Emit(i Inst) { b.Insts = append(b.Insts, i) }

// Convenience emitters used by the frontend.

func (b *Block) MovI(dst Temp, imm int64) { b.Emit(Inst{Op: OpMovI, Dst: dst, Imm: imm}) }
func (b *Block) Mov(dst, a Temp)          { b.Emit(Inst{Op: OpMov, Dst: dst, A: a}) }
func (b *Block) Alu(op Opcode, dst, a, x Temp) {
	b.Emit(Inst{Op: op, Dst: dst, A: a, B: x})
}
func (b *Block) Ld(dst, addr Temp, off int64, size uint8) {
	b.Emit(Inst{Op: OpLd, Dst: dst, A: addr, Imm: off, Size: size})
}
func (b *Block) St(addr Temp, off int64, src Temp, size uint8) {
	b.Emit(Inst{Op: OpSt, A: addr, B: src, Imm: off, Size: size})
}
func (b *Block) Mb(f memmodel.Fence) { b.Emit(Inst{Op: OpMb, Fence: f}) }
func (b *Block) Brcond(c Cond, a, x Temp, label int) {
	b.Emit(Inst{Op: OpBrcond, Cond: c, A: a, B: x, Label: label})
}
func (b *Block) Br(label int)       { b.Emit(Inst{Op: OpBr, Label: label}) }
func (b *Block) SetLabel(label int) { b.Emit(Inst{Op: OpSetLabel, Label: label}) }
func (b *Block) Exit(nextPC uint64) { b.Emit(Inst{Op: OpExit, Imm: int64(nextPC)}) }
func (b *Block) ExitInd(a Temp)     { b.Emit(Inst{Op: OpExitInd, A: a}) }

// String renders the block for debugging.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TB guest=[%#x,%#x) temps=%d\n", b.GuestPC, b.GuestEnd, b.NumTemps)
	for i, inst := range b.Insts {
		fmt.Fprintf(&sb, "%3d: %s\n", i, inst)
	}
	return sb.String()
}

func (i Inst) String() string {
	n := "?"
	if int(i.Op) < len(opNames) {
		n = opNames[i.Op]
	}
	switch i.Op {
	case OpNop:
		return n
	case OpMovI:
		return fmt.Sprintf("%s t%d, %d", n, i.Dst, i.Imm)
	case OpMov, OpNeg, OpNot:
		return fmt.Sprintf("%s t%d, t%d", n, i.Dst, i.A)
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
		return fmt.Sprintf("%s t%d, t%d, t%d", n, i.Dst, i.A, i.B)
	case OpSetcond:
		return fmt.Sprintf("%s.%s t%d, t%d, t%d", n, i.Cond, i.Dst, i.A, i.B)
	case OpLd:
		return fmt.Sprintf("%s t%d, [t%d%+d] sz=%d", n, i.Dst, i.A, i.Imm, i.Size)
	case OpSt:
		return fmt.Sprintf("%s [t%d%+d], t%d sz=%d", n, i.A, i.Imm, i.B, i.Size)
	case OpMb:
		return fmt.Sprintf("%s %s", n, i.Fence)
	case OpCAS:
		return fmt.Sprintf("%s t%d, [t%d], exp=t%d new=t%d sz=%d", n, i.Dst, i.A, i.B, i.C, i.Size)
	case OpXAdd, OpXchg:
		return fmt.Sprintf("%s t%d, [t%d], t%d sz=%d", n, i.Dst, i.A, i.B, i.Size)
	case OpBr:
		return fmt.Sprintf("%s L%d", n, i.Label)
	case OpBrcond:
		return fmt.Sprintf("%s.%s t%d, t%d, L%d", n, i.Cond, i.A, i.B, i.Label)
	case OpSetLabel:
		return fmt.Sprintf("L%d:", i.Label)
	case OpCall:
		return fmt.Sprintf("%s h%d, t%d, t%d -> t%d", n, i.Helper, i.A, i.B, i.Dst)
	case OpExit:
		return fmt.Sprintf("%s -> %#x", n, uint64(i.Imm))
	case OpExitInd:
		return fmt.Sprintf("%s -> [t%d]", n, i.A)
	case OpExitHalt:
		return n
	}
	return n
}

// HasDst reports whether the op writes Dst.
func (i Inst) HasDst() bool {
	switch i.Op {
	case OpMovI, OpMov, OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr,
		OpXor, OpShl, OpShr, OpSar, OpNeg, OpNot, OpSetcond, OpLd, OpCAS,
		OpXAdd, OpXchg, OpCall:
		return true
	}
	return false
}

// Uses returns the temps the op reads.
func (i Inst) Uses() []Temp {
	switch i.Op {
	case OpMov, OpNeg, OpNot, OpExitInd:
		return []Temp{i.A}
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor, OpShl,
		OpShr, OpSar, OpSetcond, OpBrcond:
		return []Temp{i.A, i.B}
	case OpLd:
		return []Temp{i.A}
	case OpSt:
		return []Temp{i.A, i.B}
	case OpCAS:
		return []Temp{i.A, i.B, i.C}
	case OpXAdd, OpXchg:
		return []Temp{i.A, i.B}
	case OpCall:
		return []Temp{i.A, i.B}
	}
	return nil
}

// HasSideEffects reports whether the op must be preserved regardless of
// liveness (memory, fences, control flow, helper calls). Loads count:
// removing a shared-memory read is only sound under the Figure-10 rules
// (a read can anchor a trailing Frm fence's ordering — see the FMR
// example), so DCE never drops one; only the access-elimination pass may.
func (i Inst) HasSideEffects() bool {
	switch i.Op {
	case OpLd, OpSt, OpMb, OpCAS, OpXAdd, OpXchg, OpBr, OpBrcond, OpSetLabel,
		OpCall, OpExit, OpExitInd, OpExitHalt:
		return true
	}
	return false
}
