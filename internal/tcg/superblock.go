// Hot-trace superblocks: Concat stitches the frontend IR of several
// translation blocks — a hot block plus the successors its recorded exits
// chain into — into one multi-block unit, so the optimizer passes see
// across guest branch boundaries. The paper's fence merging is limited to
// one basic block per translation unit; a superblock recovers the
// cross-block merges (a trailing Frm at one block's end against a leading
// Fww at the next block's start) that the per-block scheme cannot.
//
// Junction discipline: a component's constant exit to the next component's
// entry PC is rewritten into straight-line flow. When that exit is the
// component's final instruction it is simply dropped — no label is
// inserted, which is what lets mergeFences coalesce fences across the
// seam. A non-final exit to the successor (e.g. the taken arm of a
// conditional) becomes a forward branch to a junction label, preserving
// the frontend's forward-branch invariant; fences do not merge across a
// label, so only straight-line seams contribute cross-block merges.
// Every other exit keeps exiting the superblock to the dispatcher.

package tcg

import "fmt"

// Concat stitches a trace of translation blocks into one superblock.
// blocks[i+1] must be the guest successor blocks[i] chains into (its
// GuestPC must appear among blocks[i]'s constant exit targets). Labels are
// renumbered per component; temps are deliberately NOT renumbered — each
// component's locals are dead at its exits, and reusing their indices
// keeps the superblock within the backend's small local-register file
// (NumTemps is the maximum over components, not the sum).
func Concat(blocks []*Block) (*Block, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("tcg: superblock trace is empty")
	}
	if len(blocks) == 1 {
		return blocks[0].Clone(), nil
	}
	out := &Block{
		NumTemps: NumGlobals,
		GuestPC:  blocks[0].GuestPC,
		GuestEnd: blocks[len(blocks)-1].GuestEnd,
	}
	for i, b := range blocks {
		if b.NumTemps > out.NumTemps {
			out.NumTemps = b.NumTemps
		}
		base := out.NumLabels
		out.NumLabels += b.NumLabels
		last := i == len(blocks)-1
		var nextPC uint64
		if !last {
			nextPC = blocks[i+1].GuestPC
		}
		junction := -1 // lazily allocated label at the seam
		linked := false
		for j := range b.Insts {
			in := b.Insts[j]
			switch in.Op {
			case OpSetLabel, OpBr, OpBrcond:
				in.Label += base
			case OpExit:
				if !last && uint64(in.Imm) == nextPC {
					linked = true
					if j == len(b.Insts)-1 {
						// Straight-line seam: fall through with no label,
						// keeping the junction mergeable.
						continue
					}
					if junction < 0 {
						junction = out.NumLabels
						out.NumLabels++
					}
					in = Inst{Op: OpBr, Label: junction}
				}
			}
			out.Insts = append(out.Insts, in)
		}
		if !last && !linked {
			return nil, fmt.Errorf(
				"tcg: trace component %d (guest %#x) has no exit to successor %#x",
				i, b.GuestPC, nextPC)
		}
		if junction >= 0 {
			out.Insts = append(out.Insts, Inst{Op: OpSetLabel, Label: junction})
		}
	}
	return out, nil
}

// ExitTargets returns the distinct constant exit targets of b, in first-
// occurrence order — the chain edges a superblock builder may follow.
func (b *Block) ExitTargets() []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	for i := range b.Insts {
		if b.Insts[i].Op != OpExit {
			continue
		}
		pc := uint64(b.Insts[i].Imm)
		if !seen[pc] {
			seen[pc] = true
			out = append(out, pc)
		}
	}
	return out
}

// CountOp counts instructions with the given opcode — exported so the
// runtime's superblock pipeline can compare fence counts between
// separately-optimized components and the optimized superblock.
func (b *Block) CountOp(op Opcode) uint64 {
	var n uint64
	for i := range b.Insts {
		if b.Insts[i].Op == op {
			n++
		}
	}
	return n
}

// CrossBlockFences reports how many fences an optimized superblock saved
// over optimizing its components separately: each component clone is run
// through the same pass configuration on its own, their remaining fences
// are summed, and the difference against the optimized superblock's fence
// count is the cross-block merge gain (never negative).
func CrossBlockFences(components []*Block, optimizedSuper *Block, cfg OptConfig) uint64 {
	cfg.Obs = nil // side computation: keep the pass counters clean
	var separate uint64
	for _, c := range components {
		cc := c.Clone()
		Optimize(cc, cfg)
		separate += cc.CountOp(OpMb)
	}
	super := optimizedSuper.CountOp(OpMb)
	if separate <= super {
		return 0
	}
	return separate - super
}
