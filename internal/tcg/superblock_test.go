package tcg

import (
	"testing"

	"repro/internal/memmodel"
)

// ldFrmBlock builds a block ending with the verified-scheme load pattern
// (ld;Frm) followed only by its exit to next — the trailing fence sits at
// the seam when the block heads a trace.
func ldFrmBlock(pc, next uint64) *Block {
	b := NewBlock()
	b.GuestPC, b.GuestEnd = pc, pc+8
	addr, v := b.Temp(), b.Temp()
	b.MovI(addr, 0x100)
	b.Ld(v, addr, 0, 8)
	b.Mov(0, v)
	b.Mb(memmodel.FenceFrm)
	b.Exit(next)
	return b
}

// fwwStBlock builds a block opening with the verified-scheme store pattern
// (Fww;st).
func fwwStBlock(pc, next uint64) *Block {
	b := NewBlock()
	b.GuestPC, b.GuestEnd = pc, pc+8
	addr, v := b.Temp(), b.Temp()
	b.Mb(memmodel.FenceFww)
	b.MovI(addr, 0x108)
	b.MovI(v, 1)
	b.St(addr, 0, v, 8)
	b.Exit(next)
	return b
}

func TestConcatStraightSeamMergesFences(t *testing.T) {
	a := ldFrmBlock(0x1000, 0x2000)
	b := fwwStBlock(0x2000, 0x3000)
	super, err := Concat([]*Block{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if super.GuestPC != 0x1000 || super.GuestEnd != 0x2008 {
		t.Fatalf("superblock range [%#x,%#x)", super.GuestPC, super.GuestEnd)
	}
	// The seam exit is dropped entirely: only b's final exit remains.
	if got := super.ExitTargets(); len(got) != 1 || got[0] != 0x3000 {
		t.Fatalf("exit targets %v, want [0x3000]", got)
	}
	// No label at a straight-line seam, so the Frm/Fww pair merges.
	Optimize(super, OptConfig{FenceMerge: true})
	if ks := fenceKinds(super); len(ks) != 1 {
		t.Fatalf("cross-seam fences not merged: %v\n%s", ks, super)
	}
}

func TestConcatNonFinalExitGetsJunctionLabel(t *testing.T) {
	// a's exit to the successor is the *taken* arm of a conditional — not
	// the final instruction — so Concat must rewrite it into a forward
	// branch to a junction label, and fences must NOT merge across it.
	a := NewBlock()
	a.GuestPC, a.GuestEnd = 0x1000, 0x1008
	cond := a.Temp()
	l := a.NewLabel()
	a.MovI(cond, 1)
	a.Brcond(CondNE, cond, cond, l)
	a.Mb(memmodel.FenceFrm)
	a.Exit(0x2000) // non-final exit to the successor
	a.SetLabel(l)
	a.Exit(0x9000) // side exit leaves the superblock
	b := fwwStBlock(0x2000, 0x3000)

	super, err := Concat([]*Block{a, b})
	if err != nil {
		t.Fatal(err)
	}
	nbr := 0
	for _, in := range super.Insts {
		if in.Op == OpBr {
			nbr++
		}
	}
	if nbr != 1 {
		t.Fatalf("want 1 junction branch, got %d:\n%s", nbr, super)
	}
	if got := super.ExitTargets(); len(got) != 2 {
		t.Fatalf("exit targets %v, want side exit + final exit", got)
	}
	Optimize(super, OptConfig{FenceMerge: true})
	if ks := fenceKinds(super); len(ks) != 2 {
		t.Fatalf("fences must not merge across a junction label: %v\n%s", ks, super)
	}
}

func TestConcatLastComponentNeedsNoSuccessor(t *testing.T) {
	// Regression: the final component of a trace has no successor to link
	// to; Concat must not demand one of it.
	a := ldFrmBlock(0x1000, 0x2000)
	b := fwwStBlock(0x2000, 0x7777) // exits somewhere off-trace
	c := ldFrmBlock(0x2000, 0x0)
	c.GuestPC = 0x7777
	if _, err := Concat([]*Block{a, b, c}); err != nil {
		t.Fatalf("trace whose last block exits nowhere special: %v", err)
	}
}

func TestConcatUnlinkedTraceErrors(t *testing.T) {
	a := ldFrmBlock(0x1000, 0x5000) // never exits to 0x2000
	b := fwwStBlock(0x2000, 0x3000)
	if _, err := Concat([]*Block{a, b}); err == nil {
		t.Fatal("unlinked trace must error")
	}
}

func TestConcatSingleBlockClones(t *testing.T) {
	a := ldFrmBlock(0x1000, 0x2000)
	super, err := Concat([]*Block{a})
	if err != nil {
		t.Fatal(err)
	}
	if super == a {
		t.Fatal("single-block Concat must clone, not alias")
	}
	super.Insts[0] = Inst{Op: OpNop}
	if a.Insts[0].Op == OpNop {
		t.Fatal("clone shares instruction storage with the original")
	}
}

func TestConcatTempsNotRenumbered(t *testing.T) {
	a := ldFrmBlock(0x1000, 0x2000)
	b := fwwStBlock(0x2000, 0x3000)
	super, err := Concat([]*Block{a, b})
	if err != nil {
		t.Fatal(err)
	}
	max := a.NumTemps
	if b.NumTemps > max {
		max = b.NumTemps
	}
	if super.NumTemps != max {
		t.Fatalf("NumTemps %d, want max over components %d (locals reuse indices)",
			super.NumTemps, max)
	}
}

func TestCrossBlockFences(t *testing.T) {
	a := ldFrmBlock(0x1000, 0x2000)
	b := fwwStBlock(0x2000, 0x3000)
	comps := []*Block{a, b}
	super, err := Concat(comps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OptConfig{FenceMerge: true}
	Optimize(super, cfg)
	// Separately the two fences survive (2); the superblock keeps 1 — one
	// cross-block merge.
	if got := CrossBlockFences(comps, super, cfg); got != 1 {
		t.Fatalf("cross-block merges = %d, want 1", got)
	}
	// A lone component can never report cross-block gains.
	solo, _ := Concat([]*Block{ldFrmBlock(0x1000, 0x2000)})
	Optimize(solo, cfg)
	if got := CrossBlockFences([]*Block{a}, solo, cfg); got != 0 {
		t.Fatalf("single component cross-block merges = %d, want 0", got)
	}
}

func TestExitTargetsDistinctInOrder(t *testing.T) {
	b := NewBlock()
	b.Exit(0x30)
	b.Exit(0x10)
	b.Exit(0x30)
	got := b.ExitTargets()
	if len(got) != 2 || got[0] != 0x30 || got[1] != 0x10 {
		t.Fatalf("exit targets %v, want [0x30 0x10]", got)
	}
}
