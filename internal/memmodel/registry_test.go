package memmodel

import (
	"strings"
	"testing"
)

// plainModel is a Model without Prepare; preparedTestModel adds it.
type plainModel struct{ name string }

func (m plainModel) Name() string                { return m.name }
func (m plainModel) Consistent(x *Execution) bool { return true }

type preparedTestModel struct{ plainModel }

type trueChecker struct{}

func (trueChecker) Consistent(x *Execution) bool { return true }

func (m preparedTestModel) Prepare(sk *Skeleton) Checker {
	return trueChecker{}
}

func TestRegistryLookupNormalization(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(plainModel{name: "x86-TSO"}, LevelX86, "x86")
	for _, key := range []string{"x86-TSO", "x86tso", "X86_TSO", "x86 tso", "x86"} {
		if _, err := r.Lookup(key); err != nil {
			t.Errorf("Lookup(%q): %v", key, err)
		}
	}
}

func TestRegistryUnknownNameError(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(plainModel{name: "x86-TSO"}, LevelX86)
	r.MustRegisterVariant(plainModel{name: "Arm-Cats(original)"}, LevelArm)
	_, err := r.Lookup("no-such-model")
	if err == nil {
		t.Fatal("Lookup of unknown model succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown memory model "no-such-model"`) {
		t.Errorf("error %q lacks the canonical prefix", msg)
	}
	if !strings.Contains(msg, "x86-TSO") || !strings.Contains(msg, "Arm-Cats(original)") {
		t.Errorf("error %q does not list the known models", msg)
	}
}

func TestRegistryDuplicateKeyRejected(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(plainModel{name: "x86-TSO"}, LevelX86)
	if err := r.Register(plainModel{name: "X86_TSO"}, LevelX86); err == nil {
		t.Error("duplicate normalized key accepted")
	}
}

func TestRegistryPreparedDetection(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(plainModel{name: "plain"}, LevelX86)
	r.MustRegister(preparedTestModel{plainModel{name: "prepared"}}, LevelTCG)
	ents := r.Entries()
	if len(ents) != 2 {
		t.Fatalf("got %d entries, want 2", len(ents))
	}
	if ents[0].Prepared {
		t.Error("plain model detected as prepared")
	}
	if !ents[1].Prepared {
		t.Error("prepared model not detected")
	}
}

func TestRegistryForLevelAndVariants(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(plainModel{name: "Arm-Cats"}, LevelArm, "arm")
	r.MustRegisterVariant(plainModel{name: "Arm-Cats(original)"}, LevelArm)
	m, ok := r.ForLevel(LevelArm)
	if !ok || m.Name() != "Arm-Cats" {
		t.Errorf("ForLevel(arm) = %v, %v; want the canonical Arm-Cats", m, ok)
	}
	if _, ok := r.ForLevel(LevelIMM); ok {
		t.Error("ForLevel for an unpopulated level reported ok")
	}
	if got := len(r.Canonical()); got != 1 {
		t.Errorf("Canonical() has %d models, want 1 (variants excluded)", got)
	}
	if _, err := r.Lookup("arm-cats-original"); err != nil {
		t.Errorf("variant not resolvable by name: %v", err)
	}
}

func TestParseLevel(t *testing.T) {
	for _, l := range Levels() {
		got, ok := ParseLevel(string(l))
		if !ok || got != l {
			t.Errorf("ParseLevel(%q) = %q, %v", l, got, ok)
		}
	}
	if _, ok := ParseLevel("riscv"); ok {
		t.Error("ParseLevel accepted an unknown level")
	}
}
