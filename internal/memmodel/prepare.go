package memmodel

import (
	"sync"

	"repro/internal/rel"
)

// Skeleton is the candidate-invariant part of a program's executions: the
// event set and every relation fixed by program structure alone. During
// enumeration the rf×co product varies only Rf and Co (and relations
// derived from them), so anything computable from a Skeleton can be built
// once per skeleton and reused across all of its candidates.
type Skeleton struct {
	Events []Event
	// Po, Rmw and the syntactic dependencies are fixed by the program text
	// and the skeleton's branch choices; they never vary with rf or co.
	Po, Rmw, Data, Addr, Ctrl *rel.Relation
}

// Exec0 returns a pseudo-execution with the skeleton's invariant relations
// and empty rf/co. Model Prepare implementations run their existing
// relation builders on it to extract the candidate-invariant part of a
// derived relation (e.g. the fence and dependency components of an
// ordering base).
func (sk *Skeleton) Exec0() *Execution {
	return &Execution{
		Events: sk.Events,
		Po:     sk.Po,
		Rf:     rel.New(),
		Co:     rel.New(),
		Rmw:    sk.Rmw,
		Data:   sk.Data,
		Addr:   sk.Addr,
		Ctrl:   sk.Ctrl,
	}
}

// SkeletonOf extracts the invariant part of an execution, sharing the
// relation pointers (callers must not mutate them afterwards).
func SkeletonOf(x *Execution) *Skeleton {
	return &Skeleton{
		Events: x.Events,
		Po:     x.Po,
		Rmw:    x.Rmw,
		Data:   x.Data,
		Addr:   x.Addr,
		Ctrl:   x.Ctrl,
	}
}

// Checker is a per-skeleton consistency predicate. A Checker may keep
// reusable scratch state between calls, so a single Checker must not be
// shared across goroutines; create one per worker via NewChecker.
type Checker interface {
	// Consistent reports whether the candidate execution — which must be a
	// candidate of the skeleton the checker was prepared for — satisfies
	// every axiom of the model.
	Consistent(x *Execution) bool
}

// PreparedModel is implemented by models that can hoist candidate-invariant
// work into a per-skeleton Checker.
type PreparedModel interface {
	Model
	// Prepare builds a Checker specialized to the skeleton.
	Prepare(sk *Skeleton) Checker
}

// NewChecker returns the model's prepared checker for the skeleton, or a
// plain adapter calling m.Consistent per candidate when the model does not
// implement PreparedModel.
func NewChecker(m Model, sk *Skeleton) Checker {
	if pm, ok := m.(PreparedModel); ok {
		return pm.Prepare(sk)
	}
	return plainChecker{m}
}

type plainChecker struct{ m Model }

func (c plainChecker) Consistent(x *Execution) bool { return c.m.Consistent(x) }

// ReleasableChecker is a Checker whose scratch state can be returned to
// the shared arena pool once the checker is done. Campaign-style sweeps
// create one checker per skeleton across many thousands of programs;
// releasing lets consecutive skeletons of the same event-count reuse one
// arena instead of allocating a fresh relation set each.
type ReleasableChecker interface {
	Checker
	// Release returns the checker's scratch to the pool. The checker must
	// not be used afterwards. Release is idempotent.
	Release()
}

// ReleaseChecker releases c if its model supports it; checkers of plain
// (unprepared) models are a no-op.
func ReleaseChecker(c Checker) {
	if rc, ok := c.(ReleasableChecker); ok {
		rc.Release()
	}
}

// arenaPools pools released arenas keyed by universe size. Relations are
// capacity-bound to their arena's universe, so only exact-size reuse is
// sound; litmus skeletons cluster around a handful of event counts, which
// keeps the pool map tiny.
var arenaPools sync.Map // int -> *sync.Pool of *rel.Arena

func pooledArena(n int) *rel.Arena {
	if v, ok := arenaPools.Load(n); ok {
		if ar, _ := v.(*sync.Pool).Get().(*rel.Arena); ar != nil {
			return ar
		}
	}
	return rel.NewArena(n)
}

func releaseArena(ar *rel.Arena) {
	v, _ := arenaPools.LoadOrStore(ar.Universe(), &sync.Pool{})
	v.(*sync.Pool).Put(ar)
}

// Prep precomputes the skeleton relations every model's checker needs —
// po|loc, the po-internality mask, and the common axioms — plus an arena
// of scratch relations so the per-candidate work is allocation-free.
// Model checkers embed or wrap a Prep.
type Prep struct {
	Sk *Skeleton
	// PoLoc is po restricted to same-location memory accesses.
	PoLoc *rel.Relation
	// PoSym is po ∪ po⁻¹: the edges internal to a thread. rf/co/fr edges
	// are external exactly when absent from PoSym (init-write edges are
	// never po-related, hence always external).
	PoSym *rel.Relation
	// Arena sizes scratch relations to the skeleton's event universe.
	Arena *rel.Arena

	rmwEmpty bool
	// Per-candidate scratch, overwritten by each Derive call.
	rfInv, fr, rfe, coe, fre, acc, atom *rel.Relation
}

// Derived bundles the candidate-varying relations computed by Derive. The
// relations are owned by the Prep and valid until the next Derive call.
type Derived struct {
	Fr, Rfe, Coe, Fre *rel.Relation
}

// NewPrep builds the shared per-skeleton state. The arena comes from the
// process-wide size-keyed pool; call Release (or ReleaseChecker on the
// owning checker) to return it when the skeleton's candidates are done.
func NewPrep(sk *Skeleton) *Prep {
	n := len(sk.Events)
	ar := pooledArena(n)
	p := &Prep{
		Sk:       sk,
		Arena:    ar,
		rmwEmpty: sk.Rmw.IsEmpty(),
		rfInv:    ar.Get(),
		fr:       ar.Get(),
		rfe:      ar.Get(),
		coe:      ar.Get(),
		fre:      ar.Get(),
		acc:      ar.Get(),
		atom:     ar.Get(),
	}
	p.PoLoc = sk.Exec0().PoLoc()
	p.PoSym = sk.Po.Union(sk.Po.Inverse())
	return p
}

// Derive computes fr, rfe, coe and fre for the candidate, reusing the
// prep's scratch relations.
func (p *Prep) Derive(x *Execution) Derived {
	p.rfInv.InverseOf(x.Rf)
	p.fr.SeqOf(p.rfInv, x.Co)
	p.rfe.CopyFrom(x.Rf)
	p.rfe.MinusWith(p.PoSym)
	p.coe.CopyFrom(x.Co)
	p.coe.MinusWith(p.PoSym)
	p.fre.CopyFrom(p.fr)
	p.fre.MinusWith(p.PoSym)
	return Derived{Fr: p.fr, Rfe: p.rfe, Coe: p.coe, Fre: p.fre}
}

// SCPerLoc checks the coherence axiom with precomputed po|loc and fr:
// acyclic(po|loc ∪ rf ∪ co ∪ fr).
func (p *Prep) SCPerLoc(x *Execution, d Derived) bool {
	p.acc.CopyFrom(p.PoLoc)
	p.acc.UnionWith(x.Rf)
	p.acc.UnionWith(x.Co)
	p.acc.UnionWith(d.Fr)
	return p.Arena.Acyclic(p.acc)
}

// Atomicity checks the RMW axiom rmw ∩ (fre ; coe) = ∅, skipping the
// composition entirely for the common rmw-free skeletons.
func (p *Prep) Atomicity(d Derived) bool {
	if p.rmwEmpty {
		return true
	}
	p.atom.SeqOf(d.Fre, d.Coe)
	p.atom.IntersectWith(p.Sk.Rmw)
	return p.atom.IsEmpty()
}

// Scratch returns the prep's accumulator relation, reset. Model checkers
// build their ordering union in it; its contents are invalidated by the
// next SCPerLoc or Scratch call.
func (p *Prep) Scratch() *rel.Relation {
	p.acc.Reset()
	return p.acc
}

// Release returns the prep's scratch relations and arena to the pool.
// Idempotent; the prep must not be used after the first call. Model
// checkers that hold extra arena relations must Put them back before
// calling this (see ReleasableChecker).
func (p *Prep) Release() {
	if p.Arena == nil {
		return
	}
	for _, r := range []*rel.Relation{p.rfInv, p.fr, p.rfe, p.coe, p.fre, p.acc, p.atom} {
		p.Arena.Put(r)
	}
	releaseArena(p.Arena)
	p.Arena = nil
}
