package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Level identifies the instruction level a model (or a litmus program)
// lives at. Mapping schemes translate programs between levels; models
// judge programs of their own level.
type Level string

const (
	// LevelX86 is the x86 guest level.
	LevelX86 Level = "x86"
	// LevelSPARC is the SPARC guest level (TSO with the membar taxonomy).
	LevelSPARC Level = "sparc"
	// LevelIMM is the intermediate-memory-model level sitting between
	// guests and the TCG IR (Podkopaev et al.).
	LevelIMM Level = "imm"
	// LevelTCG is the TCG IR level.
	LevelTCG Level = "tcg"
	// LevelArm is the Arm host level.
	LevelArm Level = "arm"
)

// Levels returns every known level in guest→host order.
func Levels() []Level {
	return []Level{LevelX86, LevelSPARC, LevelIMM, LevelTCG, LevelArm}
}

// ParseLevel resolves a level name; ok is false for unknown names.
func ParseLevel(s string) (Level, bool) {
	for _, l := range Levels() {
		if string(l) == strings.ToLower(s) {
			return l, true
		}
	}
	return "", false
}

// RegistryEntry is one registered model with its lookup metadata.
type RegistryEntry struct {
	// Name is the model's canonical name (Model.Name()).
	Name string
	// Aliases are additional lookup keys ("x86", "tcg", …).
	Aliases []string
	// Level is the instruction level the model judges.
	Level Level
	// Model is the consistency predicate itself.
	Model Model
	// Prepared reports whether the model implements PreparedModel (the
	// per-skeleton fast path of PR 4); detected at registration.
	Prepared bool
	// Variant marks secondary entries (e.g. the pre-fix Arm-Cats model)
	// that are resolvable by name but excluded from Canonical sweeps and
	// from level defaults.
	Variant bool
}

// Registry resolves model names to models. It replaces the constructor
// switches that used to be copy-pasted across litmusctl, campaign and
// faultmatrix: call sites hold a name (or a level) and the registry is the
// single place that knows which Model answers to it.
//
// Lookup keys are normalized — case and punctuation are ignored — so
// "x86-TSO", "x86tso" and "X86_TSO" all resolve to the same entry.
type Registry struct {
	entries []*RegistryEntry
	byKey   map[string]*RegistryEntry
	byLevel map[Level]*RegistryEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:   make(map[string]*RegistryEntry),
		byLevel: make(map[Level]*RegistryEntry),
	}
}

// normalizeKey folds case and strips punctuation so lookups tolerate the
// usual spelling variants.
func normalizeKey(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Register adds a canonical model under its own Name plus any aliases.
// The first canonical model registered per level becomes that level's
// default (ForLevel). Duplicate keys are an error.
func (r *Registry) Register(m Model, level Level, aliases ...string) error {
	return r.register(m, level, false, aliases...)
}

// RegisterVariant adds a secondary entry: resolvable by name and listed in
// Entries, but excluded from Canonical and never a level default.
func (r *Registry) RegisterVariant(m Model, level Level, aliases ...string) error {
	return r.register(m, level, true, aliases...)
}

func (r *Registry) register(m Model, level Level, variant bool, aliases ...string) error {
	e := &RegistryEntry{
		Name:    m.Name(),
		Aliases: aliases,
		Level:   level,
		Model:   m,
		Variant: variant,
	}
	_, e.Prepared = m.(PreparedModel)
	keys := append([]string{e.Name}, aliases...)
	for _, k := range keys {
		nk := normalizeKey(k)
		if nk == "" {
			return fmt.Errorf("memmodel: empty registry key for model %q", e.Name)
		}
		if prev, dup := r.byKey[nk]; dup {
			return fmt.Errorf("memmodel: registry key %q for model %q already taken by %q", k, e.Name, prev.Name)
		}
		r.byKey[nk] = e
	}
	r.entries = append(r.entries, e)
	if !variant {
		if _, ok := r.byLevel[level]; !ok {
			r.byLevel[level] = e
		}
	}
	return nil
}

// MustRegister is Register, panicking on error (for static default tables).
func (r *Registry) MustRegister(m Model, level Level, aliases ...string) {
	if err := r.Register(m, level, aliases...); err != nil {
		panic(err)
	}
}

// MustRegisterVariant is RegisterVariant, panicking on error.
func (r *Registry) MustRegisterVariant(m Model, level Level, aliases ...string) {
	if err := r.RegisterVariant(m, level, aliases...); err != nil {
		panic(err)
	}
}

// Entry resolves a name (canonical or alias, spelling-tolerant) to its
// entry. The error message is the one canonical "unknown model" report
// every CLI and driver shares.
func (r *Registry) Entry(name string) (*RegistryEntry, error) {
	if e, ok := r.byKey[normalizeKey(name)]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("unknown memory model %q (known models: %s)", name, strings.Join(r.Names(), ", "))
}

// Lookup resolves a name to its model using the same rules as Entry.
func (r *Registry) Lookup(name string) (Model, error) {
	e, err := r.Entry(name)
	if err != nil {
		return nil, err
	}
	return e.Model, nil
}

// MustLookup is Lookup, panicking on unknown names (for static tables and
// tests where the name is a literal).
func (r *Registry) MustLookup(name string) Model {
	m, err := r.Lookup(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ForLevel returns the level's default model: the first canonical model
// registered at that level.
func (r *Registry) ForLevel(l Level) (Model, bool) {
	e, ok := r.byLevel[l]
	if !ok {
		return nil, false
	}
	return e.Model, true
}

// Canonical returns the canonical (non-variant) models in registration
// order — the sweep set for corpus-wide commands.
func (r *Registry) Canonical() []Model {
	var out []Model
	for _, e := range r.entries {
		if !e.Variant {
			out = append(out, e.Model)
		}
	}
	return out
}

// Entries returns every registered entry (canonical then variants keep
// registration order).
func (r *Registry) Entries() []RegistryEntry {
	out := make([]RegistryEntry, len(r.entries))
	for i, e := range r.entries {
		out[i] = *e
	}
	return out
}

// Names returns every canonical name in registration order, variants
// included (sorted suffixes keep the message deterministic).
func (r *Registry) Names() []string {
	var canon, variants []string
	for _, e := range r.entries {
		if e.Variant {
			variants = append(variants, e.Name)
		} else {
			canon = append(canon, e.Name)
		}
	}
	sort.Strings(variants)
	return append(canon, variants...)
}
