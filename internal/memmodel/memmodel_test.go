package memmodel

import (
	"testing"

	"repro/internal/rel"
)

// mpExecution builds MP's weak-outcome candidate by hand:
//
//	T0: W(X,1); W(Y,1)   T1: R(Y)=1; R(X)=0
//
// with rf(W(Y)→R(Y)), R(X) reading the init write, and co init→W per loc.
func mpExecution() *Execution {
	events := []Event{
		{ID: 0, Thread: InitThread, Kind: KindWrite, Loc: "X", Val: 0},
		{ID: 1, Thread: InitThread, Kind: KindWrite, Loc: "Y", Val: 0},
		{ID: 2, Thread: 0, Kind: KindWrite, Loc: "X", Val: 1},
		{ID: 3, Thread: 0, Kind: KindWrite, Loc: "Y", Val: 1},
		{ID: 4, Thread: 1, Kind: KindRead, Loc: "Y", Val: 1},
		{ID: 5, Thread: 1, Kind: KindRead, Loc: "X", Val: 0},
	}
	x := NewExecution(events)
	x.Po.Add(2, 3)
	x.Po.Add(4, 5)
	x.Rf.Add(3, 4) // R(Y) reads W(Y,1)
	x.Rf.Add(0, 5) // R(X) reads init
	x.Co.Add(0, 2)
	x.Co.Add(1, 3)
	return x
}

func TestDerivedRelations(t *testing.T) {
	x := mpExecution()
	fr := x.Fr()
	// R(X,0) reads init; W(X,1) is co-after init → fr(5, 2).
	if !fr.Has(5, 2) {
		t.Fatalf("fr missing (5,2): %v", fr)
	}
	// R(Y,1) reads the co-maximal write → no fr edge from it.
	if fr.Has(4, 3) {
		t.Fatal("fr should not relate a read to its own source")
	}
	if !x.Rfe().Has(3, 4) {
		t.Fatal("rf(3,4) crosses threads → rfe")
	}
	if !x.Fre().Has(5, 2) {
		t.Fatal("fr(5,2) crosses threads → fre")
	}
}

func TestPoLoc(t *testing.T) {
	x := mpExecution()
	if !x.PoLoc().IsEmpty() {
		t.Fatalf("MP has no same-location po pairs: %v", x.PoLoc())
	}
	// Same-location pair.
	y := NewExecution([]Event{
		{ID: 0, Thread: 0, Kind: KindWrite, Loc: "X", Val: 1},
		{ID: 1, Thread: 0, Kind: KindRead, Loc: "X", Val: 1},
		{ID: 2, Thread: 0, Kind: KindFence, Fence: FenceMFENCE},
	})
	y.Po.Add(0, 1)
	y.Po.Add(0, 2)
	y.Po.Add(1, 2)
	pl := y.PoLoc()
	if !pl.Has(0, 1) || pl.Size() != 1 {
		t.Fatalf("po|loc wrong: %v", pl)
	}
}

func TestBehav(t *testing.T) {
	x := mpExecution()
	b := x.Behav()
	if b["X"] != 1 || b["Y"] != 1 {
		t.Fatalf("behaviour = %v", b)
	}
	if BehavKey(b) != "X=1 Y=1" {
		t.Fatalf("BehavKey = %q", BehavKey(b))
	}
}

func TestSCPerLoc(t *testing.T) {
	x := mpExecution()
	if !x.SCPerLoc() {
		t.Fatal("MP candidate is per-location coherent")
	}
	// Violate coherence: make the read of X read init while po-after a
	// same-thread write of X that is co-after init.
	y := NewExecution([]Event{
		{ID: 0, Thread: InitThread, Kind: KindWrite, Loc: "X", Val: 0},
		{ID: 1, Thread: 0, Kind: KindWrite, Loc: "X", Val: 1},
		{ID: 2, Thread: 0, Kind: KindRead, Loc: "X", Val: 0},
	})
	y.Po.Add(1, 2)
	y.Rf.Add(0, 2)
	y.Co.Add(0, 1)
	if y.SCPerLoc() {
		t.Fatal("reading overwritten init past own write must violate sc-per-loc")
	}
}

func TestAtomicity(t *testing.T) {
	// rmw pair (r, w) on X with an intervening external write w'.
	x := NewExecution([]Event{
		{ID: 0, Thread: InitThread, Kind: KindWrite, Loc: "X", Val: 0},
		{ID: 1, Thread: 0, Kind: KindRead, Loc: "X", Val: 0, RMW: RMWAmo},
		{ID: 2, Thread: 0, Kind: KindWrite, Loc: "X", Val: 1, RMW: RMWAmo},
		{ID: 3, Thread: 1, Kind: KindWrite, Loc: "X", Val: 9},
	})
	x.Po.Add(1, 2)
	x.Rf.Add(0, 1)
	x.Rmw.Add(1, 2)
	x.Co.Add(0, 3)
	x.Co.Add(3, 2)
	x.Co.Add(0, 2)
	if x.Atomicity() {
		t.Fatal("intervening write between rmw read and write must violate atomicity")
	}
	// Move w' after the rmw write: fine.
	x.Co = rel.New()
	x.Co.Add(0, 2)
	x.Co.Add(2, 3)
	x.Co.Add(0, 3)
	if !x.Atomicity() {
		t.Fatal("write after the rmw pair does not violate atomicity")
	}
}

func TestEventPredicates(t *testing.T) {
	x := mpExecution()
	if got := x.Reads(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Reads = %v", got)
	}
	if got := x.Writes(); len(got) != 4 {
		t.Fatalf("Writes = %v", got)
	}
	if !x.Events[0].IsInit() || x.Events[2].IsInit() {
		t.Fatal("IsInit wrong")
	}
	if len(x.Fences()) != 0 {
		t.Fatal("MP has no fences")
	}
}

func TestFenceFiltering(t *testing.T) {
	x := NewExecution([]Event{
		{ID: 0, Thread: 0, Kind: KindFence, Fence: FenceFrm},
		{ID: 1, Thread: 0, Kind: KindFence, Fence: FenceDMBFF},
	})
	if got := x.Fences(FenceFrm); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Fences(Frm) = %v", got)
	}
	if got := x.Fences(); len(got) != 2 {
		t.Fatalf("Fences() = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if KindRead.String() != "R" || KindWrite.String() != "W" || KindFence.String() != "F" {
		t.Fatal("Kind names")
	}
	if FenceDMBLD.String() != "DMBLD" || FenceFsc.String() != "Fsc" {
		t.Fatal("Fence names")
	}
	e := Event{ID: 1, Thread: 0, Kind: KindRead, Loc: "X", Val: 2, Acq: true}
	if e.String() == "" {
		t.Fatal("empty event string")
	}
}
