// Package obs is Risotto-Go's observability layer: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms) plus a
// structured trace-event layer (ring-buffered spans carrying phase, CPU,
// guest/host PC and duration) that every stage of the DBT pipeline
// reports into — frontend decode, TCG optimization, backend emission,
// code-cache management, machine scheduling, syscall and host-call
// dispatch, fault injection, and litmus enumeration.
//
// The paper's evaluation (Figs. 12–15) is an exercise in counting and
// attributing fences, CAS translations and code-cache behaviour; this
// package makes those quantities first-class instead of ad-hoc struct
// fields and fmt prints. A single *Scope is threaded through
// core.Runtime, machine.Machine, litmus enumeration options and
// faults.Injector, so the whole stack reports into one registry and one
// trace stream.
//
// Everything is safe for concurrent use and nil-safe: a nil *Scope (and
// the nil metric handles it returns) turns every instrumentation call
// into a no-op, so un-instrumented hot paths pay only a nil check.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// --- Metric primitives -------------------------------------------------------

// Counter is a monotonic (with a narrow correction escape hatch, see Sub)
// uint64 metric. The zero value is ready to use; a nil *Counter is a
// no-op, so handles from a nil Scope can be used unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Sub subtracts n. It exists for the rare uncount (a retried guest
// syscall is not a fresh syscall); general counters should only go up.
func (c *Counter) Sub(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(^(n - 1))
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-layout bucketed distribution. Bounds are ascending
// upper bounds; a sample lands in the first bucket whose bound is >= the
// sample, or in the implicit overflow bucket past the last bound, so
// there are len(bounds)+1 buckets in total.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64
	count  atomic.Uint64
}

// newHistogram copies bounds (defensively) and allocates the buckets.
func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Standard bucket layouts. Fixed layouts keep output shape stable across
// runs and make snapshots directly comparable.
var (
	// DurationBuckets covers span durations in nanoseconds, ~×4 steps
	// from 1µs to 4s plus overflow.
	DurationBuckets = []uint64{
		1_000, 4_000, 16_000, 64_000, 256_000,
		1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000,
		1_000_000_000, 4_000_000_000,
	}
	// SizeBuckets covers byte sizes (code-cache blocks), powers of four
	// from 16 B to 1 MiB plus overflow.
	SizeBuckets = []uint64{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
)

// --- Registry ----------------------------------------------------------------

// Registry holds named metrics. Lookup is mutex-guarded get-or-create;
// hot paths should fetch a handle once and keep it.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing layout).
// Nil-safe.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// --- Snapshot ----------------------------------------------------------------

// HistogramSnapshot is one histogram's frozen state. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// SpanStats summarizes the trace stream: how many spans were recorded in
// total, how many the ring has since overwritten, and the per-phase
// totals (which survive wraparound).
type SpanStats struct {
	Total   uint64            `json:"total"`
	Dropped uint64            `json:"dropped"`
	ByPhase map[string]uint64 `json:"by_phase"`
}

// Snapshot is a frozen, renderable view of a registry plus its trace
// summary — the programmatic form behind -metrics and the /metrics and
// /debug/obs endpoints.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      SpanStats                    `json:"spans"`
}

// Snapshot freezes the registry. Metrics created after the call are not
// included. Nil-safe: a nil registry yields empty (non-nil) maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Spans:      SpanStats{ByPhase: make(map[string]uint64)},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// MetricNames returns every metric name in the snapshot, sorted, with a
// kind prefix ("counter:", "gauge:", "histogram:") — the stable "shape"
// of a snapshot, used by golden tests.
func (s Snapshot) MetricNames() []string {
	var out []string
	for n := range s.Counters {
		out = append(out, "counter:"+n)
	}
	for n := range s.Gauges {
		out = append(out, "gauge:"+n)
	}
	for n := range s.Histograms {
		out = append(out, "histogram:"+n)
	}
	sort.Strings(out)
	return out
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// String renders a terse one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("obs.Snapshot{%d counters, %d gauges, %d histograms, %d spans}",
		len(s.Counters), len(s.Gauges), len(s.Histograms), s.Spans.Total)
}
