package obs

// Scope is the instrumentation handle threaded through the stack: a
// registry plus a tracer, with an optional name prefix for metrics.
// Child scopes share both and extend the prefix. A nil *Scope disables
// everything (all methods are nil-safe no-ops), so subsystems can accept
// one unconditionally.
type Scope struct {
	prefix string
	reg    *Registry
	tr     *Tracer
}

// NewScope returns a root scope with a fresh registry and a tracer of
// DefaultTraceCapacity. An empty name means metric names are used
// verbatim; otherwise they are prefixed "name.".
func NewScope(name string) *Scope {
	return NewScopeCapacity(name, DefaultTraceCapacity)
}

// NewScopeCapacity is NewScope with an explicit trace-ring capacity.
func NewScopeCapacity(name string, traceCapacity int) *Scope {
	return &Scope{prefix: prefixOf(name), reg: NewRegistry(), tr: NewTracer(traceCapacity)}
}

func prefixOf(name string) string {
	if name == "" {
		return ""
	}
	return name + "."
}

// Child returns a scope sharing this scope's registry and tracer, with
// name appended to the metric prefix. Nil-safe (returns nil).
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{prefix: s.prefix + prefixOf(name), reg: s.reg, tr: s.tr}
}

// Registry exposes the underlying registry (nil on a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer exposes the underlying tracer (nil on a nil scope).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// Counter returns the scoped counter handle. Nil-safe.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(s.prefix + name)
}

// Gauge returns the scoped gauge handle. Nil-safe.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(s.prefix + name)
}

// Histogram returns the scoped histogram handle. Nil-safe.
func (s *Scope) Histogram(name string, bounds []uint64) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(s.prefix+name, bounds)
}

// Begin returns a span start timestamp for a later Span call. Nil-safe.
func (s *Scope) Begin() int64 {
	if s == nil {
		return 0
	}
	return s.tr.Now()
}

// Span records a span that started at start (from Begin) and ends now,
// returning its duration in nanoseconds. Nil-safe (returns 0).
func (s *Scope) Span(phase, detail string, cpu int, guestPC, hostPC uint64, start int64) int64 {
	if s == nil {
		return 0
	}
	dur := s.tr.Now() - start
	if dur < 0 {
		dur = 0
	}
	s.tr.Append(Span{
		Phase: phase, Detail: detail, CPU: cpu,
		GuestPC: guestPC, HostPC: hostPC,
		StartNS: start, DurNS: dur,
	})
	return dur
}

// Event records a zero-duration point span. Nil-safe.
func (s *Scope) Event(phase, detail string, cpu int, guestPC, hostPC uint64) {
	if s == nil {
		return
	}
	s.tr.Append(Span{
		Phase: phase, Detail: detail, CPU: cpu,
		GuestPC: guestPC, HostPC: hostPC,
		StartNS: s.tr.Now(),
	})
}

// Snapshot freezes the scope's registry and trace summary. Nil-safe: a
// nil scope yields an empty snapshot.
func (s *Scope) Snapshot() Snapshot {
	if s == nil {
		return (*Registry)(nil).Snapshot()
	}
	snap := s.reg.Snapshot()
	snap.Spans = s.tr.Stats()
	return snap
}
