package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Formats accepted by Dump (and the CLIs' -metrics flag).
const (
	FormatJSON = "json"
	FormatProm = "prom"
	FormatText = "text"
)

// ValidFormat reports whether f is an accepted -metrics format.
func ValidFormat(f string) bool {
	return f == FormatJSON || f == FormatProm || f == FormatText
}

// Dump renders the snapshot to w in the given format.
func Dump(w io.Writer, s Snapshot, format string) error {
	switch format {
	case FormatJSON:
		return s.WriteJSON(w)
	case FormatProm:
		return s.WriteProm(w)
	case FormatText:
		return s.WriteText(w)
	}
	return fmt.Errorf("obs: unknown metrics format %q (want %s, %s or %s)",
		format, FormatJSON, FormatProm, FormatText)
}

// WriteJSON renders the snapshot as indented JSON. encoding/json sorts
// map keys, so the output is deterministic for a given metric set.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName rewrites a dotted metric name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (counters, gauges, and histograms with cumulative _bucket
// series), suitable for the /metrics endpoint.
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", p, p, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", p)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", p, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", p, h.Sum, p, h.Count)
	}
	for _, phase := range sortedKeys(s.Spans.ByPhase) {
		fmt.Fprintf(&b, "# TYPE spans_total counter\nspans_total{phase=%q} %d\n",
			phase, s.Spans.ByPhase[phase])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText renders a human-readable aligned listing.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%-40s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		avg := uint64(0)
		if h.Count > 0 {
			avg = h.Sum / h.Count
		}
		fmt.Fprintf(&b, "%-40s count=%d sum=%d avg=%d\n", name, h.Count, h.Sum, avg)
	}
	fmt.Fprintf(&b, "%-40s total=%d dropped=%d\n", "spans", s.Spans.Total, s.Spans.Dropped)
	for _, phase := range sortedKeys(s.Spans.ByPhase) {
		fmt.Fprintf(&b, "%-40s %d\n", "spans."+phase, s.Spans.ByPhase[phase])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- JSON schema check -------------------------------------------------------

// ValidateSnapshotJSON checks that data is a well-formed -metrics json
// document: the structural schema the check.sh gate enforces, written in
// plain Go so the repo stays dependency-free. It verifies the four
// top-level sections, numeric metric values, histogram bucket/count
// arity, and span-summary consistency.
func ValidateSnapshotJSON(data []byte) error {
	var doc struct {
		Counters   *map[string]float64 `json:"counters"`
		Gauges     *map[string]float64 `json:"gauges"`
		Histograms *map[string]struct {
			Bounds *[]float64 `json:"bounds"`
			Counts *[]float64 `json:"counts"`
			Count  *float64   `json:"count"`
			Sum    *float64   `json:"sum"`
		} `json:"histograms"`
		Spans *struct {
			Total   *float64            `json:"total"`
			Dropped *float64            `json:"dropped"`
			ByPhase *map[string]float64 `json:"by_phase"`
		} `json:"spans"`
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("obs: metrics json does not match schema: %w", err)
	}
	if doc.Counters == nil || doc.Gauges == nil || doc.Histograms == nil || doc.Spans == nil {
		return fmt.Errorf("obs: metrics json missing a required section (counters/gauges/histograms/spans)")
	}
	for name, v := range *doc.Counters {
		if v < 0 || v != float64(uint64(v)) {
			return fmt.Errorf("obs: counter %q has non-integral or negative value %v", name, v)
		}
	}
	for name, h := range *doc.Histograms {
		if h.Bounds == nil || h.Counts == nil || h.Count == nil || h.Sum == nil {
			return fmt.Errorf("obs: histogram %q missing bounds/counts/count/sum", name)
		}
		if len(*h.Counts) != len(*h.Bounds)+1 {
			return fmt.Errorf("obs: histogram %q has %d counts for %d bounds (want bounds+1)",
				name, len(*h.Counts), len(*h.Bounds))
		}
		var total float64
		for _, c := range *h.Counts {
			total += c
		}
		if total != *h.Count {
			return fmt.Errorf("obs: histogram %q bucket counts sum to %v, count says %v",
				name, total, *h.Count)
		}
		for i := 1; i < len(*h.Bounds); i++ {
			if (*h.Bounds)[i] <= (*h.Bounds)[i-1] {
				return fmt.Errorf("obs: histogram %q bounds not ascending at %d", name, i)
			}
		}
	}
	sp := *doc.Spans
	if sp.Total == nil || sp.Dropped == nil || sp.ByPhase == nil {
		return fmt.Errorf("obs: spans section missing total/dropped/by_phase")
	}
	var phaseSum float64
	for _, n := range *sp.ByPhase {
		phaseSum += n
	}
	if phaseSum != *sp.Total {
		return fmt.Errorf("obs: span phase totals sum to %v, total says %v", phaseSum, *sp.Total)
	}
	if *sp.Dropped > *sp.Total {
		return fmt.Errorf("obs: spans dropped %v exceeds total %v", *sp.Dropped, *sp.Total)
	}
	return nil
}
