package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one structured trace event: a pipeline phase execution with
// attribution (CPU, guest/host PC) and duration. Zero-duration spans are
// point events (a cache flush, an injected fault).
type Span struct {
	// Seq is the global 1-based sequence number of the span.
	Seq uint64 `json:"seq"`
	// Phase names the pipeline stage, e.g. "frontend.decode",
	// "backend.emit", "litmus.enumerate" (see DESIGN.md §7 for the
	// catalogue).
	Phase string `json:"phase"`
	// Detail is optional free-form context (program name, fault site…).
	Detail string `json:"detail,omitempty"`
	// CPU is the vCPU the span is attributed to, or -1.
	CPU int `json:"cpu"`
	// GuestPC / HostPC attribute the span to an address when known.
	GuestPC uint64 `json:"guest_pc,omitempty"`
	HostPC  uint64 `json:"host_pc,omitempty"`
	// StartNS is the span start in nanoseconds since tracer creation.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds (0 for point events).
	DurNS int64 `json:"dur_ns"`
}

// DefaultTraceCapacity is the span ring size used by NewScope.
const DefaultTraceCapacity = 4096

// Tracer is a fixed-capacity ring buffer of spans. When full, the oldest
// spans are overwritten; per-phase totals and the global count survive
// wraparound. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	total   uint64 // spans ever appended
	byPhase map[string]uint64
	epoch   time.Time
}

// NewTracer returns a tracer retaining at most capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		ring:    make([]Span, 0, capacity),
		byPhase: make(map[string]uint64),
		epoch:   time.Now(),
	}
}

// Now returns nanoseconds since the tracer's epoch — the time base for
// span StartNS. Nil-safe (returns 0).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Append records a span, stamping its sequence number. Nil-safe.
func (t *Tracer) Append(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	s.Seq = t.total
	t.byPhase[s.Phase]++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		// Overwrite the slot the (total-1)th span hashes to: with a
		// monotonically assigned Seq this walks the ring in order, so the
		// retained window is always the most recent cap(ring) spans.
		t.ring[(t.total-1)%uint64(cap(t.ring))] = s
	}
}

// Spans returns the retained spans, oldest first. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.total <= uint64(cap(t.ring)) {
		return append(out, t.ring...)
	}
	start := t.total % uint64(cap(t.ring))
	out = append(out, t.ring[start:]...)
	return append(out, t.ring[:start]...)
}

// Stats summarizes the stream. Nil-safe.
func (t *Tracer) Stats() SpanStats {
	s := SpanStats{ByPhase: make(map[string]uint64)}
	if t == nil {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Total = t.total
	if t.total > uint64(cap(t.ring)) {
		s.Dropped = t.total - uint64(cap(t.ring))
	}
	for phase, n := range t.byPhase {
		s.ByPhase[phase] = n
	}
	return s
}

// WriteJSONL writes the retained spans as one JSON object per line — the
// format behind the CLIs' -trace FILE flag. Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		line, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("obs: marshaling span %d: %w", s.Seq, err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
