package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers get-or-create and the metric write
// paths from many goroutines; run under -race this is the registry's
// data-race gate.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", DurationBuckets).Observe(uint64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared.counter"]; got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := s.Gauges["shared.gauge"]; got != goroutines*iters {
		t.Errorf("gauge = %d, want %d", got, goroutines*iters)
	}
	if got := s.Histograms["shared.hist"].Count; got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

func TestCounterSub(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Sub(2)
	if got := c.Load(); got != 3 {
		t.Errorf("after Add(5);Sub(2): %d, want 3", got)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Scope
	// None of these may panic; all reads come back zero.
	s.Counter("x").Inc()
	s.Gauge("x").Set(7)
	s.Histogram("x", SizeBuckets).Observe(1)
	s.Event("phase", "", 0, 0, 0)
	if d := s.Span("phase", "", 0, 0, 0, s.Begin()); d != 0 {
		t.Errorf("nil scope Span returned %d, want 0", d)
	}
	if s.Child("c") != nil {
		t.Error("nil scope Child should be nil")
	}
	snap := s.Snapshot()
	if len(snap.Counters) != 0 || snap.Spans.Total != 0 {
		t.Errorf("nil scope snapshot not empty: %v", snap)
	}
	var tr *Tracer
	tr.Append(Span{Phase: "p"})
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer Spans = %v, want nil", got)
	}
}

// TestHistogramBuckets pins the bucket-selection rule: a sample lands in
// the first bucket whose bound is >= the sample; past the last bound it
// lands in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]uint64{10, 100, 1000})
	cases := []struct {
		v    uint64
		slot int
	}{
		{0, 0}, {9, 0}, {10, 0}, // at-or-below first bound
		{11, 1}, {100, 1}, // exact bound is inclusive
		{101, 2}, {1000, 2},
		{1001, 3}, {^uint64(0), 3}, // overflow bucket
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.snapshot()
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 9 {
		t.Errorf("count = %d, want 9", snap.Count)
	}
	if len(snap.Counts) != len(snap.Bounds)+1 {
		t.Errorf("len(counts) = %d, want bounds+1 = %d", len(snap.Counts), len(snap.Bounds)+1)
	}
}

func TestScopePrefix(t *testing.T) {
	root := NewScope("")
	child := root.Child("litmus")
	grand := child.Child("cache")
	grand.Counter("hits").Add(3)
	child.Counter("shards").Inc()
	root.Counter("top").Inc()
	s := root.Snapshot()
	for _, name := range []string{"litmus.cache.hits", "litmus.shards", "top"} {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("missing counter %q; have %v", name, s.MetricNames())
		}
	}
	if s.Counters["litmus.cache.hits"] != 3 {
		t.Errorf("litmus.cache.hits = %d, want 3", s.Counters["litmus.cache.hits"])
	}
}

func TestRenderFormats(t *testing.T) {
	sc := NewScope("")
	sc.Counter("core.blocks").Add(42)
	sc.Gauge("machine.insts").Set(-1)
	sc.Histogram("core.translate_ns", DurationBuckets).Observe(5_000)
	sc.Event("frontend.decode", "", 0, 0x401000, 0)
	sn := sc.Snapshot()

	var jsonBuf bytes.Buffer
	if err := Dump(&jsonBuf, sn, FormatJSON); err != nil {
		t.Fatalf("json dump: %v", err)
	}
	if err := ValidateSnapshotJSON(jsonBuf.Bytes()); err != nil {
		t.Errorf("round-trip validation failed: %v\n%s", err, jsonBuf.String())
	}

	var promBuf bytes.Buffer
	if err := Dump(&promBuf, sn, FormatProm); err != nil {
		t.Fatalf("prom dump: %v", err)
	}
	for _, want := range []string{"core_blocks 42", "machine_insts -1", "core_translate_ns_count 1", `spans_total{phase="frontend.decode"} 1`} {
		if !strings.Contains(promBuf.String(), want) {
			t.Errorf("prom output missing %q:\n%s", want, promBuf.String())
		}
	}

	var textBuf bytes.Buffer
	if err := Dump(&textBuf, sn, FormatText); err != nil {
		t.Fatalf("text dump: %v", err)
	}
	if !strings.Contains(textBuf.String(), "core.blocks") {
		t.Errorf("text output missing core.blocks:\n%s", textBuf.String())
	}

	if err := Dump(&bytes.Buffer{}, sn, "xml"); err == nil {
		t.Error("Dump accepted unknown format")
	}
	if ValidFormat("xml") || !ValidFormat("json") {
		t.Error("ValidFormat wrong")
	}
}

func TestValidateSnapshotJSONRejects(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"not json", "nope"},
		{"missing sections", `{"counters":{}}`},
		{"negative counter", `{"counters":{"x":-1},"gauges":{},"histograms":{},"spans":{"total":0,"dropped":0,"by_phase":{}}}`},
		{"bad histogram arity", `{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1,2],"counts":[0,0],"count":0,"sum":0}},"spans":{"total":0,"dropped":0,"by_phase":{}}}`},
		{"phase sum mismatch", `{"counters":{},"gauges":{},"histograms":{},"spans":{"total":5,"dropped":0,"by_phase":{"a":1}}}`},
		{"unknown field", `{"counters":{},"gauges":{},"histograms":{},"spans":{"total":0,"dropped":0,"by_phase":{}},"extra":1}`},
	}
	for _, c := range bad {
		if err := ValidateSnapshotJSON([]byte(c.doc)); err == nil {
			t.Errorf("%s: validation accepted bad document", c.name)
		}
	}
}
