package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the scope over HTTP — the target of risotto's -listen
// flag. Routes:
//
//	/metrics    Prometheus text exposition of the registry
//	/debug/obs  full JSON snapshot plus the retained trace spans
//
// A nil scope serves empty documents rather than erroring, so the
// endpoint can be wired unconditionally.
func Handler(s *Scope) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Snapshot().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Snapshot Snapshot `json:"snapshot"`
			Spans    []Span   `json:"trace_spans"`
		}{Snapshot: s.Snapshot(), Spans: s.Tracer().Spans()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
