package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTracerWraparound fills a small ring past capacity and checks that
// the retained window is exactly the most recent spans, in order, while
// totals and per-phase counts keep the full history.
func TestTracerWraparound(t *testing.T) {
	const capacity = 4
	const appended = 11
	tr := NewTracer(capacity)
	for i := 1; i <= appended; i++ {
		tr.Append(Span{Phase: fmt.Sprintf("p%d", i%2)})
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	// The survivors must be the last `capacity` appends, oldest first.
	for i, s := range spans {
		want := uint64(appended - capacity + 1 + i)
		if s.Seq != want {
			t.Errorf("span[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
	st := tr.Stats()
	if st.Total != appended {
		t.Errorf("total = %d, want %d", st.Total, appended)
	}
	if st.Dropped != appended-capacity {
		t.Errorf("dropped = %d, want %d", st.Dropped, appended-capacity)
	}
	if st.ByPhase["p0"]+st.ByPhase["p1"] != appended {
		t.Errorf("per-phase totals %v do not sum to %d", st.ByPhase, appended)
	}
}

func TestTracerBelowCapacity(t *testing.T) {
	tr := NewTracer(8)
	tr.Append(Span{Phase: "a"})
	tr.Append(Span{Phase: "b"})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Seq != 1 || spans[1].Seq != 2 {
		t.Errorf("unexpected spans %+v", spans)
	}
	if st := tr.Stats(); st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Append(Span{Phase: "frontend.decode", CPU: 1, GuestPC: 0x401000, DurNS: 1200})
	tr.Append(Span{Phase: "backend.emit", CPU: -1})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if s.Seq == 0 || s.Phase == "" {
			t.Errorf("line %d missing seq/phase: %s", lines, sc.Text())
		}
	}
	if lines != 2 {
		t.Errorf("wrote %d lines, want 2", lines)
	}
}

func TestHTTPHandler(t *testing.T) {
	sc := NewScope("")
	sc.Counter("core.blocks").Add(7)
	sc.Event("machine.trap", "svc", 0, 0x400000, 0)
	srv := httptest.NewServer(Handler(sc))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(body.String(), "core_blocks 7") {
		t.Errorf("/metrics missing counter:\n%s", body.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatalf("GET /debug/obs: %v", err)
	}
	var doc struct {
		Snapshot Snapshot `json:"snapshot"`
		Spans    []Span   `json:"trace_spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /debug/obs: %v", err)
	}
	resp.Body.Close()
	if doc.Snapshot.Counters["core.blocks"] != 7 {
		t.Errorf("snapshot counter = %d, want 7", doc.Snapshot.Counters["core.blocks"])
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Phase != "machine.trap" {
		t.Errorf("unexpected spans %+v", doc.Spans)
	}
}
