package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/journal"
)

// Header is the first line of a campaign results file. It pins the
// configuration the records were produced under: a resume against a file
// whose hash differs would silently mix two different test spaces, so
// RunFile refuses it.
type Header struct {
	// Format identifies the file format and version.
	Format string `json:"format"`
	// ConfigHash is Config.Hash() of the producing campaign.
	ConfigHash string `json:"config_hash"`
}

// FormatV1 is the current results format tag.
const FormatV1 = "risotto-campaign/v1"

// ReadResults parses a campaign results stream: the header line followed
// by records. A torn final line (campaign killed mid-write) is dropped;
// any other malformed line is an error.
func ReadResults(r io.Reader) (Header, []Record, error) {
	hdr, recs, _, err := readResults(r)
	return hdr, recs, err
}

// readResults additionally reports the byte length of the valid prefix —
// everything up to and including the last well-formed line. The resume
// path truncates the file there so a torn final line is physically
// removed before new records are appended (appending after a fragment
// with no trailing newline would weld two records into one). The framing
// — flush-per-record writes, torn-tail drop, valid-prefix arithmetic —
// lives in internal/journal; only the header/record semantics are ours.
func readResults(r io.Reader) (Header, []Record, int64, error) {
	var hdr Header
	var recs []Record
	sawHeader := false
	valid, err := journal.Scan(r, func(line []byte) error {
		if !sawHeader {
			if err := json.Unmarshal(line, &hdr); err != nil {
				return fmt.Errorf("campaign: bad header line: %w", err)
			}
			if hdr.Format != FormatV1 {
				return fmt.Errorf("campaign: unknown results format %q", hdr.Format)
			}
			sawHeader = true
			return nil
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("campaign: bad record line: %w", err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return hdr, nil, 0, err
	}
	if !sawHeader {
		return hdr, nil, 0, io.EOF
	}
	return hdr, recs, valid, nil
}

// RunFile runs the campaign with results at path. With resume false the
// file is created (truncating any previous contents) and a fresh header
// written; with resume true the existing file's header is validated
// against cfg's hash, already-recorded test indices are skipped, and new
// records are appended.
func RunFile(cfg Config, path string, resume bool) (Summary, error) {
	var done map[int]bool
	if resume {
		f, err := os.Open(path)
		if err != nil {
			return Summary{}, err
		}
		hdr, recs, valid, err := readResults(f)
		f.Close()
		if err != nil {
			return Summary{}, fmt.Errorf("campaign: reading %s for resume: %w", path, err)
		}
		if hdr.ConfigHash != cfg.Hash() {
			return Summary{}, fmt.Errorf(
				"campaign: %s was produced by config %s, refusing to resume with config %s",
				path, hdr.ConfigHash, cfg.Hash())
		}
		done = make(map[int]bool, len(recs))
		for _, r := range recs {
			done[r.Idx] = true
		}
		out, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return Summary{}, err
		}
		defer out.Close()
		// Drop any torn final line before appending (see readResults).
		if err := out.Truncate(valid); err != nil {
			return Summary{}, err
		}
		if _, err := out.Seek(valid, io.SeekStart); err != nil {
			return Summary{}, err
		}
		return Run(cfg, out, done)
	}

	out, err := os.Create(path)
	if err != nil {
		return Summary{}, err
	}
	defer out.Close()
	if err := journal.NewWriter(out).Encode(Header{Format: FormatV1, ConfigHash: cfg.Hash()}); err != nil {
		return Summary{}, err
	}
	return Run(cfg, out, nil)
}
