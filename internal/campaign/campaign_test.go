package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/litmusgen"
)

// smokeConfig is a small deterministic campaign used by several tests:
// every shape family at both levels, a couple hundred tests total.
func smokeConfig() Config {
	return Config{
		Gen: litmusgen.Config{
			Seed:        1,
			MaxThreads:  2,
			MaxPerShape: 12,
		},
		Workers:      4,
		OpcheckSeeds: 2,
	}
}

// TestCampaignSmoke runs a small seeded campaign end to end and demands
// zero verdict failures: the verified mapping chain and the operational
// machine must agree with the models on every generated test.
func TestCampaignSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	sum, err := RunFile(smokeConfig(), path, false)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tests == 0 {
		t.Fatal("campaign produced no tests")
	}
	if sum.Fail != 0 {
		for _, f := range sum.Failures {
			t.Errorf("FAIL %s (%s): %s", f.Name, f.Level, f.Detail)
		}
		t.Fatalf("%d/%d verdicts failed", sum.Fail, sum.Tests)
	}
	if sum.Pass == 0 {
		t.Fatal("no passing verdicts — every test skipped?")
	}
	t.Logf("tests=%d pass=%d skip=%d checksRun=%d checksSkipped=%d (%.0f tests/s)",
		sum.Tests, sum.Pass, sum.Skip, sum.ChecksRun, sum.ChecksSkipped, sum.TestsPerSec)
}

// recordKey reduces a record to its comparable identity (everything that
// matters for the merged-verdict-set comparison).
func recordKey(r Record) string {
	checks := make([]string, 0, len(r.Checks))
	for k, v := range r.Checks {
		checks = append(checks, k+"="+v)
	}
	sort.Strings(checks)
	return fmt.Sprintf("%d|%s|%s|%s|%v", r.Idx, r.Name, r.FP, r.Verdict, checks)
}

// TestCampaignCrashResume kills a campaign mid-stream via the StopAfter
// hook, resumes from the JSONL file, and asserts the merged verdict set
// is identical to an uninterrupted run — the resume contract.
func TestCampaignCrashResume(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeConfig()

	full := filepath.Join(dir, "full.jsonl")
	sumFull, err := RunFile(cfg, full, false)
	if err != nil {
		t.Fatal(err)
	}

	part := filepath.Join(dir, "part.jsonl")
	cfgStop := cfg
	cfgStop.StopAfter = sumFull.Tests / 3
	sumPart, err := RunFile(cfgStop, part, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sumPart.Stopped || sumPart.Tests >= sumFull.Tests {
		t.Fatalf("StopAfter did not truncate: stopped=%v tests=%d/%d",
			sumPart.Stopped, sumPart.Tests, sumFull.Tests)
	}

	sumRes, err := RunFile(cfg, part, true)
	if err != nil {
		t.Fatal(err)
	}
	if sumRes.Resumed != sumPart.Tests {
		t.Errorf("resume skipped %d tests, want %d already-done", sumRes.Resumed, sumPart.Tests)
	}
	if got, want := sumRes.Tests+sumRes.Resumed, sumFull.Tests; got != want {
		t.Errorf("resumed campaign covered %d tests, want %d", got, want)
	}

	read := func(path string) map[string]bool {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		hdr, recs, err := ReadResults(f)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.ConfigHash != cfg.Hash() {
			t.Fatalf("header hash %s, want %s", hdr.ConfigHash, cfg.Hash())
		}
		set := make(map[string]bool, len(recs))
		for _, r := range recs {
			if set[recordKey(r)] {
				t.Fatalf("duplicate record idx %d in %s", r.Idx, path)
			}
			set[recordKey(r)] = true
		}
		return set
	}
	fullSet, mergedSet := read(full), read(part)
	if len(fullSet) != len(mergedSet) {
		t.Fatalf("merged run has %d records, uninterrupted %d", len(mergedSet), len(fullSet))
	}
	for k := range fullSet {
		if !mergedSet[k] {
			t.Errorf("record missing from merged run: %s", k)
		}
	}
}

// TestCampaignResumeAfterTornLine models the harsher kill: the process
// died mid-write, so the file ends in a torn half record with no trailing
// newline. Resume must drop the fragment (not weld the first appended
// record onto it) and still converge to the uninterrupted record set.
func TestCampaignResumeAfterTornLine(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeConfig()

	full := filepath.Join(dir, "full.jsonl")
	sumFull, err := RunFile(cfg, full, false)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.jsonl")
	// Cut mid-line somewhere past the header: a torn final record.
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFile(cfg, torn, true); err != nil {
		t.Fatal(err)
	}

	read := func(path string) map[string]bool {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		_, recs, err := ReadResults(f)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		set := make(map[string]bool, len(recs))
		for _, r := range recs {
			set[recordKey(r)] = true
		}
		return set
	}
	fullSet, mergedSet := read(full), read(torn)
	if len(mergedSet) != sumFull.Tests || len(mergedSet) != len(fullSet) {
		t.Fatalf("merged run has %d records, uninterrupted %d", len(mergedSet), len(fullSet))
	}
	for k := range fullSet {
		if !mergedSet[k] {
			t.Errorf("record missing from merged run: %s", k)
		}
	}
}

// TestResumeRejectsForeignConfig pins the config-hash gate: resuming a
// results file with a different generation space must error out rather
// than mixing two corpora.
func TestResumeRejectsForeignConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	cfg := smokeConfig()
	cfg.StopAfter = 5
	if _, err := RunFile(cfg, path, false); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Gen.Seed = 99
	other.Gen.MaxPerShape = 7
	if _, err := RunFile(other, path, true); err == nil {
		t.Fatal("resume with a different config succeeded, want refusal")
	}
}

// TestCampaignExploreCheck runs a campaign with the exploration soak
// enabled: the explore check must actually run (not all skip), find zero
// op-ref violations, and change the config hash only when enabled.
func TestCampaignExploreCheck(t *testing.T) {
	cfg := smokeConfig()
	cfg.Gen.MaxPerShape = 4
	cfg.ExploreSeeds = 4
	if cfg.Hash() == smokeConfig().Hash() {
		t.Fatal("enabling the explore soak must change the config hash")
	}
	path := filepath.Join(t.TempDir(), "results.jsonl")
	sum, err := RunFile(cfg, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Fail != 0 {
		for _, f := range sum.Failures {
			t.Errorf("FAIL %s (%s): %s", f.Name, f.Level, f.Detail)
		}
		t.Fatalf("%d/%d verdicts failed under the explore soak", sum.Fail, sum.Tests)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, recs, err := ReadResults(f)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, r := range recs {
		if r.Checks["explore"] == VerdictPass {
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("explore check never ran on any generated test")
	}
}
