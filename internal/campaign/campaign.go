// Package campaign streams generated litmus tests (internal/litmusgen)
// through the repository's two verification pipelines at corpus scale:
// the Theorem-1 behaviour-containment check of the verified x86→TCG→Arm
// mapping chain, and the operational/axiomatic soundness check
// (internal/opcheck). It is the step that turns "the mapping verifies the
// examples" into "the mapping sweeps the space".
//
// The driver is a bounded pipeline: the generator goroutine streams tests
// into a small channel, a worker pool runs the per-test checks (each test
// enumerated serially with a private per-test cache, so campaign
// parallelism comes from tests, not nested enumeration fan-out), and a
// single writer appends one JSONL record per test. Memory stays bounded
// by the channel depths plus the generator's dedup set; the corpus is
// never materialized.
//
// Results are incremental and resumable: the first JSONL line is a header
// carrying a hash of the generating configuration, every later line is
// one verdict record keyed by the test's deterministic index. Resuming
// re-streams the same deterministic sequence, skips indices already on
// disk, and appends the rest — the merged record set is identical to an
// uninterrupted run.
package campaign

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/journal"
	"repro/internal/litmus"
	"repro/internal/litmusgen"
	"repro/internal/mapping"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/opcheck"
)

// Config parameterizes one campaign.
type Config struct {
	// Gen is the generator configuration; its hash gates resume.
	Gen litmusgen.Config
	// Workers bounds campaign parallelism (0 = NumCPU via the caller;
	// package-level default 1 keeps tests deterministic to reason about).
	Workers int
	// OpcheckSeeds is the per-test seed count for the operational
	// soundness check; 0 uses a small default, negative disables the
	// operational check entirely (pure axiomatic campaign).
	OpcheckSeeds int
	// ExploreSeeds, when positive, soaks every test through the
	// operational exploration engine (internal/explore, walk mode, that
	// many seeds) and fails the test on any outcome the op-ref model
	// forbids. 0 disables the check.
	ExploreSeeds int
	// Obs receives campaign counters and spans under its "campaign"
	// child scope; nil disables instrumentation.
	Obs *obs.Scope
	// StopAfter, when positive, stops the campaign after that many
	// records have been written — the crash-injection hook for the
	// resume tests. The stop is clean (the file ends mid-campaign on a
	// complete record), modelling a kill between two writes.
	StopAfter int
}

const defaultOpcheckSeeds = 4

func (cfg Config) opcheckSeeds() int {
	if cfg.OpcheckSeeds == 0 {
		return defaultOpcheckSeeds
	}
	return cfg.OpcheckSeeds
}

func (cfg Config) workers() int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}

// Hash identifies the campaign configuration for resume validation: the
// generator space plus every knob that changes what a verdict means.
func (cfg Config) Hash() string {
	h := fmt.Sprintf("%s/op%d", cfg.Gen.Hash(), cfg.opcheckSeeds())
	if cfg.ExploreSeeds > 0 {
		// Appended only when enabled so pre-existing results files keep
		// their hashes and stay resumable.
		h += fmt.Sprintf("/ex%d", cfg.ExploreSeeds)
	}
	return h
}

// Verdict values of a Record.
const (
	VerdictPass = "pass" // every applicable check passed
	VerdictFail = "fail" // at least one check failed (or errored)
	VerdictSkip = "skip" // no check was applicable to the test
)

// Record is one test's result line.
type Record struct {
	// Idx is the test's deterministic index in the generation order —
	// the resume key.
	Idx int `json:"idx"`
	// Name is the generated program name (shape + decoration digits).
	Name string `json:"name"`
	// FP is the short structural fingerprint hash.
	FP string `json:"fp"`
	// Level is "x86" or "arm".
	Level string `json:"level"`
	// Verdict aggregates the checks: pass, fail or skip.
	Verdict string `json:"verdict"`
	// Checks maps check name → pass/fail/skip.
	Checks map[string]string `json:"checks,omitempty"`
	// Detail explains the first failure, when any.
	Detail string `json:"detail,omitempty"`
}

// Summary aggregates one Run.
type Summary struct {
	// Tests counts records written by this run; Resumed counts generated
	// tests skipped because a prior run already recorded them.
	Tests, Resumed int
	// Pass/Fail/Skip partition Tests by verdict.
	Pass, Fail, Skip int
	// ChecksRun / ChecksSkipped count individual checks.
	ChecksRun, ChecksSkipped int
	// Gen reports the generator's enumeration statistics.
	Gen litmusgen.Stats
	// Elapsed is wall time; TestsPerSec = Tests/Elapsed.
	Elapsed     time.Duration
	TestsPerSec float64
	// Failures holds up to FailureCap failing records for reporting.
	Failures []Record
	// Stopped reports that StopAfter truncated the campaign.
	Stopped bool
}

// FailureCap bounds Summary.Failures.
const FailureCap = 16

// Run streams the configured campaign, appending one JSONL record per
// test to w (the caller has already written or validated the header —
// see RunFile). done lists test indices already recorded by a previous
// run; they are re-generated (the sequence is deterministic) but not
// re-checked or re-written.
func Run(cfg Config, w io.Writer, done map[int]bool) (Summary, error) {
	sc := cfg.Obs.Child("campaign")
	start := time.Now()
	var sum Summary

	workers := cfg.workers()
	tests := make(chan *litmusgen.Test, workers*2)
	records := make(chan Record, workers*2)
	stop := make(chan struct{})
	genDone := make(chan struct{})

	var resumed int
	go func() {
		defer close(genDone)
		defer close(tests)
		sum.Gen = litmusgen.Stream(cfg.Gen, func(t *litmusgen.Test) bool {
			if done[t.Idx] {
				resumed++
				return true
			}
			select {
			case tests <- t:
				return true
			case <-stop:
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tests {
				rec := checkTest(cfg, t, sc)
				select {
				case records <- rec:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(records)
	}()

	enc := journal.NewWriter(w)
	var werr error
	for rec := range records {
		if sum.Stopped {
			continue // drain in-flight records without recording them
		}
		if werr == nil {
			werr = enc.Encode(rec)
		}
		if werr != nil {
			continue // drain; report the first write error after the loop
		}
		sum.Tests++
		switch rec.Verdict {
		case VerdictPass:
			sum.Pass++
		case VerdictFail:
			sum.Fail++
			if len(sum.Failures) < FailureCap {
				sum.Failures = append(sum.Failures, rec)
			}
		default:
			sum.Skip++
		}
		for _, st := range rec.Checks {
			if st == VerdictSkip {
				sum.ChecksSkipped++
			} else {
				sum.ChecksRun++
			}
		}
		sc.Counter("tests").Inc()
		sc.Counter("verdict." + rec.Verdict).Inc()
		if cfg.StopAfter > 0 && sum.Tests >= cfg.StopAfter && !sum.Stopped {
			sum.Stopped = true
			close(stop)
		}
	}
	if !sum.Stopped {
		close(stop)
	}
	<-genDone
	sum.Resumed = resumed

	sum.Elapsed = time.Since(start)
	if s := sum.Elapsed.Seconds(); s > 0 {
		sum.TestsPerSec = float64(sum.Tests) / s
	}
	sc.Gauge("tests_per_sec").Set(int64(sum.TestsPerSec))
	sc.Counter("resumed").Add(uint64(resumed))
	if werr != nil {
		return sum, fmt.Errorf("campaign: writing results: %w", werr)
	}
	return sum, nil
}

// Check runs the full per-test verdict pipeline for one generated test
// outside a streaming Run — the unit the campaign benchmarks time.
func Check(cfg Config, t *litmusgen.Test) Record {
	return checkTest(cfg, t, cfg.Obs.Child("campaign"))
}

// checkTest runs every applicable check for one generated test and folds
// the results into a Record. Enumerations run serially (WithWorkers(1))
// with a private cache: campaign parallelism comes from the test stream,
// and the cache still shares the source enumeration between the TCG leg,
// the Arm leg and the opcheck admitted-set of the same test, then gets
// dropped with the test — bounded memory regardless of corpus size.
func checkTest(cfg Config, t *litmusgen.Test, sc *obs.Scope) Record {
	start := sc.Begin()
	rec := Record{
		Idx:    t.Idx,
		Name:   t.Prog.Name,
		FP:     t.FPHash(),
		Level:  t.Level.String(),
		Checks: make(map[string]string),
	}
	fail := func(name, detail string) {
		rec.Checks[name] = VerdictFail
		rec.Verdict = VerdictFail
		if rec.Detail == "" {
			rec.Detail = name + ": " + detail
		}
	}
	verify := func(name string, v mapping.Verification) {
		switch {
		case v.Err != nil:
			fail(name, v.Err.Error())
		case !v.Correct():
			fail(name, fmt.Sprintf("%d new behaviours, e.g. %q",
				len(v.NewBehaviours), v.NewBehaviours[0]))
		default:
			rec.Checks[name] = VerdictPass
		}
	}
	soundness := func(name string, p *litmus.Program, m memmodel.Model, opts []litmus.Option) {
		if cfg.OpcheckSeeds < 0 {
			rec.Checks[name] = VerdictSkip
			return
		}
		bad, err := opcheck.CheckSound(p, m, cfg.opcheckSeeds(), opts...)
		switch {
		case errors.Is(err, opcheck.ErrUnsupported):
			rec.Checks[name] = VerdictSkip
		case err != nil:
			fail(name, err.Error())
		case len(bad) > 0:
			fail(name, fmt.Sprintf("%d unsound outcomes, e.g. %q", len(bad), bad[0]))
		default:
			rec.Checks[name] = VerdictPass
		}
	}

	explored := func(name string, p *litmus.Program) {
		if cfg.ExploreSeeds <= 0 {
			return
		}
		res, err := explore.Run(p, explore.Config{Mode: explore.ModeWalk, Seeds: cfg.ExploreSeeds, Obs: sc})
		switch {
		case errors.Is(err, opcheck.ErrUnsupported):
			rec.Checks[name] = VerdictSkip
		case err != nil:
			fail(name, err.Error())
		case len(res.Violations) > 0:
			fail(name, res.Violations[0].Reason)
		default:
			// Budget-cut walks are a partial verdict, not a failure:
			// the soak asserts soundness, coverage is reported aside.
			rec.Checks[name] = VerdictPass
		}
	}

	cache := litmus.NewCache()
	opts := []litmus.Option{litmus.WithWorkers(1), litmus.WithCache(cache)}
	armM := models.ByLevel(memmodel.LevelArm)

	switch t.Level {
	case litmusgen.LevelX86:
		// Theorem 1 over the verified chain, both legs; RMW tests check
		// both Arm RMW lowering styles (casal and fenced exclusives).
		tcgP, armP := mapping.TranslateVerified(t.Prog, mapping.RMWCasal)
		x86M := models.ByLevel(memmodel.LevelX86)
		verify("t1-tcg", mapping.VerifyTheorem1(t.Prog, x86M, tcgP, models.ByLevel(memmodel.LevelTCG), opts...))
		verify("t1-arm", mapping.VerifyTheorem1(t.Prog, x86M, armP, armM, opts...))
		if t.HasRMW {
			_, armX := mapping.TranslateVerified(t.Prog, mapping.RMWExclusiveFenced)
			verify("t1-arm-lxsx", mapping.VerifyTheorem1(t.Prog, x86M, armX, armM, opts...))
		}
		soundness("opcheck", armP, armM, opts)
		explored("explore", armP)
	case litmusgen.LevelArm:
		// Arm-level tests exercise the axiomatic model directly plus the
		// operational soundness correspondence.
		out, err := litmus.Enumerate(t.Prog, armM, opts...)
		switch {
		case err != nil:
			fail("enumerate", err.Error())
		case len(out) == 0:
			fail("enumerate", "empty outcome set")
		default:
			rec.Checks["enumerate"] = VerdictPass
		}
		soundness("opcheck", t.Prog, armM, opts)
		explored("explore", t.Prog)
	}

	if rec.Verdict == "" {
		rec.Verdict = VerdictPass
		allSkipped := true
		for _, st := range rec.Checks {
			if st != VerdictSkip {
				allSkipped = false
				break
			}
		}
		if allSkipped {
			rec.Verdict = VerdictSkip
		}
	}
	dur := sc.Span("campaign.test", t.Prog.Name, -1, 0, 0, start)
	sc.Histogram("test_ns", obs.DurationBuckets).Observe(uint64(dur))
	return rec
}
