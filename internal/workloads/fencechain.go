package workloads

import "repro/internal/portasm"

// FenceChain: a copy loop whose body is deliberately split into three
// basic blocks by unconditional jumps. Under the verified scheme the load
// ends its block as `ld;Frm` and the store opens the next as `Fww;st`, so
// the Frm/Fww pair is never adjacent inside a single-block translation
// unit — the seam is a block boundary. Any fence merge this kernel reports
// is therefore a *cross-block* merge inside a tier-up superblock, which
// makes it the diagnostic workload for tcg.fence_merges_cross_block.
func FenceChain(threads, scale int) (*portasm.Builder, error) {
	n := 4096 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	src := b.Data(wordsOf(11, n, 1000))
	dst := b.Zeros(8 * n)
	total := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(src)).
		MovI(r4, int64(dst)).
		// Load block: ends with the guest load (ld;Frm) and an
		// unconditional jump — the Frm is the last fence of the block.
		Label("fcload").
		LdIdx(r5, r3, r1, 8, 8).
		Jmp("fcstore").
		// Store block: opens with the guest store (Fww;st) — merging its
		// Fww with the previous block's Frm requires stitching the two
		// blocks into one superblock.
		Label("fcstore").
		StIdx(r4, r1, 8, r5, 8).
		Jmp("fcnext").
		// Loop control in a third block so the hot trace covers three
		// guest blocks with the back-edge as the only revisit.
		Label("fcnext").
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "fcload").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, dst, n, total)
		exitChecksum(b, total)()
	})
	return b, nil
}
