package workloads

import (
	"encoding/binary"

	"repro/internal/portasm"
)

// Phoenix kernels (Ranger et al. [72]): MapReduce-style data-parallel
// scans. Each reproduces the original's memory-access character: byte
// scans with table updates (histogram, wordcount), two-stream reductions
// (linear_regression, pca), distance kernels (kmeans), blocked compute
// (matrix_multiply), and pattern scans (string_match).

// Histogram: one pass over a byte image, bumping one of 256 per-thread
// buckets per byte — one byte load + one read-modify-write per element.
func Histogram(threads, scale int) (*portasm.Builder, error) {
	n := 32768 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	input := b.Data(bytesOf(1, n))
	hists := b.Zeros(8 * 256 * threads)
	total := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(input)).
		Mov(r4, r0).
		MulI(r4, 256*8).
		AddI(r4, int64(hists)). // r4 = this thread's histogram
		Label("hloop").
		LdIdx(r5, r3, r1, 1, 1). // byte
		LdIdx(r6, r4, r5, 8, 8). // bucket value
		AddI(r6, 1).
		StIdx(r4, r5, 8, r6, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "hloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, hists, 256*threads, total)
		exitChecksum(b, total)()
	})
	return b, nil
}

// LinearRegression: one pass over (x, y) pairs accumulating Σx, Σy, Σxy,
// Σxx in registers — two loads per point, stores only at the end.
func LinearRegression(threads, scale int) (*portasm.Builder, error) {
	n := 16384 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	xs := b.Data(wordsOf(2, n, 1000))
	ys := b.Data(wordsOf(3, n, 1000))
	partials := b.Zeros(8 * 4 * threads)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(xs)).
		MovI(r4, int64(ys)).
		MovI(r5, 0). // Σx
		MovI(r6, 0). // Σxy
		Label("lrloop").
		LdIdx(r7, r3, r1, 8, 8).
		LdIdx(r8, r4, r1, 8, 8).
		AddR(r5, r7).
		MulR(r7, r8).
		AddR(r6, r7).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "lrloop").
		// Store partials[tid] = Σx and Σxy.
		Mov(r9, r0).
		MulI(r9, 4*8).
		AddI(r9, int64(partials)).
		St(r9, 0, r5, 8).
		St(r9, 8, r6, 8).
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		b.MovI(r4, int64(partials)).
			MovI(r5, 0).
			MovI(r6, 0).
			Label("lrmerge").
			LdIdx(r7, r4, r5, 8, 8).
			AddR(r6, r7).
			AddI(r5, 1).
			CmpI(r5, int64(4*threads)).
			J(portasm.NE, "lrmerge").
			MovI(r7, int64(result)).
			St(r7, 0, r6, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Kmeans: assignment passes against K=4 fixed centroids — per point, one
// load plus an unrolled distance comparison chain.
func Kmeans(threads, scale int) (*portasm.Builder, error) {
	n := 8192 * scale
	n -= n % threads
	const rounds = 3
	centroids := [4]int64{100, 350, 600, 900}
	b := portasm.NewBuilder()
	points := b.Data(wordsOf(4, n, 1024))
	assign := b.Zeros(8 * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	b.MovI(r9, 0). // round
			Label("kround")
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(points)).
		Label("kloop").
		LdIdx(r4, r3, r1, 8, 8). // point
		MovI(r5, 0x7FFFFFFF).    // best distance
		MovI(r6, 0)              // best k
	for k, c := range centroids {
		skip := "kskip" + string(rune('0'+k))
		b.Mov(r7, r4).
			SubI(r7, c).
			MulR(r7, r7).
			Cmp(r7, r5).
			J(portasm.HS, skip).
			Mov(r5, r7).
			MovI(r6, int64(k)).
			Label(skip)
	}
	b.MovI(r7, int64(assign)).
		StIdx(r7, r1, 8, r6, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "kloop").
		AddI(r9, 1).
		CmpI(r9, rounds).
		J(portasm.NE, "kround").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, assign, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// MatrixMultiply: C = A·B over n×n word matrices, rows split across
// threads — the classic three-deep loop with two loads per inner step.
func MatrixMultiply(threads, scale int) (*portasm.Builder, error) {
	n := 24 * scale
	n -= n % threads
	if n == 0 {
		n = threads
	}
	b := portasm.NewBuilder()
	matA := b.Data(wordsOf(5, n*n, 64))
	matB := b.Data(wordsOf(6, n*n, 64))
	matC := b.Zeros(8 * n * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r7, n, threads) // r1 = i, r7 = end row
	b.Label("mmi").
		MovI(r2, 0). // j
		Label("mmj").
		MovI(r3, 0). // acc
		MovI(r9, 0). // k
		Label("mmk").
		// a = A[i*n+k]
		Mov(r4, r1).
		MulI(r4, int64(n)).
		AddR(r4, r9).
		MovI(r5, int64(matA)).
		LdIdx(r6, r5, r4, 8, 8).
		// b = B[k*n+j]
		Mov(r4, r9).
		MulI(r4, int64(n)).
		AddR(r4, r2).
		MovI(r5, int64(matB)).
		LdIdx(r5, r5, r4, 8, 8).
		MulR(r6, r5).
		AddR(r3, r6).
		AddI(r9, 1).
		CmpI(r9, int64(n)).
		J(portasm.NE, "mmk").
		// C[i*n+j] = acc
		Mov(r4, r1).
		MulI(r4, int64(n)).
		AddR(r4, r2).
		MovI(r5, int64(matC)).
		StIdx(r5, r4, 8, r3, 8).
		AddI(r2, 1).
		CmpI(r2, int64(n)).
		J(portasm.NE, "mmj").
		AddI(r1, 1).
		Cmp(r1, r7).
		J(portasm.NE, "mmi").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, matC, n*n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// PCA: per-column means then adjacent-column dot products over a
// column-major matrix — long streaming reads.
func PCA(threads, scale int) (*portasm.Builder, error) {
	rows := 2048 * scale
	cols := 8
	if cols%threads != 0 && threads <= cols {
		cols = threads * (cols/threads + 1)
	}
	if threads > cols {
		cols = threads
	}
	b := portasm.NewBuilder()
	mat := b.Data(wordsOf(7, rows*cols, 256))
	means := b.Zeros(8 * cols)
	centered := b.Zeros(8 * rows * cols)
	dots := b.Zeros(8 * cols)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, cols, threads) // columns [r1, r2)
	b.Label("pcol").
		// mean pass: sum column r1, writing the half-scaled value into
		// the centered plane (PCA's mean-subtraction output).
		Mov(r3, r1).
		MulI(r3, int64(rows*8)).
		AddI(r3, int64(mat)). // col base
		Mov(r8, r1).
		MulI(r8, int64(rows*8)).
		AddI(r8, int64(centered)). // centered col base
		MovI(r4, 0).               // row
		MovI(r5, 0).               // sum
		Label("pmean").
		LdIdx(r6, r3, r4, 8, 8).
		AddR(r5, r6).
		Mov(r9, r6).
		ShrI(r9, 1).
		StIdx(r8, r4, 8, r9, 8).
		AddI(r4, 1).
		CmpI(r4, int64(rows)).
		J(portasm.NE, "pmean").
		MovI(r6, int64(means)).
		StIdx(r6, r1, 8, r5, 8).
		// dot pass: col r1 · col (r1+1 mod cols)
		Mov(r7, r1).
		AddI(r7, 1).
		AluI(portasm.URem, r7, int64(cols)).
		MulI(r7, int64(rows*8)).
		AddI(r7, int64(mat)). // other col base
		MovI(r4, 0).
		MovI(r5, 0).
		Label("pdot").
		LdIdx(r6, r3, r4, 8, 8).
		LdIdx(r8, r7, r4, 8, 8).
		MulR(r6, r8).
		AddR(r5, r6).
		AddI(r4, 1).
		CmpI(r4, int64(rows)).
		J(portasm.NE, "pdot").
		MovI(r6, int64(dots)).
		StIdx(r6, r1, 8, r5, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "pcol").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		b.MovI(r4, int64(dots)).
			MovI(r5, 0).
			MovI(r6, 0).
			Label("psum").
			LdIdx(r7, r4, r5, 8, 8).
			AddR(r6, r7).
			AddI(r5, 1).
			CmpI(r5, int64(cols)).
			J(portasm.NE, "psum").
			MovI(r7, int64(result)).
			St(r7, 0, r6, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}

// StringMatch: scan text for a 4-byte pattern at every byte offset —
// one unaligned 4-byte load and compare per position.
func StringMatch(threads, scale int) (*portasm.Builder, error) {
	n := 32768 * scale
	n -= n % threads
	text := bytesOf(8, n+8)
	// Plant deterministic occurrences of "RISO".
	pat := []byte("RISO")
	for i := 100; i+4 < n; i += 977 {
		copy(text[i:], pat)
	}
	patWord := int64(binary.LittleEndian.Uint32(pat))

	b := portasm.NewBuilder()
	input := b.Data(text)
	counts := b.Zeros(8 * threads)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(input)).
		MovI(r4, 0). // matches
		Label("sloop").
		LdIdx(r5, r3, r1, 1, 4).
		CmpI(r5, patWord).
		J(portasm.NE, "snom").
		AddI(r4, 1).
		Label("snom").
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "sloop").
		MovI(r5, int64(counts)).
		StIdx(r5, r0, 8, r4, 8).
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		b.MovI(r4, int64(counts)).
			MovI(r5, 0).
			MovI(r6, 0).
			Label("smerge").
			LdIdx(r7, r4, r5, 8, 8).
			AddR(r6, r7).
			AddI(r5, 1).
			CmpI(r5, int64(threads)).
			J(portasm.NE, "smerge").
			MovI(r7, int64(result)).
			St(r7, 0, r6, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}

// WordCount: byte scan counting word starts (non-space after space) and
// hashing word-start bytes into a small per-thread table.
func WordCount(threads, scale int) (*portasm.Builder, error) {
	n := 32768 * scale
	n -= n % threads
	text := bytesOf(9, n)
	for i := 0; i < n; i += 7 {
		text[i] = ' '
	}
	b := portasm.NewBuilder()
	input := b.Data(text)
	tables := b.Zeros(8 * 64 * threads)
	counts := b.Zeros(8 * threads)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(input)).
		MovI(r4, 0). // word count
		MovI(r5, 1). // prev-is-space
		Mov(r8, r0).
		MulI(r8, 64*8).
		AddI(r8, int64(tables)). // per-thread table
		Label("wloop").
		LdIdx(r6, r3, r1, 1, 1).
		CmpI(r6, ' ').
		J(portasm.NE, "wnonspace").
		MovI(r5, 1).
		Jmp("wnext").
		Label("wnonspace").
		CmpI(r5, 1).
		J(portasm.NE, "wnext").
		// word start: count it and bump its hash bucket
		AddI(r4, 1).
		MovI(r5, 0).
		AluI(portasm.And, r6, 63).
		LdIdx(r7, r8, r6, 8, 8).
		AddI(r7, 1).
		StIdx(r8, r6, 8, r7, 8).
		Label("wnext").
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "wloop").
		MovI(r6, int64(counts)).
		StIdx(r6, r0, 8, r4, 8).
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		b.MovI(r4, int64(counts)).
			MovI(r5, 0).
			MovI(r6, 0).
			Label("wmerge").
			LdIdx(r7, r4, r5, 8, 8).
			AddR(r6, r7).
			AddI(r5, 1).
			CmpI(r5, int64(threads)).
			J(portasm.NE, "wmerge").
			MovI(r7, int64(result)).
			St(r7, 0, r6, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}
