// Package workloads builds the benchmark guest programs of the Risotto
// paper's evaluation (§7): PARSEC- and Phoenix-style multithreaded kernels
// (Figure 12), OpenSSL/sqlite/libm library workloads exercising the dynamic
// host linker (Figures 13–14), and the CAS contention microbenchmark
// (Figure 15). Every kernel is written once in the portable DSL
// (internal/portasm) and emitted both as a guest image for the DBT and as
// a native host image.
//
// Kernels reproduce each benchmark's characteristic memory/compute mix
// rather than its full algorithm (DESIGN.md documents the substitution);
// inputs are deterministic, and each kernel self-checks by exiting with a
// checksum that must agree across all DBT variants and native execution.
package workloads

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/portasm"
)

// Kernel is one Figure-12 benchmark.
type Kernel struct {
	// Name matches the paper's x-axis label.
	Name string
	// Suite is "parsec" or "phoenix".
	Suite string
	// Build constructs the program for the given thread count and scale
	// (scale 1 = default problem size; larger = proportionally more work).
	Build func(threads, scale int) (*portasm.Builder, error)
}

// Registry returns all Figure-12 kernels in the paper's order.
func Registry() []Kernel {
	return []Kernel{
		{"blackscholes", "parsec", Blackscholes},
		{"bodytrack", "parsec", Bodytrack},
		{"canneal", "parsec", Canneal},
		{"facesim", "parsec", Facesim},
		{"fluidanimate", "parsec", Fluidanimate},
		{"freqmine", "parsec", Freqmine},
		{"streamcluster", "parsec", Streamcluster},
		{"swaptions", "parsec", Swaptions},
		{"vips", "parsec", Vips},
		{"histogram", "phoenix", Histogram},
		{"kmeans", "phoenix", Kmeans},
		{"linearregression", "phoenix", LinearRegression},
		{"matrixmultiply", "phoenix", MatrixMultiply},
		{"pca", "phoenix", PCA},
		{"stringmatch", "phoenix", StringMatch},
		{"wordcount", "phoenix", WordCount},
		{"fencechain", "micro", FenceChain},
	}
}

// KernelByName finds a kernel.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Registry() {
		if k.Name == name {
			return k, nil
		}
	}
	var names []string
	for _, k := range Registry() {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	return Kernel{}, fmt.Errorf("workloads: unknown kernel %q (have %v)", name, names)
}

// Virtual register aliases for readability inside kernels.
const (
	r0 portasm.Reg = iota
	r1
	r2
	r3
	r4
	r5
	r6
	r7
	r8
	r9
)

// forkJoin emits a main that spawns `threads` workers running the label
// "worker" with tid as argument, joins them all, runs emitAfter (which
// must end with Exit), and defines nothing else. Uses r0–r3 in main.
func forkJoin(b *portasm.Builder, threads int, emitAfter func()) {
	ids := b.Zeros(8 * threads)
	b.Label("main").
		MovI(r0, 0).
		MovI(r1, int64(ids)).
		Label("__spawn").
		Spawn(r2, "worker", r0).
		StIdx(r1, r0, 8, r2, 8).
		AddI(r0, 1).
		CmpI(r0, int64(threads)).
		J(portasm.NE, "__spawn").
		MovI(r0, 0).
		Label("__join").
		LdIdx(r2, r1, r0, 8, 8).
		Join(r3, r2).
		AddI(r0, 1).
		CmpI(r0, int64(threads)).
		J(portasm.NE, "__join")
	emitAfter()
}

// exitZero ends the main thread with code 0.
func exitZero(b *portasm.Builder) func() {
	return func() {
		b.MovI(r0, 0).Exit(r0)
	}
}

// exitChecksum ends main with the 8-byte value at addr (mod 2^32 to keep
// exit codes readable).
func exitChecksum(b *portasm.Builder, addr uint64) func() {
	return func() {
		b.MovI(r0, int64(addr)).
			Ld(r1, r0, 0, 8).
			MovI(r2, 0xFFFFFFFF).
			Alu(portasm.And, r1, r2).
			Exit(r1)
	}
}

// chunk returns [start, end) for worker tid of `threads` over n items,
// assuming threads divides n.
func chunkBounds(b *portasm.Builder, tidReg, startReg, endReg portasm.Reg, n, threads int) {
	per := n / threads
	b.Mov(startReg, tidReg).
		MulI(startReg, int64(per)).
		Mov(endReg, startReg).
		AddI(endReg, int64(per))
}

func errPow2(kernel string, threads int) error {
	return fmt.Errorf("workloads: %s requires a power-of-two thread count, got %d", kernel, threads)
}

// bytesOf builds deterministic pseudo-random bytes.
func bytesOf(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// wordsOf builds deterministic pseudo-random 64-bit words, bounded.
func wordsOf(seed int64, n int, bound int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*8)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(rng.Int63n(bound)))
	}
	return out
}
