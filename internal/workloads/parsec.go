package workloads

import (
	"repro/internal/portasm"
)

// PARSEC kernels (Bienia [19]), reproduced at the level of their
// memory/compute mix: option pricing (blackscholes, swaptions — fixed-point
// arithmetic chains), stencils (fluidanimate, bodytrack, facesim — heavy
// neighbouring loads/stores), annealing-style scattered updates (canneal),
// counting over transactions (freqmine — the paper's most fence-bound
// benchmark), distance reductions (streamcluster), and pixel pipelines
// (vips).

// Blackscholes: per option, load spot/strike/vol, run a fixed-point
// pricing chain (Q16.16), store the price — compute-dominated.
func Blackscholes(threads, scale int) (*portasm.Builder, error) {
	n := 4096 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	spots := b.Data(wordsOf(10, n, 1<<20))
	strikes := b.Data(wordsOf(11, n, 1<<20))
	prices := b.Zeros(8 * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(spots)).
		MovI(r4, int64(strikes)).
		Label("bsloop").
		LdIdx(r5, r3, r1, 8, 8). // S
		LdIdx(r6, r4, r1, 8, 8). // K
		// d = (S - K); price ≈ S·σ-chain in Q16.16: several mul/shr
		// rounds standing in for CNDF evaluation.
		Mov(r7, r5).
		SubR(r7, r6).
		Mov(r8, r7).
		MulR(r8, r7).
		ShrI(r8, 16).
		AddR(r8, r5).
		MulR(r8, r7).
		ShrI(r8, 16).
		AddR(r8, r6).
		Mov(r9, r8).
		MulR(r9, r8).
		ShrI(r9, 16).
		AddR(r8, r9).
		MovI(r9, int64(prices)).
		StIdx(r9, r1, 8, r8, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "bsloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, prices, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Bodytrack: 1-D edge filter over an image — per pixel, three neighbour
// loads, a weighted sum, one store.
func Bodytrack(threads, scale int) (*portasm.Builder, error) {
	n := 16384 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	img := b.Data(wordsOf(12, n+2, 256))
	out := b.Zeros(8 * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(img)).
		MovI(r4, int64(out)).
		Label("btloop").
		LdIdx(r5, r3, r1, 8, 8). // left
		Mov(r9, r1).
		AddI(r9, 1).
		LdIdx(r6, r3, r9, 8, 8). // centre
		AddI(r9, 1).
		LdIdx(r7, r3, r9, 8, 8). // right
		MulI(r6, 2).
		AddR(r5, r6).
		AddR(r5, r7).
		ShrI(r5, 2).
		StIdx(r4, r1, 8, r5, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "btloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, out, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Canneal: annealing-style scattered reads/writes driven by an LCG —
// random two-element loads, a cost compare, conditional swap stores. Each
// thread anneals its own partition (as canneal's netlist sharding does),
// keeping the result deterministic across variants.
func Canneal(threads, scale int) (*portasm.Builder, error) {
	if threads&(threads-1) != 0 {
		return nil, errPow2("canneal", threads)
	}
	n := 4096 // element count (power of two for cheap masking)
	per := n / threads
	iters := 8192 * scale
	iters -= iters % threads
	b := portasm.NewBuilder()
	elems := b.Data(wordsOf(13, n, 1<<30))
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	b.Mov(r1, r0).
		MulI(r1, 2654435761).
		AddI(r1, 12345). // per-thread LCG state
		MovI(r2, 0).     // iteration
		Mov(r3, r0).
		MulI(r3, int64(per*8)).
		AddI(r3, int64(elems)) // partition base
	b.Label("cnloop").
		// idx1, idx2 = lcg() & (per-1) within this thread's partition
		MulI(r1, 6364136223846793005).
		AddI(r1, 1442695040888963407).
		Mov(r4, r1).
		ShrI(r4, 33).
		AndI(r4, int64(per-1)).
		MulI(r1, 6364136223846793005).
		AddI(r1, 1442695040888963407).
		Mov(r5, r1).
		ShrI(r5, 33).
		AndI(r5, int64(per-1)).
		LdIdx(r6, r3, r4, 8, 8).
		LdIdx(r7, r3, r5, 8, 8).
		Cmp(r6, r7).
		J(portasm.LS, "cnnoswap").
		// swap to lower "cost"
		StIdx(r3, r4, 8, r7, 8).
		StIdx(r3, r5, 8, r6, 8).
		Label("cnnoswap").
		AddI(r2, 1).
		CmpI(r2, int64(iters/threads)).
		J(portasm.NE, "cnloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, elems, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Facesim: element-wise physics update — three loads, multiply-add chain,
// two stores per element.
func Facesim(threads, scale int) (*portasm.Builder, error) {
	n := 8192 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	pos := b.Data(wordsOf(14, n, 1<<16))
	vel := b.Data(wordsOf(15, n, 1<<8))
	force := b.Data(wordsOf(16, n, 1<<8))
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(pos)).
		MovI(r4, int64(vel)).
		MovI(r5, int64(force)).
		Label("fsloop").
		LdIdx(r6, r3, r1, 8, 8).
		LdIdx(r7, r4, r1, 8, 8).
		LdIdx(r8, r5, r1, 8, 8).
		// vel += force>>4 ; pos += vel>>4
		ShrI(r8, 4).
		AddR(r7, r8).
		StIdx(r4, r1, 8, r7, 8).
		ShrI(r7, 4).
		AddR(r6, r7).
		StIdx(r3, r1, 8, r6, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "fsloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, pos, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Fluidanimate: iterated 3-point stencil over cells, ping-ponging between
// two planes so every sweep reads a plane no thread is writing — per cell,
// three loads, an average, one store.
func Fluidanimate(threads, scale int) (*portasm.Builder, error) {
	n := 8192 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	planeA := b.Data(wordsOf(17, n+2, 1<<12))
	planeB := b.Zeros(8 * (n + 2))
	result := b.Zeros(8)

	sweep := func(tag string, from, to uint64) {
		// Each thread stencils strictly inside its own chunk (reads
		// [i, i+2] with i ≤ end-3), so sweeps need no inter-thread
		// barrier and results are deterministic.
		chunkBounds(b, r0, r1, r2, n, threads)
		b.SubI(r2, 2)
		b.MovI(r3, int64(from)).
			MovI(r7, int64(to)).
			Label("fl"+tag).
			LdIdx(r4, r3, r1, 8, 8).
			Mov(r8, r1).
			AddI(r8, 1).
			LdIdx(r5, r3, r8, 8, 8).
			AddI(r8, 1).
			LdIdx(r6, r3, r8, 8, 8).
			MulI(r5, 2).
			AddR(r4, r5).
			AddR(r4, r6).
			ShrI(r4, 2).
			Mov(r8, r1).
			AddI(r8, 1).
			StIdx(r7, r8, 8, r4, 8).
			AddI(r1, 1).
			Cmp(r1, r2).
			J(portasm.NE, "fl"+tag)
	}

	b.Label("worker").
		Arg(r0)
	sweep("s1", planeA, planeB)
	sweep("s2", planeB, planeA)
	sweep("s3", planeA, planeB)
	sweep("s4", planeB, planeA)
	b.MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, planeA, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Freqmine: itemset counting — per transaction item, a load and a count
// table read-modify-write, almost nothing else. The paper measures this
// as its most fence-bound benchmark (fences ≈ 75% of runtime).
func Freqmine(threads, scale int) (*portasm.Builder, error) {
	n := 32768 * scale
	n -= n % threads
	const items = 512
	b := portasm.NewBuilder()
	txs := b.Data(wordsOf(18, n, items))
	countsBase := b.Zeros(8 * items * threads)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(txs)).
		Mov(r4, r0).
		MulI(r4, items*8).
		AddI(r4, int64(countsBase)).
		Label("fmloop").
		LdIdx(r5, r3, r1, 8, 8).
		LdIdx(r6, r4, r5, 8, 8).
		AddI(r6, 1).
		StIdx(r4, r5, 8, r6, 8).
		// second-order pair count: bucket (item*31+next)&511
		Mov(r7, r5).
		MulI(r7, 31).
		AddI(r7, 7).
		AndI(r7, items-1).
		LdIdx(r6, r4, r7, 8, 8).
		AddI(r6, 1).
		StIdx(r4, r7, 8, r6, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "fmloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, countsBase, items*threads, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Streamcluster: per point, distances to M medians (M loads plus ALU),
// keep the min, accumulate — load-heavy reduction.
func Streamcluster(threads, scale int) (*portasm.Builder, error) {
	n := 8192 * scale
	n -= n % threads
	const medians = 8
	b := portasm.NewBuilder()
	points := b.Data(wordsOf(19, n, 1<<16))
	meds := b.Data(wordsOf(20, medians, 1<<16))
	dists := b.Zeros(8 * n) // per-point distance to nearest median
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(points)).
		MovI(r4, int64(meds)).
		Label("scloop").
		LdIdx(r6, r3, r1, 8, 8). // point
		MovI(r7, 0).             // m
		MovI(r8, 0x7FFFFFFFFF)   // min
	b.Label("scmed").
		LdIdx(r9, r4, r7, 8, 8).
		SubR(r9, r6).
		MulR(r9, r9).
		Cmp(r9, r8).
		J(portasm.HS, "scnomin").
		Mov(r8, r9).
		Label("scnomin").
		AddI(r7, 1).
		CmpI(r7, medians).
		J(portasm.NE, "scmed").
		MovI(r5, int64(dists)).
		StIdx(r5, r1, 8, r8, 8). // record assignment cost
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "scloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, dists, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Swaptions: Monte-Carlo path simulation per swaption — an LCG-driven
// fixed-point random walk, compute-dominated with rare stores.
func Swaptions(threads, scale int) (*portasm.Builder, error) {
	n := 64 * scale
	n -= n % threads
	if n == 0 {
		n = threads
	}
	const paths = 256
	b := portasm.NewBuilder()
	out := b.Zeros(8 * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.Label("swo").
		Mov(r3, r1).
		MulI(r3, 2654435761).
		AddI(r3, 99991). // rng
		MovI(r4, 0).     // path
		MovI(r5, 0)      // value acc
	b.Label("swp").
		MulI(r3, 6364136223846793005).
		AddI(r3, 1442695040888963407).
		Mov(r6, r3).
		ShrI(r6, 40). // 24-bit step
		Mov(r7, r6).
		MulR(r7, r6).
		ShrI(r7, 24).
		AddR(r5, r7).
		AddI(r4, 1).
		CmpI(r4, paths).
		J(portasm.NE, "swp").
		MovI(r6, int64(out)).
		StIdx(r6, r1, 8, r5, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "swo").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, out, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Vips: pixel pipeline — load, scale, clamp, store, with a second output
// plane — balanced loads/stores.
func Vips(threads, scale int) (*portasm.Builder, error) {
	n := 16384 * scale
	n -= n % threads
	b := portasm.NewBuilder()
	src := b.Data(wordsOf(21, n, 1<<10))
	dst1 := b.Zeros(8 * n)
	dst2 := b.Zeros(8 * n)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0)
	chunkBounds(b, r0, r1, r2, n, threads)
	b.MovI(r3, int64(src)).
		MovI(r4, int64(dst1)).
		MovI(r5, int64(dst2)).
		Label("vloop").
		LdIdx(r6, r3, r1, 8, 8).
		Mov(r7, r6).
		MulI(r7, 179).
		ShrI(r7, 7).
		CmpI(r7, 1023).
		J(portasm.LS, "vok").
		MovI(r7, 1023).
		Label("vok").
		StIdx(r4, r1, 8, r7, 8).
		XorR(r7, r6).
		StIdx(r5, r1, 8, r7, 8).
		AddI(r1, 1).
		Cmp(r1, r2).
		J(portasm.NE, "vloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		sumArray(b, dst2, n, result)
		exitChecksum(b, result)()
	})
	return b, nil
}

// sumArray emits a main-thread checksum of the words at base into the
// result cell (clobbers r4–r7). It samples every 8th element so the
// single-threaded verification phase stays negligible next to the
// parallel phase being measured.
func sumArray(b *portasm.Builder, base uint64, count int, result uint64) {
	stride := 8
	if count < 64 {
		stride = 1
	}
	limit := count - count%stride
	if limit == 0 {
		limit = count
		stride = 1
	}
	b.MovI(r4, int64(base)).
		MovI(r5, 0).
		MovI(r6, 0).
		Label("__sum").
		LdIdx(r7, r4, r5, 8, 8).
		AddR(r6, r7).
		AddI(r5, int64(stride)).
		CmpI(r5, int64(limit)).
		J(portasm.NE, "__sum").
		MovI(r7, int64(result)).
		St(r7, 0, r6, 8)
}
