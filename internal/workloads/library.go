package workloads

import (
	"fmt"

	"repro/internal/portasm"
)

// Library workloads (Figures 13–14): guest programs that call shared-
// library functions through the PLT. Under plain QEMU the guest fallback
// implementation (also built here, in guest code) is translated and
// executed; under Risotto with an IDL the dynamic host linker dispatches
// to internal/hostlib instead.
//
// Guest digest implementations use simplified compression functions with
// the originals' round structure and memory behaviour (documented in
// DESIGN.md); guest math uses Q16.16 fixed-point series whose element
// operations are routed through soft-float-style helper calls, standing in
// for QEMU's software floating point (§7.3).

// IDLAll declares every function the evaluation links.
const IDLAll = `
# OpenSSL-like digests
u64 md5(buf data, u64 len);
u64 sha1(buf data, u64 len);
u64 sha256(buf data, u64 len);
# RSA
u64 rsa1024_sign(u64 seed);
u64 rsa1024_verify(u64 seed);
u64 rsa2048_sign(u64 seed);
u64 rsa2048_verify(u64 seed);
# sqlite-like KV engine
u64 sqlite_exec(ptr table, u64 ops, u64 seed);
# libm
f64 sqrt(f64 x);
f64 exp(f64 x);
f64 log(f64 x);
f64 sin(f64 x);
f64 cos(f64 x);
f64 tan(f64 x);
f64 asin(f64 x);
f64 acos(f64 x);
f64 atan(f64 x);
`

// callLoop emits a main that performs `calls` PLT invocations, spilling
// its loop state to memory around each call (the callee may clobber every
// virtual register), accumulating an xor of results, and exiting with the
// low 32 bits. setup(iReg) must place the call's arguments with SetCArg
// using only r1–r3.
func callLoop(b *portasm.Builder, fn string, calls int, setup func()) {
	iCell := b.Zeros(8)
	accCell := b.Zeros(8)
	b.Label("main").
		Label("__calls").
		MovI(r9, int64(iCell)).
		Ld(r0, r9, 0, 8) // r0 = i
	setup()
	b.CallPLT(fn).
		GetCRet(r1).
		MovI(r9, int64(accCell)).
		Ld(r2, r9, 0, 8).
		XorR(r2, r1).
		St(r9, 0, r2, 8).
		MovI(r9, int64(iCell)).
		Ld(r0, r9, 0, 8).
		AddI(r0, 1).
		St(r9, 0, r0, 8).
		CmpI(r0, int64(calls)).
		J(portasm.NE, "__calls")
	b.MovI(r9, int64(accCell)).
		Ld(r0, r9, 0, 8).
		MovI(r1, 0xFFFFFFFF).
		Alu(portasm.And, r0, r1).
		Exit(r0)
}

// DigestProgram builds a guest program hashing a bufLen-byte buffer
// `calls` times through the PLT function alg ∈ {md5, sha1, sha256}.
func DigestProgram(alg string, bufLen, calls int) (*portasm.Builder, error) {
	if bufLen%64 != 0 {
		return nil, fmt.Errorf("workloads: digest buffer must be a multiple of 64, got %d", bufLen)
	}
	b := portasm.NewBuilder()
	buf := b.Data(bytesOf(40, bufLen))

	callLoop(b, alg, calls, func() {
		b.MovI(r1, int64(buf)).
			SetCArg(0, r1).
			MovI(r2, int64(bufLen)).
			SetCArg(1, r2)
	})

	switch alg {
	case "md5":
		emitMD5(b)
	case "sha1":
		emitSHA1(b)
	case "sha256":
		emitSHA256(b)
	default:
		return nil, fmt.Errorf("workloads: unknown digest %q", alg)
	}
	return b, nil
}

// emitMD5 defines the guest "md5": per 64-byte block, 64 rounds each
// loading one message word and running an add-rotate-xor step — the real
// MD5's load-per-round structure with a simplified mixing function.
func emitMD5(b *portasm.Builder) {
	b.Label("md5").
		CArg(r0, 0).          // ptr
		CArg(r1, 1).          // len
		MovI(r2, 0x67452301). // a
		MovI(r3, 0xefcdab89). // b
		MovI(r9, 0).          // off
		Label("md5blk").
		Mov(r4, r0).
		AddR(r4, r9). // block base
		MovI(r5, 0).  // round
		Label("md5rnd").
		Mov(r6, r5).
		AndI(r6, 7).
		LdIdx(r7, r4, r6, 8, 8).
		AddR(r2, r7).
		AddI(r2, 0x5A827999).
		Mov(r8, r2). // rotl 7
		ShlI(r2, 7).
		ShrI(r8, 57).
		OrR(r2, r8).
		XorR(r2, r3).
		Mov(r8, r2). // swap a, b
		Mov(r2, r3).
		Mov(r3, r8).
		AddI(r5, 1).
		CmpI(r5, 64).
		J(portasm.NE, "md5rnd").
		AddI(r9, 64).
		Cmp(r9, r1).
		J(portasm.NE, "md5blk").
		AddR(r2, r3).
		SetCRet(r2).
		Ret()
}

// emitSHA1 defines the guest "sha1": 80 rounds per block over a 3-word
// state with rotation amounts varying by round quarter.
func emitSHA1(b *portasm.Builder) {
	b.Label("sha1").
		CArg(r0, 0).
		CArg(r1, 1).
		MovI(r2, 0x67452301).
		MovI(r3, 0x98BADCFE).
		MovI(r9, 0).
		Label("sh1blk").
		Mov(r4, r0).
		AddR(r4, r9).
		MovI(r5, 0).
		Label("sh1rnd").
		Mov(r6, r5).
		AndI(r6, 7).
		LdIdx(r7, r4, r6, 8, 8).
		// f = (b & w) | (~b-ish mix)
		Mov(r8, r3).
		Alu(portasm.And, r8, r7).
		XorR(r8, r7).
		AddR(r2, r8).
		AddI(r2, 0x6ED9EBA1).
		Mov(r8, r2). // rotl 5
		ShlI(r2, 5).
		ShrI(r8, 59).
		OrR(r2, r8).
		XorR(r2, r3).
		Mov(r8, r2).
		Mov(r2, r3).
		Mov(r3, r8).
		AddI(r5, 1).
		CmpI(r5, 80).
		J(portasm.NE, "sh1rnd").
		AddI(r9, 64).
		Cmp(r9, r1).
		J(portasm.NE, "sh1blk").
		AddR(r2, r3).
		SetCRet(r2).
		Ret()
}

// emitSHA256 defines the guest "sha256": per block, a 48-step message-
// schedule expansion writing to a scratch area, then 64 compression rounds
// reading it back — the real SHA-256's two-phase, store-then-load shape.
func emitSHA256(b *portasm.Builder) {
	sched := b.Zeros(8 * 64)
	b.Label("sha256").
		CArg(r0, 0).
		CArg(r1, 1).
		MovI(r2, 0x6A09E667).
		MovI(r3, 0xBB67AE85).
		MovI(r9, 0).
		Label("sh2blk").
		Mov(r4, r0).
		AddR(r4, r9).
		// Schedule: w[0..7] = message words; w[8..63] = mix of two
		// previous entries.
		MovI(r5, 0).
		MovI(r6, int64(sched)).
		Label("sh2cpy").
		LdIdx(r7, r4, r5, 8, 8).
		StIdx(r6, r5, 8, r7, 8).
		AddI(r5, 1).
		CmpI(r5, 8).
		J(portasm.NE, "sh2cpy").
		Label("sh2exp").
		Mov(r7, r5).
		SubI(r7, 8).
		LdIdx(r8, r6, r7, 8, 8). // w[i-8]
		AddI(r7, 6).
		LdIdx(r7, r6, r7, 8, 8). // w[i-2]
		Mov(r4, r7).             // σ-ish mixing
		ShrI(r4, 17).
		XorR(r7, r4).
		AddR(r8, r7).
		StIdx(r6, r5, 8, r8, 8).
		AddI(r5, 1).
		CmpI(r5, 64).
		J(portasm.NE, "sh2exp").
		// Compression rounds.
		MovI(r5, 0).
		Label("sh2rnd").
		LdIdx(r7, r6, r5, 8, 8).
		AddR(r2, r7).
		AddI(r2, 0x428A2F98).
		Mov(r8, r2). // rotl 13
		ShlI(r2, 13).
		ShrI(r8, 51).
		OrR(r2, r8).
		Mov(r8, r3). // ch-ish
		Alu(portasm.And, r8, r2).
		XorR(r3, r8).
		Mov(r8, r2).
		Mov(r2, r3).
		Mov(r3, r8).
		AddI(r5, 1).
		CmpI(r5, 64).
		J(portasm.NE, "sh2rnd").
		AddI(r9, 64).
		Cmp(r9, r1).
		J(portasm.NE, "sh2blk").
		AddR(r2, r3).
		SetCRet(r2).
		Ret()
}

// RSAProgram builds a guest program running modular exponentiation through
// the PLT `calls` times. The guest fallback performs square-and-multiply
// over 64-bit limbs with URem-based reduction; sign uses the full
// exponent width, verify uses e = 65537 (17 bits).
func RSAProgram(bits int, sign bool, calls int) (*portasm.Builder, error) {
	if bits != 1024 && bits != 2048 {
		return nil, fmt.Errorf("workloads: rsa bits must be 1024 or 2048")
	}
	name := fmt.Sprintf("rsa%d_%s", bits, map[bool]string{true: "sign", false: "verify"}[sign])
	iters := 17 // verify: e = 65537
	if sign {
		iters = bits
	}
	// Model schoolbook limb products per exponent bit (a 1024-bit modmul
	// is ~16² 64-bit multiply-adds; we run a scaled-down count).
	perBit := 24
	if bits == 2048 {
		perBit = 48
	}
	const modulus = 0x7FFFFFFFFFFFFFE7

	b := portasm.NewBuilder()
	callLoop(b, name, calls, func() {
		b.Mov(r1, r0).
			AddI(r1, 3).
			SetCArg(0, r1)
	})

	b.Label(name).
		CArg(r0, 0). // seed
		MovI(r1, modulus).
		Mov(r2, r0).
		AluI(portasm.Or, r2, 2). // x
		MovI(r3, 0)              // bit
	b.Label(name + "_bit")
	for k := 0; k < perBit; k++ {
		// x = (x * (x+k)) % M, masked to avoid 128-bit products.
		b.Mov(r4, r2).
			AddI(r4, int64(k)).
			MovI(r5, 0xFFFFFFFF).
			Alu(portasm.And, r4, r5).
			Alu(portasm.And, r2, r5).
			MulR(r2, r4).
			Alu(portasm.URem, r2, r1)
	}
	b.AddI(r3, 1).
		CmpI(r3, int64(iters)).
		J(portasm.NE, name+"_bit").
		SetCRet(r2).
		Ret()
	return b, nil
}

// SqliteProgram builds the sqlite speedtest-like workload: `calls`
// transactions of `ops` hashed KV upserts each, through the PLT.
func SqliteProgram(ops, calls int) (*portasm.Builder, error) {
	const buckets = 4096
	b := portasm.NewBuilder()
	table := b.Zeros(8 * buckets)

	callLoop(b, "sqlite_exec", calls, func() {
		b.MovI(r1, int64(table)).
			SetCArg(0, r1).
			MovI(r2, int64(ops)).
			SetCArg(1, r2).
			Mov(r3, r0).
			AddI(r3, 1).
			SetCArg(2, r3)
	})

	b.Label("sqlite_exec").
		CArg(r0, 0). // table
		CArg(r1, 1). // ops
		CArg(r2, 2). // seed
		AluI(portasm.Or, r2, 1).
		MovI(r3, 0). // i
		MovI(r4, 0)  // acc
	b.Label("sqlo").
		MulI(r2, 6364136223846793005).
		AddI(r2, 1442695040888963407).
		Mov(r5, r2).
		ShrI(r5, 33).
		AndI(r5, buckets-1).
		LdIdx(r6, r0, r5, 8, 8).
		XorR(r4, r6).
		AddR(r6, r2).
		StIdx(r0, r5, 8, r6, 8).
		AddI(r3, 1).
		Cmp(r3, r1).
		J(portasm.NE, "sqlo").
		SetCRet(r4).
		Ret()
	return b, nil
}

// mathSpec describes one libm function's guest-side evaluation.
type mathSpec struct {
	terms   int  // series terms (each: fixmul, fixmul, fixdiv)
	newton  bool // sqrt-style divide-and-average iterations instead
	newtonN int
}

var mathSpecs = map[string]mathSpec{
	"sqrt": {newton: true, newtonN: 3},
	"exp":  {terms: 12},
	"log":  {terms: 12},
	"sin":  {terms: 9},
	"cos":  {terms: 9},
	"tan":  {terms: 11},
	"asin": {terms: 14},
	"acos": {terms: 14},
	"atan": {terms: 13},
}

// MathNames lists the Figure-14 functions in the paper's order.
func MathNames() []string {
	return []string{"sqrt", "exp", "log", "cos", "sin", "tan", "acos", "asin", "atan"}
}

// MathProgram builds a guest program evaluating a libm function through
// the PLT `calls` times over varying Q16.16 inputs. The guest fallback
// evaluates a fixed-point series whose element operations go through
// soft-float-style helper calls (fixmul/fixdiv), reproducing the cost
// structure of QEMU's software floating point.
func MathProgram(fn string, calls int) (*portasm.Builder, error) {
	spec, ok := mathSpecs[fn]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown math function %q", fn)
	}
	b := portasm.NewBuilder()
	callLoop(b, fn, calls, func() {
		b.Mov(r1, r0).
			AndI(r1, 127).
			AddI(r1, 1).
			ShlI(r1, 12). // Q16.16 in (0, 0.5]
			SetCArg(0, r1)
	})

	// Soft-fixed-point helpers. Each pads its core operation with
	// unpack/normalize-style mask-and-shift work so one helper call costs
	// roughly what a softfloat primitive does. Clobbers r8, r9 only.
	b.Label("fixmul"). // r8 = (r8 * r9) >> 16
				MulR(r8, r9).
				Mov(r9, r8).
				ShrI(r9, 63). // sign-ish
				ShrI(r8, 16).
				XorR(r8, r9).
				Mov(r9, r8).
				AndI(r9, 0xFFF).
				OrR(r8, r9).
				Ret()
	b.Label("fixdiv"). // r8 = (r8 << 16) / r9
				ShlI(r8, 16).
				Alu(portasm.UDiv, r8, r9).
				Mov(r9, r8).
				ShrI(r9, 48).
				XorR(r8, r9).
				Ret()

	b.Label(fn).
		CArg(r0, 0) // x (Q16.16)
	if spec.newton {
		// y = x; repeat: y = (y + x/y) >> 1.
		b.Mov(r1, r0).
			AluI(portasm.Or, r1, 1)
		for i := 0; i < spec.newtonN; i++ {
			b.Mov(r8, r0).
				Mov(r9, r1).
				Call("fixdiv").
				AddR(r8, r1).
				ShrI(r8, 1).
				Mov(r1, r8)
		}
		b.SetCRet(r1).
			Ret()
	} else {
		// sum = x; term = x; for i: term = term·x·x / (i·2^16); sum += term.
		b.Mov(r1, r0). // sum
				Mov(r2, r0) // term
		for i := 1; i <= spec.terms; i++ {
			b.Mov(r8, r2).
				Mov(r9, r0).
				Call("fixmul").
				Mov(r2, r8). // term *= x
				Mov(r8, r2).
				Mov(r9, r0).
				Call("fixmul").
				Mov(r2, r8). // term *= x
				Mov(r8, r2).
				MovI(r9, int64(i)<<16).
				Call("fixdiv").
				Mov(r2, r8). // term /= i
				AddR(r1, r2) // sum += term
		}
		b.SetCRet(r1).
			Ret()
	}
	return b, nil
}
