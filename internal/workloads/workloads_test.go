package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/portasm"
)

// runGuest builds and runs a guest program under the given variant,
// returning the exit code and cycles.
func runGuest(t *testing.T, b *portasm.Builder, v core.Variant, opts ...core.Option) (uint64, uint64) {
	t.Helper()
	img, err := b.BuildGuest("main")
	if err != nil {
		t.Fatalf("BuildGuest: %v", err)
	}
	rt, err := core.New(img, append([]core.Option{core.WithVariant(v)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	return code, rt.M.MaxCycles()
}

// runNative builds and runs the native image, returning exit code and
// cycles.
func runNative(t *testing.T, b *portasm.Builder) (uint64, uint64) {
	t.Helper()
	img, err := b.BuildNative("main")
	if err != nil {
		t.Fatalf("BuildNative: %v", err)
	}
	m, err := portasm.RunNative(img, 0)
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	return m.CPUs[0].ExitCode, m.MaxCycles()
}

// TestKernelsAgreeAcrossVariants is the workload correctness gate: every
// Figure-12 kernel must produce the same checksum under all four DBT
// variants and natively, and the cycle ordering no-fences ≤ tcg-ver ≤ qemu
// must hold.
func TestKernelsAgreeAcrossVariants(t *testing.T) {
	kernels := Registry()
	if testing.Short() {
		kernels = kernels[:4]
	}
	const threads, scale = 2, 1
	for _, k := range kernels {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			variants := []core.Variant{
				core.VariantQemu, core.VariantNoFences,
				core.VariantTCGVer, core.VariantRisotto,
			}
			cycles := make(map[core.Variant]uint64)
			var want uint64
			for i, v := range variants {
				b, err := k.Build(threads, scale)
				if err != nil {
					t.Fatal(err)
				}
				code, cyc := runGuest(t, b, v)
				cycles[v] = cyc
				if i == 0 {
					want = code
				} else if code != want {
					t.Errorf("%v checksum %d != qemu checksum %d", v, code, want)
				}
			}
			b, err := k.Build(threads, scale)
			if err != nil {
				t.Fatal(err)
			}
			ncode, ncyc := runNative(t, b)
			if ncode != want {
				t.Errorf("native checksum %d != guest checksum %d", ncode, want)
			}
			if ncyc >= cycles[core.VariantNoFences] {
				t.Errorf("native (%d cycles) should beat every emulated variant (best %d)",
					ncyc, cycles[core.VariantNoFences])
			}
			if cycles[core.VariantQemu] < cycles[core.VariantTCGVer] {
				t.Errorf("qemu (%d) should not beat tcg-ver (%d)",
					cycles[core.VariantQemu], cycles[core.VariantTCGVer])
			}
			if cycles[core.VariantTCGVer] < cycles[core.VariantNoFences] {
				t.Errorf("tcg-ver (%d) should not beat no-fences (%d)",
					cycles[core.VariantTCGVer], cycles[core.VariantNoFences])
			}
		})
	}
}

func TestKernelThreadScaling(t *testing.T) {
	// Kernels accept different thread counts and still agree.
	k, err := KernelByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	var base uint64
	for i, threads := range []int{1, 2, 4} {
		b, err := k.Build(threads, 1)
		if err != nil {
			t.Fatal(err)
		}
		code, _ := runGuest(t, b, core.VariantRisotto)
		if i == 0 {
			base = code
		} else if code != base {
			t.Fatalf("threads=%d checksum %d != %d", threads, code, base)
		}
	}
}

func TestKernelByName(t *testing.T) {
	if _, err := KernelByName("nope"); err == nil {
		t.Fatal("unknown kernel must error")
	}
	k, err := KernelByName("freqmine")
	if err != nil || k.Suite != "parsec" {
		t.Fatalf("freqmine lookup: %v %v", k, err)
	}
	if len(Registry()) != 17 {
		t.Fatalf("registry has %d kernels, want 17", len(Registry()))
	}
	k, err = KernelByName("fencechain")
	if err != nil || k.Suite != "micro" {
		t.Fatalf("fencechain lookup: %v %v", k, err)
	}
}

func TestCannealRequiresPow2(t *testing.T) {
	if _, err := Canneal(3, 1); err == nil {
		t.Fatal("canneal with 3 threads must error")
	}
}

func TestDigestProgramsRun(t *testing.T) {
	for _, alg := range []string{"md5", "sha1", "sha256"} {
		b, err := DigestProgram(alg, 1024, 2)
		if err != nil {
			t.Fatal(err)
		}
		codeQ, cycQ := runGuest(t, b, core.VariantQemu)

		// The linked run executes the real host digest; cycles must drop
		// dramatically even though the toy guest digest's checksum
		// differs (documented substitution).
		b2, _ := DigestProgram(alg, 1024, 2)
		codeR, cycR := runGuest(t, b2, core.VariantRisotto, core.WithHostLinker(IDLAll, nil))
		if cycR >= cycQ {
			t.Errorf("%s: linked (%d cycles) should beat translated (%d)", alg, cycR, cycQ)
		}
		_ = codeQ
		_ = codeR
	}
}

func TestDigestBufferValidation(t *testing.T) {
	if _, err := DigestProgram("md5", 100, 1); err == nil {
		t.Fatal("non-64-multiple buffer must error")
	}
	if _, err := DigestProgram("sha512", 64, 1); err == nil {
		t.Fatal("unknown digest must error")
	}
}

func TestRSAPrograms(t *testing.T) {
	b, err := RSAProgram(1024, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, cycSign := runGuest(t, b, core.VariantQemu)
	b2, _ := RSAProgram(1024, false, 1)
	_, cycVerify := runGuest(t, b2, core.VariantQemu)
	if cycVerify >= cycSign {
		t.Fatalf("verify (%d) must be much cheaper than sign (%d)", cycVerify, cycSign)
	}
	if _, err := RSAProgram(512, true, 1); err == nil {
		t.Fatal("bad bit width must error")
	}
}

func TestSqliteProgram(t *testing.T) {
	b, err := SqliteProgram(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, cycQ := runGuest(t, b, core.VariantQemu)
	b2, _ := SqliteProgram(64, 2)
	_, cycR := runGuest(t, b2, core.VariantRisotto, core.WithHostLinker(IDLAll, nil))
	if cycR >= cycQ {
		t.Fatalf("linked sqlite (%d) should beat translated (%d)", cycR, cycQ)
	}
}

func TestMathPrograms(t *testing.T) {
	for _, fn := range MathNames() {
		b, err := MathProgram(fn, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, cycQ := runGuest(t, b, core.VariantQemu)
		b2, _ := MathProgram(fn, 2)
		_, cycR := runGuest(t, b2, core.VariantRisotto, core.WithHostLinker(IDLAll, nil))
		if cycR >= cycQ {
			t.Errorf("%s: linked (%d) should beat translated (%d)", fn, cycR, cycQ)
		}
	}
	if _, err := MathProgram("cbrt", 1); err == nil {
		t.Fatal("unknown math fn must error")
	}
}

func TestCASBenchAllVariantsAndNative(t *testing.T) {
	const threads, vars, ops = 4, 2, 200
	want := uint64(threads * ops)
	for _, v := range []core.Variant{core.VariantQemu, core.VariantRisotto} {
		b, err := CASBench(threads, vars, ops)
		if err != nil {
			t.Fatal(err)
		}
		code, _ := runGuest(t, b, v)
		if code != want {
			t.Errorf("%v: counter sum = %d, want %d", v, code, want)
		}
	}
	b, _ := CASBench(threads, vars, ops)
	code, _ := runNative(t, b)
	if code != want {
		t.Errorf("native: counter sum = %d, want %d", code, want)
	}
}

func TestSpinlockMutualExclusion(t *testing.T) {
	const threads, iters = 4, 150
	want := uint64(threads * iters)
	for _, v := range []core.Variant{
		core.VariantQemu, core.VariantNoFences, core.VariantTCGVer, core.VariantRisotto,
	} {
		// A small quantum forces lock handoffs mid-critical-section.
		b, err := SpinlockCounter(threads, iters)
		if err != nil {
			t.Fatal(err)
		}
		code, _ := runGuest(t, b, v, core.WithQuantum(3))
		if code != want {
			t.Errorf("%v: counter = %d, want %d (lost updates!)", v, code, want)
		}
	}
	b, err := SpinlockCounter(threads, iters)
	if err != nil {
		t.Fatal(err)
	}
	nimg, err := b.BuildNative("main")
	if err != nil {
		t.Fatal(err)
	}
	m, err := portasm.RunNativeQuantum(nimg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CPUs[0].ExitCode; got != want {
		t.Errorf("native: counter = %d, want %d", got, want)
	}
}

func TestSpinlockValidation(t *testing.T) {
	if _, err := SpinlockCounter(0, 10); err == nil {
		t.Fatal("zero threads must error")
	}
}

func TestCASUncontendedRisottoBeatsQemu(t *testing.T) {
	// threads == vars: no contention; inline casal must beat the helper
	// path (§7.4).
	b1, _ := CASBench(4, 4, 500)
	_, cycQ := runGuest(t, b1, core.VariantQemu)
	b2, _ := CASBench(4, 4, 500)
	_, cycR := runGuest(t, b2, core.VariantRisotto)
	if cycR >= cycQ {
		t.Fatalf("uncontended CAS: risotto (%d) should beat qemu (%d)", cycR, cycQ)
	}
}

func TestIDLMatchesHostlib(t *testing.T) {
	// Every function declared in IDLAll must exist in the default host
	// library — otherwise the linker setup fails at runtime.
	b, err := DigestProgram("md5", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := b.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.New(img, core.WithVariant(core.VariantRisotto), core.WithHostLinker(IDLAll, nil)); err != nil {
		t.Fatalf("IDL/hostlib mismatch: %v", err)
	}
}
