package workloads

import (
	"fmt"

	"repro/internal/portasm"
)

// CASBench builds the Figure-15 microbenchmark: `threads` threads each
// perform `opsPerThread` successful compare-and-swap increments on one of
// `vars` shared counters (thread t hammers counter t mod vars, each padded
// to its own 64-byte line). threads == vars is the uncontended
// configuration; vars < threads forces line ping-pong.
//
// The kernel is the textbook CAS loop: load, attempt CAS(old → old+1),
// retry on failure. Guest builds exercise either QEMU's helper-call RMW
// path or Risotto's inline casal translation depending on the DBT variant;
// the native build uses casal directly.
func CASBench(threads, vars, opsPerThread int) (*portasm.Builder, error) {
	if threads <= 0 || vars <= 0 {
		return nil, fmt.Errorf("workloads: casbench needs positive threads/vars")
	}
	b := portasm.NewBuilder()
	counters := b.Zeros(64 * vars) // one cache line per counter
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0).
		Mov(r1, r0).
		AluI(portasm.URem, r1, int64(vars)).
		MulI(r1, 64).
		AddI(r1, int64(counters)). // r1 = my counter
		MovI(r2, 0).               // completed ops
		Label("cbloop").
		Label("cbretry").
		Ld(r3, r1, 0, 8).
		Mov(r4, r3).
		AddI(r4, 1).
		CASFlag(r1, r3, r4).
		J(portasm.NE, "cbretry").
		AddI(r2, 1).
		CmpI(r2, int64(opsPerThread)).
		J(portasm.NE, "cbloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		// Sum the counters (striding by 64/8 words): must equal
		// threads*opsPerThread.
		b.MovI(r4, int64(counters)).
			MovI(r5, 0).
			MovI(r6, 0).
			Label("cbsum").
			Ld(r7, r4, 0, 8).
			AddR(r6, r7).
			AddI(r4, 64).
			AddI(r5, 1).
			CmpI(r5, int64(vars)).
			J(portasm.NE, "cbsum").
			MovI(r7, int64(result)).
			St(r7, 0, r6, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}

// SpinlockCounter builds a mutual-exclusion stress test: `threads` threads
// each increment a shared counter `iters` times inside a CAS spinlock
// critical section. The final counter must equal threads×iters under every
// DBT variant and natively — lost updates mean broken atomics, broken
// scheduling, or a broken lock translation.
func SpinlockCounter(threads, iters int) (*portasm.Builder, error) {
	return spinlockCounter(threads, iters, true)
}

// SpinlockCounterNoMFence is SpinlockCounter without the explicit MFENCE
// before the lock release. On x86 this is still a correct lock (TSO orders
// the counter store before the release store), so a correct translation
// must keep it working — which is exactly what the verified mapping's
// store fences do, and what the no-fences translation loses on a weak
// host (see TestWeakHostSpinlock).
func SpinlockCounterNoMFence(threads, iters int) (*portasm.Builder, error) {
	return spinlockCounter(threads, iters, false)
}

func spinlockCounter(threads, iters int, mfence bool) (*portasm.Builder, error) {
	if threads <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workloads: spinlock needs positive threads/iters")
	}
	b := portasm.NewBuilder()
	lock := b.Zeros(64)
	counter := b.Zeros(64)
	result := b.Zeros(8)

	b.Label("worker").
		Arg(r0).
		MovI(r1, int64(lock)).
		MovI(r2, int64(counter)).
		MovI(r3, 0). // completed
		Label("slloop").
		// acquire
		Label("slacq").
		MovI(r4, 0). // expect unlocked
		MovI(r5, 1).
		CASFlag(r1, r4, r5).
		J(portasm.NE, "slacq").
		// critical section
		Ld(r6, r2, 0, 8).
		AddI(r6, 1).
		St(r2, 0, r6, 8)
	// release: on TSO a plain store suffices (store-store order); the
	// MFENCE variant makes the ordering explicit even under no-fences.
	if mfence {
		b.MFence()
	}
	b.MovI(r7, 0).
		St(r1, 0, r7, 8).
		AddI(r3, 1).
		CmpI(r3, int64(iters)).
		J(portasm.NE, "slloop").
		MovI(r0, 0).
		Exit(r0)

	forkJoin(b, threads, func() {
		b.MovI(r4, int64(counter)).
			Ld(r5, r4, 0, 8).
			MovI(r6, int64(result)).
			St(r6, 0, r5, 8)
		exitChecksum(b, result)()
	})
	return b, nil
}

// Fig15Configs returns the (threads, vars) pairs of Figure 15 in order.
func Fig15Configs() [][2]int {
	return [][2]int{
		{1, 1}, {4, 1}, {4, 2}, {4, 4}, {8, 1}, {8, 4}, {8, 8},
		{16, 1}, {16, 8}, {16, 16},
	}
}
