package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/selfheal"
	"repro/internal/transcache"
	"repro/internal/workloads"
)

// JobRequest is the submit payload. Work is named either by a serialized
// guest image (Image, base64 in JSON) or by a built-in kernel name
// (Kernel + Threads/Scale); exactly one must be set.
type JobRequest struct {
	// Tenant is the QoS identity: limits, breaker state and shed
	// decisions are per-tenant. Required.
	Tenant string `json:"tenant"`
	// Image is a guestimg.Encode payload.
	Image []byte `json:"image,omitempty"`
	// Kernel names a workloads kernel to build instead of sending bytes.
	Kernel  string `json:"kernel,omitempty"`
	Threads int    `json:"threads,omitempty"`
	Scale   int    `json:"scale,omitempty"`
	// Variant selects the DBT setup ("" = risotto).
	Variant string `json:"variant,omitempty"`
	// StepBudget and DeadlineMS request per-job watchdog settings; both
	// are clamped to the server's caps, and 0 means "the cap".
	StepBudget uint64 `json:"step_budget,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// Fault and FaultSeed arm a deterministic per-job injector
	// (faults.ParseSpecs syntax). The injector persists across retry
	// attempts, so a one-shot fault hit on attempt 1 leaves attempt 2
	// clean — exactly the transient-fault shape retry exists for.
	Fault     string `json:"fault,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
}

// Job statuses.
const (
	StatusOK    = "ok"
	StatusTrap  = "trap"
	StatusError = "error"
)

// JobResponse is the submit result. Status "ok" carries ExitCode; "trap"
// carries the structured trap and, when the runtime survived far enough
// to triage, the crash bundle; "error" is an untyped internal failure.
type JobResponse struct {
	JobID    uint64 `json:"job_id"`
	Tenant   string `json:"tenant"`
	Status   string `json:"status"`
	ExitCode uint64 `json:"exit_code"`
	// Attempts counts executions including retries.
	Attempts int                `json:"attempts"`
	Trap     *selfheal.TrapInfo `json:"trap,omitempty"`
	Bundle   *selfheal.Bundle   `json:"bundle,omitempty"`
	Error    string             `json:"error,omitempty"`
	// CacheHits/CacheMisses are this job's persistent-translation-cache
	// counts (both 0 when the cache is off).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// DurationMS is wall-clock execution time across attempts.
	DurationMS int64 `json:"duration_ms"`
}

// resolvedJob is a validated request: the image to run and the effective
// (capped) config inputs.
type resolvedJob struct {
	img        *guestimg.Image
	variant    core.Variant
	stepBudget uint64
	deadline   time.Duration
	inj        *faults.Injector
	faultSpec  string
	faultSeed  int64
}

// resolve validates req into a runnable job. Errors here are the
// client's fault (422): unknown kernel, undecodable image, bad variant
// or fault spec.
func (s *Server) resolve(req *JobRequest) (*resolvedJob, error) {
	j := &resolvedJob{variant: core.VariantRisotto}
	switch {
	case len(req.Image) > 0 && req.Kernel != "":
		return nil, fmt.Errorf("request has both image and kernel; send one")
	case len(req.Image) > 0:
		img, err := guestimg.Decode(req.Image)
		if err != nil {
			return nil, fmt.Errorf("bad image: %w", err)
		}
		j.img = img
	case req.Kernel != "":
		k, err := workloads.KernelByName(req.Kernel)
		if err != nil {
			return nil, err
		}
		threads, scale := req.Threads, req.Scale
		if threads <= 0 {
			threads = 1
		}
		if scale <= 0 {
			scale = 1
		}
		pb, err := k.Build(threads, scale)
		if err != nil {
			return nil, fmt.Errorf("building kernel %s: %w", req.Kernel, err)
		}
		img, err := pb.BuildGuest("main")
		if err != nil {
			return nil, fmt.Errorf("building kernel %s: %w", req.Kernel, err)
		}
		j.img = img
	default:
		return nil, fmt.Errorf("request names no work: send image bytes or a kernel name")
	}
	if req.Variant != "" {
		v, err := core.ParseVariant(req.Variant)
		if err != nil {
			return nil, err
		}
		j.variant = v
	}
	// Clamp the watchdogs to the server caps; 0 means "the cap". A
	// tenant cannot opt out of the watchdogs, only tighten them.
	j.stepBudget = s.cfg.StepBudgetCap
	if req.StepBudget > 0 && req.StepBudget < j.stepBudget {
		j.stepBudget = req.StepBudget
	}
	j.deadline = s.cfg.DeadlineCap
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < j.deadline {
			j.deadline = d
		}
	}
	if req.Fault != "" {
		specs, err := faults.ParseSpecs(req.Fault)
		if err != nil {
			return nil, err
		}
		seed := req.FaultSeed
		if seed == 0 {
			seed = 1
		}
		j.inj = faults.NewInjector(seed)
		for _, sp := range specs {
			sp.Arm(j.inj)
		}
		j.faultSpec = req.Fault
		j.faultSeed = seed
	}
	return j, nil
}

// runJob executes a resolved job with the retry policy: transient traps
// (retryable kinds) re-run up to MaxRetries times with jittered backoff,
// reusing the job's injector so one-shot injected faults stay spent. The
// final failure carries the last attempt's crash bundle.
func (s *Server) runJob(req *JobRequest, j *resolvedJob, id uint64) *JobResponse {
	resp := &JobResponse{JobID: id, Tenant: req.Tenant}
	start := time.Now()
	defer func() { resp.DurationMS = time.Since(start).Milliseconds() }()

	maxAttempts := 1 + s.cfg.MaxRetries
	for attempt := 1; ; attempt++ {
		resp.Attempts = attempt
		code, hits, misses, trap, bundle, err := s.runOnce(req, j)
		resp.CacheHits += hits
		resp.CacheMisses += misses
		if err != nil {
			resp.Status = StatusError
			resp.Error = err.Error()
			return resp
		}
		if trap == nil {
			resp.Status = StatusOK
			resp.ExitCode = code
			resp.Trap = nil
			resp.Bundle = nil
			return resp
		}
		ti := selfheal.TrapInfoOf(trap)
		resp.Trap = &ti
		resp.Bundle = bundle
		if !retryable(trap.Kind) || attempt >= maxAttempts {
			resp.Status = StatusTrap
			resp.ExitCode = 0
			return resp
		}
		s.met.retries.Inc()
		time.Sleep(s.jitter(s.cfg.RetryBackoff))
	}
}

// runOnce is one attempt: build a runtime, run under the watchdogs with
// self-healing on, and convert every failure mode — including a panic in
// this worker goroutine — into a structured trap plus, when the runtime
// survived far enough, a crash bundle. err is reserved for internal
// failures that are not the guest's doing.
func (s *Server) runOnce(req *JobRequest, j *resolvedJob) (code uint64, hits, misses uint64, trap *faults.Trap, bundle *selfheal.Bundle, err error) {
	var rt *core.Runtime
	var view *transcache.ImageCache
	collect := func() {
		if view != nil {
			hits, misses = view.Counts()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*faults.Trap); ok {
				trap = t
			} else {
				trap = &faults.Trap{
					Kind: faults.TrapWorkerPanic, CPU: -1,
					Msg: fmt.Sprintf("job worker panic: %v", r),
				}
			}
			if rt != nil {
				bundle, _ = rt.CrashBundle("risottod", trap)
			}
			collect()
		}
	}()

	// No WithObs: the runtime makes a private scope, keeping crash
	// bundles deterministic per-job rather than entangled with
	// daemon-lifetime counters.
	opts := []core.Option{
		core.WithVariant(j.variant),
		core.WithMemSize(s.cfg.MemSize),
		core.WithStepBudget(j.stepBudget),
		core.WithDeadline(j.deadline),
		core.WithSelfHeal(true),
		core.WithFaults(j.inj),
		core.WithProvenance(req.Kernel, j.faultSpec, j.faultSeed),
	}
	if s.cfg.Cache != nil {
		view = s.cfg.Cache.ForImage(transcache.Fingerprint(j.img) + "/" + j.variant.String())
		opts = append(opts, core.WithTranslationCache(view))
	}
	if s.cfg.TierUp {
		opts = append(opts, core.WithTierUp(core.TierUpConfig{
			Enabled:          true,
			PromoteThreshold: s.cfg.PromoteThreshold,
			SuperblockMax:    s.cfg.SuperblockMax,
		}))
	}
	rt, nerr := core.New(j.img, opts...)
	if nerr != nil {
		if t, ok := faults.As(nerr); ok {
			collect()
			return 0, hits, misses, t, nil, nil
		}
		collect()
		return 0, hits, misses, nil, nil, nerr
	}
	// The injected worker-panic site fires after runtime construction so
	// the recovered trap can still be triaged into a bundle.
	if t := j.inj.Hit(faults.SiteServeJob); t != nil {
		panic(t)
	}
	code, rerr := rt.Run()
	collect()
	if rerr != nil {
		if t, ok := faults.As(rerr); ok {
			b, _ := rt.CrashBundle("risottod", t)
			return 0, hits, misses, t, b, nil
		}
		return 0, hits, misses, nil, nil, rerr
	}
	return code, hits, misses, nil, nil, nil
}
