package serve

import (
	"time"
)

// breakerState is a tenant circuit breaker's position.
type breakerState int

const (
	// breakerClosed: jobs flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: the tenant is shed until the backoff expires.
	breakerOpen
	// breakerHalfOpen: the backoff expired; exactly one probe job is
	// allowed through to decide between closing and re-opening.
	breakerHalfOpen
)

// tenant is the per-tenant admission state: an inflight count against the
// tenant queue-depth limit, a concurrency semaphore, and a circuit
// breaker over consecutive trap-terminated jobs — the selfheal quarantine
// pattern lifted from blocks to tenants: trip, back off exponentially,
// probe, recover.
type tenant struct {
	name string
	// inflight counts admitted (queued or running) jobs.
	inflight int
	// slots bounds concurrently *running* jobs (capacity
	// Config.TenantMaxInflight).
	slots chan struct{}

	state       breakerState
	consecTraps int
	openUntil   time.Time
	backoff     time.Duration
	probing     bool
}

// admit decides whether the breaker lets a job through at now. Returns
// (false, wait) when the tenant is shed; wait is the suggested
// Retry-After. Called with Server.mu held.
func (t *tenant) admit(now time.Time, cfg Config) (bool, time.Duration) {
	switch t.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if now.Before(t.openUntil) {
			return false, t.openUntil.Sub(now)
		}
		t.state = breakerHalfOpen
		t.probing = false
		fallthrough
	default: // breakerHalfOpen
		if t.probing {
			// A probe is already in flight; its verdict decides.
			return false, t.backoff
		}
		t.probing = true
		return true, 0
	}
}

// record feeds one finished job's outcome (trapped or not) into the
// breaker at now. Returns (tripped, recovered) for metric accounting.
// Called with Server.mu held.
func (t *tenant) record(trapped bool, now time.Time, cfg Config) (tripped, recovered bool) {
	if !trapped {
		t.consecTraps = 0
		if t.state == breakerHalfOpen {
			// Probe succeeded: close and forget the backoff.
			t.state = breakerClosed
			t.probing = false
			t.backoff = 0
			return false, true
		}
		return false, false
	}
	t.consecTraps++
	switch t.state {
	case breakerHalfOpen:
		// Probe failed: re-open with doubled backoff.
		t.probing = false
		t.trip(now, cfg, 2*t.backoff)
		return true, false
	case breakerClosed:
		if t.consecTraps >= cfg.BreakerThreshold {
			t.trip(now, cfg, cfg.BreakerBackoff)
			return true, false
		}
	}
	return false, false
}

// trip opens the breaker for the given backoff, clamped to
// [BreakerBackoff, BreakerMaxBackoff].
func (t *tenant) trip(now time.Time, cfg Config, backoff time.Duration) {
	if backoff < cfg.BreakerBackoff {
		backoff = cfg.BreakerBackoff
	}
	if backoff > cfg.BreakerMaxBackoff {
		backoff = cfg.BreakerMaxBackoff
	}
	t.state = breakerOpen
	t.backoff = backoff
	t.openUntil = now.Add(backoff)
}
