package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/isa/x86"
	"repro/internal/obs"
	"repro/internal/transcache"
)

// spinImage builds a guest that loops forever — the hostile live-looper
// the watchdogs exist for.
func spinImage(t *testing.T) []byte {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RCX, 0).
		Label("loop").
		AddRI(x86.RCX, 1).
		Jmp("loop")
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img.Encode()
}

type testServer struct {
	*Server
	hs    *httptest.Server
	scope *obs.Scope
}

func startServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.NewScope("")
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &testServer{Server: srv, hs: hs, scope: cfg.Obs}
}

// submit posts a job and decodes the response. For non-200 statuses the
// JobResponse is zero and the error body text is returned.
func (ts *testServer) submit(t *testing.T, req JobRequest) (int, JobResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var he httpError
		json.NewDecoder(resp.Body).Decode(&he)
		return resp.StatusCode, JobResponse{}, he.Error
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, jr, ""
}

func (ts *testServer) counter(name string) uint64 {
	return ts.scope.Snapshot().Counters[name]
}

func TestCleanJob(t *testing.T) {
	ts := startServer(t, Config{Workers: 2})
	code, jr, _ := ts.submit(t, JobRequest{Tenant: "a", Kernel: "histogram"})
	if code != http.StatusOK || jr.Status != StatusOK {
		t.Fatalf("clean job: HTTP %d, status %q", code, jr.Status)
	}
	if jr.Attempts != 1 {
		t.Fatalf("clean job took %d attempts", jr.Attempts)
	}
}

func TestRequestValidation(t *testing.T) {
	ts := startServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"no tenant", JobRequest{Kernel: "histogram"}, http.StatusBadRequest},
		{"no work", JobRequest{Tenant: "a"}, http.StatusUnprocessableEntity},
		{"unknown kernel", JobRequest{Tenant: "a", Kernel: "nonesuch"}, http.StatusUnprocessableEntity},
		{"bad image", JobRequest{Tenant: "a", Image: []byte("junk")}, http.StatusUnprocessableEntity},
		{"bad variant", JobRequest{Tenant: "a", Kernel: "histogram", Variant: "nope"}, http.StatusUnprocessableEntity},
		{"bad fault", JobRequest{Tenant: "a", Kernel: "histogram", Fault: "nonesuch"}, http.StatusUnprocessableEntity},
		{"image and kernel", JobRequest{Tenant: "a", Kernel: "histogram", Image: spinImage(t)}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if got, _, _ := ts.submit(t, c.req); got != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRetryTransientFault: a one-shot injected worker panic is retried
// with the same injector, so the second attempt runs clean.
func TestRetryTransientFault(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond})
	_, jr, _ := ts.submit(t, JobRequest{Tenant: "a", Kernel: "histogram", Fault: "job-panic@1"})
	if jr.Status != StatusOK || jr.Attempts != 2 {
		t.Fatalf("transient panic: status %q after %d attempts, want ok after 2", jr.Status, jr.Attempts)
	}
	if got := ts.counter("serve.retries"); got != 1 {
		t.Fatalf("serve.retries = %d, want 1", got)
	}
	// Two one-shot panics: attempts 1 and 2 die, 3 succeeds.
	_, jr, _ = ts.submit(t, JobRequest{Tenant: "b", Kernel: "histogram", Fault: "job-panic@1,job-panic@2"})
	if jr.Status != StatusOK || jr.Attempts != 3 {
		t.Fatalf("double panic: status %q after %d attempts, want ok after 3", jr.Status, jr.Attempts)
	}
}

// TestRetryExhaustionCarriesBundle: when every attempt dies the response
// is a trap with the crash-triage bundle attached.
func TestRetryExhaustionCarriesBundle(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, MaxRetries: 1, RetryBackoff: time.Millisecond})
	_, jr, _ := ts.submit(t, JobRequest{
		Tenant: "a", Kernel: "histogram", Fault: "job-panic@1,job-panic@2",
	})
	if jr.Status != StatusTrap || jr.Attempts != 2 {
		t.Fatalf("status %q after %d attempts, want trap after 2", jr.Status, jr.Attempts)
	}
	if jr.Trap == nil || jr.Trap.Kind != "worker-panic" {
		t.Fatalf("trap = %+v, want worker-panic", jr.Trap)
	}
	if jr.Bundle == nil {
		t.Fatal("exhausted retries carry no bundle")
	}
	if err := jr.Bundle.Validate(); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
}

// TestHostileTenantIsolation is the headline e2e: one tenant live-loops
// and panics, the other runs clean jobs throughout. The hostile tenant
// must never crash the daemon or perturb the clean tenant's results, its
// breaker must trip (shedding with 429), and after backing off it must
// recover through a successful probe.
func TestHostileTenantIsolation(t *testing.T) {
	ts := startServer(t, Config{
		Workers:           4,
		TenantMaxInflight: 2,
		TenantQueueDepth:  4,
		BreakerThreshold:  3,
		BreakerBackoff:    200 * time.Millisecond,
		BreakerMaxBackoff: time.Second,
		MaxRetries:        0, // hostile traps surface immediately
		RetryBackoff:      time.Millisecond,
		StepBudgetCap:     50e6,
		DeadlineCap:       5 * time.Second,
	})
	spin := spinImage(t)

	var wg sync.WaitGroup
	var cleanMu sync.Mutex
	var cleanCodes []uint64
	cleanErr := make(chan string, 1)

	// Clean tenant: steady stream of identical jobs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			code, jr, msg := ts.submit(t, JobRequest{Tenant: "bob", Kernel: "histogram", Threads: 2})
			if code != http.StatusOK || jr.Status != StatusOK {
				select {
				case cleanErr <- fmt.Sprintf("job %d: HTTP %d status %q (%s)", i, code, jr.Status, msg):
				default:
				}
				return
			}
			cleanMu.Lock()
			cleanCodes = append(cleanCodes, jr.ExitCode)
			cleanMu.Unlock()
		}
	}()

	// Hostile tenant: live-looping images (step-budget traps) and
	// injected worker panics, until the breaker sheds it.
	var trapped, shedded int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40 && shedded == 0; i++ {
			req := JobRequest{Tenant: "mallory", Image: spin, StepBudget: 20000}
			if i%2 == 1 {
				req = JobRequest{Tenant: "mallory", Kernel: "histogram", Fault: "job-panic@1"}
			}
			code, jr, _ := ts.submit(t, req)
			switch {
			case code == http.StatusTooManyRequests:
				shedded++
			case code == http.StatusOK && jr.Status == StatusTrap:
				trapped++
			case code == http.StatusOK && jr.Status == StatusOK:
				t.Errorf("hostile job %d unexpectedly succeeded", i)
			}
		}
	}()
	wg.Wait()

	select {
	case msg := <-cleanErr:
		t.Fatalf("clean tenant perturbed: %s", msg)
	default:
	}
	cleanMu.Lock()
	defer cleanMu.Unlock()
	if len(cleanCodes) != 8 {
		t.Fatalf("clean tenant finished %d/8 jobs", len(cleanCodes))
	}
	for _, c := range cleanCodes[1:] {
		if c != cleanCodes[0] {
			t.Fatalf("clean tenant results diverged: %v", cleanCodes)
		}
	}
	if trapped < 3 {
		t.Fatalf("hostile tenant trapped %d times, want >= breaker threshold 3", trapped)
	}
	if shedded == 0 {
		t.Fatal("hostile tenant was never shed: breaker did not trip")
	}
	if got := ts.counter("serve.breaker_trips"); got == 0 {
		t.Fatal("serve.breaker_trips = 0")
	}

	// Recovery: wait out the backoff (trip opened for 200ms; give it
	// margin), then a clean job from the ex-hostile tenant probes the
	// half-open breaker and closes it.
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		code, jr, _ := ts.submit(t, JobRequest{Tenant: "mallory", Kernel: "histogram"})
		if code == http.StatusOK && jr.Status == StatusOK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("hostile tenant never recovered after backing off")
	}
	if got := ts.counter("serve.breaker_recoveries"); got == 0 {
		t.Fatal("serve.breaker_recoveries = 0")
	}
	// Closed again: the next job flows without shedding.
	if code, jr, _ := ts.submit(t, JobRequest{Tenant: "mallory", Kernel: "histogram"}); code != http.StatusOK || jr.Status != StatusOK {
		t.Fatalf("post-recovery job: HTTP %d status %q", code, jr.Status)
	}
}

// TestAdmissionLimits drives the queue and tenant bounds: with one worker
// occupied by a deadline-bounded live-looper, the global queue and the
// per-tenant depth both shed with 429 + Retry-After.
func TestAdmissionLimits(t *testing.T) {
	ts := startServer(t, Config{
		Workers:           1,
		QueueDepth:        1,
		TenantMaxInflight: 1,
		TenantQueueDepth:  1,
		BreakerThreshold:  100, // keep the breaker out of this test
		MaxRetries:        0,
		DeadlineCap:       10 * time.Second,
	})
	spin := spinImage(t)
	slow := JobRequest{Tenant: "slow", Image: spin, DeadlineMS: 1500}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the only worker for ~1.5s, then traps on deadline.
		ts.submit(t, slow)
	}()

	// Wait until the slow job is running.
	waitFor(t, func() bool {
		return ts.scope.Snapshot().Gauges["serve.running"] == 1
	})

	// Second job queues (global queue slot 2 of workers+depth = 2).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts.submit(t, JobRequest{Tenant: "q2", Image: spin, DeadlineMS: 200})
	}()
	waitFor(t, func() bool {
		return ts.scope.Snapshot().Gauges["serve.queue_depth"] == 2
	})

	// Global queue is now full: a third tenant is shed.
	code, _, msg := ts.submit(t, JobRequest{Tenant: "q3", Kernel: "histogram"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue overflow: HTTP %d (%s), want 429", code, msg)
	}
	if got := ts.counter("serve.shed_queue"); got == 0 {
		t.Fatal("serve.shed_queue = 0")
	}

	// The slow tenant already has 1 admitted job = its depth limit.
	code, _, msg = ts.submit(t, JobRequest{Tenant: "slow", Kernel: "histogram"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant overflow: HTTP %d (%s), want 429", code, msg)
	}
	if got := ts.counter("serve.shed_tenant"); got == 0 {
		t.Fatal("serve.shed_tenant = 0")
	}
	wg.Wait()
}

// TestRetryAfterHeader pins the backpressure contract scripted clients
// rely on: 429 responses carry a positive integer Retry-After.
func TestRetryAfterHeader(t *testing.T) {
	ts := startServer(t, Config{
		Workers: 1, QueueDepth: 1, TenantQueueDepth: 1, BreakerThreshold: 100,
		DeadlineCap: 10 * time.Second,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts.submit(t, JobRequest{Tenant: "slow", Image: spinImage(t), DeadlineMS: 800})
	}()
	waitFor(t, func() bool {
		return ts.scope.Snapshot().Gauges["serve.running"] == 1
	})
	body, _ := json.Marshal(JobRequest{Tenant: "slow", Kernel: "histogram"})
	resp, err := http.Post(ts.hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}
	<-done
}

// TestDrain: draining stops admission with 503 while in-flight jobs run
// to completion.
func TestDrain(t *testing.T) {
	ts := startServer(t, Config{Workers: 1, DeadlineCap: 10 * time.Second})
	type result struct {
		jr  JobResponse
		hty int
	}
	got := make(chan result, 1)
	go func() {
		code, jr, _ := ts.submit(t, JobRequest{Tenant: "a", Image: spinImage(t), DeadlineMS: 700})
		got <- result{jr, code}
	}()
	waitFor(t, func() bool {
		return ts.scope.Snapshot().Gauges["serve.running"] == 1
	})
	drained := make(chan error, 1)
	go func() { drained <- ts.Drain() }()

	// New work is refused while the drain waits on the in-flight job.
	waitFor(t, func() bool {
		code, _, _ := ts.submit(t, JobRequest{Tenant: "b", Kernel: "histogram"})
		return code == http.StatusServiceUnavailable
	})

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-got
	// The in-flight job finished normally (deadline trap is its result).
	if r.hty != http.StatusOK || r.jr.Status != StatusTrap {
		t.Fatalf("in-flight job: HTTP %d status %q, want 200/trap", r.hty, r.jr.Status)
	}
}

// TestCacheCorruptionRecovery is the acceptance path: a daemon populates
// the persistent cache, bytes are flipped in the journal, and the
// restarted daemon detects the damage by checksum, retranslates, and
// produces results identical to the cold run.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	job := JobRequest{Tenant: "a", Kernel: "histogram", Threads: 2}

	open := func() (*testServer, *transcache.Cache) {
		cache, err := transcache.Open(path, transcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return startServer(t, Config{Workers: 2, Cache: cache}), cache
	}

	// Cold run populates the journal.
	ts1, _ := open()
	_, cold, _ := ts1.submit(t, job)
	if cold.Status != StatusOK || cold.CacheMisses == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold run: %+v", cold)
	}
	if err := ts1.Drain(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one journaled entry's payload (keep line framing).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too small to corrupt: %d lines", len(lines))
	}
	mid := lines[len(lines)/2]
	// Lengthen the checksum field: still valid JSON, still a complete
	// line, but the sum can never verify.
	flipped := bytes.Replace(mid, []byte(`"sum":"`), []byte(`"sum":"x`), 1)
	if bytes.Equal(flipped, mid) {
		t.Fatalf("journal line carries no sum field: %q", mid)
	}
	lines[len(lines)/2] = flipped
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm-but-damaged run: checksum catches the flip, that block
	// retranslates, the result is byte-identical to the cold run.
	ts2, cache2 := open()
	if st := cache2.Stats(); st.CorruptSkipped == 0 {
		t.Fatalf("reopen did not flag the corrupt entry: %+v", st)
	}
	_, warm, _ := ts2.submit(t, job)
	if warm.Status != StatusOK {
		t.Fatalf("warm run status %q", warm.Status)
	}
	if warm.ExitCode != cold.ExitCode {
		t.Fatalf("warm exit %d != cold exit %d", warm.ExitCode, cold.ExitCode)
	}
	if warm.CacheMisses == 0 {
		t.Fatal("corrupt entry did not force a retranslation")
	}
	if warm.CacheHits == 0 {
		t.Fatal("intact entries were not served from cache")
	}
	if err := ts2.Drain(); err != nil {
		t.Fatal(err)
	}

	// Fully healed: a third daemon serves everything from cache.
	ts3, _ := open()
	_, healed, _ := ts3.submit(t, job)
	if healed.Status != StatusOK || healed.ExitCode != cold.ExitCode {
		t.Fatalf("healed run: %+v", healed)
	}
	if healed.CacheMisses != 0 {
		t.Fatalf("healed run still missed %d blocks", healed.CacheMisses)
	}
	if err := ts3.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedCacheCorruption drives the same path through the fault
// site: the server-level injector corrupts the Nth journal append, and a
// restart detects it.
func TestInjectedCacheCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")

	inj := faults.NewInjector(1)
	inj.Arm(faults.SiteCacheCorrupt, 1, faults.TrapMiscompile)
	cache, err := transcache.Open(path, transcache.Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, Config{Workers: 1, Cache: cache})
	_, cold, _ := ts.submit(t, JobRequest{Tenant: "a", Kernel: "histogram"})
	if cold.Status != StatusOK {
		t.Fatalf("cold run: %+v", cold)
	}
	if err := ts.Drain(); err != nil {
		t.Fatal(err)
	}

	cache2, err := transcache.Open(path, transcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache2.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	ts2 := startServer(t, Config{Workers: 1, Cache: cache2})
	_, warm, _ := ts2.submit(t, JobRequest{Tenant: "a", Kernel: "histogram"})
	if warm.Status != StatusOK || warm.ExitCode != cold.ExitCode {
		t.Fatalf("warm run: %+v (cold exit %d)", warm, cold.ExitCode)
	}
	if warm.CacheMisses != 1 {
		t.Fatalf("warm CacheMisses = %d, want exactly the corrupted entry", warm.CacheMisses)
	}
	if err := ts2.Drain(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
