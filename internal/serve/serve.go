// Package serve is risottod's engine: a fault-isolated multi-tenant
// translation service over the DBT stack. Guests are assumed hostile —
// the daemon's contract is that no submitted image can kill it, starve
// other tenants, or corrupt their results. The isolation layers, outside
// in:
//
//	admission   bounded global queue + per-tenant queue-depth and
//	            concurrency limits; overflow is shed with 429 and a
//	            Retry-After hint instead of queueing unboundedly.
//	breaker     a per-tenant circuit breaker trips after N consecutive
//	            trap-terminated jobs and sheds that tenant with
//	            exponential backoff + single-probe recovery — the
//	            selfheal quarantine pattern applied to tenants.
//	watchdog    every job runs under step-budget and deadline caps with
//	            the selfheal tier ladder on, so runaway or miscompiled
//	            guests degrade into structured traps, and worker panics
//	            are recovered into faults.TrapWorkerPanic.
//	retry       transiently-trapped jobs (cache exhaustion, worker
//	            panics) retry with jittered backoff; the final failure
//	            carries the crash-triage selfheal.Bundle.
//	cache       an optional persistent translation cache
//	            (internal/transcache) shares verified IR across jobs and
//	            daemon restarts; corrupt entries degrade to
//	            retranslation, never into executions.
package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/transcache"
)

// Config tunes the daemon. The zero value is unusable; Default() fills
// every knob with serviceable settings and callers override from flags.
type Config struct {
	// Workers bounds concurrently executing jobs.
	Workers int
	// QueueDepth bounds admitted-but-not-finished jobs beyond the worker
	// pool; a full queue sheds with 429.
	QueueDepth int
	// TenantMaxInflight bounds one tenant's concurrently running jobs.
	TenantMaxInflight int
	// TenantQueueDepth bounds one tenant's admitted (queued + running)
	// jobs.
	TenantQueueDepth int
	// BreakerThreshold trips a tenant's breaker after this many
	// consecutive trap-terminated jobs.
	BreakerThreshold int
	// BreakerBackoff is the first open interval; it doubles per failed
	// probe up to BreakerMaxBackoff.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// MaxRetries caps retries of transiently-trapped jobs (attempts =
	// 1 + MaxRetries).
	MaxRetries int
	// RetryBackoff is the base jittered delay between attempts.
	RetryBackoff time.Duration
	// StepBudgetCap and DeadlineCap bound what a job may request; a job
	// asking for 0 (or more than the cap) gets the cap.
	StepBudgetCap uint64
	DeadlineCap   time.Duration
	// MemSize is the per-job machine memory (0 = core's default 32 MiB).
	MemSize int
	// Cache, when non-nil, persists translations across jobs and
	// restarts.
	Cache *transcache.Cache
	// TierUp runs every job with the tier-up JIT: hot blocks promoted to
	// superblocks in background workers — the raw-speed knob for repeat
	// traffic. PromoteThreshold and SuperblockMax tune it (0 = core's
	// defaults).
	TierUp           bool
	PromoteThreshold int
	SuperblockMax    int
	// Obs is the root scope; the server instruments under a "serve"
	// child. Nil disables instrumentation.
	Obs *obs.Scope
	// Seed seeds retry jitter (0 = 1).
	Seed int64
}

// Default returns the serviceable baseline configuration.
func Default() Config {
	return Config{
		Workers:           4,
		QueueDepth:        64,
		TenantMaxInflight: 2,
		TenantQueueDepth:  8,
		BreakerThreshold:  3,
		BreakerBackoff:    100 * time.Millisecond,
		BreakerMaxBackoff: 10 * time.Second,
		MaxRetries:        2,
		RetryBackoff:      10 * time.Millisecond,
		StepBudgetCap:     200e6,
		DeadlineCap:       10 * time.Second,
	}
}

// withDefaults backfills zero fields from Default so tests and callers
// can set only what they care about.
func (c Config) withDefaults() Config {
	d := Default()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.TenantMaxInflight <= 0 {
		c.TenantMaxInflight = d.TenantMaxInflight
	}
	if c.TenantQueueDepth <= 0 {
		c.TenantQueueDepth = d.TenantQueueDepth
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = d.BreakerBackoff
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = d.BreakerMaxBackoff
	}
	if c.MaxRetries < 0 {
		// Negative is the "use the default" sentinel (flags can't leave
		// an int unset); an explicit 0 disables retries.
		c.MaxRetries = d.MaxRetries
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.StepBudgetCap == 0 {
		c.StepBudgetCap = d.StepBudgetCap
	}
	if c.DeadlineCap <= 0 {
		c.DeadlineCap = d.DeadlineCap
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// metrics is the server's obs surface (all under "serve.").
type metrics struct {
	jobs, jobsOK, jobsTrap, jobsError        *obs.Counter
	retries                                  *obs.Counter
	shedQueue, shedTenant, shedBreaker       *obs.Counter
	breakerTrips, breakerRecoveries, drained *obs.Counter
	queueDepth, running                      *obs.Gauge
}

// Server is the daemon engine. Build with New, mount Handler, stop with
// Drain.
type Server struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenant
	draining bool
	wg       sync.WaitGroup

	// queueSlots bounds admitted jobs (running + queued); workerSlots
	// bounds running jobs.
	queueSlots  chan struct{}
	workerSlots chan struct{}

	jobSeq uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	met metrics
}

// New builds a Server from cfg (zero fields backfilled from Default).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sc := cfg.Obs.Child("serve")
	s := &Server{
		cfg:         cfg,
		tenants:     make(map[string]*tenant),
		queueSlots:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workerSlots: make(chan struct{}, cfg.Workers),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		met: metrics{
			jobs:              sc.Counter("jobs"),
			jobsOK:            sc.Counter("jobs_ok"),
			jobsTrap:          sc.Counter("jobs_trap"),
			jobsError:         sc.Counter("jobs_error"),
			retries:           sc.Counter("retries"),
			shedQueue:         sc.Counter("shed_queue"),
			shedTenant:        sc.Counter("shed_tenant"),
			shedBreaker:       sc.Counter("shed_breaker"),
			breakerTrips:      sc.Counter("breaker_trips"),
			breakerRecoveries: sc.Counter("breaker_recoveries"),
			drained:           sc.Counter("drained"),
			queueDepth:        sc.Gauge("queue_depth"),
			running:           sc.Gauge("running"),
		},
	}
	return s
}

// Handler mounts the daemon API:
//
//	POST /v1/jobs      submit a job; the response carries the result
//	GET  /healthz      "ok" (200) or "draining" (503)
//	GET  /metrics      Prometheus exposition (obs)
//	GET  /debug/obs    JSON snapshot + trace spans (obs)
//	GET  /metrics.json bare snapshot JSON (obsvalidate's input schema)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.cfg.Obs.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/", obs.Handler(s.cfg.Obs))
	return mux
}

// httpError is the JSON error envelope for non-200 responses.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func shed(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, httpError{Error: msg})
}

// handleJobs is the submit path: decode → validate → admit → run → reply.
// The job runs synchronously; the HTTP response is the result. Admission
// failures reply 429 (+Retry-After), malformed requests 400, requests
// that decode but name unusable work 422, drain 503.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "tenant is required"})
		return
	}
	job, err := s.resolve(&req)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
		return
	}

	// Admission. Everything under one lock so Drain's draining flag and
	// wg.Add can never race (a handler past the check has its wg slot).
	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "draining"})
		return
	}
	tn := s.tenants[req.Tenant]
	if tn == nil {
		tn = &tenant{
			name:  req.Tenant,
			slots: make(chan struct{}, s.cfg.TenantMaxInflight),
		}
		s.tenants[req.Tenant] = tn
	}
	if ok, wait := tn.admit(now, s.cfg); !ok {
		s.mu.Unlock()
		s.met.shedBreaker.Inc()
		shed(w, wait, fmt.Sprintf("tenant %s: circuit breaker open", req.Tenant))
		return
	}
	if tn.inflight >= s.cfg.TenantQueueDepth {
		// Undo a half-open probe claim: this job never ran.
		if tn.state == breakerHalfOpen {
			tn.probing = false
		}
		s.mu.Unlock()
		s.met.shedTenant.Inc()
		shed(w, s.cfg.RetryBackoff, fmt.Sprintf("tenant %s: queue depth limit", req.Tenant))
		return
	}
	select {
	case s.queueSlots <- struct{}{}:
	default:
		if tn.state == breakerHalfOpen {
			tn.probing = false
		}
		s.mu.Unlock()
		s.met.shedQueue.Inc()
		shed(w, s.cfg.RetryBackoff, "job queue full")
		return
	}
	tn.inflight++
	s.jobSeq++
	id := s.jobSeq
	s.wg.Add(1)
	s.mu.Unlock()

	s.met.jobs.Inc()
	s.met.queueDepth.Add(1)

	// Tenant slot before worker slot: a tenant over its concurrency
	// limit waits in its own lane and cannot hold a worker hostage.
	tn.slots <- struct{}{}
	s.workerSlots <- struct{}{}
	s.met.running.Add(1)

	resp := s.runJob(&req, job, id)

	s.met.running.Add(-1)
	<-s.workerSlots
	<-tn.slots
	s.met.queueDepth.Add(-1)
	<-s.queueSlots

	trapped := resp.Status == StatusTrap
	s.mu.Lock()
	tn.inflight--
	tripped, recovered := tn.record(trapped, time.Now(), s.cfg)
	s.mu.Unlock()
	s.wg.Done()
	if tripped {
		s.met.breakerTrips.Inc()
	}
	if recovered {
		s.met.breakerRecoveries.Inc()
	}
	switch resp.Status {
	case StatusOK:
		s.met.jobsOK.Inc()
	case StatusTrap:
		s.met.jobsTrap.Inc()
	default:
		s.met.jobsError.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// Drain stops admission, waits for in-flight jobs, and closes the cache
// journal. Idempotent; safe to call while requests are arriving.
func (s *Server) Drain() error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.wg.Wait()
	if already {
		return nil
	}
	s.met.drained.Inc()
	if s.cfg.Cache != nil {
		return s.cfg.Cache.Close()
	}
	return nil
}

// jitter returns d plus up to d of seeded random spread.
func (s *Server) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return d + time.Duration(s.rng.Int63n(int64(d)+1))
}

// retryable reports whether a trap kind is transient: worth retrying on
// the theory the next attempt may not hit it (one-shot injected faults,
// cache pressure), as opposed to deterministic guest behavior (budget
// expiry, decode faults) that would just fail again.
func retryable(k faults.TrapKind) bool {
	return k == faults.TrapCacheExhausted || k == faults.TrapWorkerPanic
}
