package explore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/models/opref"
	"repro/internal/opcheck"
)

func run(t *testing.T, p *litmus.Program, cfg Config) *Result {
	t.Helper()
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("explore %s: %v", p.Name, err)
	}
	return res
}

// TestDPORReachesAllAllowedOutcomes: exhaustive exploration against the
// machine's exact axiomatic twin must cover the allowed set completely —
// including the weak outcomes of the unfenced shapes — with zero
// violations. This is the two-sided correspondence the one-sided opcheck
// sweep cannot establish.
func TestDPORReachesAllAllowedOutcomes(t *testing.T) {
	for _, p := range []*litmus.Program{
		litmus.MP(), litmus.SB(), litmus.LB(), litmus.TwoPlusTwoW(),
	} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := run(t, p, Config{Mode: ModeDPOR})
			if len(res.Violations) > 0 {
				t.Fatalf("violations: %+v", res.Violations[0])
			}
			if !res.Full() {
				t.Fatalf("coverage %d/%d (partial=%v %s), observed %v",
					res.Covered, res.Allowed, res.Partial, res.PartialReason, res.Observed)
			}
		})
	}
}

// TestDPORFencedShapesReachOnlySC: the fenced variants' allowed sets are
// the SC sets, and the machine must both cover them and produce nothing
// else.
func TestDPORFencedShapesReachOnlySC(t *testing.T) {
	for _, p := range []*litmus.Program{litmus.SBFenced(), litmus.MPArmDMB()} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := run(t, p, Config{Mode: ModeDPOR})
			if len(res.Violations) > 0 {
				t.Fatalf("non-SC outcome reached: %+v", res.Violations[0])
			}
			if !res.Full() {
				t.Fatalf("coverage %d/%d, observed %v", res.Covered, res.Allowed, res.Observed)
			}
			if res.Allowed != 3 {
				t.Fatalf("fenced shape has %d allowed outcomes, want the 3 SC ones", res.Allowed)
			}
		})
	}
}

// TestDPORBeatsNaive: with the same state budget, the sleep-set reduction
// must reach full coverage in measurably fewer states than the naive
// enumeration (which, on SB, cannot finish inside the budget at all).
func TestDPORBeatsNaive(t *testing.T) {
	p := litmus.SB()
	budget := 200000
	dpor := run(t, p, Config{Mode: ModeDPOR, MaxStates: budget})
	naive := run(t, p, Config{Mode: ModeNaive, MaxStates: budget})
	if dpor.Partial {
		t.Fatalf("DPOR did not finish within %d states", budget)
	}
	if naive.States <= dpor.States {
		t.Fatalf("naive explored %d states, DPOR %d — no reduction measured", naive.States, dpor.States)
	}
	t.Logf("SB: naive %d states (partial=%v), DPOR %d states, %d pruned, %d leaves",
		naive.States, naive.Partial, dpor.States, dpor.Pruned, dpor.Runs)
}

// TestWalkSoundOnCorpus: every random-walk outcome across the .lit corpus
// (16 seeds per test) must be admitted by the op-ref model — the at-scale
// soak of the acceptance criteria, in miniature.
func TestWalkSoundOnCorpus(t *testing.T) {
	files, err := filepath.Glob("../models/*/testdata/*.lit")
	if err != nil || len(files) == 0 {
		t.Fatalf("no .lit corpus found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := litmus.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			res := run(t, pt.Program, Config{Mode: ModeWalk, Seeds: 16})
			if len(res.Violations) > 0 {
				v := res.Violations[0]
				t.Fatalf("operational outcome outside op-ref: %q (%s), trace %d decisions",
					v.Outcome, v.Reason, len(v.Trace))
			}
		})
	}
}

// TestWalkDeterministicPerSeed: the same seed must produce the same
// run — the property that makes the soak reproducible without traces.
func TestWalkDeterministicPerSeed(t *testing.T) {
	a := run(t, litmus.SB(), Config{Mode: ModeWalk, Seeds: 8, Seed: 7})
	b := run(t, litmus.SB(), Config{Mode: ModeWalk, Seeds: 8, Seed: 7})
	if strings.Join(outcomes(a), "|") != strings.Join(outcomes(b), "|") || a.States != b.States {
		t.Fatalf("same-seed walks diverged: %v/%d vs %v/%d", a.Observed, a.States, b.Observed, b.States)
	}
}

func outcomes(r *Result) []string {
	var s []string
	for _, o := range r.Observed {
		s = append(s, string(o))
	}
	return s
}

// TestReplayByteIdentity: a recorded trace, replayed, must re-encode to
// the identical bytes — for a violation-free walk trace and for a
// budget-cut partial trace alike.
func TestReplayByteIdentity(t *testing.T) {
	p := litmus.SB()

	// Manufacture a complete trace by walking to a leaf and recording.
	e := &explorer{cfg: Config{}, observed: make(map[litmus.Outcome]bool), res: &Result{Test: p.Name, Mode: ModeWalk}}
	c, err := opcheck.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	e.compiled = c
	allowed, err := litmus.Enumerate(p, opref.New(), litmus.WithWorkers(1), litmus.WithCache(litmus.NewCache()))
	if err != nil {
		t.Fatal(err)
	}
	e.allowed = allowed
	m, err := e.newMachine()
	if err != nil {
		t.Fatal(err)
	}
	rng := splitmix{state: 42}
	var decisions []Decision
	for {
		ts := enabled(m)
		if len(ts) == 0 {
			break
		}
		tr := ts[rng.intn(len(ts))]
		decisions = append(decisions, tr.d)
		if _, err := e.apply(m, tr); err != nil {
			t.Fatal(err)
		}
	}
	o, err := c.Outcome(m)
	if err != nil {
		t.Fatal(err)
	}
	verdict := VerdictViolation
	if allowed[o] {
		verdict = VerdictAllowed
	}
	orig := Trace{
		Header:    TraceHeader{Format: TraceFormatV1, Test: p.Name, Mode: string(ModeWalk)},
		Decisions: decisions,
		Final:     TraceFinal{Outcome: string(o), Verdict: verdict, Steps: len(decisions)},
	}
	origBytes, err := EncodeTrace(orig)
	if err != nil {
		t.Fatal(err)
	}

	decoded, err := DecodeTrace(bytes.NewReader(origBytes))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(p, decoded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	replayBytes, err := EncodeTrace(*replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(origBytes, replayBytes) {
		t.Fatalf("replay not byte-identical:\n--- recorded\n%s--- replayed\n%s", origBytes, replayBytes)
	}

	// Partial trace: cut the same decisions short; replay must report
	// partial with the same byte rendering.
	cutN := len(decisions) / 2
	partial := Trace{
		Header:    orig.Header,
		Decisions: decisions[:cutN],
		Final:     TraceFinal{Verdict: VerdictPartial, Steps: cutN},
	}
	partialBytes, err := EncodeTrace(partial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Replay(p, &partial, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rpBytes, err := EncodeTrace(*rp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(partialBytes, rpBytes) {
		t.Fatalf("partial replay not byte-identical:\n%s\nvs\n%s", partialBytes, rpBytes)
	}
}

// TestBudgetYieldsPartialNotHang: a tiny state budget must cut the
// exploration with a partial verdict and a replayable trace, never an
// error or a hang.
func TestBudgetYieldsPartialNotHang(t *testing.T) {
	res := run(t, litmus.SB(), Config{Mode: ModeDPOR, MaxStates: 5})
	if !res.Partial {
		t.Fatal("5-state budget did not yield a partial verdict")
	}
	tr, ok := res.FirstTrace()
	if !ok {
		t.Fatal("partial result carries no trace")
	}
	if tr.Final.Verdict != VerdictPartial {
		t.Fatalf("trace verdict %q, want partial", tr.Final.Verdict)
	}
	if _, err := Replay(litmus.SB(), &tr, Config{}); err != nil {
		t.Fatalf("partial trace does not replay: %v", err)
	}
}

// TestSoakFileResume: killing a soak between records and resuming must
// produce the same merged record set as an uninterrupted run, and a
// config change must refuse to resume.
func TestSoakFileResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "soak.jsonl")
	tests := []*litmus.Program{litmus.MP(), litmus.SB(), litmus.LB()}
	cfg := Config{Mode: ModeWalk, Seeds: 4}

	// First leg: only the first test.
	if _, err := RunFile(tests[:1], cfg, path, false); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"test":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	soak, err := RunFile(tests, cfg, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if soak.Resumed != 1 || soak.Tests != 2 {
		t.Fatalf("resume ran %d tests, skipped %d; want 2 and 1", soak.Tests, soak.Resumed)
	}
	data, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	_, recs, err := ReadSoak(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("merged file has %d records, want 3: %+v", len(recs), recs)
	}
	for i, p := range tests {
		if recs[i].Test != p.Name {
			t.Fatalf("record %d is %q, want %q", i, recs[i].Test, p.Name)
		}
	}

	other := cfg
	other.Seeds = 5
	if _, err := RunFile(tests, other, path, true); err == nil {
		t.Fatal("resume with a different config must be refused")
	}
}
