// Package explore is the operational exploration engine: it drives the
// simulated machine's weak-memory mode through its nondeterminism —
// store-buffer drains and scheduling, exposed by internal/machine as
// first-class transitions — and checks every final state differentially
// against the machine's exact axiomatic twin (internal/models/opref).
//
// The state space is a transition system over compiled litmus programs
// (internal/opcheck): from any state, each non-halted CPU offers one
// "execute" transition (run that CPU up to and including its next
// memory-visible instruction), and each coherence-chain head in each
// store buffer offers one "drain" transition (retire exactly that
// buffered store). Three drivers cover it:
//
//   - walk: seeded random walks, one outcome sample per seed — the soak
//     regime, cheap enough to ride along every campaign test;
//   - dpor: exhaustive depth-first enumeration with sleep-set dynamic
//     partial-order reduction (commuting transitions — different CPUs or
//     non-overlapping drains, disjoint global footprints — are explored
//     in one order only), plus a naive variant with the reduction off
//     for calibration;
//   - replay: re-execution of a recorded decision sequence, reproducing
//     a prior run byte-identically (trace.go).
//
// Any operational outcome the axiomatic model forbids is a hard failure
// carrying its decision trace; budget or deadline exhaustion degrades to
// a partial-coverage verdict (with the cut-off path as a trace), never a
// hang. Coverage of the allowed outcome set is the two-sided metric the
// one-sided opcheck soundness sweep cannot give.
package explore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/litmus"
	"repro/internal/machine"
	"repro/internal/memmodel"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/opcheck"
)

// Mode selects the exploration driver.
type Mode string

// The exploration modes. ModeNaive is ModeDPOR with the sleep-set
// reduction disabled — same search, no pruning — kept as a first-class
// mode so the reduction's win is measurable.
const (
	ModeWalk  Mode = "walk"
	ModeDPOR  Mode = "dpor"
	ModeNaive Mode = "naive"
)

// Config parameterizes one exploration.
type Config struct {
	// Mode selects the driver; empty defaults to ModeWalk.
	Mode Mode
	// Seeds is the number of random walks (walk mode); 0 = 16.
	Seeds int
	// Seed offsets the walk seed sequence (walk i uses Seed+i).
	Seed int64
	// MaxStates bounds the total transitions executed by one exploration
	// (all modes); exhaustion yields a partial verdict. 0 = 1<<20.
	MaxStates int
	// StepBudget bounds a single run's transition count (walk mode: a
	// livelocked program must not hang the soak). 0 = 4096.
	StepBudget int
	// MaxInvisible bounds the instructions one execute-transition may
	// retire before reaching a memory access or halt (spin watchdog,
	// the PR-2 budget-trap discipline at transition granularity). 0 = 10000.
	MaxInvisible int
	// Deadline is the wall-clock watchdog for the whole exploration;
	// 0 disables it. Expiry yields a partial verdict.
	Deadline time.Duration
	// Model names the axiomatic reference for the differential; empty
	// defaults to "op-ref", the machine's exact twin (full coverage is
	// only a meaningful demand against it).
	Model string
	// Obs receives counters and the coverage gauge under its "explore"
	// child scope; nil disables instrumentation.
	Obs *obs.Scope
}

func (cfg Config) mode() Mode {
	if cfg.Mode == "" {
		return ModeWalk
	}
	return cfg.Mode
}

func (cfg Config) seeds() int {
	if cfg.Seeds <= 0 {
		return 16
	}
	return cfg.Seeds
}

func (cfg Config) maxStates() int {
	if cfg.MaxStates <= 0 {
		return 1 << 20
	}
	return cfg.MaxStates
}

func (cfg Config) stepBudget() int {
	if cfg.StepBudget <= 0 {
		return 4096
	}
	return cfg.StepBudget
}

func (cfg Config) maxInvisible() int {
	if cfg.MaxInvisible <= 0 {
		return 10000
	}
	return cfg.MaxInvisible
}

func (cfg Config) modelName() string {
	if cfg.Model == "" {
		return "op-ref"
	}
	return cfg.Model
}

func (cfg Config) model() (memmodel.Model, error) {
	return models.Default().Lookup(cfg.modelName())
}

// Hash identifies the configuration for soak-file resume validation:
// every knob that changes what a record means.
func (cfg Config) Hash() string {
	return fmt.Sprintf("%s/s%d+%d/ms%d/sb%d/mi%d/%s",
		cfg.mode(), cfg.seeds(), cfg.Seed, cfg.maxStates(), cfg.stepBudget(), cfg.maxInvisible(), cfg.modelName())
}

// Decision is one recorded nondeterministic choice — the unit of the
// replay trace format.
type Decision struct {
	// Op is "x" (execute CPU up to its next visible access) or "d"
	// (drain one buffered store).
	Op string `json:"op"`
	// CPU is the acting CPU.
	CPU int `json:"cpu"`
	// Seq, for drains, is the global sequence number of the drained
	// store — stable across buffer index shifts, so a trace replays
	// against live buffers rather than positions.
	Seq uint64 `json:"seq,omitempty"`
}

func (d Decision) key() string {
	if d.Op == opDrain {
		return fmt.Sprintf("d%d.%d", d.CPU, d.Seq)
	}
	return fmt.Sprintf("x%d", d.CPU)
}

const (
	opExec  = "x"
	opDrain = "d"
)

// Violation is an operational behaviour the axiomatic reference forbids
// — or a run that trapped — with the decision sequence reproducing it.
type Violation struct {
	// Outcome is the offending final state ("" when the run trapped
	// before completing).
	Outcome litmus.Outcome
	// Trace replays the run (see Replay).
	Trace []Decision
	// Reason explains the failure.
	Reason string
}

// Result aggregates one exploration of one program.
type Result struct {
	// Test and Mode echo the inputs.
	Test string
	Mode Mode
	// Runs counts completed executions (walk runs or enumeration
	// leaves); States counts transitions executed (each distinct
	// extension once — DPOR prefix replays are not re-counted); Pruned
	// counts sleep-set cut branches.
	Runs, States, Pruned int
	// Allowed is the axiomatic reference's outcome count; Covered is
	// how many of them the exploration observed. Observed lists every
	// operational outcome seen, sorted.
	Allowed, Covered int
	Observed         []litmus.Outcome
	// Violations holds outcomes the reference forbids, with traces.
	Violations []Violation
	// Partial reports a budget or deadline cut the exploration short;
	// PartialTrace is the decision path at the cut (replayable), and
	// PartialReason says which budget.
	Partial       bool
	PartialReason string
	PartialTrace  []Decision
	// Elapsed is wall time.
	Elapsed time.Duration
}

// Coverage returns Covered/Allowed as a percentage (100 for an empty
// allowed set — nothing to miss).
func (r *Result) Coverage() float64 {
	if r.Allowed == 0 {
		return 100
	}
	return 100 * float64(r.Covered) / float64(r.Allowed)
}

// Full reports complete coverage with no violations and no cut.
func (r *Result) Full() bool {
	return !r.Partial && len(r.Violations) == 0 && r.Covered == r.Allowed
}

// Run explores p under cfg and checks it differentially against the
// configured axiomatic reference. Programs outside the compilable subset
// return opcheck.ErrUnsupported (callers skip, as with opcheck itself).
func Run(p *litmus.Program, cfg Config) (*Result, error) {
	c, err := opcheck.Compile(p)
	if err != nil {
		return nil, err
	}
	m, err := cfg.model()
	if err != nil {
		return nil, err
	}
	allowed, err := litmus.Enumerate(p, m, litmus.WithWorkers(1), litmus.WithCache(litmus.NewCache()))
	if err != nil {
		return nil, fmt.Errorf("explore: enumerating %q under %s: %w", p.Name, m.Name(), err)
	}

	e := &explorer{
		cfg:      cfg,
		compiled: c,
		allowed:  allowed,
		observed: make(map[litmus.Outcome]bool),
		res:      &Result{Test: p.Name, Mode: cfg.mode()},
		sc:       cfg.Obs.Child("explore"),
	}
	start := time.Now()
	if cfg.Deadline > 0 {
		e.deadline = start.Add(cfg.Deadline)
	}
	switch cfg.mode() {
	case ModeWalk:
		e.runWalks()
	case ModeDPOR, ModeNaive:
		e.runDFS(cfg.mode() == ModeNaive)
	default:
		return nil, fmt.Errorf("explore: unknown mode %q", cfg.Mode)
	}
	e.res.Elapsed = time.Since(start)
	e.finish()
	return e.res, nil
}

// explorer is the shared state of one Run.
type explorer struct {
	cfg      Config
	compiled *opcheck.Compiled
	allowed  litmus.OutcomeSet
	observed map[litmus.Outcome]bool
	res      *Result
	sc       *obs.Scope
	deadline time.Time
}

// cut reports whether a global budget has expired, recording the partial
// verdict (first reason wins) with the current decision path.
func (e *explorer) cut(path []Decision) bool {
	var reason string
	switch {
	case e.res.States >= e.cfg.maxStates():
		reason = fmt.Sprintf("state budget %d exhausted", e.cfg.maxStates())
	case !e.deadline.IsZero() && time.Now().After(e.deadline):
		reason = fmt.Sprintf("deadline %v exceeded", e.cfg.Deadline)
	default:
		return false
	}
	if !e.res.Partial {
		e.res.Partial = true
		e.res.PartialReason = reason
		e.res.PartialTrace = append([]Decision(nil), path...)
	}
	return true
}

// leaf records one completed run's outcome, checking it against the
// allowed set; a forbidden outcome is a violation carrying its trace.
func (e *explorer) leaf(m *machine.Machine, path []Decision) error {
	o, err := e.compiled.Outcome(m)
	if err != nil {
		return err
	}
	e.res.Runs++
	e.observed[o] = true
	if !e.allowed[o] {
		e.res.Violations = append(e.res.Violations, Violation{
			Outcome: o,
			Trace:   append([]Decision(nil), path...),
			Reason:  fmt.Sprintf("outcome %q not allowed by the axiomatic reference", o),
		})
	}
	return nil
}

// trapped records a run that faulted mid-execution (decode/fetch trap,
// invisible-instruction budget): always a violation — the reference
// model has no trapping executions.
func (e *explorer) trapped(path []Decision, err error) {
	e.res.Violations = append(e.res.Violations, Violation{
		Trace:  append([]Decision(nil), path...),
		Reason: err.Error(),
	})
}

func (e *explorer) finish() {
	r := e.res
	for o := range e.observed {
		r.Observed = append(r.Observed, o)
		if e.allowed[o] {
			r.Covered++
		}
	}
	sort.Slice(r.Observed, func(i, j int) bool { return r.Observed[i] < r.Observed[j] })
	r.Allowed = len(e.allowed)
	e.sc.Counter("runs").Add(uint64(r.Runs))
	e.sc.Counter("states").Add(uint64(r.States))
	e.sc.Counter("sleep_pruned").Add(uint64(r.Pruned))
	e.sc.Counter("violations").Add(uint64(len(r.Violations)))
	if r.Partial {
		e.sc.Counter("partial").Inc()
	}
	e.sc.Gauge("coverage_pct").Set(int64(r.Coverage()))
}

// --- Transition engine --------------------------------------------------------

// transition is one enabled move plus, after execution, its footprint.
type transition struct {
	d Decision
}

// footprint is what a transition touched, for the independence relation:
// the acting CPU, the kind of move, and its globally visible memory
// accesses (Local accesses — buffered stores, forwarded loads — are
// invisible to other CPUs and excluded from conflict detection).
type footprint struct {
	cpu   int
	drain bool
	accs  []machine.MemAccess
}

// independent reports that two transitions commute. Same-CPU moves are
// ordered by the program/buffer except two drains of distinct coherence
// chains; across CPUs, moves commute unless their global footprints
// conflict (overlapping addresses, at least one write).
func independent(a, b footprint) bool {
	if a.cpu == b.cpu && !(a.drain && b.drain) {
		return false
	}
	for _, x := range a.accs {
		for _, y := range b.accs {
			if !x.Write && !y.Write {
				continue
			}
			if x.Addr < y.Addr+uint64(y.Size) && y.Addr < x.Addr+uint64(x.Size) {
				return false
			}
		}
	}
	return true
}

// newMachine builds a fresh weak-mode machine with no chooser: stores
// buffer and forward but drain only through explicit transitions — the
// engine owns every choice.
func (e *explorer) newMachine() (*machine.Machine, error) {
	m, err := e.compiled.NewMachine(nil)
	if err != nil {
		return nil, err
	}
	m.RecordAccesses(true)
	return m, nil
}

// enabled lists the state's transitions in deterministic order: execute
// per non-halted CPU (ascending), then drains per CPU per coherence-chain
// head (buffer order). Empty means every CPU halted (halting flushes, so
// no drain can outlive its CPU).
func enabled(m *machine.Machine) []transition {
	var ts []transition
	for _, c := range m.CPUs {
		if !c.Halted {
			ts = append(ts, transition{d: Decision{Op: opExec, CPU: c.ID}})
		}
	}
	for _, c := range m.CPUs {
		buf := m.WeakBuffer(c.ID)
		for _, h := range m.WeakDrainHeads(c.ID) {
			ts = append(ts, transition{d: Decision{Op: opDrain, CPU: c.ID, Seq: buf[h].Seq}})
		}
	}
	return ts
}

// apply executes one transition and returns its footprint. An execute
// transition retires instructions until one performs a memory access or
// the CPU halts, bounded by MaxInvisible (a pure-register spin must trap,
// not hang). A drain transition retires the store with the recorded
// sequence number (resolved against the live buffer, since indices shift).
func (e *explorer) apply(m *machine.Machine, t transition) (footprint, error) {
	fp := footprint{cpu: t.d.CPU, drain: t.d.Op == opDrain}
	if t.d.CPU < 0 || t.d.CPU >= len(m.CPUs) {
		return fp, fmt.Errorf("explore: decision names CPU %d of %d", t.d.CPU, len(m.CPUs))
	}
	c := m.CPUs[t.d.CPU]
	if fp.drain {
		idx := -1
		for i, p := range m.WeakBuffer(c.ID) {
			if p.Seq == t.d.Seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fp, fmt.Errorf("explore: drain of store seq %d not in CPU %d's buffer", t.d.Seq, c.ID)
		}
		if err := m.DrainWeak(c, idx); err != nil {
			return fp, err
		}
		fp.accs = globalOnly(m.TakeAccesses())
		return fp, nil
	}
	if c.Halted {
		return fp, fmt.Errorf("explore: execute decision for halted CPU %d", c.ID)
	}
	for i := 0; i < e.cfg.maxInvisible(); i++ {
		if err := m.Step(c); err != nil {
			return fp, err
		}
		accs := m.TakeAccesses()
		if len(accs) > 0 {
			fp.accs = globalOnly(accs)
			return fp, nil
		}
		if c.Halted {
			return fp, nil
		}
	}
	return fp, fmt.Errorf("explore: CPU %d ran %d instructions without a memory access or halt", c.ID, e.cfg.maxInvisible())
}

func globalOnly(accs []machine.MemAccess) []machine.MemAccess {
	out := accs[:0]
	for _, a := range accs {
		if !a.Local {
			out = append(out, a)
		}
	}
	return out
}

// --- Random walk --------------------------------------------------------------

// splitmix is the same tiny PRNG the machine's RandomChooser uses: a
// single-word state, so a walk's position is its seed plus step count.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

// runWalks samples one outcome per seed: at every state, pick uniformly
// among the enabled transitions. Each walk is bounded by StepBudget and
// the global budgets; a cut walk contributes its partial trace and no
// outcome.
func (e *explorer) runWalks() {
	for i := 0; i < e.cfg.seeds(); i++ {
		rng := splitmix{state: uint64(e.cfg.Seed) + uint64(i)*0x9E3779B97F4A7C15}
		if !e.walk(&rng) {
			return
		}
	}
}

// walk runs one seeded walk; false means a global budget expired.
func (e *explorer) walk(rng *splitmix) bool {
	m, err := e.newMachine()
	if err != nil {
		e.trapped(nil, err)
		return true
	}
	var path []Decision
	for {
		if e.cut(path) {
			return false
		}
		ts := enabled(m)
		if len(ts) == 0 {
			if err := e.leaf(m, path); err != nil {
				e.trapped(path, err)
			}
			return true
		}
		if len(path) >= e.cfg.stepBudget() {
			// Per-run watchdog: record the cut path once, keep walking
			// other seeds (the global budgets still bound the soak).
			if !e.res.Partial {
				e.res.Partial = true
				e.res.PartialReason = fmt.Sprintf("walk step budget %d exhausted", e.cfg.stepBudget())
				e.res.PartialTrace = append([]Decision(nil), path...)
			}
			return true
		}
		t := ts[rng.intn(len(ts))]
		path = append(path, t.d)
		if _, err := e.apply(m, t); err != nil {
			e.trapped(path, err)
			return true
		}
		e.res.States++
	}
}
