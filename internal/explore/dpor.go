package explore

// Sleep-set dynamic partial-order reduction over the transition system of
// explore.go, as a stateless depth-first search: the machine is
// re-executed from its initial state along the decision prefix whenever
// the search backtracks (litmus programs are a few dozen transitions
// deep, so replay is cheaper than snapshotting every CPU at every node).
//
// The classical sleep-set rule prunes commuting interleavings without
// losing any final state: after the subtree below transition t is fully
// explored, t is put to sleep for its siblings; a child state inherits
// the sleeping transitions that are independent of the move that entered
// it. A state whose every enabled transition sleeps has only
// already-explored behaviours below it and is cut. Independence is the
// footprint relation of explore.go — different CPUs (or two drains of
// distinct coherence chains on one CPU) with disjoint globally-visible
// access sets. Footprints are recorded when a transition first executes;
// they are stable enough for the inheritance filter because an
// independent move cannot redirect another CPU's control flow (loads
// execute in order and invisible instructions touch no memory).
//
// Naive mode runs the identical search with the sleep sets disabled —
// every interleaving enumerated — so the reduction's state count is
// directly comparable.

// dnode is one frame of the DFS stack: a state's enabled transitions (in
// the deterministic enabled() order), its sleep set, and which branch is
// currently chosen below it.
type dnode struct {
	ts     []transition
	sleep  map[string]footprint
	chosen int
	fp     footprint
	// counted guards the States metric: a transition is counted when
	// first executed, not on each prefix replay.
	counted bool
}

// runDFS explores exhaustively, naive disabling the sleep-set reduction.
func (e *explorer) runDFS(naive bool) {
	var stack []*dnode
	path := func() []Decision {
		ds := make([]Decision, len(stack))
		for i, nd := range stack {
			ds[i] = nd.ts[nd.chosen].d
		}
		return ds
	}

	// backtrack puts the finished branch to sleep and advances the
	// deepest frame with an unexplored, non-sleeping sibling; false
	// means the whole tree is done.
	backtrack := func() bool {
		for len(stack) > 0 {
			nd := stack[len(stack)-1]
			if !naive {
				nd.sleep[nd.ts[nd.chosen].d.key()] = nd.fp
			}
			advanced := false
			for i := nd.chosen + 1; i < len(nd.ts); i++ {
				if _, asleep := nd.sleep[nd.ts[i].d.key()]; !asleep {
					nd.chosen = i
					nd.counted = false
					advanced = true
					break
				}
			}
			if advanced {
				return true
			}
			stack = stack[:len(stack)-1]
		}
		return false
	}

	for {
		// Re-execute the chosen prefix from the initial state.
		m, err := e.newMachine()
		if err != nil {
			e.trapped(nil, err)
			return
		}
		replayFailed := false
		for i, nd := range stack {
			fp, err := e.apply(m, nd.ts[nd.chosen])
			nd.fp = fp
			if err != nil {
				// Only a frontier transition can fail for the first time
				// (the machine is deterministic given the prefix), so this
				// is the just-advanced branch: record and back off.
				e.trapped(path()[:i+1], err)
				replayFailed = true
				break
			}
			if !nd.counted {
				e.res.States++
				nd.counted = true
			}
		}
		if replayFailed {
			if !backtrack() {
				return
			}
			continue
		}

		// Extend greedily to a leaf, pushing a frame per new state.
		for {
			if e.cut(path()) {
				return
			}
			ts := enabled(m)
			if len(ts) == 0 {
				if err := e.leaf(m, path()); err != nil {
					e.trapped(path(), err)
				}
				if !backtrack() {
					return
				}
				break
			}
			nd := &dnode{ts: ts, sleep: make(map[string]footprint)}
			if !naive && len(stack) > 0 {
				parent := stack[len(stack)-1]
				for k, ufp := range parent.sleep {
					if independent(ufp, parent.fp) {
						nd.sleep[k] = ufp
					}
				}
			}
			nd.chosen = -1
			for i := range ts {
				if _, asleep := nd.sleep[ts[i].d.key()]; !asleep {
					nd.chosen = i
					break
				}
			}
			if nd.chosen < 0 {
				// Every enabled transition sleeps: all behaviours below
				// were already explored along a commuted order.
				e.res.Pruned++
				if !backtrack() {
					return
				}
				break
			}
			stack = append(stack, nd)
			fp, err := e.apply(m, ts[nd.chosen])
			nd.fp = fp
			nd.counted = true
			e.res.States++
			if err != nil {
				e.trapped(path(), err)
				if !backtrack() {
					return
				}
				break
			}
		}
	}
}
