package explore

// Replay traces and resumable soak files, both in the repository's JSONL
// journal discipline (internal/journal — the framing the campaign results
// and the selfheal bundles share): a header line pinning format and
// provenance, one record per line, flush-per-record writes with torn-tail
// tolerance on reopen.
//
// A trace is a complete account of one run's nondeterminism: the header
// names the test and mode, each decision line is one Decision, and the
// final line carries the rendered outcome and verdict. Replay re-executes
// the decisions against a fresh machine, re-renders, and re-encodes —
// byte identity of the two files is the reproducibility check the CLI and
// the CI smoke stage assert.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/journal"
	"repro/internal/litmus"
	"repro/internal/opcheck"
)

// TraceFormatV1 is the replay-trace format tag.
const TraceFormatV1 = "risotto-explore-trace/v1"

// TraceHeader is a trace's first line.
type TraceHeader struct {
	Format string `json:"format"`
	Test   string `json:"test"`
	Mode   string `json:"mode"`
}

// Trace verdicts.
const (
	VerdictAllowed   = "allowed"   // run completed, outcome axiomatically admitted
	VerdictViolation = "violation" // forbidden outcome or a mid-run trap
	VerdictPartial   = "partial"   // budget cut the run before completion
)

// TraceFinal is a trace's last line: what the decisions led to.
type TraceFinal struct {
	Outcome string `json:"outcome"`
	Verdict string `json:"verdict"`
	Steps   int    `json:"steps"`
}

// Trace is one decoded replay trace.
type Trace struct {
	Header    TraceHeader
	Decisions []Decision
	Final     TraceFinal
}

// EncodeTrace renders a trace to its canonical bytes.
func EncodeTrace(tr Trace) ([]byte, error) {
	var buf bytes.Buffer
	w := journal.NewWriter(&buf)
	if err := w.Encode(tr.Header); err != nil {
		return nil, err
	}
	for _, d := range tr.Decisions {
		if err := w.Encode(d); err != nil {
			return nil, err
		}
	}
	if err := w.Encode(tr.Final); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTrace parses a trace stream. The final line is recognized by its
// verdict field; a trace without one (producer killed mid-write) is
// reported as such.
func DecodeTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sawHeader, sawFinal := false, false
	_, err := journal.Scan(r, func(line []byte) error {
		if !sawHeader {
			if err := json.Unmarshal(line, &tr.Header); err != nil {
				return fmt.Errorf("explore: bad trace header: %w", err)
			}
			if tr.Header.Format != TraceFormatV1 {
				return fmt.Errorf("explore: unknown trace format %q", tr.Header.Format)
			}
			sawHeader = true
			return nil
		}
		var probe struct {
			Verdict string `json:"verdict"`
			Op      string `json:"op"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("explore: bad trace line: %w", err)
		}
		if probe.Verdict != "" {
			sawFinal = true
			return json.Unmarshal(line, &tr.Final)
		}
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			return err
		}
		tr.Decisions = append(tr.Decisions, d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("explore: trace has no header")
	}
	if !sawFinal {
		return nil, fmt.Errorf("explore: trace has no final line (torn write?)")
	}
	return tr, nil
}

// ViolationTrace assembles the encodable trace of one violation.
func (r *Result) ViolationTrace(v Violation) Trace {
	return Trace{
		Header:    TraceHeader{Format: TraceFormatV1, Test: r.Test, Mode: string(r.Mode)},
		Decisions: v.Trace,
		Final:     TraceFinal{Outcome: string(v.Outcome), Verdict: VerdictViolation, Steps: len(v.Trace)},
	}
}

// PartialAsTrace assembles the trace of the budget cut, if any.
func (r *Result) PartialAsTrace() (Trace, bool) {
	if !r.Partial {
		return Trace{}, false
	}
	return Trace{
		Header:    TraceHeader{Format: TraceFormatV1, Test: r.Test, Mode: string(r.Mode)},
		Decisions: r.PartialTrace,
		Final:     TraceFinal{Verdict: VerdictPartial, Steps: len(r.PartialTrace)},
	}, true
}

// FirstTrace returns the most useful trace of the run: the first
// violation's, else the partial cut's, else (complete, clean runs) none.
func (r *Result) FirstTrace() (Trace, bool) {
	if len(r.Violations) > 0 {
		return r.ViolationTrace(r.Violations[0]), true
	}
	return r.PartialAsTrace()
}

// Replay re-executes a trace's decisions against p and returns the
// re-recorded trace — Final recomputed from the machine, not copied — so
// byte-comparing EncodeTrace of both checks full reproducibility. The
// axiomatic reference (cfg.Model semantics) classifies the replayed
// outcome. Decisions that do not match an enabled transition mean the
// trace and program diverge, an error.
func Replay(p *litmus.Program, tr *Trace, cfg Config) (*Trace, error) {
	if tr.Header.Test != p.Name {
		return nil, fmt.Errorf("explore: trace is for test %q, replaying against %q", tr.Header.Test, p.Name)
	}
	mdl, err := cfg.model()
	if err != nil {
		return nil, err
	}
	allowed, err := litmus.Enumerate(p, mdl, litmus.WithWorkers(1), litmus.WithCache(litmus.NewCache()))
	if err != nil {
		return nil, err
	}
	c, err := opcheck.Compile(p)
	if err != nil {
		return nil, err
	}
	e := &explorer{cfg: cfg, compiled: c}
	m, err := e.newMachine()
	if err != nil {
		return nil, err
	}
	out := &Trace{Header: tr.Header}
	for i, d := range tr.Decisions {
		ts := enabled(m)
		found := false
		for _, t := range ts {
			if t.d.key() == d.key() {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("explore: replay step %d: decision %v not enabled (trace diverged)", i, d)
		}
		out.Decisions = append(out.Decisions, d)
		if _, err := e.apply(m, transition{d: d}); err != nil {
			// The recorded run trapped here; reproduce the verdict.
			out.Final = TraceFinal{Verdict: VerdictViolation, Steps: len(out.Decisions)}
			return out, nil
		}
	}
	out.Final.Steps = len(out.Decisions)
	if len(enabled(m)) > 0 {
		out.Final.Verdict = VerdictPartial
		return out, nil
	}
	o, err := c.Outcome(m)
	if err != nil {
		return nil, err
	}
	out.Final.Outcome = string(o)
	if allowed[o] {
		out.Final.Verdict = VerdictAllowed
	} else {
		out.Final.Verdict = VerdictViolation
	}
	return out, nil
}

// --- Soak files ---------------------------------------------------------------

// SoakFormatV1 is the resumable soak-results format tag.
const SoakFormatV1 = "risotto-explore/v1"

// SoakHeader pins the producing configuration, campaign-style: resuming
// against a different configuration would mix incomparable records.
type SoakHeader struct {
	Format     string `json:"format"`
	ConfigHash string `json:"config_hash"`
}

// SoakRecord is one test's exploration summary line.
type SoakRecord struct {
	Test       string  `json:"test"`
	Mode       string  `json:"mode"`
	Runs       int     `json:"runs"`
	States     int     `json:"states"`
	Pruned     int     `json:"pruned,omitempty"`
	Allowed    int     `json:"allowed"`
	Covered    int     `json:"covered"`
	Coverage   float64 `json:"coverage_pct"`
	Violations int     `json:"violations"`
	Partial    bool    `json:"partial,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

func recordOf(r *Result) SoakRecord {
	rec := SoakRecord{
		Test: r.Test, Mode: string(r.Mode),
		Runs: r.Runs, States: r.States, Pruned: r.Pruned,
		Allowed: r.Allowed, Covered: r.Covered, Coverage: r.Coverage(),
		Violations: len(r.Violations), Partial: r.Partial,
	}
	switch {
	case len(r.Violations) > 0:
		rec.Detail = r.Violations[0].Reason
	case r.Partial:
		rec.Detail = r.PartialReason
	}
	return rec
}

// Soak summarizes a RunFile sweep.
type Soak struct {
	Tests, Resumed, Violations, Partial int
	// Records are this run's newly written records.
	Records []SoakRecord
}

// RunFile explores every test under cfg with results journaled at path.
// With resume false the file is created fresh; with resume true the
// existing header is validated against cfg's hash, tests already recorded
// are skipped, and the torn tail (if the previous soak was killed
// mid-write) is truncated before appending — the crash-resume discipline
// of the campaign results files.
func RunFile(tests []*litmus.Program, cfg Config, path string, resume bool) (Soak, error) {
	var soak Soak
	done := map[string]bool{}
	var out *os.File
	if resume {
		f, err := os.Open(path)
		if err != nil {
			return soak, err
		}
		hdr, recs, valid, err := readSoak(f)
		f.Close()
		if err != nil {
			return soak, fmt.Errorf("explore: reading %s for resume: %w", path, err)
		}
		if hdr.ConfigHash != cfg.Hash() {
			return soak, fmt.Errorf("explore: %s was produced by config %s, refusing to resume with %s",
				path, hdr.ConfigHash, cfg.Hash())
		}
		for _, r := range recs {
			done[r.Test] = true
		}
		out, err = os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return soak, err
		}
		if err := out.Truncate(valid); err != nil {
			out.Close()
			return soak, err
		}
		if _, err := out.Seek(valid, io.SeekStart); err != nil {
			out.Close()
			return soak, err
		}
	} else {
		var err error
		out, err = os.Create(path)
		if err != nil {
			return soak, err
		}
		if err := journal.NewWriter(out).Encode(SoakHeader{Format: SoakFormatV1, ConfigHash: cfg.Hash()}); err != nil {
			out.Close()
			return soak, err
		}
	}
	defer out.Close()

	w := journal.NewWriter(out)
	for _, p := range tests {
		if done[p.Name] {
			soak.Resumed++
			continue
		}
		res, err := Run(p, cfg)
		if err != nil {
			return soak, fmt.Errorf("explore: %s: %w", p.Name, err)
		}
		rec := recordOf(res)
		if err := w.Encode(rec); err != nil {
			return soak, err
		}
		soak.Tests++
		soak.Violations += rec.Violations
		if rec.Partial {
			soak.Partial++
		}
		soak.Records = append(soak.Records, rec)
	}
	return soak, nil
}

// ReadSoak parses a soak results stream (header then records), tolerating
// a torn final line.
func ReadSoak(r io.Reader) (SoakHeader, []SoakRecord, error) {
	hdr, recs, _, err := readSoak(r)
	return hdr, recs, err
}

func readSoak(r io.Reader) (SoakHeader, []SoakRecord, int64, error) {
	var hdr SoakHeader
	var recs []SoakRecord
	sawHeader := false
	valid, err := journal.Scan(r, func(line []byte) error {
		if !sawHeader {
			if err := json.Unmarshal(line, &hdr); err != nil {
				return fmt.Errorf("explore: bad soak header: %w", err)
			}
			if hdr.Format != SoakFormatV1 {
				return fmt.Errorf("explore: unknown soak format %q", hdr.Format)
			}
			sawHeader = true
			return nil
		}
		var rec SoakRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("explore: bad soak record: %w", err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return hdr, nil, 0, err
	}
	if !sawHeader {
		return hdr, nil, 0, io.EOF
	}
	return hdr, recs, valid, nil
}
