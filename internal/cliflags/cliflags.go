// Package cliflags registers the flags shared by the risotto, litmusctl
// and risobench commands — one spelling, one default, one help string per
// flag — and turns the parsed values into the objects the commands need:
// a fault injector from -fault/-fault-seed, a root observability scope
// whose snapshot -metrics dumps, and the -trace JSONL writer. Keeping the
// plumbing here means a flag added for one tool appears in all three with
// identical semantics.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"

	"repro/internal/faults"
	"repro/internal/litmus"
	"repro/internal/obs"
)

// TrapExitCode is the process exit code every command uses for a run that
// halted with a structured trap — distinct from usage errors (2) and
// internal errors (1), so scripted callers can tell a trapped guest from a
// broken tool.
const TrapExitCode = 3

// TrapReport renders the unified one-line trap report for err when it
// carries a structured faults.Trap ("<tool>: trap[kind] ...") and reports
// whether it did. Commands print the line to stderr and exit with
// TrapExitCode; non-trap errors take their usual path.
func TrapReport(tool string, err error) (string, bool) {
	tr, ok := faults.As(err)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s: %s", tool, tr.Error()), true
}

// Set holds the parsed values of the shared flags. Zero value is unusable;
// build one with Register.
type Set struct {
	// Workers bounds enumeration parallelism (0 = all CPUs, 1 = serial).
	Workers int
	// Fault is the comma-separated fault spec list (name[@N]).
	Fault string
	// FaultSeed seeds the deterministic injector.
	FaultSeed int64
	// Metrics selects a snapshot dump format ("" = no dump).
	Metrics string
	// Trace names a JSONL file for the span ring buffer ("" = no trace).
	Trace string
	// Listen is the -listen address ("" = no HTTP endpoint); only
	// registered by AddListen.
	Listen string
	// TierUp holds the -tierup flag family; only registered by AddTierUp.
	TierUp TierUpFlags

	scopeOnce sync.Once
	scope     *obs.Scope

	hookMu     sync.Mutex
	flushHooks []func()
}

// Register installs the shared flags on fs and returns the Set their
// parsed values land in. Call before fs.Parse.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.IntVar(&s.Workers, "workers", 0,
		"enumeration workers (0 = all CPUs, 1 = serial)")
	fs.StringVar(&s.Fault, "fault", "",
		"inject deterministic faults: comma list of name[@N]\n(names: "+
			strings.Join(faults.SpecNames(), ", ")+")")
	fs.Int64Var(&s.FaultSeed, "fault-seed", 1, "seed for the fault injector")
	fs.StringVar(&s.Metrics, "metrics", "",
		"dump the metrics snapshot after the run: json | prom | text")
	fs.StringVar(&s.Trace, "trace", "",
		"write the structured trace spans to FILE as JSON lines")
	return s
}

// AddListen installs the -listen flag (risotto only): an address for the
// live /metrics and /debug/obs HTTP endpoints.
func (s *Set) AddListen(fs *flag.FlagSet) {
	fs.StringVar(&s.Listen, "listen", "",
		"serve /metrics (Prometheus) and /debug/obs (JSON) on this address")
}

// TierUpFlags is the parsed -tierup flag family. The package stays free
// of a core dependency, so commands translate these plain values into
// core.WithTierUp themselves.
type TierUpFlags struct {
	// Enabled is -tierup: start blocks cheap, promote hot ones in the
	// background.
	Enabled bool
	// PromoteThreshold is -promote-threshold (0 = runtime default).
	PromoteThreshold int
	// SuperblockMax is -superblock-max (0 = runtime default).
	SuperblockMax int
}

// AddTierUp installs the tier-up JIT flags shared by risotto, risottod
// and risobench.
func (s *Set) AddTierUp(fs *flag.FlagSet) {
	fs.BoolVar(&s.TierUp.Enabled, "tierup", false,
		"tier-up JIT: new blocks start unoptimized; hot blocks are promoted\nto optimized superblocks by background translation workers")
	fs.IntVar(&s.TierUp.PromoteThreshold, "promote-threshold", 0,
		"dispatches that make a block hot enough to promote (0 = default 8)")
	fs.IntVar(&s.TierUp.SuperblockMax, "superblock-max", 0,
		"max guest blocks stitched into one promoted superblock (0 = default 4)")
}

// WorkerCount resolves -workers to a concrete pool size: 0 or negative
// means one worker per CPU, mirroring how the litmus enumerator interprets
// the flag. Drivers that run their own worker pools (the campaign runner)
// use this so -workers means the same thing everywhere.
func (s *Set) WorkerCount() int {
	if s.Workers <= 0 {
		return runtime.NumCPU()
	}
	return s.Workers
}

// Check validates flag values that can fail before any work starts.
func (s *Set) Check() error {
	if s.Metrics != "" && !obs.ValidFormat(s.Metrics) {
		return fmt.Errorf("-metrics %q: want json, prom or text", s.Metrics)
	}
	return nil
}

// Injector arms a fault injector from the -fault spec list; a nil injector
// (no specs) disables injection entirely.
func (s *Set) Injector() (*faults.Injector, error) {
	specs, err := faults.ParseSpecs(s.Fault)
	if err != nil || len(specs) == 0 {
		return nil, err
	}
	in := faults.NewInjector(s.FaultSeed)
	for _, sp := range specs {
		sp.Arm(in)
	}
	return in, nil
}

// Scope returns the process-root observability scope, creating it on first
// use. All of a command's metrics and spans hang off this scope, so the
// -metrics dump and the -listen endpoints see everything.
func (s *Set) Scope() *obs.Scope {
	s.scopeOnce.Do(func() { s.scope = obs.NewScope("") })
	return s.scope
}

// LitmusOptions assembles the enumeration options the flags describe:
// workers, the process-wide outcome cache, the root scope, and the
// injector when -fault armed one. extra options append after (last wins).
func (s *Set) LitmusOptions(extra ...litmus.Option) ([]litmus.Option, error) {
	in, err := s.Injector()
	if err != nil {
		return nil, err
	}
	opts := []litmus.Option{
		litmus.WithWorkers(s.Workers),
		litmus.WithCache(litmus.DefaultCache),
		litmus.WithObs(s.Scope()),
	}
	if in != nil {
		opts = append(opts, litmus.WithInjector(in))
	}
	return append(opts, extra...), nil
}

// Serve starts the -listen HTTP endpoint when one was requested, returning
// the bound address ("" when -listen is unset). The server runs until the
// process exits.
func (s *Set) Serve() (string, error) {
	if s.Listen == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", s.Listen)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: obs.Handler(s.Scope())}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "obs listener:", err)
		}
	}()
	return ln.Addr().String(), nil
}

// AddFlushHook registers fn to run (in registration order) when an
// interrupt arrives after InterruptFlush was installed. Commands use it
// to surface partial progress — a campaign's counts so far, a pointer to
// the resumable results file — that would otherwise die with the process.
func (s *Set) AddFlushHook(fn func()) {
	s.hookMu.Lock()
	s.flushHooks = append(s.flushHooks, fn)
	s.hookMu.Unlock()
}

// InterruptFlush installs a SIGINT/SIGTERM handler that runs the
// registered flush hooks, then performs the -metrics/-trace outputs
// (Finish), then exits with the conventional 128+signal code (130 for
// SIGINT, 143 for SIGTERM). Without it an interrupt drops the partial
// snapshot a long run has accumulated; with it ^C behaves like a
// truncated-but-reported run. Call once, after flag parsing.
func (s *Set) InterruptFlush() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "interrupted (%s): flushing partial results\n", sig)
		s.hookMu.Lock()
		hooks := append([]func(){}, s.flushHooks...)
		s.hookMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
		if err := s.Finish(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "flush:", err)
		}
		code := 130
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
}

// Finish performs the post-run outputs: the -metrics dump to w and the
// -trace JSONL file. Safe to call when neither flag was set.
func (s *Set) Finish(w io.Writer) error {
	if s.Metrics != "" {
		if err := obs.Dump(w, s.Scope().Snapshot(), s.Metrics); err != nil {
			return err
		}
	}
	if s.Trace != "" {
		f, err := os.Create(s.Trace)
		if err != nil {
			return err
		}
		if err := s.Scope().Tracer().WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
