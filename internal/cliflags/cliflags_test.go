package cliflags

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

func parse(t *testing.T, args ...string) *Set {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Register(fs)
	s.AddListen(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return s
}

func TestDefaults(t *testing.T) {
	s := parse(t)
	if s.Workers != 0 || s.Fault != "" || s.FaultSeed != 1 || s.Metrics != "" || s.Trace != "" {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check on defaults: %v", err)
	}
	in, err := s.Injector()
	if err != nil || in != nil {
		t.Fatalf("Injector on defaults = %v, %v; want nil, nil", in, err)
	}
}

func TestCheckRejectsBadFormat(t *testing.T) {
	s := parse(t, "-metrics", "xml")
	if err := s.Check(); err == nil {
		t.Fatal("Check accepted -metrics xml")
	}
	for _, f := range []string{"json", "prom", "text"} {
		if err := parse(t, "-metrics", f).Check(); err != nil {
			t.Fatalf("Check rejected -metrics %s: %v", f, err)
		}
	}
}

func TestInjectorFromSpec(t *testing.T) {
	s := parse(t, "-fault", faults.SpecNames()[0], "-fault-seed", "7")
	in, err := s.Injector()
	if err != nil {
		t.Fatalf("Injector: %v", err)
	}
	if in == nil {
		t.Fatal("Injector returned nil for an armed spec")
	}
	if _, err := parse(t, "-fault", "no-such-fault").Injector(); err == nil {
		t.Fatal("Injector accepted an unknown spec")
	}
}

func TestLitmusOptions(t *testing.T) {
	s := parse(t, "-workers", "3")
	opts, err := s.LitmusOptions()
	if err != nil {
		t.Fatalf("LitmusOptions: %v", err)
	}
	if len(opts) != 3 {
		t.Fatalf("got %d options, want 3 (workers, cache, obs)", len(opts))
	}
	s = parse(t, "-fault", faults.SpecNames()[0])
	if opts, err = s.LitmusOptions(); err != nil || len(opts) != 4 {
		t.Fatalf("with -fault: %d options, err %v; want 4, nil", len(opts), err)
	}
}

func TestFinishDumpsValidJSONAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	s := parse(t, "-metrics", "json", "-trace", tracePath)
	s.Scope().Counter("demo.hits").Add(3)
	s.Scope().Event("demo.phase", "x", -1, 0, 0)

	var buf bytes.Buffer
	if err := s.Finish(&buf); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := obs.ValidateSnapshotJSON(buf.Bytes()); err != nil {
		t.Fatalf("-metrics json output invalid: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if !strings.Contains(string(data), `"demo.phase"`) {
		t.Fatalf("trace file lacks the recorded span:\n%s", data)
	}
}

func TestServe(t *testing.T) {
	s := parse(t, "-listen", "127.0.0.1:0")
	addr, err := s.Serve()
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if addr == "" {
		t.Fatal("Serve returned empty address for -listen")
	}
	s.Scope().Counter("demo.served").Inc()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}

	if addr, err := parse(t).Serve(); err != nil || addr != "" {
		t.Fatalf("Serve without -listen = %q, %v; want empty, nil", addr, err)
	}
}

// TestTrapReport pins the unified trap-exit contract both CLIs share: a
// structured trap renders as one "<tool>: trap[...]" line bound for exit
// code TrapExitCode; anything else is not a trap report.
func TestTrapReport(t *testing.T) {
	tr := faults.New(faults.TrapDecode, "bad opcode").WithCPU(0).WithGuestPC(0x10040)
	line, ok := TrapReport("risotto", tr)
	if !ok {
		t.Fatal("structured trap not recognized")
	}
	if !strings.HasPrefix(line, "risotto: trap[decode]") {
		t.Errorf("report = %q, want risotto: trap[decode] prefix", line)
	}
	if line2, _ := TrapReport("litmusctl", tr); !strings.HasPrefix(line2, "litmusctl: ") {
		t.Errorf("tool name not propagated: %q", line2)
	}
	if _, ok := TrapReport("risotto", os.ErrNotExist); ok {
		t.Error("plain error reported as a trap")
	}
	if _, ok := TrapReport("risotto", nil); ok {
		t.Error("nil error reported as a trap")
	}
	if TrapExitCode != 3 {
		t.Errorf("TrapExitCode = %d; scripted callers pin 3", TrapExitCode)
	}
}
