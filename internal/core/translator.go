// Translator is the one tier-translation entry point. The runtime used to
// have three ways to turn a guest PC into IR — translateAtTier's inline
// frontend+optimizer pipeline, the selfcheck shadow path's oracle clone,
// and the transcache ForImage view's load/store dance — each reaching into
// Runtime internals. They are now implementations of a single exported
// interface, so serve/transcache/selfheal consume translation through one
// surface (DESIGN.md §2). The interpreter tier is the deliberate
// exception: it produces no optimized IR to emit (the literal frontend IR
// runs through the TCG interpreter), so translateInterp stays a separate
// path.

package core

import (
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

// Translator turns a guest PC into emit-ready IR at a tier of the
// self-healing ladder. ir is the post-optimization block the backend
// consumes; oracle is the pre-optimization frontend IR when the
// implementation retains one (selfcheck's interpreter input) and nil
// otherwise — cached translations, by design, no longer carry it.
type Translator interface {
	TranslateIR(pc uint64, tier selfheal.Tier) (ir, oracle *tcg.Block, err error)
}

// Translator exposes the runtime's translation pipeline — the same
// instance translateAtTier uses, so external consumers (tooling, tests)
// see exactly the IR the runtime would emit.
func (rt *Runtime) Translator() Translator { return rt.xlat }

// pipelineTranslator is the frontend → optimizer pipeline over a guest
// memory view. The runtime's instance reads live guest memory; promotion
// workers build their own over a snapshot. cpu is span attribution only
// (-1 for background work); obs may be nil to silence spans entirely.
type pipelineTranslator struct {
	mem        []byte
	fe         frontend.Config
	opt        tcg.OptConfig
	keepOracle bool
	obs        *obs.Scope
	cpu        int
}

func (p *pipelineTranslator) TranslateIR(pc uint64, tier selfheal.Tier) (*tcg.Block, *tcg.Block, error) {
	var tstart int64
	if p.obs != nil {
		tstart = p.obs.Begin()
	}
	block, err := frontend.Translate(p.mem, pc, p.fe)
	if p.obs != nil {
		p.obs.Span("frontend.decode", "", p.cpu, pc, 0, tstart)
	}
	if err != nil {
		return nil, nil, err
	}
	var oracle *tcg.Block
	if p.keepOracle {
		oracle = block.Clone()
	}
	var ostart int64
	if p.obs != nil {
		ostart = p.obs.Begin()
	}
	tcg.Optimize(block, p.opt.Degrade(tier.OptLevel()))
	if p.obs != nil {
		p.obs.Span("tcg.opt", "", p.cpu, pc, 0, ostart)
	}
	return block, oracle, nil
}

// cachingTranslator consults a persistent TranslationCache before running
// the inner pipeline, and stores fresh IR after. Cached entries carry no
// oracle, so runtimes that need one (selfcheck) use the bare pipeline.
type cachingTranslator struct {
	inner Translator
	cache TranslationCache
}

func (c *cachingTranslator) TranslateIR(pc uint64, tier selfheal.Tier) (*tcg.Block, *tcg.Block, error) {
	if blk, ok := c.cache.LoadBlock(pc, tier); ok {
		return blk, nil, nil
	}
	ir, oracle, err := c.inner.TranslateIR(pc, tier)
	if err != nil {
		return nil, nil, err
	}
	c.cache.StoreBlock(pc, tier, ir)
	return ir, oracle, err
}
