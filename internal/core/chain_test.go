package core

import (
	"math/rand"
	"testing"

	"repro/internal/guestimg"
	"repro/internal/isa/x86"
)

// chainLoopImage builds a hot loop spanning two blocks (the loop back-edge
// is a constant-target exit), ideal for chaining.
func chainLoopImage(t *testing.T) (*guestimg.Image, uint64) {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	cell := b.Zeros(8)
	a := b.Asm
	const iters = 2000
	a.Label("main").
		MovRI(x86.RCX, 0).
		MovRI(x86.RSI, int64(cell)).
		Label("loop").
		Load(x86.RAX, x86.Mem0(x86.RSI), 8).
		AddRI(x86.RAX, 3).
		Store(x86.Mem0(x86.RSI), x86.RAX, 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, iters).
		Jcc(x86.CondNE, "loop").
		MovRR(x86.RDI, x86.RAX).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img, iters * 3
}

func TestChainingPreservesSemantics(t *testing.T) {
	img, want := chainLoopImage(t)
	for _, chain := range []bool{false, true} {
		rt, err := NewFromConfig(Config{Variant: VariantRisotto, Chain: chain}, img)
		if err != nil {
			t.Fatal(err)
		}
		code, err := rt.Run()
		if err != nil {
			t.Fatalf("chain=%v: %v", chain, err)
		}
		if code != want {
			t.Fatalf("chain=%v: exit %d, want %d", chain, code, want)
		}
		if chain && rt.Stats().ChainPatches == 0 {
			t.Fatal("chaining enabled but no exits were patched")
		}
		if !chain && rt.Stats().ChainPatches != 0 {
			t.Fatal("chaining disabled but exits were patched")
		}
	}
}

func TestChainingSavesDispatchCycles(t *testing.T) {
	img, _ := chainLoopImage(t)
	run := func(chain bool) uint64 {
		rt, err := NewFromConfig(Config{Variant: VariantRisotto, Chain: chain}, img)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.M.MaxCycles()
	}
	plain := run(false)
	chained := run(true)
	if chained >= plain {
		t.Fatalf("chaining should save cycles: %d vs %d", chained, plain)
	}
	// Each loop iteration crosses two constant exits (taken-branch and
	// back-edge blocks); chaining should recoup most of their trap cost.
	if saved := plain - chained; saved < 1000 {
		t.Fatalf("chaining saved only %d cycles", saved)
	}
}

func TestChainingDifferentialRandomPrograms(t *testing.T) {
	// The random-program differential harness with chaining enabled.
	nSeeds := 40
	if testing.Short() {
		nSeeds = 10
	}
	for seed := 0; seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := genProgram(rng)
		if err != nil {
			t.Fatal(err)
		}
		ref := x86.NewInterp(1 << 20)
		if err := img.Load(ref.Mem); err != nil {
			t.Fatal(err)
		}
		ref.PC = img.Entry
		ref.Regs[x86.RSP] = 0x80000
		if err := ref.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rt, err := NewFromConfig(Config{Variant: VariantRisotto, Chain: true}, img)
		if err != nil {
			t.Fatal(err)
		}
		code, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if code != ref.ExitCode {
			t.Fatalf("seed %d: chained exit %d != reference %d", seed, code, ref.ExitCode)
		}
		for off := 0; off < diffDataLen; off++ {
			if rt.M.Mem[diffDataBase+off] != ref.Mem[diffDataBase+off] {
				t.Fatalf("seed %d: mem[%#x] differs under chaining", seed, diffDataBase+off)
			}
		}
	}
}

func TestChainingLeavesHostCallsTrapping(t *testing.T) {
	// A PLT-linked call target must never be chained: the host call runs
	// in the dispatcher.
	b := guestimg.NewBuilder(0x10000, 0x40000)
	b.Import("triple")
	a := b.Asm
	a.Label("main").
		MovRI(x86.RCX, 0).
		Label("loop").
		MovRI(x86.RDI, 14).
		Call("triple@plt").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 50).
		Jcc(x86.CondNE, "loop").
		MovRR(x86.RDI, x86.RAX).
		MovRI(x86.RAX, GuestSysExit).
		Syscall().
		Label("triple").
		MovRR(x86.RAX, x86.RDI).
		MulRI(x86.RAX, 3).
		AddRI(x86.RAX, 1).
		Ret()
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	lib := newTestLib()
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, Chain: true,
		IDL: "i64 triple(i64 x);\n", Lib: lib}, img)
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("exit = %d, want 42 (host impl)", code)
	}
	if rt.Stats().HostCalls != 50 {
		t.Fatalf("host calls = %d, want 50 (every iteration must trap)", rt.Stats().HostCalls)
	}
}
