package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/isa/x86"
	"repro/internal/obs"
	"repro/internal/selfheal"
)

// TestSelfhealFaultRecoversMiscompile injects translation corruption with
// only the heal layer on (no selfcheck): the corrupted block executes its
// miscompile marker, the trap is attributed, the block quarantined and
// demoted, and the run completes with the fault-free result.
func TestSelfhealFaultRecoversMiscompile(t *testing.T) {
	const nblocks = 4
	in := faults.NewInjector(1)
	in.Arm(faults.SiteMiscompile, 1, faults.TrapMiscompile)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, SelfHeal: true, Inject: in},
		chainImage(t, nblocks, 2))
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("miscompile not healed: %v", err)
	}
	if code != nblocks {
		t.Errorf("exit = %d, want %d", code, nblocks)
	}
	st := rt.Stats()
	if st.Quarantines == 0 || st.Demotions == 0 || st.Heals == 0 {
		t.Errorf("stats = quarantines %d, demotions %d, heals %d; want all nonzero",
			st.Quarantines, st.Demotions, st.Heals)
	}
	if rt.Heal().Quarantined() == 0 {
		t.Error("quarantine registry is empty after a heal")
	}
}

// TestSelfcheckFaultDetectsMiscompile injects the same corruption with
// -selfcheck semantics: shadow verification must catch the divergence at
// translation time — before the corrupt block ever executes on live state —
// quarantine it, and the run completes correctly without needing a heal.
func TestSelfcheckFaultDetectsMiscompile(t *testing.T) {
	const nblocks = 4
	in := faults.NewInjector(1)
	in.Arm(faults.SiteMiscompile, 1, faults.TrapMiscompile)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, SelfCheck: true, Inject: in},
		chainImage(t, nblocks, 2))
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("miscompile not recovered under selfcheck: %v", err)
	}
	if code != nblocks {
		t.Errorf("exit = %d, want %d", code, nblocks)
	}
	st := rt.Stats()
	if st.Divergences == 0 {
		t.Error("selfcheck recorded no divergence for corrupted translation")
	}
	if st.Quarantines == 0 {
		t.Error("divergence did not quarantine the block")
	}
	if st.SelfChecks == 0 {
		t.Error("no shadow verifications ran")
	}
}

// TestSelfcheckCleanRunVerifies runs an uncorrupted workload under
// selfcheck: every call-free block verifies, nothing diverges, and the
// result is unchanged.
func TestSelfcheckCleanRunVerifies(t *testing.T) {
	const nblocks = 6
	plain, perr := NewFromConfig(Config{Variant: VariantRisotto}, chainImage(t, nblocks, 2))
	if perr != nil {
		t.Fatal(perr)
	}
	want, perr := plain.Run()
	if perr != nil {
		t.Fatal(perr)
	}

	rt, err := NewFromConfig(Config{Variant: VariantRisotto, SelfCheck: true}, chainImage(t, nblocks, 2))
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("selfcheck run failed: %v", err)
	}
	if code != want {
		t.Errorf("selfcheck changed the result: %d, want %d", code, want)
	}
	st := rt.Stats()
	if st.SelfChecks == 0 {
		t.Error("no shadow verifications ran")
	}
	if st.Divergences != 0 || st.Quarantines != 0 {
		t.Errorf("clean run diverged: divergences %d, quarantines %d",
			st.Divergences, st.Quarantines)
	}
}

// interpWorkloadImage builds a threaded guest exercising every interp-tier
// helper path: a spawned worker XAdds a shared counter iters times while
// main blocks in join (the interp yield path), then main reads the counter.
func interpWorkloadImage(t *testing.T, iters int) *guestimg.Image {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	counter := b.Zeros(8)
	a := b.Asm
	a.Label("worker").
		MovRI(x86.RSI, int64(counter)).
		MovRI(x86.RCX, 0).
		Label("wloop").
		MovRI(x86.RBX, 1).
		XAdd(x86.Mem0(x86.RSI), x86.RBX, 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, int32(iters)).
		Jcc(x86.CondNE, "wloop").
		MovRI(x86.RDI, 0).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()
	a.Label("main").
		MovRI(x86.RAX, GuestSysSpawn).
		MovRI(x86.RDI, 0x7777777700000000). // placeholder: worker addr
		MovRI(x86.RSI, 0).
		Syscall().
		MovRR(x86.RDI, x86.RAX).
		MovRI(x86.RAX, GuestSysJoin).
		Syscall().
		MovRI(x86.RSI, int64(counter)).
		Load(x86.RAX, x86.Mem0(x86.RSI), 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	patchImm64(t, img, 0x7777777700000000, img.Symbols["worker"])
	return img
}

// TestInterpTierExecutes pins the bottom of the ladder: with every block
// forced to TierInterp, the whole threaded workload — atomic RMW helpers,
// spawn, a blocking join, exit — runs through the TCG interpreter with no
// generated code for the guest's logic, and the result matches the
// compiled run.
func TestInterpTierExecutes(t *testing.T) {
	const iters = 64
	img := interpWorkloadImage(t, iters)
	cfg := Config{StackSize: 64 << 10}

	_, want := runImage(t, img, VariantRisotto, cfg)
	if want != iters {
		t.Fatalf("compiled run = %d, want %d", want, iters)
	}
	// Learn the block PCs from a compiled run, then force them all down.
	probe, err := NewFromConfig(Config{Variant: VariantRisotto, StackSize: 64 << 10}, img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Run(); err != nil {
		t.Fatal(err)
	}
	pcs := probe.BlockPCs()
	if len(pcs) == 0 {
		t.Fatal("probe run translated no blocks")
	}

	rt, err := NewFromConfig(Config{Variant: VariantRisotto, StackSize: 64 << 10, SelfHeal: true}, img)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range pcs {
		rt.Heal().SetTier(pc, selfheal.TierInterp)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("interp-tier run failed: %v", err)
	}
	if code != want {
		t.Errorf("interp-tier exit = %d, want %d", code, want)
	}
	st := rt.Stats()
	if st.InterpBlocks == 0 {
		t.Error("no blocks executed through the interpreter")
	}
	if st.HelperCalls == 0 || st.Syscalls == 0 {
		t.Errorf("interp tier served helpers %d, syscalls %d; want both nonzero",
			st.HelperCalls, st.Syscalls)
	}
}

// TestTierLadderWalksToInterp repeatedly re-injects miscompile corruption
// against the same entry block: each heal demotes one rung, and the block's
// recorded tier descends the ladder rather than oscillating.
func TestTierLadderWalksToInterp(t *testing.T) {
	const nblocks = 3
	in := faults.NewInjector(1)
	// The first block's translation is corrupted at every compiled tier:
	// occurrences 1, 2 and 3 hit its retranslations (the injection is
	// consumed before any other block translates).
	in.Arm(faults.SiteMiscompile, 1, faults.TrapMiscompile)
	in.Arm(faults.SiteMiscompile, 2, faults.TrapMiscompile)
	in.Arm(faults.SiteMiscompile, 3, faults.TrapMiscompile)
	img := chainImage(t, nblocks, 2)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, SelfHeal: true, Inject: in}, img)
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("repeated corruption not healed: %v", err)
	}
	if code != nblocks {
		t.Errorf("exit = %d, want %d", code, nblocks)
	}
	if tier := rt.Heal().TierOf(img.Entry); tier != selfheal.TierInterp {
		t.Errorf("entry block tier = %v after three corrupted translations, want interp", tier)
	}
	if st := rt.Stats(); st.InterpBlocks == 0 {
		t.Errorf("ladder bottom never executed: stats %+v", st)
	}
}

// TestCrashBundleReplayReproducesTrap is the determinism contract end to
// end: an unrecovered injected trap serializes into a bundle, ReplayConfig
// rebuilds the run, the replay produces the identical trap, and re-bundling
// the replay yields byte-identical output.
func TestCrashBundleReplayReproducesTrap(t *testing.T) {
	img := chainImage(t, 4, 1)
	in := faults.NewInjector(1)
	in.Arm(faults.SiteDecode, 3, faults.TrapDecode)
	rt, err := NewFromConfig(Config{
		Variant:   VariantRisotto,
		FaultSpec: "decode@3",
		FaultSeed: 1,
		Inject:    in,
		Obs:       obs.NewScope(""),
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run()
	tr, ok := faults.As(runErr)
	if !ok || tr.Kind != faults.TrapDecode {
		t.Fatalf("run error = %v, want injected decode trap", runErr)
	}

	b, err := rt.CrashBundle("risotto", runErr)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := selfheal.DecodeBundle(enc)
	if err != nil {
		t.Fatalf("bundle does not round-trip: %v", err)
	}

	cfg, rimg, err := ReplayConfig(back)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewScope("")
	rt2, err := NewFromConfig(cfg, rimg)
	if err != nil {
		t.Fatal(err)
	}
	_, replayErr := rt2.Run()
	tr2, ok := faults.As(replayErr)
	if !ok {
		t.Fatalf("replay error = %v, want a trap", replayErr)
	}
	if !back.Trap.Matches(tr2) {
		t.Fatalf("replay trap %v does not match bundled %+v", tr2, back.Trap)
	}

	b2, err := rt2.CrashBundle("risotto", replayErr)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := b2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("replay re-bundle is not byte-identical (%d vs %d bytes)", len(enc), len(enc2))
	}
}

// TestCrashBundleRequiresTrap pins the error contract: only structured
// traps bundle.
func TestCrashBundleRequiresTrap(t *testing.T) {
	rt, err := NewFromConfig(Config{Variant: VariantRisotto}, chainImage(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CrashBundle("risotto", errors.New("not a trap")); err == nil {
		t.Error("CrashBundle accepted a plain error")
	}
}

// TestPinnedOverlapBoundaries pins the half-open extent arithmetic: an
// extent [start, end) must collide with a probe touching any byte in it and
// with nothing outside, including the exactly-adjacent ranges on both sides
// and an adjacent second extent.
func TestPinnedOverlapBoundaries(t *testing.T) {
	rt, err := NewFromConfig(Config{Variant: VariantRisotto}, chainImage(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rt.pinned = []extent{{start: 100, end: 200}, {start: 200, end: 300}}

	cases := []struct {
		name       string
		start, end uint64
		hit        bool
		want       extent
	}{
		{"before", 0, 100, false, extent{}},
		{"first-byte", 100, 101, true, extent{100, 200}},
		{"straddles-start", 99, 101, true, extent{100, 200}},
		{"last-byte", 199, 200, true, extent{100, 200}},
		{"adjacent-second", 200, 201, true, extent{200, 300}},
		{"covers-both", 50, 400, true, extent{100, 200}},
		{"after", 300, 400, false, extent{}},
		{"empty-at-start", 100, 100, false, extent{}},
	}
	for _, tc := range cases {
		got, ok := rt.pinnedOverlap(tc.start, tc.end)
		if ok != tc.hit {
			t.Errorf("%s: overlap [%d,%d) = %v, want %v", tc.name, tc.start, tc.end, ok, tc.hit)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("%s: returned extent %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestFlushPinsExactEdges checks flushCodeCache's liveness test at the
// extent edges: a CPU parked on a block's first byte (or holding it in the
// link register) pins the extent; one byte past the end does not, and
// halted CPUs never pin.
func TestFlushPinsExactEdges(t *testing.T) {
	newRT := func() *Runtime {
		rt, err := NewFromConfig(Config{Variant: VariantRisotto}, chainImage(t, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	const codeLen = 32
	plant := func(rt *Runtime) extent {
		base := rt.codeCursor
		rt.tbs.put(&tb{guestPC: 0x10000, hostAddr: base, codeLen: codeLen})
		return extent{start: base, end: base + codeLen}
	}

	// PC at the first byte: pinned.
	rt := newRT()
	e := plant(rt)
	rt.M.CPUs[0].PC = e.start
	rt.flushCodeCache()
	if len(rt.pinned) != 1 || rt.pinned[0] != e {
		t.Errorf("PC at start: pinned = %+v, want [%+v]", rt.pinned, e)
	}

	// PC exactly one past the end (end is exclusive): not pinned.
	rt = newRT()
	e = plant(rt)
	rt.M.CPUs[0].PC = e.end
	rt.flushCodeCache()
	if len(rt.pinned) != 0 {
		t.Errorf("PC at end: pinned = %+v, want none", rt.pinned)
	}

	// Link register on the last byte: pinned (helper return path).
	rt = newRT()
	e = plant(rt)
	rt.M.CPUs[0].PC = 0
	rt.M.CPUs[0].Regs[30] = e.end - 1
	rt.flushCodeCache()
	if len(rt.pinned) != 1 || rt.pinned[0] != e {
		t.Errorf("LR at last byte: pinned = %+v, want [%+v]", rt.pinned, e)
	}

	// A halted CPU parked inside the extent does not pin it.
	rt = newRT()
	e = plant(rt)
	rt.M.CPUs[0].PC = e.start
	rt.M.CPUs[0].Halted = true
	rt.flushCodeCache()
	if len(rt.pinned) != 0 {
		t.Errorf("halted CPU: pinned = %+v, want none", rt.pinned)
	}

	// A previously pinned extent survives further flushes while live and is
	// released once no CPU references it.
	rt = newRT()
	e = plant(rt)
	rt.M.CPUs[0].PC = e.start
	rt.flushCodeCache()
	rt.flushCodeCache() // tbs now empty; pin carried forward while PC inside
	if len(rt.pinned) != 1 || rt.pinned[0] != e {
		t.Errorf("carried pin: pinned = %+v, want [%+v]", rt.pinned, e)
	}
	rt.M.CPUs[0].PC = e.end
	rt.flushCodeCache()
	if len(rt.pinned) != 0 {
		t.Errorf("released pin: pinned = %+v, want none", rt.pinned)
	}
}
