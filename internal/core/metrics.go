package core

import (
	"fmt"

	"repro/internal/obs"
)

// metrics caches the runtime's obs handles so hot paths never take the
// registry lock. All core metrics live under the "core." prefix of the
// scope passed in Config.Obs (or a private scope when none is given, so
// Stats() always works).
type metrics struct {
	blocks       *obs.Counter
	guestBytes   *obs.Counter
	hostInsts    *obs.Counter
	dmbFull      *obs.Counter
	dmbLoad      *obs.Counter
	dmbStore     *obs.Counter
	casal        *obs.Counter
	exclLoop     *obs.Counter
	helperCalls  *obs.Counter
	hostCalls    *obs.Counter
	syscalls     *obs.Counter
	chainPatches *obs.Counter
	cacheFlushes *obs.Counter
	quarantines  *obs.Counter
	demotions    *obs.Counter
	divergences  *obs.Counter
	heals        *obs.Counter
	selfChecks   *obs.Counter
	selfSkipped  *obs.Counter
	interpBlocks *obs.Counter
	miscompiles  *obs.Counter
	// Tier-up counters: promotions installed, superblocks among them (and
	// the guest blocks they stitched), fences saved by merging across
	// block seams (under "tcg." beside the per-block pass counters), and
	// lock contention on the sharded caches. chainPatchShards splits
	// chain_patches by stripe; the total keeps its historical name.
	promotions       *obs.Counter
	superBlocks      *obs.Counter
	superGuestBlocks *obs.Counter
	crossFences      *obs.Counter
	shardContention  *obs.Counter
	chainPatchShards [numShards]*obs.Counter
	translateNS      *obs.Histogram
	codeBytes        *obs.Histogram
}

func newMetrics(root *obs.Scope) metrics {
	sc := root.Child("core")
	var shards [numShards]*obs.Counter
	for i := range shards {
		shards[i] = sc.Counter(fmt.Sprintf("chain_patches.shard%d", i))
	}
	return metrics{
		blocks:       sc.Counter("blocks"),
		guestBytes:   sc.Counter("guest_bytes"),
		hostInsts:    sc.Counter("host_insts"),
		dmbFull:      sc.Counter("fences.dmb_full"),
		dmbLoad:      sc.Counter("fences.dmb_load"),
		dmbStore:     sc.Counter("fences.dmb_store"),
		casal:        sc.Counter("atomics.casal"),
		exclLoop:     sc.Counter("atomics.excl_loop"),
		helperCalls:  sc.Counter("helper_calls"),
		hostCalls:    sc.Counter("host_calls"),
		syscalls:     sc.Counter("syscalls"),
		chainPatches: sc.Counter("chain_patches"),
		cacheFlushes: sc.Counter("cache_flushes"),
		quarantines:  sc.Counter("selfheal.quarantines"),
		demotions:    sc.Counter("selfheal.demotions"),
		divergences:  sc.Counter("selfheal.divergences"),
		heals:        sc.Counter("selfheal.heals"),
		selfChecks:   sc.Counter("selfheal.selfchecks"),
		selfSkipped:  sc.Counter("selfheal.selfcheck_skipped"),
		interpBlocks: sc.Counter("selfheal.interp_blocks"),
		miscompiles:  sc.Counter("selfheal.miscompiles_injected"),
		promotions:   sc.Counter("selfheal.promotions"),
		superBlocks:  sc.Counter("superblock.blocks"),
		superGuestBlocks: sc.Counter("superblock.guest_blocks"),
		crossFences:      root.Child("tcg").Counter("fence_merges_cross_block"),
		shardContention:  sc.Counter("cache.shard_contention"),
		chainPatchShards: shards,
		translateNS:      sc.Histogram("translate_ns", obs.DurationBuckets),
		codeBytes:        sc.Histogram("code_bytes", obs.SizeBuckets),
	}
}

// Stats returns the runtime counters as a plain struct — the historical
// core.Stats API, now a typed view over the obs registry. The values are
// read from the live counters, so two calls around a run bracket the
// run's deltas.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Blocks:       rt.met.blocks.Load(),
		GuestBytes:   rt.met.guestBytes.Load(),
		HostInsts:    rt.met.hostInsts.Load(),
		DMBFull:      rt.met.dmbFull.Load(),
		DMBLoad:      rt.met.dmbLoad.Load(),
		DMBStore:     rt.met.dmbStore.Load(),
		Casal:        rt.met.casal.Load(),
		ExclLoop:     rt.met.exclLoop.Load(),
		HelperCalls:  rt.met.helperCalls.Load(),
		HostCalls:    rt.met.hostCalls.Load(),
		Syscalls:     rt.met.syscalls.Load(),
		ChainPatches: rt.met.chainPatches.Load(),
		CacheFlushes: rt.met.cacheFlushes.Load(),
		Quarantines:  rt.met.quarantines.Load(),
		Demotions:    rt.met.demotions.Load(),
		Divergences:  rt.met.divergences.Load(),
		Heals:        rt.met.heals.Load(),
		SelfChecks:   rt.met.selfChecks.Load(),
		InterpBlocks: rt.met.interpBlocks.Load(),
		Promotions:   rt.met.promotions.Load(),
		Superblocks:  rt.met.superBlocks.Load(),
		SuperblockGuestBlocks: rt.met.superGuestBlocks.Load(),
		CrossBlockFenceMerges: rt.met.crossFences.Load(),
		ShardContention:       rt.met.shardContention.Load(),
	}
}

// Obs returns the scope the runtime reports into: the one from
// Config.Obs, or the private scope created when none was given.
func (rt *Runtime) Obs() *obs.Scope { return rt.obs }
