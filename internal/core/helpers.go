package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/isa/x86"
	"repro/internal/machine"
	"repro/internal/tcg"
)

// Guest syscall numbers (in guest RAX; arguments in RDI, RSI, RDX). The
// numbers mirror the native ABI in internal/machine for convenience.
const (
	GuestSysExit  = 93
	GuestSysWrite = 64
	GuestSysSpawn = 220
	GuestSysJoin  = 221
	GuestSysAlloc = 222
)

// handleBLR intercepts helper calls emitted by the backend (BLR into the
// HelperBase region). Helper arguments arrive in X18/X28 per the backend
// convention; results return in X18. Guest registers are read and written
// directly through their host-register mapping.
func (rt *Runtime) handleBLR(m *machine.Machine, c *machine.CPU, target uint64) (bool, error) {
	h, size, ok := backend.HelperOf(target)
	if !ok {
		return false, nil
	}
	rt.met.helperCalls.Inc()

	arg0 := c.Regs[18]
	arg1 := c.Regs[28]

	switch h {
	case tcg.HelperCmpXchg:
		// old = *(addr); if old == RAX { *(addr) = new }. The helper body
		// (GCC __atomic builtin) performs a casal on the host (§3.1,
		// GCC ≥ 10 behaviour).
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, arg0)
		expected := *guestReg(c, x86.RAX)
		old, err := m.ReadMem(arg0, size)
		if err != nil {
			return true, err
		}
		if old == truncateTo(expected, size) {
			if err := m.WriteMem(arg0, size, arg1); err != nil {
				return true, err
			}
		}
		c.Regs[18] = old
		return true, nil

	case tcg.HelperXAdd:
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, arg0)
		old, err := m.ReadMem(arg0, size)
		if err != nil {
			return true, err
		}
		if err := m.WriteMem(arg0, size, old+arg1); err != nil {
			return true, err
		}
		c.Regs[18] = old
		return true, nil

	case tcg.HelperXchg:
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, arg0)
		old, err := m.ReadMem(arg0, size)
		if err != nil {
			return true, err
		}
		if err := m.WriteMem(arg0, size, arg1); err != nil {
			return true, err
		}
		c.Regs[18] = old
		return true, nil

	case frontend.HelperSyscall:
		rt.met.syscalls.Inc()
		return true, rt.guestSyscall(m, c)
	}
	return false, faults.New(faults.TrapHostCall,
		"core: unknown helper %d (target %#x)", h, target).WithCPU(c.ID)
}

// guestSyscall implements the guest OS interface. User-mode emulation
// executes syscalls natively on the host (§2.2); here "the host" is the
// simulated machine's runtime.
func (rt *Runtime) guestSyscall(m *machine.Machine, c *machine.CPU) error {
	nr := *guestReg(c, x86.RAX)
	a0 := *guestReg(c, x86.RDI)
	a1 := *guestReg(c, x86.RSI)
	a2 := *guestReg(c, x86.RDX)

	switch nr {
	case GuestSysExit:
		// Thread exit synchronizes (a joiner must observe the thread's
		// writes), so drain any weak-mode store buffer.
		if err := m.FlushWeak(c); err != nil {
			return err
		}
		c.ExitCode = a0
		c.Halted = true
		return nil

	case GuestSysWrite:
		if a0+a1 > uint64(len(m.Mem)) {
			return fmt.Errorf("guest write: [%#x,+%d) out of bounds", a0, a1)
		}
		m.Output = append(m.Output, m.Mem[a0:a0+a1]...)
		*guestReg(c, x86.RAX) = a1
		return nil

	case GuestSysSpawn:
		// a0 = guest function, a1 = argument (→ RDI); the runtime
		// allocates the stack itself.
		_ = a2
		nc := m.AddCPU()
		*guestReg(nc, x86.RDI) = a1
		*guestReg(nc, x86.RSP) = rt.newStack()
		if err := rt.startThread(nc, a0); err != nil {
			return err
		}
		*guestReg(c, x86.RAX) = uint64(nc.ID)
		return nil

	case GuestSysJoin:
		id := a0
		if id >= uint64(len(m.CPUs)) {
			return fmt.Errorf("guest join: no cpu %d", id)
		}
		t := m.CPUs[id]
		if !t.Halted {
			// Re-execute the helper BLR: point the link register back at
			// the BLR itself so the scheduler retries next quantum, and
			// refund the call cost — a blocked join is a futex wait. The
			// retry is not a fresh guest syscall, so uncount it.
			c.Regs[30] = c.PC
			if c.Cycles >= m.Cost.Call {
				c.Cycles -= m.Cost.Call
			}
			rt.met.syscalls.Sub(1)
			rt.met.helperCalls.Sub(1)
			return nil
		}
		*guestReg(c, x86.RAX) = t.ExitCode
		return nil

	case GuestSysAlloc:
		n := (a0 + 0xF) &^ 0xF
		addr := rt.heapCur
		if addr+n >= rt.stackCur-uint64(len(m.CPUs))*rt.cfg.StackSize {
			return fmt.Errorf("guest alloc: heap exhausted")
		}
		rt.heapCur += n
		*guestReg(c, x86.RAX) = addr
		return nil
	}
	return fmt.Errorf("guest syscall: unknown number %d", nr)
}

func truncateTo(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}
