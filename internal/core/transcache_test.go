package core

import (
	"path/filepath"
	"testing"

	"repro/internal/transcache"
	"repro/internal/workloads"
)

// TestTransCacheColdWarm runs the same kernel cold (empty persistent
// cache) and warm (cache reopened from the cold run's journal): the warm
// run must produce the identical exit code while translating every block
// from cached IR — zero frontend work on the view's counters — and a
// third run through a fresh Runtime with no cache must agree too.
func TestTransCacheColdWarm(t *testing.T) {
	k, err := workloads.KernelByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := k.Build(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := pb.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	imageKey := transcache.Fingerprint(img) + "/" + VariantRisotto.String()
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	run := func(tc TranslationCache) (uint64, uint64) {
		rt, err := NewFromConfig(Config{Variant: VariantRisotto, TransCache: tc}, img)
		if err != nil {
			t.Fatal(err)
		}
		code, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return code, rt.Stats().Blocks
	}

	// Uncached reference.
	wantCode, wantBlocks := run(nil)

	// Cold: populates the journal.
	cache, err := transcache.Open(path, transcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	view := cache.ForImage(imageKey)
	coldCode, coldBlocks := run(view)
	if coldCode != wantCode {
		t.Fatalf("cold run exit = %d, uncached %d", coldCode, wantCode)
	}
	if coldBlocks != wantBlocks {
		t.Fatalf("cold run blocks = %d, uncached %d", coldBlocks, wantBlocks)
	}
	hits, misses := view.Counts()
	if hits != 0 || misses == 0 {
		t.Fatalf("cold view counts = (%d hits, %d misses), want (0, >0)", hits, misses)
	}
	if st := cache.Stats(); uint64(st.Entries) != wantBlocks {
		t.Fatalf("cache entries = %d, want one per block %d", st.Entries, wantBlocks)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm: reopen from disk; every translation must hit.
	cache2, err := transcache.Open(path, transcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	view2 := cache2.ForImage(imageKey)
	warmCode, warmBlocks := run(view2)
	if warmCode != wantCode {
		t.Fatalf("warm run exit = %d, uncached %d", warmCode, wantCode)
	}
	if warmBlocks != wantBlocks {
		t.Fatalf("warm run blocks = %d, uncached %d", warmBlocks, wantBlocks)
	}
	hits2, misses2 := view2.Counts()
	if misses2 != 0 || hits2 != wantBlocks {
		t.Fatalf("warm view counts = (%d hits, %d misses), want (%d, 0)",
			hits2, misses2, wantBlocks)
	}
}

// TestTransCacheSelfCheckBypass pins the documented interaction: with
// SelfCheck on the persistent cache is bypassed entirely (shadow
// verification needs pre-optimization oracle IR that cached entries no
// longer carry), so the view sees no traffic and the run still passes.
func TestTransCacheSelfCheckBypass(t *testing.T) {
	k, err := workloads.KernelByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := k.Build(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := pb.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := transcache.Open(filepath.Join(t.TempDir(), "cache.jsonl"), transcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	view := cache.ForImage("fp/risotto")
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, SelfCheck: true, TransCache: view}, img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().SelfChecks == 0 {
		t.Fatal("selfcheck did not run")
	}
	h, m := view.Counts()
	if h != 0 || m != 0 {
		t.Fatalf("selfcheck run touched the cache: (%d hits, %d misses)", h, m)
	}
}
