// Package core is Risotto-Go's DBT engine — the analogue of the paper's
// modified QEMU (§6). It owns the translation-block cache and execution
// loop, wires the x86 frontend, the TCG optimizer and the Arm backend
// together under a selectable variant (the four setups of §7.1), installs
// the runtime helpers (QEMU-style RMW emulation, guest syscalls), and
// implements the dynamic host library linker (§6.2) and the fast CAS
// translation (§6.3).
package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/guestimg"
	"repro/internal/hostlib"
	"repro/internal/idl"
	"repro/internal/isa/arm"
	"repro/internal/isa/x86"
	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

// Variant selects one of the evaluation's four DBT setups (§7.1).
type Variant int

const (
	// VariantQemu is vanilla QEMU 6.1.0: leading-fence mapping (Figure 2)
	// and helper-call RMWs.
	VariantQemu Variant = iota
	// VariantNoFences enforces no memory model at all — incorrect, but
	// the oracle for the maximum possible gain from fence optimization.
	VariantNoFences
	// VariantTCGVer is QEMU with Risotto's verified mappings and fence
	// merging (the paper's tcg-ver / tcg-tso).
	VariantTCGVer
	// VariantRisotto is the full system: verified mappings, fence
	// merging, inline CAS translation, and the dynamic host linker.
	VariantRisotto
)

var variantNames = []string{"qemu", "no-fences", "tcg-ver", "risotto"}

func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return fmt.Sprintf("variant?%d", int(v))
}

// Config parameterizes a Runtime.
type Config struct {
	// Variant selects the DBT setup.
	Variant Variant
	// MemSize is the machine memory size (default 32 MiB).
	MemSize int
	// CodeCacheBase is where generated host code is placed (default:
	// upper quarter of memory).
	CodeCacheBase uint64
	// StackSize per guest thread (default 256 KiB).
	StackSize uint64
	// IDL, when non-empty and the variant is Risotto, enables the host
	// linker for the declared functions.
	IDL string
	// Lib is the host library used by the linker (hostlib.Default() if
	// nil).
	Lib *hostlib.Library
	// Quantum is the round-robin scheduling quantum in instructions.
	Quantum int
	// MaxSteps bounds total executed host instructions (default 2e9).
	MaxSteps uint64
	// Opt, when non-nil, overrides the variant's optimizer configuration
	// (used by the ablation benchmarks).
	Opt *tcg.OptConfig
	// Chain enables translation-block chaining: a block whose exit
	// target is constant gets its dispatch trap patched into a direct
	// branch to the target block once both are translated (QEMU's
	// goto_tb). Off by default so the calibrated dispatch cost of the
	// evaluation figures stays comparable across variants.
	Chain bool
	// WeakSeed, when non-nil, runs the simulated host in operational
	// weak-memory mode (store buffers with out-of-order drain, seeded by
	// the value) — the generated code's fences then actually constrain
	// visible reorderings. Used by correctness demonstrations, not by the
	// performance figures.
	WeakSeed *int64
	// StepBudget, when non-zero, bounds each vCPU's executed host
	// instructions; a guest that reaches it (runaway loop, livelocked
	// spin) halts with a structured faults.TrapBudget instead of spinning
	// until MaxSteps.
	StepBudget uint64
	// Deadline, when non-zero, is the wall-clock watchdog for Run.
	Deadline time.Duration
	// Inject, when non-nil, arms deterministic fault injection across the
	// stack: frontend decode, code-cache allocation, memory accesses,
	// scheduler quanta, host-linked calls and emitted-code corruption.
	Inject *faults.Injector
	// SelfHeal enables the tiered self-healing layer: a trap attributed
	// to a translated block quarantines it — the block is invalidated in
	// the code cache, its tier demoted one rung (full opts → no fence
	// merging → no opts → TCG interpreter), and execution resumes — with
	// at most MaxHeals recoveries per run. Off by default so the fault
	// matrix keeps pinning every injected fault's undisguised trap.
	SelfHeal bool
	// SelfCheck additionally shadow-executes every freshly translated
	// block once against the TCG interpreter on a snapshot of CPU and
	// memory state, and quarantines the block on any register, memory or
	// exit divergence — runtime translation validation. Implies SelfHeal.
	SelfCheck bool
	// MaxHeals caps quarantine recoveries per run (default 16 when
	// SelfHeal is on).
	MaxHeals int
	// Kernel, FaultSpec and FaultSeed record run provenance for crash
	// bundles (the CLI inputs that produced this config). They do not
	// affect execution — Inject carries the armed injector itself.
	Kernel    string
	FaultSpec string
	FaultSeed int64
	// Obs, when non-nil, is the observability scope the whole stack
	// reports into: the runtime threads it through the frontend, the
	// optimizer, the backend, the machine and the injector, prefixing its
	// own metrics "core.". When nil, the runtime creates a private scope
	// so Stats() keeps working; pass one to aggregate several subsystems
	// (or to dump metrics) instead.
	Obs *obs.Scope
	// TransCache, when non-nil, is a persistent translation cache
	// (internal/transcache): compiled-tier translations look up
	// post-optimization IR by (PC, tier) before running the frontend and
	// optimizer, and store fresh IR after. Host code is still emitted
	// per-run (it is position-dependent). Ignored when SelfCheck is on —
	// shadow verification needs the pre-optimization oracle IR, which
	// cached entries by design no longer have.
	TransCache TranslationCache
	// TierUp configures the tier-up JIT (tierup.go): when enabled,
	// unpinned blocks start at the cheap TierNoOpt rung and hot ones are
	// promoted to full-tier superblocks by background translation workers.
	TierUp TierUpConfig
}

// TranslationCache is the persistent-translation-cache hook: keys are
// (guest PC, tier) within whatever image/config scope the implementation
// pinned at construction. Implementations must be safe for concurrent use
// and must return blocks the runtime may own (no aliasing with internal
// state).
type TranslationCache interface {
	LoadBlock(pc uint64, tier selfheal.Tier) (*tcg.Block, bool)
	StoreBlock(pc uint64, tier selfheal.Tier, blk *tcg.Block)
}

// Stats is a plain-struct view of the runtime counters (all uint64; the
// historical mix of int and uint64 fields is gone). It is produced by
// Runtime.Stats() from the obs registry — kept as a compatibility façade
// over the metrics under "core.".
type Stats struct {
	Blocks      uint64
	GuestBytes  uint64
	HostInsts   uint64
	DMBFull     uint64
	DMBLoad     uint64
	DMBStore    uint64
	Casal       uint64
	ExclLoop    uint64
	HelperCalls uint64
	HostCalls   uint64
	Syscalls    uint64
	// ChainPatches counts block exits rewritten into direct branches.
	ChainPatches uint64
	// CacheFlushes counts full code-cache flush-and-retranslate cycles
	// taken to recover from cache exhaustion.
	CacheFlushes uint64
	// Quarantines counts blocks quarantined for the first time;
	// Demotions counts tier downgrades (a block demoted twice counts
	// once in Quarantines, twice in Demotions).
	Quarantines uint64
	Demotions   uint64
	// Divergences counts selfcheck shadow runs whose effects disagreed
	// with the TCG interpreter oracle.
	Divergences uint64
	// Heals counts traps absorbed by quarantine-and-retranslate.
	Heals uint64
	// SelfChecks counts shadow verifications performed; InterpBlocks
	// counts interpreter-tier block executions.
	SelfChecks   uint64
	InterpBlocks uint64
	// Promotions counts hot blocks promoted to TierFull by the tier-up
	// JIT; Superblocks counts promotions that stitched more than one
	// guest block, and SuperblockGuestBlocks the blocks they covered.
	Promotions            uint64
	Superblocks           uint64
	SuperblockGuestBlocks uint64
	// CrossBlockFenceMerges counts fences eliminated by merging across
	// block seams inside superblocks — merges the per-block scheme
	// cannot see.
	CrossBlockFenceMerges uint64
	// ShardContention counts lock-stripe collisions on the sharded block
	// cache and chain tables.
	ShardContention uint64
}

// tb is one cached translation block.
type tb struct {
	guestPC  uint64
	hostAddr uint64
	codeLen  int
	// tier is the self-healing ladder rung the block was translated at.
	tier selfheal.Tier
	// super is the number of guest blocks this translation covers: 0 or 1
	// for an ordinary block, more for a promoted superblock.
	super int
}

// pltEntry is a host-linked import.
type pltEntry struct {
	sig  idl.Signature
	fn   hostlib.Func
	name string
}

// Runtime is one emulated guest process.
type Runtime struct {
	// M is the underlying simulated host machine.
	M *machine.Machine

	obs *obs.Scope
	met metrics

	cfg        Config
	feCfg      frontend.Config
	beCfg      backend.Config
	optCfg     tcg.OptConfig
	tbs        *tbCache
	codeCursor uint64
	plt        map[uint64]*pltEntry // guest PLT address → host function
	stackCur   uint64
	heapCur    uint64
	img        *guestimg.Image
	// xlat is the tier-translation entry point (translator.go): the bare
	// pipeline, or the caching wrapper when a TransCache is installed;
	// pipe is the underlying pipeline for span attribution.
	xlat Translator
	pipe *pipelineTranslator
	// tierup is the promotion engine (nil unless Config.TierUp.Enabled).
	tierup *tierUp
	// chainSites maps the host address of a patchable exit SVC to its
	// constant guest target (TB chaining).
	chainSites *addrMap
	// patched records exit SVCs rewritten into direct branches (host
	// address → guest target), so a cache flush can restore them (chain
	// reset) before recycling the region they branch into.
	patched *addrMap
	// pinned lists code-cache extents that survived the last flush
	// because a CPU was still executing inside them; the allocator skips
	// them until the next flush re-evaluates liveness.
	pinned []extent

	// heal is the quarantine registry (nil unless SelfHeal); heals counts
	// recoveries consumed against Config.MaxHeals.
	heal  *selfheal.State
	heals int
	// irCache holds the frontend IR of interpreter-tier blocks, keyed by
	// guest PC; interpStubs maps each interp stub's host address back to
	// its guest PC (stubs pinned across a cache flush stay resolvable).
	irCache     map[uint64]*tcg.Block
	interpStubs map[uint64]uint64
}

// extent is a half-open host-code byte range [start, end).
type extent struct{ start, end uint64 }

// Costs charged by the runtime on top of the machine's table.
const (
	// helperBodyCost models the helper function's prologue/epilogue and
	// the GCC-built-in wrapper around the atomic (§2.3's extra jumps).
	helperBodyCost = 36
	// marshalBase and marshalPerArg model argument marshaling between
	// guest and host ABIs (§6.2, the math-library overhead of Figure 14).
	marshalBase   = 24
	marshalPerArg = 6
	// translationCostPerByte amortizes translation work.
	translationCostPerByte = 2
)

// guestReg maps a guest register to the host register carrying it.
func guestReg(c *machine.CPU, r x86.Reg) *uint64 { return &c.Regs[int(r)] }

// newRuntime creates a runtime for the given config and loads the image.
// Exported construction goes through New (functional options) or the
// deprecated NewFromConfig shim, both in options.go.
func newRuntime(cfg Config, img *guestimg.Image) (*Runtime, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = 32 << 20
	}
	if cfg.CodeCacheBase == 0 {
		cfg.CodeCacheBase = uint64(cfg.MemSize) * 3 / 4
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = 256 << 10
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 64
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000_000
	}
	if cfg.SelfCheck {
		cfg.SelfHeal = true
	}
	if cfg.SelfHeal && cfg.MaxHeals == 0 {
		cfg.MaxHeals = 16
	}
	if cfg.TierUp.Enabled {
		cfg.TierUp = cfg.TierUp.withDefaults()
	}

	scope := cfg.Obs
	if scope == nil {
		scope = obs.NewScope("")
	}
	met := newMetrics(scope)
	rt := &Runtime{
		obs:         scope,
		met:         met,
		cfg:         cfg,
		tbs:         newTBCache(met.shardContention),
		plt:         make(map[uint64]*pltEntry),
		chainSites:  newAddrMap(met.shardContention),
		patched:     newAddrMap(met.shardContention),
		irCache:     make(map[uint64]*tcg.Block),
		interpStubs: make(map[uint64]uint64),
	}
	// Tier-up needs the registry even without SelfHeal: promotion pins,
	// the blacklist, and demotion of promoted blocks all live there.
	if cfg.SelfHeal || cfg.TierUp.Enabled {
		rt.heal = selfheal.NewState()
	}

	switch cfg.Variant {
	case VariantQemu:
		rt.feCfg = frontend.Config{Scheme: mapping.X86Qemu, CAS: frontend.CASHelper}
		rt.optCfg = tcg.OptConfig{ConstProp: true, AccessElim: true, DeadCode: true}
	case VariantNoFences:
		rt.feCfg = frontend.Config{Scheme: mapping.X86NoFences, CAS: frontend.CASHelper}
		rt.optCfg = tcg.OptConfig{ConstProp: true, AccessElim: true, DeadCode: true}
	case VariantTCGVer:
		rt.feCfg = frontend.Config{Scheme: mapping.X86Verified, CAS: frontend.CASHelper}
		rt.optCfg = tcg.DefaultOpt()
	case VariantRisotto:
		rt.feCfg = frontend.Config{Scheme: mapping.X86Verified, CAS: frontend.CASInline}
		rt.optCfg = tcg.DefaultOpt()
	default:
		return nil, fmt.Errorf("core: unknown variant %d", cfg.Variant)
	}
	if cfg.Opt != nil {
		rt.optCfg = *cfg.Opt
	}
	rt.beCfg = backend.Config{CAS: backend.CASCasal}
	rt.feCfg.Inject = cfg.Inject
	rt.feCfg.Obs = scope
	rt.optCfg.Obs = scope
	rt.beCfg.Obs = scope
	cfg.Inject.SetObs(scope)

	rt.M = machine.New(cfg.MemSize)
	rt.M.SetObs(scope)
	rt.M.Syscall = rt.handleSvc
	rt.M.OnBLR = rt.handleBLR
	rt.M.StepBudget = cfg.StepBudget
	rt.M.Deadline = cfg.Deadline
	rt.M.Inject = cfg.Inject
	if cfg.WeakSeed != nil {
		rt.M.EnableWeakMemory(*cfg.WeakSeed, 48)
	}

	// The tier-translation entry point: the pipeline over live guest
	// memory, wrapped by the persistent cache when one is installed
	// (selfcheck bypasses it — cached IR carries no oracle).
	rt.pipe = &pipelineTranslator{
		mem:        rt.M.Mem,
		fe:         rt.feCfg,
		opt:        rt.optCfg,
		keepOracle: cfg.SelfCheck,
		obs:        scope,
		cpu:        -1,
	}
	rt.xlat = rt.pipe
	if cfg.TransCache != nil && !cfg.SelfCheck {
		rt.xlat = &cachingTranslator{inner: rt.pipe, cache: cfg.TransCache}
	}
	if cfg.TierUp.Enabled {
		rt.tierup = newTierUp(rt, cfg.TierUp)
	}

	if err := rt.load(img); err != nil {
		return nil, err
	}
	return rt, nil
}

// load maps the image and prepares linker and allocator state.
func (rt *Runtime) load(img *guestimg.Image) error {
	if err := img.Load(rt.M.Mem); err != nil {
		return err
	}
	rt.img = img
	rt.codeCursor = rt.cfg.CodeCacheBase
	top := img.MaxAddr()
	rt.heapCur = (top + 0xFFF) &^ 0xFFF
	// Stacks grow down from just below the code cache.
	rt.stackCur = rt.cfg.CodeCacheBase &^ 0xF

	// Host linker setup (§6.2, steps 1–2): parse the IDL, match .dynsym
	// imports, index their PLT addresses.
	if rt.cfg.Variant == VariantRisotto && rt.cfg.IDL != "" {
		table, err := idl.ParseTable(rt.cfg.IDL)
		if err != nil {
			return err
		}
		lib := rt.cfg.Lib
		if lib == nil {
			lib = hostlib.Default()
		}
		for _, d := range img.DynSyms {
			sig, ok := table[d.Name]
			if !ok {
				continue // not declared: translated like any guest code
			}
			fn, ok := lib.Lookup(d.Name)
			if !ok {
				return fmt.Errorf("core: IDL declares %q but host library lacks it", d.Name)
			}
			rt.plt[d.PLT] = &pltEntry{sig: sig, fn: fn, name: d.Name}
		}
	}
	return nil
}

// newStack carves a stack and returns its top.
func (rt *Runtime) newStack() uint64 {
	rt.stackCur -= rt.cfg.StackSize
	return rt.stackCur + rt.cfg.StackSize - 64
}

// StartThread prepares a vCPU to run guest code at entry.
func (rt *Runtime) startThread(c *machine.CPU, entry uint64) error {
	return rt.dispatch(c, entry)
}

// Run executes the guest from its entry point to completion and returns
// the main thread's exit code. With SelfHeal enabled, traps attributable
// to a translated block are absorbed: the block is quarantined, demoted
// one tier and retranslated, and execution resumes — up to MaxHeals times.
func (rt *Runtime) Run() (uint64, error) {
	c := rt.M.CPUs[0]
	if rt.tierup != nil {
		defer rt.tierup.stop(c)
	}
	*guestReg(c, x86.RSP) = rt.newStack()
	err := rt.runHealed(func() error { return rt.startThread(c, rt.img.Entry) })
	if err == nil {
		err = rt.runHealed(func() error { return rt.M.RunAll(rt.cfg.Quantum, rt.cfg.MaxSteps) })
	}
	if err != nil {
		return 0, err
	}
	return c.ExitCode, nil
}

// dispatch points the vCPU at the translation of guestPC, translating on
// a cache miss, or performs a host-linked library call when guestPC is a
// linked PLT entry.
func (rt *Runtime) dispatch(c *machine.CPU, guestPC uint64) error {
	if e, ok := rt.plt[guestPC]; ok {
		return rt.hostCall(c, e)
	}
	if rt.tierup != nil {
		rt.tierup.tick(c, guestPC)
	}
	t, ok := rt.tbs.get(guestPC)
	if !ok {
		var err error
		t, err = rt.translate(c, guestPC)
		if err != nil {
			return err
		}
	}
	c.PC = t.hostAddr
	return nil
}

// startTier is the tier a fresh translation of guestPC begins at: the
// pinned rung when the ladder has touched the block, TierNoOpt when
// tier-up is on (cheap first, promote if hot), TierFull otherwise.
func (rt *Runtime) startTier(guestPC uint64) selfheal.Tier {
	if t, pinned := rt.heal.Lookup(guestPC); pinned {
		return t
	}
	if rt.tierup != nil {
		return selfheal.TierNoOpt
	}
	return selfheal.TierFull
}

// translate builds, optimizes and emits one block at the tier the
// quarantine registry prescribes for it. In -selfcheck mode every freshly
// compiled block is shadow-verified against the TCG interpreter before it
// is trusted; a divergence quarantines the block and retries one tier
// down, and only an exhausted ladder surfaces the miscompile as a trap.
func (rt *Runtime) translate(c *machine.CPU, guestPC uint64) (*tb, error) {
	// A promoted superblock dropped by a cache flush is reinstalled from
	// its retained IR rather than retranslated as a single block.
	if rt.tierup != nil {
		if t, promoted, err := rt.tierup.reemit(c, guestPC); promoted {
			return t, err
		}
	}
	for {
		tier := rt.startTier(guestPC)
		t, ir, err := rt.translateAtTier(c, guestPC, tier)
		if err != nil {
			return nil, err
		}
		if rt.cfg.SelfCheck && tier != selfheal.TierInterp {
			div := rt.shadowVerify(c, t, ir)
			if div != nil {
				rt.met.divergences.Inc()
				rt.obs.Event("core.selfheal.divergence", div.Summary(), c.ID, guestPC, t.hostAddr)
				if rt.quarantinePC(c, guestPC, div.Summary()) {
					continue
				}
				trap := faults.New(faults.TrapMiscompile, "%s", div.Summary())
				return nil, trap.WithCPU(c.ID).WithGuestPC(guestPC)
			}
		}
		return t, nil
	}
}

// translateAtTier builds one block at the given tier. For compiled tiers
// it also returns the unoptimized frontend IR when -selfcheck needs an
// oracle input. Code-cache exhaustion is not fatal: it triggers a full
// cache flush plus chain reset and a single retranslation attempt (QEMU's
// tb_flush recovery); only a block that cannot fit an empty cache still
// reports the typed trap.
func (rt *Runtime) translateAtTier(c *machine.CPU, guestPC uint64, tier selfheal.Tier) (*tb, *tcg.Block, error) {
	if tier == selfheal.TierInterp {
		t, err := rt.translateInterp(c, guestPC)
		return t, nil, err
	}
	tstart := rt.obs.Begin()
	rt.pipe.cpu = c.ID // span attribution for the foreground pipeline
	block, ir, err := rt.xlat.TranslateIR(guestPC, tier)
	if err != nil {
		if t, ok := faults.As(err); ok {
			t.WithCPU(c.ID).WithGuestPC(guestPC)
		}
		return nil, nil, err
	}
	t, err := rt.emitWithFlushRetry(c, block, guestPC)
	if t != nil {
		t.tier = tier
	}
	rt.met.translateNS.Observe(uint64(rt.obs.Begin() - tstart))
	return t, ir, err
}

// translateInterp installs the interpreter-tier "translation" of guestPC:
// a single SVC #SvcInterp stub in the code cache plus the block's literal
// frontend IR in the IR cache. handleSvc recognizes the stub and runs the
// IR through the TCG interpreter — no code generation is trusted at all.
// The frontend runs with SyscallBarrier so a blocked syscall (join) can
// retry the whole block from its stub.
func (rt *Runtime) translateInterp(c *machine.CPU, guestPC uint64) (*tb, error) {
	if t := rt.cfg.Inject.Hit(faults.SiteCacheAlloc); t != nil {
		return nil, t.WithCPU(c.ID).WithGuestPC(guestPC)
	}
	fe := rt.feCfg
	fe.SyscallBarrier = true
	tstart := rt.obs.Begin()
	block, err := frontend.Translate(rt.M.Mem, guestPC, fe)
	rt.obs.Span("frontend.decode", "interp", c.ID, guestPC, 0, tstart)
	if err != nil {
		if t, ok := faults.As(err); ok {
			t.WithCPU(c.ID).WithGuestPC(guestPC)
		}
		return nil, err
	}
	w, err := arm.Encode(arm.Inst{Op: arm.SVC, Imm: backend.SvcInterp})
	if err != nil {
		return nil, err
	}
	base, aerr := rt.allocCode(c, arm.InstBytes, guestPC)
	if aerr != nil && faults.IsKind(aerr, faults.TrapCacheExhausted) {
		rt.flushCodeCache()
		base, aerr = rt.allocCode(c, arm.InstBytes, guestPC)
	}
	if aerr != nil {
		return nil, aerr
	}
	binary.LittleEndian.PutUint32(rt.M.Mem[base:], w)
	rt.M.InvalidateDecodeAt(base)
	t := &tb{guestPC: guestPC, hostAddr: base, codeLen: arm.InstBytes, tier: selfheal.TierInterp}
	rt.tbs.put(t)
	rt.irCache[guestPC] = block
	rt.interpStubs[base] = guestPC
	rt.met.blocks.Inc()
	rt.met.guestBytes.Add(block.GuestEnd - block.GuestPC)
	rt.obs.Span("backend.emit", "interp-stub", c.ID, guestPC, base, tstart)
	rt.met.translateNS.Observe(uint64(rt.obs.Begin() - tstart))
	return t, nil
}

// allocCode reserves size bytes of code cache, skipping pinned extents.
// Only position-independent code (the interp stub) uses it; full blocks
// regenerate per-candidate base in emitBlock instead.
func (rt *Runtime) allocCode(c *machine.CPU, size int, guestPC uint64) (uint64, error) {
	base := rt.codeCursor
	for {
		end := base + uint64(size)
		if end > uint64(len(rt.M.Mem)) || end < base {
			t := faults.New(faults.TrapCacheExhausted,
				"code cache exhausted at %#x (stub %d bytes, memory ends %#x)",
				base, size, len(rt.M.Mem))
			return 0, t.WithCPU(c.ID).WithGuestPC(guestPC)
		}
		if pe, ok := rt.pinnedOverlap(base, end); ok {
			base = (pe.end + 15) &^ 15
			continue
		}
		rt.codeCursor = (end + 15) &^ 15
		return base, nil
	}
}

// emitBlock generates host code for block at the next free code-cache
// slot, skipping pinned extents, and installs it. A block that does not
// fit reports a faults.TrapCacheExhausted (recoverable via flush).
func (rt *Runtime) emitBlock(c *machine.CPU, block *tcg.Block, guestPC uint64) (*tb, error) {
	if t := rt.cfg.Inject.Hit(faults.SiteCacheAlloc); t != nil {
		return nil, t.WithCPU(c.ID).WithGuestPC(guestPC)
	}
	base := rt.codeCursor
	for {
		estart := rt.obs.Begin()
		code, st, err := backend.Generate(block, base, rt.beCfg)
		if err != nil {
			return nil, fmt.Errorf("core: generating %#x: %w", guestPC, err)
		}
		end := base + uint64(len(code))
		if end > uint64(len(rt.M.Mem)) || end < base {
			t := faults.New(faults.TrapCacheExhausted,
				"code cache exhausted at %#x (block %d bytes, memory ends %#x)",
				base, len(code), len(rt.M.Mem))
			return nil, t.WithCPU(c.ID).WithGuestPC(guestPC)
		}
		// Generated code is position-dependent, so a collision with a
		// pinned extent moves the cursor past it and regenerates.
		if pe, ok := rt.pinnedOverlap(base, end); ok {
			base = (pe.end + 15) &^ 15
			continue
		}
		copy(rt.M.Mem[base:], code)
		t := &tb{guestPC: guestPC, hostAddr: base, codeLen: len(code)}
		rt.codeCursor = (end + 15) &^ 15
		rt.tbs.put(t)

		rt.met.blocks.Inc()
		rt.met.guestBytes.Add(block.GuestEnd - block.GuestPC)
		rt.met.hostInsts.Add(uint64(st.Insts))
		rt.met.dmbFull.Add(uint64(st.DMBFull))
		rt.met.dmbLoad.Add(uint64(st.DMBLoad))
		rt.met.dmbStore.Add(uint64(st.DMBStore))
		rt.met.casal.Add(uint64(st.Casal))
		rt.met.exclLoop.Add(uint64(st.ExclLoop))
		rt.met.codeBytes.Observe(uint64(len(code)))
		rt.obs.Span("backend.emit", "", c.ID, guestPC, base, estart)
		if rt.cfg.Chain {
			for _, slot := range st.ChainSlots {
				// Host-linked PLT targets must keep trapping: the host call
				// runs in the dispatcher.
				if _, linked := rt.plt[slot.GuestTarget]; linked {
					continue
				}
				rt.chainSites.put(t.hostAddr+uint64(slot.Off), slot.GuestTarget)
			}
		}
		// Miscompile injection: corrupt the freshly installed code by
		// overwriting its first instruction with SVC #SvcMiscompile — a
		// recognizable marker the SVC handler turns into a structured
		// TrapMiscompile the moment the block executes. Corrupting the
		// first instruction guarantees the block has no partial effects,
		// so quarantine-and-retranslate recovery is always sound.
		if mt := rt.cfg.Inject.Hit(faults.SiteMiscompile); mt != nil {
			if mw, merr := arm.Encode(arm.Inst{Op: arm.SVC, Imm: backend.SvcMiscompile}); merr == nil {
				binary.LittleEndian.PutUint32(rt.M.Mem[base:], mw)
				rt.M.InvalidateDecodeAt(base)
				rt.met.miscompiles.Inc()
				rt.obs.Event("core.selfheal.miscompile_injected", "", c.ID, guestPC, base)
			}
		}
		c.Cycles += translationCostPerByte * (block.GuestEnd - block.GuestPC)
		return t, nil
	}
}

// pinnedOverlap reports the first pinned extent intersecting [start, end).
func (rt *Runtime) pinnedOverlap(start, end uint64) (extent, bool) {
	for _, e := range rt.pinned {
		if start < e.end && e.start < end {
			return e, true
		}
	}
	return extent{}, false
}

// flushCodeCache drops every translation and resets the allocation cursor
// so translation can start over — the graceful-degradation answer to cache
// exhaustion. Correctness around the flush:
//
//   - Chain reset: every patched direct branch is restored to its exit
//     SVC first, so no surviving code can branch into recycled memory.
//   - Pinning: CPUs parked mid-block by the scheduler (or helper-call
//     link addresses in X30) keep executing old code until their next
//     block-end trap; the extents containing any live CPU's PC or LR are
//     pinned and the allocator routes around them until a later flush
//     observes them dead.
//   - The machine's decode cache is invalidated wholesale, since freed
//     addresses will be rewritten with fresh code.
func (rt *Runtime) flushCodeCache() {
	w, err := arm.Encode(arm.Inst{Op: arm.SVC, Imm: backend.SvcTBExit})
	if err == nil {
		for _, e := range rt.patched.snapshot() {
			binary.LittleEndian.PutUint32(rt.M.Mem[e.addr:], w)
		}
	}
	rt.patched.reset()
	rt.chainSites.reset()

	blocks := rt.tbs.snapshot()
	candidates := make([]extent, 0, len(blocks)+len(rt.pinned))
	for _, t := range blocks {
		candidates = append(candidates, extent{t.hostAddr, t.hostAddr + uint64(t.codeLen)})
	}
	candidates = append(candidates, rt.pinned...)
	var pins []extent
	for _, e := range candidates {
		for _, c := range rt.M.CPUs {
			if c.Halted {
				continue
			}
			if (c.PC >= e.start && c.PC < e.end) ||
				(c.Regs[30] >= e.start && c.Regs[30] < e.end) {
				pins = append(pins, e)
				break
			}
		}
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i].start < pins[j].start })
	rt.pinned = pins

	rt.tbs.reset()
	rt.codeCursor = rt.cfg.CodeCacheBase
	// Interp stubs inside pinned extents may still execute (a CPU parked
	// at the stub), so their reverse mapping must survive; the rest is
	// recycled memory. The IR cache is keyed by guest PC and simply gets
	// overwritten on retranslation.
	for addr := range rt.interpStubs {
		live := false
		for _, e := range pins {
			if addr >= e.start && addr < e.end {
				live = true
				break
			}
		}
		if !live {
			delete(rt.interpStubs, addr)
		}
	}
	rt.M.InvalidateDecodeCache()
	rt.met.cacheFlushes.Inc()
	rt.obs.Event("core.cache.flush", fmt.Sprintf("pinned=%d", len(pins)), -1, 0, 0)
}

// invalidateBlock removes guestPC's translation so the next dispatch
// retranslates it. Direct branches patched into the block are restored to
// their dispatch SVCs first, so no surviving code path can reach the stale
// copy; its extent is leaked until the next full flush (piecemeal reuse
// cannot be made safe under chaining). CPUs parked mid-block by the
// scheduler may still finish the stale copy once — any trap it produces is
// attributed and quarantined again, bounded by MaxHeals.
func (rt *Runtime) invalidateBlock(guestPC uint64) {
	t, ok := rt.tbs.get(guestPC)
	if !ok {
		return
	}
	if w, err := arm.Encode(arm.Inst{Op: arm.SVC, Imm: backend.SvcTBExit}); err == nil {
		for _, e := range rt.patched.snapshot() {
			if e.val != guestPC {
				continue
			}
			binary.LittleEndian.PutUint32(rt.M.Mem[e.addr:], w)
			rt.M.InvalidateDecodeAt(e.addr)
			rt.patched.remove(e.addr)
			rt.chainSites.put(e.addr, e.val)
		}
	}
	for _, e := range rt.chainSites.snapshot() {
		if e.addr >= t.hostAddr && e.addr < t.hostAddr+uint64(t.codeLen) {
			rt.chainSites.remove(e.addr)
		}
	}
	rt.tbs.remove(guestPC)
	delete(rt.irCache, guestPC)
	delete(rt.interpStubs, t.hostAddr)
}

// chain patches the exit SVC at svcAddr into a direct branch to the target
// block, so the dispatcher is skipped on subsequent executions (QEMU's
// goto_tb / block chaining).
func (rt *Runtime) chain(svcAddr uint64, target *tb) error {
	off := (int64(target.hostAddr) - int64(svcAddr)) / arm.InstBytes
	if off < -(1<<23) || off >= 1<<23 {
		// Too far for a direct branch; keep trapping.
		return nil
	}
	w, err := arm.Encode(arm.Inst{Op: arm.B, Off: int32(off)})
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(rt.M.Mem[svcAddr:], w)
	rt.M.InvalidateDecodeAt(svcAddr)
	rt.chainSites.remove(svcAddr)
	rt.patched.put(svcAddr, target.guestPC)
	rt.met.chainPatches.Inc()
	rt.met.chainPatchShards[shardIndex(svcAddr)].Inc()
	rt.obs.Event("core.chain.patch", "", -1, target.guestPC, svcAddr)
	return nil
}

// guestPCOf maps a host-code address back to the guest PC of the block
// containing it, for trap attribution.
func (rt *Runtime) guestPCOf(hostAddr uint64) (uint64, bool) {
	t, ok := rt.tbs.find(func(t *tb) bool {
		return hostAddr >= t.hostAddr && hostAddr < t.hostAddr+uint64(t.codeLen)
	})
	if !ok {
		return 0, false
	}
	return t.guestPC, true
}

// DisassembleBlock returns the host-code disassembly of the translation
// of guestPC (translating it on the calling CPU if not yet cached), for
// inspection and tooling. Undecodable words — e.g. injected corruption —
// render as raw ".word" lines instead of failing, so crash bundles can
// disassemble the very block that trapped.
func (rt *Runtime) DisassembleBlock(guestPC uint64) (string, error) {
	t, ok := rt.tbs.get(guestPC)
	if !ok {
		var err error
		t, err = rt.translate(rt.M.CPUs[0], guestPC)
		if err != nil {
			return "", err
		}
	}
	return rt.disasmTB(t), nil
}

// disasmTB renders t's host code, tolerating undecodable words.
func (rt *Runtime) disasmTB(t *tb) string {
	var sb []byte
	sb = append(sb, fmt.Sprintf("TB guest=%#x host=%#x (%d bytes, tier %s)\n",
		t.guestPC, t.hostAddr, t.codeLen, t.tier)...)
	for off := 0; off < t.codeLen; off += arm.InstBytes {
		addr := t.hostAddr + uint64(off)
		inst, err := arm.DecodeAt(rt.M.Mem, int(addr))
		if err != nil {
			w := binary.LittleEndian.Uint32(rt.M.Mem[addr:])
			sb = append(sb, fmt.Sprintf("  %#08x: .word %#08x (undecodable)\n", addr, w)...)
			continue
		}
		sb = append(sb, fmt.Sprintf("  %#08x: %v\n", addr, inst)...)
	}
	return string(sb)
}

// BlockPCs returns every translated guest PC, sorted by translation order
// is not guaranteed; callers sort as needed.
func (rt *Runtime) BlockPCs() []uint64 {
	blocks := rt.tbs.snapshot()
	out := make([]uint64, 0, len(blocks))
	for _, t := range blocks {
		out = append(out, t.guestPC)
	}
	return out
}

// handleSvc serves translated-code traps: block exits and halts.
func (rt *Runtime) handleSvc(m *machine.Machine, c *machine.CPU, imm uint16) error {
	switch imm {
	case backend.SvcTBExit:
		if rt.cfg.Chain {
			// c.PC was advanced past the SVC before the trap.
			svcAddr := c.PC - arm.InstBytes
			if guestTarget, ok := rt.chainSites.get(svcAddr); ok {
				if err := rt.dispatch(c, guestTarget); err != nil {
					return err
				}
				// Translating the target may have flushed the cache, which
				// clears chainSites and may recycle the block holding this
				// SVC — re-check before patching it.
				if _, still := rt.chainSites.get(svcAddr); !still {
					return nil
				}
				// With tier-up on, a still-promotable target keeps trapping
				// through dispatch so its execution counter keeps counting;
				// the site is chained once the target is promoted or
				// blacklisted.
				if rt.tierup != nil && rt.tierup.deferChain(guestTarget) {
					return nil
				}
				// dispatch pointed the CPU at the target block (a host
				// call would have redirected elsewhere; only patch when
				// the target is a plain block).
				if t, ok := rt.tbs.get(guestTarget); ok && c.PC == t.hostAddr {
					return rt.chain(svcAddr, t)
				}
				return nil
			}
		}
		return rt.dispatch(c, c.Regs[18])
	case backend.SvcHalt:
		c.Halted = true
		return nil
	case backend.SvcInterp:
		// Interpreter-tier stub: the block's literal IR runs through the
		// TCG interpreter. c.PC was advanced past the SVC before the trap.
		svcAddr := c.PC - arm.InstBytes
		gpc, ok := rt.interpStubs[svcAddr]
		if !ok {
			return faults.New(faults.TrapDecode,
				"core: stray interp stub at %#x", svcAddr).WithCPU(c.ID).WithHostPC(svcAddr)
		}
		return rt.interpExec(c, gpc, svcAddr)
	case backend.SvcMiscompile:
		// Injected translation corruption executed: surface the structured
		// miscompile trap, attributed to the containing block so the
		// self-healing layer can quarantine it.
		svcAddr := c.PC - arm.InstBytes
		t := faults.New(faults.TrapMiscompile, "core: corrupted translation executed")
		t.Injected = true
		t.WithCPU(c.ID)
		if gpc, ok := rt.guestPCOf(svcAddr); ok {
			return t.WithGuestPC(gpc)
		}
		return t.WithHostPC(svcAddr)
	default:
		t := faults.New(faults.TrapDecode, "core: unexpected svc #%d", imm).WithCPU(c.ID)
		// c.PC was advanced past the SVC before the trap.
		if gpc, ok := rt.guestPCOf(c.PC - arm.InstBytes); ok {
			return t.WithGuestPC(gpc)
		}
		return t.WithHostPC(c.PC - arm.InstBytes)
	}
}
