// Functional-options construction for the runtime. The historical
// struct-literal Config grew one field per PR until every caller carried a
// sprawling literal naming defaults it didn't care about; New now takes
// the guest image plus options, mirroring litmus.Enumerate(p, m, ...Option).
// Config itself survives as the internal parameter block (and the crash-
// bundle replay contract); NewFromConfig is the deprecated shim that keeps
// struct-literal callers compiling for one release.

package core

import (
	"time"

	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/hostlib"
	"repro/internal/obs"
	"repro/internal/tcg"
)

// Option configures a Runtime under construction.
type Option func(*Config)

// WithVariant selects the DBT setup (default VariantQemu).
func WithVariant(v Variant) Option {
	return func(c *Config) { c.Variant = v }
}

// WithMemSize sets the machine memory size in bytes.
func WithMemSize(bytes int) Option {
	return func(c *Config) { c.MemSize = bytes }
}

// WithCodeCacheBase places the generated-code region.
func WithCodeCacheBase(addr uint64) Option {
	return func(c *Config) { c.CodeCacheBase = addr }
}

// WithStackSize sets the per-thread guest stack size.
func WithStackSize(bytes uint64) Option {
	return func(c *Config) { c.StackSize = bytes }
}

// WithHostLinker enables the dynamic host linker (§6.2) for the functions
// the IDL source declares; lib nil means hostlib.Default().
func WithHostLinker(idlSrc string, lib *hostlib.Library) Option {
	return func(c *Config) { c.IDL, c.Lib = idlSrc, lib }
}

// WithQuantum sets the round-robin scheduling quantum in instructions.
func WithQuantum(insts int) Option {
	return func(c *Config) { c.Quantum = insts }
}

// WithMaxSteps bounds total executed host instructions.
func WithMaxSteps(n uint64) Option {
	return func(c *Config) { c.MaxSteps = n }
}

// WithOptConfig overrides the variant's optimizer configuration (the
// ablation benchmarks' knob).
func WithOptConfig(o tcg.OptConfig) Option {
	return func(c *Config) { c.Opt = &o }
}

// WithChain enables translation-block chaining (QEMU's goto_tb).
func WithChain(on bool) Option {
	return func(c *Config) { c.Chain = on }
}

// WithWeakMemory runs the simulated host in operational weak-memory mode,
// seeded by seed.
func WithWeakMemory(seed int64) Option {
	return func(c *Config) { s := seed; c.WeakSeed = &s }
}

// WithStepBudget bounds each vCPU's executed host instructions.
func WithStepBudget(n uint64) Option {
	return func(c *Config) { c.StepBudget = n }
}

// WithDeadline sets the wall-clock watchdog for Run.
func WithDeadline(d time.Duration) Option {
	return func(c *Config) { c.Deadline = d }
}

// WithFaults arms deterministic fault injection.
func WithFaults(inj *faults.Injector) Option {
	return func(c *Config) { c.Inject = inj }
}

// WithSelfHeal enables the tiered self-healing layer.
func WithSelfHeal(on bool) Option {
	return func(c *Config) { c.SelfHeal = on }
}

// WithSelfCheck enables runtime translation validation (implies SelfHeal).
func WithSelfCheck(on bool) Option {
	return func(c *Config) { c.SelfCheck = on }
}

// WithMaxHeals caps quarantine recoveries per run.
func WithMaxHeals(n int) Option {
	return func(c *Config) { c.MaxHeals = n }
}

// WithProvenance records the CLI inputs (kernel name, fault spec, fault
// seed) for crash bundles; it does not affect execution.
func WithProvenance(kernel, faultSpec string, faultSeed int64) Option {
	return func(c *Config) { c.Kernel, c.FaultSpec, c.FaultSeed = kernel, faultSpec, faultSeed }
}

// WithObs sets the observability scope the whole stack reports into.
func WithObs(sc *obs.Scope) Option {
	return func(c *Config) { c.Obs = sc }
}

// WithTranslationCache installs a persistent translation cache.
func WithTranslationCache(tc TranslationCache) Option {
	return func(c *Config) { c.TransCache = tc }
}

// WithTierUp enables the tier-up JIT: hot-block promotion in background
// translation workers, with superblock translation units. Zero fields of
// tu take their defaults (threshold 8, superblock max 4, 2 workers).
func WithTierUp(tu TierUpConfig) Option {
	return func(c *Config) { c.TierUp = tu }
}

// New creates a runtime for the guest image, configured by options.
func New(img *guestimg.Image, opts ...Option) (*Runtime, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return newRuntime(cfg, img)
}

// NewFromConfig creates a runtime from a fully-populated Config.
//
// Deprecated: build the runtime with New(img, ...Option) instead. This
// shim keeps struct-literal callers (and crash-bundle replay, whose
// ReplayConfig still reconstructs a Config) working for one release.
func NewFromConfig(cfg Config, img *guestimg.Image) (*Runtime, error) {
	return newRuntime(cfg, img)
}
