// Tier-up: the promotion half of the JIT. PR 5's self-healing ladder only
// ever demotes; with tier-up enabled the ladder runs both ways. New blocks
// start at the cheap TierNoOpt rung, per-block execution counters find the
// hot ones, and background translation workers rebuild them at TierFull —
// as hot-trace superblocks stitched across taken branches (tcg.Concat) —
// while execution continues on the cheap copy. The finished translation is
// swapped in through the same invalidation + chain-reset machinery
// quarantine uses, and a later trap in promoted code demotes it back down
// the ladder (with a promotion blacklist after repeated failures, so the
// two directions cannot livelock).
//
// Concurrency contract: the machine's execution loop is single-goroutine,
// and every tierUp map is touched only from it (tick/drain/install run
// inside dispatch). Workers receive a private snapshot of guest text and
// counters, share nothing mutable with the runtime, and hand results back
// over a channel — the only synchronization between the two sides.

package core

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/machine"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

// TierUpConfig parameterizes the tier-up JIT.
type TierUpConfig struct {
	// Enabled turns tier-up on: unpinned blocks start at TierNoOpt and
	// hot ones are promoted in the background.
	Enabled bool
	// PromoteThreshold is how many dispatches make a block hot
	// (default 8).
	PromoteThreshold int
	// SuperblockMax bounds how many guest blocks one promoted superblock
	// may stitch (default 4; 1 disables superblocks but keeps promotion).
	SuperblockMax int
	// Workers is the background translation worker count (default 2).
	Workers int
}

// withDefaults backfills zero fields.
func (tc TierUpConfig) withDefaults() TierUpConfig {
	if tc.PromoteThreshold <= 0 {
		tc.PromoteThreshold = 8
	}
	if tc.SuperblockMax <= 0 {
		tc.SuperblockMax = 4
	}
	if tc.Workers <= 0 {
		tc.Workers = 2
	}
	return tc
}

// promoteReq is one background promotion job. Workers never read live
// machine state: counts is a copy taken on the execution loop at enqueue
// time, and text is the run's shared immutable snapshot of guest text
// (read-only on every side).
type promoteReq struct {
	pc     uint64
	text   []byte
	counts map[uint64]uint64
	plt    map[uint64]bool
	// failures is the block's quarantine count at enqueue time; a
	// mismatch at install time means the ladder moved while the worker
	// ran and the result is stale.
	failures int
}

// promotion is a finished background translation, ready to install.
type promotion struct {
	pc    uint64
	trace []uint64
	// ir is the optimized superblock; oracle the unoptimized stitched IR
	// (selfcheck's interpreter input at install time).
	ir     *tcg.Block
	oracle *tcg.Block
	// crossFences is how many fences merging across block seams saved
	// over optimizing the components separately.
	crossFences uint64
	// failures echoes promoteReq.failures for the staleness check.
	failures int
	err      error
}

// tierUp owns the promotion pipeline of one runtime.
type tierUp struct {
	rt  *Runtime
	cfg TierUpConfig

	counts   map[uint64]uint64
	pending  map[uint64]bool
	promoted map[uint64]*promotion

	// textSnap is one copy of guest text shared (read-only) by every
	// promotion request of the current run; guest text is immutable while
	// a run executes, so one snapshot serves all workers.
	textSnap []byte

	reqs    chan promoteReq
	results chan *promotion
	wg      sync.WaitGroup
	started bool
}

func newTierUp(rt *Runtime, cfg TierUpConfig) *tierUp {
	return &tierUp{
		rt:       rt,
		cfg:      cfg,
		counts:   make(map[uint64]uint64),
		pending:  make(map[uint64]bool),
		promoted: make(map[uint64]*promotion),
	}
}

// start spins up the worker pool on first use. Workers get a private
// pipeline config: injection is disarmed (faults stay attributed to the
// foreground pipeline) and spans are silenced (the tracer is not a
// concurrency boundary worth paying for here); obs counters are atomic
// and shared.
func (tu *tierUp) start() {
	if tu.started {
		return
	}
	tu.started = true
	tu.reqs = make(chan promoteReq, 64)
	tu.results = make(chan *promotion, 64)
	fe := tu.rt.feCfg
	fe.Inject = nil
	opt := tu.rt.optCfg
	for i := 0; i < tu.cfg.Workers; i++ {
		tu.wg.Add(1)
		go func() {
			defer tu.wg.Done()
			for req := range tu.reqs {
				tu.results <- buildPromotion(req, fe, opt, tu.cfg.SuperblockMax)
			}
		}()
	}
}

// stop shuts the pool down at the end of a run and installs everything
// the workers finished. Results are collected concurrently with the
// worker wait: with more outstanding jobs than the results buffer holds,
// a worker would otherwise block sending into the full channel and the
// wait would never return. Installing the stragglers here — rather than
// discarding them — makes promotion deterministic at run boundaries:
// every request enqueued during the run has landed (or been rejected as
// stale) by the time Run returns, so Stats().Promotions does not depend
// on how worker scheduling raced run completion. The runtime calls stop
// from its execution loop once the machine has halted; a later Run
// restarts the pool on demand.
func (tu *tierUp) stop(c *machine.CPU) {
	if !tu.started {
		return
	}
	close(tu.reqs)
	var finished []*promotion
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for p := range tu.results {
			finished = append(finished, p)
		}
	}()
	tu.wg.Wait()
	close(tu.results)
	<-collected
	tu.started = false
	tu.textSnap = nil
	for _, p := range finished {
		tu.install(c, p)
	}
}

// tick runs on every dispatch: install any finished promotions, then count
// this block and enqueue it when it crosses the hot threshold. Re-fires on
// every further threshold multiple so a drop (full queue, stale result)
// retries while the block stays hot.
func (tu *tierUp) tick(c *machine.CPU, guestPC uint64) {
	tu.drain(c)
	n := tu.counts[guestPC] + 1
	tu.counts[guestPC] = n
	if n < uint64(tu.cfg.PromoteThreshold) || n%uint64(tu.cfg.PromoteThreshold) != 0 {
		return
	}
	tu.request(guestPC)
}

// request snapshots the counters and hands pc to the workers. Guest text
// is snapshotted once per run and shared read-only across requests; only
// the counter map is copied per hot block.
func (tu *tierUp) request(pc uint64) {
	rt := tu.rt
	if tu.pending[pc] || tu.promoted[pc] != nil || !rt.heal.PromotionAllowed(pc) {
		return
	}
	if tu.textSnap == nil {
		tu.textSnap = append([]byte(nil), rt.M.Mem[:rt.img.MaxAddr()]...)
	}
	req := promoteReq{
		pc:       pc,
		text:     tu.textSnap,
		counts:   make(map[uint64]uint64, len(tu.counts)),
		plt:      make(map[uint64]bool, len(rt.plt)),
		failures: rt.heal.Failures(pc),
	}
	for k, v := range tu.counts {
		req.counts[k] = v
	}
	for a := range rt.plt {
		req.plt[a] = true
	}
	tu.start()
	select {
	case tu.reqs <- req:
		tu.pending[pc] = true
		rt.obs.Event("core.tierup.enqueue", "", -1, pc, 0)
	default:
		// Queue full; the block stays hot and re-fires next threshold.
	}
}

// drain installs every finished promotion without blocking. Installation
// happens here — at a dispatch boundary on the execution loop — never
// mid-block, so the swap can reuse quarantine's invalidation machinery
// unchanged.
func (tu *tierUp) drain(c *machine.CPU) {
	if !tu.started {
		return
	}
	for {
		select {
		case p := <-tu.results:
			tu.install(c, p)
		default:
			return
		}
	}
}

// install swaps a finished promotion into the code cache: invalidate the
// cheap copy (restoring any chained branches into it), emit the superblock
// at TierFull, and pin the new tier in the quarantine registry. Stale
// results — the block was demoted while the worker ran — are dropped; with
// selfcheck on, the promoted code is shadow-verified against the stitched
// oracle before it is trusted, and a divergence demotes instead of
// installing.
func (tu *tierUp) install(c *machine.CPU, p *promotion) {
	rt := tu.rt
	delete(tu.pending, p.pc)
	if p.err != nil {
		rt.obs.Event("core.tierup.error", p.err.Error(), c.ID, p.pc, 0)
		return
	}
	if !rt.heal.PromotionAllowed(p.pc) || rt.heal.Failures(p.pc) != p.failures {
		rt.obs.Event("core.tierup.stale", "", c.ID, p.pc, 0)
		return
	}
	from := rt.heal.TierOf(p.pc)
	if t, ok := rt.tbs.get(p.pc); ok {
		from = t.tier // the installed copy's actual rung (implicit TierNoOpt)
	}
	rt.invalidateBlock(p.pc)
	t, err := rt.emitWithFlushRetry(c, p.ir, p.pc)
	if err != nil {
		rt.obs.Event("core.tierup.emit_error", err.Error(), c.ID, p.pc, 0)
		return
	}
	t.tier = selfheal.TierFull
	t.super = len(p.trace)
	if rt.cfg.SelfCheck {
		if div := rt.shadowVerify(c, t, p.oracle); div != nil {
			rt.met.divergences.Inc()
			rt.obs.Event("core.selfheal.divergence", div.Summary(), c.ID, p.pc, t.hostAddr)
			rt.quarantinePC(c, p.pc, div.Summary())
			return
		}
	}
	rt.heal.Promote(p.pc, from, selfheal.TierFull,
		fmt.Sprintf("hot block promoted (%d-block trace)", len(p.trace)))
	tu.promoted[p.pc] = p
	rt.met.promotions.Inc()
	if len(p.trace) > 1 {
		rt.met.superBlocks.Inc()
		rt.met.superGuestBlocks.Add(uint64(len(p.trace)))
	}
	rt.met.crossFences.Add(p.crossFences)
	rt.obs.Event("core.tierup.promote",
		fmt.Sprintf("%d blocks, %d cross-block merges", len(p.trace), p.crossFences),
		c.ID, p.pc, t.hostAddr)
}

// reemit reinstalls a previously promoted superblock after a cache flush
// dropped it — translate consults it before the per-block pipeline so a
// flush does not silently forget promotions. The IR was verified at
// install time; re-verification is skipped.
func (tu *tierUp) reemit(c *machine.CPU, guestPC uint64) (*tb, bool, error) {
	p := tu.promoted[guestPC]
	if p == nil {
		return nil, false, nil
	}
	t, err := tu.rt.emitWithFlushRetry(c, p.ir, guestPC)
	if err != nil {
		return nil, true, err
	}
	t.tier = selfheal.TierFull
	t.super = len(p.trace)
	return t, true, nil
}

// demoted clears promotion state when the quarantine path pulls a block
// back down; the failure count it just gained feeds the blacklist.
func (tu *tierUp) demoted(guestPC uint64) {
	delete(tu.promoted, guestPC)
}

// chainDeferPatience bounds chain deferral, in multiples of
// PromoteThreshold: a block dispatched this many times without landing a
// promotion chains anyway, so a never-promoted block costs at most a
// fixed number of dispatcher round trips rather than trapping forever.
const chainDeferPatience = 4

// deferChain reports whether chaining into guestPC should wait: a chained
// branch bypasses dispatch, which would starve the execution counter that
// decides promotion. Once the block is promoted (or blacklisted) the
// counter no longer matters and chaining proceeds; likewise once a
// promotion request is already in flight (the counter has done its job),
// or after chainDeferPatience×threshold dispatches without a promotion
// landing — deferral must be a bounded cost, never an open-ended perf
// regression versus tier-up off.
func (tu *tierUp) deferChain(guestPC uint64) bool {
	if tu.promoted[guestPC] != nil || !tu.rt.heal.PromotionAllowed(guestPC) {
		return false
	}
	if tu.pending[guestPC] {
		return false
	}
	return tu.counts[guestPC] < uint64(tu.cfg.PromoteThreshold*chainDeferPatience)
}

// emitWithFlushRetry is emitBlock plus the standard exhaustion recovery
// (flush once, retry once).
func (rt *Runtime) emitWithFlushRetry(c *machine.CPU, block *tcg.Block, guestPC uint64) (*tb, error) {
	t, err := rt.emitBlock(c, block, guestPC)
	if err != nil && faults.IsKind(err, faults.TrapCacheExhausted) {
		rt.flushCodeCache()
		t, err = rt.emitBlock(c, block, guestPC)
	}
	return t, err
}

// buildPromotion runs entirely on a worker goroutine over the request's
// private snapshot: translate the hot block, greedily follow its hottest
// recorded chain edge into successors (stopping at revisits — loop backs —
// host-linked PLT targets, cold or out-of-image successors, and
// SuperblockMax), stitch the trace with tcg.Concat, and optimize the whole
// superblock at full tier.
func buildPromotion(req promoteReq, fe frontend.Config, opt tcg.OptConfig, maxBlocks int) *promotion {
	head, err := frontend.Translate(req.text, req.pc, fe)
	if err != nil {
		return &promotion{pc: req.pc, failures: req.failures, err: err}
	}
	comps := []*tcg.Block{head}
	trace := []uint64{req.pc}
	for len(comps) < maxBlocks {
		next, ok := pickSuccessor(comps[len(comps)-1], trace, req)
		if !ok {
			break
		}
		blk, err := frontend.Translate(req.text, next, fe)
		if err != nil {
			break // undecodable successor: the trace ends here
		}
		comps = append(comps, blk)
		trace = append(trace, next)
	}
	super, err := tcg.Concat(comps)
	if err != nil {
		return &promotion{pc: req.pc, failures: req.failures, err: err}
	}
	oracle := super.Clone()
	tcg.Optimize(super, opt.Degrade(selfheal.TierFull.OptLevel()))
	var cross uint64
	if len(comps) > 1 {
		cross = tcg.CrossBlockFences(comps, super, opt)
	}
	return &promotion{
		pc: req.pc, trace: trace, ir: super, oracle: oracle,
		crossFences: cross, failures: req.failures,
	}
}

// pickSuccessor chooses the hottest eligible chain edge out of blk.
func pickSuccessor(blk *tcg.Block, trace []uint64, req promoteReq) (uint64, bool) {
	onTrace := func(pc uint64) bool {
		for _, t := range trace {
			if t == pc {
				return true
			}
		}
		return false
	}
	var best uint64
	var bestCount uint64
	found := false
	for _, target := range blk.ExitTargets() {
		if target == 0 || target >= uint64(len(req.text)) {
			continue
		}
		if onTrace(target) || req.plt[target] {
			continue
		}
		n := req.counts[target]
		if n == 0 {
			continue // cold: never observed at dispatch
		}
		if !found || n > bestCount {
			best, bestCount, found = target, n, true
		}
	}
	return best, found
}
