package core

import (
	"testing"

	"repro/internal/workloads"
)

// BenchmarkTranslation measures translation throughput (guest bytes per
// host second): build a kernel image and translate every block once.
func BenchmarkTranslation(b *testing.B) {
	k, err := workloads.KernelByName("matrixmultiply")
	if err != nil {
		b.Fatal(err)
	}
	pb, err := k.Build(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	img, err := pb.BuildGuest("main")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var guestBytes uint64
	for i := 0; i < b.N; i++ {
		rt, err := NewFromConfig(Config{Variant: VariantRisotto}, img)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			b.Fatal(err)
		}
		guestBytes = rt.Stats().GuestBytes
	}
	b.SetBytes(int64(guestBytes))
}

// BenchmarkEndToEnd measures the DBT's full simulated-execution throughput
// per variant on a small kernel (host ns per run).
func BenchmarkEndToEnd(b *testing.B) {
	k, err := workloads.KernelByName("histogram")
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range allVariants {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			pb, err := k.Build(2, 1)
			if err != nil {
				b.Fatal(err)
			}
			img, err := pb.BuildGuest("main")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt, err := NewFromConfig(Config{Variant: v}, img)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
