package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/guestimg"
	"repro/internal/hostlib"
	"repro/internal/isa/x86"
)

var allVariants = []Variant{VariantQemu, VariantNoFences, VariantTCGVer, VariantRisotto}

// newTestLib returns a tiny host library used by linker tests.
func newTestLib() *hostlib.Library {
	lib := hostlib.New()
	lib.Register("triple", func(mem []byte, args []uint64) (uint64, uint64) {
		return args[0] * 3, 10
	})
	return lib
}

// exitWith emits the guest exit syscall with the code in reg.
func exitWith(a *x86.Assembler, reg x86.Reg) {
	a.MovRR(x86.RDI, reg).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()
}

func runImage(t *testing.T, img *guestimg.Image, v Variant, cfg Config) (*Runtime, uint64) {
	t.Helper()
	cfg.Variant = v
	rt, err := NewFromConfig(cfg, img)
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	return rt, code
}

func TestSumLoopAllVariants(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	data := make([]byte, 10*8)
	want := uint64(0)
	for i := 0; i < 10; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i*i+1))
		want += uint64(i*i + 1)
	}
	arr := b.Data(data)
	result := b.Zeros(8)

	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, int64(arr)).
		MovRI(x86.RCX, 0).
		MovRI(x86.RAX, 0).
		Label("loop").
		Load(x86.RBX, x86.MemIdx(x86.RDI, x86.RCX, 8, 0), 8).
		AddRR(x86.RAX, x86.RBX).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 10).
		Jcc(x86.CondNE, "loop").
		MovRI(x86.RSI, int64(result)).
		Store(x86.Mem0(x86.RSI), x86.RAX, 8)
	exitWith(a, x86.RAX)

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range allVariants {
		rt, code := runImage(t, img, v, Config{})
		if code != want {
			t.Errorf("%v: exit code = %d, want %d", v, code, want)
		}
		got, _ := rt.M.ReadMem(result, 8)
		if got != want {
			t.Errorf("%v: stored result = %d, want %d", v, got, want)
		}
		if rt.Stats().Blocks == 0 {
			t.Errorf("%v: no blocks translated", v)
		}
	}
}

func TestFenceStatsPerVariant(t *testing.T) {
	// Two loads then two stores: in the verified scheme the inner
	// Frm+Fww pair merges into one full fence (the §6.1 example), while
	// the outer load keeps its DMBLD and the final store its DMBST.
	b := guestimg.NewBuilder(0x10000, 0x40000)
	buf := b.Zeros(64)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(buf)).
		Load(x86.RAX, x86.Mem0(x86.RSI), 8).
		Load(x86.RBX, x86.MemD(x86.RSI, 8), 8).
		Store(x86.MemD(x86.RSI, 16), x86.RAX, 8).
		Store(x86.MemD(x86.RSI, 24), x86.RBX, 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	// no-fences: only the MFENCE's Fsc → DMBFF... no: no-fences strips
	// nothing at the IR level for MFENCE (the x86 instruction still maps
	// to Fsc under NoFences? — no: the no-fences variant removes only the
	// per-access fences; explicit MFENCE still becomes Fsc).
	rtNF, _ := runImage(t, img, VariantNoFences, Config{})
	if rtNF.Stats().DMBLoad != 0 || rtNF.Stats().DMBStore != 0 {
		t.Errorf("no-fences emitted access fences: %+v", rtNF.Stats())
	}

	rtQ, _ := runImage(t, img, VariantQemu, Config{})
	if rtQ.Stats().DMBLoad == 0 {
		t.Errorf("qemu should emit DMBLD before loads: %+v", rtQ.Stats())
	}
	if rtQ.Stats().DMBStore != 0 {
		t.Errorf("qemu never emits DMBST: %+v", rtQ.Stats())
	}
	if rtQ.Stats().DMBFull == 0 {
		t.Errorf("qemu should emit DMBFF for stores: %+v", rtQ.Stats())
	}

	rtV, _ := runImage(t, img, VariantTCGVer, Config{})
	if rtV.Stats().DMBStore == 0 {
		t.Errorf("tcg-ver should emit DMBST before the final store: %+v", rtV.Stats())
	}
	if rtV.Stats().DMBLoad == 0 {
		t.Errorf("tcg-ver should emit DMBLD after the first load: %+v", rtV.Stats())
	}
	// The inner Frm+Fww merge leaves exactly one full fence; QEMU emits
	// one DMBFF per store (two total).
	if rtV.Stats().DMBFull >= rtQ.Stats().DMBFull {
		t.Errorf("tcg-ver DMBFF (%d) should be < qemu DMBFF (%d)",
			rtV.Stats().DMBFull, rtQ.Stats().DMBFull)
	}
	// And strictly fewer fence cycles overall.
	vCost := 16*rtV.Stats().DMBFull + 12*rtV.Stats().DMBLoad + 8*rtV.Stats().DMBStore
	qCost := 16*rtQ.Stats().DMBFull + 12*rtQ.Stats().DMBLoad + 8*rtQ.Stats().DMBStore
	if vCost >= qCost {
		t.Errorf("tcg-ver fence cost (%d) should be < qemu (%d)", vCost, qCost)
	}
}

func TestVariantCycleOrdering(t *testing.T) {
	// A memory-heavy loop: no-fences ≤ risotto ≤ tcg-ver < qemu in
	// simulated cycles (risotto ≤ tcg-ver thanks to fence merging and
	// inline CAS; here no CAS, so ≈).
	b := guestimg.NewBuilder(0x10000, 0x40000)
	buf := b.Zeros(8 * 256)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(buf)).
		MovRI(x86.RCX, 0).
		Label("loop").
		Load(x86.RAX, x86.MemIdx(x86.RSI, x86.RCX, 8, 0), 8).
		AddRI(x86.RAX, 3).
		Store(x86.MemIdx(x86.RSI, x86.RCX, 8, 0), x86.RAX, 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 200).
		Jcc(x86.CondNE, "loop").
		MovRI(x86.RAX, 0)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	cycles := map[Variant]uint64{}
	for _, v := range allVariants {
		rt, _ := runImage(t, img, v, Config{})
		cycles[v] = rt.M.MaxCycles()
	}
	if !(cycles[VariantNoFences] < cycles[VariantTCGVer]) {
		t.Errorf("no-fences (%d) should beat tcg-ver (%d)",
			cycles[VariantNoFences], cycles[VariantTCGVer])
	}
	if !(cycles[VariantTCGVer] < cycles[VariantQemu]) {
		t.Errorf("tcg-ver (%d) should beat qemu (%d)",
			cycles[VariantTCGVer], cycles[VariantQemu])
	}
	if cycles[VariantRisotto] > cycles[VariantTCGVer] {
		t.Errorf("risotto (%d) should not lose to tcg-ver (%d)",
			cycles[VariantRisotto], cycles[VariantTCGVer])
	}
}

func TestCASGuestSemantics(t *testing.T) {
	// Single-threaded lock cmpxchg: success and failure paths.
	b := guestimg.NewBuilder(0x10000, 0x40000)
	cell := b.Zeros(8)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(cell)).
		MovRI(x86.RAX, 0). // expected 0 (matches init)
		MovRI(x86.RBX, 7). // new value
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8).
		Jcc(x86.CondNE, "fail").
		// Success: now expect a failure: RAX=0 but cell=7.
		MovRI(x86.RAX, 0).
		MovRI(x86.RBX, 9).
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8).
		Jcc(x86.CondEQ, "bad"). // must NOT succeed
		// After failure RAX = old value (7).
		Jmp("out").
		Label("fail").
		MovRI(x86.RAX, 111).
		Jmp("out").
		Label("bad").
		MovRI(x86.RAX, 222).
		Label("out")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range allVariants {
		rt, code := runImage(t, img, v, Config{})
		if code != 7 {
			t.Errorf("%v: exit = %d, want 7 (old value after failed CAS)", v, code)
		}
		got, _ := rt.M.ReadMem(cell, 8)
		if got != 7 {
			t.Errorf("%v: cell = %d, want 7", v, got)
		}
		if v == VariantRisotto && rt.Stats().Casal == 0 {
			t.Errorf("risotto should translate CAS inline: %+v", rt.Stats())
		}
		if v == VariantQemu && rt.Stats().HelperCalls == 0 {
			t.Errorf("qemu should use helper calls for CAS: %+v", rt.Stats())
		}
	}
}

func TestThreadsAndAtomicCounter(t *testing.T) {
	// 4 workers each xadd the shared counter 100 times; main joins all
	// and exits with the counter value.
	const workers = 4
	const iters = 100

	b := guestimg.NewBuilder(0x10000, 0x40000)
	counter := b.Zeros(8)
	ids := b.Zeros(8 * workers)

	a := b.Asm
	a.Label("worker").
		MovRI(x86.RSI, int64(counter)).
		MovRI(x86.RCX, 0).
		Label("wloop").
		MovRI(x86.RBX, 1).
		XAdd(x86.Mem0(x86.RSI), x86.RBX, 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, iters).
		Jcc(x86.CondNE, "wloop").
		MovRI(x86.RDI, 0).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()

	a.Label("main").
		MovRI(x86.R12, 0) // i
	a.Label("spawnloop").
		MovRI(x86.RAX, GuestSysSpawn)
	// fn address: needs the worker symbol — resolved post-assembly via
	// data patching is awkward; instead load it with LEA-like trick:
	// assemble a CALL-free approach: the builder gives us symbol addrs
	// only after Build, so place the worker address into data later.
	// Simplest: JMP-table free — use MovRI with a placeholder patched
	// after Build.
	a.MovRI(x86.RDI, 0x7777777700000000). // placeholder: worker addr
						MovRI(x86.RSI, 0).
						Syscall().
		// store returned id
		MovRI(x86.R13, int64(ids)).
		Store(x86.MemIdx(x86.R13, x86.R12, 8, 0), x86.RAX, 8).
		AddRI(x86.R12, 1).
		CmpRI(x86.R12, workers).
		Jcc(x86.CondNE, "spawnloop").
		// join all
		MovRI(x86.R12, 0).
		Label("joinloop").
		MovRI(x86.R13, int64(ids)).
		Load(x86.RDI, x86.MemIdx(x86.R13, x86.R12, 8, 0), 8).
		MovRI(x86.RAX, GuestSysJoin).
		Syscall().
		AddRI(x86.R12, 1).
		CmpRI(x86.R12, workers).
		Jcc(x86.CondNE, "joinloop").
		// read counter
		MovRI(x86.RSI, int64(counter)).
		Load(x86.RAX, x86.Mem0(x86.RSI), 8)
	exitWith(a, x86.RAX)

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	// Patch the placeholder with the worker's address.
	patchImm64(t, img, 0x7777777700000000, img.Symbols["worker"])

	for _, v := range allVariants {
		_, code := runImage(t, img, v, Config{})
		if code != workers*iters {
			t.Errorf("%v: counter = %d, want %d", v, code, workers*iters)
		}
	}
}

// patchImm64 rewrites the unique occurrence of the placeholder constant in
// the image's text with the real value.
func patchImm64(t *testing.T, img *guestimg.Image, placeholder, value uint64) {
	t.Helper()
	text := img.Segments[0].Data
	found := false
	for i := 0; i+8 <= len(text); i++ {
		if binary.LittleEndian.Uint64(text[i:]) == placeholder {
			binary.LittleEndian.PutUint64(text[i:], value)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("placeholder not found in text")
	}
}

func TestHostLinker(t *testing.T) {
	// A guest that calls an imported function "triple" through the PLT.
	// The guest fallback implementation computes x*3+1 (deliberately
	// different) so the test can tell which side ran.
	b := guestimg.NewBuilder(0x10000, 0x40000)
	b.Import("triple")
	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, 14).
		Call("triple@plt").
		// result in RAX
		Jmp("done").
		Label("triple"). // guest implementation: x*3 + 1
		MovRR(x86.RAX, x86.RDI).
		MulRI(x86.RAX, 3).
		AddRI(x86.RAX, 1).
		Ret().
		Label("done")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	lib := hostlib.New()
	lib.Register("triple", func(mem []byte, args []uint64) (uint64, uint64) {
		return args[0] * 3, 10
	})
	idlSrc := "i64 triple(i64 x);\n"

	// Risotto with linker: host implementation runs (42).
	rt, code := runImage(t, img, VariantRisotto, Config{IDL: idlSrc, Lib: lib})
	if code != 42 {
		t.Errorf("risotto+linker: exit = %d, want 42 (host impl)", code)
	}
	if rt.Stats().HostCalls != 1 {
		t.Errorf("risotto+linker: host calls = %d, want 1", rt.Stats().HostCalls)
	}

	// Every other variant translates the guest implementation (43).
	for _, v := range []Variant{VariantQemu, VariantTCGVer, VariantNoFences} {
		rt, code := runImage(t, img, v, Config{IDL: idlSrc, Lib: lib})
		if code != 43 {
			t.Errorf("%v: exit = %d, want 43 (guest impl)", v, code)
		}
		if rt.Stats().HostCalls != 0 {
			t.Errorf("%v: unexpected host calls", v)
		}
	}

	// Risotto *without* IDL also translates the guest implementation —
	// the linker has zero effect when unused (§7.3).
	rt2, code := runImage(t, img, VariantRisotto, Config{})
	if code != 43 || rt2.Stats().HostCalls != 0 {
		t.Errorf("risotto w/o IDL: exit=%d hostcalls=%d", code, rt2.Stats().HostCalls)
	}
}

func TestGuestWriteSyscall(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	msg := b.Data([]byte("hi from guest\n"))
	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, int64(msg)).
		MovRI(x86.RSI, 14).
		MovRI(x86.RAX, GuestSysWrite).
		Syscall().
		MovRI(x86.RAX, 0)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := runImage(t, img, VariantRisotto, Config{})
	if string(rt.M.Output) != "hi from guest\n" {
		t.Fatalf("output = %q", rt.M.Output)
	}
}

func TestGuestAllocSyscall(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, 4096).
		MovRI(x86.RAX, GuestSysAlloc).
		Syscall().
		// Store to the allocation to prove it is usable.
		MovRR(x86.RSI, x86.RAX).
		MovRI(x86.RBX, 5).
		Store(x86.Mem0(x86.RSI), x86.RBX, 8).
		Load(x86.RAX, x86.Mem0(x86.RSI), 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	_, code := runImage(t, img, VariantRisotto, Config{})
	if code != 5 {
		t.Fatalf("alloc roundtrip = %d, want 5", code)
	}
}

func TestTBCacheReuse(t *testing.T) {
	// A loop executing 1000 times must translate its block once.
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RCX, 0).
		Label("loop").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 1000).
		Jcc(x86.CondNE, "loop").
		MovRI(x86.RAX, 0)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := runImage(t, img, VariantRisotto, Config{})
	if rt.Stats().Blocks > 6 {
		t.Fatalf("blocks translated = %d; cache not reused?", rt.Stats().Blocks)
	}
}
