// Self-healing execution mechanics: the runtime side of the tiered
// recovery layer whose policy lives in internal/selfheal.
//
//   - runHealed/healTrap absorb traps attributable to a translated block
//     by quarantining the block (invalidate + tier demotion) and resuming
//     execution, bounded by Config.MaxHeals.
//   - shadowVerify implements -selfcheck runtime translation validation:
//     every freshly compiled block runs once on a snapshot of CPU and
//     memory state, and its effects are compared against the TCG
//     interpreter executing the literal frontend IR.
//   - interpExec is the bottom tier: blocks demoted past every compiled
//     tier execute through the TCG interpreter with no generated code.
//   - CrashBundle/ReplayConfig serialize an unrecovered trap into a
//     deterministic triage document and rebuild a run from one.

package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/guestimg"
	"repro/internal/isa/x86"
	"repro/internal/machine"
	"repro/internal/selfheal"
	"repro/internal/tcg"
)

const (
	// interpCostPerOp approximates the cycle cost of one interpreted IR op
	// (roughly an order of magnitude over compiled code, matching the
	// classic interpreter/JIT gap).
	interpCostPerOp = 8
	// shadowStepBudget bounds one shadow verification run; a compiled
	// block that executes this long without exiting is itself divergent.
	shadowStepBudget = 1 << 20
)

// Heal exposes the quarantine registry (nil unless SelfHeal is enabled) —
// for tests that pin a block's tier and for replay seeding.
func (rt *Runtime) Heal() *selfheal.State { return rt.heal }

// runHealed runs f, absorbing healable traps until f succeeds, an
// unhealable trap surfaces, or the heal budget runs out.
func (rt *Runtime) runHealed(f func() error) error {
	for {
		err := f()
		if err == nil || !rt.cfg.SelfHeal {
			return err
		}
		if !rt.healTrap(err) {
			return err
		}
	}
}

// healTrap attempts recovery from one trap: attribute it to a translated
// block, quarantine that block (invalidate + demote one tier), and point
// the faulting CPU back at the guest PC so dispatch retranslates it lower
// on the ladder. Reports false when the trap must surface: watchdog kinds,
// unattributable PCs, an exhausted tier ladder, or a spent heal budget.
//
// Recovery re-executes the quarantined block from its entry. A trap at the
// block's first instruction (the miscompile marker, a corrupted fetch) is
// always sound to retry; a mid-block trap may repeat the prefix's stores —
// the documented price of continuing instead of dying.
func (rt *Runtime) healTrap(err error) bool {
	t, ok := faults.As(err)
	if !ok {
		return false
	}
	switch t.Kind {
	case faults.TrapBudget, faults.TrapCacheExhausted, faults.TrapWorkerPanic:
		// Budget expiry is a watchdog verdict on the whole run, not a
		// block defect; cache exhaustion already had its flush-and-retry.
		return false
	}
	pc, ok := rt.trapGuestPC(t)
	if !ok {
		return false
	}
	if t.CPU < 0 || t.CPU >= len(rt.M.CPUs) {
		return false
	}
	if rt.heals >= rt.cfg.MaxHeals {
		rt.obs.Event("core.selfheal.exhausted", t.Error(), t.CPU, pc, 0)
		return false
	}
	if !rt.quarantinePC(rt.M.CPUs[t.CPU], pc, t.Error()) {
		return false
	}
	rt.heals++
	rt.met.heals.Inc()
	c := rt.M.CPUs[t.CPU]
	if derr := rt.dispatch(c, pc); derr != nil {
		return rt.healTrap(derr)
	}
	rt.obs.Event("core.selfheal.heal", t.Kind.String(), t.CPU, pc, 0)
	return true
}

// trapGuestPC resolves the guest PC a trap is attributable to.
func (rt *Runtime) trapGuestPC(t *faults.Trap) (uint64, bool) {
	if t.GuestPC {
		return t.PC, true
	}
	return rt.guestPCOf(t.PC)
}

// quarantinePC invalidates guestPC's translation and demotes its tier,
// recording the event. Reports false when the ladder was already at the
// interpreter rung — there is nothing lower to retry. The demotion starts
// from the installed translation's actual tier, which under tier-up may
// differ from the registry's map (an unpinned block runs at the implicit
// TierNoOpt start tier; a promoted superblock at TierFull).
func (rt *Runtime) quarantinePC(c *machine.CPU, guestPC uint64, reason string) bool {
	cur := rt.heal.TierOf(guestPC)
	if t, ok := rt.tbs.get(guestPC); ok {
		cur = t.tier
	}
	d := rt.heal.QuarantineAt(guestPC, cur, reason)
	rt.invalidateBlock(guestPC)
	if rt.tierup != nil {
		rt.tierup.demoted(guestPC)
	}
	if d.First {
		rt.met.quarantines.Inc()
	}
	if d.Demoted {
		rt.met.demotions.Inc()
	}
	rt.obs.Event("core.selfheal.quarantine",
		fmt.Sprintf("%s->%s: %s", d.From, d.To, reason), c.ID, guestPC, 0)
	return d.Demoted
}

// blockCalls reports whether the IR contains a helper call. Helper effects
// (RMW emulation, guest syscalls) are externally visible, so a shadow run
// must not replay them.
func blockCalls(ir *tcg.Block) bool {
	for _, in := range ir.Insts {
		if in.Op == tcg.OpCall {
			return true
		}
	}
	return false
}

// shadowVerify runs runtime translation validation on a freshly emitted
// block: the emitted code executes once on a shadow machine over a deep
// snapshot of memory and c's registers, the TCG interpreter executes the
// literal frontend IR on its own copy, and any disagreement in trap
// behaviour, exit, globals or memory is reported as a Divergence (nil
// when the block verifies). The live machine is never touched.
func (rt *Runtime) shadowVerify(c *machine.CPU, t *tb, ir *tcg.Block) *selfheal.Divergence {
	if ir == nil {
		return nil
	}
	if blockCalls(ir) {
		rt.met.selfSkipped.Inc()
		return nil
	}
	rt.met.selfChecks.Inc()
	start := rt.obs.Begin()
	defer func() {
		rt.obs.Span("core.selfcheck", "", c.ID, t.guestPC, t.hostAddr, start)
	}()
	div := func(kind, format string, args ...any) *selfheal.Divergence {
		return &selfheal.Divergence{
			GuestPC: t.guestPC, Tier: t.tier,
			Kind: kind, Detail: fmt.Sprintf(format, args...),
		}
	}

	// Drain c's store buffer before snapshotting: flushing is always an
	// allowed weak-memory transition, and it puts the oracle interpreter
	// and the shadow machine on the same memory image. A flush trap will
	// re-trap on the live machine; it is not the block's miscompile.
	if err := rt.M.FlushWeak(c); err != nil {
		rt.met.selfSkipped.Inc()
		return nil
	}
	snap := rt.M.Snapshot(c)

	// Oracle: the interpreter over the literal IR on its own copies.
	n := ir.NumTemps
	if n < tcg.NumGlobals {
		n = tcg.NumGlobals
	}
	it := &tcg.Interp{
		Temps: make([]uint64, n),
		Mem:   append([]byte(nil), snap.Mem...),
	}
	copy(it.Temps, snap.CPU.Regs[:tcg.NumGlobals])
	ierr := it.Run(ir)

	// Candidate: the emitted code on a shadow machine over the snapshot.
	sm := snap.ShadowMachine()
	sc := sm.CPUs[0]
	var hostNext uint64
	var hostHalt bool
	sm.Syscall = func(m *machine.Machine, cc *machine.CPU, imm uint16) error {
		switch imm {
		case backend.SvcTBExit:
			hostNext = cc.Regs[18]
			cc.Halted = true
			return nil
		case backend.SvcHalt:
			hostHalt = true
			cc.Halted = true
			return nil
		}
		return fmt.Errorf("shadow: unexpected svc #%d", imm)
	}
	sm.OnBLR = func(m *machine.Machine, cc *machine.CPU, target uint64) (bool, error) {
		return false, fmt.Errorf("shadow: unexpected helper call to %#x", target)
	}
	sc.PC = t.hostAddr
	herr := sm.Run(sc, shadowStepBudget)

	// Both sides trapping is agreement: live execution will surface the
	// same trap and the self-heal layer judges it there.
	if (herr != nil) != (ierr != nil) {
		return div("trap", "host err %v, interp err %v", herr, ierr)
	}
	if herr != nil {
		return nil
	}
	if hostHalt != it.Halted {
		return div("exit", "host halted=%v, interp halted=%v", hostHalt, it.Halted)
	}
	if !hostHalt && hostNext != it.NextPC {
		return div("exit", "host next=%#x, interp next=%#x", hostNext, it.NextPC)
	}
	for i := 0; i < tcg.NumGlobals; i++ {
		if sc.Regs[i] != it.Temps[i] {
			return div("register", "global %d: host %#x, interp %#x", i, sc.Regs[i], it.Temps[i])
		}
	}
	if !bytes.Equal(sm.Mem, it.Mem) {
		for i := range sm.Mem {
			if sm.Mem[i] != it.Mem[i] {
				return div("memory", "byte %#x: host %#02x, interp %#02x", i, sm.Mem[i], it.Mem[i])
			}
		}
	}
	return nil
}

// interpExec executes guestPC's cached frontend IR through the TCG
// interpreter — the bottom tier, trusting no generated code. Globals are
// mirrored between the interpreter and the vCPU; helper calls go through
// interpHelper; a blocked syscall (join) rewinds the CPU to the stub so
// the scheduler retries the block next quantum.
func (rt *Runtime) interpExec(c *machine.CPU, guestPC, stubAddr uint64) error {
	ir, ok := rt.irCache[guestPC]
	if !ok {
		return faults.New(faults.TrapDecode,
			"core: interp stub without cached IR for %#x", guestPC).
			WithCPU(c.ID).WithGuestPC(guestPC)
	}
	rt.met.interpBlocks.Inc()
	// The interpreter writes memory directly, so drain this CPU's weak-
	// mode store buffer first; interpreter-tier execution is sequentially
	// consistent (a sound strengthening).
	if err := rt.M.FlushWeak(c); err != nil {
		return err
	}
	n := ir.NumTemps
	if n < tcg.NumGlobals {
		n = tcg.NumGlobals
	}
	it := &tcg.Interp{Temps: make([]uint64, n), Mem: rt.M.Mem}
	copy(it.Temps, c.Regs[:tcg.NumGlobals])
	var yielded bool
	it.OnCallEx = func(in tcg.Inst, a, b uint64) (uint64, error) {
		return rt.interpHelper(c, it, in, a, b, &yielded)
	}
	err := it.Run(ir)
	copy(c.Regs[:tcg.NumGlobals], it.Temps[:tcg.NumGlobals])
	steps := uint64(it.Steps)
	c.Insts += steps
	c.Cycles += interpCostPerOp * steps
	if err != nil {
		return rt.interpTrap(c, guestPC, err)
	}
	if yielded {
		c.PC = stubAddr
		return nil
	}
	if it.Halted || c.Halted {
		c.Halted = true
		return nil
	}
	return rt.dispatch(c, it.NextPC)
}

// interpHelper serves an interpreted block's helper call with the same
// semantics as the compiled path's handleBLR: guest registers are read and
// written directly, so the interpreter's globals are mirrored into the
// vCPU around the call. The result is returned for local-temp DSTs
// (tcg.Interp's OnCallEx convention); global effects travel through the
// register mirror.
func (rt *Runtime) interpHelper(c *machine.CPU, it *tcg.Interp, in tcg.Inst, a, b uint64, yielded *bool) (uint64, error) {
	copy(c.Regs[:tcg.NumGlobals], it.Temps[:tcg.NumGlobals])
	defer copy(it.Temps[:tcg.NumGlobals], c.Regs[:tcg.NumGlobals])
	rt.met.helperCalls.Inc()
	m := rt.M
	switch in.Helper {
	case tcg.HelperCmpXchg:
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, a)
		expected := *guestReg(c, x86.RAX)
		old, err := m.ReadMem(a, in.Size)
		if err != nil {
			return 0, err
		}
		if old == truncateTo(expected, in.Size) {
			if err := m.WriteMem(a, in.Size, b); err != nil {
				return 0, err
			}
		}
		return old, nil

	case tcg.HelperXAdd:
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, a)
		old, err := m.ReadMem(a, in.Size)
		if err != nil {
			return 0, err
		}
		if err := m.WriteMem(a, in.Size, old+b); err != nil {
			return 0, err
		}
		return old, nil

	case tcg.HelperXchg:
		c.Cycles += helperBodyCost
		m.ChargeAtomic(c, a)
		old, err := m.ReadMem(a, in.Size)
		if err != nil {
			return 0, err
		}
		if err := m.WriteMem(a, in.Size, b); err != nil {
			return 0, err
		}
		return old, nil

	case frontend.HelperSyscall:
		if *guestReg(c, x86.RAX) == GuestSysJoin {
			id := *guestReg(c, x86.RDI)
			if id < uint64(len(m.CPUs)) && !m.CPUs[id].Halted {
				// Blocked join: yield without consuming the syscall —
				// the block (isolated by the frontend's SyscallBarrier)
				// retries from its stub next quantum.
				rt.met.helperCalls.Sub(1)
				*yielded = true
				return 0, nil
			}
		}
		rt.met.syscalls.Inc()
		return 0, rt.guestSyscall(m, c)
	}
	return 0, faults.New(faults.TrapHostCall,
		"core: unknown helper %d in interpreted block", in.Helper).WithCPU(c.ID)
}

// interpTrap converts interpreter-internal failures into structured traps
// attributed to the interpreted block; already-structured traps (helper
// effects, nested dispatch) pass through untouched.
func (rt *Runtime) interpTrap(c *machine.CPU, guestPC uint64, err error) error {
	if _, ok := faults.As(err); ok {
		return err
	}
	kind := faults.TrapDecode
	switch {
	case errors.Is(err, tcg.ErrInterpOOB):
		kind = faults.TrapUnmapped
	case errors.Is(err, tcg.ErrInterpBudget):
		kind = faults.TrapBudget
	}
	return faults.Wrap(kind, err, "interp tier").WithCPU(c.ID).WithGuestPC(guestPC)
}

// ParseVariant inverts Variant.String.
func ParseVariant(s string) (Variant, error) {
	for i, n := range variantNames {
		if n == s {
			return Variant(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown variant %q (want one of %v)", s, variantNames)
}

// CrashBundle serializes an unrecovered trap into a deterministic triage
// document: the full replay configuration plus post-mortem evidence (CPU
// state, quarantine history, faulting-block disassembly, recent spans,
// counter snapshot). tool names the producing CLI. Returns an error when
// runErr carries no structured trap.
func (rt *Runtime) CrashBundle(tool string, runErr error) (*selfheal.Bundle, error) {
	t, ok := faults.As(runErr)
	if !ok {
		return nil, fmt.Errorf("core: no structured trap in %v", runErr)
	}
	b := &selfheal.Bundle{
		Version:       selfheal.BundleVersion,
		Tool:          tool,
		Variant:       rt.cfg.Variant.String(),
		Kernel:        rt.cfg.Kernel,
		Image:         rt.img.Encode(),
		MemSize:       rt.cfg.MemSize,
		CodeCacheBase: rt.cfg.CodeCacheBase,
		StackSize:     rt.cfg.StackSize,
		Quantum:       rt.cfg.Quantum,
		MaxSteps:      rt.cfg.MaxSteps,
		StepBudget:    rt.cfg.StepBudget,
		DeadlineNS:    int64(rt.cfg.Deadline),
		Chain:         rt.cfg.Chain,
		SelfHeal:      rt.cfg.SelfHeal,
		SelfCheck:     rt.cfg.SelfCheck,
		MaxHeals:      rt.cfg.MaxHeals,
		Fault:         rt.cfg.FaultSpec,
		FaultSeed:     rt.cfg.FaultSeed,
		WeakSeed:      rt.cfg.WeakSeed,
		IDL:           rt.cfg.IDL,
		Trap:          selfheal.TrapInfoOf(t),
		Quarantine:    rt.heal.History(),
	}
	for _, c := range rt.M.CPUs {
		b.CPUs = append(b.CPUs, selfheal.CPUState{
			ID: c.ID, Regs: append([]uint64(nil), c.Regs[:]...), PC: c.PC,
			N: c.N, Z: c.Z, C: c.C, V: c.V,
			Cycles: c.Cycles, Insts: c.Insts,
			Halted: c.Halted, ExitCode: c.ExitCode,
		})
	}
	if pc, ok := rt.trapGuestPC(t); ok {
		if blk, ok := rt.tbs.get(pc); ok {
			b.Disasm = rt.disasmTB(blk)
		}
	}
	if tr := rt.obs.Tracer(); tr != nil {
		b.Spans = selfheal.NormalizeSpans(tr.Spans(), 64)
	}
	counters := rt.obs.Snapshot().Counters
	if len(counters) > 0 {
		b.Metrics = make(map[string]uint64, len(counters))
		for k, v := range counters {
			b.Metrics[k] = v
		}
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// ReplayConfig rebuilds the Config and guest image a bundle describes,
// rearming the fault injector from the recorded spec and seed. The
// returned config carries no Obs scope; the caller installs its own.
func ReplayConfig(b *selfheal.Bundle) (Config, *guestimg.Image, error) {
	v, err := ParseVariant(b.Variant)
	if err != nil {
		return Config{}, nil, err
	}
	img, err := guestimg.Decode(b.Image)
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		Variant:       v,
		MemSize:       b.MemSize,
		CodeCacheBase: b.CodeCacheBase,
		StackSize:     b.StackSize,
		Quantum:       b.Quantum,
		MaxSteps:      b.MaxSteps,
		StepBudget:    b.StepBudget,
		Deadline:      time.Duration(b.DeadlineNS),
		Chain:         b.Chain,
		SelfHeal:      b.SelfHeal,
		SelfCheck:     b.SelfCheck,
		MaxHeals:      b.MaxHeals,
		Kernel:        b.Kernel,
		FaultSpec:     b.Fault,
		FaultSeed:     b.FaultSeed,
		WeakSeed:      b.WeakSeed,
		IDL:           b.IDL,
	}
	if b.Fault != "" {
		specs, err := faults.ParseSpecs(b.Fault)
		if err != nil {
			return Config{}, nil, err
		}
		inj := faults.NewInjector(b.FaultSeed)
		for _, sp := range specs {
			sp.Arm(inj)
		}
		cfg.Inject = inj
	}
	return cfg, img, nil
}
