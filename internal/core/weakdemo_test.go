package core

import (
	"testing"

	"repro/internal/guestimg"
	"repro/internal/isa/x86"
	"repro/internal/workloads"
)

// End-to-end operational correctness: translate a guest message-passing
// program with each mapping scheme and execute the *generated Arm code* on
// the weak-memory host. The paper's whole point, observable: the
// no-fences translation exhibits the reordering (a=1 ∧ b=0) that x86
// forbids; the QEMU and verified translations' fences eliminate it.

// mpGuestImage builds guest MP with a spinning reader:
//
//	writer: X=1; Y=1; exit
//	main:   spawn writer; spin until Y==1 (bounded); b=X; exit
//
// Exit code packs (a<<1)|b, where a is whether Y was observed.
func mpGuestImage(t *testing.T) *guestimg.Image {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	x := b.Zeros(8)
	y := b.Zeros(8)
	a := b.Asm

	a.Label("writer").
		MovRI(x86.RSI, int64(x)).
		MovRI(x86.RBX, 1).
		Store(x86.Mem0(x86.RSI), x86.RBX, 8).
		MovRI(x86.RDI, int64(y)).
		Store(x86.Mem0(x86.RDI), x86.RBX, 8)
	// Keep the writer alive so its store buffer drains on the random
	// schedule rather than the synchronizing thread exit.
	a.MovRI(x86.RCX, 0).
		Label("wspin").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 40).
		Jcc(x86.CondNE, "wspin").
		MovRI(x86.RDI, 0).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()

	a.Label("main").
		MovSym(x86.RDI, "writer").
		MovRI(x86.RSI, 0).
		MovRI(x86.RAX, GuestSysSpawn).
		Syscall().
		MovRR(x86.R12, x86.RAX). // writer thread id
		// Spin until Y == 1 or the budget runs out.
		MovRI(x86.RCX, 0).
		MovRI(x86.RDX, int64(y)).
		Label("spin").
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 3000).
		Jcc(x86.CondA, "giveup").
		Load(x86.RBX, x86.Mem0(x86.RDX), 8).
		CmpRI(x86.RBX, 1).
		Jcc(x86.CondNE, "spin").
		Label("giveup").
		// b = X, immediately after observing (or giving up on) Y.
		MovRI(x86.RDX, int64(x)).
		Load(x86.R9, x86.Mem0(x86.RDX), 8).
		// Join the writer, then exit with (a<<1)|b.
		MovRR(x86.RDI, x86.R12).
		MovRI(x86.RAX, GuestSysJoin).
		Syscall().
		MovRR(x86.RDI, x86.RBX).
		ShlRI(x86.RDI, 1).
		OrRR(x86.RDI, x86.R9).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// runWeakMP returns the (a, b) observation for one seed and variant.
func runWeakMP(t *testing.T, img *guestimg.Image, v Variant, seed int64) (uint64, uint64) {
	t.Helper()
	rt, err := NewFromConfig(Config{Variant: v, WeakSeed: &seed, Quantum: 1}, img)
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("%v seed %d: %v", v, seed, err)
	}
	return code >> 1, code & 1
}

func TestWeakHostExposesNoFencesError(t *testing.T) {
	img := mpGuestImage(t)
	seen := false
	for seed := int64(0); seed < 200 && !seen; seed++ {
		a, b := runWeakMP(t, img, VariantNoFences, seed)
		if a == 1 && b == 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no-fences translation never exhibited the MP reorder on the weak host")
	}
}

// TestWeakHostSpinlock is the real-world-shaped consequence of the
// mapping correctness story: a TSO-correct spinlock (plain-store release,
// no MFENCE) keeps mutual exclusion under the verified mapping — the
// emitted DMBST orders the counter store before the release store — but
// the no-fences translation loses counter updates on the weak host.
func TestWeakHostSpinlock(t *testing.T) {
	const threads, iters = 2, 12
	want := uint64(threads * iters)

	run := func(v Variant, seed int64) uint64 {
		b, err := workloads.SpinlockCounterNoMFence(threads, iters)
		if err != nil {
			t.Fatal(err)
		}
		img, err := b.BuildGuest("main")
		if err != nil {
			t.Fatal(err)
		}
		s := seed
		rt, err := NewFromConfig(Config{Variant: v, WeakSeed: &s, Quantum: 1}, img)
		if err != nil {
			t.Fatal(err)
		}
		code, err := rt.Run()
		if err != nil {
			t.Fatalf("%v seed %d: %v", v, seed, err)
		}
		return code
	}

	// The verified mappings keep the lock correct on every seed.
	for _, v := range []Variant{VariantTCGVer, VariantRisotto, VariantQemu} {
		for seed := int64(0); seed < 25; seed++ {
			if got := run(v, seed); got != want {
				t.Fatalf("%v seed %d: counter = %d, want %d", v, seed, got, want)
			}
		}
	}

	// The no-fences translation loses updates for some seed.
	lost := false
	for seed := int64(0); seed < 60 && !lost; seed++ {
		if run(VariantNoFences, seed) != want {
			lost = true
		}
	}
	if !lost {
		t.Log("note: no-fences spinlock never lost an update in 60 seeds " +
			"(the weak window is narrow); not failing, but the fenced " +
			"variants' guarantee above is the load-bearing assertion")
	}
}

func TestWeakHostFencedVariantsStayCorrect(t *testing.T) {
	img := mpGuestImage(t)
	for _, v := range []Variant{VariantQemu, VariantTCGVer, VariantRisotto} {
		for seed := int64(0); seed < 60; seed++ {
			a, b := runWeakMP(t, img, v, seed)
			if a == 1 && b == 0 {
				t.Fatalf("%v seed %d: generated fences failed to order MP (a=1,b=0)", v, seed)
			}
		}
	}
}
