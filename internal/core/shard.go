// Sharded translation-cache tables. The historical single maps serialized
// every lookup behind one structure; with background promotion workers and
// many guest threads the block cache and the chain-patch tables are now
// split across numShards lock-striped shards keyed by address bits, so
// concurrent access mostly lands on different locks. Contention that does
// happen is visible: a shard whose lock is busy counts one
// core.cache.shard_contention before blocking.

package core

import (
	"sync"

	"repro/internal/obs"
)

// numShards is the lock-stripe width of the block cache and the chain
// tables. Power of two so shardIndex is a mask.
const numShards = 8

// shardIndex picks the stripe for an address. Blocks and chain sites are
// 16-byte aligned, so the low bits are dropped before masking to spread
// neighbours across shards.
func shardIndex(addr uint64) int { return int((addr >> 4) & (numShards - 1)) }

// tbShard is one stripe of the block cache.
type tbShard struct {
	mu sync.Mutex
	m  map[uint64]*tb
}

// tbCache is the sharded guest-PC → translation-block cache.
type tbCache struct {
	shards     [numShards]tbShard
	contention *obs.Counter
}

func newTBCache(contention *obs.Counter) *tbCache {
	c := &tbCache{contention: contention}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*tb)
	}
	return c
}

// lock acquires shard i, counting contention when the lock was busy.
func (c *tbCache) lock(i int) *tbShard {
	s := &c.shards[i]
	if !s.mu.TryLock() {
		c.contention.Inc()
		s.mu.Lock()
	}
	return s
}

func (c *tbCache) get(pc uint64) (*tb, bool) {
	s := c.lock(shardIndex(pc))
	t, ok := s.m[pc]
	s.mu.Unlock()
	return t, ok
}

func (c *tbCache) put(t *tb) {
	s := c.lock(shardIndex(t.guestPC))
	s.m[t.guestPC] = t
	s.mu.Unlock()
}

func (c *tbCache) remove(pc uint64) {
	s := c.lock(shardIndex(pc))
	delete(s.m, pc)
	s.mu.Unlock()
}

func (c *tbCache) reset() {
	for i := range c.shards {
		s := c.lock(i)
		s.m = make(map[uint64]*tb)
		s.mu.Unlock()
	}
}

func (c *tbCache) size() int {
	n := 0
	for i := range c.shards {
		s := c.lock(i)
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// snapshot returns the cached blocks as a flat slice (no order guarantee).
// Callers iterate the copy, so they may mutate the cache while doing so.
func (c *tbCache) snapshot() []*tb {
	out := make([]*tb, 0, c.size())
	for i := range c.shards {
		s := c.lock(i)
		for _, t := range s.m {
			out = append(out, t)
		}
		s.mu.Unlock()
	}
	return out
}

// find returns the first block satisfying f (host-address attribution).
func (c *tbCache) find(f func(*tb) bool) (*tb, bool) {
	for i := range c.shards {
		s := c.lock(i)
		for _, t := range s.m {
			if f(t) {
				s.mu.Unlock()
				return t, true
			}
		}
		s.mu.Unlock()
	}
	return nil, false
}

// addrShard is one stripe of a host-address keyed table.
type addrShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// addrMap is a sharded host-address → guest-target table, used for both
// the patchable chain sites and the already-patched branches.
type addrMap struct {
	shards     [numShards]addrShard
	contention *obs.Counter
}

func newAddrMap(contention *obs.Counter) *addrMap {
	a := &addrMap{contention: contention}
	for i := range a.shards {
		a.shards[i].m = make(map[uint64]uint64)
	}
	return a
}

func (a *addrMap) lock(i int) *addrShard {
	s := &a.shards[i]
	if !s.mu.TryLock() {
		a.contention.Inc()
		s.mu.Lock()
	}
	return s
}

func (a *addrMap) get(addr uint64) (uint64, bool) {
	s := a.lock(shardIndex(addr))
	v, ok := s.m[addr]
	s.mu.Unlock()
	return v, ok
}

func (a *addrMap) put(addr, val uint64) {
	s := a.lock(shardIndex(addr))
	s.m[addr] = val
	s.mu.Unlock()
}

func (a *addrMap) remove(addr uint64) {
	s := a.lock(shardIndex(addr))
	delete(s.m, addr)
	s.mu.Unlock()
}

func (a *addrMap) reset() {
	for i := range a.shards {
		s := a.lock(i)
		s.m = make(map[uint64]uint64)
		s.mu.Unlock()
	}
}

// entry is one (address, value) pair of an addrMap snapshot.
type entry struct{ addr, val uint64 }

// snapshot returns the table's entries as a flat copy; callers may mutate
// the map while iterating the copy.
func (a *addrMap) snapshot() []entry {
	var out []entry
	for i := range a.shards {
		s := a.lock(i)
		for k, v := range s.m {
			out = append(out, entry{k, v})
		}
		s.mu.Unlock()
	}
	return out
}
