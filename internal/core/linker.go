package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/idl"
	"repro/internal/isa/x86"
	"repro/internal/machine"
)

// Guest integer-argument registers, in ABI order (System-V-like).
var guestArgRegs = [...]x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}

// hostCall performs a host-linked shared-library call (§6.2, steps 4–5):
// marshal arguments from the guest ABI, invoke the native function, write
// the return value back, and return to the guest caller. It runs when
// dispatch lands on a PLT entry that the IDL declared.
func (rt *Runtime) hostCall(c *machine.CPU, e *pltEntry) error {
	m := rt.M
	if t := rt.cfg.Inject.Hit(faults.SiteHostCall); t != nil {
		t.Msg = fmt.Sprintf("host call %s: %s", e.name, t.Msg)
		return t.WithCPU(c.ID)
	}
	rt.met.hostCalls.Inc()
	hcStart := rt.obs.Begin()
	defer func() { rt.obs.Span("core.host_call", e.name, c.ID, 0, 0, hcStart) }()

	// Marshal arguments: guest register values are copied into the host
	// call (for Arm/x86 both pass the first arguments in registers, so
	// the runtime copies register to register — §6.2).
	if len(e.sig.Params) > len(guestArgRegs) {
		return faults.New(faults.TrapHostCall,
			"core: %s: too many parameters (%d)", e.name, len(e.sig.Params)).WithCPU(c.ID)
	}
	args := make([]uint64, len(e.sig.Params))
	for i, p := range e.sig.Params {
		v := *guestReg(c, guestArgRegs[i])
		switch p {
		case idl.I32:
			v = uint64(int64(int32(v)))
		case idl.U32:
			v = v & 0xFFFFFFFF
		}
		args[i] = v
	}
	c.Cycles += marshalBase + marshalPerArg*uint64(len(args))

	// Native execution.
	result, cost := e.fn(m.Mem, args)
	c.Cycles += cost

	// Marshal the result back into guest RAX.
	if e.sig.Return != idl.Void {
		*guestReg(c, x86.RAX) = result
	}

	// Return to the guest caller: the CALL that reached the PLT pushed
	// the return address.
	sp := guestReg(c, x86.RSP)
	ret, err := m.ReadMem(*sp, 8)
	if err != nil {
		return faults.Wrap(faults.TrapHostCall, err,
			"core: %s: reading return address", e.name).WithCPU(c.ID)
	}
	*sp += 8
	return rt.dispatch(c, ret)
}
