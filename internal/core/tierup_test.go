package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/portasm"
	"repro/internal/selfheal"
	"repro/internal/workloads"
)

// tierUpOpts is the aggressive promotion configuration the tests use: a
// low threshold so short kernels still go hot.
func tierUpOpts() Option {
	return WithTierUp(TierUpConfig{Enabled: true, PromoteThreshold: 4, SuperblockMax: 4})
}

func buildKernelImage(t *testing.T, name string, threads int) *Runtime {
	t.Helper()
	return buildKernelRuntime(t, name, threads)
}

func buildKernelRuntime(t *testing.T, name string, threads int, opts ...Option) *Runtime {
	t.Helper()
	k, err := workloads.KernelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Build(threads, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := b.BuildGuest("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(img, append([]Option{WithVariant(VariantRisotto)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestTierUpPromotesFenceChain is the tentpole's happy path: the
// fencechain kernel goes hot, blocks are promoted into superblocks, and
// at least one fence merge happens across a block seam — with the same
// guest result as the untiered run.
func TestTierUpPromotesFenceChain(t *testing.T) {
	base := buildKernelRuntime(t, "fencechain", 1)
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts())
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tier-up changed the checksum: %d, want %d", got, want)
	}
	st := rt.Stats()
	if st.Promotions == 0 {
		t.Fatal("no promotions on the canonical hot kernel")
	}
	if st.Superblocks == 0 || st.SuperblockGuestBlocks < 2 {
		t.Fatalf("superblocks=%d guest blocks=%d; want a multi-block trace",
			st.Superblocks, st.SuperblockGuestBlocks)
	}
	if st.CrossBlockFenceMerges == 0 {
		t.Fatal("no cross-block fence merges on the kernel built to force them")
	}
	if rt.Heal().Quarantined() != 0 {
		t.Fatal("promotion must not count as a quarantine")
	}
}

// runTierDiff runs one kernel with and without tier-up and compares the
// final guest-visible state. Tier level must never change guest semantics:
// the exit checksum always agrees, and for single-worker runs the entire
// guest memory below the code cache is byte-identical.
func runTierDiff(t *testing.T, name string, threads int, compareMem bool) {
	t.Helper()
	base := buildKernelRuntime(t, name, threads)
	baseCode, err := base.Run()
	if err != nil {
		t.Fatalf("%s baseline: %v", name, err)
	}
	tier := buildKernelRuntime(t, name, threads, tierUpOpts())
	tierCode, err := tier.Run()
	if err != nil {
		t.Fatalf("%s tier-up: %v", name, err)
	}
	if baseCode != tierCode {
		t.Fatalf("%s: exit %d with tier-up, %d without", name, tierCode, baseCode)
	}
	if compareMem {
		limit := base.cfg.CodeCacheBase
		if tier.cfg.CodeCacheBase != limit {
			t.Fatalf("%s: code cache bases differ", name)
		}
		if !bytes.Equal(base.M.Mem[:limit], tier.M.Mem[:limit]) {
			for i := uint64(0); i < limit; i++ {
				if base.M.Mem[i] != tier.M.Mem[i] {
					t.Fatalf("%s: guest memory diverges at %#x (%#x vs %#x)",
						name, i, base.M.Mem[i], tier.M.Mem[i])
				}
			}
		}
	}
}

// TestTierUpDifferentialKernels sweeps the whole workload suite at one
// worker thread: byte-identical guest memory and exit codes.
func TestTierUpDifferentialKernels(t *testing.T) {
	for _, k := range workloads.Registry() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			runTierDiff(t, k.Name, 1, true)
		})
	}
}

// TestTierUpDifferentialThreads compares exit codes at two worker threads,
// where scheduling interleavings may differ between tiers but the joined
// result may not.
func TestTierUpDifferentialThreads(t *testing.T) {
	for _, name := range []string{"histogram", "wordcount", "canneal", "fencechain"} {
		runTierDiff(t, name, 2, false)
	}
}

// seededProgram generates a deterministic random single-thread guest: a
// counted loop of loads, stores, arithmetic and block-splitting jumps over
// a scratch array, exiting with an accumulator checksum. The campaign
// slice of the differential: shapes the fixed kernel suite doesn't cover.
func seededProgram(seed int64) (*portasm.Builder, error) {
	const (
		r1 = portasm.Reg(1) // loop index
		r3 = portasm.Reg(3) // array base
		r5 = portasm.Reg(5) // accumulator
		r6 = portasm.Reg(6) // scratch
	)
	rng := rand.New(rand.NewSource(seed))
	b := portasm.NewBuilder()
	words := make([]byte, 64*8)
	rng.Read(words)
	arr := b.Data(words)

	b.Label("main").
		MovI(r3, int64(arr)).
		MovI(r1, 0).
		MovI(r5, 0).
		Label("loop")
	splits := 0
	for i, n := 0, 4+rng.Intn(6); i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			b.LdIdx(r6, r3, r1, 8, 8).AddR(r5, r6)
		case 1:
			b.Mov(r6, r5).AluI(portasm.And, r6, 0xFF).StIdx(r3, r1, 8, r6, 8)
		case 2:
			b.AddI(r5, int64(1+rng.Intn(99)))
		case 3:
			lbl := fmt.Sprintf("split_%d_%d", seed, splits)
			splits++
			b.Jmp(lbl).Label(lbl)
		}
	}
	b.AddI(r1, 1).
		CmpI(r1, 48).
		J(portasm.NE, "loop").
		AluI(portasm.And, r5, 0xFFFFFF).
		Exit(r5)
	return b, nil
}

// TestTierUpDifferentialSeeded runs the generated corpus slice through the
// same on/off comparison.
func TestTierUpDifferentialSeeded(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func(opts ...Option) (uint64, *Runtime) {
				b, err := seededProgram(seed)
				if err != nil {
					t.Fatal(err)
				}
				img, err := b.BuildGuest("main")
				if err != nil {
					t.Fatal(err)
				}
				rt, err := New(img, append([]Option{WithVariant(VariantRisotto)}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				code, err := rt.Run()
				if err != nil {
					t.Fatal(err)
				}
				return code, rt
			}
			baseCode, base := run()
			tierCode, tier := run(tierUpOpts())
			if baseCode != tierCode {
				t.Fatalf("seed %d: exit %d with tier-up, %d without", seed, tierCode, baseCode)
			}
			limit := base.cfg.CodeCacheBase
			if !bytes.Equal(base.M.Mem[:limit], tier.M.Mem[:limit]) {
				t.Fatalf("seed %d: guest memory diverges", seed)
			}
		})
	}
}

// TestTierUpPromotedBlockDemotes drives the down direction after a
// promotion: quarantining a promoted superblock must demote it from
// TierFull, clear its retained promotion (so a flush cannot resurrect the
// rejected code), and feed the blacklist.
func TestTierUpPromotedBlockDemotes(t *testing.T) {
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts())
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rt.tierup.promoted) == 0 {
		t.Fatal("run finished without promotions")
	}
	var pc uint64
	for p := range rt.tierup.promoted {
		pc = p
		break
	}
	c := rt.M.CPUs[0]
	if !rt.quarantinePC(c, pc, "synthetic trap in promoted code") {
		t.Fatal("quarantine of a promoted block must demote, not exhaust")
	}
	if got := rt.Heal().TierOf(pc); got != selfheal.TierNoFenceMerge {
		t.Fatalf("demoted tier %v, want TierNoFenceMerge (one rung below TierFull)", got)
	}
	if rt.tierup.promoted[pc] != nil {
		t.Fatal("demotion left the retained promotion in place")
	}
	if rt.Heal().Failures(pc) != 1 {
		t.Fatalf("failures = %d, want 1", rt.Heal().Failures(pc))
	}
	// One more failure reaches the blacklist: promotion requests and chain
	// deferral both stop.
	rt.quarantinePC(c, pc, "second synthetic trap")
	if rt.Heal().PromotionAllowed(pc) {
		t.Fatal("block must be blacklisted after repeated demotions")
	}
	if rt.tierup.deferChain(pc) {
		t.Fatal("blacklisted block must chain normally (counter no longer matters)")
	}
	before := rt.Stats().Promotions
	rt.tierup.request(pc)
	if rt.Stats().Promotions != before || rt.tierup.pending[pc] {
		t.Fatal("blacklisted block must not be enqueued for promotion")
	}
}

// TestTierUpStopDrainsBacklog: stop must not hang when more results are
// outstanding than the results buffer holds. Workers block sending into
// the full channel, so stop has to drain concurrently with the worker
// wait — a sequential close-wait-drain deadlocks here. The fill count is
// the queue depth plus one in-flight job per worker: the most that can be
// outstanding at once, and just past the results buffer. The junk PCs
// make every job fail translation; error results still flow back and
// must all be consumed.
func TestTierUpStopDrainsBacklog(t *testing.T) {
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts())
	tu := rt.tierup
	tu.start()
	for i := 0; i < cap(tu.reqs)+tu.cfg.Workers; i++ {
		tu.reqs <- promoteReq{pc: uint64(1<<40 + i)}
	}
	tu.stop(rt.M.CPUs[0])
	if tu.started {
		t.Fatal("stop left the pool marked started")
	}
	if rt.Stats().Promotions != 0 {
		t.Fatal("failed translations must not install")
	}
}

// TestTierUpStaleResultDropped: a promotion built before the ladder moved
// must be discarded at install time.
func TestTierUpStaleResultDropped(t *testing.T) {
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts())
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	c := rt.M.CPUs[0]
	const pc = 0x10000 // kernel entry: certainly a real block
	rt.Heal().QuarantineAt(pc, selfheal.TierNoOpt, "moved the ladder")
	before := rt.Stats().Promotions
	rt.tierup.install(c, &promotion{pc: pc, failures: 0}) // built before the quarantine
	if rt.Stats().Promotions != before {
		t.Fatal("stale promotion was installed")
	}
	if rt.tierup.promoted[pc] != nil {
		t.Fatal("stale promotion retained")
	}
}

// TestTierUpDeferChain pins the chain-deferral predicate: defer while the
// target's counter still matters, chain once promoted.
func TestTierUpDeferChain(t *testing.T) {
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts())
	if !rt.tierup.deferChain(0x12345) {
		t.Fatal("fresh promotable block must defer chaining")
	}
	rt.tierup.promoted[0x12345] = &promotion{pc: 0x12345}
	if rt.tierup.deferChain(0x12345) {
		t.Fatal("promoted block must chain")
	}
}

// TestTierUpRaceStress exercises promotion racing execution, installation
// and worker handoff under the race detector: several guest threads, an
// aggressive threshold, and repeated runs so worker goroutines overlap
// dispatch activity.
func TestTierUpRaceStress(t *testing.T) {
	for i := 0; i < 3; i++ {
		for _, name := range []string{"fencechain", "histogram"} {
			rt := buildKernelRuntime(t, name, 4,
				WithTierUp(TierUpConfig{Enabled: true, PromoteThreshold: 2, SuperblockMax: 4, Workers: 4}),
				WithSelfCheck(true))
			if _, err := rt.Run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestTierUpSelfCheckVerifiesPromotions: with -selfcheck on, promoted
// superblocks are shadow-verified against the stitched oracle before they
// are trusted; a clean kernel must promote without divergences.
func TestTierUpSelfCheckVerifiesPromotions(t *testing.T) {
	rt := buildKernelRuntime(t, "fencechain", 1, tierUpOpts(), WithSelfCheck(true))
	code, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := buildKernelRuntime(t, "fencechain", 1)
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != want {
		t.Fatalf("checksum %d, want %d", code, want)
	}
	st := rt.Stats()
	if st.Promotions == 0 {
		t.Fatal("selfcheck mode must still promote")
	}
	if st.Divergences != 0 {
		t.Fatalf("clean kernel reported %d divergences", st.Divergences)
	}
}

// TestTBCacheShardContention pins the contention accounting: a busy shard
// lock counts exactly one contention event per blocked acquisition.
func TestTBCacheShardContention(t *testing.T) {
	sc := obs.NewScope("").Child("core")
	counter := sc.Counter("cache.shard_contention")
	c := newTBCache(counter)
	const pc = uint64(0x40) // shard 4
	s := c.lock(shardIndex(pc))
	done := make(chan struct{})
	go func() {
		c.put(&tb{guestPC: pc}) // blocks on the held shard → one contention
		close(done)
	}()
	for counter.Load() == 0 {
	}
	s.mu.Unlock()
	<-done
	if counter.Load() != 1 {
		t.Fatalf("contention = %d, want 1", counter.Load())
	}
	if _, ok := c.get(pc); !ok {
		t.Fatal("blocked put lost the entry")
	}
	// Different shards do not contend.
	other := uint64(0x50) // shard 5
	s2 := c.lock(shardIndex(pc))
	c.put(&tb{guestPC: other})
	s2.mu.Unlock()
	if counter.Load() != 1 {
		t.Fatalf("cross-shard access contended: %d", counter.Load())
	}
}

// TestAddrMapShards covers the chain-table twin of the block cache.
func TestAddrMapShards(t *testing.T) {
	sc := obs.NewScope("").Child("core")
	a := newAddrMap(sc.Counter("cache.shard_contention"))
	for i := uint64(0); i < 64; i++ {
		a.put(i<<4, i)
	}
	if got := len(a.snapshot()); got != 64 {
		t.Fatalf("snapshot has %d entries, want 64", got)
	}
	v, ok := a.get(5 << 4)
	if !ok || v != 5 {
		t.Fatalf("get = (%d, %v)", v, ok)
	}
	a.remove(5 << 4)
	if _, ok := a.get(5 << 4); ok {
		t.Fatal("removed entry still present")
	}
	a.reset()
	if got := len(a.snapshot()); got != 0 {
		t.Fatalf("reset left %d entries", got)
	}
}
