package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frontend"
	"repro/internal/tcg"
)

// TestSuperblockIRMatchesSequentialInterp harvests the traces kmeans
// actually promotes and differential-tests the superblock pipeline in the
// interpreter: the optimized superblock installed by tier-up must leave
// the same exit PC, globals and memory as running its unoptimized
// component blocks back to back. kmeans is the harvest kernel because its
// unrolled comparison chain yields overlapping blocks with side exits on
// both branch arms — the shape that caught deadCode's missing exit
// liveness (globals written before a seam's side exit were eliminated
// when a later component overwrote them).
func TestSuperblockIRMatchesSequentialInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("interp differential is slow")
	}
	rt := buildKernelRuntime(t, "kmeans", 1, tierUpOpts())
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rt.tierup.promoted) == 0 {
		t.Fatal("no promotions recorded")
	}
	fe := rt.feCfg
	fe.Inject = nil

	for pc, p := range rt.tierup.promoted {
		if len(p.trace) < 2 {
			continue
		}
		var comps []*tcg.Block
		for _, tp := range p.trace {
			blk, err := frontend.Translate(rt.M.Mem, tp, fe)
			if err != nil {
				t.Fatalf("translate %#x: %v", tp, err)
			}
			comps = append(comps, blk)
		}
		super, err := tcg.Concat(comps)
		if err != nil {
			t.Fatalf("concat %#x: %v", pc, err)
		}
		t.Logf("trace head %#x: %v", pc, p.trace)

		maxTemps := super.NumTemps
		if p.ir.NumTemps > maxTemps {
			maxTemps = p.ir.NumTemps
		}
		for _, c := range comps {
			if c.NumTemps > maxTemps {
				maxTemps = c.NumTemps
			}
		}
		memSize := len(rt.M.Mem)

		for seed := int64(0); seed < 24; seed++ {
			rng := rand.New(rand.NewSource(seed))
			baseMem := make([]byte, memSize)
			rng.Read(baseMem)
			baseTemps := make([]uint64, maxTemps)
			for i := 0; i < tcg.NumGlobals; i++ {
				baseTemps[i] = rng.Uint64() % 1024
			}

			// Sequential reference: run each component on the same state,
			// following seams only while the exit matches the next
			// component's entry.
			seq := &tcg.Interp{Temps: append([]uint64(nil), baseTemps...),
				Mem: append([]byte(nil), baseMem...)}
			stop := false
			for i, c := range comps {
				if err := seq.Run(c); err != nil {
					stop = true // OOB on random state: skip this seed
					break
				}
				if i < len(comps)-1 && seq.NextPC != comps[i+1].GuestPC {
					break // side exit: superblock must stop here too
				}
			}
			if stop {
				continue
			}

			one := &tcg.Interp{Temps: append([]uint64(nil), baseTemps...),
				Mem: append([]byte(nil), baseMem...)}
			if err := one.Run(p.ir); err != nil {
				t.Fatalf("trace %#x seed %d: superblock interp: %v", pc, seed, err)
			}

			diverged := func(it *tcg.Interp) string {
				if it.NextPC != seq.NextPC {
					return fmt.Sprintf("exit %#x != %#x", it.NextPC, seq.NextPC)
				}
				for i := 0; i < tcg.NumGlobals; i++ {
					if it.Temps[i] != seq.Temps[i] {
						return fmt.Sprintf("global %d = %#x != %#x", i, it.Temps[i], seq.Temps[i])
					}
				}
				if !bytes.Equal(it.Mem, seq.Mem) {
					return "memory diverges"
				}
				return ""
			}
			if msg := diverged(one); msg != "" {
				// Bisect which optimizer pass breaks the superblock.
				for _, probe := range []struct {
					name string
					cfg  tcg.OptConfig
				}{
					{"constprop", tcg.OptConfig{ConstProp: true}},
					{"accesselim", tcg.OptConfig{AccessElim: true}},
					{"fencemerge", tcg.OptConfig{FenceMerge: true}},
					{"deadcode", tcg.OptConfig{DeadCode: true}},
					{"all", tcg.DefaultOpt()},
				} {
					sb := super.Clone()
					tcg.Optimize(sb, probe.cfg)
					it := &tcg.Interp{Temps: append([]uint64(nil), baseTemps...),
						Mem: append([]byte(nil), baseMem...)}
					if err := it.Run(sb); err != nil {
						t.Logf("pass %s: interp error %v", probe.name, err)
						continue
					}
					t.Logf("pass %-10s diverged=%q", probe.name, diverged(it))
				}
				t.Fatalf("trace %#x seed %d: %s\nUNOPTIMIZED:\n%s\nOPTIMIZED:\n%s",
					pc, seed, msg, super, p.ir)
			}
		}
	}
}
