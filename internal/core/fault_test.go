package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/guestimg"
	"repro/internal/hostlib"
	"repro/internal/isa/x86"
)

// chainImage builds a guest whose hot path is a chain of nblocks tiny
// translation blocks (each ends in a jump, forcing a block boundary),
// executed passes times. Exit code = nblocks (the per-pass counter).
func chainImage(t *testing.T, nblocks, passes int) *guestimg.Image {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.R12, 0).
		Label("outer").
		MovRI(x86.RAX, 0).
		Jmp("b0")
	for i := 0; i < nblocks; i++ {
		next := fmt.Sprintf("b%d", i+1)
		if i == nblocks-1 {
			next = "endchain"
		}
		a.Label(fmt.Sprintf("b%d", i)).
			AddRI(x86.RAX, 1).
			Jmp(next)
	}
	a.Label("endchain").
		AddRI(x86.R12, 1).
		CmpRI(x86.R12, int32(passes)).
		Jcc(x86.CondNE, "outer")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestFaultCacheExhaustRecovers runs a working set of blocks several times
// larger than the code cache: translation must flush-and-retranslate
// (repeatedly) instead of aborting, and the guest result is unchanged.
// Chaining on exercises the chain-reset path across flushes.
func TestFaultCacheExhaustRecovers(t *testing.T) {
	const nblocks = 64
	img := chainImage(t, nblocks, 3)
	for _, chain := range []bool{false, true} {
		cfg := Config{
			MemSize:       1 << 20,
			CodeCacheBase: (1 << 20) - 0x800, // 2 KiB cache
			Chain:         chain,
		}
		rt, code := runImage(t, img, VariantRisotto, cfg)
		if code != nblocks {
			t.Errorf("chain=%v: exit = %d, want %d", chain, code, nblocks)
		}
		if rt.Stats().CacheFlushes == 0 {
			t.Errorf("chain=%v: no cache flushes despite overflow working set (blocks=%d)",
				chain, rt.Stats().Blocks)
		}
	}
}

// TestFaultCacheExhaustWithThreads flushes while spawned vCPUs are parked
// mid-block: their extents must be pinned, not recycled, and the atomic
// counter must still be exact.
func TestFaultCacheExhaustWithThreads(t *testing.T) {
	const workers = 3
	const iters = 50

	b := guestimg.NewBuilder(0x10000, 0x40000)
	counter := b.Zeros(8)
	ids := b.Zeros(8 * workers)
	a := b.Asm
	a.Label("worker").
		MovRI(x86.RSI, int64(counter)).
		MovRI(x86.RCX, 0).
		Label("wloop").
		MovRI(x86.RBX, 1).
		XAdd(x86.Mem0(x86.RSI), x86.RBX, 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, iters).
		Jcc(x86.CondNE, "wloop").
		MovRI(x86.RDI, 0).
		MovRI(x86.RAX, GuestSysExit).
		Syscall()
	// Padding blocks between spawn and join keep translation pressure on
	// the tiny cache while workers run.
	a.Label("main").
		MovRI(x86.R12, 0).
		Label("spawnloop").
		MovRI(x86.RAX, GuestSysSpawn).
		MovRI(x86.RDI, 0x7777777700000000). // placeholder: worker addr
		MovRI(x86.RSI, 0).
		Syscall().
		MovRI(x86.R13, int64(ids)).
		Store(x86.MemIdx(x86.R13, x86.R12, 8, 0), x86.RAX, 8).
		AddRI(x86.R12, 1).
		CmpRI(x86.R12, workers).
		Jcc(x86.CondNE, "spawnloop").
		MovRI(x86.R14, 0).
		Label("padloop").
		Jmp("p0")
	for i := 0; i < 96; i++ {
		a.Label(fmt.Sprintf("p%d", i)).
			AddRI(x86.R14, 1).
			Jmp(fmt.Sprintf("p%d", i+1))
	}
	a.Label(fmt.Sprintf("p%d", 96)).
		MovRI(x86.R12, 0).
		Label("joinloop").
		MovRI(x86.R13, int64(ids)).
		Load(x86.RDI, x86.MemIdx(x86.R13, x86.R12, 8, 0), 8).
		MovRI(x86.RAX, GuestSysJoin).
		Syscall().
		AddRI(x86.R12, 1).
		CmpRI(x86.R12, workers).
		Jcc(x86.CondNE, "joinloop").
		MovRI(x86.RSI, int64(counter)).
		Load(x86.RAX, x86.Mem0(x86.RSI), 8)
	exitWith(a, x86.RAX)

	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	patchImm64(t, img, 0x7777777700000000, img.Symbols["worker"])

	cfg := Config{
		MemSize:       2 << 20,
		CodeCacheBase: (2 << 20) - 0x600, // 1.5 KiB cache
		StackSize:     64 << 10,
		Chain:         true,
	}
	rt, code := runImage(t, img, VariantRisotto, cfg)
	if code != workers*iters {
		t.Errorf("counter = %d, want %d", code, workers*iters)
	}
	if rt.Stats().CacheFlushes == 0 {
		t.Error("no cache flushes; test working set too small to exercise pinning")
	}
}

// spinImage builds a guest that loops forever.
func spinImage(t *testing.T) *guestimg.Image {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RCX, 0).
		Label("loop").
		AddRI(x86.RCX, 1).
		Jmp("loop")
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// casLivelockImage builds a guest spinning on a CAS that can never succeed
// (the cell holds 1, the guest forever expects 0).
func casLivelockImage(t *testing.T) *guestimg.Image {
	t.Helper()
	b := guestimg.NewBuilder(0x10000, 0x40000)
	cell := b.Data([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(cell)).
		Label("spin").
		MovRI(x86.RAX, 0). // expected: 0, never matches
		MovRI(x86.RBX, 7).
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8).
		Jcc(x86.CondNE, "spin")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// expectBudgetTrap runs img expecting the step-budget watchdog to halt it
// with a structured TrapBudget naming cpu0 and the spent steps.
func expectBudgetTrap(t *testing.T, img *guestimg.Image, label string, cfg Config) {
	t.Helper()
	cfg.Variant = VariantRisotto
	rt, err := NewFromConfig(cfg, img)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	_, err = rt.Run()
	if err == nil {
		t.Fatalf("%s: runaway guest completed", label)
	}
	tr, ok := faults.As(err)
	if !ok {
		t.Fatalf("%s: error is not a trap: %v", label, err)
	}
	if tr.Kind != faults.TrapBudget {
		t.Fatalf("%s: trap kind = %v, want step-budget: %v", label, tr.Kind, err)
	}
	if tr.CPU != 0 {
		t.Errorf("%s: trap cpu = %d, want 0", label, tr.CPU)
	}
	if tr.Steps == 0 {
		t.Errorf("%s: trap records no step count: %v", label, err)
	}
}

// TestFaultWatchdogInfiniteLoop halts a runaway guest via the per-CPU step
// budget, in both plain and weak-memory machine modes.
func TestFaultWatchdogInfiniteLoop(t *testing.T) {
	img := spinImage(t)
	expectBudgetTrap(t, img, "plain", Config{StepBudget: 20_000})
	seed := int64(7)
	expectBudgetTrap(t, img, "weak", Config{StepBudget: 20_000, WeakSeed: &seed})
}

// TestFaultWatchdogCASLivelock halts a livelocked CAS spin the same way —
// the atomic path must hit the budget check too.
func TestFaultWatchdogCASLivelock(t *testing.T) {
	img := casLivelockImage(t)
	expectBudgetTrap(t, img, "plain", Config{StepBudget: 20_000})
	seed := int64(11)
	expectBudgetTrap(t, img, "weak", Config{StepBudget: 20_000, WeakSeed: &seed})
}

// TestFaultWatchdogDeadline halts a runaway guest via the wall-clock
// watchdog when no step budget is set.
func TestFaultWatchdogDeadline(t *testing.T) {
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, Deadline: 50 * time.Millisecond}, spinImage(t))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rt.Run()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	if !faults.IsKind(err, faults.TrapBudget) {
		t.Fatalf("error = %v, want step-budget trap", err)
	}
}

// TestFaultMisalignedCAS checks the natural (uninjected) misalignment trap:
// an inline CASAL on an odd address is architecturally misaligned.
func TestFaultMisalignedCAS(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	cell := b.Zeros(16)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(cell+1)). // misaligned by one
		MovRI(x86.RAX, 0).
		MovRI(x86.RBX, 7).
		CmpXchg(x86.Mem0(x86.RSI), x86.RBX, 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewFromConfig(Config{Variant: VariantRisotto}, img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	tr, ok := faults.As(err)
	if !ok {
		t.Fatalf("misaligned CAS error = %v, want trap", err)
	}
	if tr.Kind != faults.TrapMisaligned {
		t.Fatalf("trap kind = %v, want misaligned: %v", tr.Kind, err)
	}
	if tr.Addr%8 == 0 {
		t.Errorf("trap addr %#x is aligned; attribution wrong", tr.Addr)
	}
}

// TestFaultInjectedDecode forces a decode fault mid-translation and checks
// guest-PC attribution survives to the caller.
func TestFaultInjectedDecode(t *testing.T) {
	in := faults.NewInjector(1)
	in.Arm(faults.SiteDecode, 1, faults.TrapDecode)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, Inject: in}, chainImage(t, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	tr, ok := faults.As(err)
	if !ok || tr.Kind != faults.TrapDecode || !tr.Injected {
		t.Fatalf("error = %v, want injected decode trap", err)
	}
	if !tr.GuestPC {
		t.Errorf("trap lacks guest PC attribution: %v", err)
	}
}

// TestFaultInjectedUnmapped forces an unmapped-memory fault at the Nth
// guest memory access.
func TestFaultInjectedUnmapped(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	buf := b.Zeros(64)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, int64(buf)).
		MovRI(x86.RCX, 0).
		Label("loop").
		Store(x86.MemIdx(x86.RSI, x86.RCX, 8, 0), x86.RCX, 8).
		Load(x86.RAX, x86.MemIdx(x86.RSI, x86.RCX, 8, 0), 8).
		AddRI(x86.RCX, 1).
		CmpRI(x86.RCX, 8).
		Jcc(x86.CondNE, "loop")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	in := faults.NewInjector(1)
	in.Arm(faults.SiteMemory, 3, faults.TrapUnmapped)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, Inject: in}, img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	tr, ok := faults.As(err)
	if !ok || tr.Kind != faults.TrapUnmapped || !tr.Injected {
		t.Fatalf("error = %v, want injected unmapped trap", err)
	}
}

// TestFaultInjectedCacheExhaust forces an allocation failure on the first
// block: the runtime must flush, retranslate and complete normally — the
// injection is one-shot, so the retry succeeds.
func TestFaultInjectedCacheExhaust(t *testing.T) {
	const nblocks = 8
	in := faults.NewInjector(1)
	in.Arm(faults.SiteCacheAlloc, 1, faults.TrapCacheExhausted)
	rt, err := NewFromConfig(Config{Variant: VariantRisotto, Inject: in}, chainImage(t, nblocks, 1))
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run()
	if err != nil {
		t.Fatalf("injected exhaustion not recovered: %v", err)
	}
	if code != nblocks {
		t.Errorf("exit = %d, want %d", code, nblocks)
	}
	if rt.Stats().CacheFlushes != 1 {
		t.Errorf("cache flushes = %d, want 1", rt.Stats().CacheFlushes)
	}
}

// TestFaultInjectedHostCall forces a host-linked call failure and checks the
// trap names the import.
func TestFaultInjectedHostCall(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	b.Import("triple")
	a := b.Asm
	a.Label("main").
		MovRI(x86.RDI, 14).
		Call("triple@plt").
		Jmp("done").
		Label("triple").
		MovRR(x86.RAX, x86.RDI).
		Ret().
		Label("done")
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	in := faults.NewInjector(1)
	in.Arm(faults.SiteHostCall, 1, faults.TrapHostCall)
	lib := hostlib.New()
	lib.Register("triple", func(mem []byte, args []uint64) (uint64, uint64) {
		return args[0] * 3, 10
	})
	rt, err := NewFromConfig(Config{
		Variant: VariantRisotto, IDL: "i64 triple(i64 x);\n", Lib: lib, Inject: in,
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	tr, ok := faults.As(err)
	if !ok || tr.Kind != faults.TrapHostCall || !tr.Injected {
		t.Fatalf("error = %v, want injected host-call trap", err)
	}
	if tr.CPU != 0 {
		t.Errorf("trap cpu = %d, want 0", tr.CPU)
	}
}

// TestFaultTrapRoundTrip sanity-checks that a natural unmapped access (a
// wild store) reports the faulting address.
func TestFaultTrapRoundTrip(t *testing.T) {
	b := guestimg.NewBuilder(0x10000, 0x40000)
	a := b.Asm
	a.Label("main").
		MovRI(x86.RSI, 1<<40). // far outside memory
		MovRI(x86.RBX, 1).
		Store(x86.Mem0(x86.RSI), x86.RBX, 8)
	exitWith(a, x86.RAX)
	img, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewFromConfig(Config{Variant: VariantRisotto}, img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	tr, ok := faults.As(err)
	if !ok || tr.Kind != faults.TrapUnmapped {
		t.Fatalf("error = %v, want unmapped trap", err)
	}
	if tr.Addr != 1<<40 {
		t.Errorf("trap addr = %#x, want %#x", tr.Addr, uint64(1)<<40)
	}
}
