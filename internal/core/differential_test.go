package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/guestimg"
	"repro/internal/isa/x86"
)

// Differential testing of the whole DBT pipeline: random guest programs
// are executed by the reference interpreter (internal/isa/x86.Interp) and
// by every DBT variant (frontend → optimizer → backend → machine); final
// register files, the shared data window, and the exit code must agree.

const (
	diffDataBase = 0x40000 // 64-qword shared data window
	diffDataLen  = 64 * 8
	diffTextBase = 0x10000
)

// genProgram builds a random but always-terminating guest program: a
// 3-iteration loop whose body is a run of random operations (ALU, memory
// in the data window, flags+forward branches, stack pushes/pops, atomics),
// ending with an exit syscall whose code checksums the register file.
func genProgram(rng *rand.Rand) (*guestimg.Image, error) {
	b := guestimg.NewBuilder(diffTextBase, diffDataBase)
	data := make([]byte, diffDataLen)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	b.Data(data)

	a := b.Asm
	// Register roles: R15 = data base (never written), R14 = loop
	// counter, RSP untouched by random ops. Everything else is fair game.
	pool := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
		x86.RBP, x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R13}
	pick := func() x86.Reg { return pool[rng.Intn(len(pool))] }
	sizes := []uint8{1, 2, 4, 8}

	a.Label("main")
	for i, r := range pool {
		a.MovRI(r, int64(rng.Uint64()>>uint(rng.Intn(40)))+int64(i))
	}
	a.MovRI(x86.R15, diffDataBase)
	a.MovRI(x86.R14, 3)
	a.Label("loop")

	// Memory operand helper: [R15 + (reg&63)*8] stays in the window.
	memIdx := func(idx x86.Reg) x86.Mem {
		return x86.MemIdx(x86.R15, idx, 8, int32(rng.Intn(7))*8)
	}
	labelN := 0
	nOps := 20 + rng.Intn(30)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(18) {
		case 0:
			a.MovRI(pick(), int64(rng.Uint64()>>uint(rng.Intn(33))))
		case 1:
			a.MovRR(pick(), pick())
		case 2:
			ops := []func(x86.Reg, x86.Reg) *x86.Assembler{
				a.AddRR, a.SubRR, a.MulRR, a.AndRR, a.OrRR, a.XorRR,
				a.UDivRR, a.URemRR,
			}
			ops[rng.Intn(len(ops))](pick(), pick())
		case 3:
			ops := []func(x86.Reg, int32) *x86.Assembler{
				a.AddRI, a.SubRI, a.MulRI, a.AndRI, a.OrRI, a.XorRI,
			}
			ops[rng.Intn(len(ops))](pick(), int32(rng.Intn(1<<16))-1<<15)
		case 4:
			// Shift with counts straddling the ≥64 spec corner.
			sh := []func(x86.Reg, int32) *x86.Assembler{a.ShlRI, a.ShrRI, a.SarRI}
			sh[rng.Intn(3)](pick(), int32(rng.Intn(72)))
		case 5:
			a.Neg(pick())
		case 6:
			a.Not(pick())
		case 7:
			idx := pick()
			a.AndRI(idx, 56)
			a.Load(pick(), memIdx(idx), sizes[rng.Intn(4)])
		case 8:
			idx := pick()
			a.AndRI(idx, 56)
			a.Store(memIdx(idx), pick(), sizes[rng.Intn(4)])
		case 9:
			idx := pick()
			a.AndRI(idx, 56)
			a.StoreI(memIdx(idx), int32(rng.Uint32()), sizes[rng.Intn(4)])
		case 10:
			idx := pick()
			a.AndRI(idx, 56)
			a.Lea(pick(), memIdx(idx))
		case 11:
			// Flags + forward conditional skip over a couple of ops.
			lbl := fmt.Sprintf("skip%d", labelN)
			labelN++
			a.CmpRR(pick(), pick())
			conds := []x86.Cond{x86.CondEQ, x86.CondNE, x86.CondLT, x86.CondLE,
				x86.CondGT, x86.CondGE, x86.CondB, x86.CondBE, x86.CondA, x86.CondAE}
			a.Jcc(conds[rng.Intn(len(conds))], lbl)
			a.AddRI(pick(), 7)
			a.XorRR(pick(), pick())
			a.Label(lbl)
		case 12:
			a.TestRR(pick(), pick())
			lbl := fmt.Sprintf("skip%d", labelN)
			labelN++
			a.Jcc(x86.CondNE, lbl)
			a.Not(pick())
			a.Label(lbl)
		case 13:
			a.Push(pick())
			a.Pop(pick())
		case 14:
			idx := pick()
			a.AndRI(idx, 56)
			size := sizes[rng.Intn(4)]
			a.CmpXchg(memIdx(idx), pick(), size)
		case 15:
			idx := pick()
			a.AndRI(idx, 56)
			a.XAdd(memIdx(idx), pick(), sizes[rng.Intn(4)])
		case 16:
			idx := pick()
			a.AndRI(idx, 56)
			a.Xchg(memIdx(idx), pick(), sizes[rng.Intn(4)])
		case 17:
			a.MFence()
		}
	}

	a.SubRI(x86.R14, 1)
	a.CmpRI(x86.R14, 0)
	a.Jcc(x86.CondNE, "loop")

	// Exit code: xor of the pool registers, truncated.
	a.MovRR(x86.RDI, pool[0])
	for _, r := range pool[1:] {
		a.XorRR(x86.RDI, r)
	}
	a.AndRI(x86.RDI, 0xFFFFFF)
	a.MovRI(x86.RAX, GuestSysExit)
	a.Syscall()

	return b.Build("main")
}

func TestDifferentialRandomPrograms(t *testing.T) {
	nSeeds := 150
	if testing.Short() {
		nSeeds = 25
	}
	for seed := 0; seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		img, err := genProgram(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Reference run.
		ref := x86.NewInterp(1 << 20)
		if err := img.Load(ref.Mem); err != nil {
			t.Fatal(err)
		}
		ref.PC = img.Entry
		ref.Regs[x86.RSP] = 0x80000
		if err := ref.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: reference did not halt", seed)
		}

		for _, v := range allVariants {
			rt, err := NewFromConfig(Config{Variant: v}, img)
			if err != nil {
				t.Fatalf("seed %d/%v: %v", seed, v, err)
			}
			code, err := rt.Run()
			if err != nil {
				t.Fatalf("seed %d/%v: %v", seed, v, err)
			}
			if code != ref.ExitCode {
				t.Fatalf("seed %d/%v: exit %d != reference %d",
					seed, v, code, ref.ExitCode)
			}
			c := rt.M.CPUs[0]
			for reg := 0; reg < x86.NumRegs; reg++ {
				if x86.Reg(reg) == x86.RSP {
					continue // stacks live at different addresses
				}
				if c.Regs[reg] != ref.Regs[reg] {
					t.Fatalf("seed %d/%v: %v = %#x, reference %#x",
						seed, v, x86.Reg(reg), c.Regs[reg], ref.Regs[reg])
				}
			}
			for off := 0; off < diffDataLen; off++ {
				if rt.M.Mem[diffDataBase+off] != ref.Mem[diffDataBase+off] {
					t.Fatalf("seed %d/%v: mem[%#x] = %#x, reference %#x",
						seed, v, diffDataBase+off,
						rt.M.Mem[diffDataBase+off], ref.Mem[diffDataBase+off])
				}
			}
		}
	}
}
