package arm

import "fmt"

// Assembler builds host code with symbolic labels, used both by tests and
// by the native-workload builders (the "native" series of Figure 12 runs
// Arm code produced here directly, without translation).
type Assembler struct {
	insts   []Inst
	targets []string // parallel: label target for branch fixup ("" if none)
	labels  map[string]int
	err     error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Label defines a label at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("arm asm: duplicate label %q", name)
	}
	a.labels[name] = len(a.insts)
	return a
}

// Raw appends an instruction without label fixup.
func (a *Assembler) Raw(inst Inst) *Assembler {
	a.insts = append(a.insts, inst)
	a.targets = append(a.targets, "")
	return a
}

func (a *Assembler) branch(inst Inst, label string) *Assembler {
	a.insts = append(a.insts, inst)
	a.targets = append(a.targets, label)
	return a
}

// MovImm loads an arbitrary 64-bit constant using MOVZ/MOVK sequences.
func (a *Assembler) MovImm(rd Reg, v uint64) *Assembler {
	a.Raw(Inst{Op: MOVZ, Rd: rd, Imm: int64(v & 0xFFFF), Shift: 0})
	for s := uint8(1); s <= 3; s++ {
		chunk := v >> (16 * s) & 0xFFFF
		if chunk != 0 {
			a.Raw(Inst{Op: MOVK, Rd: rd, Imm: int64(chunk), Shift: s})
		}
	}
	return a
}

// MovSym loads the address of a label into rd (MOVZ+MOVK pair; symbols
// must fit in 32 bits, which all simulated addresses do).
func (a *Assembler) MovSym(rd Reg, label string) *Assembler {
	a.branch(Inst{Op: MOVZ, Rd: rd}, label)
	return a.Raw(Inst{Op: MOVK, Rd: rd, Shift: 1}) // patched together with the MOVZ
}

// Mov emits rd = rn (as ORR rd, xzr, rn).
func (a *Assembler) Mov(rd, rn Reg) *Assembler {
	return a.Raw(Inst{Op: ORR, Rd: rd, Rn: XZR, Rm: rn})
}

// Add emits rd = rn + rm.
func (a *Assembler) Add(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: ADD, Rd: rd, Rn: rn, Rm: rm})
}

// Sub emits rd = rn - rm.
func (a *Assembler) Sub(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: SUB, Rd: rd, Rn: rn, Rm: rm})
}

// Mul emits rd = rn * rm.
func (a *Assembler) Mul(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: MUL, Rd: rd, Rn: rn, Rm: rm})
}

// UDiv emits rd = rn / rm (unsigned; 0 on division by zero, as on Arm).
func (a *Assembler) UDiv(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: UDIV, Rd: rd, Rn: rn, Rm: rm})
}

// URem emits rd = rn % rm (unsigned).
func (a *Assembler) URem(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: UREM, Rd: rd, Rn: rn, Rm: rm})
}

// And emits rd = rn & rm.
func (a *Assembler) And(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: AND, Rd: rd, Rn: rn, Rm: rm})
}

// Orr emits rd = rn | rm.
func (a *Assembler) Orr(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: ORR, Rd: rd, Rn: rn, Rm: rm})
}

// Eor emits rd = rn ^ rm.
func (a *Assembler) Eor(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: EOR, Rd: rd, Rn: rn, Rm: rm})
}

// Lsl emits rd = rn << rm.
func (a *Assembler) Lsl(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: LSL, Rd: rd, Rn: rn, Rm: rm})
}

// Lsr emits rd = rn >> rm (logical).
func (a *Assembler) Lsr(rd, rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: LSR, Rd: rd, Rn: rn, Rm: rm})
}

// AddI emits rd = rn + imm12.
func (a *Assembler) AddI(rd, rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: ADDI, Rd: rd, Rn: rn, Imm: imm})
}

// SubI emits rd = rn - imm12.
func (a *Assembler) SubI(rd, rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: SUBI, Rd: rd, Rn: rn, Imm: imm})
}

// LslI emits rd = rn << imm.
func (a *Assembler) LslI(rd, rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: LSLI, Rd: rd, Rn: rn, Imm: imm})
}

// LsrI emits rd = rn >> imm (logical).
func (a *Assembler) LsrI(rd, rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: LSRI, Rd: rd, Rn: rn, Imm: imm})
}

// AndI emits rd = rn & imm12.
func (a *Assembler) AndI(rd, rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: ANDI, Rd: rd, Rn: rn, Imm: imm})
}

// Cmp emits SUBS xzr, rn, rm.
func (a *Assembler) Cmp(rn, rm Reg) *Assembler {
	return a.Raw(Inst{Op: SUBS, Rd: XZR, Rn: rn, Rm: rm})
}

// CmpI emits SUBS xzr, rn, #imm12.
func (a *Assembler) CmpI(rn Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: SUBSI, Rd: XZR, Rn: rn, Imm: imm})
}

// Cset emits rd = cond ? 1 : 0.
func (a *Assembler) Cset(rd Reg, c Cond) *Assembler {
	return a.Raw(Inst{Op: CSET, Rd: rd, Cond: c})
}

// Ldr emits rt = [rn + off] with the given size.
func (a *Assembler) Ldr(rt, rn Reg, off int64, size uint8) *Assembler {
	return a.Raw(Inst{Op: LDR, Rd: rt, Rn: rn, Imm: off, Size: size})
}

// Str emits [rn + off] = rt with the given size.
func (a *Assembler) Str(rt, rn Reg, off int64, size uint8) *Assembler {
	return a.Raw(Inst{Op: STR, Rd: rt, Rn: rn, Imm: off, Size: size})
}

// Ldar emits a 64-bit acquire load.
func (a *Assembler) Ldar(rt, rn Reg) *Assembler {
	return a.Raw(Inst{Op: LDAR, Rd: rt, Rn: rn, Size: 8})
}

// Stlr emits a 64-bit release store.
func (a *Assembler) Stlr(rt, rn Reg) *Assembler {
	return a.Raw(Inst{Op: STLR, Rd: rt, Rn: rn, Size: 8})
}

// Casal emits the acquire-release compare-and-swap (RMW1^AL).
func (a *Assembler) Casal(rs, rt, rn Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: CASAL, Rd: rs, Rm: rt, Rn: rn, Size: size})
}

// LdAddAL emits the acquire-release atomic fetch-add.
func (a *Assembler) LdAddAL(rs, rt, rn Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: LDADDAL, Rd: rs, Rm: rt, Rn: rn, Size: size})
}

// Dmb emits a barrier.
func (a *Assembler) Dmb(b Barrier) *Assembler {
	return a.Raw(Inst{Op: DMB, Barrier: b})
}

// BLabel emits an unconditional branch to a label.
func (a *Assembler) BLabel(label string) *Assembler {
	return a.branch(Inst{Op: B}, label)
}

// BCondLabel emits a conditional branch to a label.
func (a *Assembler) BCondLabel(c Cond, label string) *Assembler {
	return a.branch(Inst{Op: BCOND, Cond: c}, label)
}

// CbzLabel / CbnzLabel emit compare-with-zero branches.
func (a *Assembler) CbzLabel(rt Reg, label string) *Assembler {
	return a.branch(Inst{Op: CBZ, Rd: rt}, label)
}

// CbnzLabel emits a compare-nonzero-and-branch.
func (a *Assembler) CbnzLabel(rt Reg, label string) *Assembler {
	return a.branch(Inst{Op: CBNZ, Rd: rt}, label)
}

// BlLabel emits a call to a label.
func (a *Assembler) BlLabel(label string) *Assembler {
	return a.branch(Inst{Op: BL}, label)
}

// Blr emits an indirect call.
func (a *Assembler) Blr(rn Reg) *Assembler { return a.Raw(Inst{Op: BLR, Rn: rn}) }

// Ret emits a return through X30.
func (a *Assembler) Ret() *Assembler { return a.Raw(Inst{Op: RET}) }

// Svc emits a runtime trap.
func (a *Assembler) Svc(imm int64) *Assembler { return a.Raw(Inst{Op: SVC, Imm: imm}) }

// Hlt stops the CPU.
func (a *Assembler) Hlt() *Assembler { return a.Raw(Inst{Op: HLT}) }

// Nop emits a no-op.
func (a *Assembler) Nop() *Assembler { return a.Raw(Inst{Op: NOP}) }

// Assemble lays the program out at base, resolves labels, and returns the
// encoded bytes and the symbol table.
func (a *Assembler) Assemble(base uint64) ([]byte, map[string]uint64, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	syms := make(map[string]uint64, len(a.labels))
	for name, idx := range a.labels {
		syms[name] = base + uint64(idx*InstBytes)
	}
	var code []byte
	for i, inst := range a.insts {
		if tgt := a.targets[i]; tgt != "" {
			addr, ok := syms[tgt]
			if !ok {
				return nil, nil, fmt.Errorf("arm asm: undefined label %q", tgt)
			}
			if inst.Op == MOVZ {
				// MovSym pair: this MOVZ takes the low 16 bits; the
				// following MOVK (shift 1) takes bits 16..31.
				if addr>>32 != 0 {
					return nil, nil, fmt.Errorf("arm asm: symbol %q address %#x exceeds 32 bits", tgt, addr)
				}
				inst.Imm = int64(addr & 0xFFFF)
				a.insts[i+1].Imm = int64(addr >> 16 & 0xFFFF)
			} else {
				inst.Off = int32((int64(addr) - int64(base+uint64(i*InstBytes))) / InstBytes)
			}
		}
		var err error
		code, err = EncodeTo(code, inst)
		if err != nil {
			return nil, nil, fmt.Errorf("arm asm: inst %d (%v): %w", i, inst, err)
		}
	}
	return code, syms, nil
}
