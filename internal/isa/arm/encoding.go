package arm

import (
	"encoding/binary"
	"fmt"
)

// Every instruction encodes to exactly four bytes, little-endian:
// the opcode in bits [31:24] and packed operand fields below, chosen per
// opcode class (see pack/unpack).

// InstBytes is the fixed encoded instruction size.
const InstBytes = 4

type class uint8

const (
	clNone   class = iota
	clR3           // rd | rn<<5 | rm<<10
	clR2           // rd | rn<<5 (MVN, NEG)
	clImm          // rd | rn<<5 | imm12<<10
	clMov16        // rd | shift<<5 | imm16<<7
	clMem          // rt | rn<<5 | imm12<<10 | size2<<22
	clAtomic       // rd | rn<<5 | rm<<10 | size2<<15
	clCset         // rd | cond<<5
	clDmb          // barrier
	clB24          // simm24
	clBcond        // simm19 | cond<<19
	clCbz          // rt | simm19<<5
	clBreg         // rn<<5
	clSvc          // imm16
)

var classOf = [numOps]class{
	NOP: clNone, HLT: clNone, RET: clNone,
	MOVZ: clMov16, MOVK: clMov16,
	ADD: clR3, SUB: clR3, MUL: clR3, UDIV: clR3, UREM: clR3,
	AND: clR3, ORR: clR3, EOR: clR3, LSL: clR3, LSR: clR3, ASR: clR3,
	SUBS: clR3,
	MVN:  clR2, NEG: clR2,
	ADDI: clImm, SUBI: clImm, ANDI: clImm, ORRI: clImm, EORI: clImm,
	LSLI: clImm, LSRI: clImm, ASRI: clImm, SUBSI: clImm,
	CSET: clCset,
	LDR:  clMem, STR: clMem,
	LDAR: clAtomic, LDAPR: clAtomic, STLR: clAtomic,
	LDXR: clAtomic, STXR: clAtomic, LDAXR: clAtomic, STLXR: clAtomic,
	CAS: clAtomic, CASAL: clAtomic, LDADDAL: clAtomic, SWPAL: clAtomic,
	DMB: clDmb,
	B:   clB24, BL: clB24,
	BCOND: clBcond,
	CBZ:   clCbz, CBNZ: clCbz,
	BR: clBreg, BLR: clBreg,
	SVC: clSvc,
}

func sizeCode(size uint8) uint32 {
	switch size {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

func codeSize(code uint32) uint8 {
	switch code {
	case 0:
		return 1
	case 1:
		return 2
	case 2:
		return 4
	default:
		return 8
	}
}

// Encode packs inst into its 32-bit word.
func Encode(inst Inst) (uint32, error) {
	if inst.Op >= numOps {
		return 0, fmt.Errorf("arm: bad opcode %d", inst.Op)
	}
	w := uint32(inst.Op) << 24
	switch classOf[inst.Op] {
	case clNone:
	case clR3:
		w |= uint32(inst.Rd) | uint32(inst.Rn)<<5 | uint32(inst.Rm)<<10
	case clR2:
		w |= uint32(inst.Rd) | uint32(inst.Rn)<<5
	case clImm:
		if inst.Imm < 0 || inst.Imm > 0xFFF {
			return 0, fmt.Errorf("arm: %v immediate %d out of imm12 range", inst.Op, inst.Imm)
		}
		w |= uint32(inst.Rd) | uint32(inst.Rn)<<5 | uint32(inst.Imm)<<10
	case clMov16:
		if inst.Imm < 0 || inst.Imm > 0xFFFF {
			return 0, fmt.Errorf("arm: %v immediate %d out of imm16 range", inst.Op, inst.Imm)
		}
		if inst.Shift > 3 {
			return 0, fmt.Errorf("arm: %v shift %d out of range", inst.Op, inst.Shift)
		}
		w |= uint32(inst.Rd) | uint32(inst.Shift)<<5 | uint32(inst.Imm)<<7
	case clMem:
		if inst.Imm < 0 || inst.Imm > 0xFFF {
			return 0, fmt.Errorf("arm: %v offset %d out of imm12 range", inst.Op, inst.Imm)
		}
		w |= uint32(inst.Rd) | uint32(inst.Rn)<<5 | uint32(inst.Imm)<<10 |
			sizeCode(inst.Size)<<22
	case clAtomic:
		w |= uint32(inst.Rd) | uint32(inst.Rn)<<5 | uint32(inst.Rm)<<10 |
			sizeCode(inst.Size)<<15
	case clCset:
		w |= uint32(inst.Rd) | uint32(inst.Cond)<<5
	case clDmb:
		w |= uint32(inst.Barrier)
	case clB24:
		if inst.Off < -(1<<23) || inst.Off >= 1<<23 {
			return 0, fmt.Errorf("arm: branch offset %d out of simm24 range", inst.Off)
		}
		w |= uint32(inst.Off) & 0xFFFFFF
	case clBcond:
		if inst.Off < -(1<<18) || inst.Off >= 1<<18 {
			return 0, fmt.Errorf("arm: b.cond offset %d out of simm19 range", inst.Off)
		}
		w |= uint32(inst.Off)&0x7FFFF | uint32(inst.Cond)<<19
	case clCbz:
		if inst.Off < -(1<<18) || inst.Off >= 1<<18 {
			return 0, fmt.Errorf("arm: cbz offset %d out of simm19 range", inst.Off)
		}
		w |= uint32(inst.Rd) | (uint32(inst.Off)&0x7FFFF)<<5
	case clBreg:
		w |= uint32(inst.Rn) << 5
	case clSvc:
		if inst.Imm < 0 || inst.Imm > 0xFFFF {
			return 0, fmt.Errorf("arm: svc immediate %d out of imm16 range", inst.Imm)
		}
		w |= uint32(inst.Imm)
	}
	return w, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(w uint32) (Inst, error) {
	op := Op(w >> 24)
	if op >= numOps {
		return Inst{}, fmt.Errorf("arm: bad opcode %#x", w>>24)
	}
	inst := Inst{Op: op}
	switch classOf[op] {
	case clNone:
	case clR3:
		inst.Rd = Reg(w & 31)
		inst.Rn = Reg(w >> 5 & 31)
		inst.Rm = Reg(w >> 10 & 31)
	case clR2:
		inst.Rd = Reg(w & 31)
		inst.Rn = Reg(w >> 5 & 31)
	case clImm:
		inst.Rd = Reg(w & 31)
		inst.Rn = Reg(w >> 5 & 31)
		inst.Imm = int64(w >> 10 & 0xFFF)
	case clMov16:
		inst.Rd = Reg(w & 31)
		inst.Shift = uint8(w >> 5 & 3)
		inst.Imm = int64(w >> 7 & 0xFFFF)
	case clMem:
		inst.Rd = Reg(w & 31)
		inst.Rn = Reg(w >> 5 & 31)
		inst.Imm = int64(w >> 10 & 0xFFF)
		inst.Size = codeSize(w >> 22 & 3)
	case clAtomic:
		inst.Rd = Reg(w & 31)
		inst.Rn = Reg(w >> 5 & 31)
		inst.Rm = Reg(w >> 10 & 31)
		inst.Size = codeSize(w >> 15 & 3)
	case clCset:
		inst.Rd = Reg(w & 31)
		inst.Cond = Cond(w >> 5 & 15)
	case clDmb:
		inst.Barrier = Barrier(w & 3)
	case clB24:
		inst.Off = signExtend(w&0xFFFFFF, 24)
	case clBcond:
		inst.Off = signExtend(w&0x7FFFF, 19)
		inst.Cond = Cond(w >> 19 & 15)
	case clCbz:
		inst.Rd = Reg(w & 31)
		inst.Off = signExtend(w>>5&0x7FFFF, 19)
	case clBreg:
		inst.Rn = Reg(w >> 5 & 31)
	case clSvc:
		inst.Imm = int64(w & 0xFFFF)
	}
	return inst, nil
}

// EncodeTo appends the encoding of inst to code.
func EncodeTo(code []byte, inst Inst) ([]byte, error) {
	w, err := Encode(inst)
	if err != nil {
		return code, err
	}
	return binary.LittleEndian.AppendUint32(code, w), nil
}

// DecodeAt decodes the instruction at offset off in code.
func DecodeAt(code []byte, off int) (Inst, error) {
	if off+InstBytes > len(code) {
		return Inst{}, fmt.Errorf("arm: decode past end (off=%d len=%d)", off, len(code))
	}
	return Decode(binary.LittleEndian.Uint32(code[off:]))
}
