// Package arm defines Risotto-Go's host instruction set: an A64-like
// fixed-width (32-bit) RISC ISA with Arm's concurrency primitives — plain
// LDR/STR (weakly ordered), acquire/release accesses (LDAR, LDAPR, STLR),
// exclusives (LDXR/STXR and their acquire/release forms), single-copy
// atomic RMWs (CAS/CASAL, LDADDAL) and the three DMB fences — plus a
// binary encoding, assembler, decoder and disassembler.
//
// The encoding is a custom 32-bit format (op byte + packed fields), not
// real A64 machine code; see DESIGN.md §1. The ordering semantics of each
// instruction match the Armed-Cats events they generate.
package arm

import "fmt"

// Reg names a 64-bit host register. X31 is XZR: reads as zero, writes are
// discarded.
type Reg uint8

// Register aliases. The Risotto backend reserves X27 as the guest-state
// convention stack pointer and X28 as scratch; nothing in the ISA itself
// treats any register specially except XZR.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	// XZR is the zero register.
	XZR
	// NumRegs is the architectural register count (including XZR).
	NumRegs = 32
	// LR is the link register written by BL/BLR.
	LR = X30
)

func (r Reg) String() string {
	if r == XZR {
		return "xzr"
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Cond is an A64 condition code evaluated against NZCV.
type Cond uint8

// Condition codes. Signed: LT/LE/GT/GE; unsigned: LO/LS/HI/HS.
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
	LO // unsigned lower
	LS // unsigned lower or same
	HI // unsigned higher
	HS // unsigned higher or same
)

var condNames = []string{"eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Barrier selects a DMB flavour.
type Barrier uint8

// DMB flavours (§2.4): Full orders everything, Load orders a load with its
// successors, Store orders store-store pairs.
const (
	BarrierFull Barrier = iota
	BarrierLoad
	BarrierStore
)

func (b Barrier) String() string {
	switch b {
	case BarrierFull:
		return "ish"
	case BarrierLoad:
		return "ishld"
	case BarrierStore:
		return "ishst"
	}
	return fmt.Sprintf("dmb?%d", uint8(b))
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	NOP Op = iota
	// HLT stops the executing CPU.
	HLT

	// MOVZ: rd = imm16 << (16*shift). MOVK: insert imm16 at 16*shift.
	MOVZ
	MOVK

	// Three-register ALU: rd = rn ∘ rm.
	ADD
	SUB
	MUL
	UDIV
	UREM
	AND
	ORR
	EOR
	LSL
	LSR
	ASR
	// SUBS sets NZCV (CMP is SUBS with rd=XZR).
	SUBS
	// MVN: rd = ^rn.
	MVN
	// NEG: rd = -rn.
	NEG

	// Immediate ALU: rd = rn ∘ imm12 (unsigned immediate).
	ADDI
	SUBI
	ANDI
	ORRI
	EORI
	LSLI
	LSRI
	ASRI
	SUBSI

	// CSET: rd = cond ? 1 : 0.
	CSET

	// Plain memory accesses: [rn + imm12], access size 1/2/4/8 bytes,
	// loads zero-extend. These generate plain R/W events.
	LDR
	STR
	// Acquire/release/acquirePC accesses (A, L, Q events). Full width.
	LDAR
	LDAPR
	STLR
	// Exclusives: LDXR/STXR and acquire/release forms. STXR writes the
	// status (0 = success) to rs.
	LDXR
	STXR
	LDAXR
	STLXR
	// Single-instruction atomics. CAS rs, rt, [rn]: if [rn] == rs then
	// [rn] = rt; rs receives the old value. CASAL is the acquire-release
	// form (RMW1^AL). LDADDAL rs, rt, [rn]: rt = [rn]; [rn] += rs.
	// SWPAL rs, rt, [rn]: rt = [rn]; [rn] = rs.
	CAS
	CASAL
	LDADDAL
	SWPAL

	// DMB emits a barrier of the given flavour.
	DMB

	// Branches. B/BL take a signed 24-bit word offset from the current
	// instruction; BCOND/CBZ/CBNZ a signed 19-bit word offset.
	B
	BL
	BCOND
	CBZ
	CBNZ
	BR
	BLR
	RET

	// SVC traps to the runtime with a 16-bit immediate.
	SVC

	numOps
)

var opNames = [numOps]string{
	"nop", "hlt", "movz", "movk",
	"add", "sub", "mul", "udiv", "urem", "and", "orr", "eor",
	"lsl", "lsr", "asr", "subs", "mvn", "neg",
	"add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr", "subs",
	"cset",
	"ldr", "str", "ldar", "ldapr", "stlr",
	"ldxr", "stxr", "ldaxr", "stlxr",
	"cas", "casal", "ldaddal", "swpal",
	"dmb",
	"b", "bl", "b.", "cbz", "cbnz", "br", "blr", "ret",
	"svc",
}

// Inst is one decoded instruction.
type Inst struct {
	Op      Op
	Rd      Reg // destination / status / expected (CAS)
	Rn      Reg // first source / base address
	Rm      Reg // second source / store-data (CAS, STXR)
	Imm     int64
	Shift   uint8 // MOVZ/MOVK 16-bit chunk index (0..3)
	Size    uint8 // memory access size: 1, 2, 4, 8
	Cond    Cond
	Barrier Barrier
	// Off is the branch word offset (B, BL, BCOND, CBZ, CBNZ), relative
	// to the current instruction.
	Off int32
}

// String disassembles the instruction.
func (i Inst) String() string {
	n := "?"
	if int(i.Op) < len(opNames) {
		n = opNames[i.Op]
	}
	switch i.Op {
	case NOP, HLT, RET:
		return n
	case MOVZ, MOVK:
		return fmt.Sprintf("%s %s, #%d, lsl #%d", n, i.Rd, uint16(i.Imm), 16*i.Shift)
	case ADD, SUB, MUL, UDIV, UREM, AND, ORR, EOR, LSL, LSR, ASR, SUBS:
		return fmt.Sprintf("%s %s, %s, %s", n, i.Rd, i.Rn, i.Rm)
	case MVN, NEG:
		return fmt.Sprintf("%s %s, %s", n, i.Rd, i.Rn)
	case ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI, ASRI, SUBSI:
		return fmt.Sprintf("%s %s, %s, #%d", n, i.Rd, i.Rn, i.Imm)
	case CSET:
		return fmt.Sprintf("%s %s, %s", n, i.Rd, i.Cond)
	case LDR, STR:
		return fmt.Sprintf("%s%s %s, [%s, #%d]", n, sizeSuffix(i.Size), i.Rd, i.Rn, i.Imm)
	case LDAR, LDAPR, STLR, LDXR, LDAXR:
		return fmt.Sprintf("%s %s, [%s]", n, i.Rd, i.Rn)
	case STXR, STLXR:
		return fmt.Sprintf("%s %s, %s, [%s]", n, i.Rd, i.Rm, i.Rn)
	case CAS, CASAL, LDADDAL, SWPAL:
		return fmt.Sprintf("%s %s, %s, [%s]", n, i.Rd, i.Rm, i.Rn)
	case DMB:
		return fmt.Sprintf("%s %s", n, i.Barrier)
	case B, BL:
		return fmt.Sprintf("%s %+d", n, i.Off)
	case BCOND:
		return fmt.Sprintf("%s%s %+d", n, i.Cond, i.Off)
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, %+d", n, i.Rd, i.Off)
	case BR, BLR:
		return fmt.Sprintf("%s %s", n, i.Rn)
	case SVC:
		return fmt.Sprintf("%s #%d", n, i.Imm)
	}
	return n
}

func sizeSuffix(size uint8) string {
	switch size {
	case 1:
		return "b"
	case 2:
		return "h"
	case 4:
		return "w"
	default:
		return ""
	}
}

// IsBranch reports whether the instruction may redirect control flow.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case B, BL, BCOND, CBZ, CBNZ, BR, BLR, RET, SVC, HLT:
		return true
	}
	return false
}
