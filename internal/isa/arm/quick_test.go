package arm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst generates a random well-formed instruction.
func randInst(rng *rand.Rand) Inst {
	ops := []Op{
		NOP, HLT, RET, MOVZ, MOVK,
		ADD, SUB, MUL, UDIV, UREM, AND, ORR, EOR, LSL, LSR, ASR, SUBS,
		MVN, NEG,
		ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI, ASRI, SUBSI,
		CSET, LDR, STR, LDAR, LDAPR, STLR,
		LDXR, STXR, LDAXR, STLXR, CAS, CASAL, LDADDAL, SWPAL,
		DMB, B, BL, BCOND, CBZ, CBNZ, BR, BLR, SVC,
	}
	op := ops[rng.Intn(len(ops))]
	reg := func() Reg { return Reg(rng.Intn(32)) }
	sizes := []uint8{1, 2, 4, 8}
	inst := Inst{Op: op}
	switch op {
	case NOP, HLT, RET:
	case MOVZ, MOVK:
		inst.Rd, inst.Imm, inst.Shift = reg(), int64(rng.Intn(1<<16)), uint8(rng.Intn(4))
	case ADD, SUB, MUL, UDIV, UREM, AND, ORR, EOR, LSL, LSR, ASR, SUBS:
		inst.Rd, inst.Rn, inst.Rm = reg(), reg(), reg()
	case MVN, NEG:
		inst.Rd, inst.Rn = reg(), reg()
	case ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI, ASRI, SUBSI:
		inst.Rd, inst.Rn, inst.Imm = reg(), reg(), int64(rng.Intn(1<<12))
	case CSET:
		inst.Rd, inst.Cond = reg(), Cond(rng.Intn(10))
	case LDR, STR:
		inst.Rd, inst.Rn = reg(), reg()
		inst.Imm = int64(rng.Intn(1 << 12))
		inst.Size = sizes[rng.Intn(4)]
	case LDAR, LDAPR, STLR, LDXR, LDAXR:
		inst.Rd, inst.Rn, inst.Size = reg(), reg(), sizes[rng.Intn(4)]
	case STXR, STLXR, CAS, CASAL, LDADDAL, SWPAL:
		inst.Rd, inst.Rn, inst.Rm, inst.Size = reg(), reg(), reg(), sizes[rng.Intn(4)]
	case DMB:
		inst.Barrier = Barrier(rng.Intn(3))
	case B, BL:
		inst.Off = int32(rng.Intn(1<<24)) - 1<<23
	case BCOND:
		inst.Off = int32(rng.Intn(1<<19)) - 1<<18
		inst.Cond = Cond(rng.Intn(10))
	case CBZ, CBNZ:
		inst.Rd = reg()
		inst.Off = int32(rng.Intn(1<<19)) - 1<<18
	case BR, BLR:
		inst.Rn = reg()
	case SVC:
		inst.Imm = int64(rng.Intn(1 << 16))
	}
	return inst
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := randInst(rng)
		w, err := Encode(want)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeTotality(t *testing.T) {
	// Decode of arbitrary words either errors (bad opcode) or returns an
	// instruction that re-encodes into a word decoding to the same
	// instruction (encode∘decode is idempotent on valid opcodes).
	f := func(w uint32) bool {
		inst, err := Decode(w)
		if err != nil {
			return Op(w>>24) >= numOps
		}
		w2, err := Encode(inst)
		if err != nil {
			// Decoded fields can exceed encodable ranges only if spare
			// bits were set; re-encoding must not be attempted then.
			return true
		}
		inst2, err := Decode(w2)
		return err == nil && inst2 == inst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
