package arm

import "testing"

func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: HLT},
		{Op: RET},
		{Op: MOVZ, Rd: X0, Imm: 0xBEEF, Shift: 1},
		{Op: MOVK, Rd: X5, Imm: 0xFFFF, Shift: 3},
		{Op: ADD, Rd: X1, Rn: X2, Rm: X3},
		{Op: SUBS, Rd: XZR, Rn: X4, Rm: X5},
		{Op: UREM, Rd: X9, Rn: X10, Rm: X11},
		{Op: MVN, Rd: X6, Rn: X7},
		{Op: NEG, Rd: X6, Rn: X7},
		{Op: ADDI, Rd: X8, Rn: X9, Imm: 4095},
		{Op: LSLI, Rd: X1, Rn: X1, Imm: 63},
		{Op: SUBSI, Rd: XZR, Rn: X2, Imm: 100},
		{Op: CSET, Rd: X3, Cond: HI},
		{Op: LDR, Rd: X4, Rn: X5, Imm: 8, Size: 8},
		{Op: LDR, Rd: X4, Rn: X5, Imm: 1, Size: 1},
		{Op: STR, Rd: X6, Rn: X7, Imm: 4095, Size: 4},
		{Op: LDAR, Rd: X1, Rn: X2, Size: 8},
		{Op: LDAPR, Rd: X1, Rn: X2, Size: 8},
		{Op: STLR, Rd: X1, Rn: X2, Size: 8},
		{Op: LDXR, Rd: X3, Rn: X4, Size: 8},
		{Op: STXR, Rd: X5, Rm: X6, Rn: X7, Size: 8},
		{Op: LDAXR, Rd: X3, Rn: X4, Size: 4},
		{Op: STLXR, Rd: X5, Rm: X6, Rn: X7, Size: 4},
		{Op: CAS, Rd: X0, Rm: X1, Rn: X2, Size: 8},
		{Op: CASAL, Rd: X0, Rm: X1, Rn: X2, Size: 8},
		{Op: LDADDAL, Rd: X8, Rm: X9, Rn: X10, Size: 8},
		{Op: SWPAL, Rd: X8, Rm: X9, Rn: X10, Size: 8},
		{Op: DMB, Barrier: BarrierFull},
		{Op: DMB, Barrier: BarrierLoad},
		{Op: DMB, Barrier: BarrierStore},
		{Op: B, Off: -(1 << 23)},
		{Op: BL, Off: 1<<23 - 1},
		{Op: BCOND, Cond: LE, Off: -(1 << 18)},
		{Op: CBZ, Rd: X1, Off: 1<<18 - 1},
		{Op: CBNZ, Rd: X2, Off: -5},
		{Op: BR, Rn: X17},
		{Op: BLR, Rn: X18},
		{Op: SVC, Imm: 0xABCD},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, want := range sampleInsts() {
		w, err := Encode(want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: decode: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", want, got)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: X0, Rn: X1, Imm: 4096},
		{Op: ADDI, Rd: X0, Rn: X1, Imm: -1},
		{Op: MOVZ, Rd: X0, Imm: 1 << 16},
		{Op: MOVZ, Rd: X0, Imm: 1, Shift: 4},
		{Op: LDR, Rd: X0, Rn: X1, Imm: 5000, Size: 8},
		{Op: B, Off: 1 << 23},
		{Op: BCOND, Off: 1 << 18},
		{Op: SVC, Imm: 1 << 16},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Fatalf("expected range error for %+v", c)
		}
	}
}

func TestDecodeBadOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 24); err == nil {
		t.Fatal("bad opcode must error")
	}
}

func TestAssemblerBranches(t *testing.T) {
	a := NewAssembler()
	a.Label("entry").
		MovImm(X0, 0).
		Label("loop").
		AddI(X0, X0, 1).
		CmpI(X0, 10).
		BCondLabel(NE, "loop").
		Ret()
	code, syms, err := a.Assemble(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if syms["entry"] != 0x4000 {
		t.Fatalf("entry = %#x", syms["entry"])
	}
	// MovImm(0) is a single MOVZ; loop should be at +4.
	if syms["loop"] != 0x4004 {
		t.Fatalf("loop = %#x", syms["loop"])
	}
	// The BCOND is the 4th instruction (index 3).
	inst, err := DecodeAt(code, 3*InstBytes)
	if err != nil || inst.Op != BCOND {
		t.Fatalf("expected BCOND: %v %v", inst, err)
	}
	target := 0x4000 + int64(3*InstBytes) + int64(inst.Off)*InstBytes
	if uint64(target) != syms["loop"] {
		t.Fatalf("bcond target = %#x, want %#x", target, syms["loop"])
	}
}

func TestMovImmChunks(t *testing.T) {
	a := NewAssembler()
	a.MovImm(X3, 0x1234_5678_9ABC_DEF0)
	code, _, err := a.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4*InstBytes {
		t.Fatalf("full 64-bit constant should need 4 instructions, got %d", len(code)/InstBytes)
	}
	a = NewAssembler()
	a.MovImm(X3, 42)
	code, _, err = a.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != InstBytes {
		t.Fatalf("small constant should need 1 instruction, got %d", len(code)/InstBytes)
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.BLabel("nowhere")
	if _, _, err := a.Assemble(0); err == nil {
		t.Fatal("undefined label must error")
	}
}

func TestDisassemblySmoke(t *testing.T) {
	for _, i := range sampleInsts() {
		if i.String() == "" {
			t.Fatalf("empty disassembly for %+v", i)
		}
	}
	if XZR.String() != "xzr" || X7.String() != "x7" {
		t.Fatal("register names wrong")
	}
}
