package x86

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst generates a random well-formed instruction (fields populated
// per the opcode's layout class).
func randInst(rng *rand.Rand) Inst {
	ops := []Op{
		NOP, MOVri, MOVrr, LOAD, STORE, STOREi, LEA,
		ADDrr, ADDri, SUBrr, SUBri, IMULrr, IMULri, ANDrr, ANDri,
		ORrr, ORri, XORrr, XORri, SHLri, SHRri, SARri, SHLrr, SHRrr,
		UDIVrr, UREMrr, NEGr, NOTr,
		CMPrr, CMPri, TESTrr, TESTri,
		JMP, JCC, CALL, CALLr, RET, PUSH, POP,
		MFENCE, CMPXCHG, XADD, XCHGmr, SYSCALL,
	}
	op := ops[rng.Intn(len(ops))]
	inst := Inst{Op: op}
	reg := func() Reg { return Reg(rng.Intn(16)) }
	sizes := []uint8{1, 2, 4, 8}
	mem := func() Mem {
		m := Mem{Base: reg(), Index: RegNone, Scale: 1, Disp: int32(rng.Uint32())}
		if rng.Intn(2) == 0 {
			m.Index = reg()
			m.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
		}
		return m
	}
	switch op {
	case NOP, RET, MFENCE, SYSCALL:
	case NEGr, NOTr, PUSH, POP, CALLr:
		inst.Dst = reg()
	case MOVrr, ADDrr, SUBrr, IMULrr, ANDrr, ORrr, XORrr, CMPrr, TESTrr,
		UDIVrr, UREMrr, SHLrr, SHRrr:
		inst.Dst, inst.Src = reg(), reg()
	case MOVri:
		inst.Dst, inst.Imm = reg(), int64(rng.Uint64())
	case ADDri, SUBri, IMULri, ANDri, ORri, XORri, SHLri, SHRri, SARri,
		CMPri, TESTri:
		inst.Dst, inst.Imm = reg(), int64(int32(rng.Uint32()))
	case LOAD, LEA:
		inst.Dst, inst.Mem, inst.Size = reg(), mem(), sizes[rng.Intn(4)]
	case STORE, CMPXCHG, XADD, XCHGmr:
		inst.Src, inst.Mem, inst.Size = reg(), mem(), sizes[rng.Intn(4)]
	case STOREi:
		inst.Mem, inst.Imm, inst.Size = mem(), int64(int32(rng.Uint32())), sizes[rng.Intn(4)]
	case JMP, CALL:
		inst.Rel = int32(rng.Uint32())
	case JCC:
		inst.Cond, inst.Rel = Cond(rng.Intn(10)), int32(rng.Uint32())
	}
	if op == LEA {
		inst.Size = 0 // LEA carries no access size
	}
	return inst
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := randInst(rng)
		buf := Encode(nil, want)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// LEA encodes a size byte of 0; normalize.
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStreamDecode(t *testing.T) {
	// Any concatenation of valid instructions decodes back 1:1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		var insts []Inst
		var buf []byte
		for i := 0; i < n; i++ {
			in := randInst(rng)
			insts = append(insts, in)
			buf = Encode(buf, in)
		}
		off := 0
		for _, want := range insts {
			got, sz, err := Decode(buf[off:])
			if err != nil || got != want {
				return false
			}
			off += sz
		}
		return off == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
