package x86

import "testing"

// runProgram assembles and runs a program on the reference interpreter.
func runProgram(t *testing.T, build func(a *Assembler)) *Interp {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(1 << 17)
	copy(it.Mem[0x1000:], code)
	it.PC = 0x1000
	it.Regs[RSP] = 0x10000
	if err := it.Run(100000); err != nil {
		t.Fatal(err)
	}
	return it
}

func exit(a *Assembler) {
	a.MovRI(RAX, 93).Syscall()
}

func TestInterpALUChain(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RBX, 100).
			AddRI(RBX, 20). // 120
			SubRI(RBX, 5).  // 115
			MulRI(RBX, 3).  // 345
			MovRI(RCX, 345).
			CmpRR(RBX, RCX).
			MovRR(RDI, RBX)
		exit(a)
	})
	if !it.Halted || it.ExitCode != 345 {
		t.Fatalf("exit = %d halted=%v", it.ExitCode, it.Halted)
	}
}

func TestInterpShiftSpecCorners(t *testing.T) {
	// Shift counts ≥ 64 yield 0 (SAR: sign fill) — the guest ISA spec.
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RBX, 0x1234).
			ShlRI(RBX, 70). // → 0
			MovRI(RCX, -8).
			SarRI(RCX, 100). // → -1
			MovRI(RDX, 0x99).
			ShrRI(RDX, 64). // → 0
			MovRI(RDI, 0)
		exit(a)
	})
	if it.Regs[RBX] != 0 {
		t.Fatalf("shl≥64 = %#x", it.Regs[RBX])
	}
	if it.Regs[RCX] != ^uint64(0) {
		t.Fatalf("sar≥64 of negative = %#x", it.Regs[RCX])
	}
	if it.Regs[RDX] != 0 {
		t.Fatalf("shr≥64 = %#x", it.Regs[RDX])
	}
}

func TestInterpDivisionByZeroSpec(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RBX, 77).
			MovRI(RCX, 0).
			UDivRR(RBX, RCX). // → 0
			MovRI(RDX, 55).
			URemRR(RDX, RCX). // → 55 (unchanged)
			MovRI(RDI, 0)
		exit(a)
	})
	if it.Regs[RBX] != 0 || it.Regs[RDX] != 55 {
		t.Fatalf("div-by-zero: udiv=%d urem=%d", it.Regs[RBX], it.Regs[RDX])
	}
}

func TestInterpCallRetStack(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RBX, 5).
			Call("double").
			Call("double"). // 20
			MovRR(RDI, RBX)
		exit(a)
		a.Label("double").
			AddRR(RBX, RBX).
			Ret()
	})
	if it.ExitCode != 20 {
		t.Fatalf("exit = %d", it.ExitCode)
	}
	if it.Regs[RSP] != 0x10000 {
		t.Fatalf("stack not balanced: rsp = %#x", it.Regs[RSP])
	}
}

func TestInterpIndirectCall(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovSym(R10, "fn").
			CallR(R10).
			MovRR(RDI, RBX)
		exit(a)
		a.Label("fn").
			MovRI(RBX, 11).
			Ret()
	})
	if it.ExitCode != 11 {
		t.Fatalf("exit = %d", it.ExitCode)
	}
}

func TestInterpCmpXchgWidths(t *testing.T) {
	// 4-byte CMPXCHG compares at access width: RAX's high bits must not
	// defeat a match.
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RSI, 0x8000).
			MovRI(RBX, 5).
			Store(Mem0(RSI), RBX, 4).
			MovRI(RAX, int64(-4294967291)). // 0xFFFFFFFF00000005: low 32 bits match
			MovRI(RCX, 9).
			CmpXchg(Mem0(RSI), RCX, 4).
			Jcc(CondNE, "fail").
			Load(RDI, Mem0(RSI), 4)
		exit(a)
		a.Label("fail").
			MovRI(RDI, 111)
		exit(a)
	})
	if it.ExitCode != 9 {
		t.Fatalf("width-truncated cmpxchg: exit = %d", it.ExitCode)
	}
}

func TestInterpXaddXchg(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RSI, 0x8000).
			MovRI(RBX, 10).
			Store(Mem0(RSI), RBX, 8).
			MovRI(RCX, 7).
			XAdd(Mem0(RSI), RCX, 8). // mem 17, rcx 10
			MovRI(RDX, 100).
			Xchg(Mem0(RSI), RDX, 8). // mem 100, rdx 17
			Load(RDI, Mem0(RSI), 8). // 100
			AddRR(RDI, RCX).         // 110
			AddRR(RDI, RDX)          // 127
		exit(a)
	})
	if it.ExitCode != 127 {
		t.Fatalf("exit = %d", it.ExitCode)
	}
}

func TestInterpPushPopAndLEA(t *testing.T) {
	it := runProgram(t, func(a *Assembler) {
		a.MovRI(RBX, 42).
			Push(RBX).
			MovRI(RBX, 0).
			Pop(RCX).
			MovRI(RSI, 0x2000).
			MovRI(RDX, 3).
			Lea(RDI, MemIdx(RSI, RDX, 8, 8)). // 0x2000 + 24 + 8
			SubRI(RDI, 0x2020).
			AddRR(RDI, RCX) // 8 - 0x20 + 42 … compute directly below
		exit(a)
	})
	// lea = 0x2000+3*8+8 = 0x2020; minus 0x2020 = 0; +42 = 42… wait:
	// 0x2020-0x2020 = 0, +42 = 42? The SubRI used 0x2020 so result 42? No:
	// 0x2000+24+8 = 0x2020 exactly, so RDI = 0 + 42 = 42.
	if it.ExitCode != 42 {
		t.Fatalf("exit = %d", it.ExitCode)
	}
}

func TestInterpErrors(t *testing.T) {
	a := NewAssembler()
	a.MovRI(RSI, 1<<40).Load(RAX, Mem0(RSI), 8)
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(1 << 16)
	copy(it.Mem[0x1000:], code)
	it.PC = 0x1000
	if err := it.Run(100); err == nil {
		t.Fatal("out-of-bounds load must error")
	}

	// Unknown syscall.
	it2 := runnable(t, func(a *Assembler) { a.MovRI(RAX, 12345).Syscall() })
	if err := it2.Run(100); err == nil {
		t.Fatal("unknown syscall must error")
	}

	// Step budget.
	it3 := runnable(t, func(a *Assembler) { a.Label("spin").Jmp("spin") })
	if err := it3.Run(50); err == nil {
		t.Fatal("infinite loop must exhaust budget")
	}
}

func runnable(t *testing.T, build func(a *Assembler)) *Interp {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, _, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(1 << 16)
	copy(it.Mem[0x1000:], code)
	it.PC = 0x1000
	it.Regs[RSP] = 0x8000
	return it
}

func TestInterpCustomSyscallHook(t *testing.T) {
	it := runnable(t, func(a *Assembler) {
		a.MovRI(RAX, 777).Syscall().MovRI(RDI, 1).MovRI(RAX, 93).Syscall()
	})
	var sawNr uint64
	it.Syscall = func(i *Interp) error {
		sawNr = i.Regs[RAX]
		if sawNr == 93 {
			i.Halted = true
			i.ExitCode = i.Regs[RDI]
		}
		return nil
	}
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.ExitCode != 1 {
		t.Fatalf("exit = %d", it.ExitCode)
	}
}
