package x86

import "fmt"

// Assembler builds guest code with symbolic labels. Branch and call targets
// are label names resolved at Assemble time; every label also becomes a
// symbol in the returned symbol table, so function entry points fall out
// for free.
type Assembler struct {
	entries []entry
	labels  map[string]int // label -> entry index it precedes
	err     error
}

type entry struct {
	inst   Inst
	target string // non-empty for label-relative branches/calls
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Label defines a label at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("x86 asm: duplicate label %q", name)
	}
	a.labels[name] = len(a.entries)
	return a
}

// Raw appends an already-built instruction.
func (a *Assembler) Raw(inst Inst) *Assembler {
	a.entries = append(a.entries, entry{inst: inst})
	return a
}

func (a *Assembler) branch(inst Inst, target string) *Assembler {
	a.entries = append(a.entries, entry{inst: inst, target: target})
	return a
}

// --- Data movement -------------------------------------------------------

// MovRI emits dst = imm.
func (a *Assembler) MovRI(dst Reg, imm int64) *Assembler {
	return a.Raw(Inst{Op: MOVri, Dst: dst, Imm: imm})
}

// MovSym emits dst = address-of(label), resolved at assembly.
func (a *Assembler) MovSym(dst Reg, label string) *Assembler {
	return a.branch(Inst{Op: MOVri, Dst: dst}, label)
}

// MovRR emits dst = src.
func (a *Assembler) MovRR(dst, src Reg) *Assembler {
	return a.Raw(Inst{Op: MOVrr, Dst: dst, Src: src})
}

// Load emits dst = [mem] with the given access size.
func (a *Assembler) Load(dst Reg, mem Mem, size uint8) *Assembler {
	return a.Raw(Inst{Op: LOAD, Dst: dst, Mem: mem, Size: size})
}

// LoadQ emits a 64-bit load.
func (a *Assembler) LoadQ(dst Reg, mem Mem) *Assembler { return a.Load(dst, mem, 8) }

// Store emits [mem] = src with the given access size.
func (a *Assembler) Store(mem Mem, src Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: STORE, Src: src, Mem: mem, Size: size})
}

// StoreQ emits a 64-bit store.
func (a *Assembler) StoreQ(mem Mem, src Reg) *Assembler { return a.Store(mem, src, 8) }

// StoreI emits [mem] = imm (sign-extended to size).
func (a *Assembler) StoreI(mem Mem, imm int32, size uint8) *Assembler {
	return a.Raw(Inst{Op: STOREi, Mem: mem, Imm: int64(imm), Size: size})
}

// Lea emits dst = &mem.
func (a *Assembler) Lea(dst Reg, mem Mem) *Assembler {
	return a.Raw(Inst{Op: LEA, Dst: dst, Mem: mem})
}

// --- ALU ------------------------------------------------------------------

// AddRR emits dst += src.
func (a *Assembler) AddRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: ADDrr, Dst: dst, Src: src}) }

// AddRI emits dst += imm.
func (a *Assembler) AddRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: ADDri, Dst: dst, Imm: int64(imm)})
}

// SubRR emits dst -= src.
func (a *Assembler) SubRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: SUBrr, Dst: dst, Src: src}) }

// SubRI emits dst -= imm.
func (a *Assembler) SubRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: SUBri, Dst: dst, Imm: int64(imm)})
}

// MulRR emits dst *= src.
func (a *Assembler) MulRR(dst, src Reg) *Assembler {
	return a.Raw(Inst{Op: IMULrr, Dst: dst, Src: src})
}

// MulRI emits dst *= imm.
func (a *Assembler) MulRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: IMULri, Dst: dst, Imm: int64(imm)})
}

// UDivRR emits dst /= src (unsigned).
func (a *Assembler) UDivRR(dst, src Reg) *Assembler {
	return a.Raw(Inst{Op: UDIVrr, Dst: dst, Src: src})
}

// URemRR emits dst %= src (unsigned).
func (a *Assembler) URemRR(dst, src Reg) *Assembler {
	return a.Raw(Inst{Op: UREMrr, Dst: dst, Src: src})
}

// AndRR emits dst &= src.
func (a *Assembler) AndRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: ANDrr, Dst: dst, Src: src}) }

// AndRI emits dst &= imm.
func (a *Assembler) AndRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: ANDri, Dst: dst, Imm: int64(imm)})
}

// OrRR emits dst |= src.
func (a *Assembler) OrRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: ORrr, Dst: dst, Src: src}) }

// OrRI emits dst |= imm.
func (a *Assembler) OrRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: ORri, Dst: dst, Imm: int64(imm)})
}

// XorRR emits dst ^= src.
func (a *Assembler) XorRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: XORrr, Dst: dst, Src: src}) }

// XorRI emits dst ^= imm.
func (a *Assembler) XorRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: XORri, Dst: dst, Imm: int64(imm)})
}

// ShlRI emits dst <<= imm.
func (a *Assembler) ShlRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: SHLri, Dst: dst, Imm: int64(imm)})
}

// ShrRI emits dst >>= imm (logical).
func (a *Assembler) ShrRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: SHRri, Dst: dst, Imm: int64(imm)})
}

// SarRI emits dst >>= imm (arithmetic).
func (a *Assembler) SarRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: SARri, Dst: dst, Imm: int64(imm)})
}

// ShlRR emits dst <<= src.
func (a *Assembler) ShlRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: SHLrr, Dst: dst, Src: src}) }

// ShrRR emits dst >>= src (logical).
func (a *Assembler) ShrRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: SHRrr, Dst: dst, Src: src}) }

// Neg emits dst = -dst.
func (a *Assembler) Neg(dst Reg) *Assembler { return a.Raw(Inst{Op: NEGr, Dst: dst}) }

// Not emits dst = ^dst.
func (a *Assembler) Not(dst Reg) *Assembler { return a.Raw(Inst{Op: NOTr, Dst: dst}) }

// --- Flags and control flow ----------------------------------------------

// CmpRR compares dst with src, setting flags.
func (a *Assembler) CmpRR(dst, src Reg) *Assembler { return a.Raw(Inst{Op: CMPrr, Dst: dst, Src: src}) }

// CmpRI compares dst with imm, setting flags.
func (a *Assembler) CmpRI(dst Reg, imm int32) *Assembler {
	return a.Raw(Inst{Op: CMPri, Dst: dst, Imm: int64(imm)})
}

// TestRR ANDs dst with src, setting flags.
func (a *Assembler) TestRR(dst, src Reg) *Assembler {
	return a.Raw(Inst{Op: TESTrr, Dst: dst, Src: src})
}

// Jmp emits an unconditional branch to a label.
func (a *Assembler) Jmp(label string) *Assembler {
	return a.branch(Inst{Op: JMP}, label)
}

// Jcc emits a conditional branch to a label.
func (a *Assembler) Jcc(c Cond, label string) *Assembler {
	return a.branch(Inst{Op: JCC, Cond: c}, label)
}

// Call emits a call to a label (function symbol or PLT entry).
func (a *Assembler) Call(label string) *Assembler {
	return a.branch(Inst{Op: CALL}, label)
}

// CallR emits an indirect call through reg.
func (a *Assembler) CallR(reg Reg) *Assembler { return a.Raw(Inst{Op: CALLr, Dst: reg}) }

// Ret emits a return.
func (a *Assembler) Ret() *Assembler { return a.Raw(Inst{Op: RET}) }

// Push emits a stack push of reg.
func (a *Assembler) Push(reg Reg) *Assembler { return a.Raw(Inst{Op: PUSH, Dst: reg}) }

// Pop emits a stack pop into reg.
func (a *Assembler) Pop(reg Reg) *Assembler { return a.Raw(Inst{Op: POP, Dst: reg}) }

// --- Concurrency ----------------------------------------------------------

// MFence emits a full memory fence.
func (a *Assembler) MFence() *Assembler { return a.Raw(Inst{Op: MFENCE}) }

// CmpXchg emits LOCK CMPXCHG [mem], src (expected value in RAX).
func (a *Assembler) CmpXchg(mem Mem, src Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: CMPXCHG, Mem: mem, Src: src, Size: size})
}

// XAdd emits LOCK XADD [mem], src.
func (a *Assembler) XAdd(mem Mem, src Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: XADD, Mem: mem, Src: src, Size: size})
}

// Xchg emits an atomic exchange of [mem] and src.
func (a *Assembler) Xchg(mem Mem, src Reg, size uint8) *Assembler {
	return a.Raw(Inst{Op: XCHGmr, Mem: mem, Src: src, Size: size})
}

// Syscall emits a trap to the runtime.
func (a *Assembler) Syscall() *Assembler { return a.Raw(Inst{Op: SYSCALL}) }

// Nop emits a no-op.
func (a *Assembler) Nop() *Assembler { return a.Raw(Inst{Op: NOP}) }

// --- Assembly -------------------------------------------------------------

// Assemble lays the program out at base, resolves label references, and
// returns the encoded bytes plus the symbol table (label → absolute
// address).
func (a *Assembler) Assemble(base uint64) ([]byte, map[string]uint64, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	// First pass: addresses.
	addr := base
	addrs := make([]uint64, len(a.entries)+1)
	for i, e := range a.entries {
		addrs[i] = addr
		addr += uint64(EncodedLen(e.inst.Op))
	}
	addrs[len(a.entries)] = addr

	syms := make(map[string]uint64, len(a.labels))
	for name, idx := range a.labels {
		syms[name] = addrs[idx]
	}

	// Second pass: fixups and encoding.
	var code []byte
	for i, e := range a.entries {
		inst := e.inst
		if e.target != "" {
			tgt, ok := syms[e.target]
			if !ok {
				return nil, nil, fmt.Errorf("x86 asm: undefined label %q", e.target)
			}
			if inst.Op == MOVri {
				inst.Imm = int64(tgt)
			} else {
				end := addrs[i+1]
				inst.Rel = int32(int64(tgt) - int64(end))
			}
		}
		code = Encode(code, inst)
	}
	return code, syms, nil
}

// Mem0 builds a base-register-only memory operand.
func Mem0(base Reg) Mem { return Mem{Base: base, Index: RegNone, Scale: 1} }

// MemD builds a base+displacement memory operand.
func MemD(base Reg, disp int32) Mem { return Mem{Base: base, Index: RegNone, Scale: 1, Disp: disp} }

// MemIdx builds a base+index*scale+disp memory operand.
func MemIdx(base, index Reg, scale uint8, disp int32) Mem {
	return Mem{Base: base, Index: index, Scale: scale, Disp: disp}
}
