// Package x86 defines Risotto-Go's guest instruction set: an x86-64-like
// register machine with the same concurrency primitives as real x86 (plain
// MOV loads/stores that are TSO-ordered, MFENCE, and LOCK-prefixed RMWs),
// a binary encoding, an assembler with labels and symbols, a decoder and a
// disassembler.
//
// The encoding is a compact custom format rather than real x86 machine
// code (see DESIGN.md §1 for the substitution rationale): each instruction
// is an opcode byte followed by a fixed, per-opcode operand layout. What
// matters for the paper's claims — the memory-access/fence/RMW structure
// observed by the translator — is preserved exactly.
package x86

import "fmt"

// Reg names a general-purpose 64-bit register.
type Reg uint8

// General-purpose registers. RSP is the stack pointer by convention (PUSH,
// POP, CALL and RET use it); the rest carry no special meaning to the ISA.
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NumRegs is the register-file size.
	NumRegs = 16
	// RegNone marks an absent index register in a memory operand.
	RegNone Reg = 0xFF
)

var regNames = [NumRegs]string{
	"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	if r == RegNone {
		return "-"
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Cond is a branch condition evaluated against the flags set by the most
// recent CMP/TEST.
type Cond uint8

// Branch conditions; L/LE/G/GE are signed, B/BE/A/AE unsigned.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondB  // below (unsigned <)
	CondBE // below or equal
	CondA  // above (unsigned >)
	CondAE // above or equal
)

var condNames = []string{"e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// Mem is a memory operand: [Base + Index*Scale + Disp].
type Mem struct {
	Base  Reg
	Index Reg // RegNone when absent
	Scale uint8
	Disp  int32
}

func (m Mem) String() string {
	s := fmt.Sprintf("[%s", m.Base)
	if m.Index != RegNone {
		s += fmt.Sprintf("+%s*%d", m.Index, m.Scale)
	}
	if m.Disp != 0 {
		s += fmt.Sprintf("%+d", m.Disp)
	}
	return s + "]"
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes. Memory-access sizes are carried in Inst.Size
// (1, 2, 4 or 8 bytes); sub-8-byte loads zero-extend.
const (
	NOP Op = iota
	// MOVri: dst = imm64.
	MOVri
	// MOVrr: dst = src.
	MOVrr
	// LOAD: dst = mem (the paper's RMOV).
	LOAD
	// STORE: mem = src (the paper's WMOV).
	STORE
	// STOREi: mem = imm32 (sign-extended to the access size).
	STOREi
	// LEA: dst = effective address of mem.
	LEA

	// Register/immediate ALU. *rr forms: dst ∘= src; *ri: dst ∘= imm.
	ADDrr
	ADDri
	SUBrr
	SUBri
	IMULrr
	IMULri
	ANDrr
	ANDri
	ORrr
	ORri
	XORrr
	XORri
	SHLri
	SHRri
	SARri
	SHLrr
	SHRrr
	// UDIVrr: dst /= src (unsigned); UREMrr: dst %= src. These replace
	// x86's RDX:RAX division idiom with a two-operand form.
	UDIVrr
	UREMrr
	NEGr
	NOTr

	// Flag-setting comparisons.
	CMPrr
	CMPri
	TESTrr
	TESTri

	// Control flow. Branch displacements are relative to the end of the
	// instruction.
	JMP
	JCC
	CALL
	// CALLr: indirect call through a register.
	CALLr
	RET

	PUSH
	POP

	// MFENCE is x86's full fence.
	MFENCE
	// CMPXCHG is LOCK CMPXCHG mem, src: if RAX == [mem] then [mem] = src,
	// flags=EQ; else RAX = [mem], flags=NE. Always atomic (LOCK implied).
	CMPXCHG
	// XADD is LOCK XADD mem, src: tmp=[mem]; [mem]+=src; src=tmp.
	XADD
	// XCHGmr atomically swaps [mem] and src.
	XCHGmr

	// SYSCALL traps to the runtime; call number in RAX, args in
	// RDI, RSI, RDX (System-V-like).
	SYSCALL

	numOps
)

var opNames = [numOps]string{
	"nop", "mov", "mov", "mov", "mov", "mov", "lea",
	"add", "add", "sub", "sub", "imul", "imul", "and", "and",
	"or", "or", "xor", "xor", "shl", "shr", "sar", "shl", "shr",
	"udiv", "urem", "neg", "not",
	"cmp", "cmp", "test", "test",
	"jmp", "j", "call", "call", "ret",
	"push", "pop",
	"mfence", "lock cmpxchg", "lock xadd", "xchg",
	"syscall",
}

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Dst  Reg
	Src  Reg
	Imm  int64
	Mem  Mem
	Size uint8 // memory access size: 1, 2, 4, 8
	Cond Cond
	// Rel is the branch displacement from the end of this instruction.
	Rel int32
}

// String disassembles the instruction (branch targets shown as relative
// displacements).
func (i Inst) String() string {
	name := "?"
	if int(i.Op) < len(opNames) {
		name = opNames[i.Op]
	}
	switch i.Op {
	case NOP, RET, MFENCE, SYSCALL:
		return name
	case MOVri:
		return fmt.Sprintf("%s %s, %d", name, i.Dst, i.Imm)
	case MOVrr, ADDrr, SUBrr, IMULrr, ANDrr, ORrr, XORrr, CMPrr, TESTrr,
		UDIVrr, UREMrr, SHLrr, SHRrr:
		return fmt.Sprintf("%s %s, %s", name, i.Dst, i.Src)
	case ADDri, SUBri, IMULri, ANDri, ORri, XORri, SHLri, SHRri, SARri,
		CMPri, TESTri:
		return fmt.Sprintf("%s %s, %d", name, i.Dst, i.Imm)
	case NEGr, NOTr, PUSH, POP, CALLr:
		return fmt.Sprintf("%s %s", name, i.Dst)
	case LOAD:
		return fmt.Sprintf("%s %s, %s ; size=%d", name, i.Dst, i.Mem, i.Size)
	case LEA:
		return fmt.Sprintf("%s %s, %s", name, i.Dst, i.Mem)
	case STORE, CMPXCHG, XADD, XCHGmr:
		return fmt.Sprintf("%s %s, %s ; size=%d", name, i.Mem, i.Src, i.Size)
	case STOREi:
		return fmt.Sprintf("%s %s, %d ; size=%d", name, i.Mem, i.Imm, i.Size)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", name, i.Rel)
	case JCC:
		return fmt.Sprintf("%s%s %+d", name, i.Cond, i.Rel)
	}
	return name
}

// IsBranch reports whether the instruction ends a basic block.
func (i Inst) IsBranch() bool {
	switch i.Op {
	case JMP, JCC, CALL, CALLr, RET, SYSCALL:
		return true
	}
	return false
}
