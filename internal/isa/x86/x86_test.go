package x86

import (
	"math/rand"
	"testing"
)

func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: RET},
		{Op: MFENCE},
		{Op: SYSCALL},
		{Op: MOVri, Dst: RAX, Imm: -12345678901234},
		{Op: MOVrr, Dst: RBX, Src: RCX},
		{Op: ADDrr, Dst: R8, Src: R15},
		{Op: ADDri, Dst: RDX, Imm: -42},
		{Op: SHLri, Dst: RSI, Imm: 63},
		{Op: UDIVrr, Dst: RAX, Src: RBX},
		{Op: NEGr, Dst: R9},
		{Op: PUSH, Dst: RBP},
		{Op: POP, Dst: RBP},
		{Op: CALLr, Dst: R10},
		{Op: CMPri, Dst: RCX, Imm: 100},
		{Op: TESTrr, Dst: RAX, Src: RAX},
		{Op: LOAD, Dst: RAX, Mem: Mem{Base: RBX, Index: RCX, Scale: 8, Disp: -16}, Size: 8},
		{Op: LOAD, Dst: RDX, Mem: Mem{Base: RSI, Index: RegNone, Scale: 1, Disp: 4}, Size: 1},
		{Op: STORE, Src: RDI, Mem: Mem{Base: RSP, Index: RegNone, Scale: 1, Disp: 8}, Size: 4},
		{Op: STOREi, Mem: Mem{Base: R11, Index: R12, Scale: 4, Disp: 0}, Imm: -7, Size: 8},
		{Op: LEA, Dst: R13, Mem: Mem{Base: R14, Index: R15, Scale: 2, Disp: 1024}},
		{Op: JMP, Rel: -1000},
		{Op: JCC, Cond: CondNE, Rel: 2048},
		{Op: CALL, Rel: 500},
		{Op: CMPXCHG, Src: RBX, Mem: Mem{Base: RDI, Index: RegNone, Scale: 1}, Size: 8},
		{Op: XADD, Src: RCX, Mem: Mem{Base: RSI, Index: RegNone, Scale: 1}, Size: 4},
		{Op: XCHGmr, Src: RDX, Mem: Mem{Base: RBP, Index: RegNone, Scale: 1, Disp: -8}, Size: 8},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, want := range sampleInsts() {
		buf := Encode(nil, want)
		if len(buf) != EncodedLen(want.Op) {
			t.Fatalf("%v: encoded %d bytes, EncodedLen says %d", want, len(buf), EncodedLen(want.Op))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: decode consumed %d of %d", want, n, len(buf))
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", want, got)
		}
	}
}

func TestDecodeStream(t *testing.T) {
	insts := sampleInsts()
	var buf []byte
	for _, i := range insts {
		buf = Encode(buf, i)
	}
	off := 0
	for k, want := range insts {
		got, n, err := Decode(buf[off:])
		if err != nil {
			t.Fatalf("inst %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("inst %d mismatch: want %+v got %+v", k, want, got)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("stream not fully consumed: %d of %d", off, len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer must error")
	}
	if _, _, err := Decode([]byte{0xFE}); err == nil {
		t.Fatal("bad opcode must error")
	}
	if _, _, err := Decode([]byte{byte(MOVri), 0}); err == nil {
		t.Fatal("truncated instruction must error")
	}
}

func TestAssemblerLabels(t *testing.T) {
	a := NewAssembler()
	a.Label("start").
		MovRI(RAX, 0).
		Label("loop").
		AddRI(RAX, 1).
		CmpRI(RAX, 10).
		Jcc(CondNE, "loop").
		Ret()
	code, syms, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if syms["start"] != 0x1000 {
		t.Fatalf("start = %#x", syms["start"])
	}
	wantLoop := uint64(0x1000 + EncodedLen(MOVri))
	if syms["loop"] != wantLoop {
		t.Fatalf("loop = %#x, want %#x", syms["loop"], wantLoop)
	}
	// Decode the Jcc and verify the displacement lands on "loop".
	off := EncodedLen(MOVri) + EncodedLen(ADDri) + EncodedLen(CMPri)
	inst, n, err := Decode(code[off:])
	if err != nil || inst.Op != JCC {
		t.Fatalf("expected JCC at %d: %v %v", off, inst, err)
	}
	end := uint64(0x1000 + off + n)
	if end+uint64(inst.Rel) != wantLoop { // Rel is negative here
		t.Fatalf("jcc target = %#x, want %#x", end+uint64(inst.Rel), wantLoop)
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.Jmp("nowhere")
	if _, _, err := a.Assemble(0); err == nil {
		t.Fatal("undefined label must error")
	}
	a = NewAssembler()
	a.Label("x").Label("x")
	if _, _, err := a.Assemble(0); err == nil {
		t.Fatal("duplicate label must error")
	}
}

func TestEncodedLenConsistency(t *testing.T) {
	// Every opcode's declared length matches its encoding.
	rng := rand.New(rand.NewSource(1))
	for op := Op(0); op < numOps; op++ {
		inst := Inst{Op: op, Dst: Reg(rng.Intn(16)), Src: Reg(rng.Intn(16)),
			Mem: Mem{Base: RAX, Index: RegNone, Scale: 1}, Size: 8}
		buf := Encode(nil, inst)
		if len(buf) != EncodedLen(op) {
			t.Fatalf("op %d: len %d vs declared %d", op, len(buf), EncodedLen(op))
		}
	}
}

func TestStrings(t *testing.T) {
	// Smoke-test the disassembler renders every sample without panicking.
	for _, i := range sampleInsts() {
		if s := i.String(); s == "" {
			t.Fatalf("empty disassembly for %+v", i)
		}
	}
	if RAX.String() != "rax" || RegNone.String() != "-" {
		t.Fatal("register names wrong")
	}
	if CondEQ.String() != "e" {
		t.Fatal("cond names wrong")
	}
}
