package x86

import (
	"encoding/binary"
	"fmt"
)

// Operand-layout classes. Every opcode belongs to exactly one class, which
// fixes its encoded length and field order.
type layout uint8

const (
	layNone layout = iota // [op]
	layR                  // [op][reg]
	layRR                 // [op][dst<<4|src]
	layRI64               // [op][reg][imm64]
	layRI32               // [op][reg][imm32]
	layMem                // [op][reg][base][index][scale][size][disp32]
	layMemI               // [op][base][index][scale][size][disp32][imm32]
	layRel                // [op][rel32]
	layCC                 // [op][cond][rel32]
)

var layoutOf = [numOps]layout{
	NOP: layNone, RET: layNone, MFENCE: layNone, SYSCALL: layNone,
	NEGr: layR, NOTr: layR, PUSH: layR, POP: layR, CALLr: layR,
	MOVrr: layRR, ADDrr: layRR, SUBrr: layRR, IMULrr: layRR, ANDrr: layRR,
	ORrr: layRR, XORrr: layRR, CMPrr: layRR, TESTrr: layRR,
	UDIVrr: layRR, UREMrr: layRR, SHLrr: layRR, SHRrr: layRR,
	MOVri: layRI64,
	ADDri: layRI32, SUBri: layRI32, IMULri: layRI32, ANDri: layRI32,
	ORri: layRI32, XORri: layRI32, SHLri: layRI32, SHRri: layRI32,
	SARri: layRI32, CMPri: layRI32, TESTri: layRI32,
	LOAD: layMem, STORE: layMem, LEA: layMem, CMPXCHG: layMem,
	XADD: layMem, XCHGmr: layMem,
	STOREi: layMemI,
	JMP:    layRel, CALL: layRel,
	JCC: layCC,
}

var layoutLen = map[layout]int{
	layNone: 1, layR: 2, layRR: 2, layRI64: 10, layRI32: 6,
	layMem: 10, layMemI: 13, layRel: 5, layCC: 6,
}

// EncodedLen returns the encoded byte length of instructions with opcode op.
func EncodedLen(op Op) int {
	return layoutLen[layoutOf[op]]
}

// Encode appends the binary encoding of inst to buf and returns the result.
func Encode(buf []byte, inst Inst) []byte {
	buf = append(buf, byte(inst.Op))
	switch layoutOf[inst.Op] {
	case layNone:
	case layR:
		buf = append(buf, byte(inst.Dst))
	case layRR:
		buf = append(buf, byte(inst.Dst)<<4|byte(inst.Src)&0x0F)
	case layRI64:
		buf = append(buf, byte(inst.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(inst.Imm))
	case layRI32:
		buf = append(buf, byte(inst.Dst))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(inst.Imm)))
	case layMem:
		reg := inst.Dst
		if inst.Op == STORE || inst.Op == CMPXCHG || inst.Op == XADD || inst.Op == XCHGmr {
			reg = inst.Src
		}
		buf = append(buf, byte(reg), byte(inst.Mem.Base), byte(inst.Mem.Index),
			inst.Mem.Scale, inst.Size)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(inst.Mem.Disp))
	case layMemI:
		buf = append(buf, byte(inst.Mem.Base), byte(inst.Mem.Index),
			inst.Mem.Scale, inst.Size)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(inst.Mem.Disp))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(inst.Imm)))
	case layRel:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(inst.Rel))
	case layCC:
		buf = append(buf, byte(inst.Cond))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(inst.Rel))
	}
	return buf
}

// Decode reads one instruction from the front of buf, returning it and its
// encoded length.
func Decode(buf []byte) (Inst, int, error) {
	if len(buf) == 0 {
		return Inst{}, 0, fmt.Errorf("x86: empty buffer")
	}
	op := Op(buf[0])
	if op >= numOps {
		return Inst{}, 0, fmt.Errorf("x86: bad opcode %#x", buf[0])
	}
	lay := layoutOf[op]
	n := layoutLen[lay]
	if len(buf) < n {
		return Inst{}, 0, fmt.Errorf("x86: truncated %v: have %d bytes, need %d", op, len(buf), n)
	}
	inst := Inst{Op: op}
	switch lay {
	case layNone:
	case layR:
		inst.Dst = Reg(buf[1])
	case layRR:
		inst.Dst = Reg(buf[1] >> 4)
		inst.Src = Reg(buf[1] & 0x0F)
	case layRI64:
		inst.Dst = Reg(buf[1])
		inst.Imm = int64(binary.LittleEndian.Uint64(buf[2:]))
	case layRI32:
		inst.Dst = Reg(buf[1])
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(buf[2:])))
	case layMem:
		reg := Reg(buf[1])
		if op == STORE || op == CMPXCHG || op == XADD || op == XCHGmr {
			inst.Src = reg
		} else {
			inst.Dst = reg
		}
		inst.Mem = Mem{
			Base:  Reg(buf[2]),
			Index: Reg(buf[3]),
			Scale: buf[4],
			Disp:  int32(binary.LittleEndian.Uint32(buf[6:])),
		}
		inst.Size = buf[5]
	case layMemI:
		inst.Mem = Mem{
			Base:  Reg(buf[1]),
			Index: Reg(buf[2]),
			Scale: buf[3],
			Disp:  int32(binary.LittleEndian.Uint32(buf[5:])),
		}
		inst.Size = buf[4]
		inst.Imm = int64(int32(binary.LittleEndian.Uint32(buf[9:])))
	case layRel:
		inst.Rel = int32(binary.LittleEndian.Uint32(buf[1:]))
	case layCC:
		inst.Cond = Cond(buf[1])
		inst.Rel = int32(binary.LittleEndian.Uint32(buf[2:]))
	}
	return inst, n, nil
}
