package x86

import "fmt"

// Interp is a reference interpreter for the guest ISA — an independent,
// direct implementation of the instruction semantics, used to
// differential-test the whole DBT pipeline (frontend → optimizer →
// backend → machine). Where real x86 has undefined or quirky corners the
// guest ISA spec pins them down; the interpreter and the translator must
// agree on every one:
//
//   - sub-8-byte loads zero-extend; stores truncate;
//   - shift counts ≥ 64 yield 0 (SAR: the sign fill);
//   - UDIV by zero yields 0; UREM by zero leaves the dividend;
//   - flags are the (dst, src) operand pair of the last CMP/TEST,
//     evaluated by each Jcc (CMPXCHG sets them to (old, expected)).
type Interp struct {
	// Regs is the guest register file.
	Regs [NumRegs]uint64
	// PC is the guest instruction pointer.
	PC uint64
	// Mem is the flat guest memory.
	Mem []byte
	// Halted is set by the exit syscall.
	Halted bool
	// ExitCode is the exit syscall's argument.
	ExitCode uint64
	// Syscall handles SYSCALL instructions; nil means only exit(93) is
	// provided (RAX=93, RDI=code).
	Syscall func(it *Interp) error

	ccDst, ccSrc uint64
}

// NewInterp returns an interpreter over memSize bytes.
func NewInterp(memSize int) *Interp {
	return &Interp{Mem: make([]byte, memSize)}
}

func (it *Interp) load(addr uint64, size uint8) (uint64, error) {
	if addr+uint64(size) > uint64(len(it.Mem)) || addr+uint64(size) < addr {
		return 0, fmt.Errorf("x86 interp: load [%#x,+%d) out of bounds", addr, size)
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(it.Mem[addr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

func (it *Interp) store(addr uint64, size uint8, v uint64) error {
	if addr+uint64(size) > uint64(len(it.Mem)) || addr+uint64(size) < addr {
		return fmt.Errorf("x86 interp: store [%#x,+%d) out of bounds", addr, size)
	}
	for i := uint8(0); i < size; i++ {
		it.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// ea computes a memory operand's effective address.
func (it *Interp) ea(m Mem) uint64 {
	addr := it.Regs[m.Base]
	if m.Index != RegNone {
		addr += it.Regs[m.Index] * uint64(m.Scale)
	}
	return addr + uint64(int64(m.Disp))
}

func (it *Interp) cond(c Cond) bool {
	a, b := it.ccDst, it.ccSrc
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return int64(a) < int64(b)
	case CondLE:
		return int64(a) <= int64(b)
	case CondGT:
		return int64(a) > int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	case CondB:
		return a < b
	case CondBE:
		return a <= b
	case CondA:
		return a > b
	case CondAE:
		return a >= b
	}
	return false
}

func shl(v, by uint64) uint64 {
	if by >= 64 {
		return 0
	}
	return v << by
}

func shr(v, by uint64) uint64 {
	if by >= 64 {
		return 0
	}
	return v >> by
}

func sar(v uint64, by uint64) uint64 {
	if by >= 64 {
		return uint64(int64(v) >> 63)
	}
	return uint64(int64(v) >> by)
}

// Step decodes and executes one instruction at PC.
func (it *Interp) Step() error {
	if it.Halted {
		return nil
	}
	if it.PC >= uint64(len(it.Mem)) {
		return fmt.Errorf("x86 interp: pc %#x out of bounds", it.PC)
	}
	inst, size, err := Decode(it.Mem[it.PC:])
	if err != nil {
		return fmt.Errorf("x86 interp at %#x: %w", it.PC, err)
	}
	next := it.PC + uint64(size)
	r := &it.Regs

	switch inst.Op {
	case NOP, MFENCE:
		// MFENCE orders memory; the sequential interpreter is already
		// sequentially consistent.

	case MOVri:
		r[inst.Dst] = uint64(inst.Imm)
	case MOVrr:
		r[inst.Dst] = r[inst.Src]
	case LOAD:
		v, err := it.load(it.ea(inst.Mem), inst.Size)
		if err != nil {
			return err
		}
		r[inst.Dst] = v
	case STORE:
		if err := it.store(it.ea(inst.Mem), inst.Size, r[inst.Src]); err != nil {
			return err
		}
	case STOREi:
		if err := it.store(it.ea(inst.Mem), inst.Size, uint64(inst.Imm)); err != nil {
			return err
		}
	case LEA:
		r[inst.Dst] = it.ea(inst.Mem)

	case ADDrr:
		r[inst.Dst] += r[inst.Src]
	case ADDri:
		r[inst.Dst] += uint64(inst.Imm)
	case SUBrr:
		r[inst.Dst] -= r[inst.Src]
	case SUBri:
		r[inst.Dst] -= uint64(inst.Imm)
	case IMULrr:
		r[inst.Dst] *= r[inst.Src]
	case IMULri:
		r[inst.Dst] *= uint64(inst.Imm)
	case ANDrr:
		r[inst.Dst] &= r[inst.Src]
	case ANDri:
		r[inst.Dst] &= uint64(inst.Imm)
	case ORrr:
		r[inst.Dst] |= r[inst.Src]
	case ORri:
		r[inst.Dst] |= uint64(inst.Imm)
	case XORrr:
		r[inst.Dst] ^= r[inst.Src]
	case XORri:
		r[inst.Dst] ^= uint64(inst.Imm)
	case SHLri:
		r[inst.Dst] = shl(r[inst.Dst], uint64(inst.Imm))
	case SHLrr:
		r[inst.Dst] = shl(r[inst.Dst], r[inst.Src])
	case SHRri:
		r[inst.Dst] = shr(r[inst.Dst], uint64(inst.Imm))
	case SHRrr:
		r[inst.Dst] = shr(r[inst.Dst], r[inst.Src])
	case SARri:
		r[inst.Dst] = sar(r[inst.Dst], uint64(inst.Imm))
	case UDIVrr:
		if d := r[inst.Src]; d != 0 {
			r[inst.Dst] /= d
		} else {
			r[inst.Dst] = 0
		}
	case UREMrr:
		if d := r[inst.Src]; d != 0 {
			r[inst.Dst] %= d
		}
	case NEGr:
		r[inst.Dst] = -r[inst.Dst]
	case NOTr:
		r[inst.Dst] = ^r[inst.Dst]

	case CMPrr:
		it.ccDst, it.ccSrc = r[inst.Dst], r[inst.Src]
	case CMPri:
		it.ccDst, it.ccSrc = r[inst.Dst], uint64(inst.Imm)
	case TESTrr:
		it.ccDst, it.ccSrc = r[inst.Dst]&r[inst.Src], 0
	case TESTri:
		it.ccDst, it.ccSrc = r[inst.Dst]&uint64(inst.Imm), 0

	case JMP:
		next = uint64(int64(next) + int64(inst.Rel))
	case JCC:
		if it.cond(inst.Cond) {
			next = uint64(int64(next) + int64(inst.Rel))
		}
	case CALL:
		r[RSP] -= 8
		if err := it.store(r[RSP], 8, next); err != nil {
			return err
		}
		next = uint64(int64(next) + int64(inst.Rel))
	case CALLr:
		target := r[inst.Dst]
		r[RSP] -= 8
		if err := it.store(r[RSP], 8, next); err != nil {
			return err
		}
		next = target
	case RET:
		ret, err := it.load(r[RSP], 8)
		if err != nil {
			return err
		}
		r[RSP] += 8
		next = ret
	case PUSH:
		v := r[inst.Dst] // pre-decrement value, incl. PUSH RSP
		r[RSP] -= 8
		if err := it.store(r[RSP], 8, v); err != nil {
			return err
		}
	case POP:
		v, err := it.load(r[RSP], 8)
		if err != nil {
			return err
		}
		r[RSP] += 8
		r[inst.Dst] = v

	case CMPXCHG:
		addr := it.ea(inst.Mem)
		old, err := it.load(addr, inst.Size)
		if err != nil {
			return err
		}
		expected := r[RAX]
		if inst.Size < 8 {
			expected &= 1<<(8*inst.Size) - 1
		}
		if old == expected {
			if err := it.store(addr, inst.Size, r[inst.Src]); err != nil {
				return err
			}
		}
		it.ccDst, it.ccSrc = old, expected
		r[RAX] = old
	case XADD:
		addr := it.ea(inst.Mem)
		old, err := it.load(addr, inst.Size)
		if err != nil {
			return err
		}
		if err := it.store(addr, inst.Size, old+r[inst.Src]); err != nil {
			return err
		}
		r[inst.Src] = old
	case XCHGmr:
		addr := it.ea(inst.Mem)
		old, err := it.load(addr, inst.Size)
		if err != nil {
			return err
		}
		if err := it.store(addr, inst.Size, r[inst.Src]); err != nil {
			return err
		}
		r[inst.Src] = old

	case SYSCALL:
		it.PC = next
		if it.Syscall != nil {
			return it.Syscall(it)
		}
		if r[RAX] == 93 {
			it.ExitCode = r[RDI]
			it.Halted = true
			return nil
		}
		return fmt.Errorf("x86 interp: unhandled syscall %d", r[RAX])

	default:
		return fmt.Errorf("x86 interp: unimplemented op %v", inst.Op)
	}
	it.PC = next
	return nil
}

// Run executes until halt or maxSteps.
func (it *Interp) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if it.Halted {
			return nil
		}
		if err := it.Step(); err != nil {
			return err
		}
	}
	return fmt.Errorf("x86 interp: step budget %d exhausted at pc=%#x", maxSteps, it.PC)
}
