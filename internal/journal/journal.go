// Package journal is the newline-delimited-JSON discipline shared by the
// campaign results files (internal/campaign) and the daemon's persistent
// translation cache (internal/transcache): a Writer that flushes after
// every record so a killed process loses at most the line being written,
// and a Scan that tolerates exactly that torn final line when the file is
// reopened. Callers keep their own line semantics (headers, checksums,
// resume keys); this package owns only the framing.
package journal

import (
	"bufio"
	"encoding/json"
	"io"
)

// Writer writes newline-delimited JSON through a buffered writer, flushing
// after every record so a killed producer loses at most the line being
// written (Scan drops the torn fragment on reopen).
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer appending records to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one record and flushes it through to the underlying
// writer.
func (w *Writer) Encode(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Scan invokes fn for every complete (newline-terminated) line of r in
// order, skipping empty lines, and returns the byte length of the accepted
// prefix — everything up to and including the last accepted line. A
// reopening producer truncates the file to that length before appending,
// so a torn fragment is physically removed rather than welded onto the
// next record.
//
// The tolerance rules mirror a process killed mid-append:
//
//   - A final fragment with no trailing newline (the torn line of a killed
//     Writer) is dropped silently and excluded from the prefix.
//   - fn rejecting the final complete line (returning an error) likewise
//     drops it: a flush-per-record file can only end in a malformed line
//     through a tear at a lower layer.
//   - fn rejecting any earlier line aborts the scan with fn's error — a
//     malformed line with records after it is real corruption. Callers
//     that prefer to skip such lines (the translation cache, whose
//     checksums make every entry independently verifiable) handle the
//     malformed line inside fn and return nil.
func Scan(r io.Reader, fn func(line []byte) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var valid int64
	var pendingErr error
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF {
			// Any unterminated fragment is a torn tail: drop it. A pending
			// rejection was on what turned out to be the final complete
			// line: drop that too.
			return valid, nil
		}
		if rerr != nil {
			return valid, rerr
		}
		if pendingErr != nil {
			// The rejected line was not the last one — a real corruption.
			return valid, pendingErr
		}
		body := line[:len(line)-1]
		if len(body) > 0 && body[len(body)-1] == '\r' {
			body = body[:len(body)-1]
		}
		if len(body) == 0 {
			valid += int64(len(line))
			continue
		}
		if err := fn(body); err != nil {
			pendingErr = err
			continue
		}
		valid += int64(len(line))
	}
}
