package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []rec{{1, "a"}, {2, "b"}, {3, "c"}}
	for _, r := range want {
		if err := w.Encode(r); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	total := int64(buf.Len())
	var got []rec
	valid, err := Scan(&buf, func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if valid != total {
		t.Fatalf("valid prefix %d, want whole file %d", valid, total)
	}
}

func TestEncodeFlushesEachRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Encode(rec{1, "a"}); err != nil {
		t.Fatal(err)
	}
	// Without an explicit Flush call the record must already be in buf.
	if buf.Len() == 0 {
		t.Fatal("Encode did not flush the record through")
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatal("record not newline-terminated")
	}
}

func TestScanDropsTornTail(t *testing.T) {
	data := "{\"n\":1,\"s\":\"a\"}\n{\"n\":2,\"s\":\"b\"}\n{\"n\":3,\"s\":"
	var got []rec
	valid, err := Scan(strings.NewReader(data), func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (torn tail dropped)", len(got))
	}
	wantValid := int64(len("{\"n\":1,\"s\":\"a\"}\n{\"n\":2,\"s\":\"b\"}\n"))
	if valid != wantValid {
		t.Fatalf("valid prefix %d, want %d", valid, wantValid)
	}
}

func TestScanDropsRejectedFinalLine(t *testing.T) {
	// The final complete line is malformed — treated as a lower-layer
	// tear and dropped, not an error.
	data := "{\"n\":1,\"s\":\"a\"}\ngarbage-not-json\n"
	var got []rec
	valid, err := Scan(strings.NewReader(data), func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
	wantValid := int64(len("{\"n\":1,\"s\":\"a\"}\n"))
	if valid != wantValid {
		t.Fatalf("valid prefix %d, want %d", valid, wantValid)
	}
}

func TestScanMidStreamErrorAborts(t *testing.T) {
	sentinel := errors.New("bad line")
	data := "{\"n\":1}\ngarbage\n{\"n\":3}\n"
	var calls int
	_, err := Scan(strings.NewReader(data), func(line []byte) error {
		calls++
		if !json.Valid(line) {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Scan err = %v, want sentinel", err)
	}
}

func TestScanEmptyLines(t *testing.T) {
	data := "{\"n\":1,\"s\":\"a\"}\n\n\r\n{\"n\":2,\"s\":\"b\"}\n"
	var got []rec
	valid, err := Scan(strings.NewReader(data), func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid prefix %d, want %d", valid, len(data))
	}
}

func TestScanCRLF(t *testing.T) {
	data := "{\"n\":7,\"s\":\"x\"}\r\n"
	var got []rec
	_, err := Scan(strings.NewReader(data), func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 1 || got[0].N != 7 {
		t.Fatalf("got %+v, want one record n=7", got)
	}
}

func TestScanEmptyInput(t *testing.T) {
	valid, err := Scan(strings.NewReader(""), func([]byte) error {
		t.Fatal("fn called on empty input")
		return nil
	})
	if err != nil || valid != 0 {
		t.Fatalf("Scan empty = (%d, %v), want (0, nil)", valid, err)
	}
}

func TestScanTruncateAppendRoundTrip(t *testing.T) {
	// Simulate the resume discipline: write records, tear the tail,
	// truncate to the valid prefix, append more, re-scan.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Encode(rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	torn := append([]byte(nil), buf.Bytes()...)
	torn = append(torn, []byte("{\"n\":99")...) // torn append, no newline

	count := func(b []byte) (int, int64) {
		n := 0
		valid, err := Scan(bytes.NewReader(b), func(line []byte) error {
			var r rec
			if err := json.Unmarshal(line, &r); err != nil {
				return err
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, valid
	}

	n, valid := count(torn)
	if n != 3 {
		t.Fatalf("torn scan: %d records, want 3", n)
	}
	healed := torn[:valid]
	var buf2 bytes.Buffer
	buf2.Write(healed)
	w2 := NewWriter(&buf2)
	if err := w2.Encode(rec{N: 3}); err != nil {
		t.Fatal(err)
	}
	n, _ = count(buf2.Bytes())
	if n != 4 {
		t.Fatalf("after heal+append: %d records, want 4", n)
	}
}
