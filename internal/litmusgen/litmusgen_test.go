package litmusgen

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/models/armcats"
	"repro/internal/models/tcgmm"
	"repro/internal/models/x86tso"
)

var (
	update = flag.Bool("update", false, "rewrite testdata/gencorpus.golden")
	refreshFuzz = flag.Bool("refresh-fuzz", false,
		"rewrite the generated seed corpus under internal/litmus/testdata/fuzz/FuzzParse")
	diffSeed = flag.Int64("diffseed", 1, "seed for the randomized differential test")
)

// collect materializes a generation run for tests that want the full slice.
func collect(cfg Config) []*Test {
	var out []*Test
	Stream(cfg, func(t *Test) bool {
		out = append(out, t)
		return true
	})
	return out
}

// roundTripConfig spans every shape family at both levels with enough
// per-shape budget that every decoration kind (each fence, each dependency,
// each event attribute, RMWs) appears somewhere in the stream.
func roundTripConfig() Config {
	return Config{Seed: 1, MaxThreads: 3, MaxPerShape: 48}
}

// TestRoundTrip pins Render as the exact inverse of litmus.Parse on the
// whole generated space: parse(render(p)) must reproduce p op-for-op and
// fingerprint-for-fingerprint for every emitted test.
func TestRoundTrip(t *testing.T) {
	tests := collect(roundTripConfig())
	if len(tests) == 0 {
		t.Fatal("generator emitted nothing")
	}
	families := make(map[string]bool)
	for _, gt := range tests {
		families[strings.SplitN(gt.Prog.Name, ".", 3)[1]] = true
		src := Render(gt.Prog)
		pt, err := litmus.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse(render(p)): %v\n%s", gt.Prog.Name, err, src)
		}
		if !reflect.DeepEqual(pt.Program, gt.Prog) {
			t.Fatalf("%s: parse(render(p)) ≠ p\nrendered:\n%s\ngot  %#v\nwant %#v",
				gt.Prog.Name, src, pt.Program, gt.Prog)
		}
		if fp := pt.Program.Fingerprint(); fp != gt.Fingerprint {
			t.Fatalf("%s: fingerprint drifted through the round trip:\n got %s\nwant %s",
				gt.Prog.Name, fp, gt.Fingerprint)
		}
	}
	// The property above is only as strong as the stream's coverage: demand
	// every family actually appeared.
	for _, fam := range []string{"mp", "sb", "lb", "2+2w", "s", "r", "co"} {
		covered := false
		for f := range families {
			if strings.HasPrefix(f, fam) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("round-trip stream never produced family %q (saw %v)", fam, families)
		}
	}
}

// goldenConfig is the pinned corpus of the determinism test. Do not change
// it casually: the golden manifest encodes the exact emission order.
func goldenConfig() Config {
	return Config{Seed: 7, MaxThreads: 3, MaxPerShape: 24}
}

const goldenPath = "testdata/gencorpus.golden"

// manifest renders the deterministic one-line-per-test summary of a run:
// index, fingerprint hash, level and name, in emission order.
func manifest(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# litmusgen corpus manifest — config %s\n", cfg.Hash())
	fmt.Fprintf(&b, "# Regenerate: go test ./internal/litmusgen -run TestGoldenManifest -update\n")
	st := Stream(cfg, func(t *Test) bool {
		fmt.Fprintf(&b, "%05d %s %s %s\n", t.Idx, t.FPHash(), t.Level, t.Prog.Name)
		return true
	})
	fmt.Fprintf(&b, "# enumerated %d, duplicates %d, emitted %d\n",
		st.Enumerated, st.Duplicates, st.Emitted)
	return b.String()
}

// TestGoldenManifest pins byte-identical determinism: a fixed seed and
// config must reproduce the exact same test sequence — names, order and
// fingerprints — across refactors of the generator. Run with -update to
// bless intended generator changes.
func TestGoldenManifest(t *testing.T) {
	got := manifest(goldenConfig())
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden manifest (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("generated corpus diverges from %s (byte-identical determinism broken);\n"+
			"re-run with -update only if the generator change is intentional", goldenPath)
	}
	// Same config, second run, same process: the stream must not carry
	// hidden state between runs.
	if again := manifest(goldenConfig()); again != got {
		t.Fatal("two Stream runs with the same config differ within one process")
	}
}

// TestDifferentialPreparedVsPlain draws K random generated tests and checks
// that the prepared-checker enumeration (litmus.Enumerate) computes the
// same outcome set as a from-scratch Model.Consistent evaluation of every
// candidate, under all three models. The corpus classics already pin this
// (litmus's own differential test); generated shapes reach decoration
// corners the classics don't.
func TestDifferentialPreparedVsPlain(t *testing.T) {
	pool := collect(Config{Seed: 3, MaxThreads: 3, MaxPerShape: 64})
	if len(pool) == 0 {
		t.Fatal("generator emitted nothing")
	}
	const k = 48
	rng := rand.New(rand.NewSource(*diffSeed))
	for i := 0; i < k; i++ {
		gt := pool[rng.Intn(len(pool))]
		for _, m := range []memmodel.Model{x86tso.New(), tcgmm.New(), armcats.New()} {
			plain := make(litmus.OutcomeSet)
			litmus.EnumerateCandidates(gt.Prog, func(c *litmus.Candidate) bool {
				if m.Consistent(c.X) {
					plain[litmus.OutcomeOf(c)] = true
				}
				return true
			})
			prepared, err := litmus.Enumerate(gt.Prog, m,
				litmus.WithWorkers(1), litmus.WithCache(litmus.NewCache()))
			if err != nil {
				t.Fatalf("seed %d: %s under %s: %v", *diffSeed, gt.Prog.Name, m.Name(), err)
			}
			if !sameOutcomes(plain, prepared) {
				t.Errorf("seed %d: %s under %s: prepared checkers disagree with plain Consistent\n"+
					"plain    %v\nprepared %v\n%s",
					*diffSeed, gt.Prog.Name, m.Name(), plain.Sorted(), prepared.Sorted(),
					Render(gt.Prog))
			}
		}
	}
}

func sameOutcomes(a, b litmus.OutcomeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}

// fuzzCorpusDir is where go's fuzzer looks for FuzzParse seed inputs; the
// litmus package executes every file here during plain `go test` runs too.
const fuzzCorpusDir = "../litmus/testdata/fuzz/FuzzParse"

// fuzzCorpusSize bounds the generated seed files: enough to cover each
// shape family at both levels with varied decorations, small enough that
// the litmus unit tests replaying them stay fast.
const fuzzCorpusSize = 32

// TestRefreshFuzzCorpus regenerates the parser fuzzer's generated seed
// corpus when run with -refresh-fuzz; without the flag it verifies the
// committed seeds are exactly what the generator produces today, so the
// corpus cannot silently rot as the generator evolves.
func TestRefreshFuzzCorpus(t *testing.T) {
	seeds := make(map[string]string, fuzzCorpusSize)
	// Stride through a big spread of the space: one seed per shape family
	// per level first, then decoration-heavy variants, dedup'd by name.
	pool := collect(Config{Seed: 5, MaxThreads: 3, MaxPerShape: 96})
	stride := len(pool) / fuzzCorpusSize
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(pool) && len(seeds) < fuzzCorpusSize; i += stride {
		p := pool[i]
		seeds["gen-"+p.FPHash()] = "go test fuzz v1\nstring(" +
			strconv.Quote(Render(p.Prog)) + ")\n"
	}

	if *refreshFuzz {
		if err := os.MkdirAll(fuzzCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, err := filepath.Glob(filepath.Join(fuzzCorpusDir, "gen-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range old {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}
		for name, body := range seeds {
			if err := os.WriteFile(filepath.Join(fuzzCorpusDir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d seed files to %s", len(seeds), fuzzCorpusDir)
		return
	}

	for name, body := range seeds {
		path := filepath.Join(fuzzCorpusDir, name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing generated fuzz seed (run with -refresh-fuzz): %v", err)
		}
		if string(got) != body {
			t.Errorf("%s is stale (run with -refresh-fuzz)", path)
		}
	}
}
