package litmusgen

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// A shape proto is the undecorated skeleton of a relaxation cycle: per
// thread, an ordered list of plain accesses. Communication edges (rf, fr,
// co between threads) are implied by which locations the accesses share;
// the decoration pass then enumerates what sits on the po edges between
// consecutive accesses and on the accesses themselves.
type acc struct {
	write bool
	loc   int
	val   int64
}

type proto struct {
	// name identifies the instance ("mp2", "sb3", "corr", ...).
	name string
	// family is the Config.Shapes key that selects it.
	family string
	accs   [][]acc
}

// ShapeNames lists every cycle family the generator knows, in canonical
// order: the four N-thread ring families, the two fixed 2-thread shapes,
// and the coherence family.
func ShapeNames() []string {
	return []string{"mp", "sb", "lb", "2+2w", "s", "r", "co"}
}

// ValidShapes rejects unknown family names (for CLI flag validation).
func ValidShapes(names []string) error {
	known := make(map[string]bool)
	for _, n := range ShapeNames() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("litmusgen: unknown shape %q (known: %v)", n, ShapeNames())
		}
	}
	return nil
}

// protos expands the configured families into concrete shape instances, in
// deterministic order. Ring families get one instance per thread count in
// [MinThreads, MaxThreads]; thread counts are clamped to [2, 8].
func protos(cfg Config) []proto {
	lo, hi := cfg.MinThreads, cfg.MaxThreads
	if lo < 2 {
		lo = 2
	}
	if hi > 8 {
		hi = 8
	}
	var out []proto
	for _, fam := range cfg.Shapes {
		switch fam {
		case "mp", "sb", "lb", "2+2w":
			for n := lo; n <= hi; n++ {
				out = append(out, ringProto(fam, n))
			}
		case "s":
			out = append(out, proto{name: "s", family: "s", accs: [][]acc{
				{{write: true, loc: 0, val: 2}, {write: true, loc: 1, val: 1}},
				{{write: false, loc: 1}, {write: true, loc: 0, val: 1}},
			}})
		case "r":
			out = append(out, proto{name: "r", family: "r", accs: [][]acc{
				{{write: true, loc: 0, val: 1}, {write: true, loc: 1, val: 1}},
				{{write: true, loc: 1, val: 2}, {write: false, loc: 0}},
			}})
		case "co":
			out = append(out,
				proto{name: "corr", family: "co", accs: [][]acc{
					{{write: true, loc: 0, val: 1}},
					{{write: false, loc: 0}, {write: false, loc: 0}},
				}},
				proto{name: "coww", family: "co", accs: [][]acc{
					{{write: true, loc: 0, val: 1}, {write: true, loc: 0, val: 2}},
					{{write: false, loc: 0}, {write: false, loc: 0}},
				}},
				proto{name: "corw", family: "co", accs: [][]acc{
					{{write: false, loc: 0}, {write: true, loc: 0, val: 1}},
					{{write: true, loc: 0, val: 2}},
				}})
		}
	}
	return out
}

// ringProto builds the n-thread generalization of a classic 2-thread cycle.
func ringProto(fam string, n int) proto {
	p := proto{name: fmt.Sprintf("%s%d", fam, n), family: fam}
	p.accs = make([][]acc, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		switch fam {
		case "mp":
			// T0 publishes data then flag; middle threads relay the flag;
			// the last thread reads the flag then the data. n=2 is classic
			// message passing, n=3 is the ISA2 pattern.
			switch {
			case i == 0:
				p.accs[i] = []acc{{write: true, loc: 0, val: 1}, {write: true, loc: 1, val: 1}}
			case i == n-1:
				p.accs[i] = []acc{{write: false, loc: i}, {write: false, loc: 0}}
			default:
				p.accs[i] = []acc{{write: false, loc: i}, {write: true, loc: i + 1, val: 1}}
			}
		case "sb":
			// Each thread writes its own location then reads its neighbour's.
			p.accs[i] = []acc{{write: true, loc: i, val: 1}, {write: false, loc: next}}
		case "lb":
			// Each thread reads its own location then writes its neighbour's.
			p.accs[i] = []acc{{write: false, loc: i}, {write: true, loc: next, val: 1}}
		case "2+2w":
			// Each thread writes 2 to its own location and 1 to its
			// neighbour's: a pure-write coherence cycle.
			p.accs[i] = []acc{{write: true, loc: i, val: 2}, {write: true, loc: next, val: 1}}
		}
	}
	return p
}

// locName maps a location index to its canonical name.
func locName(i int) litmus.Loc {
	names := []litmus.Loc{"X", "Y", "Z", "U", "V", "W"}
	if i < len(names) {
		return names[i]
	}
	return litmus.Loc(fmt.Sprintf("L%d", i))
}

// ---- Decoration space ---------------------------------------------------

// Gap decorations sit on the po edge between two consecutive accesses of a
// thread: nothing, a fence (level-specific flavours), or a syntactic
// dependency from the nearest preceding read into the later access.
const (
	gapNone = iota
	gapFenceFull // MFENCE (x86) or DMB ISH (arm)
	gapFenceLD   // DMB ISHLD (arm only)
	gapFenceST   // DMB ISHST (arm only)
	gapDepAddr   // address dependency (loadidx/storeidx)
	gapDepData   // data dependency (storereg) — into writes only
	gapDepCtrl   // control dependency (always-true if over the read)
)

// Event decorations change how one access is emitted.
const (
	evPlain = iota
	evAcq   // acquire load (arm reads)
	evAcqPC // acquirePC load (arm reads)
	evRel   // release store (arm writes)
	evRMW   // the access becomes a CAS (locked CAS at x86, casal at arm)
)

func gapChoices(lvl Level) []int {
	if lvl == LevelArm {
		return []int{gapNone, gapFenceFull, gapFenceLD, gapFenceST, gapDepAddr, gapDepData, gapDepCtrl}
	}
	return []int{gapNone, gapFenceFull, gapDepAddr, gapDepData, gapDepCtrl}
}

func evChoices(lvl Level, write bool) []int {
	if lvl == LevelArm {
		if write {
			return []int{evPlain, evRel, evRMW}
		}
		return []int{evPlain, evAcq, evAcqPC, evRMW}
	}
	return []int{evPlain, evRMW}
}

// threadDecor is one thread's resolved decoration assignment: gaps[i] sits
// between access i and i+1, evs[j] decorates access j. Values are the gap*/
// ev* constants, not choice indices.
type threadDecor struct {
	gaps []int
	evs  []int
}

// enumerateDecors walks the decoration space of one proto at one level in a
// fixed deterministic order, yielding every valid assignment. When
// maxPerShape > 0 and the space is larger than ~4× the cap, enumeration
// strides through the linear index space so the visited subset spans the
// whole space instead of its first corner (the ×4 headroom absorbs
// validity filtering and downstream fingerprint dedup). Stops early when
// yield returns false.
func enumerateDecors(pr proto, lvl Level, maxPerShape int, yield func([]threadDecor) bool) {
	gc := gapChoices(lvl)

	// Flat mixed-radix slot list, thread-major: t0 gaps, t0 evs, t1 gaps, …
	type slot struct {
		thread  int
		isGap   bool
		idx     int
		choices []int
	}
	var slots []slot
	total := 1
	for t, accs := range pr.accs {
		for g := 0; g < len(accs)-1; g++ {
			slots = append(slots, slot{thread: t, isGap: true, idx: g, choices: gc})
			total *= len(gc)
		}
		for j, a := range accs {
			ec := evChoices(lvl, a.write)
			slots = append(slots, slot{thread: t, idx: j, choices: ec})
			total *= len(ec)
		}
	}

	stride := 1
	if maxPerShape > 0 && total > maxPerShape*4 {
		stride = total / (maxPerShape * 4)
	}

	d := make([]threadDecor, len(pr.accs))
	for t, accs := range pr.accs {
		d[t] = threadDecor{gaps: make([]int, len(accs)-1), evs: make([]int, len(accs))}
	}

	for i := 0; i < total; i += stride {
		rest := i
		for _, s := range slots {
			c := s.choices[rest%len(s.choices)]
			rest /= len(s.choices)
			if s.isGap {
				d[s.thread].gaps[s.idx] = c
			} else {
				d[s.thread].evs[s.idx] = c
			}
		}
		if !validDecor(pr, d) {
			continue
		}
		if !yield(d) {
			return
		}
	}
}

// validDecor filters decoration assignments that cannot be expressed:
// dependency gaps need a preceding read to depend on, data dependencies
// only target writes, and address/data dependencies cannot feed a CAS.
func validDecor(pr proto, d []threadDecor) bool {
	for t, accs := range pr.accs {
		for g, choice := range d[t].gaps {
			switch choice {
			case gapDepAddr, gapDepData, gapDepCtrl:
				hasRead := false
				for i := 0; i <= g; i++ {
					if !accs[i].write {
						hasRead = true
						break
					}
				}
				if !hasRead {
					return false
				}
				if choice == gapDepData && !accs[g+1].write {
					return false
				}
				if choice != gapDepCtrl && d[t].evs[g+1] == evRMW {
					return false
				}
			}
		}
	}
	return true
}

// ---- Program construction ----------------------------------------------

// build materializes one decorated proto as a litmus program. Register
// names are assigned per thread in read order (r0, r1, …); dependency
// decorations draw from the nearest preceding read's register. The
// program name encodes shape, level and the decoration index so campaign
// records stay greppable; structural identity is the Fingerprint.
func build(pr proto, lvl Level, d []threadDecor) (*litmus.Program, bool) {
	hasRMW := false
	p := &litmus.Program{Name: progName(pr, lvl, d)}
	for t, accs := range pr.accs {
		// regOf[j] is the register access j loads into (reads only).
		regOf := make([]litmus.Reg, len(accs))
		n := 0
		for j, a := range accs {
			if !a.write {
				regOf[j] = litmus.Reg(fmt.Sprintf("r%d", n))
				n++
			}
		}
		// prevReg(j) is the register of the nearest read before access j.
		prevReg := func(j int) litmus.Reg {
			for i := j - 1; i >= 0; i-- {
				if !accs[i].write {
					return regOf[i]
				}
			}
			return "" // unreachable: validDecor requires a preceding read
		}

		emit := func(j int) litmus.Op {
			a := accs[j]
			loc := locName(a.loc)
			gapBefore := gapNone
			if j > 0 {
				gapBefore = d[t].gaps[j-1]
			}
			ev := d[t].evs[j]
			if a.write {
				if ev == evRMW {
					hasRMW = true
					attr := litmus.Attr{Class: memmodel.RMWAmo}
					if lvl == LevelArm {
						attr.Acq, attr.Rel = true, true
					}
					return litmus.CAS{Loc: loc, Expect: 0, New: a.val, Attr: attr}
				}
				attr := litmus.Attr{Rel: ev == evRel}
				switch gapBefore {
				case gapDepData:
					return litmus.StoreReg{Loc: loc, Src: prevReg(j), Attr: attr}
				case gapDepAddr:
					return litmus.StoreIdx{Idx: prevReg(j), Loc0: loc, Loc1: loc, Val: a.val, Attr: attr}
				default:
					return litmus.Store{Loc: loc, Val: a.val, Attr: attr}
				}
			}
			if ev == evRMW {
				hasRMW = true
				attr := litmus.Attr{Class: memmodel.RMWAmo}
				if lvl == LevelArm {
					attr.Acq, attr.Rel = true, true
				}
				// An identity CAS: succeeds (writing the value back) when
				// the location holds 1, otherwise reads like a plain load.
				return litmus.CAS{Loc: loc, Expect: 1, New: 1, Dst: regOf[j], Attr: attr}
			}
			attr := litmus.Attr{Acq: ev == evAcq, AcqPC: ev == evAcqPC}
			if gapBefore == gapDepAddr {
				return litmus.LoadIdx{Dst: regOf[j], Idx: prevReg(j), Loc0: loc, Loc1: loc, Attr: attr}
			}
			return litmus.Load{Dst: regOf[j], Loc: loc, Attr: attr}
		}

		// rec builds accesses start.. into an op list; a control-dependency
		// gap wraps the remainder of the thread in an always-true if over
		// the dependency register (values are never negative).
		var rec func(start int, applyGap bool) []litmus.Op
		rec = func(start int, applyGap bool) []litmus.Op {
			var ops []litmus.Op
			for j := start; j < len(accs); j++ {
				if j > 0 && (j > start || applyGap) {
					switch d[t].gaps[j-1] {
					case gapFenceFull:
						k := memmodel.FenceMFENCE
						if lvl == LevelArm {
							k = memmodel.FenceDMBFF
						}
						ops = append(ops, litmus.Fence{K: k})
					case gapFenceLD:
						ops = append(ops, litmus.Fence{K: memmodel.FenceDMBLD})
					case gapFenceST:
						ops = append(ops, litmus.Fence{K: memmodel.FenceDMBST})
					case gapDepCtrl:
						return append(ops, litmus.If{
							Reg: prevReg(j), Eq: false, Val: -1,
							Body: rec(j, false),
						})
					}
				}
				ops = append(ops, emit(j))
			}
			return ops
		}
		p.Threads = append(p.Threads, rec(0, true))
	}
	return p, hasRMW
}

// progName encodes shape, level and decoration digits into a compact,
// deterministic test name.
func progName(pr proto, lvl Level, d []threadDecor) string {
	name := fmt.Sprintf("g.%s.%s", pr.name, lvl)
	for t := range d {
		name += fmt.Sprintf(".t%d", t)
		for _, g := range d[t].gaps {
			name += fmt.Sprintf("g%d", g)
		}
		for _, e := range d[t].evs {
			name += fmt.Sprintf("e%d", e)
		}
	}
	return name
}
