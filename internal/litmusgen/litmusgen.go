// Package litmusgen deterministically enumerates litmus tests from
// relaxation cycles, diy-style: a cycle shape (message passing, store
// buffering, load buffering, coherence chains, 2+2W, and their N-thread
// ring generalizations) fixes the communication edges between threads, and
// the generator then enumerates every placement of fences (MFENCE at the
// x86 level; DMB ISH/ISHLD/ISHST at the Arm level), RMWs, acquire/release
// attributes and address/data/control dependencies on the program-order
// edges and events of the cycle. Each combination becomes a
// litmus.Program; a structural-fingerprint dedup pass guarantees every
// emitted test is unique.
//
// The point of generating from cycles rather than curating examples is the
// one Chakraborty's architecture-to-architecture mapping work makes: a
// verified mapping must hold for *every* program shape, so the checks
// (Theorem-1 containment, operational soundness) should sweep the
// generated space, not the classics. internal/campaign streams this
// package's output through those checks at corpus scale.
//
// Generation is streaming and deterministic: Stream never materializes the
// corpus, the enumeration order is fixed, and the per-shape cap is applied
// with a stride over the decoration space so capped runs still sample the
// whole space rather than its first corner. The Seed only matters in
// Sample mode (probabilistic thinning) — two runs with equal Configs
// always emit the identical test sequence.
package litmusgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/litmus"
)

// Level selects the instruction level generated tests are written at.
type Level int

const (
	// LevelX86 generates x86-level tests: MFENCE fences, locked-CAS RMWs,
	// plain accesses. These are the source programs of Theorem-1 campaigns.
	LevelX86 Level = iota
	// LevelArm generates Arm-level tests: DMB ISH/ISHLD/ISHST fences,
	// acquire/release access attributes, casal RMWs. These feed the
	// axiomatic-vs-operational soundness checks directly.
	LevelArm
)

func (l Level) String() string {
	if l == LevelArm {
		return "arm"
	}
	return "x86"
}

// ParseLevels turns a comma-separated level list ("x86", "arm", "x86,arm")
// into Level values, for CLI flag parsing. Empty input means both levels
// (the Defaults behaviour).
func ParseLevels(s string) ([]Level, error) {
	if s == "" {
		return nil, nil
	}
	var out []Level
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "x86":
			out = append(out, LevelX86)
		case "arm":
			out = append(out, LevelArm)
		default:
			return nil, fmt.Errorf("litmusgen: unknown level %q (want x86 or arm)", part)
		}
	}
	return out, nil
}

// Config parameterizes one generation run. The zero value is not useful;
// Defaults fills every unset field.
type Config struct {
	// Seed drives the Sample thinning (and nothing else: enumeration order
	// is deterministic regardless).
	Seed int64
	// Shapes selects the cycle families ("mp", "sb", "lb", "2+2w", "s",
	// "r", "co"); empty means all of them.
	Shapes []string
	// MinThreads/MaxThreads bound the ring sizes of the N-thread families
	// (mp, sb, lb, 2+2w). Defaults 2 and 3.
	MinThreads, MaxThreads int
	// Levels selects the instruction levels; empty means both.
	Levels []Level
	// MaxTests caps the total number of unique tests emitted (0 = no cap).
	MaxTests int
	// MaxPerShape caps the unique tests emitted per (shape, level) stream
	// (0 = no cap). When a stream's decoration space exceeds the cap, the
	// enumeration strides through it so the emitted subset spans the whole
	// space.
	MaxPerShape int
	// Sample, when in (0,1), keeps each enumerated variant with this
	// probability (seeded, deterministic). 0 or ≥1 keeps everything.
	Sample float64
}

// Defaults returns cfg with unset fields replaced by their defaults.
func (cfg Config) Defaults() Config {
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = ShapeNames()
	}
	if cfg.MinThreads == 0 {
		cfg.MinThreads = 2
	}
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 3
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = []Level{LevelX86, LevelArm}
	}
	return cfg
}

// Hash is a stable fingerprint of the configuration, used by the campaign
// driver to refuse resuming a JSONL file produced under a different
// generation space.
func (cfg Config) Hash() string {
	cfg = cfg.Defaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|%d|%v|%d|%d|%v|%d|%d|%g",
		cfg.Seed, cfg.Shapes, cfg.MinThreads, cfg.MaxThreads,
		cfg.Levels, cfg.MaxTests, cfg.MaxPerShape, cfg.Sample)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Test is one generated litmus test.
type Test struct {
	// Idx is the test's dense index in the emission order — stable for a
	// given Config, which is what makes campaign resume offsets work.
	Idx int
	// Prog is the generated program; its Name encodes shape and
	// decorations ("g.mp2.x86+mf+addr" style).
	Prog *litmus.Program
	// Level is the instruction level the test is written at.
	Level Level
	// Fingerprint is Prog.Fingerprint(), the dedup key.
	Fingerprint string
	// HasRMW reports whether any op is a CAS (campaigns check both Arm
	// RMW lowering styles for these).
	HasRMW bool
}

// FPHash is the test's short fingerprint hash, the form recorded in
// campaign JSONL records and golden manifests.
func (t *Test) FPHash() string {
	h := fnv.New64a()
	h.Write([]byte(t.Fingerprint))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Stats summarizes one Stream run.
type Stats struct {
	// Enumerated counts decoration combinations visited (pre-dedup,
	// pre-sampling, post-stride).
	Enumerated int
	// Sampled counts variants dropped by Sample thinning.
	Sampled int
	// Duplicates counts variants whose fingerprint was already emitted.
	Duplicates int
	// Emitted counts unique tests passed to yield.
	Emitted int
}

// Stream enumerates the configured space in a fixed deterministic order,
// dedups by structural fingerprint, and calls yield for every unique test.
// Enumeration stops early when yield returns false or MaxTests is reached.
// The whole corpus is never materialized; memory is bounded by the dedup
// set (one fingerprint string per unique test).
func Stream(cfg Config, yield func(*Test) bool) Stats {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	seen := make(map[string]struct{})
	var st Stats
	stop := false

	for _, pr := range protos(cfg) {
		for _, lvl := range cfg.Levels {
			emittedInShape := 0
			enumerateDecors(pr, lvl, cfg.MaxPerShape, func(d []threadDecor) bool {
				st.Enumerated++
				if cfg.Sample > 0 && cfg.Sample < 1 && rng.Float64() >= cfg.Sample {
					st.Sampled++
					return true
				}
				prog, hasRMW := build(pr, lvl, d)
				fp := prog.Fingerprint()
				if _, dup := seen[fp]; dup {
					st.Duplicates++
					return true
				}
				seen[fp] = struct{}{}
				t := &Test{
					Idx:         st.Emitted,
					Prog:        prog,
					Level:       lvl,
					Fingerprint: fp,
					HasRMW:      hasRMW,
				}
				st.Emitted++
				emittedInShape++
				if !yield(t) {
					stop = true
					return false
				}
				if cfg.MaxTests > 0 && st.Emitted >= cfg.MaxTests {
					stop = true
					return false
				}
				return cfg.MaxPerShape == 0 || emittedInShape < cfg.MaxPerShape
			})
			if stop {
				return st
			}
		}
	}
	return st
}
