package litmusgen

import (
	"fmt"
	"strings"

	"repro/internal/litmus"
	"repro/internal/memmodel"
)

// Render emits the canonical .lit text of a program, the exact inverse of
// litmus.Parse: parse(Render(p)) reproduces p op-for-op (see the
// round-trip test). One caveat inherited from the parser: a CAS with
// RMWClass RMWNone parses back as RMWAmo, so canonical programs — and
// everything this package generates — always carry an explicit class.
func Render(p *litmus.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "test %s\n", p.Name)
	for t, ops := range p.Threads {
		fmt.Fprintf(&b, "thread %d\n", t)
		renderOps(&b, ops, 1)
	}
	return b.String()
}

func renderOps(b *strings.Builder, ops []litmus.Op, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, op := range ops {
		switch o := op.(type) {
		case litmus.Store:
			fmt.Fprintf(b, "%sstore %s %d%s\n", indent, o.Loc, o.Val, attrSuffix(o.Attr))
		case litmus.StoreReg:
			fmt.Fprintf(b, "%sstorereg %s %s%s\n", indent, o.Loc, o.Src, attrSuffix(o.Attr))
		case litmus.Load:
			fmt.Fprintf(b, "%sload %s %s%s\n", indent, o.Dst, o.Loc, attrSuffix(o.Attr))
		case litmus.LoadIdx:
			fmt.Fprintf(b, "%sloadidx %s %s %s %s%s\n", indent, o.Dst, o.Idx, o.Loc0, o.Loc1, attrSuffix(o.Attr))
		case litmus.StoreIdx:
			fmt.Fprintf(b, "%sstoreidx %s %s %s %d%s\n", indent, o.Idx, o.Loc0, o.Loc1, o.Val, attrSuffix(o.Attr))
		case litmus.CAS:
			fmt.Fprintf(b, "%scas %s %d %d", indent, o.Loc, o.Expect, o.New)
			if o.Dst != "" {
				fmt.Fprintf(b, " -> %s", o.Dst)
			}
			fmt.Fprintf(b, "%s\n", attrSuffix(o.Attr))
		case litmus.Fence:
			fmt.Fprintf(b, "%sfence %s\n", indent, strings.ToLower(o.K.String()))
		case litmus.MovImm:
			fmt.Fprintf(b, "%smov %s %d\n", indent, o.Dst, o.Val)
		case litmus.If:
			cmp := "!="
			if o.Eq {
				cmp = "=="
			}
			fmt.Fprintf(b, "%sif %s %s %d\n", indent, o.Reg, cmp, o.Val)
			renderOps(b, o.Body, depth+1)
			fmt.Fprintf(b, "%sendif\n", indent)
		default:
			panic(fmt.Sprintf("litmusgen: cannot render op %T", op))
		}
	}
}

// attrSuffix renders attributes in canonical order (acq acqpc rel sc,
// then the RMW class), matching what parseAttrs strips.
func attrSuffix(a litmus.Attr) string {
	var s string
	if a.Acq {
		s += " acq"
	}
	if a.AcqPC {
		s += " acqpc"
	}
	if a.Rel {
		s += " rel"
	}
	if a.SC {
		s += " sc"
	}
	switch a.Class {
	case memmodel.RMWAmo:
		s += " amo"
	case memmodel.RMWLxSx:
		s += " lxsx"
	}
	return s
}
