// Package rel implements a small calculus of finite binary relations over
// integer-identified elements (events). It mirrors the "cat" notation used
// by axiomatic memory models: union, intersection, difference, relational
// composition (;), inverse (^-1), identity on a set ([A]), transitive
// closure (+), reflexive-transitive closure (*), and the acyclicity and
// irreflexivity tests that consistency axioms are built from.
//
// Two interchangeable engines implement the Relation API:
//
//   - The default engine (bitset.go) stores a relation as a dense []uint64
//     adjacency-bit matrix. Event IDs in candidate executions are small
//     contiguous ints, so every operator runs as a word-wise kernel and an
//     Arena lets hot paths (per-candidate consistency checks) reuse storage
//     without allocating.
//   - The reference engine (mapref.go, build tag "relmap") keeps the
//     original nested-map representation. It is retained as the obviously
//     correct implementation: `go test -tags relmap ./...` runs the whole
//     corpus — golden outcome files included — through it, which is the
//     differential proof that the bitset engine computes identical sets.
//
// Functional operators (Union, Seq, Inverse, …) return a fresh relation and
// never alias the operands' internal state; the *With/*Of in-place forms
// mutate their receiver and exist for allocation-free inner loops.
package rel

import (
	"fmt"
	"strings"
)

// Pair is one ordered edge of a relation.
type Pair struct {
	From, To int
}

// FromPairs builds a relation containing exactly the given edges.
func FromPairs(pairs ...Pair) *Relation {
	r := New()
	for _, p := range pairs {
		r.Add(p.From, p.To)
	}
	return r
}

// Union returns the union of all given relations (empty if none).
func Union(rs ...*Relation) *Relation {
	out := New()
	for _, o := range rs {
		out.UnionWith(o)
	}
	return out
}

// Seq composes the given relations left to right. Seq() of a single relation
// returns a clone; Seq of none returns the empty relation.
func Seq(rs ...*Relation) *Relation {
	if len(rs) == 0 {
		return New()
	}
	out := rs[0].Clone()
	for _, o := range rs[1:] {
		out = out.Seq(o)
	}
	return out
}

// Identity returns [A], the identity relation on the given set of elements.
func Identity(set []int) *Relation {
	out := New()
	for _, a := range set {
		out.Add(a, a)
	}
	return out
}

// ReflexiveTransitiveClosure returns r* over the given carrier set.
func (r *Relation) ReflexiveTransitiveClosure(carrier []int) *Relation {
	out := r.TransitiveClosure()
	for _, a := range carrier {
		out.Add(a, a)
	}
	return out
}

// TotalOrders enumerates every strict total order over elems as a relation,
// invoking fn for each. fn must not retain the relation. Enumeration stops
// early if fn returns false. Used to enumerate coherence orders.
func TotalOrders(elems []int, fn func(*Relation) bool) {
	perm := make([]int, len(elems))
	copy(perm, elems)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			r := New()
			for i := 0; i < len(perm); i++ {
				for j := i + 1; j < len(perm); j++ {
					r.Add(perm[i], perm[j])
				}
			}
			return fn(r)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if !rec(k + 1) {
				perm[k], perm[i] = perm[i], perm[k]
				return false
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return true
	}
	rec(0)
}

// String renders the relation as a sorted edge list, for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range r.Pairs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%d", p.From, p.To)
	}
	b.WriteByte('}')
	return b.String()
}
